#!/usr/bin/env bash
# Determinism gate: the tables cmd/experiments prints must be byte-identical
# to the region committed in EXPERIMENTS.md. Any model drift — a charge
# reordered, a float folded differently, an extra access — shows up here as
# a diff long before it shows up as a wrong conclusion.
#
# Usage: scripts/check_experiments.sh [extra experiments flags...]
# (from anywhere inside the repo). Extra flags are passed through to the
# binary — e.g. `-serve 127.0.0.1:0 -cost-profile /tmp/cost.folded` proves
# the observability layer leaves the tables byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp) out=$(mktemp) body=$(mktemp)
trap 'rm -f "$bin" "$out" "$body"' EXIT

go build -o "$bin" ./cmd/experiments
"$bin" -workers=1 "$@" >"$out"

# Drop the two-line generated header ("# Experiment tables (generated …)"
# plus the blank line after it); the date changes per run. Everything after
# it must appear verbatim — as one contiguous byte range — in EXPERIMENTS.md.
tail -n +3 "$out" >"$body"

python3 - "$body" EXPERIMENTS.md <<'PYEOF'
import sys

body = open(sys.argv[1], "rb").read()
doc = open(sys.argv[2], "rb").read()
off = doc.find(body)
if off < 0:
    sys.stderr.write(
        "determinism gate FAILED: cmd/experiments output is not a byte-for-byte\n"
        "substring of EXPERIMENTS.md. Either a change drifted the cost model\n"
        "(fix the change) or the tables were intentionally regenerated\n"
        "(update EXPERIMENTS.md in the same commit).\n"
    )
    sys.exit(1)
print(f"determinism gate OK: {len(body)} bytes match EXPERIMENTS.md at offset {off}")
PYEOF

# Sweep-contract determinism: the engine's schedule-independence tests
# (error reporting, duplicate-ID rejection, ordered streaming) must hold
# at every worker count — the same contract the dbspd service builds its
# result cache on.
go test -run 'TestContract' -count=1 ./internal/sweep/

# Dry-run finding counts: the full dbsplint suite over the module, folded
# to a per-analyzer tally over the full roster (-list), zeros included —
# so both a new finding and a silently vanished analyzer are visible.
# Every count must be zero — any finding here means a change landed
# without fixing or //lint:ignore-justifying it.
lintbin=$(mktemp) lintout=$(mktemp) lintroster=$(mktemp)
trap 'rm -f "$bin" "$out" "$body" "$lintbin" "$lintout" "$lintroster"' EXIT
go build -o "$lintbin" ./cmd/dbsplint
"$lintbin" -list >"$lintroster"
lint_status=0
"$lintbin" -json ./... >"$lintout" || lint_status=$?
python3 - "$lintout" "$lint_status" "$lintroster" <<'PYEOF'
import collections, json, sys

findings = json.load(open(sys.argv[1]))
roster = [line.split()[0] for line in open(sys.argv[3]) if line.strip()]
counts = collections.Counter(f["analyzer"] for f in findings)
for name in roster:
    print(f"lint findings: {name}: {counts.pop(name, 0)}")
for name, n in sorted(counts.items()):  # findings from off-roster analyzers: impossible, but never hide
    print(f"lint findings: {name}: {n}")
print(f"lint findings: total: {len(findings)} across {len(roster)} analyzers")
if findings or sys.argv[2] != "0":
    sys.stderr.write("lint gate FAILED: fix the findings above or justify each with //lint:ignore <analyzer> <reason>\n")
    sys.exit(1)
if len(roster) < 13:
    sys.stderr.write(f"lint gate FAILED: -list shows {len(roster)} analyzers, expected at least 13 — did an analyzer fall off the roster?\n")
    sys.exit(1)
PYEOF
