#!/usr/bin/env bash
# Observability smoke: run a sweep with the live endpoint enabled, scrape
# /metrics and /debug/progress while the server lingers, and require a
# clean exit after SIGINT. This is the shell-level twin of the
# TestServeLiveObservability CLI test — it proves the same flow works
# outside the Go test harness, with curl as the scraper.
#
# Usage: scripts/obs_smoke.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp) errlog=$(mktemp) metrics=$(mktemp) progress=$(mktemp)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -f "$bin" "$errlog" "$metrics" "$progress"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/experiments
"$bin" -quick -serve 127.0.0.1:0 -serve-linger 60s 2>"$errlog" >/dev/null &
pid=$!

# The bound address is announced on stderr before the sweep starts.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's,.*serving observability on http://,,p' "$errlog" | head -n1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$errlog" >&2; echo "obs smoke FAILED: process died before serving" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "obs smoke FAILED: no serving line on stderr" >&2; exit 1; }

# Poll /debug/progress until the sweep reports done.
done=""
for _ in $(seq 1 300); do
  curl -fsS "http://$addr/debug/progress" >"$progress"
  if grep -q '"done": true' "$progress"; then done=1; break; fi
  sleep 0.1
done
[ -n "$done" ] || { cat "$progress" >&2; echo "obs smoke FAILED: sweep never reported done" >&2; exit 1; }
grep -q '"status": "ok"' "$progress" || { cat "$progress" >&2; echo "obs smoke FAILED: no ok jobs in progress" >&2; exit 1; }

# /metrics must carry the sweep engine families and the hmm.* families in
# Prometheus text format, /healthz must answer.
curl -fsS "http://$addr/metrics" >"$metrics"
for want in '# TYPE sweep_jobs_started counter' 'sweep_job_wall_ms_bucket' 'hmm_cost_total'; do
  grep -qF "$want" "$metrics" || { echo "obs smoke FAILED: /metrics missing '$want'" >&2; exit 1; }
done
curl -fsS "http://$addr/healthz" | grep -q ok || { echo "obs smoke FAILED: /healthz" >&2; exit 1; }

# Interrupt the linger: a clean run must exit 0.
kill -INT "$pid"
wait "$pid" || { echo "obs smoke FAILED: nonzero exit after SIGINT" >&2; exit 1; }
pid=""
echo "obs smoke OK: scraped /metrics + /debug/progress at $addr, clean exit"
