#!/usr/bin/env bash
# Lint smoke: the full dbsplint suite — syntactic checks, the dbspvet
# typed pass, the dataflow analyzers (sharesafe, lockdiscipline,
# snapshotonly, bulkcharge), and the interprocedural determinism vet
# (detflow, floatfold) — must run clean over the module, and fast. The
# wall-clock budget (15s, build excluded) guards the analysis layers:
# CFG construction and fixpoint solving run per function, the call
# graph and summary fixpoint per module, and a superlinear regression
# in either would make per-push linting unusable long before it made
# it wrong.
#
# Usage: scripts/lint_smoke.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

budget_s=15
bin=$(mktemp) out=$(mktemp)
trap 'rm -f "$bin" "$out"' EXIT

go build -o "$bin" ./cmd/dbsplint

start=$(date +%s%N)
if ! "$bin" ./... >"$out" 2>&1; then
  cat "$out" >&2
  echo "lint smoke FAILED: dbsplint reported findings (fix them or add //lint:ignore <analyzer> <reason>)" >&2
  exit 1
fi
elapsed_ns=$(( $(date +%s%N) - start ))
elapsed_ms=$(( elapsed_ns / 1000000 ))

if [ -s "$out" ]; then
  cat "$out" >&2
  echo "lint smoke FAILED: clean exit but unexpected output" >&2
  exit 1
fi
if [ "$elapsed_ms" -ge $(( budget_s * 1000 )) ]; then
  echo "lint smoke FAILED: suite took ${elapsed_ms}ms, budget is ${budget_s}s" >&2
  exit 1
fi
echo "lint smoke OK: full suite clean in ${elapsed_ms}ms (budget ${budget_s}s)"
