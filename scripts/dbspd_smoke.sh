#!/usr/bin/env bash
# Service smoke: start the dbspd daemon, submit an experiment program
# over the HTTP API, and require its streamed JSONL to match what
# cmd/experiments writes for the same selection — byte for byte after
# masking the documented run-varying start_ms/wall_ms fields. Then
# prove the result cache (resubmission answers cached:true with the
# exact bytes of the first response), scrape /metrics and
# /debug/progress, and require a clean exit 0 on SIGTERM. This is the
# shell-level twin of cmd/dbspd's TestDaemonMatchesExperimentsCLI.
#
# Usage: scripts/dbspd_smoke.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/dbspd" ./cmd/dbspd
go build -o "$workdir/experiments" ./cmd/experiments

# Reference bytes from the CLI: same program, seed and flags the
# service submission below uses.
"$workdir/experiments" -quick -only=E01,E02 -seed=5 -keep-going \
  -jsonl="$workdir/ref.jsonl" >/dev/null 2>&1

"$workdir/dbspd" -listen=127.0.0.1:0 -tenant-quota=2 -max-sweeps=2 \
  2>"$workdir/errlog" &
pid=$!

# The bound address is announced on stderr before the API is up... the
# announcement precedes Serve, so poll /healthz too.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's,.*serving on http://,,p' "$workdir/errlog" | head -n1)
  if [ -n "$addr" ] && curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  addr=""
  kill -0 "$pid" 2>/dev/null || { cat "$workdir/errlog" >&2; echo "dbspd smoke FAILED: daemon died before serving" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "dbspd smoke FAILED: no serving line on stderr" >&2; exit 1; }

# Submit the program; the reply carries the job id.
curl -fsS -X POST "http://$addr/api/v1/jobs" \
  -d '{"ids":["E01","E02"],"quick":true,"seed":5}' >"$workdir/submit1.json"
job=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$workdir/submit1.json")

# The results endpoint streams until the sweep finishes; -N avoids
# curl buffering the chunked body.
curl -fsS -N "http://$addr/api/v1/jobs/$job/results" >"$workdir/svc.jsonl"

# Status must report the job done with every line accounted for.
curl -fsS "http://$addr/api/v1/jobs/$job" | grep -q '"state": "done"' \
  || { echo "dbspd smoke FAILED: job not done after results drained" >&2; exit 1; }

# Byte-compare service vs CLI, masking only the run-varying timing
# fields — identical normalization on both sides.
mask() {
  python3 - "$1" <<'PYEOF'
import json, sys
for line in open(sys.argv[1]):
    rec = json.loads(line)
    rec.pop("start_ms", None)
    rec["wall_ms"] = 0
    print(json.dumps(rec, sort_keys=True))
PYEOF
}
mask "$workdir/svc.jsonl" >"$workdir/svc.masked"
mask "$workdir/ref.jsonl" >"$workdir/ref.masked"
diff -u "$workdir/ref.masked" "$workdir/svc.masked" \
  || { echo "dbspd smoke FAILED: service JSONL differs from cmd/experiments" >&2; exit 1; }

# Resubmission: a cache hit, byte-identical to the first response with
# no masking at all.
curl -fsS -X POST "http://$addr/api/v1/jobs" \
  -d '{"ids":["E01","E02"],"quick":true,"seed":5}' >"$workdir/submit2.json"
grep -q '"cached": true' "$workdir/submit2.json" \
  || { cat "$workdir/submit2.json" >&2; echo "dbspd smoke FAILED: resubmission not served from cache" >&2; exit 1; }
job2=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$workdir/submit2.json")
curl -fsS -N "http://$addr/api/v1/jobs/$job2/results" >"$workdir/svc2.jsonl"
cmp "$workdir/svc.jsonl" "$workdir/svc2.jsonl" \
  || { echo "dbspd smoke FAILED: cached stream not byte-identical to first run" >&2; exit 1; }

# Observability surface: scheduler + engine + cost-cache families on
# /metrics, the scheduler source on /debug/progress.
curl -fsS "http://$addr/metrics" >"$workdir/metrics"
for want in 'serve_jobs_submitted' 'serve_cache_hits 1' '# TYPE sweep_jobs_started counter' 'cost_compile_cache_entries'; do
  grep -qF "$want" "$workdir/metrics" \
    || { echo "dbspd smoke FAILED: /metrics missing '$want'" >&2; exit 1; }
done
curl -fsS "http://$addr/debug/progress" | grep -q '"scheduler"' \
  || { echo "dbspd smoke FAILED: /debug/progress missing scheduler source" >&2; exit 1; }

# Graceful shutdown: SIGTERM must exit 0.
kill -TERM "$pid"
wait "$pid" || { cat "$workdir/errlog" >&2; echo "dbspd smoke FAILED: nonzero exit after SIGTERM" >&2; exit 1; }
pid=""
grep -q "shutting down" "$workdir/errlog" \
  || { echo "dbspd smoke FAILED: no shutdown announcement" >&2; exit 1; }
echo "dbspd smoke OK: byte-identical JSONL vs CLI, cache hit byte-identical, metrics scraped, clean SIGTERM exit at $addr"
