// Package repro is a full Go reproduction of Fantozzi, Pietracaprina
// and Pucci, "Translating Submachine Locality into Locality of
// Reference" (IPDPS 2004, Best Paper — Algorithms Track).
//
// The library builds, from scratch, the three machine models the paper
// relates — the Decomposable BSP (internal/dbsp, executed natively with
// one goroutine per processor per superstep), the Hierarchical Memory
// Model (internal/hmm) and its block-transfer extension (internal/bt) —
// and the paper's three simulation schemes on top of them
// (internal/core and its subpackages):
//
//	D-BSP -> HMM     Theorem 5 / Corollary 6: linear slowdown
//	D-BSP -> BT      Theorem 12: access-function independence
//	D-BSP -> D-BSP   Theorem 10 / Corollary 11: the Brent analogue
//
// See README.md for a guide, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the measured-vs-predicted reproduction of every
// quantitative claim. The benchmarks in bench_test.go regenerate the
// experiment measurements under `go test -bench`.
package repro
