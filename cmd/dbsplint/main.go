// Command dbsplint runs the repo's custom static-analysis suite
// (internal/lint) over the module: the syntactic convention checks,
// the dbspvet typed pass that verifies D-BSP program shape and
// determinism, and the dataflow analyzers (sharesafe, lockdiscipline,
// snapshotonly, bulkcharge) that prove the concurrency and bulk-charge
// disciplines over per-function control-flow graphs. Findings print
// one per line as
//
//	file:line: analyzer: message
//
// and any finding makes the command exit with status 1, so CI can gate
// on it. Usage:
//
//	dbsplint [-list] [-json] [-only a,b | -skip a,b] ./...
//
// -json emits the findings as a JSON array on stdout (an empty run
// prints "[]"), for editor and tooling integration. -only restricts the
// run to the named analyzers; -skip runs all but the named ones; the
// two are mutually exclusive and unknown analyzer names are usage
// errors (exit 2).
//
// Patterns are directory trees: "./..." (or "dir/...") lints every
// package under the directory; a plain directory lints that tree too.
// Import paths are resolved against the enclosing module's go.mod.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "dbsplint: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// fatal reports a runtime failure and exits with status 1.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbsplint: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// selectAnalyzers applies the -only/-skip filters. Unknown names in
// either list are usage errors: a typo must not silently run (or skip)
// nothing.
func selectAnalyzers(all []*lint.Analyzer, only, skip string) []*lint.Analyzer {
	if only != "" && skip != "" {
		usageErr("-only and -skip are mutually exclusive")
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(flagName, csv string) map[string]bool {
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				usageErr("%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set
	}
	switch {
	case only != "":
		want := parse("-only", only)
		var selected []*lint.Analyzer
		for _, a := range all {
			if want[a.Name] {
				selected = append(selected, a)
			}
		}
		return selected
	case skip != "":
		drop := parse("-skip", skip)
		var selected []*lint.Analyzer
		for _, a := range all {
			if !drop[a.Name] {
				selected = append(selected, a)
			}
		}
		return selected
	}
	return all
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and the invariants they enforce")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	only := flag.String("only", "", "comma-separated analyzers to run (exclusive with -skip)")
	skip := flag.String("skip", "", "comma-separated analyzers to skip (exclusive with -only)")
	flag.Parse()

	analyzers := selectAnalyzers(lint.Analyzers(), *only, *skip)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %-10s %s\n", a.Name, a.Layer, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		usageErr("no packages: run dbsplint ./...")
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal("%v", err)
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal("%v", err)
	}
	modPath, err := lint.ModulePath(modRoot)
	if err != nil {
		fatal("%v", err)
	}
	pkgs, err := lint.Load(modRoot, modPath)
	if err != nil {
		fatal("%v", err)
	}

	// Resolve each pattern to an absolute directory prefix and keep the
	// packages under any of them.
	var roots []string
	for _, arg := range flag.Args() {
		dir := strings.TrimSuffix(arg, "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			fatal("%v", err)
		}
		if _, err := os.Stat(abs); err != nil {
			usageErr("bad pattern %q: %v", arg, err)
		}
		roots = append(roots, abs)
	}
	var selected []*lint.Package
	for _, pkg := range pkgs {
		for _, root := range roots {
			if pkg.Dir == root || strings.HasPrefix(pkg.Dir, root+string(filepath.Separator)) {
				selected = append(selected, pkg)
				break
			}
		}
	}

	findings := lint.Run(selected, analyzers)
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			rel, err := filepath.Rel(cwd, f.Pos.Filename)
			if err != nil || strings.HasPrefix(rel, "..") {
				rel = f.Pos.Filename
			}
			out = append(out, jsonFinding{
				File:     filepath.ToSlash(rel),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal("%v", err)
		}
		if len(findings) > 0 {
			os.Exit(1) //lint:ignore exitdiscipline findings already reported on stdout as JSON; the fatal helper would add a stderr line tooling does not expect
		}
		return
	}
	for _, f := range findings {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d: %s: %s\n", rel, f.Pos.Line, f.Analyzer, f.Message)
	}
	if n := len(findings); n > 0 {
		fatal("%d finding(s) in %d package(s)", n, len(selected))
	}
}
