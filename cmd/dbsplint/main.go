// Command dbsplint runs the repo's custom static-analysis suite
// (internal/lint) over the module: the checks that keep the paper's
// simulation discipline and the repo's load-bearing conventions
// machine-enforced. Findings print one per line as
//
//	file:line: analyzer: message
//
// and any finding makes the command exit with status 1, so CI can gate
// on it. Usage:
//
//	dbsplint [-list] ./...
//
// Patterns are directory trees: "./..." (or "dir/...") lints every
// package under the directory; a plain directory lints that tree too.
// Import paths are resolved against the enclosing module's go.mod.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "dbsplint: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// fatal reports a runtime failure and exits with status 1.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbsplint: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and the invariants they enforce")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		usageErr("no packages: run dbsplint ./...")
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal("%v", err)
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal("%v", err)
	}
	modPath, err := lint.ModulePath(modRoot)
	if err != nil {
		fatal("%v", err)
	}
	pkgs, err := lint.Load(modRoot, modPath)
	if err != nil {
		fatal("%v", err)
	}

	// Resolve each pattern to an absolute directory prefix and keep the
	// packages under any of them.
	var roots []string
	for _, arg := range flag.Args() {
		dir := strings.TrimSuffix(arg, "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			fatal("%v", err)
		}
		if _, err := os.Stat(abs); err != nil {
			usageErr("bad pattern %q: %v", arg, err)
		}
		roots = append(roots, abs)
	}
	var selected []*lint.Package
	for _, pkg := range pkgs {
		for _, root := range roots {
			if pkg.Dir == root || strings.HasPrefix(pkg.Dir, root+string(filepath.Separator)) {
				selected = append(selected, pkg)
				break
			}
		}
	}

	findings := lint.Run(selected, analyzers)
	for _, f := range findings {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d: %s: %s\n", rel, f.Pos.Line, f.Analyzer, f.Message)
	}
	if n := len(findings); n > 0 {
		fatal("%d finding(s) in %d package(s)", n, len(selected))
	}
}
