package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// runSelf builds the dbsplint binary once and executes it in dir (go
// run does not propagate the child's exit code, which the gate tests
// assert on).
func runSelf(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	buildOnce.Do(func() {
		tmp, err := os.MkdirTemp("", "dbsplint-test")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(tmp, "dbsplint")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = os.ErrInvalid
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build: %v\n%s", buildErr, binPath)
	}
	cmd := exec.Command(binPath, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", binPath, args, err, out)
	}
	return string(out), code
}

// TestRepoLintsClean is the CI gate in miniature: dbsplint over the
// repository's own module must exit 0 with no output.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	out, code := runSelf(t, "..", "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Errorf("repo not lint-clean (exit %d):\n%s", code, out)
	}
}

// TestFixtureTreeFails: run against the deliberately bad fixture
// module, dbsplint must report findings from every analyzer and exit 1.
func TestFixtureTreeFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	out, code := runSelf(t, fixtures, "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	for _, analyzer := range []string{"nilguard", "panicmsg", "exitdiscipline", "stepshape", "stepconfine", "detseed", "costcharge",
		"sharesafe", "lockdiscipline", "snapshotonly", "bulkcharge", "detflow", "floatfold"} {
		if !strings.Contains(out, ": "+analyzer+": ") {
			t.Errorf("no %s finding in output:\n%s", analyzer, out)
		}
	}
	if !strings.Contains(out, "finding(s)") {
		t.Errorf("no summary line:\n%s", out)
	}
}

// TestNoArgsExitsTwo: a bad invocation prints usage and exits 2.
func TestNoArgsExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	out, code := runSelf(t, ".")
	if code != 2 {
		t.Errorf("exit %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "dbsplint") {
		t.Errorf("no usage text:\n%s", out)
	}
}

// TestListFlag: -list names every analyzer with its framework layer.
func TestListFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	out, code := runSelf(t, ".", "-list")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, analyzer := range []string{"nilguard", "panicmsg", "exitdiscipline", "stepshape", "stepconfine", "detseed", "costcharge",
		"sharesafe", "lockdiscipline", "snapshotonly", "bulkcharge", "detflow", "floatfold"} {
		if !strings.Contains(out, analyzer) {
			t.Errorf("-list missing %s:\n%s", analyzer, out)
		}
	}
	// Every line is "name layer doc": the layer column must name one of
	// the four framework layers.
	layers := map[string]bool{"parse": true, "typed": true, "dataflow": true, "interproc": true}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Errorf("-list line %q: want at least name, layer, doc", line)
			continue
		}
		if !layers[fields[1]] {
			t.Errorf("-list line %q: second column %q is not a framework layer", line, fields[1])
		}
		seen[fields[1]] = true
	}
	for l := range layers {
		if !seen[l] {
			t.Errorf("-list shows no %s-layer analyzer", l)
		}
	}
}

// TestJSONOutput: -json over the fixture tree emits a parseable array
// of findings and still exits 1.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	out, code := runSelf(t, fixtures, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("empty findings array over the fixture tree")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestJSONClean: a clean run under -json prints an empty array, not
// nothing, so consumers always get valid JSON.
func TestJSONClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	out, code := runSelf(t, "..", "-json", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

// TestOnlyFilter: -only restricts the run to the named analyzers.
func TestOnlyFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	out, code := runSelf(t, fixtures, "-only", "stepshape", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, ": stepshape: ") {
		t.Errorf("no stepshape finding:\n%s", out)
	}
	for _, other := range []string{"nilguard", "panicmsg", "detseed", "costcharge", "stepconfine"} {
		if strings.Contains(out, ": "+other+": ") {
			t.Errorf("-only stepshape still ran %s:\n%s", other, out)
		}
	}
}

// TestSkipFilter: -skip removes the named analyzers and keeps the rest.
func TestSkipFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	out, code := runSelf(t, fixtures, "-skip", "stepshape,detseed", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	for _, skipped := range []string{"stepshape", "detseed"} {
		if strings.Contains(out, ": "+skipped+": ") {
			t.Errorf("-skip still ran %s:\n%s", skipped, out)
		}
	}
	if !strings.Contains(out, ": stepconfine: ") {
		t.Errorf("-skip dropped an analyzer it should have kept:\n%s", out)
	}
}

// TestUnknownAnalyzerExitsTwo: a typo in -only or -skip is a usage
// error, never a silently empty run.
func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	for _, args := range [][]string{
		{"-only", "nosuch", "./..."},
		{"-skip", "nosuch", "./..."},
		{"-only", "stepshape", "-skip", "detseed", "./..."},
	} {
		out, code := runSelf(t, "..", args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2:\n%s", args, code, out)
		}
	}
}
