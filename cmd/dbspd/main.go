// Command dbspd is the long-running simulation service: the experiment
// grid of cmd/experiments behind an HTTP/JSON API, scheduled fairly
// across tenants by internal/serve on the deterministic sweep engine.
//
// Usage:
//
//	dbspd [-listen ADDR] [-workers N] [-tenant-quota N] [-max-sweeps N]
//	      [-no-cache]
//
// -listen is the host:port to serve on (port 0 picks a free port; the
// bound address is printed to stderr). -workers bounds each sweep's
// worker pool (0 = GOMAXPROCS); -tenant-quota caps concurrently
// running sweeps per tenant and -max-sweeps across all tenants.
// -no-cache disables the repeated-submission result cache (by default
// a resubmitted (program, params, seed) is answered from cache with
// byte-identical results — sound because sweep output is
// schedule-independent).
//
// The API (see internal/serve): POST /api/v1/jobs submits a program,
// GET /api/v1/jobs/{job}/results streams its JSONL records (resumable
// via ?offset=N), DELETE cancels; /metrics, /healthz and
// /debug/progress serve the usual observability surface. The streamed
// records are byte-identical to `experiments -jsonl -keep-going` for
// the same selection, seed and flags, apart from the documented
// run-varying start_ms/wall_ms fields.
//
// SIGINT/SIGTERM shut the daemon down gracefully: queued jobs cancel,
// running sweeps stop, in-flight responses drain, exit status 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8344", "host:port to serve on (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "per-sweep worker pool size (0 = GOMAXPROCS)")
	tenantQuota := flag.Int("tenant-quota", 1, "max concurrently running sweeps per tenant")
	maxSweeps := flag.Int("max-sweeps", 2, "max concurrently running sweeps across all tenants")
	noCache := flag.Bool("no-cache", false, "disable the repeated-submission result cache")
	flag.Parse()

	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if _, _, err := net.SplitHostPort(*listen); err != nil {
		usageErr("bad -listen address: %v", err)
	}
	if *workers < 0 {
		usageErr("-workers must be non-negative, got %d", *workers)
	}
	if *tenantQuota < 1 {
		usageErr("-tenant-quota must be at least 1, got %d", *tenantQuota)
	}
	if *maxSweeps < 1 {
		usageErr("-max-sweeps must be at least 1, got %d", *maxSweeps)
	}

	catalog, err := serve.NewCatalog(experiments.Jobs())
	if err != nil {
		fatal("%v", err)
	}
	svc := serve.New(catalog, serve.Options{
		Workers:     *workers,
		TenantQuota: *tenantQuota,
		MaxSweeps:   *maxSweeps,
		NoCache:     *noCache,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	fmt.Fprintf(os.Stderr, "dbspd: serving on http://%s\n", ln.Addr())
	go func() { done <- srv.Serve(ln) }()

	// Serve only returns before shutdown on a listener failure; the
	// error goes to stderr only, and dbspd writes no byte-compared
	// output on stdout at all.
	select { //lint:ignore detflow daemon lifecycle errors are stderr diagnostics; dbspd's deterministic output is the HTTP result stream, which never passes through here
	case err := <-done:
		fatal("%v", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dbspd: shutting down")
	// Stop the scheduler first so every result stream finishes and
	// in-flight followers drain, then close the HTTP side.
	svc.Close()
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fatal("shutdown: %v", err)
	}
	if err := <-done; err != nil && err != http.ErrServerClosed {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbspd: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "dbspd: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
