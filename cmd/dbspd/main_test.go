package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/sweep"
)

var (
	buildOnce sync.Once
	dbspdBin  string
	expBin    string
	buildErr  error
)

// buildBins builds the dbspd and experiments binaries once (go run
// does not propagate exit codes, and the determinism test needs the
// real CLI for its reference bytes).
func buildBins(t *testing.T) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dbspd-test")
		if err != nil {
			buildErr = err
			return
		}
		dbspdBin = filepath.Join(dir, "dbspd")
		if out, err := exec.Command("go", "build", "-o", dbspdBin, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build dbspd: %v\n%s", err, out)
			return
		}
		expBin = filepath.Join(dir, "experiments")
		if out, err := exec.Command("go", "build", "-o", expBin, "repro/cmd/experiments").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build experiments: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
}

// daemon is one running dbspd process under test.
type daemon struct {
	cmd     *exec.Cmd
	base    string // http://host:port
	stderr  *strings.Builder
	mu      sync.Mutex    // guards stderr
	drained chan struct{} // closed once the stderr scanner hits EOF
}

// startDaemon launches dbspd on a free port and waits for the
// serving-address announcement.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	buildBins(t)
	d := &daemon{stderr: &strings.Builder{}, drained: make(chan struct{})}
	d.cmd = exec.Command(dbspdBin, append([]string{"-listen=127.0.0.1:0"}, args...)...)
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	addr := make(chan string, 1)
	go func() {
		defer close(d.drained)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "dbspd: serving on http://"); ok {
				addr <- rest
			}
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
		}
	}()
	select {
	case a := <-addr:
		d.base = "http://" + a
	case <-time.After(20 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	return d
}

// stop sends SIGTERM and returns the exit code and captured stderr.
func (d *daemon) stop(t *testing.T) (int, string) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for the stderr scanner to hit EOF before cmd.Wait: Wait
	// closes the pipe, which would race the scanner out of the final
	// shutdown announcement.
	select {
	case <-d.drained:
	case <-time.After(20 * time.Second):
		t.Fatal("daemon stderr never drained after SIGTERM")
	}
	err := d.cmd.Wait()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return code, d.stderr.String()
}

// submit POSTs a submission and returns the decoded status fields used
// by the tests.
func submit(t *testing.T, base, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st map[string]any
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("submit reply %q: %v", raw, err)
	}
	return st
}

// results streams a job's complete JSONL output (blocks until the
// sweep finishes).
func results(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %s: %s", resp.Status, raw)
	}
	return raw
}

// maskJSONL zeroes the documented run-varying start_ms/wall_ms fields
// of each record — the same normalization the engine's golden tests
// apply — leaving every other byte intact.
func maskJSONL(t *testing.T, raw []byte) string {
	t.Helper()
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec sweep.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		rec.StartMS, rec.WallMS = 0, 0
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.String()
}

// TestDaemonMatchesExperimentsCLI is the acceptance byte-compare: for
// three (quota, workers) settings, the daemon's streamed JSONL for a
// program equals what `experiments -jsonl -keep-going` writes for the
// same selection, seed and flags, once the run-varying timing fields
// are masked. A resubmission must then be answered from cache with the
// exact bytes of the first response.
func TestDaemonMatchesExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build and full experiment runs")
	}
	buildBins(t)

	refFile := filepath.Join(t.TempDir(), "ref.jsonl")
	cmd := exec.Command(expBin, "-quick", "-only=E01,E02", "-seed=3", "-keep-going", "-jsonl="+refFile)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	refRaw, err := os.ReadFile(refFile)
	if err != nil {
		t.Fatal(err)
	}
	want := maskJSONL(t, refRaw)

	settings := [][]string{
		{"-tenant-quota=1", "-max-sweeps=1", "-workers=1"},
		{"-tenant-quota=2", "-max-sweeps=2", "-workers=4"},
		{"-tenant-quota=4", "-max-sweeps=4", "-workers=16"},
	}
	spec := `{"ids":["E01","E02"],"quick":true,"seed":3}`
	for _, args := range settings {
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			d := startDaemon(t, args...)
			st := submit(t, d.base, spec)
			id := st["id"].(string)
			first := results(t, d.base, id)
			if got := maskJSONL(t, first); got != want {
				t.Errorf("daemon bytes differ from experiments CLI\ndaemon:\n%s\ncli:\n%s", got, want)
			}
			st2 := submit(t, d.base, spec)
			if st2["cached"] != true {
				t.Errorf("resubmission not cached: %v", st2)
			}
			if again := results(t, d.base, st2["id"].(string)); !bytes.Equal(again, first) {
				t.Error("cached stream differs from the first run's bytes")
			}
			if code, _ := d.stop(t); code != 0 {
				t.Errorf("daemon exit code %d, want 0", code)
			}
		})
	}
}

// TestDaemonGracefulShutdown pins the signal contract: SIGTERM while
// idle exits 0 after announcing the shutdown.
func TestDaemonGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	d := startDaemon(t)
	resp, err := http.Get(d.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %s", resp.Status)
	}
	code, stderr := d.stop(t)
	if code != 0 {
		t.Errorf("exit code %d, want 0\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "shutting down") {
		t.Errorf("stderr missing shutdown announcement:\n%s", stderr)
	}
}

// TestDaemonObservability scrapes the mounted endpoints of a live
// daemon.
func TestDaemonObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	d := startDaemon(t)
	st := submit(t, d.base, `{"ids":["E01"],"quick":true,"seed":3}`)
	results(t, d.base, st["id"].(string)) // wait for completion
	get := func(path string) string {
		resp, err := http.Get(d.base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, raw)
		}
		return string(raw)
	}
	metrics := get("/metrics")
	for _, want := range []string{"serve_jobs_submitted", "sweep_jobs_completed", "cost_compile_cache_entries"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if prog := get("/debug/progress"); !strings.Contains(prog, "scheduler") {
		t.Errorf("/debug/progress missing scheduler source: %s", prog)
	}
	if code, _ := d.stop(t); code != 0 {
		t.Errorf("daemon exit code %d, want 0", code)
	}
}

// TestUsageErrors pins the exit-2 flag validation.
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	buildBins(t)
	cases := [][]string{
		{"-listen=nohostport"},
		{"-workers=-1"},
		{"-tenant-quota=0"},
		{"-max-sweeps=0"},
		{"extra-arg"},
	}
	for _, args := range cases {
		cmd := exec.Command(dbspdBin, args...)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: err %v, want exit 2\n%s", args, err, out)
		}
		if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-listen") {
			t.Errorf("%v: no usage text:\n%s", args, out)
		}
	}
}
