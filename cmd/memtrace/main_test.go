package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Golden checks for the regenerated figures (experiments E12/E13): the
// snapshots must match the paper's diagrams block for block.
func runSelf(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run . %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestFigure4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runSelf(t, "-fig", "4", "-v", "8")
	for _, want := range []string{
		"initial      P0 P1 P2 P3 P4 P5 P6 P7 __ __ __ __ __ __ __ __",
		"UNPACK(0)    P0 P1 P2 P3 __ __ __ __ P4 P5 P6 P7 __ __ __ __",
		"UNPACK(1)    P0 P1 __ __ P2 P3 __ __ P4 P5 P6 P7 __ __ __ __",
		"UNPACK(2)    P0 __ P1 __ P2 P3 __ __ P4 P5 P6 P7 __ __ __ __",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4 missing line %q\ngot:\n%s", want, out)
		}
	}
}

// TestFigure4JSONLGolden checks the structured event stream behind the
// figure: -trace-out must carry every layout snapshot, round-trippable
// through obs.ParseJSONL, with the same block strings the terminal
// rendering shows.
func TestFigure4JSONLGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := filepath.Join(t.TempDir(), "fig4.jsonl")
	runSelf(t, "-fig", "4", "-v", "8", "-trace-out", out)
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ParseJSONL(f)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []struct{ phase, detail string }{
		{"initial", "P0 P1 P2 P3 P4 P5 P6 P7 __ __ __ __ __ __ __ __"},
		{"UNPACK(0)", "P0 P1 P2 P3 __ __ __ __ P4 P5 P6 P7 __ __ __ __"},
		{"UNPACK(1)", "P0 P1 __ __ P2 P3 __ __ P4 P5 P6 P7 __ __ __ __"},
		{"UNPACK(2)", "P0 __ P1 __ P2 P3 __ __ P4 P5 P6 P7 __ __ __ __"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d:\n%+v", len(events), len(want), events)
	}
	for i, w := range want {
		e := events[i]
		if e.Sim != "memtrace" || e.Kind != "fig4.layout" {
			t.Errorf("event %d: sim/kind = %s/%s", i, e.Sim, e.Kind)
		}
		if e.Phase != w.phase || e.Detail != w.detail {
			t.Errorf("event %d = %s %q, want %s %q", i, e.Phase, e.Detail, w.phase, w.detail)
		}
	}
}

func TestFigure2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runSelf(t, "-fig", "2", "-v", "8")
	// The cycle brings each sibling to the top in turn, restoring order
	// at the end (the paper's Figure 2 with b = 8).
	for _, want := range []string{
		"P0 P1 P2 P3 P4 P5 P6 P7",
		"P1 P0 P2 P3 P4 P5 P6 P7",
		"P2 P1 P0 P3 P4 P5 P6 P7",
		"P7 P1 P2 P3 P4 P5 P6 P0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing snapshot %q", want)
		}
	}
}
