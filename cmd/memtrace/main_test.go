package main

import (
	"os/exec"
	"strings"
	"testing"
)

// Golden checks for the regenerated figures (experiments E12/E13): the
// snapshots must match the paper's diagrams block for block.
func runSelf(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run . %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestFigure4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runSelf(t, "-fig", "4", "-v", "8")
	for _, want := range []string{
		"initial      P0 P1 P2 P3 P4 P5 P6 P7 __ __ __ __ __ __ __ __",
		"UNPACK(0)    P0 P1 P2 P3 __ __ __ __ P4 P5 P6 P7 __ __ __ __",
		"UNPACK(1)    P0 P1 __ __ P2 P3 __ __ P4 P5 P6 P7 __ __ __ __",
		"UNPACK(2)    P0 __ P1 __ P2 P3 __ __ P4 P5 P6 P7 __ __ __ __",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4 missing line %q\ngot:\n%s", want, out)
		}
	}
}

func TestFigure2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runSelf(t, "-fig", "2", "-v", "8")
	// The cycle brings each sibling to the top in turn, restoring order
	// at the end (the paper's Figure 2 with b = 8).
	for _, want := range []string{
		"P0 P1 P2 P3 P4 P5 P6 P7",
		"P1 P0 P2 P3 P4 P5 P6 P7",
		"P2 P1 P0 P3 P4 P5 P6 P7",
		"P7 P1 P2 P3 P4 P5 P6 P0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing snapshot %q", want)
		}
	}
}
