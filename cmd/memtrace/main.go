// Command memtrace regenerates the paper's two memory-layout figures
// from instrumented runs:
//
//	memtrace -fig 2    cluster-context movements during a Figure 1
//	                   cycle (snapshots of which processor's context
//	                   occupies each HMM block, per round)
//	memtrace -fig 4    the BT memory layout during UNPACK(0): how the
//	                   empty buffer blocks get interspersed with the
//	                   contexts (and PACK reversing it)
//
// Each snapshot flows through the internal/obs trace layer as a
// structured event; the terminal rendering is one sink, and -trace-out
// adds a JSONL sink so the raw snapshots can be post-processed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/obs"
)

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "memtrace: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// fatal reports a runtime failure and exits with status 1.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memtrace: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	fig := flag.Int("fig", 2, "figure to regenerate: 2 or 4")
	v := flag.Int("v", 8, "number of processors (power of two)")
	traceOut := flag.String("trace-out", "", "also write the snapshot events to this JSONL file")
	flag.Parse()

	// The terminal rendering is itself a trace sink: every snapshot is
	// one event, formatted per kind.
	render := obs.SinkFunc(func(e obs.Event) {
		switch e.Kind {
		case "fig2.round":
			fmt.Printf("%5d %5d %6d  %s\n", e.Round, e.Step, e.Label, e.Detail)
		case "fig4.layout":
			fmt.Printf("%-12s %s\n", e.Phase, e.Detail)
		}
	})
	sink := obs.Sink(render)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		js := obs.NewJSONLSink(f)
		defer func() {
			if err := js.Close(); err != nil {
				fatal("%v", err)
			}
		}()
		sink = obs.MultiSink(render, js)
	}
	o := obs.New(nil, sink)

	switch *fig {
	case 2:
		figure2(*v, o)
	case 4:
		figure4(*v, o)
	default:
		usageErr("-fig must be 2 or 4, got %d", *fig)
	}
}

// figure2 renders the cluster movements of the Figure 1 scheduler for a
// program whose single coarsening (log v -> 0) forces a full cycle over
// all v sibling clusters — the situation of the paper's Figure 2
// (b = 8 siblings when v = 8).
func figure2(v int, o *obs.Observer) {
	logv := dbsp.Log2(v)
	prog := &dbsp.Program{
		Name:   "figure2",
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 0},
		Steps: []dbsp.Superstep{
			{Label: logv, Run: func(c *dbsp.Ctx) { c.Store(0, c.Load(0)+1) }},
			{Label: 0, Run: func(c *dbsp.Ctx) {}},
		},
	}
	fmt.Printf("Figure 2 — HMM block contents at the start of each round\n")
	fmt.Printf("(v=%d: one %d-superstep per processor cluster, then a 0-superstep;\n", v, logv)
	fmt.Printf("the 0-superstep forces the cycle through all %d sibling clusters)\n\n", v)
	fmt.Printf("%5s %5s %6s  blocks (processor whose context occupies each block)\n", "round", "step", "label")
	opts := &hmmsim.Options{
		// L = {0, log v}: the coarsening is a single cycle over b = v
		// sibling clusters, exactly the situation of the paper's figure.
		Labels: []int{0, logv},
		Observer: func(round int64, step, label int, procOf []int) {
			cells := make([]string, len(procOf))
			for i, p := range procOf {
				cells[i] = fmt.Sprintf("P%d", p)
			}
			o.Emit(obs.Event{Sim: "memtrace", Kind: "fig2.round",
				Round: round, Step: step, Label: label,
				Detail: strings.Join(cells, " ")})
		},
	}
	if _, err := hmmsim.Simulate(prog, cost.Log{}, opts); err != nil {
		fatal("%v", err)
	}
}

// figure4 renders the UNPACK(0) recursion of Section 5.1 at block
// granularity: contexts P0..P{v-1} packed at the top, v empty blocks
// after, then one copy per level interspersing the buffers.
func figure4(v int, o *obs.Observer) {
	blocks := make([]string, 2*v)
	for i := range blocks {
		if i < v {
			blocks[i] = fmt.Sprintf("P%d", i)
		} else {
			blocks[i] = "__"
		}
	}
	snapshot := func(tag string) {
		o.Emit(obs.Event{Sim: "memtrace", Kind: "fig4.layout",
			Phase: tag, N: int64(v), Detail: strings.Join(blocks, " ")})
	}
	fmt.Printf("Figure 4 — BT memory layout during UNPACK(0), v=%d\n", v)
	fmt.Printf("(each level copies the lower half of the packed prefix one half-width down;\n")
	fmt.Printf("vacated blocks become the interspersed buffers)\n\n")
	snapshot("initial")
	logv := dbsp.Log2(v)
	for lvl := 0; lvl < logv; lvl++ {
		n := v >> lvl
		// Copy blocks [n/2, n) onto [n, 3n/2); the sources become free.
		copy(blocks[n:3*n/2], blocks[n/2:n])
		for i := n / 2; i < n; i++ {
			blocks[i] = "__"
		}
		snapshot(fmt.Sprintf("UNPACK(%d)", lvl))
	}
	fmt.Println()
	fmt.Println("PACK(0) reverses the copies bottom-up, regathering the contexts at the top.")
}
