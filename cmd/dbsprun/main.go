// Command dbsprun executes a named D-BSP program on the native
// goroutine-parallel engine and prints the per-superstep cost breakdown
// (label, τ, h, charged time), then optionally simulates it on the HMM
// and BT hosts and reports the slowdowns.
//
// Usage:
//
//	dbsprun -prog sort -v 256 -g x^0.5 [-sim]
//
// Programs: rotate, bcast, prefix, matmul, fft, fftrec, sort, permute,
// conv, reduce, stencil.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algos"
	"repro/internal/core/btsim"
	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
	"repro/internal/theory"
	"repro/internal/workload"
)

func buildProgram(name string, v int) (*dbsp.Program, error) {
	switch name {
	case "rotate":
		return progtest.Rotate(v, progtest.Descending(v)...), nil
	case "bcast":
		return algos.Broadcast(v, 42), nil
	case "prefix":
		return algos.PrefixSums(v, func(p int) int64 { return int64(p + 1) }), nil
	case "matmul":
		side := 1 << uint(dbsp.Log2(v)/2)
		if side*side != v {
			return nil, fmt.Errorf("matmul needs v = 4^k, got %d", v)
		}
		return algos.MatMul(v, workload.Matrix(1, side, 8), workload.Matrix(2, side, 8)), nil
	case "fft":
		return algos.DFTButterfly(v, workload.KeyFunc(3, v, 1<<20)), nil
	case "fftrec":
		return algos.DFTRecursive(v, workload.KeyFunc(3, v, 1<<20)), nil
	case "sort":
		return algos.Sort(v, workload.KeyFunc(4, v, int64(4*v))), nil
	case "permute":
		return algos.Permute(v, workload.Permutation(5, v), func(p int) int64 { return int64(p) }), nil
	case "conv":
		return algos.Convolution(v, workload.KeyFunc(6, v, 1000), workload.KeyFunc(7, v, 1000)), nil
	case "reduce":
		return algos.Reduce(v, algos.OpSum, func(p int) int64 { return int64(p + 1) }), nil
	case "stencil":
		return algos.Stencil1D(v, 4, func(p int) int64 { return int64(p * 16) }), nil
	default:
		return nil, fmt.Errorf("unknown program %q", name)
	}
}

func main() {
	progName := flag.String("prog", "rotate", "program: rotate|bcast|prefix|matmul|fft|fftrec|sort|permute|conv|reduce|stencil")
	v := flag.Int("v", 64, "processors (power of two; matmul needs a power of four)")
	gSpec := flag.String("g", "x^0.5", "bandwidth/access function: log, x^A, const:C, linear:S")
	sim := flag.Bool("sim", false, "also simulate on HMM and BT hosts with f = g")
	verbose := flag.Bool("steps", false, "print every superstep (default: summary by label)")
	trace := flag.Bool("trace", false, "record every message and print the locality histogram")
	flag.Parse()

	g, err := cost.Parse(*gSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbsprun:", err)
		os.Exit(2)
	}
	prog, err := buildProgram(*progName, *v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbsprun:", err)
		os.Exit(2)
	}

	var res *dbsp.Result
	var tr *dbsp.Trace
	if *trace {
		res, tr, err = dbsp.RunTraced(prog, g)
	} else {
		res, err = dbsp.Run(prog, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbsprun:", err)
		os.Exit(1)
	}

	fmt.Printf("program %s on D-BSP(v=%d, µ=%d, g=%s): %d supersteps\n\n",
		prog.Name, prog.V, prog.Mu(), g.Name(), len(prog.Steps))
	if *verbose {
		fmt.Printf("%5s %6s %8s %4s %12s\n", "step", "label", "tau", "h", "cost")
		for i, sc := range res.Steps {
			fmt.Printf("%5d %6d %8d %4d %12.2f\n", i, sc.Label, sc.Tau, sc.H, sc.Cost)
		}
	} else {
		type agg struct {
			count int
			tau   int64
			cost  float64
		}
		byLabel := map[int]*agg{}
		for _, sc := range res.Steps {
			a := byLabel[sc.Label]
			if a == nil {
				a = &agg{}
				byLabel[sc.Label] = a
			}
			a.count++
			a.tau += sc.Tau
			a.cost += sc.Cost
		}
		fmt.Printf("%6s %6s %10s %14s\n", "label", "steps", "Σtau", "Σcost")
		for l := 0; l <= prog.LogV(); l++ {
			if a := byLabel[l]; a != nil {
				fmt.Printf("%6d %6d %10d %14.2f\n", l, a.count, a.tau, a.cost)
			}
		}
	}
	fmt.Printf("\nD-BSP time T = %.2f (computation %d, communication %.2f)\n",
		res.Cost, res.TotalTau(), res.CommCost())

	if tr != nil {
		fmt.Printf("\n%d messages routed; label slack %.2f levels\n%s",
			tr.Messages(), tr.Slack(), tr.FormatHistogram())
	}

	if *sim {
		h, err := hmmsim.Simulate(prog, g, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbsprun: hmm:", err)
			os.Exit(1)
		}
		b, err := btsim.Simulate(prog, g, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbsprun: bt:", err)
			os.Exit(1)
		}
		lam := prog.Lambda(true)
		predH := theory.HMMSimulation(g, prog.V, prog.Mu(), float64(res.TotalTau()), lam)
		predB := theory.BTSimulation(prog.V, prog.Mu(), float64(res.TotalTau()), lam)
		fmt.Printf("\nHMM simulation (f=g): cost %.3g  slowdown %.1f  Thm5 bound %.3g (ratio %.2f)\n",
			h.HostCost, h.HostCost/res.Cost, predH, h.HostCost/predH)
		fmt.Printf("BT  simulation (f=g): cost %.3g  slowdown %.1f  Thm12 bound %.3g (ratio %.2f), %d block transfers\n",
			b.HostCost, b.HostCost/res.Cost, predB, b.HostCost/predB, b.Blocks.Copies)
	}
}
