// Command dbsprun executes a named D-BSP program and prints the
// per-superstep cost breakdown (label, τ, h, charged time), then
// optionally simulates it on the HMM and BT hosts and reports the
// slowdowns.
//
// Usage:
//
//	dbsprun -prog sort -v 256 -g x^0.5 [-engine native|sharded] [-shards N]
//	        [-sim] [-check] [-metrics] [-trace-out f.jsonl] [-profile p]
//	        [-serve ADDR] [-serve-linger D] [-cost-profile F]
//
// Engines: "native" chunks handler execution over GOMAXPROCS worker
// goroutines against one flat context arena; "sharded" multiplexes the
// v processors over -shards per-shard arenas with a two-phase delivery
// exchange, scaling to v = 2^20 and beyond. Both produce bit-identical
// results — contexts, per-step costs, totals and error text.
//
// Programs: rotate, bcast, prefix, matmul, fft, fftrec, sort, permute,
// conv, reduce, stencil.
//
// With -check the native run is executed under the internal/invariant
// debug checker, which validates after every superstep that delivery
// conserved the message multiset, that no message left its cluster,
// and that Transpose declarations match the actual traffic; violations
// print to stderr and exit 1.
//
// With -metrics the run is instrumented through internal/obs: the
// native engine and all three simulators (HMM, BT, and the Theorem 10
// self-simulation with v′ host processors) publish their accounting to
// one registry, and a per-phase/per-level cost report is printed. With
// -trace-out the structured simulation events are written as JSONL.
// With -profile PREFIX, CPU and heap profiles are written to
// PREFIX.cpu.pprof and PREFIX.heap.pprof.
//
// With -serve ADDR the run exposes the live observability endpoint
// (/metrics in Prometheus text format, /debug/costprofile, /healthz,
// /debug/pprof/*) while it executes; -serve-linger keeps it up after
// the run so one-shot invocations stay scrapeable (interrupt to stop
// early). -cost-profile writes the folded span-stack cost profile
// (rooted at the program name) for flamegraph tools.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/algos"
	"repro/internal/core/btsim"
	"repro/internal/core/hmmsim"
	"repro/internal/core/selfsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/progtest"
	"repro/internal/theory"
	"repro/internal/workload"
)

func buildProgram(name string, v int) (*dbsp.Program, error) {
	switch name {
	case "rotate":
		return progtest.Rotate(v, progtest.Descending(v)...), nil
	case "bcast":
		return algos.Broadcast(v, 42), nil
	case "prefix":
		return algos.PrefixSums(v, func(p int) int64 { return int64(p + 1) }), nil
	case "matmul":
		side := 1 << uint(dbsp.Log2(v)/2)
		if side*side != v {
			return nil, fmt.Errorf("matmul needs v = 4^k, got %d", v)
		}
		return algos.MatMul(v, workload.Matrix(1, side, 8), workload.Matrix(2, side, 8)), nil
	case "fft":
		return algos.DFTButterfly(v, workload.KeyFunc(3, v, 1<<20)), nil
	case "fftrec":
		return algos.DFTRecursive(v, workload.KeyFunc(3, v, 1<<20)), nil
	case "sort":
		return algos.Sort(v, workload.KeyFunc(4, v, int64(4*v))), nil
	case "permute":
		return algos.Permute(v, workload.Permutation(5, v), func(p int) int64 { return int64(p) }), nil
	case "conv":
		return algos.Convolution(v, workload.KeyFunc(6, v, 1000), workload.KeyFunc(7, v, 1000)), nil
	case "reduce":
		return algos.Reduce(v, algos.OpSum, func(p int) int64 { return int64(p + 1) }), nil
	case "stencil":
		return algos.Stencil1D(v, 4, func(p int) int64 { return int64(p * 16) }), nil
	default:
		return nil, fmt.Errorf("unknown program %q", name)
	}
}

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2. Every bad-invocation path funnels
// through here; runtime failures use fatal (exit 1) instead.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "dbsprun: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// fatal reports a runtime failure and exits with status 1.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbsprun: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	progName := flag.String("prog", "rotate", "program: rotate|bcast|prefix|matmul|fft|fftrec|sort|permute|conv|reduce|stencil")
	v := flag.Int("v", 64, "processors (power of two; matmul needs a power of four)")
	engine := flag.String("engine", "native", "execution engine: native|sharded")
	shards := flag.Int("shards", 0, "shard count for -engine=sharded (0 = GOMAXPROCS, clamped to v)")
	gSpec := flag.String("g", "x^0.5", "bandwidth/access function: log, x^A, const:C, linear:S")
	sim := flag.Bool("sim", false, "also simulate on HMM and BT hosts with f = g")
	verbose := flag.Bool("steps", false, "print every superstep (default: summary by label)")
	trace := flag.Bool("trace", false, "record every message and print the locality histogram")
	check := flag.Bool("check", false, "validate per-superstep invariants (delivery, cluster discipline, transpose declarations)")
	metrics := flag.Bool("metrics", false, "instrument the run and all three simulators; print the cost report")
	vPrime := flag.Int("vprime", 0, "host processors for the self-simulation under -metrics (default v/4, min 1)")
	traceOut := flag.String("trace-out", "", "write structured simulation events to this JSONL file")
	profile := flag.String("profile", "", "write CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	serve := flag.String("serve", "", "serve live observability (/metrics, /debug/costprofile, /debug/pprof) on this host:port")
	serveLinger := flag.Duration("serve-linger", 0, "keep the observability endpoint up this long after the run (requires -serve; interrupt to stop early)")
	costProfile := flag.String("cost-profile", "", "write the folded span-stack cost profile to this file")
	flag.Parse()

	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if *v < 1 || *v&(*v-1) != 0 {
		usageErr("-v %d is not a power of two", *v)
	}
	if *engine != "native" && *engine != "sharded" {
		usageErr("unknown -engine %q (want native or sharded)", *engine)
	}
	if *shards < 0 {
		usageErr("-shards must be non-negative, got %d", *shards)
	}
	if *shards > 0 && *engine != "sharded" {
		usageErr("-shards requires -engine=sharded")
	}
	g, err := cost.Parse(*gSpec)
	if err != nil {
		usageErr("%v", err)
	}
	prog, err := buildProgram(*progName, *v)
	if err != nil {
		usageErr("%v", err)
	}
	if *vPrime != 0 && !*metrics {
		usageErr("-vprime requires -metrics")
	}
	if *vPrime == 0 {
		*vPrime = max(*v/4, 1)
	}
	if *vPrime < 1 || *vPrime&(*vPrime-1) != 0 || *vPrime > *v {
		usageErr("-vprime %d is not a power of two in [1, %d]", *vPrime, *v)
	}
	if *serve != "" {
		if _, _, err := net.SplitHostPort(*serve); err != nil {
			usageErr("bad -serve address: %v", err)
		}
	}
	if *serveLinger < 0 {
		usageErr("-serve-linger must be non-negative, got %v", *serveLinger)
	}
	if *serveLinger > 0 && *serve == "" {
		usageErr("-serve-linger requires -serve")
	}

	if *profile != "" {
		f, err := os.Create(*profile + ".cpu.pprof")
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			h, err := os.Create(*profile + ".heap.pprof")
			if err != nil {
				fatal("%v", err)
			}
			defer h.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(h); err != nil {
				fatal("heap profile: %v", err)
			}
		}()
	}

	// Observability: one registry + optional JSONL event sink and
	// span-stack profile, shared by the native run and every simulator.
	var o *obs.Observer
	var reg *obs.Registry
	var prof *obs.Profile
	if *metrics || *traceOut != "" || *serve != "" || *costProfile != "" {
		reg = obs.NewRegistry()
		var sink obs.Sink
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal("%v", err)
			}
			js := obs.NewJSONLSink(f)
			defer func() {
				if err := js.Close(); err != nil {
					fatal("trace-out: %v", err)
				}
				if err := f.Close(); err != nil {
					fatal("trace-out: %v", err)
				}
			}()
			sink = js
		}
		o = obs.New(reg, sink)
		if *costProfile != "" || *serve != "" {
			prof = obs.NewProfile()
			o.Prof = prof.Scope(*progName)
		}
	}

	var srv *obshttp.Server
	if *serve != "" {
		var err error
		srv, err = obshttp.Serve(*serve, obshttp.Options{Registry: reg, Profile: prof})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "dbsprun: serving observability on http://%s\n", srv.Addr())
	}

	var res *dbsp.Result
	var tr *dbsp.Trace
	var checker *invariant.Checker
	sharded := *engine == "sharded"
	switch {
	case *check && sharded:
		res, tr, checker, err = invariant.RunSharded(prog, g, *shards, o)
	case *check:
		res, tr, checker, err = invariant.Run(prog, g, o)
	case *trace || o != nil:
		if sharded {
			res, tr, err = dbsp.RunShardedObserved(prog, g, *shards, o)
		} else {
			res, tr, err = dbsp.RunObserved(prog, g, o)
		}
	case sharded:
		res, err = dbsp.RunSharded(prog, g, *shards)
	default:
		res, err = dbsp.Run(prog, g)
	}
	if err != nil {
		fatal("%v", err)
	}
	if checker != nil {
		if vs := checker.Violations(); len(vs) > 0 {
			for _, viol := range vs {
				fmt.Fprintf(os.Stderr, "dbsprun: invariant violation: %s\n", viol)
			}
			fatal("%d invariant violation(s)", int64(len(vs))+checker.Truncated())
		}
		fmt.Printf("invariant check: %d supersteps clean\n\n", len(res.Steps))
	}

	fmt.Printf("program %s on D-BSP(v=%d, µ=%d, g=%s): %d supersteps\n\n",
		prog.Name, prog.V, prog.Mu(), g.Name(), len(prog.Steps))
	if *verbose {
		fmt.Printf("%5s %6s %8s %4s %12s\n", "step", "label", "tau", "h", "cost")
		for i, sc := range res.Steps {
			fmt.Printf("%5d %6d %8d %4d %12.2f\n", i, sc.Label, sc.Tau, sc.H, sc.Cost)
		}
	} else {
		type agg struct {
			count int
			tau   int64
			cost  float64
		}
		byLabel := map[int]*agg{}
		for _, sc := range res.Steps {
			a := byLabel[sc.Label]
			if a == nil {
				a = &agg{}
				byLabel[sc.Label] = a
			}
			a.count++
			a.tau += sc.Tau
			a.cost += sc.Cost
		}
		fmt.Printf("%6s %6s %10s %14s\n", "label", "steps", "Σtau", "Σcost")
		for l := 0; l <= prog.LogV(); l++ {
			if a := byLabel[l]; a != nil {
				fmt.Printf("%6d %6d %10d %14.2f\n", l, a.count, a.tau, a.cost)
			}
		}
	}
	fmt.Printf("\nD-BSP time T = %.2f (computation %d, communication %.2f)\n",
		res.Cost, res.TotalTau(), res.CommCost())

	if *trace && tr != nil {
		fmt.Printf("\n%d messages routed; label slack %.2f levels\n%s",
			tr.Messages(), tr.Slack(), tr.FormatHistogram())
	}

	if *sim || *metrics {
		h, err := hmmsim.Simulate(prog, g, &hmmsim.Options{Obs: o})
		if err != nil {
			fatal("hmm: %v", err)
		}
		b, err := btsim.Simulate(prog, g, &btsim.Options{Obs: o})
		if err != nil {
			fatal("bt: %v", err)
		}
		lam := prog.Lambda(true)
		predH := theory.HMMSimulation(g, prog.V, prog.Mu(), float64(res.TotalTau()), lam)
		predB := theory.BTSimulation(prog.V, prog.Mu(), float64(res.TotalTau()), lam)
		fmt.Printf("\nHMM simulation (f=g): cost %.3g  slowdown %.1f  Thm5 bound %.3g (ratio %.2f)\n",
			h.HostCost, h.HostCost/res.Cost, predH, h.HostCost/predH)
		fmt.Printf("BT  simulation (f=g): cost %.3g  slowdown %.1f  Thm12 bound %.3g (ratio %.2f), %d block transfers\n",
			b.HostCost, b.HostCost/res.Cost, predB, b.HostCost/predB, b.Blocks.Copies)
	}
	if *metrics {
		sf, err := selfsim.Simulate(prog, g, *vPrime, &selfsim.Options{Obs: o})
		if err != nil {
			fatal("self: %v", err)
		}
		fmt.Printf("self-simulation (v'=%d): cost %.3g  slowdown %.1f  Thm10 target v/v' = %d\n",
			*vPrime, sf.HostCost, sf.HostCost/res.Cost, prog.V / *vPrime)
		fmt.Printf("\n%s", obs.Report(reg))
	}

	if *costProfile != "" {
		f, err := os.Create(*costProfile)
		if err != nil {
			fatal("%v", err)
		}
		err = prof.WriteFolded(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("%v", err)
		}
	}
	if srv != nil {
		if *serveLinger > 0 {
			fmt.Fprintf(os.Stderr, "dbsprun: lingering %v for scrapes on http://%s (interrupt to stop)\n",
				*serveLinger, srv.Addr())
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			select {
			case <-time.After(*serveLinger):
			case <-sig:
			}
			signal.Stop(sig)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal("observability shutdown: %v", err)
		}
	}
}
