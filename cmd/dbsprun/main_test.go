package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// runSelf builds the dbsprun binary once and executes it (go run does
// not propagate the child's exit code, which the error-path tests
// assert on).
func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dbsprun-test")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dbsprun")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = os.ErrInvalid
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build: %v\n%s", buildErr, binPath)
	}
	cmd := exec.Command(binPath, args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", binPath, args, err, out)
	}
	return string(out), code
}

// TestMetricsReportAllSimulators: -metrics must print the obs report
// with a section for the native run and each of the three simulators,
// including phase and level tables.
func TestMetricsReportAllSimulators(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, code := runSelf(t, "-prog", "rotate", "-v", "16", "-g", "log", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"== dbsp ==", "== hmm ==", "== bt ==", "== self ==",
		"phase", "level", "total",
		"hmm.rounds", "bt.blocks.words", "self.local.runs",
		"HMM simulation", "BT  simulation", "self-simulation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestTraceOutJSONL: -trace-out must produce parseable events from the
// native engine and the simulators.
func TestTraceOutJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	path := filepath.Join(t.TempDir(), "events.jsonl")
	out, code := runSelf(t, "-prog", "rotate", "-v", "8", "-g", "log", "-metrics", "-trace-out", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ParseJSONL(f)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sims := map[string]bool{}
	for _, e := range events {
		sims[e.Sim] = true
	}
	for _, want := range []string{"dbsp", "hmm", "bt", "self"} {
		if !sims[want] {
			t.Errorf("no events from %q (got %v)", want, sims)
		}
	}
}

// TestProfileFlag: -profile must write both pprof files.
func TestProfileFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	prefix := filepath.Join(t.TempDir(), "prof")
	out, code := runSelf(t, "-prog", "rotate", "-v", "8", "-g", "log", "-profile", prefix)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		if fi, err := os.Stat(prefix + suffix); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", suffix, err)
		}
	}
}

// TestCheckFlagClean: -check on a well-formed program (fft carries
// real Transpose declarations) must report a clean run and exit 0.
func TestCheckFlagClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, code := runSelf(t, "-prog", "fft", "-v", "16", "-g", "log", "-check")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "invariant check:") || !strings.Contains(out, "clean") {
		t.Errorf("no clean-check summary in output:\n%s", out)
	}
}

// TestCostProfileFlag: -cost-profile writes folded span stacks rooted
// at the program name, covering the native run and both simulators.
func TestCostProfileFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	path := filepath.Join(t.TempDir(), "cost.folded")
	out, code := runSelf(t, "-prog", "rotate", "-v", "16", "-g", "log", "-metrics", "-cost-profile", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	folded := string(raw)
	for _, want := range []string{"rotate;dbsp;", "rotate;hmm;", "rotate;bt;", "rotate;self;"} {
		if !strings.Contains(folded, want) {
			t.Errorf("folded profile missing %q stacks:\n%s", want, folded)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(folded), "\n") {
		fields := strings.Split(line, " ")
		if len(fields) != 2 {
			t.Errorf("malformed folded line %q", line)
		}
	}
}

// TestServeSmoke: -serve starts the observability endpoint and shuts
// it down cleanly after the run (the live-scrape path is covered by
// the experiments CLI test and scripts/obs_smoke.sh).
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, code := runSelf(t, "-prog", "rotate", "-v", "8", "-g", "log", "-serve", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "serving observability on http://127.0.0.1:") {
		t.Errorf("no serving line:\n%s", out)
	}
}

// TestShardedEngineOutputIdentical: the same program under
// -engine=native and -engine=sharded (any shard count) must print
// byte-identical stdout — the cost breakdown exposes every charged
// number, so byte equality here is the CLI-level bit-identity check.
func TestShardedEngineOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	native, code := runSelf(t, "-prog", "sort", "-v", "64", "-g", "x^0.5", "-steps")
	if code != 0 {
		t.Fatalf("native exit %d:\n%s", code, native)
	}
	for _, shards := range []string{"1", "3", "64", "200"} {
		sharded, code := runSelf(t, "-prog", "sort", "-v", "64", "-g", "x^0.5", "-steps",
			"-engine", "sharded", "-shards", shards)
		if code != 0 {
			t.Fatalf("sharded (shards=%s) exit %d:\n%s", shards, code, sharded)
		}
		if sharded != native {
			t.Errorf("shards=%s: output differs from native\nnative:\n%s\nsharded:\n%s", shards, native, sharded)
		}
	}
}

// TestShardedCheckFlag: -check must compose with -engine=sharded — the
// invariant checker rides the sharded engine's StepEvent stream.
func TestShardedCheckFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, code := runSelf(t, "-prog", "fft", "-v", "16", "-g", "log", "-check", "-engine", "sharded", "-shards", "3")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "invariant check:") || !strings.Contains(out, "clean") {
		t.Errorf("no clean-check summary in output:\n%s", out)
	}
}

// TestFlagValidationExitsTwo: every bad invocation must print the
// usage text and exit 2 (not 1, not a panic).
func TestFlagValidationExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	cases := [][]string{
		{"-prog", "nosuch"},
		{"-v", "12"},
		{"-g", "bogus^^"},
		{"-prog", "matmul", "-v", "8"},
		{"-metrics", "-vprime", "3"},
		{"-vprime", "2"}, // -vprime without -metrics
		{"-serve", "noport"},
		{"-serve", "127.0.0.1:0", "-serve-linger", "-1s"},
		{"-serve-linger", "5s"}, // -serve-linger without -serve
		{"-engine", "threaded"},
		{"-shards", "-2", "-engine", "sharded"},
		{"-shards", "4"}, // -shards without -engine=sharded
		{"extra-arg"},
	}
	for _, args := range cases {
		out, code := runSelf(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2\n%s", args, code, out)
		}
		if !strings.Contains(out, "Usage") && !strings.Contains(out, "-prog") {
			t.Errorf("%v: no usage text printed:\n%s", args, out)
		}
	}
}
