package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/sweep"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// runSelf builds the experiments binary once and executes it (go run
// does not propagate the child's exit code, which the error-path tests
// assert on). Stdout and stderr are returned separately: the output
// contract covers stdout only.
func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "experiments-test")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "experiments")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = os.ErrInvalid
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build: %v\n%s", buildErr, binPath)
	}
	cmd := exec.Command(binPath, args...)
	var outBuf, errBuf strings.Builder
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", binPath, args, err, errBuf.String())
	}
	return outBuf.String(), errBuf.String(), code
}

// The engine's central promise at the CLI boundary: stdout is
// byte-identical whatever the worker count, in both output formats.
func TestOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	sel := "-run=E0[1-3]"
	mdRef, _, code := runSelf(t, "-quick", sel, "-workers=1")
	if code != 0 {
		t.Fatalf("workers=1 exited %d", code)
	}
	jsonRef, _, code := runSelf(t, "-quick", sel, "-workers=1", "-json")
	if code != 0 {
		t.Fatalf("workers=1 -json exited %d", code)
	}
	for _, w := range []string{"-workers=2", "-workers=7", "-workers=0"} {
		md, _, code := runSelf(t, "-quick", sel, w)
		if code != 0 || md != mdRef {
			t.Errorf("%s: markdown diverges from serial run (exit %d)", w, code)
		}
		js, _, code := runSelf(t, "-quick", sel, w, "-json")
		if code != 0 || js != jsonRef {
			t.Errorf("%s: JSON diverges from serial run (exit %d)", w, code)
		}
	}
}

// -run filters by regexp; -only by exact id; both compose.
func TestRunAndOnlyFiltering(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	out, _, code := runSelf(t, "-quick", "-run=E0[12]$")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "## E01") || !strings.Contains(out, "## E02") {
		t.Error("E01/E02 missing from -run output")
	}
	if strings.Contains(out, "## E03") {
		t.Error("-run matched too much")
	}
	out, _, code = runSelf(t, "-quick", "-run=E0", "-only=E05")
	if code != 0 || !strings.Contains(out, "## E05") || strings.Contains(out, "## E01") {
		t.Errorf("-run+-only composition wrong (exit %d)", code)
	}
}

// Flag-validation failures exit 2 with usage.
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	cases := [][]string{
		{"-run=["},
		{"-only=E99"},
		{"-run=NOPE"},
	}
	for _, args := range cases {
		_, stderr, code := runSelf(t, append([]string{"-quick"}, args...)...)
		if code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-workers") {
			t.Errorf("%v: no usage text on stderr", args)
		}
	}
}

// -jsonl writes one stable-ordered record per experiment.
func TestJSONLRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	_, _, code := runSelf(t, "-quick", "-run=E0[1-4]", "-workers=3", "-metrics", "-jsonl", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := sweep.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"E01", "E02", "E03", "E04"}
	if len(recs) != len(wantIDs) {
		t.Fatalf("%d records, want %d", len(recs), len(wantIDs))
	}
	for i, rec := range recs {
		if rec.ID != wantIDs[i] || rec.Seq != i || rec.Status != "ok" {
			t.Errorf("record %d = %s/%d/%s", i, rec.ID, rec.Seq, rec.Status)
		}
		if rec.Seed != sweep.SeedFor(0, rec.ID) {
			t.Errorf("record %s seed = %d, want SeedFor", rec.ID, rec.Seed)
		}
		if len(rec.Value) == 0 {
			t.Errorf("record %s has no table value", rec.ID)
		}
	}
	// E03/E04 run HMM simulations, so with -metrics their records carry
	// captured hmm.* samples.
	var sawHMM bool
	for _, m := range recs[2].Metrics {
		if strings.HasPrefix(m.Name, "hmm.") {
			sawHMM = true
		}
	}
	if !sawHMM {
		t.Error("E03 record captured no hmm.* metrics")
	}
}

// -metrics appends the aggregate report including the sweep engine's
// own throughput section.
func TestMetricsReportIncludesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	out, _, code := runSelf(t, "-quick", "-run=E0[34]", "-workers=2", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"== sweep ==", "sweep.jobs.started", "== hmm ==", "Aggregate simulation metrics"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report missing %q", want)
		}
	}
}
