package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// runSelf builds the experiments binary once and executes it (go run
// does not propagate the child's exit code, which the error-path tests
// assert on). Stdout and stderr are returned separately: the output
// contract covers stdout only.
func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "experiments-test")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "experiments")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = os.ErrInvalid
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build: %v\n%s", buildErr, binPath)
	}
	cmd := exec.Command(binPath, args...)
	var outBuf, errBuf strings.Builder
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", binPath, args, err, errBuf.String())
	}
	return outBuf.String(), errBuf.String(), code
}

// The engine's central promise at the CLI boundary: stdout is
// byte-identical whatever the worker count, in both output formats.
func TestOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	sel := "-run=E0[1-3]"
	mdRef, _, code := runSelf(t, "-quick", sel, "-workers=1")
	if code != 0 {
		t.Fatalf("workers=1 exited %d", code)
	}
	jsonRef, _, code := runSelf(t, "-quick", sel, "-workers=1", "-json")
	if code != 0 {
		t.Fatalf("workers=1 -json exited %d", code)
	}
	for _, w := range []string{"-workers=2", "-workers=7", "-workers=0"} {
		md, _, code := runSelf(t, "-quick", sel, w)
		if code != 0 || md != mdRef {
			t.Errorf("%s: markdown diverges from serial run (exit %d)", w, code)
		}
		js, _, code := runSelf(t, "-quick", sel, w, "-json")
		if code != 0 || js != jsonRef {
			t.Errorf("%s: JSON diverges from serial run (exit %d)", w, code)
		}
	}
}

// -run filters by regexp; -only by exact id; both compose.
func TestRunAndOnlyFiltering(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	out, _, code := runSelf(t, "-quick", "-run=E0[12]$")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "## E01") || !strings.Contains(out, "## E02") {
		t.Error("E01/E02 missing from -run output")
	}
	if strings.Contains(out, "## E03") {
		t.Error("-run matched too much")
	}
	out, _, code = runSelf(t, "-quick", "-run=E0", "-only=E05")
	if code != 0 || !strings.Contains(out, "## E05") || strings.Contains(out, "## E01") {
		t.Errorf("-run+-only composition wrong (exit %d)", code)
	}
}

// Flag-validation failures exit 2 with usage.
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	cases := [][]string{
		{"-run=["},
		{"-only=E99"},
		{"-run=NOPE"},
		{"-serve=nohostport"},
		{"-serve=127.0.0.1:0", "-serve-linger=-1s"},
		{"-serve-linger=5s"}, // linger without -serve
	}
	for _, args := range cases {
		_, stderr, code := runSelf(t, append([]string{"-quick"}, args...)...)
		if code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-workers") {
			t.Errorf("%v: no usage text on stderr", args)
		}
	}
}

// -jsonl writes one stable-ordered record per experiment.
func TestJSONLRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	_, _, code := runSelf(t, "-quick", "-run=E0[1-4]", "-workers=3", "-metrics", "-jsonl", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := sweep.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"E01", "E02", "E03", "E04"}
	if len(recs) != len(wantIDs) {
		t.Fatalf("%d records, want %d", len(recs), len(wantIDs))
	}
	for i, rec := range recs {
		if rec.ID != wantIDs[i] || rec.Seq != i || rec.Status != "ok" {
			t.Errorf("record %d = %s/%d/%s", i, rec.ID, rec.Seq, rec.Status)
		}
		if rec.Seed != sweep.SeedFor(0, rec.ID) {
			t.Errorf("record %s seed = %d, want SeedFor", rec.ID, rec.Seed)
		}
		if len(rec.Value) == 0 {
			t.Errorf("record %s has no table value", rec.ID)
		}
	}
	// E03/E04 run HMM simulations, so with -metrics their records carry
	// captured hmm.* samples.
	var sawHMM bool
	for _, m := range recs[2].Metrics {
		if strings.HasPrefix(m.Name, "hmm.") {
			sawHMM = true
		}
	}
	if !sawHMM {
		t.Error("E03 record captured no hmm.* metrics")
	}
}

// TestServeLiveObservability drives the tentpole end to end: run a
// sweep with -serve, scrape /debug/progress until every job has moved
// queued → running → ok, check /metrics exposes all the expected
// families in Prometheus text, then interrupt the lingering server and
// require a clean exit with the canonical stdout.
func TestServeLiveObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	// Reference stdout: serving must not perturb the output contract.
	ref, _, code := runSelf(t, "-quick", "-run=E0[1-4]", "-workers=2")
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}

	cmd := exec.Command(binPath, "-quick", "-run=E0[1-4]", "-workers=2",
		"-serve=127.0.0.1:0", "-serve-linger=60s", "-cost-profile="+filepath.Join(t.TempDir(), "cost.folded"))
	var outBuf strings.Builder
	cmd.Stdout = &outBuf
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The bound address is announced on stderr before the sweep starts.
	var addr string
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		if line := sc.Text(); strings.Contains(line, "serving observability on http://") {
			addr = line[strings.Index(line, "http://")+len("http://"):]
			break
		}
	}
	if addr == "" {
		cmd.Wait()
		t.Fatalf("no serving line on stderr (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderrPipe)

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Poll the progress endpoint until the sweep reports done: the
	// /debug/progress view must track the jobs through their state
	// transitions to terminal "ok".
	var snap sweep.ProgressSnapshot
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := get("/debug/progress")
		if status != http.StatusOK {
			t.Fatalf("/debug/progress status %d", status)
		}
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/debug/progress not JSON: %v\n%s", err, body)
		}
		if snap.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reported done: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Total != 4 || snap.Completed != 4 || snap.Failed != 0 {
		t.Errorf("final progress = %+v, want 4/4 completed", snap)
	}
	for _, j := range snap.Jobs {
		if j.Status != "ok" {
			t.Errorf("job %s finished %q, want ok", j.ID, j.Status)
		}
		if j.WallMS < 0 || j.UpdatedMS < j.StartMS {
			t.Errorf("job %s has inconsistent timestamps: %+v", j.ID, j)
		}
	}

	// /metrics during the linger window: sweep engine families plus the
	// hmm.* families from E03/E04, in Prometheus text format.
	status, metrics := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		"# TYPE sweep_jobs_started counter",
		"# TYPE sweep_jobs_running gauge",
		`sweep_job_wall_ms_bucket{le="+Inf"}`,
		"sweep_job_wall_ms_quantile",
		"hmm_cost_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if status, body := get("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", status, body)
	}
	if status, body := get("/debug/costprofile"); status != http.StatusOK || !strings.Contains(body, ";hmm;") {
		t.Errorf("/debug/costprofile = %d, want folded hmm stacks:\n%s", status, body)
	}

	// Interrupt the linger: the run finished clean, so the process must
	// shut the server down and exit 0 with the untouched report.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("exit after interrupt: %v", err)
	}
	if outBuf.String() != ref {
		t.Errorf("stdout with -serve diverges from reference run:\n got: %q\nwant: %q", outBuf.String(), ref)
	}
}

// -metrics appends the aggregate report including the sweep engine's
// own throughput section.
func TestMetricsReportIncludesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	out, _, code := runSelf(t, "-quick", "-run=E0[34]", "-workers=2", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"== sweep ==", "sweep.jobs.started", "== hmm ==", "Aggregate simulation metrics"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report missing %q", want)
		}
	}
}
