// Command experiments regenerates every table of EXPERIMENTS.md: each
// quantitative claim of the paper (Facts 1-2, Theorems 5/10/12,
// Corollaries 6/11, Propositions 7-9, the Section 5.3 comparisons and
// the substrate bounds) as a measured-vs-predicted table, run across a
// bounded worker pool by the internal/sweep engine.
//
// Usage:
//
//	experiments [-quick] [-run REGEXP] [-only E05[,E09,...]] [-workers N]
//	            [-keep-going] [-timeout D] [-seed S] [-json] [-jsonl F]
//	            [-metrics] [-trace-out F] [-profile P]
//	            [-serve ADDR] [-serve-linger D] [-cost-profile F]
//
// -quick trims the parameter sweeps for a fast smoke run; -run selects
// experiments whose id matches the regexp and -only by exact ids.
// -workers bounds the worker pool (default GOMAXPROCS); tables, their
// order and every measured value are byte-identical for any worker
// count — per-job seeds derive from the base -seed and the experiment
// id, never from scheduling. -keep-going runs the remaining experiments
// after a failure instead of cancelling the sweep; -timeout bounds the
// whole run. -json emits the tables as a JSON array; -jsonl streams one
// sweep record per experiment (id, status, seed, wall-clock, captured
// metrics) to a file. -metrics instruments every simulation the tables
// run and appends the aggregate internal/obs report (including the
// sweep engine's own throughput counters); -trace-out streams the
// structured events to a JSONL file; -profile writes P.cpu.pprof and
// P.heap.pprof. Timing goes to stderr so stdout stays deterministic.
//
// -serve ADDR starts the live observability endpoint (host:port; port 0
// picks a free port, printed to stderr): /metrics in Prometheus text
// format, /debug/progress with per-job sweep state, /debug/costprofile
// with the folded span-stack cost profile, /healthz and
// /debug/pprof/*. The exporter only reads registry snapshots, so
// serving never perturbs the charged costs. -serve-linger keeps the
// endpoint up that long after the sweep finishes (interrupt to stop
// early); -cost-profile writes the folded stacks to a file for
// flamegraph tools. Both serving and profiling leave stdout
// byte-identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "trim parameter sweeps for a fast smoke run")
	runPat := flag.String("run", "", "run only experiments whose id matches this regexp")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E05,E09)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	keepGoing := flag.Bool("keep-going", false, "run remaining experiments after a failure")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	seed := flag.Uint64("seed", 0, "base seed for the deterministic per-experiment workloads")
	asJSON := flag.Bool("json", false, "emit the tables as a JSON array")
	jsonlOut := flag.String("jsonl", "", "write one sweep record per experiment to this JSONL file")
	metrics := flag.Bool("metrics", false, "instrument the simulations and append the aggregate metrics report")
	traceOut := flag.String("trace-out", "", "write structured simulation events to this JSONL file")
	profile := flag.String("profile", "", "write CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	serve := flag.String("serve", "", "serve live observability (/metrics, /debug/progress, /debug/pprof) on this host:port")
	serveLinger := flag.Duration("serve-linger", 0, "keep the observability endpoint up this long after the sweep (requires -serve; interrupt to stop early)")
	costProfile := flag.String("cost-profile", "", "write the folded span-stack cost profile to this file")
	flag.Parse()

	if *serve != "" {
		if _, _, err := net.SplitHostPort(*serve); err != nil {
			usageErr("bad -serve address: %v", err)
		}
	}
	if *serveLinger < 0 {
		usageErr("-serve-linger must be non-negative, got %v", *serveLinger)
	}
	if *serveLinger > 0 && *serve == "" {
		usageErr("-serve-linger requires -serve")
	}

	if *profile != "" {
		cpu, err := os.Create(*profile + ".cpu.pprof")
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fatal("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cpu.Close()
			heap, err := os.Create(*profile + ".heap.pprof")
			if err != nil {
				fatal("%v", err)
			}
			defer heap.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(heap); err != nil {
				fatal("heap profile: %v", err)
			}
		}()
	}

	jobs := selectJobs(*runPat, *only)

	var reg *obs.Registry
	var sink *obs.JSONLSink
	if *metrics || *serve != "" {
		reg = obs.NewRegistry()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		sink = obs.NewJSONLSink(f)
		defer func() {
			if err := sink.Close(); err != nil {
				fatal("%v", err)
			}
		}()
	}
	var engineObs *obs.Observer
	if reg != nil || sink != nil {
		if sink != nil {
			engineObs = obs.New(reg, sink)
		} else {
			engineObs = obs.New(reg, nil)
		}
	}

	var prof *obs.Profile
	if *costProfile != "" || *serve != "" {
		prof = obs.NewProfile()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var prog *sweep.Progress
	var srv *obshttp.Server
	if *serve != "" {
		prog = sweep.NewProgress()
		var err error
		srv, err = obshttp.Serve(*serve, obshttp.Options{
			Registry: reg,
			Progress: func() any { return prog.Snapshot() },
			Profile:  prof,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: serving observability on http://%s\n", srv.Addr())
		// Interrupt cancels the sweep (or cuts the linger short) and
		// still shuts the endpoint down gracefully.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}

	start := time.Now()
	outcomes, runErr := sweep.Run(ctx, jobs, sweep.Options{
		Workers:     *workers,
		KeepGoing:   *keepGoing,
		Quick:       *quick,
		Seed:        *seed,
		Metrics:     *metrics || *serve != "",
		LiveMetrics: *serve != "",
		Obs:         engineObs,
		Progress:    prog,
		Profile:     prof,
	})
	wall := time.Since(start) //lint:ignore detflow wall-clock total is reported on stderr only; golden-compared stdout never sees it

	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err != nil {
			fatal("%v", err)
		}
		err = sweep.WriteJSONL(f, outcomes)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("%v", err)
		}
	}

	tables := make([]*experiments.Table, 0, len(outcomes))
	for _, o := range outcomes {
		if o.Status != sweep.StatusOK {
			fmt.Fprintf(os.Stderr, "experiments: %s %s: %v\n", o.ID, o.Status, o.Err)
			continue
		}
		tables = append(tables, o.Value.(*experiments.Table))
	}

	if *asJSON {
		fmt.Println("[")
		for i, t := range tables {
			raw, err := t.JSON()
			if err != nil {
				fatal("%v", err)
			}
			os.Stdout.Write(raw)
			if i+1 < len(tables) {
				fmt.Println(",")
			}
		}
		fmt.Println("\n]")
	} else {
		fmt.Printf("# Experiment tables (generated %s, %d experiments)\n\n",
			time.Now().Format("2006-01-02"), len(tables)) //lint:ignore detflow generated-on date header; the determinism gate compares reruns seconds apart, which format identically
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		if *metrics {
			// Fold the per-experiment registries into the engine registry
			// so one report covers the simulations and the sweep itself.
			// With -serve the engine already folded them live (LiveMetrics);
			// folding again would double-count.
			if *serve == "" {
				for _, o := range outcomes {
					reg.Import(o.Metrics)
				}
			}
			fmt.Println("# Aggregate simulation metrics (all experiment runs)")
			fmt.Println()
			fmt.Println(obs.Report(reg))
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: %d jobs on %d workers in %v\n",
		len(outcomes), effectiveWorkers(*workers, len(jobs)), wall.Round(time.Millisecond))

	if *costProfile != "" {
		f, err := os.Create(*costProfile)
		if err != nil {
			fatal("%v", err)
		}
		err = prof.WriteFolded(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("%v", err)
		}
	}
	if srv != nil {
		if *serveLinger > 0 && runErr == nil {
			fmt.Fprintf(os.Stderr, "experiments: lingering %v for scrapes on http://%s (interrupt to stop)\n",
				*serveLinger, srv.Addr())
			select {
			case <-time.After(*serveLinger):
			case <-ctx.Done():
			}
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fatal("observability shutdown: %v", err)
		}
	}
	if runErr != nil {
		// An interrupt that arrived during the sweep surfaces as the
		// context error; one during the linger (after a clean sweep) is a
		// normal exit.
		if ctx.Err() != nil && errIsCtx(runErr) && sweepCleanBeforeCancel(outcomes) {
			return
		}
		fatal("%v", runErr)
	}
}

// errIsCtx reports whether err is the sweep context's cancellation or
// deadline error.
func errIsCtx(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// sweepCleanBeforeCancel reports whether every job finished ok — i.e.
// a cancellation arrived only after the sweep's real work was done.
func sweepCleanBeforeCancel(outcomes []sweep.Outcome) bool {
	for _, o := range outcomes {
		if o.Status != sweep.StatusOK {
			return false
		}
	}
	return true
}

// selectJobs filters the experiment grid by the -run regexp and the
// -only id list (both optional, both validated).
func selectJobs(runPat, only string) []sweep.Job {
	jobs := experiments.Jobs()
	if runPat != "" {
		re, err := regexp.Compile(runPat)
		if err != nil {
			usageErr("bad -run regexp: %v", err)
		}
		kept := jobs[:0]
		for _, j := range jobs {
			if re.MatchString(j.ID) {
				kept = append(kept, j)
			}
		}
		jobs = kept
	}
	if only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Lookup(id); !ok {
				usageErr("unknown id %q", id)
			}
			want[id] = true
		}
		kept := jobs[:0]
		for _, j := range jobs {
			if want[j.ID] {
				kept = append(kept, j)
			}
		}
		jobs = kept
	}
	if len(jobs) == 0 {
		usageErr("no experiments match -run %q -only %q", runPat, only)
	}
	return jobs
}

// effectiveWorkers mirrors the engine's pool sizing for the stderr
// summary line.
func effectiveWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	return workers
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "experiments: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
