// Command experiments regenerates every table of EXPERIMENTS.md: each
// quantitative claim of the paper (Facts 1-2, Theorems 5/10/12,
// Corollaries 6/11, Propositions 7-9, the Section 5.3 comparisons and
// the substrate bounds) as a measured-vs-predicted table.
//
// Usage:
//
//	experiments [-quick] [-only E05[,E09,...]]
//
// -quick trims the parameter sweeps for a fast smoke run; -only selects
// specific experiments by id.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "trim parameter sweeps for a fast smoke run")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E05,E09)")
	asJSON := flag.Bool("json", false, "emit the tables as a JSON array")
	flag.Parse()

	var tables []*experiments.Table
	start := time.Now()
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			fn, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, fn(*quick))
		}
	} else {
		tables = experiments.All(*quick)
	}

	if *asJSON {
		fmt.Println("[")
		for i, t := range tables {
			raw, err := t.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			os.Stdout.Write(raw)
			if i+1 < len(tables) {
				fmt.Println(",")
			}
		}
		fmt.Println("\n]")
		return
	}
	fmt.Printf("# Experiment tables (generated %s, %d experiments)\n\n",
		time.Now().Format("2006-01-02"), len(tables))
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	fmt.Printf("Total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
