// Command experiments regenerates every table of EXPERIMENTS.md: each
// quantitative claim of the paper (Facts 1-2, Theorems 5/10/12,
// Corollaries 6/11, Propositions 7-9, the Section 5.3 comparisons and
// the substrate bounds) as a measured-vs-predicted table.
//
// Usage:
//
//	experiments [-quick] [-only E05[,E09,...]] [-metrics] [-trace-out F] [-profile P]
//
// -quick trims the parameter sweeps for a fast smoke run; -only selects
// specific experiments by id. -metrics instruments every simulation the
// tables run and appends the aggregate internal/obs report; -trace-out
// streams the structured events to a JSONL file; -profile writes
// P.cpu.pprof and P.heap.pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "trim parameter sweeps for a fast smoke run")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E05,E09)")
	asJSON := flag.Bool("json", false, "emit the tables as a JSON array")
	metrics := flag.Bool("metrics", false, "instrument the simulations and append the aggregate metrics report")
	traceOut := flag.String("trace-out", "", "write structured simulation events to this JSONL file")
	profile := flag.String("profile", "", "write CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	if *profile != "" {
		cpu, err := os.Create(*profile + ".cpu.pprof")
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fatal("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cpu.Close()
			heap, err := os.Create(*profile + ".heap.pprof")
			if err != nil {
				fatal("%v", err)
			}
			defer heap.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(heap); err != nil {
				fatal("heap profile: %v", err)
			}
		}()
	}

	var reg *obs.Registry
	if *metrics || *traceOut != "" {
		var sink obs.Sink
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			js := obs.NewJSONLSink(f)
			defer func() {
				if err := js.Close(); err != nil {
					fatal("%v", err)
				}
			}()
			sink = js
		}
		reg = obs.NewRegistry()
		experiments.SetObserver(obs.New(reg, sink))
		defer experiments.SetObserver(nil)
	}

	var tables []*experiments.Table
	start := time.Now()
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			fn, ok := experiments.Lookup(id)
			if !ok {
				usageErr("unknown id %q", id)
			}
			tables = append(tables, fn(*quick))
		}
	} else {
		tables = experiments.All(*quick)
	}

	if *asJSON {
		fmt.Println("[")
		for i, t := range tables {
			raw, err := t.JSON()
			if err != nil {
				fatal("%v", err)
			}
			os.Stdout.Write(raw)
			if i+1 < len(tables) {
				fmt.Println(",")
			}
		}
		fmt.Println("\n]")
		return
	}
	fmt.Printf("# Experiment tables (generated %s, %d experiments)\n\n",
		time.Now().Format("2006-01-02"), len(tables))
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if *metrics {
		fmt.Println("# Aggregate simulation metrics (all experiment runs)")
		fmt.Println()
		fmt.Println(obs.Report(reg))
	}
	fmt.Printf("Total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// usageErr reports a flag-validation failure: the message, then the
// flag usage, then exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "experiments: %s\n\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
