// Sorting end-to-end (Proposition 9): the bitonic D-BSP schedule sorts
// n keys in O(n^α) on D-BSP(n, O(1), x^α); its Section 3 simulation is
// the optimal Θ(n^{1+α}) sorting algorithm for the x^α-HMM — an
// optimal hierarchy-conscious algorithm obtained entirely from a
// parallel one.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/workload"
)

func main() {
	const n = 256
	input := workload.KeyFunc(99, n, 10*n)
	prog := algos.Sort(n, input)

	g := cost.Poly{Alpha: 0.5}
	native, err := dbsp.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	// Verify the output is globally sorted across processors.
	prev := native.Contexts[0][0]
	for p := 1; p < n; p++ {
		cur := native.Contexts[p][0]
		if cur < prev {
			log.Fatalf("not sorted at position %d", p)
		}
		prev = cur
	}
	fmt.Printf("%d keys sorted on D-BSP(%d, O(1), %s): T = %.1f (n^α = %.1f)\n",
		n, n, g.Name(), native.Cost, math.Pow(n, 0.5))

	// Label profile: λ_i = i+1 — geometrically dominated by the coarse
	// labels, which is what makes the x^α time O(n^α).
	fmt.Print("label profile λ_i: ")
	for i, li := range prog.Lambda(true) {
		if li > 0 {
			fmt.Printf("λ_%d=%d ", i, li)
		}
	}
	fmt.Println()

	sim, err := core.OnHMM(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x^0.5-HMM simulation: cost %.3g — optimal shape n^{1.5} = %.3g, ratio %.1f\n",
		sim.HostCost, math.Pow(n, 1.5), sim.HostCost/math.Pow(n, 1.5))

	// Same program, steeper memory hierarchy: the slowdown stays linear
	// in v because the schedule's submachine locality becomes temporal
	// locality (Corollary 6).
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.25}, cost.Log{}} {
		nf, _ := dbsp.Run(prog, f)
		sf, err := core.OnHMM(prog, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("f = %-7s native T = %8.1f  sim = %10.3g  slowdown/v = %.2f\n",
			f.Name(), nf.Cost, sf.HostCost, sf.HostCost/nf.Cost/float64(n))
	}
}
