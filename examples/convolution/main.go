// Polynomial multiplication via the number-theoretic transform: the
// end-to-end workload the DFT case study serves. One D-BSP program
// chains forward transforms of both inputs, the pointwise product, the
// inverse transform and the 1/n scaling — and the whole pipeline
// simulates onto hierarchical memory with the usual guarantees.
package main

import (
	"fmt"
	"log"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

func main() {
	const n = 64
	// Multiply (1 + 2x + 3x² + ...) by (1 + x): coefficients wrap
	// cyclically at degree n.
	a := func(p int) int64 { return int64(p + 1) }
	b := func(p int) int64 {
		if p <= 1 {
			return 1
		}
		return 0
	}
	prog := algos.Convolution(n, a, b)

	g := cost.Log{}
	native, err := dbsp.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	// c[k] = a[k] + a[k-1 mod n].
	for k := 0; k < n; k++ {
		want := (a(k) + a(((k-1)%n+n)%n)) % algos.P
		if got := native.Contexts[k][0]; got != want {
			log.Fatalf("c[%d] = %d, want %d", k, got, want)
		}
	}
	fmt.Printf("cyclic product of two degree-%d polynomials verified (3 NTTs, %d supersteps)\n",
		n-1, len(prog.Steps))

	sim, err := core.OnBT(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x^0.5-BT simulation: cost %.3g (%d block transfers; transposes routed, not sorted)\n",
		sim.HostCost, sim.Blocks.Copies)
	fmt.Printf("native D-BSP(%d, O(1), log x) time: %.1f\n", n, native.Cost)
}
