// Matrix multiplication end-to-end (Proposition 7): the recursive
// two-round D-BSP schedule multiplies two √n×√n matrices on n
// processors; simulating it on x^α-HMM and on f(x)-BT yields the
// optimal hierarchy-conscious sequential algorithms automatically.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/workload"
)

func main() {
	const n = 256 // processors = matrix elements; n = 4^k
	side := 1 << uint(dbsp.Log2(n)/2)

	a := workload.Matrix(1, side, 6)
	b := workload.Matrix(2, side, 6)
	prog := algos.MatMul(n, a, b)

	// Verify against the cubic product.
	g := cost.Poly{Alpha: 0.5}
	native, err := dbsp.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	for rIdx := 0; rIdx < side; rIdx++ {
		for cIdx := 0; cIdx < side; cIdx++ {
			var want int64
			for k := 0; k < side; k++ {
				want += a(rIdx, k) * b(k, cIdx)
			}
			p := algos.MortonEncode(rIdx, cIdx, dbsp.Log2(n))
			if got := native.Contexts[p][2]; got != want {
				log.Fatalf("C[%d][%d] = %d, want %d", rIdx, cIdx, got, want)
			}
		}
	}
	fmt.Printf("%dx%d matrix product verified on D-BSP(%d, O(1), %s); T = %.1f (~n^α = %.1f)\n",
		side, side, n, g.Name(), native.Cost, math.Pow(n, 0.5))

	// The HMM simulation is the optimal Θ(n^{1+α}) sequential algorithm.
	hm, err := core.OnHMM(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x^0.5-HMM simulation: cost %.3g (optimal shape n^1.5 = %.3g)\n",
		hm.HostCost, math.Pow(n, 1.5))

	// The BT simulation is the optimal Θ(n^{3/2}) — for any access
	// function (Theorem 12's f-independence).
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		bt, err := core.OnBT(prog, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s-BT simulation: cost %.3g (%d block transfers)\n",
			f.Name(), bt.HostCost, bt.Blocks.Copies)
	}
}
