// A concrete memory hierarchy: instead of the analytic x^α / log x
// access functions, model a machine with explicit L1/L2/L3/DRAM levels
// (a cost.Table) and watch the same D-BSP programs translate their
// submachine locality into cache locality. This is the scenario the
// paper's introduction motivates: "performance is considerably enhanced
// when the relevant data can be moved up the hierarchy".
package main

import (
	"fmt"
	"log"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/workload"
)

func main() {
	// A toy four-level hierarchy, capacities in words and access costs
	// in cycles (loosely shaped after a real cache pyramid).
	hier := cost.Table{
		Bounds: []int64{1 << 8, 1 << 11, 1 << 13},
		Costs:  []float64{1, 4, 16, 120},
		Label:  "L1/L2/L3/DRAM",
	}
	if err := hier.Validate(); err != nil {
		log.Fatal(err)
	}
	rep := cost.CheckUniform(hier, 1<<20)
	fmt.Printf("hierarchy %s: (2,c)-uniform with observed c = %.2f\n\n", hier.Name(), rep.C)

	const v = 1024
	progs := []*dbsp.Program{
		algos.Sort(v, workload.KeyFunc(1, v, 4096)),
		algos.DFTButterfly(v, workload.KeyFunc(2, v, 1<<20)),
		algos.PrefixSums(v, func(p int) int64 { return int64(p) }),
	}

	fmt.Printf("%-22s %14s %14s %8s   %s\n",
		"program", "scheduled(HMM)", "step-by-step", "gain", "touches by level (L1/L2/L3/DRAM), scheduled")
	for _, prog := range progs {
		sim, err := core.OnHMM(prog, hier)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := hmmsim.SimulateNaive(prog, hier)
		if err != nil {
			log.Fatal(err)
		}
		byLevel := sim.Stats.DepthByBounds(hier.Bounds)
		var total int64
		for _, n := range byLevel {
			total += n
		}
		pct := make([]string, len(byLevel))
		for i, n := range byLevel {
			pct[i] = fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
		}
		fmt.Printf("%-22s %14.3g %14.3g %7.1fx   %v\n",
			prog.Name, sim.HostCost, naive.HostCost, naive.HostCost/sim.HostCost, pct)
	}
	fmt.Println("\nthe Figure 1 cluster schedule keeps each submachine's working set inside")
	fmt.Println("the fast levels while the step-by-step baseline sweeps DRAM every superstep;")
	fmt.Println("the gain tracks how fine-label-dominated each program's locality profile is")
	fmt.Println("(largest for the sort, whose λ_i = i+1 profile is dominated by fine labels)")
}
