// The two DFT schedules of Proposition 8 and how the choice of the
// D-BSP bandwidth function ranks them for block-transfer machines
// (Section 5.3): on g = x^α the butterfly and the recursive
// √n-decomposition cost the same O(n^α), but on g = log x — and on the
// BT host — their costs separate.
package main

import (
	"fmt"
	"log"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/workload"
)

func main() {
	const n = 256
	input := workload.KeyFunc(7, n, 1<<20)

	butterfly := algos.DFTButterfly(n, input)
	recursive := algos.DFTRecursive(n, input)

	// Verify both against the direct O(n²) DFT over Z_P.
	x := make([]int64, n)
	for p := range x {
		x[p] = input(p)
	}
	want := algos.DirectDFT(x)
	nb, err := dbsp.Run(butterfly, cost.Log{})
	if err != nil {
		log.Fatal(err)
	}
	nr, err := dbsp.Run(recursive, cost.Log{})
	if err != nil {
		log.Fatal(err)
	}
	logn := dbsp.Log2(n)
	for p := 0; p < n; p++ {
		if nb.Contexts[p][0] != want[algos.BitReverse(p, logn)] {
			log.Fatalf("butterfly output wrong at %d", p)
		}
		if nr.Contexts[p][0] != want[p] {
			log.Fatalf("recursive output wrong at %d", p)
		}
	}
	fmt.Printf("both %d-point NTT schedules verified against the direct DFT\n\n", n)

	// Native D-BSP times under the two bandwidth functions.
	for _, g := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		tb, _ := dbsp.Run(butterfly, g)
		tr, _ := dbsp.Run(recursive, g)
		fmt.Printf("g = %-7s butterfly T = %8.1f   recursive T = %8.1f\n",
			g.Name(), tb.Cost, tr.Cost)
	}

	// BT simulations: Theorem 12 says cost ~ v·µ·Σ λ_i·log(µv/2^i),
	// independent of f; asymptotically the recursive schedule's profile
	// (n log n log log n) beats the butterfly's (n log² n).
	fmt.Println()
	for _, prog := range []struct {
		name string
		p    interface{}
	}{{"butterfly", butterfly}, {"recursive", recursive}} {
		b, err := core.OnBT(prog.p.(*dbsp.Program), cost.Poly{Alpha: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("x^0.5-BT %s simulation: cost %.3g\n", prog.name, b.HostCost)
	}
	fmt.Println("\n(see EXPERIMENTS.md E11 for the asymptotic-vs-measured discussion)")
}
