// The Brent-lemma analogue (Section 4, Theorem 10): scaling a D-BSP
// program down from v to v′ processors, where each of the v′ host
// processors is a g(x)-HMM holding v/v′ guest contexts, costs Θ(v/v′) —
// the network hierarchy continues seamlessly into the memory hierarchy.
package main

import (
	"fmt"
	"log"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

func main() {
	const v = 64
	g := cost.Poly{Alpha: 0.5}
	prog := algos.PrefixSums(v, func(p int) int64 { return int64(p + 1) })

	native, err := dbsp.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefix sums on D-BSP(v=%d, µ=%d, g=%s): T = %.1f\n\n",
		v, prog.Mu(), g.Name(), native.Cost)
	fmt.Printf("%6s %12s %12s %10s %14s\n", "v'", "host cost", "module", "comm", "cost·v'/v")

	var prev float64
	for vp := v; vp >= 1; vp /= 2 {
		res, err := core.OnDBSP(prog, g, vp)
		if err != nil {
			log.Fatal(err)
		}
		// Correctness: processor p must hold Σ_{q<=p}(q+1).
		for p := 0; p < v; p++ {
			want := int64((p + 1) * (p + 2) / 2)
			if got := res.Contexts[p][0]; got != want {
				log.Fatalf("v'=%d: proc %d prefix = %d, want %d", vp, p, got, want)
			}
		}
		marker := ""
		if prev > 0 {
			marker = fmt.Sprintf("  (×%.2f)", res.HostCost/prev)
		}
		fmt.Printf("%6d %12.1f %12.1f %10.1f %14.1f%s\n",
			vp, res.HostCost, res.ModuleCost, res.CommCost,
			res.HostCost*float64(vp)/float64(v), marker)
		prev = res.HostCost
	}
	fmt.Println("\nhalving v' roughly doubles the time — the Θ(v/v') slowdown of Corollary 11")
}
