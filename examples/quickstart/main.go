// Quickstart: write a D-BSP program, run it natively on the
// goroutine-parallel engine, then simulate it on a hierarchical-memory
// (HMM) host and see the paper's headline result — the slowdown is
// linear in the lost parallelism, with no extra hierarchy penalty.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

func main() {
	const v = 64 // processors (a power of two)

	// A hierarchical exchange: at every level i from the finest
	// clusters to the whole machine, each processor swaps its running
	// value with a partner inside its i-cluster — the canonical
	// submachine-locality pattern (most supersteps touch only small,
	// fast submachines).
	prog := &dbsp.Program{
		Name:   "quickstart",
		V:      v,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init: func(p int, data []dbsp.Word) {
			data[0] = dbsp.Word(p * p)
		},
	}
	for i := dbsp.Log2(v) - 1; i >= 0; i-- {
		bit := dbsp.Word(1) << uint(dbsp.Log2(v)-1-i)
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: i, Run: func(c *dbsp.Ctx) {
			// Fold in the partner value from the previous level, then
			// exchange with the partner of this level.
			acc := c.Load(0)
			if c.NumRecv() == 1 {
				_, payload := c.Recv(0)
				acc += payload
			}
			c.Store(0, acc)
			c.Send(c.ID()^int(bit), acc)
		}})
	}
	// The closing 0-superstep: a global barrier consuming the last
	// exchange.
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		_, payload := c.Recv(0)
		c.Store(1, payload)
	}})

	// g(x) = x^0.5: communication inside a cluster with aggregate
	// memory x costs g(x) per message.
	g := cost.Poly{Alpha: 0.5}

	native, err := dbsp.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native D-BSP(v=%d, µ=%d, g=%s): T = %.2f\n",
		v, prog.Mu(), g.Name(), native.Cost)

	// Simulate the same program on a sequential machine whose memory
	// access cost is f(x) = g(x) — the Section 3 scheme.
	sim, err := core.OnHMM(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HMM simulation: cost = %.2f, slowdown = %.1f = %.1f·v\n",
		sim.HostCost, sim.HostCost/native.Cost, sim.HostCost/native.Cost/float64(v))

	// The final states agree bit for bit.
	for p := 0; p < v; p++ {
		want := native.Contexts[p][1]
		if got := sim.Contexts[p][1]; got != want {
			log.Fatalf("proc %d: simulation diverged: %d != %d", p, got, want)
		}
	}
	fmt.Println("final contexts identical across native run and simulation ✓")
}
