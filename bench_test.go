package repro

// One benchmark per experiment of DESIGN.md's index (E01..E16): each
// runs the mechanical simulation behind the corresponding EXPERIMENTS.md
// table at a representative size and reports the charged model cost —
// plus the simulator's own counters (accesses, rounds, block transfers)
// — as custom metrics alongside wall-clock time. `go test -bench=.
// -benchmem` regenerates the whole set; cmd/experiments prints the full
// sweeps.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/algos"
	"repro/internal/amsort"
	"repro/internal/bt"
	"repro/internal/core/btsim"
	"repro/internal/core/hmmsim"
	"repro/internal/core/selfsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/experiments"
	"repro/internal/hmm"
	"repro/internal/progtest"
	"repro/internal/sweep"
	"repro/internal/workload"
)

var alphaHalf = cost.Poly{Alpha: 0.5}

// reportCost attaches the charged model cost of the last iteration.
func reportCost(b *testing.B, c float64) {
	b.ReportMetric(c, "model-cost")
}

// reportHMM attaches the HMM simulator's counters for the last
// iteration alongside the model cost, so `go test -bench` output tracks
// the same quantities the internal/obs registry reports.
func reportHMM(b *testing.B, res *hmmsim.Result) {
	reportCost(b, res.HostCost)
	b.ReportMetric(float64(res.Stats.Accesses()), "accesses/op")
	b.ReportMetric(float64(res.Rounds), "rounds/op")
}

// reportBT attaches the BT simulator's counters.
func reportBT(b *testing.B, res *btsim.Result) {
	reportCost(b, res.HostCost)
	b.ReportMetric(float64(res.Stats.Accesses()), "accesses/op")
	b.ReportMetric(float64(res.Blocks.Copies), "block-transfers/op")
	b.ReportMetric(float64(res.Blocks.Words), "block-words/op")
}

// reportSelf attaches the self-simulation's partition counters.
func reportSelf(b *testing.B, res *selfsim.Result) {
	reportCost(b, res.HostCost)
	b.ReportMetric(float64(res.GlobalSteps), "global-steps/op")
	b.ReportMetric(float64(res.LocalRuns), "local-runs/op")
}

func BenchmarkE01TouchHMM(b *testing.B) {
	const n = 1 << 16
	var m *hmm.Machine
	for i := 0; i < b.N; i++ {
		m = hmm.New(alphaHalf, n)
		m.Touch(n)
	}
	reportCost(b, m.Cost())
	b.ReportMetric(float64(m.Stats().Accesses()), "accesses/op")
}

func BenchmarkE02TouchBT(b *testing.B) {
	const n = 1 << 16
	var m *bt.Machine
	for i := 0; i < b.N; i++ {
		m = bt.New(alphaHalf, n)
		m.Touch(n)
	}
	reportCost(b, m.Cost())
	b.ReportMetric(float64(m.BlockStats().Copies), "block-transfers/op")
}

func BenchmarkE03HMMSlowdown(b *testing.B) {
	prog := progtest.Rotate(256, progtest.Descending(256)...)
	var last *hmmsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hmmsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportHMM(b, last)
}

func BenchmarkE04NaiveVsScheduled(b *testing.B) {
	prog := progtest.Rotate(256, progtest.Fine(256, 12)...)
	var last *hmmsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hmmsim.SimulateNaive(prog, alphaHalf)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportHMM(b, last)
}

func BenchmarkE05MatMul(b *testing.B) {
	prog := algos.MatMul(256, workload.Matrix(11, 16, 4), workload.Matrix(12, 16, 4))
	var last *hmmsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hmmsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportHMM(b, last)
}

func BenchmarkE06DFT(b *testing.B) {
	prog := algos.DFTButterfly(256, workload.KeyFunc(21, 256, 1<<20))
	var last *hmmsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hmmsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportHMM(b, last)
}

func BenchmarkE07Sort(b *testing.B) {
	prog := algos.Sort(256, workload.KeyFunc(31, 256, 1024))
	var last *hmmsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hmmsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportHMM(b, last)
}

func BenchmarkE08Brent(b *testing.B) {
	prog := progtest.Rotate(64, progtest.Descending(64)...)
	var last *selfsim.Result
	for i := 0; i < b.N; i++ {
		res, err := selfsim.Simulate(prog, alphaHalf, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportSelf(b, last)
}

func BenchmarkE09BTSim(b *testing.B) {
	prog := progtest.Rotate(256, progtest.Descending(256)...)
	var last *btsim.Result
	for i := 0; i < b.N; i++ {
		res, err := btsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportBT(b, last)
}

func BenchmarkE10BTMatMul(b *testing.B) {
	prog := algos.MatMul(256, workload.Matrix(13, 16, 4), workload.Matrix(14, 16, 4))
	var last *btsim.Result
	for i := 0; i < b.N; i++ {
		res, err := btsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportBT(b, last)
}

func BenchmarkE11BTDFTChoice(b *testing.B) {
	prog := algos.DFTRecursive(256, workload.KeyFunc(41, 256, 1<<20))
	var last *btsim.Result
	for i := 0; i < b.N; i++ {
		res, err := btsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportBT(b, last)
}

func BenchmarkE14SmoothingAblation(b *testing.B) {
	logv := dbsp.Log2(256)
	prog := progtest.Rotate(256, logv-1, 0, logv-1, 0, logv-1, 0)
	var last *hmmsim.Result
	for i := 0; i < b.N; i++ {
		res, err := hmmsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportHMM(b, last)
}

func BenchmarkE15Compute(b *testing.B) {
	prog := progtest.ComputeOnly(256, 4, 0, 0, 0, 0, 0, 0)
	var last *btsim.Result
	for i := 0; i < b.N; i++ {
		res, err := btsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportBT(b, last)
}

func BenchmarkE16AMSort(b *testing.B) {
	const count, rec = 1 << 13, 2
	keys := workload.Keys(51, count, 10*count)
	var c float64
	var comps int64
	for i := 0; i < b.N; i++ {
		p := amsort.NewPlan(alphaHalf, rec, count)
		hot := int64(0)
		cold := p.HotWords()
		data := cold + p.ColdWords()
		scratch := data + count*rec
		m := bt.New(alphaHalf, scratch+count*rec+8)
		for j := int64(0); j < count; j++ {
			m.Poke(data+j*rec, keys[j])
			m.Poke(data+j*rec+1, j)
		}
		comps = amsort.Sort(m, p, data, scratch, hot, cold)
		c = m.Cost()
	}
	reportCost(b, c)
	b.ReportMetric(float64(comps), "comparisons/op")
}

// BenchmarkNativeEngine measures the goroutine-parallel superstep
// engine itself (not a paper experiment; included for harness costing).
func BenchmarkNativeEngine(b *testing.B) {
	prog := progtest.Rotate(1024, progtest.Descending(1024)...)
	for i := 0; i < b.N; i++ {
		if _, err := dbsp.Run(prog, alphaHalf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSharded measures the sharded engine against the native
// one at matched v (not a paper experiment; included for harness
// costing). Both run the same program, so ns/op is directly comparable
// across the sub-benchmarks; the results themselves are bit-identical
// by the five-way differential suite.
func BenchmarkRunSharded(b *testing.B) {
	const v = 1 << 14
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	b.Run("engine=native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbsp.Run(prog, alphaHalf); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 8, 0} {
		name := fmt.Sprintf("engine=sharded/shards=%d", shards)
		if shards == 0 {
			name = "engine=sharded/shards=default"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dbsp.RunSharded(prog, alphaHalf, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepEngine measures the experiment-sweep scheduler itself
// (not a paper experiment): the full quick grid through the bounded
// worker pool, serial vs GOMAXPROCS-wide, so regressions in dispatch or
// outcome collection show up next to the simulator benchmarks.
func BenchmarkSweepEngine(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			jobs := experiments.Jobs()
			for i := 0; i < b.N; i++ {
				outcomes, err := sweep.Run(context.Background(), jobs,
					sweep.Options{Workers: workers, Quick: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(outcomes) != len(jobs) {
					b.Fatalf("%d outcomes for %d jobs", len(outcomes), len(jobs))
				}
			}
			b.ReportMetric(float64(len(jobs))/float64(b.Elapsed().Seconds())*float64(b.N), "jobs/sec")
		})
	}
}

func BenchmarkE17RouteDelivery(b *testing.B) {
	prog := algos.DFTRecursive(256, workload.KeyFunc(62, 256, 1<<20))
	var last *btsim.Result
	for i := 0; i < b.N; i++ {
		res, err := btsim.Simulate(prog, alphaHalf, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportBT(b, last)
}
