package algos

import (
	"fmt"

	"repro/internal/dbsp"
)

// ReduceOp is a word-level associative operation for Reduce.
type ReduceOp int

// Supported reduction operations.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	default:
		return "min"
	}
}

func (op ReduceOp) apply(a, b Word) Word {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	default:
		if a < b {
			return a
		}
		return b
	}
}

// Reduce returns a program combining the per-processor inputs with the
// given associative operation, leaving the result on processor 0 (data
// word 0) — the canonical tree pattern: one i-superstep per level i
// from the finest clusters upward, each halving the number of active
// processors. On D-BSP(v, O(1), x^α) it costs Θ(v^α); its HMM
// simulation is the optimal Θ(v·f(v)) touching bound, since every input
// must be examined (Fact 1).
func Reduce(v int, op ReduceOp, input func(p int) Word) *dbsp.Program {
	logv := dbsp.Log2(v)
	steps := make([]dbsp.Superstep, 0, logv+1)
	for l := logv - 1; l >= 0; l-- {
		l := l
		steps = append(steps, dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
			// Fold the previous level's partial result first.
			if c.NumRecv() == 1 {
				_, payload := c.Recv(0)
				c.Store(0, op.apply(c.Load(0), payload))
			}
			// The leader of the right half of each l-cluster sends its
			// partial to the left half's leader.
			cs := dbsp.ClusterSize(c.V(), l)
			lo := (c.ID() / cs) * cs
			if c.ID() == lo+cs/2 {
				c.Send(lo, c.Load(0))
			}
		}})
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		if c.NumRecv() == 1 {
			_, payload := c.Recv(0)
			c.Store(0, op.apply(c.Load(0), payload))
		}
	}})
	return &dbsp.Program{
		Name:   fmt.Sprintf("reduce-%s-v%d", op, v),
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[0] = input(p)
		},
		Steps: steps,
	}
}

// MatVec returns a program computing y = A·x for a √n×√n matrix on n
// processors: the processor at Morton position (r, c) holds A[r][c] and
// x[c] is replicated along column c... concretely, processor (r, c)
// starts with A[r][c]·x[c] (the Init computes the product locally from
// the provided generators) and the program row-reduces: each row —
// which under the Morton layout is NOT a contiguous cluster — is summed
// by folding along the column bits, one label-2i superstep pair per
// level, mirroring the MatMul cluster structure. The result y[r] ends
// on the processor at Morton position (r, 0) in data word 0.
func MatVec(n int, a func(r, c int) Word, x func(c int) Word) *dbsp.Program {
	logn := dbsp.Log2(n)
	if logn%2 != 0 {
		panic(fmt.Sprintf("algos: MatVec needs n = 4^k, got %d", n))
	}
	side := 1 << uint(logn/2)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("matvec-n%d", n),
		V:      n,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			r, c := MortonDecode(p, logn)
			data[0] = a(r, c) * x(c)
		},
	}
	// Fold along column bits: partner differs in column bit k (the
	// Morton bit 2k); pairs share the (logn-2k-1)-cluster... they
	// differ in Morton bit 2k, so their common cluster has size
	// 2^(2k+1): label logn-2k-1.
	for k := 0; k < logn/2; k++ {
		k := k
		bit := 1 << uint(2*k) // Morton bit of column bit k
		label := logn - 2*k - 1
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: label, Run: func(c *dbsp.Ctx) {
			_, col := MortonDecode(c.ID(), logn)
			if col&(1<<uint(k)) != 0 && col&((1<<uint(k))-1) == 0 {
				c.Send(c.ID()^bit, c.Load(0))
			}
		}})
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: min(label+1, logn), Run: func(c *dbsp.Ctx) {
			if c.NumRecv() == 1 {
				_, payload := c.Recv(0)
				c.Store(0, c.Load(0)+payload)
			}
		}})
	}
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {}})
	_ = side
	return prog
}

// Stencil1D returns a program running iters rounds of a three-point
// relaxation x_p <- (x_{p-1} + 2·x_p + x_{p+1}) / 4 (integer division)
// with reflecting boundaries — the archetypal nearest-neighbour
// workload whose communication is almost entirely confined to the
// finest clusters: per round, only one exchange in (log v -1)-clusters
// plus the cluster-boundary traffic at coarser levels.
//
// Each round uses one superstep per level from log v -1 down (sending
// to both neighbours where the neighbour lies in the matching cluster),
// but since |p - (p±1)| = 1, neighbours p and p+1 share the finest
// cluster containing both — which depends on p's alignment. To keep the
// profile honest, each round sends at the level of the *actual* common
// cluster of each neighbour pair: label(p, p+1) = log v - 1 for even p,
// coarser for boundary-crossing pairs. The round is organised as log v
// supersteps, level ℓ handling exactly the pairs whose common cluster
// is an ℓ-cluster.
func Stencil1D(v, iters int, input func(p int) Word) *dbsp.Program {
	logv := dbsp.Log2(v)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("stencil1d-v%d-i%d", v, iters),
		V:      v,
		Layout: dbsp.Layout{Data: 3, MaxMsgs: 2},
		Init: func(p int, data []Word) {
			data[0] = input(p)
		},
	}
	// pairLevel(p) = label of the smallest cluster containing p and p+1.
	pairLevel := func(p int) int {
		// p and p+1 differ first at bit b where b = count of trailing
		// ones of p; their common cluster has size 2^(b+1).
		b := 0
		for q := p; q&1 == 1; q >>= 1 {
			b++
		}
		return logv - b - 1
	}
	for it := 0; it < iters; it++ {
		// Phase ℓ: pairs (p, p+1) whose common cluster is an ℓ-cluster
		// exchange values, finest level first.
		for l := logv - 1; l >= 0; l-- {
			l := l
			prog.Steps = append(prog.Steps, dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
				p := c.ID()
				if p+1 < c.V() && pairLevel(p) == l {
					c.Send(p+1, c.Load(0))
				}
				if p-1 >= 0 && pairLevel(p-1) == l {
					c.Send(p-1, c.Load(0))
				}
			}})
			prog.Steps = append(prog.Steps, dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
				for k := 0; k < c.NumRecv(); k++ {
					src, payload := c.Recv(k)
					if src == c.ID()-1 {
						c.Store(1, payload)
					} else {
						c.Store(2, payload)
					}
				}
			}})
		}
		// Relaxation step (local; reflecting boundaries reuse own value).
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: logv, Run: func(c *dbsp.Ctx) {
			left, right := c.Load(1), c.Load(2)
			if c.ID() == 0 {
				left = c.Load(0)
			}
			if c.ID() == c.V()-1 {
				right = c.Load(0)
			}
			c.Store(0, (left+2*c.Load(0)+right)/4)
			c.Work(3)
		}})
	}
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {}})
	return prog
}
