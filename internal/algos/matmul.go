package algos

import (
	"fmt"

	"repro/internal/dbsp"
)

// Matrix-multiplication data layout: processor p holds one element of
// each matrix at the position given by the Morton (Z-order) decoding of
// p, so that the four quadrants of every submatrix are exactly the four
// 2-subclusters of the owning cluster — the property the recursive
// schedule of Proposition 7 (Figure 3) relies on.
const (
	mmA = 0 // element of A
	mmB = 1 // element of B
	mmC = 2 // accumulated element of C
)

// MortonDecode splits the interleaved bits of p (of width 2·half) into
// (row, col): bit pairs from the most significant down select the
// quadrant 2·rowBit + colBit.
func MortonDecode(p, logn int) (row, col int) {
	for i := logn - 2; i >= 0; i -= 2 {
		row = row<<1 | (p>>uint(i+1))&1
		col = col<<1 | (p>>uint(i))&1
	}
	return row, col
}

// MortonEncode is the inverse of MortonDecode.
func MortonEncode(row, col, logn int) int {
	p := 0
	for i := logn/2 - 1; i >= 0; i-- {
		p = p<<2 | ((row>>uint(i))&1)<<1 | (col>>uint(i))&1
	}
	return p
}

// MatMul returns the n-MM program of Proposition 7: n processors (n a
// power of 4) multiply two √n×√n integer matrices with semiring
// operations. a(r,c) and b(r,c) provide the inputs; on termination the
// processor at Morton position (r,c) holds C[r][c] in data word mmC.
//
// The schedule is the two-round recursive decomposition of Figure 3:
// each level-L cluster (L even) swaps A-quadrants between its
// subclusters 2,3 and B-quadrants between 1,3 (round one:
// C11+=A11·B11, C12+=A12·B22, C21+=A22·B21, C22+=A21·B12), recurses,
// restores, swaps A between 0,1 and B between 0,2 (round two), recurses
// and restores. All routing permutations are involutions, so a receiver
// always gets its new element from exactly the processor it sent to.
// The program uses Θ(2^i) supersteps of label 2i for 0 <= i <
// log(n)/2, giving T(n) = 2T(n/4) + Θ(g(µn)) as in the proposition.
func MatMul(n int, a, b func(r, c int) Word) *dbsp.Program {
	logn := dbsp.Log2(n)
	if logn%2 != 0 {
		panic(fmt.Sprintf("algos: MatMul needs n = 4^k, got %d", n))
	}
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("matmul-n%d", n),
		V:      n,
		Layout: dbsp.Layout{Data: 3, MaxMsgs: 2},
		Init: func(p int, data []Word) {
			r, c := MortonDecode(p, logn)
			data[mmA] = a(r, c)
			data[mmB] = b(r, c)
		},
	}
	genMM(prog, 0, logn)
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {}})
	return prog
}

// mmQuadrant returns the index (0..3) of p's 2-subcluster within its
// level-L cluster, and p's relative position within that subcluster.
func mmQuadrant(v, L, p int) (q, rel, lo int) {
	cs := dbsp.ClusterSize(v, L)
	lo = (p / cs) * cs
	q = (p - lo) / (cs / 4)
	rel = (p - lo) % (cs / 4)
	return q, rel, lo
}

// mmSwapStep emits one routing superstep at label L: quadrants aq1 and
// aq2 exchange A elements, bq1 and bq2 exchange B elements (an
// involution, at most 2 messages per processor).
func mmSwapStep(prog *dbsp.Program, L, aq1, aq2, bq1, bq2 int) {
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: L, Run: func(c *dbsp.Ctx) {
		q, rel, lo := mmQuadrant(c.V(), L, c.ID())
		quarter := dbsp.ClusterSize(c.V(), L) / 4
		switch q {
		case aq1:
			c.Send(lo+aq2*quarter+rel, c.Load(mmA))
		case aq2:
			c.Send(lo+aq1*quarter+rel, c.Load(mmA))
		}
		switch q {
		case bq1:
			c.Send(lo+bq2*quarter+rel, c.Load(mmB))
		case bq2:
			c.Send(lo+bq1*quarter+rel, c.Load(mmB))
		}
	}})
	// Matching receive step: a processor in an A-swap quadrant gets its
	// new A from the partner quadrant, and likewise for B; when it is
	// in both swaps, messages are matched by sender id.
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: L + 2, Run: func(c *dbsp.Ctx) {
		q, rel, lo := mmQuadrant(c.V(), L, c.ID())
		quarter := dbsp.ClusterSize(c.V(), L) / 4
		aSrc, bSrc := -1, -1
		switch q {
		case aq1:
			aSrc = lo + aq2*quarter + rel
		case aq2:
			aSrc = lo + aq1*quarter + rel
		}
		switch q {
		case bq1:
			bSrc = lo + bq2*quarter + rel
		case bq2:
			bSrc = lo + bq1*quarter + rel
		}
		for k := 0; k < c.NumRecv(); k++ {
			src, payload := c.Recv(k)
			switch src {
			case aSrc:
				c.Store(mmA, payload)
			case bSrc:
				c.Store(mmB, payload)
			default:
				panic(fmt.Sprintf("algos: matmul: unexpected message from %d", src))
			}
		}
	}})
}

// genMM emits the supersteps multiplying the submatrices owned by every
// level-L cluster (cluster size m = v/2^L processors).
func genMM(prog *dbsp.Program, L, logn int) {
	if dbsp.ClusterSize(prog.V, L) == 1 {
		// Leaf: C += A·B on the single held elements.
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: logn, Run: func(c *dbsp.Ctx) {
			c.Store(mmC, c.Load(mmC)+c.Load(mmA)*c.Load(mmB))
			c.Work(1)
		}})
		return
	}
	// Round one: A: swap(2,3), B: swap(1,3).
	mmSwapStep(prog, L, 2, 3, 1, 3)
	genMM(prog, L+2, logn)
	mmSwapStep(prog, L, 2, 3, 1, 3) // restore (involution)
	// Round two: A: swap(0,1), B: swap(0,2).
	mmSwapStep(prog, L, 0, 1, 0, 2)
	genMM(prog, L+2, logn)
	mmSwapStep(prog, L, 0, 1, 0, 2) // restore
}
