// Package algos provides fine-grained D-BSP algorithms for the paper's
// case-study problems (Section 3.1 and 5.3) and for auxiliary workloads:
//
//   - matrix multiplication with the recursive two-round schedule of
//     Proposition 7 (Figure 3),
//   - n-DFT with both schedules of Proposition 8: the standard butterfly
//     (one i-superstep per level i) and the recursive √n-decomposition
//     (2^i supersteps of label (1-1/2^i)·log n),
//   - n-sorting by a bitonic superstep schedule with the geometric label
//     profile required by Proposition 9 (λ_i = i+1, giving O(n^α) on
//     D-BSP(n, O(1), x^α)),
//   - broadcast, prefix sums and permutation routing as elementary
//     workloads for the simulation experiments.
//
// All programs are fine-grained (µ = O(1) words per processor), expose
// their communication pattern through superstep labels only (handlers
// never read c.Label(), so smoothing relabels freely), and end with a
// global 0-superstep as the simulators require.
package algos
