package algos

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

func TestModMath(t *testing.T) {
	if ModAdd(P-1, 1) != 0 {
		t.Error("ModAdd wraparound")
	}
	if ModSub(0, 1) != P-1 {
		t.Error("ModSub wraparound")
	}
	if ModMul(P-1, P-1) != 1 {
		t.Error("(-1)·(-1) != 1 mod P")
	}
	if ModPow(2, 10) != 1024 {
		t.Error("ModPow(2,10)")
	}
	if ModPow(PrimitiveRoot, P-1) != 1 {
		t.Error("g^(P-1) != 1: P not prime or g wrong")
	}
}

func TestRootOfUnity(t *testing.T) {
	for _, n := range []int{2, 4, 256, 1 << 20} {
		w := RootOfUnity(n)
		if ModPow(w, Word(n)) != 1 {
			t.Errorf("ω_%d^%d != 1", n, n)
		}
		if ModPow(w, Word(n/2)) == 1 {
			t.Errorf("ω_%d has order < %d (not primitive)", n, n)
		}
	}
	if RootOfUnity(2) != P-1 {
		t.Error("ω_2 != -1")
	}
}

func TestRootOfUnityRejects(t *testing.T) {
	for _, n := range []int{0, 3, 1 << 28} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RootOfUnity(%d) did not panic", n)
				}
			}()
			RootOfUnity(n)
		}()
	}
}

func TestBitReverse(t *testing.T) {
	cases := []struct{ k, logn, want int }{
		{0, 4, 0}, {1, 4, 8}, {3, 4, 12}, {0b0110, 4, 0b0110}, {0b0001, 3, 0b100},
	}
	for _, c := range cases {
		if got := BitReverse(c.k, c.logn); got != c.want {
			t.Errorf("BitReverse(%b, %d) = %b, want %b", c.k, c.logn, got, c.want)
		}
	}
}

func TestDirectDFTSmall(t *testing.T) {
	// DFT of a delta is all-ones.
	x := []Word{1, 0, 0, 0}
	for k, got := range DirectDFT(x) {
		if got != 1 {
			t.Errorf("delta DFT[%d] = %d, want 1", k, got)
		}
	}
	// DFT of all-ones is n·delta.
	y := []Word{1, 1, 1, 1}
	Y := DirectDFT(y)
	if Y[0] != 4 {
		t.Errorf("ones DFT[0] = %d, want 4", Y[0])
	}
	for k := 1; k < 4; k++ {
		if Y[k] != 0 {
			t.Errorf("ones DFT[%d] = %d, want 0", k, Y[k])
		}
	}
}

func checkButterfly(t *testing.T, n int, input func(p int) Word) {
	t.Helper()
	prog := DFTButterfly(n, input)
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	x := make([]Word, n)
	for p := range x {
		x[p] = ((input(p) % P) + P) % P
	}
	want := DirectDFT(x)
	logn := dbsp.Log2(n)
	for p := 0; p < n; p++ {
		if got := res.Contexts[p][fftX]; got != want[BitReverse(p, logn)] {
			t.Errorf("n=%d proc %d: %d, want X[%d]=%d", n, p, got, BitReverse(p, logn), want[BitReverse(p, logn)])
		}
	}
}

func checkRecursive(t *testing.T, n int, input func(p int) Word) {
	t.Helper()
	prog := DFTRecursive(n, input)
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	x := make([]Word, n)
	for p := range x {
		x[p] = ((input(p) % P) + P) % P
	}
	want := DirectDFT(x)
	for p := 0; p < n; p++ {
		if got := res.Contexts[p][fftX]; got != want[p] {
			t.Errorf("n=%d proc %d: %d, want %d", n, p, got, want[p])
		}
	}
}

func TestDFTButterflySizes(t *testing.T) {
	input := func(p int) Word { return Word(p*p + 3) }
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		checkButterfly(t, n, input)
	}
}

func TestDFTRecursiveSizes(t *testing.T) {
	input := func(p int) Word { return Word(7*p + 1) }
	// Cover both even and odd log n (m1 != m2 splits).
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		checkRecursive(t, n, input)
	}
}

func TestDFTNegativeInputNormalised(t *testing.T) {
	checkButterfly(t, 8, func(p int) Word { return Word(-p) })
	checkRecursive(t, 8, func(p int) Word { return Word(-3 * p) })
}

func TestDFTLabelProfiles(t *testing.T) {
	n := 256
	bf := DFTButterfly(n, func(p int) Word { return 1 }).Lambda(true)
	// Butterfly: exactly one exchange superstep per label 0..log n -1.
	for i := 0; i < 8; i++ {
		if bf[i] < 1 || bf[i] > 3 {
			t.Errorf("butterfly λ_%d = %d, want 1..3", i, bf[i])
		}
	}
	rec := DFTRecursive(n, func(p int) Word { return 1 }).Lambda(true)
	// Recursive: transposes at label 0 (3 of them) and geometrically
	// more at finer labels; nothing at most intermediate labels.
	if rec[0] != 4 {
		t.Errorf("recursive λ_0 = %d, want 3 transposes + closing barrier", rec[0])
	}
	if rec[4] < 6 {
		t.Errorf("recursive λ_4 = %d, want >= 6 (second-level transposes)", rec[4])
	}
}

func TestDFTButterflyProperty(t *testing.T) {
	prop := func(vals [8]int32) bool {
		input := func(p int) Word { return Word(vals[p]) }
		prog := DFTButterfly(8, input)
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			return false
		}
		x := make([]Word, 8)
		for p := range x {
			x[p] = ((Word(vals[p]) % P) + P) % P
		}
		want := DirectDFT(x)
		for p := 0; p < 8; p++ {
			if res.Contexts[p][fftX] != want[BitReverse(p, 3)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Parseval-style cross-check: both schedules compute the same transform
// (up to output ordering).
func TestDFTSchedulesAgree(t *testing.T) {
	n := 64
	input := func(p int) Word { return Word(13*p + 5) }
	bf, err := dbsp.Run(DFTButterfly(n, input), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dbsp.Run(DFTRecursive(n, input), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	logn := dbsp.Log2(n)
	for p := 0; p < n; p++ {
		if bf.Contexts[p][fftX] != rec.Contexts[BitReverse(p, logn)][fftX] {
			t.Fatalf("schedules disagree at %d", p)
		}
	}
}

func TestConvolution(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32, 128} {
		a := func(p int) Word { return Word((p*13 + 5) % 50) }
		b := func(p int) Word { return Word((p*7 + 2) % 30) }
		prog := Convolution(n, a, b)
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for k := 0; k < n; k++ {
			var want Word
			for i := 0; i < n; i++ {
				want = ModAdd(want, ModMul(a(i), b(((k-i)%n+n)%n)))
			}
			if got := res.Contexts[k][fftX]; got != want {
				t.Errorf("n=%d c[%d] = %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestConvolutionDelta(t *testing.T) {
	// Convolving with a delta at position d rotates the sequence by d.
	n := 16
	d := 5
	a := func(p int) Word { return Word(p + 1) }
	delta := func(p int) Word {
		if p == d {
			return 1
		}
		return 0
	}
	res, err := dbsp.Run(Convolution(n, a, delta), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := a(((k-d)%n + n) % n)
		if got := res.Contexts[k][fftX]; got != want {
			t.Errorf("c[%d] = %d, want %d", k, got, want)
		}
	}
}

func TestInverseDFTRoundTrip(t *testing.T) {
	// Forward then inverse (with scaling) must reproduce the input; use
	// Convolution's machinery indirectly via an identity convolution:
	// b = delta at 0.
	n := 64
	a := func(p int) Word { return Word(p*p + 3) }
	delta := func(p int) Word {
		if p == 0 {
			return 1
		}
		return 0
	}
	res, err := dbsp.Run(Convolution(n, a, delta), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if got := res.Contexts[k][fftX]; got != a(k) {
			t.Errorf("round trip broke at %d: %d != %d", k, got, a(k))
		}
	}
}
