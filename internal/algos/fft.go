package algos

import (
	"fmt"

	"repro/internal/dbsp"
)

// DFT data layout: word 0 holds the running transform value; word 1 is
// reserved scratch.
const fftX = 0

// DFTButterfly returns the first Proposition 8 schedule: the
// straightforward mapping of the n-input DIF FFT dag onto n processors,
// with exactly one i-superstep for each 0 <= i < log n (plus local
// combine steps at finer labels and a closing global barrier). On
// D-BSP(n, O(1), x^α) it runs in O(Σ_i (n/2^i)^α) = O(n^α).
//
// Input x_p is processor p's data word 0; on termination processor p
// holds X[BitReverse(p, log n)] — the DIF dag's natural bit-reversed
// output order.
func DFTButterfly(n int, input func(p int) Word) *dbsp.Program {
	logn := dbsp.Log2(n)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("dft-butterfly-n%d", n),
		V:      n,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[fftX] = ((input(p) % P) + P) % P
		},
	}
	// DIF level ℓ: blocks of size n/2^ℓ, halves exchange, then
	// upper' = upper + lower, lower' = (upper - lower)·ω_block^(pos).
	for l := 0; l < logn; l++ {
		l := l
		half := n >> uint(l+1)
		// Exchange within blocks: an ℓ-superstep (partners share the
		// size-2·half cluster).
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
			c.Send(c.ID()^half, c.Load(fftX))
		}})
		// Combine locally; no messages, so the finer label ℓ+1 keeps the
		// label sequence ascending (cheap for the simulators).
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: l + 1, Run: func(c *dbsp.Ctx) {
			_, partner := c.Recv(0)
			mine := c.Load(fftX)
			if c.ID()&half == 0 {
				c.Store(fftX, ModAdd(mine, partner))
			} else {
				pos := Word(c.ID() & (half - 1))
				w := ModPow(RootOfUnity(2*half), pos)
				c.Store(fftX, ModMul(ModSub(partner, mine), w))
			}
			c.Work(1)
		}})
	}
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {}})
	return prog
}

// DFTRecursive returns the second Proposition 8 schedule: the recursive
// decomposition of the n-input DFT into two layers of √n-input
// sub-DFTs separated by transpositions (the four-step schedule),
// yielding 2^i supersteps of label ≈ (1 - 1/2^i)·log n and time
// O(log n · log log n) on D-BSP(n, O(1), log x).
//
// Output is in natural order: processor k holds X[k].
func DFTRecursive(n int, input func(p int) Word) *dbsp.Program {
	logn := dbsp.Log2(n)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("dft-recursive-n%d", n),
		V:      n,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[fftX] = ((input(p) % P) + P) % P
		},
	}
	genFFT(prog, 0, n, logn, false)
	// The last emitted superstep is a transpose send (for n > 2): the
	// closing global barrier consumes it.
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: fftConsume})
	return prog
}

// fftConsume stores a routed value as the new transform value.
func fftConsume(c *dbsp.Ctx) {
	if c.NumRecv() == 1 {
		_, payload := c.Recv(0)
		c.Store(fftX, payload)
	}
}

// fftTransposeStep emits a superstep at label L permuting every
// level-L cluster as an m1×m2 -> m2×m1 transpose: relative position
// j1·m2+j2 sends to j2·m1+j1. The following superstep (emitted by the
// caller) consumes.
func fftTransposeStep(prog *dbsp.Program, L, m1, m2 int) {
	prog.Steps = append(prog.Steps, dbsp.Superstep{
		Label:     L,
		Transpose: &dbsp.TransposeRoute{M1: m1, M2: m2},
		Run: func(c *dbsp.Ctx) {
			fftConsume(c)
			cs := dbsp.ClusterSize(c.V(), L)
			lo := (c.ID() / cs) * cs
			rel := c.ID() - lo
			j1, j2 := rel/m2, rel%m2
			c.Send(lo+j2*m1+j1, c.Load(fftX))
		},
	})
}

// genFFT emits the supersteps computing, within every level-L cluster
// (size sz), the sz-point DFT (or inverse DFT, without the 1/sz
// scaling) of the values held in cluster-relative order, leaving the
// result in cluster-relative natural order.
func genFFT(prog *dbsp.Program, L, sz, logn int, inv bool) {
	if sz == 1 {
		return
	}
	if sz == 2 {
		// Single butterfly within the 2-cluster at label logn-1.
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: logn - 1, Run: func(c *dbsp.Ctx) {
			fftConsume(c)
			c.Send(c.ID()^1, c.Load(fftX))
		}})
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: logn, Run: func(c *dbsp.Ctx) {
			_, partner := c.Recv(0)
			mine := c.Load(fftX)
			if c.ID()&1 == 0 {
				c.Store(fftX, ModAdd(mine, partner))
			} else {
				c.Store(fftX, ModSub(partner, mine))
			}
			c.Work(1)
		}})
		return
	}
	logsz := dbsp.Log2(sz)
	m1 := 1 << uint(logsz/2)
	m2 := sz / m1 // m2 >= m1
	// View the cluster as an m1×m2 row-major matrix, x[j] at j = j1·m2+j2.
	// Step 1: transpose to m2×m1 so the inner (size-m1, over j1) DFTs
	// become row DFTs on contiguous subclusters.
	fftTransposeStep(prog, L, m1, m2)
	// Step 2: row DFTs of size m1 within (L + log m2)-clusters.
	genFFT(prog, L+dbsp.Log2(m2), m1, logn, inv)
	// Step 3: twiddle — processor at position j2·m1+k1 multiplies by
	// ω_sz^(j2·k1). Local; folded with the consume of any pending route.
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: logn, Run: func(c *dbsp.Ctx) {
		fftConsume(c)
		cs := dbsp.ClusterSize(c.V(), L)
		lo := (c.ID() / cs) * cs
		rel := c.ID() - lo
		j2, k1 := rel/m1, rel%m1
		w := ModPow(fftRoot(sz, inv), Word(j2*k1))
		c.Store(fftX, ModMul(c.Load(fftX), w))
		c.Work(1)
	}})
	// Step 4: transpose back to m1×m2 so the outer (size-m2, over j2)
	// DFTs are row DFTs.
	fftTransposeStep(prog, L, m2, m1)
	// Step 5: row DFTs of size m2 within (L + log m1)-clusters.
	genFFT(prog, L+dbsp.Log2(m1), m2, logn, inv)
	// Step 6: transpose m1×m2 -> m2×m1: position k1·m2+k2 -> k2·m1+k1,
	// leaving X[k1 + m1·k2] at relative position k1+m1·k2 — natural order.
	fftTransposeStep(prog, L, m1, m2)
}

// fftRoot returns the primitive sz-th root (or its inverse) used by the
// transform direction.
func fftRoot(sz int, inv bool) Word {
	w := RootOfUnity(sz)
	if inv {
		return ModPow(w, P-2) // w^{-1} by Fermat
	}
	return w
}

// Convolution returns a program computing the cyclic convolution of the
// two length-n sequences a and b over Z_P:
//
//	c[k] = Σ_i a[i]·b[(k-i) mod n]  (mod P),
//
// by the classic transform pipeline — forward DFT of both inputs
// (recursive four-step schedule), pointwise product, inverse DFT,
// 1/n scaling — all expressed as one D-BSP program. Processor k ends
// with c[k] in data word 0. The program is the polynomial-multiplication
// workload the paper's DFT case study ultimately serves.
func Convolution(n int, a, b func(p int) Word) *dbsp.Program {
	logn := dbsp.Log2(n)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("convolution-n%d", n),
		V:      n,
		Layout: dbsp.Layout{Data: 3, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[fftX] = ((a(p) % P) + P) % P
			data[2] = ((b(p) % P) + P) % P
		},
	}
	local := func(run func(c *dbsp.Ctx)) dbsp.Superstep {
		return dbsp.Superstep{Label: logn, Run: run}
	}
	// Forward transform of a (word 0).
	genFFT(prog, 0, n, logn, false)
	// Swap the transformed a into word 2 and bring b forward, consuming
	// the pending transpose.
	prog.Steps = append(prog.Steps, local(func(c *dbsp.Ctx) {
		fftConsume(c)
		ahat := c.Load(fftX)
		c.Store(fftX, c.Load(2))
		c.Store(2, ahat)
	}))
	// Forward transform of b.
	genFFT(prog, 0, n, logn, false)
	// Pointwise product into word 0.
	prog.Steps = append(prog.Steps, local(func(c *dbsp.Ctx) {
		fftConsume(c)
		c.Store(fftX, ModMul(c.Load(fftX), c.Load(2)))
		c.Work(1)
	}))
	// Inverse transform and 1/n scaling.
	genFFT(prog, 0, n, logn, true)
	ninv := ModPow(Word(n), P-2)
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		fftConsume(c)
		c.Store(fftX, ModMul(c.Load(fftX), ninv))
		c.Work(1)
	}})
	return prog
}
