package algos

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

func checkSorted(t *testing.T, n int, input func(p int) Word) {
	t.Helper()
	prog := Sort(n, input)
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	want := make([]Word, n)
	for p := range want {
		want[p] = input(p)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for p := 0; p < n; p++ {
		if got := res.Contexts[p][0]; got != want[p] {
			t.Errorf("n=%d pos %d: %d, want %d", n, p, got, want[p])
		}
	}
}

func TestSortSizes(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 256} {
		checkSorted(t, n, func(p int) Word { return Word((p*37 + 11) % 100) })
	}
}

func TestSortReverse(t *testing.T) {
	checkSorted(t, 32, func(p int) Word { return Word(32 - p) })
}

func TestSortAllEqual(t *testing.T) {
	checkSorted(t, 16, func(p int) Word { return 5 })
}

func TestSortAlreadySorted(t *testing.T) {
	checkSorted(t, 16, func(p int) Word { return Word(p) })
}

func TestSortNegativeKeys(t *testing.T) {
	checkSorted(t, 16, func(p int) Word { return Word(8 - p*3) })
}

func TestSortSingle(t *testing.T) {
	prog := Sort(1, func(p int) Word { return 9 })
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contexts[0][0] != 9 {
		t.Error("sort of one key broke it")
	}
}

func TestSortLabelProfile(t *testing.T) {
	prog := Sort(64, func(p int) Word { return Word(p) })
	lam := prog.Lambda(true)
	// Exchange on bit j happens in stages k >= j: label i = log n -1-j
	// appears i+1 times (plus the co-located combine steps).
	logn := 6
	for i := 0; i < logn; i++ {
		exchanges := 0
		j := logn - 1 - i
		for k := j; k < logn; k++ {
			exchanges++
		}
		if lam[i] < exchanges {
			t.Errorf("λ_%d = %d, want >= %d exchanges", i, lam[i], exchanges)
		}
	}
}

func TestSortProperty(t *testing.T) {
	prop := func(vals [32]int16) bool {
		input := func(p int) Word { return Word(vals[p]) }
		prog := Sort(32, input)
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			return false
		}
		want := make([]Word, 32)
		for p := range want {
			want[p] = Word(vals[p])
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for p := 0; p < 32; p++ {
			if res.Contexts[p][0] != want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The 0-1 principle: a comparison network sorts every input iff it
// sorts every 0-1 input. Exhaustively verify the bitonic schedule on
// all 2^16 binary inputs for n=16 — a complete correctness proof of the
// network at this size.
func TestSortZeroOnePrinciple(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 2^16 sweep")
	}
	const n = 16
	for mask := 0; mask < 1<<n; mask++ {
		input := func(p int) Word { return Word((mask >> uint(p)) & 1) }
		prog := Sort(n, input)
		res, err := dbsp.Run(prog, cost.Const{C: 1})
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for p := 0; p < n; p++ {
			ones += int(input(p))
		}
		for p := 0; p < n; p++ {
			want := Word(0)
			if p >= n-ones {
				want = 1
			}
			if res.Contexts[p][0] != want {
				t.Fatalf("mask %04x: position %d = %d, want %d", mask, p, res.Contexts[p][0], want)
			}
		}
	}
}
