package algos

// Modular arithmetic over the NTT-friendly prime P = 15·2^27 + 1. The
// n-DFT programs of Proposition 8 run over this field so that every
// transform value fits a single D-BSP message word and results can be
// verified exactly against a direct DFT.
const (
	// P is the field modulus, prime with P-1 divisible by 2^27.
	P = 15*(1<<27) + 1
	// PrimitiveRoot generates the multiplicative group of Z_P.
	PrimitiveRoot = 31
	// MaxOrder is the largest power-of-two order of a root of unity in
	// Z_P: 2^27.
	MaxOrder = 1 << 27
)

// ModAdd returns (a + b) mod P for a, b in [0, P).
func ModAdd(a, b Word) Word {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// ModSub returns (a - b) mod P for a, b in [0, P).
func ModSub(a, b Word) Word {
	d := a - b
	if d < 0 {
		d += P
	}
	return d
}

// ModMul returns (a · b) mod P. Operands fit in 31 bits, so the product
// fits in 62 bits without overflow.
func ModMul(a, b Word) Word { return a * b % P }

// ModPow returns base^exp mod P for exp >= 0.
func ModPow(base, exp Word) Word {
	base %= P
	if base < 0 {
		base += P
	}
	result := Word(1)
	for exp > 0 {
		if exp&1 == 1 {
			result = ModMul(result, base)
		}
		base = ModMul(base, base)
		exp >>= 1
	}
	return result
}

// RootOfUnity returns a primitive n-th root of unity in Z_P. n must be
// a power of two not exceeding MaxOrder.
func RootOfUnity(n int) Word {
	if n < 1 || n&(n-1) != 0 || n > MaxOrder {
		panic("algos: RootOfUnity needs a power-of-two order <= 2^27")
	}
	return ModPow(PrimitiveRoot, Word((P-1)/int64(n)))
}

// DirectDFT computes the n-point DFT of x over Z_P in O(n²) time:
// X[k] = Σ_j x[j]·ω^(jk) with ω = RootOfUnity(n). It is the oracle the
// D-BSP DFT programs are verified against.
func DirectDFT(x []Word) []Word {
	n := len(x)
	omega := RootOfUnity(n)
	out := make([]Word, n)
	for k := 0; k < n; k++ {
		wk := ModPow(omega, Word(k))
		var acc, w Word = 0, 1
		for j := 0; j < n; j++ {
			acc = ModAdd(acc, ModMul(x[j], w))
			w = ModMul(w, wk)
		}
		out[k] = acc
	}
	return out
}

// BitReverse returns the logn-bit reversal of k.
func BitReverse(k, logn int) int {
	r := 0
	for i := 0; i < logn; i++ {
		r = r<<1 | (k>>uint(i))&1
	}
	return r
}
