package algos

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

func TestReduceSum(t *testing.T) {
	for _, v := range []int{1, 2, 8, 64, 256} {
		prog := Reduce(v, OpSum, func(p int) Word { return Word(p + 1) })
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		want := Word(v * (v + 1) / 2)
		if got := res.Contexts[0][0]; got != want {
			t.Errorf("v=%d: sum = %d, want %d", v, got, want)
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	input := func(p int) Word { return Word((p*37 + 5) % 101) }
	var wantMax, wantMin Word = -1 << 62, 1 << 62
	for p := 0; p < 64; p++ {
		if input(p) > wantMax {
			wantMax = input(p)
		}
		if input(p) < wantMin {
			wantMin = input(p)
		}
	}
	for _, tc := range []struct {
		op   ReduceOp
		want Word
	}{{OpMax, wantMax}, {OpMin, wantMin}} {
		res, err := dbsp.Run(Reduce(64, tc.op, input), cost.Log{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Contexts[0][0]; got != tc.want {
			t.Errorf("%s = %d, want %d", tc.op, got, tc.want)
		}
	}
}

func TestReduceOpString(t *testing.T) {
	if OpSum.String() != "sum" || OpMax.String() != "max" || OpMin.String() != "min" {
		t.Error("ReduceOp.String mismatch")
	}
}

func TestReduceLabelProfile(t *testing.T) {
	prog := Reduce(64, OpSum, func(p int) Word { return 1 })
	lam := prog.Lambda(true)
	// One superstep per level 0..log v -1, plus the final fold at 0.
	if lam[0] != 2 {
		t.Errorf("λ_0 = %d, want 2", lam[0])
	}
	for i := 1; i < 6; i++ {
		if lam[i] != 1 {
			t.Errorf("λ_%d = %d, want 1", i, lam[i])
		}
	}
}

func TestReduceProperty(t *testing.T) {
	prop := func(vals [32]int16) bool {
		input := func(p int) Word { return Word(vals[p]) }
		res, err := dbsp.Run(Reduce(32, OpSum, input), cost.Log{})
		if err != nil {
			return false
		}
		var want Word
		for _, x := range vals {
			want += Word(x)
		}
		return res.Contexts[0][0] == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatVec(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		logn := dbsp.Log2(n)
		side := 1 << uint(logn/2)
		a := func(r, c int) Word { return Word(r + 2*c + 1) }
		x := func(c int) Word { return Word(3*c - 1) }
		prog := MatVec(n, a, x)
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r := 0; r < side; r++ {
			var want Word
			for c := 0; c < side; c++ {
				want += a(r, c) * x(c)
			}
			p := MortonEncode(r, 0, logn)
			if got := res.Contexts[p][0]; got != want {
				t.Errorf("n=%d y[%d] = %d, want %d", n, r, got, want)
			}
		}
	}
}

func TestMatVecRejectsOddLog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatVec(8) did not panic")
		}
	}()
	MatVec(8, func(r, c int) Word { return 0 }, func(c int) Word { return 0 })
}

// stencilHost runs the same relaxation host-side for comparison.
func stencilHost(v, iters int, input func(p int) Word) []Word {
	cur := make([]Word, v)
	for p := range cur {
		cur[p] = input(p)
	}
	for it := 0; it < iters; it++ {
		next := make([]Word, v)
		for p := 0; p < v; p++ {
			left, right := cur[p], cur[p]
			if p > 0 {
				left = cur[p-1]
			}
			if p < v-1 {
				right = cur[p+1]
			}
			next[p] = (left + 2*cur[p] + right) / 4
		}
		cur = next
	}
	return cur
}

func TestStencil1D(t *testing.T) {
	for _, v := range []int{2, 8, 64} {
		for _, iters := range []int{1, 3, 7} {
			input := func(p int) Word { return Word(p * p % 97 * 16) }
			prog := Stencil1D(v, iters, input)
			res, err := dbsp.Run(prog, cost.Log{})
			if err != nil {
				t.Fatalf("v=%d iters=%d: %v", v, iters, err)
			}
			want := stencilHost(v, iters, input)
			for p := 0; p < v; p++ {
				if got := res.Contexts[p][0]; got != want[p] {
					t.Errorf("v=%d iters=%d p=%d: %d, want %d", v, iters, p, got, want[p])
				}
			}
		}
	}
}

func TestStencilLocalityProfile(t *testing.T) {
	// Most communication must happen at the finest level: λ_{logv-1}
	// dominates the coarser levels combined... in superstep-count terms
	// every level appears per round, but the h-relations at coarse
	// levels carry only the boundary pairs — verify via the native cost
	// that coarse supersteps are cheap.
	v := 64
	prog := Stencil1D(v, 2, func(p int) Word { return Word(p) })
	res, err := dbsp.Run(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var fine, coarse float64
	for _, sc := range res.Steps {
		if sc.Label >= dbsp.Log2(v)-1 {
			fine += sc.Cost
		} else if sc.H > 0 {
			coarse += sc.Cost
		}
	}
	if fine <= 0 {
		t.Fatal("no fine-level communication measured")
	}
	// Each coarse level moves only one pair per cluster; its per-step h
	// is 1, same as fine, but there are as many steps — the real check
	// is just that the program is dominated by cheap fine traffic plus
	// the relaxation work. Sanity: total cost stays far below a
	// v-message global-superstep implementation.
	global := 2.0 * 2 * float64(v) // 2 rounds × send+recv × h=2 at g(µv)… loose
	_ = global
	if res.Cost > 4000 {
		t.Errorf("stencil cost %g suspiciously high for v=64, 2 iters", res.Cost)
	}
	_ = coarse
}
