package algos

import (
	"fmt"

	"repro/internal/dbsp"
)

// Word aliases the D-BSP word type.
type Word = dbsp.Word

// carryConsume is the shared superstep preamble of the tree algorithms:
// a processor that received a carry adds it to its running value
// (word 0) and remembers it for forwarding (word 1).
func carryConsume(c *dbsp.Ctx) {
	if c.NumRecv() == 1 {
		_, payload := c.Recv(0)
		c.Store(1, payload)
		c.Store(0, c.Load(0)+payload)
	}
}

// Broadcast returns a program that copies processor 0's input value
// (data word 0) to every processor's data word 0 by recursive doubling:
// phase k (an i-superstep with i = k) lets the holders — the first
// 2^k-aligned leaders — seed the other half of their k-cluster.
// Θ(log v) supersteps with labels 0, 1, ..., log v -1, the canonical
// geometric profile.
func Broadcast(v int, value Word) *dbsp.Program {
	logv := dbsp.Log2(v)
	steps := make([]dbsp.Superstep, 0, logv+1)
	for k := 0; k < logv; k++ {
		k := k
		steps = append(steps, dbsp.Superstep{Label: k, Run: func(c *dbsp.Ctx) {
			if c.NumRecv() == 1 {
				_, payload := c.Recv(0)
				c.Store(0, payload)
			}
			cs := dbsp.ClusterSize(c.V(), k)
			lo := (c.ID() / cs) * cs
			if c.ID() == lo {
				c.Send(lo+cs/2, c.Load(0))
			}
		}})
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		if c.NumRecv() == 1 {
			_, payload := c.Recv(0)
			c.Store(0, payload)
		}
	}})
	return &dbsp.Program{
		Name:   fmt.Sprintf("broadcast-v%d", v),
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			if p == 0 {
				data[0] = value
			}
		},
		Steps: steps,
	}
}

// PrefixSums returns a program computing inclusive prefix sums of the
// per-processor inputs produced by input(p): on output, data word 0 of
// processor p holds Σ_{q<=p} input(q).
//
// The algorithm is the recursive combine run bottom-up: once both
// halves of an ℓ-cluster hold their internal prefix sums, the last
// processor of the left half sends its prefix (the left-half total) to
// the first processor of the right half (an ℓ-superstep), and the
// carry is then doubled across the right half with supersteps of labels
// log v -1 down to ℓ+1, every receiver adding it to its prefix. The
// label profile is λ_i = O(i+1), which Theorem 5 turns into the optimal
// Θ(n^(1+α)) on x^α-HMM. Processor memory stays O(1): word 0 holds the
// running prefix, word 1 the carry being forwarded.
func PrefixSums(v int, input func(p int) Word) *dbsp.Program {
	logv := dbsp.Log2(v)
	var steps []dbsp.Superstep
	for l := logv - 1; l >= 0; l-- {
		l := l
		// Seed: last-of-left-half -> first-of-right-half of each ℓ-cluster.
		steps = append(steps, dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
			carryConsume(c) // tail of the previous level's broadcast
			cs := dbsp.ClusterSize(c.V(), l)
			lo := (c.ID() / cs) * cs
			if c.ID() == lo+cs/2-1 {
				c.Send(lo+cs/2, c.Load(0))
			}
		}})
		// Double the carry across the right half: phase j holders are
		// the first 2^j processors of the right half.
		rsize := v >> uint(l+1)
		for j := 0; (1 << uint(j)) < rsize; j++ {
			j := j
			label := logv - j - 1
			steps = append(steps, dbsp.Superstep{Label: label, Run: func(c *dbsp.Ctx) {
				carryConsume(c)
				cs := dbsp.ClusterSize(c.V(), l)
				lo := (c.ID() / cs) * cs
				rlo := lo + cs/2
				rel := c.ID() - rlo
				if rel >= 0 && rel < 1<<uint(j) && rel+1<<uint(j) < cs/2 {
					c.Send(rlo+rel+1<<uint(j), c.Load(1))
				}
			}})
		}
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: carryConsume})
	return &dbsp.Program{
		Name:   fmt.Sprintf("prefix-v%d", v),
		V:      v,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[0] = input(p)
		},
		Steps: steps,
	}
}

// Permute returns a program that routes each processor's value to
// π(p) in a single 0-superstep (a 1-relation with no submachine
// locality at all) — the contrast workload: its simulation on any
// unbounded f pays the full f(µ·v) per message, and no scheduler can
// avoid it. π must be a permutation of [0, v).
func Permute(v int, pi []int, input func(p int) Word) *dbsp.Program {
	return &dbsp.Program{
		Name:   fmt.Sprintf("permute-v%d", v),
		V:      v,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[0] = input(p)
		},
		Steps: []dbsp.Superstep{
			{Label: 0, Run: func(c *dbsp.Ctx) {
				c.Send(pi[c.ID()], c.Load(0))
			}},
			{Label: 0, Run: func(c *dbsp.Ctx) {
				if c.NumRecv() == 1 {
					_, payload := c.Recv(0)
					c.Store(1, payload)
				}
			}},
		},
	}
}

// LocalPermute returns a hierarchical variant of Permute: phase k
// routes within 2^k-size blocks (label log v - k supersteps), composing
// a butterfly-structured permutation with strong submachine locality.
// It is the locality-rich counterpart used by the slowdown experiments.
// bits selects, per phase, whether the phase swaps the halves of each
// block (bit set) or leaves them (bit clear).
func LocalPermute(v int, bits uint, input func(p int) Word) *dbsp.Program {
	logv := dbsp.Log2(v)
	var steps []dbsp.Superstep
	for k := 1; k <= logv; k++ {
		k := k
		if bits&(1<<uint(k-1)) == 0 {
			continue
		}
		label := logv - k
		steps = append(steps, dbsp.Superstep{Label: label, Run: func(c *dbsp.Ctx) {
			if c.NumRecv() == 1 {
				_, payload := c.Recv(0)
				c.Store(0, payload)
			}
			c.Send(c.ID()^(1<<uint(k-1)), c.Load(0))
		}})
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		if c.NumRecv() == 1 {
			_, payload := c.Recv(0)
			c.Store(0, payload)
		}
	}})
	return &dbsp.Program{
		Name:   fmt.Sprintf("localpermute-v%d-b%x", v, bits),
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[0] = input(p)
		},
		Steps: steps,
	}
}
