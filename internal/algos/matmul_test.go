package algos

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

func TestMortonRoundTrip(t *testing.T) {
	for logn := 2; logn <= 8; logn += 2 {
		n := 1 << uint(logn)
		side := 1 << uint(logn/2)
		seen := make(map[int]bool)
		for p := 0; p < n; p++ {
			r, c := MortonDecode(p, logn)
			if r < 0 || r >= side || c < 0 || c >= side {
				t.Fatalf("logn=%d p=%d: decode (%d,%d) out of range", logn, p, r, c)
			}
			if back := MortonEncode(r, c, logn); back != p {
				t.Fatalf("logn=%d: encode(decode(%d)) = %d", logn, p, back)
			}
			key := r*side + c
			if seen[key] {
				t.Fatalf("logn=%d: position (%d,%d) hit twice", logn, r, c)
			}
			seen[key] = true
		}
	}
}

func TestMortonQuadrants(t *testing.T) {
	// The four quadrants of the matrix must be the four contiguous
	// quarters of the processor range (the 2-subclusters).
	logn := 4 // 4x4 matrix, 16 procs
	for p := 0; p < 16; p++ {
		r, c := MortonDecode(p, logn)
		q := p / 4
		wantRowHi := q >= 2
		wantColHi := q == 1 || q == 3
		if (r >= 2) != wantRowHi || (c >= 2) != wantColHi {
			t.Errorf("p=%d q=%d -> (%d,%d): wrong quadrant", p, q, r, c)
		}
	}
}

// mmCheck runs the MatMul program natively and compares every C element
// against the direct cubic product.
func mmCheck(t *testing.T, n int, a, b func(r, c int) Word) {
	t.Helper()
	prog := MatMul(n, a, b)
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	logn := dbsp.Log2(n)
	side := 1 << uint(logn/2)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			var want Word
			for k := 0; k < side; k++ {
				want += a(r, k) * b(k, c)
			}
			p := MortonEncode(r, c, logn)
			if got := res.Contexts[p][mmC]; got != want {
				t.Errorf("n=%d C[%d][%d] = %d, want %d", n, r, c, got, want)
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	id := func(r, c int) Word {
		if r == c {
			return 1
		}
		return 0
	}
	val := func(r, c int) Word { return Word(3*r + c + 1) }
	mmCheck(t, 16, id, val)
	mmCheck(t, 16, val, id)
}

func TestMatMulSizes(t *testing.T) {
	a := func(r, c int) Word { return Word(r + 2*c + 1) }
	b := func(r, c int) Word { return Word(2*r - c + 3) }
	for _, n := range []int{4, 16, 64, 256} {
		mmCheck(t, n, a, b)
	}
}

func TestMatMulSingleProc(t *testing.T) {
	mmCheck(t, 1, func(r, c int) Word { return 7 }, func(r, c int) Word { return 6 })
}

func TestMatMulRejectsOddLog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul(8) did not panic (log n odd)")
		}
	}()
	MatMul(8, func(r, c int) Word { return 0 }, func(r, c int) Word { return 0 })
}

func TestMatMulLabelProfile(t *testing.T) {
	prog := MatMul(64, func(r, c int) Word { return 1 }, func(r, c int) Word { return 1 })
	lam := prog.Lambda(true)
	// Θ(2^i) supersteps of label 2i: 6 at label 0, 12 at label 2, ...
	if lam[0] == 0 || lam[2] == 0 || lam[4] == 0 {
		t.Errorf("expected supersteps at labels 0,2,4: λ = %v", lam)
	}
	if lam[1] != 0 || lam[3] != 0 {
		t.Errorf("unexpected odd-label supersteps: λ = %v", lam)
	}
	if !(lam[2] > lam[0]) || !(lam[4] > lam[2]) {
		t.Errorf("label counts not geometric: λ = %v", lam)
	}
}

func TestMatMulProperty(t *testing.T) {
	prop := func(seedA, seedB int8) bool {
		a := func(r, c int) Word { return Word(seedA) + Word(r*c) }
		b := func(r, c int) Word { return Word(seedB) - Word(r+c) }
		prog := MatMul(16, a, b)
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			return false
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				var want Word
				for k := 0; k < 4; k++ {
					want += a(r, k) * b(k, c)
				}
				if res.Contexts[MortonEncode(r, c, 4)][mmC] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
