package algos

import (
	"fmt"

	"repro/internal/dbsp"
)

// Sort returns the n-sorting program of Proposition 9: n keys, one per
// processor, redistributed so that processor p ends up holding the
// (p+1)-smallest key in data word 0.
//
// The algorithm is the bitonic sorting network scheduled on D-BSP:
// stage k = 0..log n -1 merges bitonic sequences of length 2^(k+1);
// within stage k, pass j = k..0 compare-exchanges partners differing in
// bit j, which share a (log n -1-j)-cluster. The label profile is
// λ_i = i+1 — geometrically dominated by the coarse labels — so on
// D-BSP(n, O(1), x^α) the time is Θ(Σ_i (i+1)·(n/2^i)^α) = Θ(n^α),
// matching Proposition 9, and the Theorem 5 simulation is the optimal
// Θ(n^(1+α)) on x^α-HMM. (On g = log x the same schedule costs
// Θ(log³ n), consistent with the paper's remark that all known BSP-like
// sorting strategies are Ω(log² n) there.)
func Sort(n int, input func(p int) Word) *dbsp.Program {
	logn := dbsp.Log2(n)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("bitonic-sort-n%d", n),
		V:      n,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Init: func(p int, data []Word) {
			data[0] = input(p)
		},
	}
	for k := 0; k < logn; k++ {
		for j := k; j >= 0; j-- {
			k, j := k, j
			bit := 1 << uint(j)
			label := logn - 1 - j
			// Exchange with the bit-j partner.
			prog.Steps = append(prog.Steps, dbsp.Superstep{Label: label, Run: func(c *dbsp.Ctx) {
				c.Send(c.ID()^bit, c.Load(0))
			}})
			// Compare-exchange: ascending blocks keep the minimum at the
			// low partner; direction flips with bit k+1 of the id (the
			// bitonic merge direction), except in the last stage where
			// every block is ascending.
			prog.Steps = append(prog.Steps, dbsp.Superstep{Label: min(label+1, logn), Run: func(c *dbsp.Ctx) {
				_, partner := c.Recv(0)
				mine := c.Load(0)
				ascending := c.ID()&(1<<uint(k+1)) == 0
				lowSide := c.ID()&bit == 0
				keepMin := ascending == lowSide
				if (keepMin && partner < mine) || (!keepMin && partner > mine) {
					c.Store(0, partner)
				}
				c.Work(1)
			}})
		}
	}
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {}})
	return prog
}
