package algos

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

func TestBroadcast(t *testing.T) {
	for _, v := range []int{1, 2, 8, 64} {
		prog := Broadcast(v, 42)
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		for p := 0; p < v; p++ {
			if got := res.Contexts[p][0]; got != 42 {
				t.Errorf("v=%d proc %d got %d, want 42", v, p, got)
			}
		}
	}
}

func TestBroadcastLabelProfile(t *testing.T) {
	prog := Broadcast(64, 1)
	lam := prog.Lambda(true)
	// One superstep per label 0..log v -1, plus the final consume at 0.
	if lam[0] != 2 {
		t.Errorf("λ_0 = %d, want 2", lam[0])
	}
	for i := 1; i < 6; i++ {
		if lam[i] != 1 {
			t.Errorf("λ_%d = %d, want 1", i, lam[i])
		}
	}
}

func TestPrefixSums(t *testing.T) {
	for _, v := range []int{1, 2, 4, 16, 128} {
		prog := PrefixSums(v, func(p int) Word { return Word(p + 1) })
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		for p := 0; p < v; p++ {
			want := Word((p + 1) * (p + 2) / 2)
			if got := res.Contexts[p][0]; got != want {
				t.Errorf("v=%d proc %d prefix = %d, want %d", v, p, got, want)
			}
		}
	}
}

func TestPrefixSumsProperty(t *testing.T) {
	prop := func(vals [16]int8) bool {
		prog := PrefixSums(16, func(p int) Word { return Word(vals[p]) })
		res, err := dbsp.Run(prog, cost.Log{})
		if err != nil {
			return false
		}
		var sum Word
		for p := 0; p < 16; p++ {
			sum += Word(vals[p])
			if res.Contexts[p][0] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermute(t *testing.T) {
	v := 16
	pi := make([]int, v)
	for p := range pi {
		pi[p] = (p*5 + 3) % v // 5 coprime to 16: a permutation
	}
	prog := Permute(v, pi, func(p int) Word { return Word(100 + p) })
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < v; p++ {
		if got := res.Contexts[pi[p]][1]; got != Word(100+p) {
			t.Errorf("value of proc %d did not arrive at %d: got %d", p, pi[p], got)
		}
	}
}

func TestLocalPermute(t *testing.T) {
	v := 16
	bits := uint(0b1010) // swap on phases 2 and 4: XOR with 0b1010 = 10
	prog := LocalPermute(v, bits, func(p int) Word { return Word(p) })
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < v; p++ {
		// Value of proc q ends at q ^ 10; proc p holds value p ^ 10.
		if got := res.Contexts[p][0]; got != Word(p^10) {
			t.Errorf("proc %d got %d, want %d", p, got, p^10)
		}
	}
}

func TestLocalPermuteIdentity(t *testing.T) {
	prog := LocalPermute(8, 0, func(p int) Word { return Word(p * 3) })
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if res.Contexts[p][0] != Word(p*3) {
			t.Errorf("identity permute moved proc %d's value", p)
		}
	}
}
