package experiments

import "testing"

// TestTableJSONGolden pins the exact JSON encoding of a Table.
// cmd/experiments -json is consumed downstream (EXPERIMENTS.md
// tooling, the sweep JSONL value field), so field names, ordering and
// indentation are a contract: an intentional change must update this
// golden alongside the consumers.
func TestTableJSONGolden(t *testing.T) {
	tb := &Table{
		ID:      "E99",
		Title:   "Golden fixture",
		Claim:   "encoding is stable",
		Columns: []string{"n", "measured"},
		Rows: [][]string{
			{"64", "1.00"},
			{"256", "1.02"},
		},
		Notes: "fixture only",
	}
	want := `{
  "ID": "E99",
  "Title": "Golden fixture",
  "Claim": "encoding is stable",
  "Columns": [
    "n",
    "measured"
  ],
  "Rows": [
    [
      "64",
      "1.00"
    ],
    [
      "256",
      "1.02"
    ]
  ],
  "Notes": "fixture only"
}`
	got, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("Table JSON drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTableJSONGoldenEmpty pins the zero-row shape (null vs [] matters
// to JSON consumers).
func TestTableJSONGoldenEmpty(t *testing.T) {
	tb := &Table{ID: "E98", Title: "Empty", Claim: "c", Columns: []string{"x"}}
	want := `{
  "ID": "E98",
  "Title": "Empty",
  "Claim": "c",
  "Columns": [
    "x"
  ],
  "Rows": null,
  "Notes": ""
}`
	got, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("empty Table JSON drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
