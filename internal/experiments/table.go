// Package experiments regenerates every quantitative claim of the paper
// as a measured-vs-predicted table (the experiment index of DESIGN.md).
// Each experiment is a pure function of a sweep.Params and registers as
// a named sweep.Job, so cmd/experiments can run the grid across a
// bounded worker pool with byte-identical output for any worker count;
// EXPERIMENTS.md records a reference run; the root bench_test.go
// exposes each as a testing.B benchmark.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/sweep"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier (E01..E20).
	ID string
	// Title summarises the experiment.
	Title string
	// Claim quotes the paper statement being validated.
	Claim string
	// Columns and Rows hold the measurements.
	Columns []string
	Rows    [][]string
	// Notes records interpretation guidance (what "shape holds" means).
	Notes string
}

// Render formats the table as aligned Markdown.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n\n", t.Claim)
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, cell := range cells {
			fmt.Fprintf(&b, " %-*s |", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range width {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Notes)
	}
	return b.String()
}

// g formats a measurement compactly.
func g(x float64) string { return fmt.Sprintf("%.3g", x) }

// r formats a ratio.
func r(x float64) string { return fmt.Sprintf("%.2f", x) }

// Spec is one registered experiment: its ID and its table builder.
type Spec struct {
	// ID is the experiment identifier the CLI filters on.
	ID string
	// Build produces the experiment's table; it must be a pure function
	// of p.
	Build func(p sweep.Params) *Table
}

// Specs returns every experiment in index order — the single source of
// truth All, Lookup and Jobs derive from.
func Specs() []Spec {
	return []Spec{
		{"E01", E01TouchHMM},
		{"E02", E02TouchBT},
		{"E03", E03HMMSlowdown},
		{"E04", E04NaiveVsScheduled},
		{"E05", E05MatMul},
		{"E06", E06DFT},
		{"E07", E07Sort},
		{"E08", E08Brent},
		{"E09", E09BTSim},
		{"E10", E10BTMatMul},
		{"E11", E11BTDFTChoice},
		{"E14", E14SmoothingAblation},
		{"E15", E15Compute},
		{"E16", E16AMSort},
		{"E17", E17RouteDelivery},
		{"E18", E18DirectDelivery},
		{"E19", E19LabelSlack},
		{"E20", E20BigV},
	}
}

// Jobs wraps every experiment as a named sweep.Job whose value is the
// built *Table.
func Jobs() []sweep.Job {
	specs := Specs()
	jobs := make([]sweep.Job, len(specs))
	for i, s := range specs {
		build := s.Build
		jobs[i] = sweep.Job{ID: s.ID, Run: func(ctx context.Context, p sweep.Params) (any, error) {
			return build(p), nil
		}}
	}
	return jobs
}

// params is the serial-path Params of one experiment: the same seed
// derivation the sweep engine uses (base seed 0), so All/Lookup match
// engine runs bit for bit.
func params(id string, quick bool) sweep.Params {
	return sweep.Params{Quick: quick, Seed: sweep.SeedFor(0, id)}
}

// All runs every experiment serially and returns the tables in index
// order. quick trims the sweeps for fast smoke runs.
func All(quick bool) []*Table {
	specs := Specs()
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.Build(params(s.ID, quick))
	}
	return out
}

// Lookup returns the experiment function by ID, for -only filtering
// and the tests' direct calls.
func Lookup(id string) (func(bool) *Table, bool) {
	for _, s := range Specs() {
		if s.ID == id {
			build := s.Build
			return func(quick bool) *Table { return build(params(id, quick)) }, true
		}
	}
	return nil, false
}

// JSON serialises the table for machine consumption (cmd/experiments
// -json).
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}
