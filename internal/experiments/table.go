// Package experiments regenerates every quantitative claim of the paper
// as a measured-vs-predicted table (the experiment index of DESIGN.md).
// cmd/experiments prints the tables; EXPERIMENTS.md records a reference
// run; the root bench_test.go exposes each as a testing.B benchmark.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier (E01..E16).
	ID string
	// Title summarises the experiment.
	Title string
	// Claim quotes the paper statement being validated.
	Claim string
	// Columns and Rows hold the measurements.
	Columns []string
	Rows    [][]string
	// Notes records interpretation guidance (what "shape holds" means).
	Notes string
}

// Render formats the table as aligned Markdown.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n\n", t.Claim)
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, cell := range cells {
			fmt.Fprintf(&b, " %-*s |", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range width {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Notes)
	}
	return b.String()
}

// g formats a measurement compactly.
func g(x float64) string { return fmt.Sprintf("%.3g", x) }

// r formats a ratio.
func r(x float64) string { return fmt.Sprintf("%.2f", x) }

// All runs every experiment and returns the tables in index order.
// quick trims the sweeps for fast smoke runs.
func All(quick bool) []*Table {
	return []*Table{
		E01TouchHMM(quick),
		E02TouchBT(quick),
		E03HMMSlowdown(quick),
		E04NaiveVsScheduled(quick),
		E05MatMul(quick),
		E06DFT(quick),
		E07Sort(quick),
		E08Brent(quick),
		E09BTSim(quick),
		E10BTMatMul(quick),
		E11BTDFTChoice(quick),
		E14SmoothingAblation(quick),
		E15Compute(quick),
		E16AMSort(quick),
		E17RouteDelivery(quick),
		E18DirectDelivery(quick),
		E19LabelSlack(quick),
	}
}

// Lookup returns the experiment function by ID, for cmd/experiments
// -only filtering.
func Lookup(id string) (func(bool) *Table, bool) {
	m := map[string]func(bool) *Table{
		"E01": E01TouchHMM,
		"E02": E02TouchBT,
		"E03": E03HMMSlowdown,
		"E04": E04NaiveVsScheduled,
		"E05": E05MatMul,
		"E06": E06DFT,
		"E07": E07Sort,
		"E08": E08Brent,
		"E09": E09BTSim,
		"E10": E10BTMatMul,
		"E11": E11BTDFTChoice,
		"E14": E14SmoothingAblation,
		"E15": E15Compute,
		"E16": E16AMSort,
		"E17": E17RouteDelivery,
		"E18": E18DirectDelivery,
		"E19": E19LabelSlack,
	}
	fn, ok := m[id]
	return fn, ok
}

// JSON serialises the table for machine consumption (cmd/experiments
// -json).
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}
