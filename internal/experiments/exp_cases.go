package experiments

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/sweep"
	"repro/internal/theory"
	"repro/internal/workload"
)

// E05MatMul validates Proposition 7: the recursive n-MM algorithm runs
// in O(n^α) / O(√n·log n) / O(√n) on D-BSP(n, O(1), x^α) depending on
// α ≷ 1/2, and its HMM simulation matches the Θ(n·T_MM(n)) lower bound
// of [1].
func E05MatMul(p sweep.Params) *Table {
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:    "E05",
		Title: "Matrix multiplication (Proposition 7)",
		Claim: "T_MM(n) = O(n^α) for α>1/2, O(√n log n) at α=1/2, O(√n) for α<1/2; " +
			"the HMM simulation is optimal Θ(n·T_MM(n))",
		Columns: []string{"g=f", "n", "T native", "T/pred", "HMM sim", "sim/pred"},
		Notes: "Shape holds when both ratio columns are flat across n for each g, " +
			"showing the α = 1/2 crossover of the proposition.",
	}
	funcs := []cost.Func{cost.Poly{Alpha: 0.75}, cost.Poly{Alpha: 0.5}, cost.Poly{Alpha: 0.25}, cost.Log{}}
	for _, f := range funcs {
		for _, n := range sizes {
			side := 1 << uint(dbsp.Log2(n)/2)
			prog := algos.MatMul(n, workload.Matrix(p.Seed+11, side, 4), workload.Matrix(p.Seed+12, side, 4))
			native, err := dbsp.Run(prog, f)
			must(err)
			sim, err := hmmsim.Simulate(prog, f, hmmOpts(p))
			must(err)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(n), g(native.Cost),
				r(native.Cost / theory.MatMulDBSP(f, n)),
				g(sim.HostCost), r(sim.HostCost / theory.MatMulHMM(f, n))})
		}
	}
	return t
}

// E06DFT validates Proposition 8: the butterfly schedule costs O(n^α)
// on x^α, the recursive schedule O(log n·log log n) on log x, and the
// HMM simulations match the best known bounds O(n^(1+α)) and
// O(n·log n·log log n) of [1].
func E06DFT(p sweep.Params) *Table {
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:    "E06",
		Title: "Discrete Fourier Transform (Proposition 8)",
		Claim: "T_DFT = O(n^α) on x^α (butterfly) and O(log n·log log n) on log x " +
			"(recursive); simulations match the known HMM bounds",
		Columns: []string{"schedule", "g=f", "n", "T native", "T/pred", "HMM sim", "sim/pred"},
		Notes:   "Ratios flat across n = shape holds; each schedule is paired with its natural g.",
	}
	type cfg struct {
		name string
		prog func(n int) *dbsp.Program
		f    cost.Func
	}
	input := func(n int) func(p int) int64 { return workload.KeyFunc(p.Seed+21, n, 1<<20) }
	cfgs := []cfg{
		{"butterfly", func(n int) *dbsp.Program { return algos.DFTButterfly(n, input(n)) }, cost.Poly{Alpha: 0.5}},
		{"recursive", func(n int) *dbsp.Program { return algos.DFTRecursive(n, input(n)) }, cost.Log{}},
		{"recursive", func(n int) *dbsp.Program { return algos.DFTRecursive(n, input(n)) }, cost.Poly{Alpha: 0.5}},
	}
	for _, c := range cfgs {
		for _, n := range sizes {
			prog := c.prog(n)
			native, err := dbsp.Run(prog, c.f)
			must(err)
			sim, err := hmmsim.Simulate(prog, c.f, hmmOpts(p))
			must(err)
			t.Rows = append(t.Rows, []string{
				c.name, c.f.Name(), fmt.Sprint(n), g(native.Cost),
				r(native.Cost / theory.DFTDBSP(c.f, n)),
				g(sim.HostCost), r(sim.HostCost / theory.DFTHMM(c.f, n))})
		}
	}
	return t
}

// E07Sort validates Proposition 9: n-sorting in O(n^α) on
// D-BSP(n, O(1), x^α), whose simulation is the optimal Θ(n^(1+α)) on
// the x^α-HMM.
func E07Sort(p sweep.Params) *Table {
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:    "E07",
		Title: "Sorting (Proposition 9)",
		Claim: "n-sorting runs in O(n^α) on D-BSP(n, O(1), x^α); simulated on " +
			"x^α-HMM it is the optimal Θ(n^(1+α))",
		Columns: []string{"g=f", "n", "T native", "T/pred", "HMM sim", "sim/pred"},
		Notes: "Ratios flat across n = shape holds. On g = log x the bitonic schedule " +
			"costs Θ(log³ n), consistent with the paper's Ω(log² n) remark for all " +
			"known BSP-like strategies.",
	}
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Poly{Alpha: 0.25}} {
		for _, n := range sizes {
			prog := algos.Sort(n, workload.KeyFunc(p.Seed+31, n, int64(4*n)))
			native, err := dbsp.Run(prog, f)
			must(err)
			sim, err := hmmsim.Simulate(prog, f, hmmOpts(p))
			must(err)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(n), g(native.Cost),
				r(native.Cost / theory.SortDBSP(f, n)),
				g(sim.HostCost), r(sim.HostCost / theory.SortHMM(f, n))})
		}
	}
	return t
}
