package experiments

import (
	"fmt"

	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
	"repro/internal/smooth"
	"repro/internal/sweep"
	"repro/internal/theory"
)

// E03HMMSlowdown validates Theorem 5 / Corollary 6: simulating a
// fine-grained D-BSP(v, µ, f) program on an f(x)-HMM costs Θ(T·v) — a
// slowdown merely linear in the loss of parallelism — and matches the
// Theorem 5 formula v·(τ + µ·Σ λ_i·f(µv/2^i)).
func E03HMMSlowdown(p sweep.Params) *Table {
	vs := []int{16, 64, 256, 1024}
	if p.Quick {
		vs = vs[:2]
	}
	t := &Table{
		ID:    "E03",
		Title: "D-BSP -> HMM simulation slowdown (Theorem 5, Corollary 6)",
		Claim: "with g = f the simulation runs in Θ(T·v): slowdown linear in the " +
			"loss of parallelism, no extra hierarchy-induced cost",
		Columns: []string{"f", "v", "T (native, g=f)", "sim cost", "cost/(T·v)", "cost/Thm5"},
		Notes: "Shape holds when both ratio columns are flat across v: the measured " +
			"slowdown is c·v for a constant c, and the Theorem 5 formula predicts it.",
	}
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, v := range vs {
			prog := progtest.Rotate(v, progtest.Descending(v)...)
			native, err := dbsp.Run(prog, f)
			must(err)
			res, err := hmmsim.Simulate(prog, f, hmmOpts(p))
			must(err)
			flat, err := dbsp.Run(prog, cost.Const{C: 1})
			must(err)
			pred := theory.HMMSimulation(f, v, prog.Mu(), float64(flat.TotalTau()), prog.Lambda(true))
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(v), g(native.Cost), g(res.HostCost),
				r(res.HostCost / (native.Cost * float64(v))), r(res.HostCost / pred)})
		}
	}
	return t
}

// E04NaiveVsScheduled is the scheduling ablation: the Figure 1
// depth-first cluster schedule versus the superstep-at-a-time baseline,
// which pays f(µ·v) per superstep regardless of label (time ω(v) per
// superstep for unbounded f).
func E04NaiveVsScheduled(p sweep.Params) *Table {
	vs := []int{64, 256, 1024}
	if p.Quick {
		vs = vs[:2]
	}
	t := &Table{
		ID:    "E04",
		Title: "Figure 1 scheduling vs step-by-step baseline (HMM)",
		Claim: "a straightforward step-by-step simulation pays ω(v) per superstep " +
			"just to touch the contexts; the cluster schedule does not",
		Columns: []string{"f", "v", "scheduled", "naive", "naive/scheduled"},
		Notes:   "Shape holds when the gain column grows with v (the baseline's extra factor is unbounded).",
	}
	f := cost.Poly{Alpha: 0.5}
	for _, v := range vs {
		prog := progtest.Rotate(v, progtest.Fine(v, 12)...)
		sched, err := hmmsim.Simulate(prog, f, hmmOpts(p))
		must(err)
		naive, err := hmmsim.SimulateNaive(prog, f)
		must(err)
		t.Rows = append(t.Rows, []string{
			f.Name(), fmt.Sprint(v), g(sched.HostCost), g(naive.HostCost),
			r(naive.HostCost / sched.HostCost)})
	}
	return t
}

// E14SmoothingAblation compares the default Theorem 5 label set against
// the identity label set (dummies only, no label bundling) and, where
// legal, no smoothing at all.
func E14SmoothingAblation(p sweep.Params) *Table {
	vs := []int{64, 256}
	if p.Quick {
		vs = vs[:1]
	}
	t := &Table{
		ID:    "E14",
		Title: "L-smoothing ablation (Definition 3)",
		Claim: "smoothing with the Theorem 5 label set adds only a constant factor " +
			"while enabling the cluster schedule's amortisation",
		Columns: []string{"program/f", "v", "thm5 labels", "identity labels", "unsmoothed", "thm5/baseline"},
		Notes: "For the descending program the baseline is the unsmoothed run; for " +
			"the sawtooth program (not smooth as written) the baseline is the " +
			"identity label set. The Theorem 5 set must stay within a small " +
			"constant of the baseline in both cases.",
	}
	f := cost.Poly{Alpha: 0.5}
	for _, v := range vs {
		// Descending labels: already smooth, so the unsmoothed column is
		// legal and the identity set adds no dummies.
		prog := progtest.Rotate(v, progtest.Descending(v)...)
		def, err := hmmsim.Simulate(prog, f, hmmOpts(p))
		must(err)
		ident, err := hmmsim.Simulate(prog, f, &hmmsim.Options{Labels: smooth.Identity(dbsp.Log2(v)), Obs: p.Obs})
		must(err)
		raw, err := hmmsim.Simulate(prog, f, &hmmsim.Options{DisableSmoothing: true, Obs: p.Obs})
		must(err)
		t.Rows = append(t.Rows, []string{
			"descending/" + f.Name(), fmt.Sprint(v), g(def.HostCost), g(ident.HostCost), g(raw.HostCost),
			r(def.HostCost / raw.HostCost)})
		// Sawtooth labels: repeated fine->global jumps, where dummies are
		// mandatory (the raw program is not smooth, so it cannot run
		// unsmoothed) and the Theorem 5 bundling pays off most.
		logv := dbsp.Log2(v)
		saw := progtest.Rotate(v, logv-1, 0, logv-1, 0, logv-1, 0)
		defS, err := hmmsim.Simulate(saw, f, hmmOpts(p))
		must(err)
		identS, err := hmmsim.Simulate(saw, f, &hmmsim.Options{Labels: smooth.Identity(logv), Obs: p.Obs})
		must(err)
		t.Rows = append(t.Rows, []string{
			"sawtooth/" + f.Name(), fmt.Sprint(v), g(defS.HostCost), g(identS.HostCost), "n/a",
			r(defS.HostCost / identS.HostCost)})
	}
	return t
}

// E19LabelSlack audits the case-study algorithms with the message
// tracer: slack is the average difference between the finest common
// cluster of a message's endpoints and the superstep label it was sent
// under. Zero slack means the program's labels expose every bit of
// submachine locality its traffic admits — the property that makes the
// Theorem 5/12 simulations optimal for these algorithms.
func E19LabelSlack(p sweep.Params) *Table {
	v := 256
	if p.Quick {
		v = 64
	}
	t := &Table{
		ID:    "E19",
		Title: "Label slack of the case-study algorithms",
		Claim: "the Propositions 7-9 schedules declare their supersteps at exactly " +
			"the granularity their communication requires",
		Columns: []string{"program", "messages", "slack (levels)"},
		Notes: "Slack 0 = every message is sent at the finest legal label. " +
			"Transpose-like patterns carry inherent sub-level slack (fixed " +
			"points and near-diagonal pairs land in finer clusters than the " +
			"pattern as a whole requires), so values well below one level are " +
			"tight; the deliberately sloppy variant shows what the tracer flags.",
	}
	side := 1 << uint(dbsp.Log2(v)/2)
	progs := []*dbsp.Program{
		algosMatMul(p, v, side),
		algosDFTButterfly(p, v),
		algosDFTRecursive(p, v),
		algosSort(p, v),
	}
	for _, prog := range progs {
		_, tr, err := dbsp.RunTraced(prog, cost.Const{C: 1})
		must(err)
		t.Rows = append(t.Rows, []string{
			prog.Name, fmt.Sprint(tr.Messages()), fmt.Sprintf("%.3f", tr.Slack())})
	}
	// The sloppy contrast: neighbour exchanges declared globally.
	sloppy := &dbsp.Program{
		Name: "sloppy-neighbour", V: v, Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Steps: []dbsp.Superstep{
			{Label: 0, Run: func(c *dbsp.Ctx) { c.Send(c.ID()^1, 1) }},
			{Label: 0, Run: func(c *dbsp.Ctx) {}},
		},
	}
	_, tr, err := dbsp.RunTraced(sloppy, cost.Const{C: 1})
	must(err)
	t.Rows = append(t.Rows, []string{
		sloppy.Name, fmt.Sprint(tr.Messages()), fmt.Sprintf("%.3f", tr.Slack())})
	return t
}
