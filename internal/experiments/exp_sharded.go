package experiments

import (
	"fmt"
	"math"
	"reflect"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
	"repro/internal/sweep"
)

// E20BigV is the sharded-engine scale demonstration: the engine the
// ROADMAP's "millions of processors" item asks for. It runs a rotate
// program at v up to 2^20 under dbsp.RunSharded with fixed shard
// counts (never GOMAXPROCS — cells must not depend on the host), and
// on the v range where the native engine also runs it checks every
// charged float64 and every context word for bit-identity. Shard
// counts are a pure execution detail, so the cost column is constant
// down each v block — that invariance is the experiment's claim.
//
// The builder deliberately uses the un-traced RunSharded: a traced run
// materialises every routed message, which at v = 2^20 is tens of
// millions of MessageTrace records per superstep sweep.
func E20BigV(p sweep.Params) *Table {
	vs := []int{1 << 14, 1 << 17, 1 << 20}
	nativeCap := 1 << 17 // native comparison range; above it, sharded only
	if p.Quick {
		vs = []int{1 << 10, 1 << 14}
		nativeCap = 1 << 14
	}
	shardCounts := []int{1, 8, 64}
	t := &Table{
		ID:    "E20",
		Title: "Sharded engine at big v (2^20 processors)",
		Claim: "a D-BSP(v, µ, g) computation with submachine locality can be " +
			"executed by far fewer physical processors than v; the sharded " +
			"engine multiplexes v contexts over a handful of shards with " +
			"bit-identical charged costs",
		Columns: []string{"v", "shards", "supersteps", "T (total cost)", "max h", "vs native"},
		Notes: "Shape holds when the cost column is constant within each v " +
			"block (shard count is an execution detail, not a model " +
			"parameter) and every native-range row reads `identical` — " +
			"contexts, per-step costs and totals compared bit for bit.",
	}
	f := cost.Poly{Alpha: 0.5}
	for _, v := range vs {
		logv := dbsp.Log2(v)
		labels := []int{logv - 1, logv / 2, 0}
		var native *dbsp.Result
		if v <= nativeCap {
			res, err := dbsp.Run(progtest.Rotate(v, labels...), f)
			must(err)
			native = res
		}
		for _, shards := range shardCounts {
			res, err := dbsp.RunSharded(progtest.Rotate(v, labels...), f, shards)
			must(err)
			maxH := 0
			for _, sc := range res.Steps {
				maxH = max(maxH, sc.H)
			}
			vsNative := "-"
			if native != nil {
				vsNative = "identical"
				if math.Float64bits(native.Cost) != math.Float64bits(res.Cost) ||
					len(native.Steps) != len(res.Steps) {
					vsNative = "DIVERGED"
				} else {
					for i := range native.Steps {
						if native.Steps[i].Tau != res.Steps[i].Tau ||
							native.Steps[i].H != res.Steps[i].H ||
							math.Float64bits(native.Steps[i].Cost) != math.Float64bits(res.Steps[i].Cost) {
							vsNative = "DIVERGED"
							break
						}
					}
				}
				if vsNative == "identical" && !reflect.DeepEqual(native.Contexts, res.Contexts) {
					vsNative = "DIVERGED"
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("2^%d", logv), fmt.Sprint(shards),
				fmt.Sprint(len(res.Steps)), g(res.Cost), fmt.Sprint(maxH), vsNative,
			})
		}
	}
	return t
}
