package experiments

import (
	"repro/internal/algos"
	"repro/internal/dbsp"
	"repro/internal/workload"
)

// Program builders shared by the slack audit (E19).

func algosMatMul(n, side int) *dbsp.Program {
	return algos.MatMul(n, workload.Matrix(71, side, 4), workload.Matrix(72, side, 4))
}

func algosDFTButterfly(n int) *dbsp.Program {
	return algos.DFTButterfly(n, workload.KeyFunc(73, n, 1<<20))
}

func algosDFTRecursive(n int) *dbsp.Program {
	return algos.DFTRecursive(n, workload.KeyFunc(74, n, 1<<20))
}

func algosSort(n int) *dbsp.Program {
	return algos.Sort(n, workload.KeyFunc(75, n, int64(4*n)))
}
