package experiments

import (
	"repro/internal/algos"
	"repro/internal/core/btsim"
	"repro/internal/core/hmmsim"
	"repro/internal/core/selfsim"
	"repro/internal/dbsp"
	"repro/internal/obs"
	"repro/internal/workload"
)

// sharedObs, when set, instruments every simulation the experiment
// tables run: all metrics accumulate into the caller's registry and
// trace events flow to its sink. cmd/experiments installs it for
// -metrics/-trace-out.
var sharedObs *obs.Observer

// SetObserver installs (or, with nil, removes) the shared observer.
// Call before running experiments; not safe concurrently with them.
func SetObserver(o *obs.Observer) { sharedObs = o }

// hmmOpts/btOpts/selfOpts return the default simulation options,
// carrying the shared observer when one is installed.
func hmmOpts() *hmmsim.Options {
	if sharedObs == nil {
		return nil
	}
	return &hmmsim.Options{Obs: sharedObs}
}

func btOpts() *btsim.Options {
	if sharedObs == nil {
		return nil
	}
	return &btsim.Options{Obs: sharedObs}
}

func selfOpts() *selfsim.Options {
	if sharedObs == nil {
		return nil
	}
	return &selfsim.Options{Obs: sharedObs}
}

// Program builders shared by the slack audit (E19).

func algosMatMul(n, side int) *dbsp.Program {
	return algos.MatMul(n, workload.Matrix(71, side, 4), workload.Matrix(72, side, 4))
}

func algosDFTButterfly(n int) *dbsp.Program {
	return algos.DFTButterfly(n, workload.KeyFunc(73, n, 1<<20))
}

func algosDFTRecursive(n int) *dbsp.Program {
	return algos.DFTRecursive(n, workload.KeyFunc(74, n, 1<<20))
}

func algosSort(n int) *dbsp.Program {
	return algos.Sort(n, workload.KeyFunc(75, n, int64(4*n)))
}

// must panics with the package prefix when err is non-nil. The
// experiment generators run inside table builders with no error
// channel: a failing simulation is a bug in the experiment setup, and
// the prefixed panic satisfies the panicmsg discipline that bare
// panic(err) would violate.
func must(err error) {
	if err != nil {
		panic("experiments: " + err.Error())
	}
}
