package experiments

import (
	"repro/internal/algos"
	"repro/internal/core/btsim"
	"repro/internal/core/hmmsim"
	"repro/internal/core/selfsim"
	"repro/internal/dbsp"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Every table builder is a pure function of a sweep.Params: p.Quick
// trims the sweeps, p.Seed offsets the deterministic workload seeds
// (so distinct jobs draw distinct inputs while any run with the same
// base seed is bit-for-bit reproducible), and p.Obs instruments every
// simulation the table runs. The sweep engine derives p per job; the
// legacy All/Lookup entry points use the same derivation, so serial
// and concurrent runs produce identical tables.

// hmmOpts/btOpts/selfOpts return the default simulation options,
// carrying the job's observer when one is installed.
func hmmOpts(p sweep.Params) *hmmsim.Options {
	if p.Obs == nil {
		return nil
	}
	return &hmmsim.Options{Obs: p.Obs}
}

func btOpts(p sweep.Params) *btsim.Options {
	if p.Obs == nil {
		return nil
	}
	return &btsim.Options{Obs: p.Obs}
}

func selfOpts(p sweep.Params) *selfsim.Options {
	if p.Obs == nil {
		return nil
	}
	return &selfsim.Options{Obs: p.Obs}
}

// Program builders shared by the slack audit (E19).

func algosMatMul(p sweep.Params, n, side int) *dbsp.Program {
	return algos.MatMul(n, workload.Matrix(p.Seed+71, side, 4), workload.Matrix(p.Seed+72, side, 4))
}

func algosDFTButterfly(p sweep.Params, n int) *dbsp.Program {
	return algos.DFTButterfly(n, workload.KeyFunc(p.Seed+73, n, 1<<20))
}

func algosDFTRecursive(p sweep.Params, n int) *dbsp.Program {
	return algos.DFTRecursive(n, workload.KeyFunc(p.Seed+74, n, 1<<20))
}

func algosSort(p sweep.Params, n int) *dbsp.Program {
	return algos.Sort(n, workload.KeyFunc(p.Seed+75, n, int64(4*n)))
}

// must panics with the package prefix when err is non-nil. The
// experiment generators run inside table builders with no error
// channel: a failing simulation is a bug in the experiment setup, and
// the prefixed panic satisfies the panicmsg discipline that bare
// panic(err) would violate. The sweep engine converts the panic into
// a failed-job outcome.
func must(err error) {
	if err != nil {
		panic("experiments: " + err.Error())
	}
}
