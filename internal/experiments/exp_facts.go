package experiments

import (
	"fmt"

	"repro/internal/bt"
	"repro/internal/cost"
	"repro/internal/hmm"
	"repro/internal/sweep"
	"repro/internal/theory"
)

// E01TouchHMM validates Fact 1: touching the first n cells of an
// f(x)-HMM costs Θ(n·f(n)). The measured/predicted ratio must stay
// within constant factors across the sweep.
func E01TouchHMM(p sweep.Params) *Table {
	sizes := []int64{1 << 10, 1 << 13, 1 << 16, 1 << 19}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:      "E01",
		Title:   "Touching on the HMM (Fact 1)",
		Claim:   "touching the first n cells of an f(x)-HMM takes Θ(n·f(n))",
		Columns: []string{"f", "n", "measured", "n·f(n)", "ratio"},
		Notes:   "Shape holds when the ratio column is flat across n for each f.",
	}
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Poly{Alpha: 0.25}, cost.Log{}} {
		for _, n := range sizes {
			m := hmm.New(f, n)
			m.Touch(n)
			pred := theory.TouchHMM(f, n)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(n), g(m.Cost()), g(pred), r(m.Cost() / pred)})
		}
	}
	return t
}

// E02TouchBT validates Fact 2: touching n cells of an f(x)-BT costs
// Θ(n·f*(n)) — in particular Θ(n·log log n) for f = x^α and
// Θ(n·log* n) for f = log x, far below the HMM's Θ(n·f(n)).
func E02TouchBT(p sweep.Params) *Table {
	sizes := []int64{1 << 10, 1 << 13, 1 << 16, 1 << 19}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:      "E02",
		Title:   "Touching with block transfer (Fact 2)",
		Claim:   "touching n cells of an f(x)-BT takes Θ(n·f*(n))",
		Columns: []string{"f", "n", "measured", "n·f*(n)", "ratio", "HMM cost (Fact 1)"},
		Notes: "Shape holds when the ratio column is flat and the measured BT cost " +
			"falls ever further below the Fact 1 column as n grows.",
	}
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, n := range sizes {
			m := bt.New(f, n)
			m.Touch(n)
			pred := theory.TouchBT(f, n)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(n), g(m.Cost()), g(pred), r(m.Cost() / pred),
				g(theory.TouchHMM(f, n))})
		}
	}
	return t
}
