package experiments

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/core/btsim"
	"repro/internal/core/selfsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/obs"
	"repro/internal/progtest"
	"repro/internal/sweep"
	"repro/internal/theory"
	"repro/internal/workload"
)

// E08Brent validates Theorem 10 / Corollary 11: simulating
// D-BSP(v, µ, g) on D-BSP(v′, µv/v′, g) with HMM processor memories
// slows down by Θ(v/v′).
func E08Brent(p sweep.Params) *Table {
	v := 256
	if p.Quick {
		v = 64
	}
	t := &Table{
		ID:    "E08",
		Title: "Self-simulation slowdown (Theorem 10, Brent analogue)",
		Claim: "a T-time full program on D-BSP(v, µ, g) runs in Θ(T·v/v′) on " +
			"D-BSP(v′, µv/v′, g)",
		Columns: []string{"g", "v'", "host cost", "module", "comm", "cost·v'/v", "×prev"},
		Notes: "Shape holds when each halving of v′ roughly doubles the cost " +
			"(×prev ≈ 2) and the normalised column stays within a constant band.",
	}
	g1 := cost.Poly{Alpha: 0.5}
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	prev := 0.0
	for vp := v; vp >= 1; vp /= 2 {
		res, err := selfsim.Simulate(prog, g1, vp, selfOpts(p))
		must(err)
		ratio := "-"
		if prev > 0 {
			ratio = r(res.HostCost / prev)
		}
		t.Rows = append(t.Rows, []string{
			g1.Name(), fmt.Sprint(vp), g(res.HostCost), g(res.ModuleCost), g(res.CommCost),
			g(res.HostCost * float64(vp) / float64(v)), ratio})
		prev = res.HostCost
	}
	return t
}

// E09BTSim validates Theorem 12: the D-BSP -> BT simulation costs
// O(v·(τ + µ·Σ λ_i·log(µv/2^i))) — independent of the access function.
func E09BTSim(p sweep.Params) *Table {
	vs := []int{64, 256, 1024}
	if p.Quick {
		vs = vs[:2]
	}
	t := &Table{
		ID:    "E09",
		Title: "D-BSP -> BT simulation (Theorem 12): f-independence",
		Claim: "the BT simulation time does not depend on f(x): block transfer " +
			"hides the access costs almost completely",
		Columns: []string{"v", "f", "sim cost", "cost/Thm12", "vs log x"},
		Notes: "For each v, costs across the three access functions must agree " +
			"within a small constant (the 'vs log x' column), and the Thm12 " +
			"ratio must stay flat across v.",
	}
	funcs := []cost.Func{cost.Log{}, cost.Poly{Alpha: 0.3}, cost.Poly{Alpha: 0.5}}
	for _, v := range vs {
		prog := progtest.Rotate(v, progtest.Descending(v)...)
		flat, err := dbsp.Run(prog, cost.Const{C: 1})
		must(err)
		pred := theory.BTSimulation(v, prog.Mu(), float64(flat.TotalTau()), prog.Lambda(true))
		var logCost float64
		for _, f := range funcs {
			res, err := btsim.Simulate(prog, f, btOpts(p))
			must(err)
			if f.Name() == "log x" {
				logCost = res.HostCost
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(v), f.Name(), g(res.HostCost), r(res.HostCost / pred),
				r(res.HostCost / logCost)})
		}
	}
	return t
}

// E10BTMatMul validates the Section 5.3 matrix-multiplication claim:
// the simulation of the Proposition 7 algorithm on f(x)-BT is the
// optimal O(n^(3/2)), while the step-by-step baseline pays an extra
// unbounded touching factor.
func E10BTMatMul(p sweep.Params) *Table {
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:    "E10",
		Title: "Matrix multiplication on BT (Section 5.3)",
		Claim: "the simulated n-MM is optimal O(n^{3/2}); a step-by-step " +
			"simulation is Ω(n^{3/2}·f*(n)) or worse",
		Columns: []string{"f", "n", "scheduled", "sched/n^1.5", "naive", "naive/scheduled"},
		Notes: "Shape holds when sched/n^1.5 stabilises for large n (small sizes " +
			"carry the delivery machinery's fixed footprints) and the naive " +
			"column pays the full-machine touching cost on every superstep.",
	}
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, n := range sizes {
			side := 1 << uint(dbsp.Log2(n)/2)
			prog := algos.MatMul(n, workload.Matrix(p.Seed+13, side, 4), workload.Matrix(p.Seed+14, side, 4))
			sched, err := btsim.Simulate(prog, f, btOpts(p))
			must(err)
			naive, err := btsim.SimulateNaive(prog, f)
			must(err)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(n), g(sched.HostCost),
				r(sched.HostCost / theory.MatMulBT(n)),
				g(naive.HostCost), r(naive.HostCost / sched.HostCost)})
		}
	}
	return t
}

// E11BTDFTChoice validates the Section 5.3 DFT discussion: on the BT
// the two Proposition 8 schedules cost Θ(n·log² n) (butterfly) versus
// Θ(n·log n·log log n) (recursive), even though both cost the same
// O(n^α) on D-BSP(n, O(1), x^α) — so g = log x, which ranks them as
// O(log² n) vs O(log n·log log n), is the effective bandwidth function
// for targeting BT machines.
func E11BTDFTChoice(p sweep.Params) *Table {
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:    "E11",
		Title: "DFT schedule choice on BT (Section 5.3)",
		Claim: "asymptotically the recursive schedule beats the butterfly on " +
			"f(x)-BT (n·log n·log log n vs n·log² n); g = x^α does not " +
			"distinguish them but g = log x does",
		Columns: []string{"n", "T bf (x^.5)", "T rec (x^.5)", "T bf (log)", "T rec (log)",
			"BT bf", "BT rec", "BT bf/rec", "pred bf/rec"},
		Notes: "Reproduction finding: the asymptotic ordering (pred bf/rec = " +
			"log²n / (C·log n·log log n)) favours the recursive schedule only " +
			"beyond n ≈ 2^50 once our schedule constants (C ≈ 6: three " +
			"transposes per recursion level, two sub-recursions) are included; " +
			"at feasible sizes the butterfly's smaller constants win on every " +
			"column, and the measured BT bf/rec tracks the prediction's " +
			"magnitude. The paper's claim is asymptotic and our measurements " +
			"are consistent with it — the crossover simply lies far outside " +
			"laptop scales.",
	}
	f := cost.Poly{Alpha: 0.5}
	for _, n := range sizes {
		input := workload.KeyFunc(p.Seed+41, n, 1<<20)
		bf := algos.DFTButterfly(n, input)
		rec := algos.DFTRecursive(n, input)
		nbfA, _ := dbsp.Run(bf, f)
		nrecA, _ := dbsp.Run(rec, f)
		nbfL, _ := dbsp.Run(bf, cost.Log{})
		nrecL, _ := dbsp.Run(rec, cost.Log{})
		sbf, err := btsim.Simulate(bf, f, btOpts(p))
		must(err)
		srec, err := btsim.Simulate(rec, f, btOpts(p))
		must(err)
		pred := theory.DFTButterflyBT(n) / (6 * theory.DFTRecursiveBT(n))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), g(nbfA.Cost), g(nrecA.Cost), g(nbfL.Cost), g(nrecL.Cost),
			g(sbf.HostCost), g(srec.HostCost), r(sbf.HostCost / srec.HostCost), r(pred)})
	}
	return t
}

// E15Compute validates the Section 5.2.1 COMPUTE bound: simulating
// compute-only supersteps costs O(µ·n·c*(n)) beyond the raw work.
func E15Compute(p sweep.Params) *Table {
	vs := []int{64, 256, 1024}
	if p.Quick {
		vs = vs[:2]
	}
	t := &Table{
		ID:      "E15",
		Title:   "COMPUTE chunk recursion overhead (Section 5.2.1)",
		Claim:   "local computation is simulated with overhead TM(n) = O(µ·n·c*(n))",
		Columns: []string{"f", "v", "sim cost", "compute phase", "steps·µ·v·c*(v)", "ratio"},
		Notes: "The compute phase is the measured bt.cost.compute counter (the " +
			"Figure 6 recursion alone, excluding pack/unpack and delivery); " +
			"shape holds when its ratio to TM(n) is flat across v for each f.",
	}
	steps := 6
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, v := range vs {
			labels := make([]int, steps)
			prog := progtest.ComputeOnly(v, 4, labels...)
			// A private registry per run: the table compares the measured
			// COMPUTE phase counter against the bound, not a re-derived
			// estimate.
			reg := obs.NewRegistry()
			res, err := btsim.Simulate(prog, f, &btsim.Options{Obs: obs.New(reg, nil)})
			must(err)
			compute := reg.FloatCounter("bt.cost.compute").Value()
			pred := float64(steps+1) * theory.ComputeOverhead(f, int64(prog.Mu()), int64(v))
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(v), g(res.HostCost), g(compute), g(pred), r(compute / pred)})
		}
	}
	return t
}

// E17RouteDelivery is the Section 6 extension/ablation: delivering
// declared transposes by riffle routing (rational permutations) instead
// of sorting, which the paper notes turns the recursive DFT simulation
// into the optimal O(n·log n).
func E17RouteDelivery(p sweep.Params) *Table {
	sizes := []int{64, 256, 1024}
	if p.Quick {
		sizes = sizes[:2]
	}
	t := &Table{
		ID:    "E17",
		Title: "Transpose routing vs sorting delivery (Section 6 remark)",
		Claim: "simulating the recursive DFT's transposes by the rational-" +
			"permutation algorithm instead of sorting makes the simulation " +
			"O(n·log n), optimal on f(x)-BT",
		Columns: []string{"f", "n", "routed", "sorted", "sorted/routed", "routed/(n·log n)"},
		Notes: "Shape holds when routing wins (ratio > 1) and the routed cost " +
			"divided by n·log n stays flat across n.",
	}
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, n := range sizes {
			prog := algos.DFTRecursive(n, workload.KeyFunc(p.Seed+62, n, 1<<20))
			routed, err := btsim.Simulate(prog, f, btOpts(p))
			must(err)
			sorted, err := btsim.Simulate(prog, f, &btsim.Options{DisableRouteDelivery: true, Obs: p.Obs})
			must(err)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(n), g(routed.HostCost), g(sorted.HostCost),
				r(sorted.HostCost / routed.HostCost),
				r(routed.HostCost / theory.DFTOptimalBT(n))})
		}
	}
	return t
}

// E18DirectDelivery is the constant-threshold ablation: word-level
// delivery for tiny clusters versus forcing every cluster through the
// staging machinery, whose fixed footprint dwarfs small clusters.
func E18DirectDelivery(p sweep.Params) *Table {
	vs := []int{64, 256, 1024}
	if p.Quick {
		vs = vs[:2]
	}
	t := &Table{
		ID:    "E18",
		Title: "Direct-delivery threshold ablation",
		Claim: "delivering clusters of <= 8 blocks word-at-a-time at the top of " +
			"memory is asymptotically free and removes a fixed staging " +
			"footprint that dominates fine supersteps",
		Columns: []string{"f", "v", "threshold 8", "disabled", "disabled/thr8"},
		Notes: "The gain concentrates on fine-superstep-heavy programs; the " +
			"threshold is a constant, so Theorem 12's bound is unaffected.",
	}
	f := cost.Poly{Alpha: 0.5}
	for _, v := range vs {
		prog := progtest.Rotate(v, progtest.Fine(v, 12)...)
		def, err := btsim.Simulate(prog, f, btOpts(p))
		must(err)
		off, err := btsim.Simulate(prog, f, &btsim.Options{DirectDeliveryMaxBlocks: -1, Obs: p.Obs})
		must(err)
		t.Rows = append(t.Rows, []string{
			f.Name(), fmt.Sprint(v), g(def.HostCost), g(off.HostCost),
			r(off.HostCost / def.HostCost)})
	}
	return t
}
