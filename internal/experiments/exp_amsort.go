package experiments

import (
	"fmt"

	"repro/internal/amsort"
	"repro/internal/bt"
	"repro/internal/cost"
	"repro/internal/sweep"
	"repro/internal/theory"
	"repro/internal/workload"
)

// E16AMSort validates the BT sorting substrate (the Approx-Median-Sort
// stand-in): sorting N record words costs O(N·log N·f*(N)) with
// O(f(N)) extra buffer space — the engine behind the Theorem 12
// delivery phase.
func E16AMSort(p sweep.Params) *Table {
	counts := []int64{1 << 10, 1 << 13, 1 << 16}
	if p.Quick {
		counts = counts[:2]
	}
	t := &Table{
		ID:    "E16",
		Title: "BT sorting substrate (Approx-Median-Sort stand-in)",
		Claim: "sorting m records on f(x)-BT in O(m·log m·f*(m)) time and " +
			"o(m) extra buffer space",
		Columns: []string{"f", "records", "measured", "N·logN·f*(N)", "ratio", "cold buf words"},
		Notes: "Shape holds when the ratio is flat across m for each f; the " +
			"buffer column shows the workspace stays sublinear.",
	}
	const rec = 2
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, count := range counts {
			pl := amsort.NewPlan(f, rec, count)
			hot := int64(0)
			cold := pl.HotWords()
			data := cold + pl.ColdWords()
			scratch := data + count*rec
			m := bt.New(f, scratch+count*rec+8)
			keys := workload.Keys(p.Seed+51, int(count), 10*count)
			for i := int64(0); i < count; i++ {
				m.Poke(data+i*rec, keys[i])
				m.Poke(data+i*rec+1, i)
			}
			amsort.Sort(m, pl, data, scratch, hot, cold)
			if !amsort.IsSorted(m, data, count, rec) {
				panic("experiments: E16 output not sorted")
			}
			pred := theory.AMSort(f, count*rec)
			t.Rows = append(t.Rows, []string{
				f.Name(), fmt.Sprint(count), g(m.Cost()), g(pred), r(m.Cost() / pred),
				fmt.Sprint(pl.ColdWords())})
		}
	}
	return t
}
