package experiments

import (
	"strings"
	"testing"
)

// The smoke run: every experiment must produce a well-formed table in
// quick mode, with consistent row widths and non-empty measurements.
func TestAllQuick(t *testing.T) {
	tables := All(true)
	if len(tables) < 14 {
		t.Fatalf("only %d experiments", len(tables))
	}
	seen := map[string]bool{}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || tab.Claim == "" {
			t.Errorf("%s: incomplete metadata", tab.ID)
		}
		if seen[tab.ID] {
			t.Errorf("duplicate experiment id %s", tab.ID)
		}
		seen[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s row %d: %d cells for %d columns", tab.ID, i, len(row), len(tab.Columns))
			}
			for j, cell := range row {
				if strings.TrimSpace(cell) == "" {
					t.Errorf("%s row %d col %d empty", tab.ID, i, j)
				}
			}
		}
		out := tab.Render()
		if !strings.Contains(out, tab.ID) || !strings.Contains(out, "|") {
			t.Errorf("%s: render incomplete", tab.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, id := range []string{"E01", "E05", "E09", "E17"} {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup accepted unknown id")
	}
}
