package cost

// Chunk returns c(n) for the COMPUTE recursion of Section 5.2.1: the
// greatest power of two with c(n) <= min(f(µ·n)/µ, n/2), where µ is the
// context size in words. The recursive local-computation schedule brings
// processor contexts to the top of BT memory in chunks of c(n) contexts,
// which balances the block-transfer setup cost f(µn) against chunk size.
// Chunk returns at least 1; n must be >= 2 for a proper sub-chunk.
func Chunk(f Func, mu, n int64) int64 {
	if n < 2 {
		return 1
	}
	bound := f.Cost(mu*n) / float64(mu)
	if nh := float64(n / 2); nh < bound {
		bound = nh
	}
	c := int64(1)
	for c*2 <= int64(bound) {
		c *= 2
	}
	return c
}

// CStar returns c*(n) = min{k >= 1 : c^(k)(n) <= 1}: the recursion depth
// of COMPUTE, which drives its overhead bound TM(n) = O(µ·n·c*(n))
// (Section 5.2.1). For f = log x this is O(log*(µn)); for f = x^α it is
// O(log log(µn)).
func CStar(f Func, mu, n int64) int {
	if n <= 1 {
		return 1
	}
	x := n
	for k := 1; ; k++ {
		x = Chunk(f, mu, x)
		if x <= 1 || k > 256 {
			return k
		}
	}
}

// LogStar returns log*(n) base 2: the number of times log2 must be
// iterated before the value drops to <= 1. Used by the theory package
// for Fact 2 predictions with f = log x.
func LogStar(n int64) int {
	return FStar(Log{}, n)
}
