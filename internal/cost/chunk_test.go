package cost

import (
	"testing"
	"testing/quick"
)

func TestChunkIsPowerOfTwoAndBounded(t *testing.T) {
	funcs := []Func{Poly{Alpha: 0.5}, Poly{Alpha: 0.3}, Log{}}
	for _, f := range funcs {
		for _, mu := range []int64{1, 4, 16} {
			for n := int64(2); n <= 1<<16; n *= 2 {
				c := Chunk(f, mu, n)
				if c < 1 {
					t.Fatalf("%s mu=%d n=%d: Chunk=%d < 1", f.Name(), mu, n, c)
				}
				if c&(c-1) != 0 {
					t.Errorf("%s mu=%d n=%d: Chunk=%d not a power of two", f.Name(), mu, n, c)
				}
				if c > n/2 && n >= 2 && c != 1 {
					t.Errorf("%s mu=%d n=%d: Chunk=%d > n/2", f.Name(), mu, n, c)
				}
				if float64(c) > f.Cost(mu*n)/float64(mu) && c != 1 {
					t.Errorf("%s mu=%d n=%d: Chunk=%d > f(mu n)/mu = %g",
						f.Name(), mu, n, c, f.Cost(mu*n)/float64(mu))
				}
			}
		}
	}
}

func TestChunkBaseCase(t *testing.T) {
	if got := Chunk(Log{}, 1, 1); got != 1 {
		t.Errorf("Chunk(n=1) = %d, want 1", got)
	}
	if got := Chunk(Log{}, 1, 0); got != 1 {
		t.Errorf("Chunk(n=0) = %d, want 1", got)
	}
}

func TestCStarShapes(t *testing.T) {
	// c*(n) = O(log log µn) for f = x^α: should be tiny even for huge n.
	if got := CStar(Poly{Alpha: 0.5}, 1, 1<<30); got > 12 {
		t.Errorf("CStar(x^0.5, 2^30) = %d, want O(log log n) ~ <=12", got)
	}
	// c*(n) for f = log x should be even smaller (log*-like).
	if got := CStar(Log{}, 1, 1<<30); got > 10 {
		t.Errorf("CStar(log, 2^30) = %d, want log*-ish small", got)
	}
	if got := CStar(Log{}, 1, 1); got != 1 {
		t.Errorf("CStar(n=1) = %d, want 1", got)
	}
}

func TestCStarGrowsSlowlyProperty(t *testing.T) {
	f := Poly{Alpha: 0.5}
	prop := func(raw uint32) bool {
		n := int64(raw%(1<<20)) + 2
		a, b := CStar(f, 1, n), CStar(f, 1, 4*n)
		return b >= 1 && b <= a+3
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLogStar(t *testing.T) {
	if got := LogStar(1 << 16); got < 3 || got > 5 {
		t.Errorf("LogStar(2^16) = %d, want 3..5", got)
	}
	a, b := LogStar(1<<10), LogStar(1<<60)
	if b < a {
		t.Errorf("LogStar not monotone: LogStar(2^10)=%d > LogStar(2^60)=%d", a, b)
	}
	if b > 6 {
		t.Errorf("LogStar(2^60) = %d, want <= 6 (log* grows extremely slowly)", b)
	}
}
