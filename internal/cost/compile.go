package cost

import (
	"math/bits"
	"reflect"
	"sync"
	"sync/atomic"
)

// denseWords caps the dense prefix of a compiled access function: every
// address below the cap gets a precomputed f(x) entry (8 MiB of float64
// at the cap, shared across machines via the compile cache).
const denseWords = int64(1) << 20

// Compiled is a lookup-table form of an access function. It implements
// Func and returns bit-identical float64 values to the function it was
// compiled from: dense-prefix entries are the stored results of the
// direct formula, power-of-two buckets are only used where the function
// is provably constant on the whole bucket (probed under the Func
// nondecreasing contract), and everything else falls back to the direct
// formula. Charging through a Compiled therefore changes no measured
// model cost — it is pure mechanism.
type Compiled struct {
	f        Func
	dense    []float64
	bucket   [66]float64 // bucket[k] = f on [2^(k-1), 2^k) when bucketOK[k]
	bucketOK [66]bool
}

// Compile returns a compiled form of f covering addresses [0, maxAddr].
// Results are cached per (f, rounded size) for comparable Func values,
// so machines recreated in a loop (benchmarks, sweeps) share one table.
// Compiling an already-compiled function recompiles its base.
func Compile(f Func, maxAddr int64) *Compiled {
	if c, ok := f.(*Compiled); ok {
		if int64(len(c.dense)) > maxAddr || int64(len(c.dense)) == denseWords {
			return c
		}
		f = c.f
	}
	size := maxAddr + 1
	if size < 1 {
		size = 1
	}
	// Round the dense size up to a power of two so nearby machine sizes
	// share one cache entry.
	rsize := int64(1)
	if size > 1 {
		rsize = int64(1) << uint(bits.Len64(uint64(size-1)))
	}
	if rsize > denseWords || rsize <= 0 {
		rsize = denseWords
	}
	if !reflect.TypeOf(f).Comparable() {
		return compile(f, rsize)
	}
	key := CacheKey{Func: f, Size: rsize}
	if c, ok := compileCache.Load(key); ok {
		return c
	}
	return compileCache.LoadOrStore(key, compile(f, rsize))
}

// CacheKey identifies one compiled table: the comparable base access
// function and the rounded dense-prefix length. Two machines whose
// sizes round to the same power of two share one entry.
type CacheKey struct {
	// Func is the base access function (comparable; non-comparable
	// functions bypass the cache entirely).
	Func Func
	// Size is the rounded dense-prefix length in words.
	Size int64
}

// CacheStats is one monotone snapshot of a table cache's behaviour:
// Hits and Misses count Compile's cache consultations, Entries the
// distinct tables stored. A service exports these as gauges so a
// /metrics scrape shows whether repeated submissions reuse tables.
type CacheStats struct {
	Hits, Misses, Entries int64
}

// TableCache is the store Compile consults before building a table.
// Implementations must be safe for concurrent use and must return
// bit-identical tables for equal keys — the cache is pure mechanism,
// exactly like the tables it holds. The package-level cache behind
// Compile satisfies it; a service layer depends on this interface (via
// CompileCache) rather than on the concrete map.
type TableCache interface {
	// Load returns the cached table for key, if present.
	Load(key CacheKey) (*Compiled, bool)
	// LoadOrStore stores c under key unless an entry already exists,
	// and returns the table the cache now holds.
	LoadOrStore(key CacheKey, c *Compiled) *Compiled
	// Stats returns the cache's monotone hit/miss/entry counters.
	Stats() CacheStats
}

// mapCache is the default TableCache: a sync.Map plus atomic counters.
type mapCache struct {
	m       sync.Map // CacheKey -> *Compiled
	hits    atomic.Int64
	misses  atomic.Int64
	entries atomic.Int64
}

func (c *mapCache) Load(key CacheKey) (*Compiled, bool) {
	if v, ok := c.m.Load(key); ok {
		c.hits.Add(1)
		return v.(*Compiled), true
	}
	c.misses.Add(1)
	return nil, false
}

func (c *mapCache) LoadOrStore(key CacheKey, t *Compiled) *Compiled {
	v, loaded := c.m.LoadOrStore(key, t)
	if !loaded {
		c.entries.Add(1)
	}
	return v.(*Compiled)
}

func (c *mapCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.entries.Load()}
}

var compileCache = &mapCache{}

// CompileCache returns the process-wide table cache behind Compile.
// The cache is shared and append-only: callers may read Stats at any
// time, and pre-warm tables with LoadOrStore, but there is no eviction
// — a table, once built, stays bit-identical for the process lifetime.
func CompileCache() TableCache { return compileCache }

func compile(f Func, denseLen int64) *Compiled {
	c := &Compiled{f: f, dense: make([]float64, denseLen)}
	for x := range c.dense {
		c.dense[x] = f.Cost(int64(x))
	}
	// Bucket k covers addresses of bit-length k: [2^(k-1), 2^k). The
	// Func contract says f is nondecreasing, so f(2^(k-1)) == f(2^k - 1)
	// proves f constant on the whole bucket; only then is the bucket
	// constant used. Bit-lengths above 63 exceed int64 addresses.
	c.bucket[0], c.bucketOK[0] = f.Cost(0), true
	for k := 1; k <= 63; k++ {
		lo := int64(1) << uint(k-1)
		hi := lo<<1 - 1 // 2^k - 1; for k == 63 this is MaxInt64
		flo, fhi := f.Cost(lo), f.Cost(hi)
		if flo == fhi {
			c.bucket[k], c.bucketOK[k] = flo, true
		}
	}
	return c
}

// Base returns the access function this table was compiled from.
func (c *Compiled) Base() Func { return c.f }

// Dense returns the dense-prefix table: Dense()[x] == f(x) for every
// x < len(Dense()). Callers must treat it as read-only; machines cache
// it so their per-word charge path is a single slice load.
func (c *Compiled) Dense() []float64 { return c.dense }

// Cost returns f(x), bit-identical to the base function.
func (c *Compiled) Cost(x int64) float64 {
	if x >= 0 && x < int64(len(c.dense)) {
		return c.dense[x]
	}
	k := bits.Len64(uint64(x))
	if c.bucketOK[k] {
		return c.bucket[k]
	}
	return c.f.Cost(x)
}

// Name returns the base function's name.
func (c *Compiled) Name() string { return c.f.Name() }

// AddRange folds Σ f(x) over x in [lo, hi) into acc with one addition
// per address in ascending order — the exact float64 operation chain of
// `for x := lo; x < hi; x++ { acc += f.Cost(x) }`, so bulk charges
// accumulate bit-identically to per-word charging. lo must be >= 0.
func (c *Compiled) AddRange(acc float64, lo, hi int64) float64 {
	x := lo
	dh := hi
	if dh > int64(len(c.dense)) {
		dh = int64(len(c.dense))
	}
	for d := c.dense; x < dh; x++ {
		acc += d[x]
	}
	for ; x < hi; x++ {
		acc += c.Cost(x)
	}
	return acc
}

// CostRange returns Σ f(x) over x in [lo, hi), accumulated left to
// right (AddRange with a zero accumulator).
func (c *Compiled) CostRange(lo, hi int64) float64 {
	return c.AddRange(0, lo, hi)
}
