package cost

import "testing"

func TestParse(t *testing.T) {
	good := map[string]string{
		"log":      "log x",
		"x^0.5":    "x^0.50",
		"x^0.25":   "x^0.25",
		"const:3":  "const 3",
		"linear:8": "x/8",
	}
	for spec, name := range good {
		f, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if f.Name() != name {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, f.Name(), name)
		}
	}
	for _, spec := range []string{"", "x^1.5", "x^0", "x^abc", "const:0", "const:x", "linear:-1", "linear:z", "cubic"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}
