package cost

import "testing"

// The compile benchmarks quantify the charge fast path in isolation:
// direct formula evaluation (math.Pow / math.Log2 per call) against the
// compiled dense-table lookup and the bulk range sum.

func benchFuncs() []Func {
	return []Func{Poly{Alpha: 0.5}, Log{}, Linear{Scale: 64}}
}

func BenchmarkCostDirect(b *testing.B) {
	const n = 1 << 16
	for _, f := range benchFuncs() {
		b.Run(f.Name(), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				for x := int64(0); x < n; x++ {
					sum += f.Cost(x)
				}
			}
			sink = sum
		})
	}
}

func BenchmarkCostCompiled(b *testing.B) {
	const n = 1 << 16
	for _, f := range benchFuncs() {
		c := Compile(f, n-1)
		b.Run(f.Name(), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				for x := int64(0); x < n; x++ {
					sum += c.Cost(x)
				}
			}
			sink = sum
		})
	}
}

func BenchmarkCostRange(b *testing.B) {
	const n = 1 << 16
	for _, f := range benchFuncs() {
		c := Compile(f, n-1)
		b.Run(f.Name(), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				sum = c.CostRange(0, n)
			}
			sink = sum
		})
	}
}

// sink defeats dead-code elimination in the benchmarks above.
var sink float64
