package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolyCost(t *testing.T) {
	p := Poly{Alpha: 0.5}
	cases := []struct {
		x    int64
		want float64
	}{
		{0, 1}, {1, 1}, {4, 2}, {16, 4}, {100, 10}, {10000, 100},
	}
	for _, c := range cases {
		if got := p.Cost(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Poly{0.5}.Cost(%d) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestPolyCostSmallAlpha(t *testing.T) {
	p := Poly{Alpha: 0.25}
	if got := p.Cost(1 << 20); math.Abs(got-32) > 1e-6 {
		t.Errorf("Poly{0.25}.Cost(2^20) = %g, want 32", got)
	}
}

func TestLogCost(t *testing.T) {
	f := Log{}
	cases := []struct {
		x    int64
		want float64
	}{
		{0, 1}, {1, 1}, {2, 1}, {4, 2}, {8, 3}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := f.Cost(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Log.Cost(%d) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestConstCost(t *testing.T) {
	if got := (Const{C: 5}).Cost(1 << 40); got != 5 {
		t.Errorf("Const{5}.Cost = %g, want 5", got)
	}
	if got := (Const{C: 0}).Cost(7); got != 1 {
		t.Errorf("Const{0}.Cost = %g, want clamped 1", got)
	}
}

func TestLinearCost(t *testing.T) {
	l := Linear{Scale: 4}
	if got := l.Cost(100); got != 25 {
		t.Errorf("Linear{4}.Cost(100) = %g, want 25", got)
	}
	if got := l.Cost(2); got != 1 {
		t.Errorf("Linear{4}.Cost(2) = %g, want 1 (clamped)", got)
	}
	if got := (Linear{}).Cost(9); got != 9 {
		t.Errorf("Linear{0}.Cost(9) = %g, want 9 (scale defaults to 1)", got)
	}
}

func TestTableCost(t *testing.T) {
	tab := Table{
		Bounds: []int64{32, 1024, 1 << 20},
		Costs:  []float64{1, 4, 30, 200},
		Label:  "toy-hierarchy",
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := []struct {
		x    int64
		want float64
	}{
		{0, 1}, {31, 1}, {32, 4}, {1023, 4}, {1024, 30}, {1 << 20, 200}, {1 << 40, 200},
	}
	for _, c := range cases {
		if got := tab.Cost(c.x); got != c.want {
			t.Errorf("Table.Cost(%d) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestTableValidateRejects(t *testing.T) {
	bad := []Table{
		{Bounds: []int64{10}, Costs: []float64{1}},             // wrong len
		{Bounds: []int64{10, 10}, Costs: []float64{1, 2, 3}},   // non-increasing bounds
		{Bounds: []int64{10, 20}, Costs: []float64{1, 5, 2}},   // decreasing costs
		{Bounds: []int64{10, 20}, Costs: []float64{0.5, 1, 2}}, // cost < 1
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid table", i)
		}
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		f    Func
		want string
	}{
		{Poly{Alpha: 0.5}, "x^0.50"},
		{Log{}, "log x"},
		{Const{C: 1}, "const 1"},
		{Linear{Scale: 8}, "x/8"},
		{Table{Label: "l3"}, "l3"},
		{Table{}, "table"},
	}
	for _, c := range cases {
		if got := c.f.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// Property: every shipped access function is nondecreasing and >= 1.
func TestFuncContractProperty(t *testing.T) {
	funcs := []Func{
		Poly{Alpha: 0.25}, Poly{Alpha: 0.5}, Poly{Alpha: 0.75},
		Log{}, Const{C: 3}, Linear{Scale: 16},
	}
	prop := func(raw int64) bool {
		x := raw % (1 << 30)
		if x < 0 {
			x = -x
		}
		for _, f := range funcs {
			if f.Cost(x) < 1 {
				return false
			}
			if f.Cost(x+1) < f.Cost(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
