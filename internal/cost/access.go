// Package cost defines memory access cost functions for hierarchical
// memory models and the analytical machinery the paper builds on them:
// (2,c)-uniformity (Section 2), iterated functions f* (Fact 2), and the
// chunk-size recursion c(n)/c*(n) used by the BT COMPUTE schedule
// (Section 5.2.1).
//
// An access function f maps a 0-based memory address x to the time
// charged for touching that cell. All functions in this package are
// nondecreasing and satisfy f(x) >= 1 so that "flat" RAM cost is the
// f = Const(1) special case and sums of access costs dominate operation
// counts, matching the convention f(x+1) in the paper's HMM definition.
package cost

import (
	"fmt"
	"math"
)

// Func is a memory access cost function f(x): the time to access memory
// address x on an f(x)-HMM or f(x)-BT machine. Implementations must be
// nondecreasing in x and bounded below by 1.
type Func interface {
	// Cost returns f(x) for 0-based address x. Cost must be
	// nondecreasing and >= 1 for all x >= 0.
	Cost(x int64) float64
	// Name returns a short human-readable identifier such as "x^0.50"
	// or "log x", used in experiment tables.
	Name() string
}

// Poly is the polynomial access function f(x) = max(1, x^Alpha), the
// most widely studied HMM/BT access function (paper Section 2). For
// 0 < Alpha < 1 it is (2, 2^Alpha)-uniform.
type Poly struct {
	Alpha float64
}

// Cost returns max(1, x^Alpha).
func (p Poly) Cost(x int64) float64 {
	if x <= 1 {
		return 1
	}
	return math.Max(1, math.Pow(float64(x), p.Alpha))
}

// Name returns "x^<alpha>".
func (p Poly) Name() string { return fmt.Sprintf("x^%.2f", p.Alpha) }

// Log is the logarithmic access function f(x) = max(1, log2(x)). It is
// (2, 2)-uniform (indeed f(2x) <= f(x) + 1 <= 2 f(x) for x >= 2).
type Log struct{}

// Cost returns max(1, log2(x)).
func (Log) Cost(x int64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(float64(x))
}

// Name returns "log x".
func (Log) Name() string { return "log x" }

// Const is the flat access function f(x) = C (C >= 1), modelling an
// ideal RAM when C = 1. It is (2, 1)-uniform.
type Const struct {
	C float64
}

// Cost returns the constant C (at least 1).
func (c Const) Cost(int64) float64 { return math.Max(1, c.C) }

// Name returns "const <C>".
func (c Const) Name() string { return fmt.Sprintf("const %.0f", math.Max(1, c.C)) }

// Linear is the access function f(x) = max(1, x/Scale). It is NOT
// (2,c)-uniform-friendly in the useful range (it is (2,2)-uniform, the
// extreme case) and serves as a stress test for the smoothing machinery.
type Linear struct {
	Scale float64
}

// Cost returns max(1, x/Scale).
func (l Linear) Cost(x int64) float64 {
	s := l.Scale
	if s <= 0 {
		s = 1
	}
	return math.Max(1, float64(x)/s)
}

// Name returns "x/<scale>".
func (l Linear) Name() string { return fmt.Sprintf("x/%.0f", math.Max(1, l.Scale)) }

// Table is an access function defined by explicit level boundaries, the
// natural encoding of a concrete machine hierarchy (L1/L2/L3/DRAM...).
// Address x is charged Costs[i] for the smallest i with x < Bounds[i];
// addresses beyond the last bound are charged the last cost. Costs must
// be nondecreasing and >= 1 for the Func contract to hold.
type Table struct {
	Bounds []int64   // strictly increasing level capacities
	Costs  []float64 // per-level access cost, len == len(Bounds)+1
	Label  string
}

// Cost returns the cost of the level containing x.
func (t Table) Cost(x int64) float64 {
	for i, b := range t.Bounds {
		if x < b {
			return t.Costs[i]
		}
	}
	return t.Costs[len(t.Costs)-1]
}

// Name returns the table's label.
func (t Table) Name() string {
	if t.Label == "" {
		return "table"
	}
	return t.Label
}

// Validate checks the Table invariants: len(Costs) == len(Bounds)+1,
// strictly increasing bounds, nondecreasing costs >= 1.
func (t Table) Validate() error {
	if len(t.Costs) != len(t.Bounds)+1 {
		return fmt.Errorf("cost: table %q: len(Costs)=%d, want len(Bounds)+1=%d",
			t.Name(), len(t.Costs), len(t.Bounds)+1)
	}
	for i := 1; i < len(t.Bounds); i++ {
		if t.Bounds[i] <= t.Bounds[i-1] {
			return fmt.Errorf("cost: table %q: bounds not strictly increasing at %d", t.Name(), i)
		}
	}
	for i, c := range t.Costs {
		if c < 1 {
			return fmt.Errorf("cost: table %q: cost %g < 1 at level %d", t.Name(), c, i)
		}
		if i > 0 && c < t.Costs[i-1] {
			return fmt.Errorf("cost: table %q: costs decrease at level %d", t.Name(), i)
		}
	}
	return nil
}
