package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCheckUniformPoly(t *testing.T) {
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		rep := CheckUniform(Poly{Alpha: alpha}, 1<<22)
		want := math.Pow(2, alpha)
		if !rep.Ok(want + 1e-9) {
			t.Errorf("Poly{%g}: report %+v not (2,%g)-uniform", alpha, rep, want)
		}
		if rep.C < want-0.05 {
			t.Errorf("Poly{%g}: observed c=%g suspiciously below 2^alpha=%g", alpha, rep.C, want)
		}
	}
}

func TestCheckUniformLog(t *testing.T) {
	rep := CheckUniform(Log{}, 1<<22)
	if !rep.Ok(2) {
		t.Errorf("Log: report %+v not (2,2)-uniform", rep)
	}
}

func TestCheckUniformConst(t *testing.T) {
	rep := CheckUniform(Const{C: 7}, 1<<20)
	if !rep.Ok(1.0000001) {
		t.Errorf("Const: report %+v should be (2,1)-uniform", rep)
	}
}

func TestCheckUniformLinearIsExtreme(t *testing.T) {
	rep := CheckUniform(Linear{Scale: 1}, 1<<20)
	if !rep.Ok(2) {
		t.Errorf("Linear: report %+v should be (2,2)-uniform", rep)
	}
	if rep.C < 1.9 {
		t.Errorf("Linear: doubling constant %g, want ~2 (the extreme case)", rep.C)
	}
}

type decreasing struct{}

func (decreasing) Cost(x int64) float64 { return math.Max(1, 100-float64(x)) }
func (decreasing) Name() string         { return "decreasing" }

func TestCheckUniformRejectsDecreasing(t *testing.T) {
	rep := CheckUniform(decreasing{}, 1000)
	if rep.Nondecreasing {
		t.Error("CheckUniform failed to detect a decreasing function")
	}
}

type belowOne struct{}

func (belowOne) Cost(x int64) float64 { return 0.5 }
func (belowOne) Name() string         { return "belowOne" }

func TestCheckUniformRejectsBelowOne(t *testing.T) {
	rep := CheckUniform(belowOne{}, 1000)
	if rep.AtLeastOne {
		t.Error("CheckUniform failed to detect f < 1")
	}
}

func TestMustUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustUniform did not panic on a non-uniform function")
		}
	}()
	MustUniform(decreasing{}, 2, 1000)
}

func TestMustUniformAccepts(t *testing.T) {
	MustUniform(Poly{Alpha: 0.5}, 1.5, 1<<20) // 2^0.5 ~ 1.41 < 1.5
}

// Fact 1: TouchHMM(f, n) = Θ(n f(n)) for (2,c)-uniform f. Verify that the
// ratio stays within constant factors across a sweep.
func TestTouchHMMFact1Shape(t *testing.T) {
	for _, f := range []Func{Poly{Alpha: 0.5}, Log{}} {
		var lo, hi float64 = math.Inf(1), 0
		for n := int64(64); n <= 1<<16; n *= 4 {
			ratio := TouchHMM(f, n) / (float64(n) * f.Cost(n))
			if ratio < lo {
				lo = ratio
			}
			if ratio > hi {
				hi = ratio
			}
		}
		if lo <= 0 || hi/lo > 4 {
			t.Errorf("%s: Fact 1 ratio drifts: lo=%g hi=%g", f.Name(), lo, hi)
		}
	}
}

func TestTouchHMMApproxMatchesExact(t *testing.T) {
	for _, f := range []Func{Poly{Alpha: 0.5}, Poly{Alpha: 0.25}, Log{}} {
		for _, n := range []int64{100, 4096, 10000, 1 << 18} {
			exact := TouchHMM(f, n)
			approx := TouchHMMApprox(f, n)
			if rel := math.Abs(exact-approx) / exact; rel > 0.25 {
				t.Errorf("%s n=%d: approx %g vs exact %g (rel err %g)", f.Name(), n, approx, exact, rel)
			}
		}
	}
}

func TestFStarLog(t *testing.T) {
	// log*: for n=2^16, log2 -> 16 -> 4 -> 2 -> 1: 3 iterations to <=1
	// under our max(1, log2 x) with Cost(2)=1.
	got := FStar(Log{}, 1<<16)
	if got < 3 || got > 5 {
		t.Errorf("FStar(log, 2^16) = %d, want small (3..5)", got)
	}
	if FStar(Log{}, 1) != 1 {
		t.Errorf("FStar(log, 1) = %d, want 1", FStar(Log{}, 1))
	}
}

func TestFStarPolyIsLogLog(t *testing.T) {
	// For f=x^0.5, f^(k)(n) = n^(1/2^k), so f*(n) ~ log2 log2 n.
	n := int64(1) << 32
	got := FStar(Poly{Alpha: 0.5}, n)
	want := int(math.Log2(32)) // log2 log2 2^32 = 5
	if got < want-1 || got > want+2 {
		t.Errorf("FStar(x^0.5, 2^32) = %d, want ~%d", got, want)
	}
}

func TestFStarMonotoneProperty(t *testing.T) {
	f := Poly{Alpha: 0.5}
	prop := func(raw uint32) bool {
		n := int64(raw%(1<<24)) + 2
		return FStar(f, n) <= FStar(f, 2*n)+1 && FStar(f, n) >= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
