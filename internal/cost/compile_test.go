package cost

import (
	"math"
	"testing"
)

// compileFuncs is the access-function set the equality tests cover —
// every concrete Func the experiments use.
func compileFuncs() []Func {
	return []Func{
		Poly{Alpha: 0.5},
		Poly{Alpha: 0.25},
		Log{},
		Linear{Scale: 64},
		Const{C: 3},
		Table{Bounds: []int64{64, 4096, 1 << 18}, Costs: []float64{1, 4, 16, 64}, Label: "l4"},
	}
}

// TestCompiledExhaustiveEquality checks Compiled.Cost == Func.Cost,
// bit for bit, over the whole dense prefix [0, 2^20).
func TestCompiledExhaustiveEquality(t *testing.T) {
	for _, f := range compileFuncs() {
		c := Compile(f, denseWords-1)
		for x := int64(0); x < denseWords; x++ {
			if got, want := c.Cost(x), f.Cost(x); got != want {
				t.Fatalf("%s: Compile.Cost(%d) = %v (bits %x), want %v (bits %x)",
					f.Name(), x, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestCompiledBoundaryEquality samples addresses around every power of
// two up to 2^47 — past the dense prefix, where lookups go through the
// bucket constants or the direct-formula fallback.
func TestCompiledBoundaryEquality(t *testing.T) {
	for _, f := range compileFuncs() {
		c := Compile(f, (int64(1)<<47)-1)
		for k := uint(1); k <= 47; k++ {
			p := int64(1) << k
			for _, x := range []int64{p - 2, p - 1, p, p + 1, p + p/3} {
				if x < 0 {
					continue
				}
				if got, want := c.Cost(x), f.Cost(x); got != want {
					t.Fatalf("%s: Compile.Cost(%d) = %v, want %v (near 2^%d)",
						f.Name(), x, got, want, k)
				}
			}
		}
	}
}

// TestCostRangeMatchesLoop checks that the bulk sum is the exact
// float64 fold of the per-address loop, including ranges spanning the
// dense-prefix boundary.
func TestCostRangeMatchesLoop(t *testing.T) {
	ranges := [][2]int64{
		{0, 0}, {0, 1}, {0, 1000}, {77, 12345},
		{denseWords - 100, denseWords + 100}, // spans the dense boundary
		{denseWords + 5, denseWords + 500},
	}
	for _, f := range compileFuncs() {
		c := Compile(f, denseWords+1000)
		for _, r := range ranges {
			var want float64
			for x := r[0]; x < r[1]; x++ {
				want += f.Cost(x)
			}
			if got := c.CostRange(r[0], r[1]); got != want {
				t.Errorf("%s: CostRange(%d, %d) = %v (bits %x), want %v (bits %x)",
					f.Name(), r[0], r[1], got, math.Float64bits(got), want, math.Float64bits(want))
			}
			// AddRange must fold from the accumulator, not sum separately.
			acc := 0.1
			want2 := acc
			for x := r[0]; x < r[1]; x++ {
				want2 += f.Cost(x)
			}
			if got := c.AddRange(acc, r[0], r[1]); got != want2 {
				t.Errorf("%s: AddRange(0.1, %d, %d) = %v, want %v",
					f.Name(), r[0], r[1], got, want2)
			}
		}
	}
}

// TestCompileCache pins the sharing contract: comparable functions with
// pow2-rounded sizes share one table, and recompiling a *Compiled is a
// no-op when it already covers the requested range.
func TestCompileCache(t *testing.T) {
	f := Poly{Alpha: 0.5}
	a := Compile(f, 1000)
	b := Compile(f, 1023) // same pow2-rounded size
	if a != b {
		t.Error("Compile did not share the cache entry for pow2-equal sizes")
	}
	if c := Compile(a, 500); c != a {
		t.Error("recompiling a covering Compiled did not return it unchanged")
	}
	if got := len(a.Dense()); got != 1024 {
		t.Errorf("dense prefix = %d words, want pow2-rounded 1024", got)
	}
	// Non-comparable functions (Table holds slices) must not panic.
	tab := Table{Bounds: []int64{8}, Costs: []float64{1, 2}}
	if c := Compile(tab, 100); c.Cost(9) != 2 {
		t.Error("compiled Table mismatch")
	}
}

// TestCompileCacheInterface pins the TableCache contract the service
// layer depends on: hits and misses count Compile's consultations,
// entries count distinct stored tables, and a direct Load/LoadOrStore
// round trip behaves like the map it wraps.
func TestCompileCacheInterface(t *testing.T) {
	cache := CompileCache()
	if cache == nil {
		t.Fatal("CompileCache returned nil")
	}
	before := cache.Stats()
	f := Poly{Alpha: 0.125} // not used by other tests, so the first Compile misses
	a := Compile(f, 2000)
	mid := cache.Stats()
	if mid.Misses <= before.Misses {
		t.Errorf("first Compile did not count a miss: %+v -> %+v", before, mid)
	}
	if mid.Entries <= before.Entries {
		t.Errorf("first Compile did not store an entry: %+v -> %+v", before, mid)
	}
	b := Compile(f, 2047) // same pow2-rounded size: must hit
	after := cache.Stats()
	if a != b {
		t.Error("second Compile did not return the cached table")
	}
	if after.Hits <= mid.Hits {
		t.Errorf("second Compile did not count a hit: %+v -> %+v", mid, after)
	}
	if after.Entries != mid.Entries {
		t.Errorf("cache hit grew entries: %+v -> %+v", mid, after)
	}

	// The interface surface itself: Load sees what Compile stored, and
	// LoadOrStore keeps the first table.
	key := CacheKey{Func: f, Size: int64(len(a.Dense()))}
	got, ok := cache.Load(key)
	if !ok || got != a {
		t.Errorf("Load(%+v) = (%v, %v), want the compiled table", key, got, ok)
	}
	if kept := cache.LoadOrStore(key, compile(f, 64)); kept != a {
		t.Error("LoadOrStore replaced an existing entry")
	}
	// Stats are monotone.
	final := cache.Stats()
	if final.Hits < after.Hits || final.Misses < after.Misses || final.Entries < after.Entries {
		t.Errorf("stats went backwards: %+v -> %+v", after, final)
	}
}

// TestCompiledName checks the Func facade.
func TestCompiledName(t *testing.T) {
	c := Compile(Log{}, 100)
	if c.Name() != (Log{}).Name() {
		t.Errorf("Name = %q, want %q", c.Name(), (Log{}).Name())
	}
	if c.Base() != (Log{}) {
		t.Error("Base did not return the source function")
	}
}

// TestTouchHMMCompiledRoute pins that the public TouchHMM helper (now
// routed through the compiled table) still equals the direct loop.
func TestTouchHMMCompiledRoute(t *testing.T) {
	for _, f := range compileFuncs() {
		for _, n := range []int64{0, 1, 100, 5000} {
			var want float64
			for x := int64(0); x < n; x++ {
				want += f.Cost(x)
			}
			if got := TouchHMM(f, n); got != want {
				t.Errorf("%s: TouchHMM(%d) = %v, want %v", f.Name(), n, got, want)
			}
		}
	}
}
