package cost

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns a command-line spec into an access function:
//
//	"log"        the logarithmic function log x
//	"x^0.5"      the polynomial x^α (any 0 < α < 1)
//	"const:3"    the flat function with value 3
//	"linear:16"  x/16
func Parse(spec string) (Func, error) {
	switch {
	case spec == "log":
		return Log{}, nil
	case strings.HasPrefix(spec, "x^"):
		a, err := strconv.ParseFloat(spec[2:], 64)
		if err != nil || a <= 0 || a >= 1 {
			return nil, fmt.Errorf("cost: bad exponent in %q (want 0 < α < 1)", spec)
		}
		return Poly{Alpha: a}, nil
	case strings.HasPrefix(spec, "const:"):
		c, err := strconv.ParseFloat(spec[6:], 64)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("cost: bad constant in %q (want >= 1)", spec)
		}
		return Const{C: c}, nil
	case strings.HasPrefix(spec, "linear:"):
		s, err := strconv.ParseFloat(spec[7:], 64)
		if err != nil || s <= 0 {
			return nil, fmt.Errorf("cost: bad scale in %q", spec)
		}
		return Linear{Scale: s}, nil
	default:
		return nil, fmt.Errorf("cost: unknown access function %q (want log, x^A, const:C or linear:S)", spec)
	}
}
