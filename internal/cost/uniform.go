package cost

import (
	"fmt"
	"math"
)

// UniformityReport summarises an empirical (2,c)-uniformity check of an
// access function over a range of addresses (paper Section 2: f is
// (2,c)-uniform when there exists c >= 1 with f(2x) <= c·f(x) for all x).
type UniformityReport struct {
	// C is the smallest constant c >= 1 such that f(2x) <= c f(x) held
	// for every sampled x in [1, MaxX].
	C float64
	// MaxX is the largest doubling point that was checked.
	MaxX int64
	// Nondecreasing reports whether f was nondecreasing over all
	// sampled points.
	Nondecreasing bool
	// AtLeastOne reports whether f(x) >= 1 held at all sampled points.
	AtLeastOne bool
}

// Ok reports whether the sampled function satisfied the full Func
// contract and was (2,c)-uniform for the given bound on c.
func (r UniformityReport) Ok(cBound float64) bool {
	return r.Nondecreasing && r.AtLeastOne && r.C <= cBound
}

// CheckUniform empirically verifies that f is (2,c)-uniform,
// nondecreasing and >= 1 on [0, maxX]. It samples all doubling points
// 1, 2, 4, ... and a dense set of intermediate points, returning the
// tightest doubling constant observed. The paper restricts attention to
// (2,c)-uniform functions; the simulators call this to reject invalid
// user-provided access functions early.
func CheckUniform(f Func, maxX int64) UniformityReport {
	rep := UniformityReport{C: 1, MaxX: maxX, Nondecreasing: true, AtLeastOne: true}
	if maxX < 1 {
		return rep
	}
	// Doubling constant over all powers of two and a spread of odd points.
	for x := int64(1); x <= maxX/2; x = growSample(x) {
		fx := f.Cost(x)
		f2x := f.Cost(2 * x)
		if fx < 1 || f2x < 1 {
			rep.AtLeastOne = false
		}
		if fx > 0 {
			if r := f2x / fx; r > rep.C {
				rep.C = r
			}
		}
	}
	// Monotonicity over a dense-ish sample.
	prev := f.Cost(0)
	if prev < 1 {
		rep.AtLeastOne = false
	}
	for x := int64(1); x <= maxX; x = growSample(x) {
		cur := f.Cost(x)
		if cur+1e-12 < prev {
			rep.Nondecreasing = false
		}
		if cur < 1 {
			rep.AtLeastOne = false
		}
		prev = cur
	}
	return rep
}

// growSample advances a sample point: exhaustively for small x, then
// multiplicatively with an odd offset so that non-power-of-two points
// are also exercised.
func growSample(x int64) int64 {
	if x < 1024 {
		return x + 1
	}
	next := x + x/7 + 3
	if next <= x {
		return x + 1
	}
	return next
}

// MustUniform panics if f is not (2,cBound)-uniform on [0, maxX]. It is
// intended for package initialisation and test setup where a non-uniform
// function is a programming error.
func MustUniform(f Func, cBound float64, maxX int64) {
	rep := CheckUniform(f, maxX)
	if !rep.Ok(cBound) {
		panic(fmt.Sprintf("cost: %s is not (2,%g)-uniform on [0,%d]: c=%.3f nondecr=%v >=1=%v",
			f.Name(), cBound, maxX, rep.C, rep.Nondecreasing, rep.AtLeastOne))
	}
}

// TouchHMM returns the Fact 1 quantity: the exact cost Σ_{x=0}^{n-1} f(x)
// of touching the first n cells of an f(x)-HMM, which Fact 1 bounds as
// Θ(n·f(n)) for (2,c)-uniform f.
// The sum is folded left to right through the compiled table, which is
// bit-identical to the direct loop `sum += f.Cost(x)`.
func TouchHMM(f Func, n int64) float64 {
	return Compile(f, n-1).CostRange(0, n)
}

// TouchHMMApprox returns Σ f(x) over x < n evaluated by geometric
// bucketing: exact for x < 4096 and approximated by midpoint sampling on
// doubling intervals beyond. For (2,c)-uniform f the relative error is
// bounded by the doubling constant; use it when n is too large for the
// exact loop.
func TouchHMMApprox(f Func, n int64) float64 {
	const exactLimit = 4096
	if n <= exactLimit {
		return TouchHMM(f, n)
	}
	sum := TouchHMM(f, exactLimit)
	lo := int64(exactLimit)
	for lo < n {
		hi := lo * 2
		if hi > n {
			hi = n
		}
		mid := lo + (hi-lo)/2
		sum += float64(hi-lo) * f.Cost(mid)
		lo = hi
	}
	return sum
}

// FStar returns f*(n) = min{k >= 1 : f^(k)(n) <= 1}, the iterated-
// application depth of Fact 2: touching n cells on an f(x)-BT machine
// costs Θ(n·f*(n)). For f = log x this is Θ(log* n); for f = x^α it is
// Θ(log log n).
func FStar(f Func, n int64) int {
	if n <= 1 {
		return 1
	}
	x := float64(n)
	for k := 1; ; k++ {
		x = f.Cost(int64(math.Ceil(x)))
		// Our Func contract clamps costs at 1, so the iteration can
		// stall just above 1 (e.g. f(2) = 2^α). Terminating at x <= 2
		// changes f* by at most an additive constant.
		if x <= 2 || k > 256 {
			return k
		}
	}
}
