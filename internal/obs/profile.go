package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/det"
)

// Profile accumulates charged model cost by span stack — the cost
// analogue of a CPU profile. A stack is a semicolon-joined frame list
// (experiment → engine → superstep → phase, e.g.
// "E05;hmm;label.3;deliver"), which is exactly the folded-stack format
// flamegraph tools consume (`flamegraph.pl`, `inferno-flamegraph`,
// speedscope), with charged model time in place of sample counts.
//
// A Profile is either a root (owns the accumulator) or a scope — a
// cheap view created by Scope that prefixes every Add with its frame
// chain and forwards to the shared root. The sweep engine scopes one
// view per job (frame = job ID) so parallel jobs attribute into
// disjoint stacks of one shared profile, keeping folded output
// deterministic for any worker count.
//
// All methods are safe for concurrent use and no-op on a nil receiver,
// so instrumented code pays only a nil check when profiling is off.
type Profile struct {
	root   *Profile
	prefix string

	mu     sync.Mutex
	stacks map[string]float64 // guarded by mu (the root's; scopes hold no state)
}

// NewProfile returns an empty root profile.
func NewProfile() *Profile {
	p := &Profile{stacks: make(map[string]float64)}
	p.root = p
	return p
}

// Scope returns a view of the profile that prefixes frame to every
// stack added through it. Scoping a scope chains prefixes. Nil-safe.
func (p *Profile) Scope(frame string) *Profile {
	if p == nil {
		return nil
	}
	return &Profile{root: p.root, prefix: joinFrames(p.prefix, cleanFrame(frame))}
}

// Add charges cost to the stack formed by the scope's prefix followed
// by frames. Zero-cost adds are dropped so empty phases do not clutter
// the folded output. Nil-safe.
func (p *Profile) Add(cost float64, frames ...string) {
	if p == nil || cost == 0 {
		return
	}
	stack := p.prefix
	for _, f := range frames {
		stack = joinFrames(stack, cleanFrame(f))
	}
	if stack == "" {
		stack = "(root)"
	}
	r := p.root
	r.mu.Lock()
	r.stacks[stack] += cost
	r.mu.Unlock()
}

// StackCost is one folded-profile line: a stack and its total cost.
type StackCost struct {
	// Stack is the semicolon-joined frame list.
	Stack string
	// Cost is the total model cost attributed to the stack.
	Cost float64
}

// Folded returns every stack with its accumulated cost, sorted by
// stack name — a deterministic rendering order. Nil-safe (nil result).
func (p *Profile) Folded() []StackCost {
	if p == nil {
		return nil
	}
	r := p.root
	r.mu.Lock()
	stacks := make(map[string]float64, len(r.stacks))
	for s, c := range r.stacks {
		stacks[s] = c
	}
	r.mu.Unlock()
	out := make([]StackCost, 0, len(stacks))
	for _, s := range det.SortedKeys(stacks) {
		out = append(out, StackCost{Stack: s, Cost: stacks[s]})
	}
	return out
}

// WriteFolded writes the profile in folded-stack format: one
// "stack cost" line per stack, sorted by stack. Nil-safe (no output).
func (p *Profile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	for _, sc := range p.Folded() {
		if _, err := fmt.Fprintf(w, "%s %g\n", sc.Stack, sc.Cost); err != nil {
			return err
		}
	}
	return nil
}

// joinFrames appends frame to a (possibly empty) prefix chain.
func joinFrames(prefix, frame string) string {
	if frame == "" {
		return prefix
	}
	if prefix == "" {
		return frame
	}
	return prefix + ";" + frame
}

// frameCleaner strips the two characters the folded format reserves:
// ';' separates frames and ' ' separates the stack from its cost.
var frameCleaner = strings.NewReplacer(";", "_", " ", "_", "\n", "_")

// cleanFrame makes a frame safe for the folded format.
func cleanFrame(f string) string { return frameCleaner.Replace(f) }
