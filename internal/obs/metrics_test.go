package obs

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one float counter and one
// histogram from many goroutines; run under -race this doubles as the
// data-race check for the registry and every metric kind.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve through the registry inside the goroutine so the
			// create-on-first-use path races too.
			c := reg.Counter("c")
			f := reg.FloatCounter("f")
			h := reg.Histogram("h")
			g := reg.Gauge("g")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				f.Add(0.5)
				h.Observe(int64(i % 100))
				g.Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.FloatCounter("f").Value(); got != workers*perWorker*0.5 {
		t.Errorf("float counter = %g, want %g", got, float64(workers*perWorker)*0.5)
	}
	if got := reg.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestNilReceiversNoop(t *testing.T) {
	var (
		c *Counter
		f *FloatCounter
		g *Gauge
		h *Histogram
		r *Registry
		o *Observer
	)
	c.Add(5)
	c.Inc()
	f.Add(1.5)
	f.Set(2)
	g.Set(3)
	h.Observe(4)
	h.AddAt(2, 7)
	if c.Value() != 0 || f.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if h.Buckets() != nil {
		t.Error("nil histogram must have no buckets")
	}
	if r.Counter("x") != nil || r.FloatCounter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must return nil metrics")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	o.Counter("x").Inc()
	o.Emit(Event{Kind: "k"})
	if o.Tracing() {
		t.Error("nil observer must not report tracing")
	}
	if err := o.Close(); err != nil {
		t.Errorf("nil observer Close: %v", err)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// BucketRange must invert BucketOf: every value lands inside its
	// bucket's range.
	for _, c := range cases {
		if c.v < 0 {
			continue
		}
		lo, hi := BucketRange(BucketOf(c.v))
		if c.v != 0 && (c.v < lo || c.v >= hi) {
			t.Errorf("value %d outside its bucket range [%d,%d)", c.v, lo, hi)
		}
	}

	h := &Histogram{}
	h.Observe(0)
	h.Observe(1)
	h.Observe(7)
	h.Observe(8)
	buckets := h.Buckets()
	want := []int64{1, 1, 0, 1, 1}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", buckets, want)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", buckets, want)
		}
	}
	if h.Count() != 4 || h.Sum() != 16 {
		t.Errorf("count=%d sum=%d, want 4, 16", h.Count(), h.Sum())
	}

	h2 := &Histogram{}
	h2.AddAt(3, 5)
	if h2.Count() != 5 {
		t.Errorf("AddAt count = %d, want 5", h2.Count())
	}
	if got := h2.Buckets()[3]; got != 5 {
		t.Errorf("AddAt bucket 3 = %d, want 5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	reg.Histogram("m")
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(3)
	reg.FloatCounter("a.cost").Add(1.5)
	reg.Gauge("c.gauge").Set(-7)
	reg.Histogram("d.hist").Observe(10)
	snap := reg.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d samples, want 4", len(snap))
	}
	wantNames := []string{"a.cost", "b.count", "c.gauge", "d.hist"}
	wantKinds := []string{"float", "counter", "gauge", "hist"}
	for i := range snap {
		if snap[i].Name != wantNames[i] || snap[i].Kind != wantKinds[i] {
			t.Errorf("sample %d = %s/%s, want %s/%s",
				i, snap[i].Name, snap[i].Kind, wantNames[i], wantKinds[i])
		}
	}
	if snap[3].Count != 1 || snap[3].Value != 10 {
		t.Errorf("hist sample = count %d value %g, want 1, 10", snap[3].Count, snap[3].Value)
	}
}

// Import folds disjoint snapshots into one registry the same way a
// shared registry would have recorded them.
func TestImportMergesSnapshots(t *testing.T) {
	mk := func(n int64) []Sample {
		src := NewRegistry()
		src.Counter("jobs").Add(n)
		src.FloatCounter("cost").Add(float64(n) / 2)
		src.Gauge("workers").Set(n)
		src.Histogram("wall").Observe(n)
		return src.Snapshot()
	}
	dst := NewRegistry()
	dst.Import(mk(2))
	dst.Import(mk(4))
	if got := dst.Counter("jobs").Value(); got != 6 {
		t.Errorf("counter merged to %d, want 6", got)
	}
	if got := dst.FloatCounter("cost").Value(); got != 3 {
		t.Errorf("float merged to %g, want 3", got)
	}
	if got := dst.Gauge("workers").Value(); got != 4 {
		t.Errorf("gauge merged to %d, want 4 (last wins)", got)
	}
	h := dst.Histogram("wall")
	if h.Count() != 2 || h.Sum() != 6 {
		t.Errorf("hist merged to count %d sum %d, want 2, 6", h.Count(), h.Sum())
	}
	var nilReg *Registry
	nilReg.Import(mk(1)) // must not panic
}

// Audit companion to the hmm.Stats.Depth sizing fix: BucketOf reaches
// bits.Len64's full range, and every reachable index must stay inside
// the histogram's bucket array (and inside hmm's Depth profile, which
// AddAt imports verbatim).
func TestBucketOfBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0}, {1, 1}, {2, 2},
		{1 << 47, 48}, {1 << 62, 63}, {math.MaxInt64, 63},
	}
	for _, tc := range cases {
		got := BucketOf(tc.v)
		if got != tc.want {
			t.Errorf("BucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
		if got < 0 || got >= histBuckets {
			t.Errorf("BucketOf(%d) = %d escapes [0,%d)", tc.v, got, histBuckets)
		}
	}
	// Observing the extremes must not panic and must land in-range.
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(math.MinInt64)
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
	// AddAt clamps wild bucket indexes instead of panicking.
	h.AddAt(histBuckets+10, 1)
	h.AddAt(-3, 1)
	if h.Count() != 4 {
		t.Errorf("Count after clamped AddAt = %d, want 4", h.Count())
	}
}

// TestHistogramQuantile pins the bucket-interpolation estimator: the
// quantile is located by cumulative count and interpolated linearly
// inside the containing power-of-two bucket.
func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name    string
		observe []int64
		p       float64
		want    float64
	}{
		// 10 observations of 12: all in bucket 4 = [8,16). The median
		// target is half way through the bucket's count.
		{"uniform-single-bucket-p50", repeat(12, 10), 0.5, 12},
		{"uniform-single-bucket-p0", repeat(12, 10), 0, 8},
		{"uniform-single-bucket-p1", repeat(12, 10), 1, 16},
		// 8 obs in bucket 1 ({1}), 2 in bucket 4: p50 target 5 of 10
		// lands 5/8 into bucket 1 = [1,2).
		{"skewed-p50", append(repeat(1, 8), 12, 12), 0.5, 1.625},
		// p95 target 9.5 of 10 lands 1.5/2 into bucket 4 = [8,16).
		{"skewed-p95", append(repeat(1, 8), 12, 12), 0.95, 14},
		// Bucket 0 holds values <= 0 and spans [0,1).
		{"zeros-p50", repeat(0, 4), 0.5, 0.5},
		// Clamping.
		{"clamp-low", repeat(12, 10), -3, 8},
		{"clamp-high", repeat(12, 10), 7, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.observe {
				h.Observe(v)
			}
			if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
			}
		})
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}
}

// TestHistogramQuantileServiceEdges pins the exact edge-case values
// the dbspd /metrics p99 lines will serve: an empty histogram, a
// single observation, and an all-one-bucket distribution. Each case
// asserts an exact value — the estimator is deterministic, so any
// drift here would show up as a changed quantile line on a scrape.
func TestHistogramQuantileServiceEdges(t *testing.T) {
	cases := []struct {
		name    string
		observe []int64
		p       float64
		want    float64
	}{
		// Empty histogram: every quantile is exactly 0 (no buckets to
		// interpolate in), which is what a fresh service scrape sees
		// before the first submission.
		{"empty-p50", nil, 0.5, 0},
		{"empty-p99", nil, 0.99, 0},
		{"empty-p0", nil, 0, 0},
		{"empty-p1", nil, 1, 0},
		// Single observation of 5: bucket 3 = [4, 8), count 1, so the
		// target p*1 interpolates linearly across [4, 8): p50 → 6,
		// p99 → 7.96, the extremes hit the bucket edges exactly.
		{"single-p0", []int64{5}, 0, 4},
		{"single-p50", []int64{5}, 0.5, 6},
		{"single-p99", []int64{5}, 0.99, 7.96},
		{"single-p1", []int64{5}, 1, 8},
		// 100 observations all in bucket 4 = [8, 16): the p99 target is
		// 99 of 100, landing 99/100 into the bucket = 8 + 0.99*8.
		{"one-bucket-p50", repeat(12, 100), 0.5, 12},
		{"one-bucket-p99", repeat(12, 100), 0.99, 15.92},
		{"one-bucket-p1", repeat(12, 100), 1, 16},
		// A single zero observation lands in bucket 0 = [0, 1).
		{"single-zero-p99", []int64{0}, 0.99, 0.99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.observe {
				h.Observe(v)
			}
			if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
			}
		})
	}
	// The same edges through AddAt (the Import path a service registry
	// takes when folding job snapshots): one pre-bucketed observation in
	// bucket 3 behaves exactly like Observe(5) did.
	var h Histogram
	h.AddAt(3, 1)
	if got := h.Quantile(0.99); math.Abs(got-7.96) > 1e-12 {
		t.Errorf("AddAt single-bucket Quantile(0.99) = %g, want 7.96", got)
	}
}

// repeat returns n copies of v.
func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
