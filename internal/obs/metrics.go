package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/det"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops), so
// instrumented code pays only a nil check when observability is off.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter accumulates a float64 sum (model cost is fractional for
// f(x) = x^α). Add uses a CAS loop; nil receivers no-op.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates x into the sum.
func (c *FloatCounter) Add(x float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + x)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Set overwrites the value — used for totals copied verbatim from a
// machine's cost accumulator so reports match returned costs exactly.
func (c *FloatCounter) Set(x float64) {
	if c == nil {
		return
	}
	c.bits.Store(math.Float64bits(x))
}

// Value returns the accumulated sum (0 on a nil receiver).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value-wins integer metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(x int64) {
	if g == nil {
		return
	}
	g.v.Store(x)
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket k holds values
// of bit-length k, so bucket 0 = {<=0}, bucket k = [2^(k-1), 2^k).
// 64 covers the whole int64 range.
const histBuckets = 65

// Histogram counts observations in power-of-two buckets — the natural
// shape for memory-level and block-size distributions, matching the
// hmm.Stats touch-depth convention (bucket = bit-length of the value).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// BucketOf returns the bucket index of v: its bit-length (values <= 0
// land in bucket 0).
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketRange returns the half-open value interval [lo, hi) bucket k
// covers (bucket 0 is the single value 0).
func BucketRange(k int) (lo, hi int64) {
	if k <= 0 {
		return 0, 1
	}
	return int64(1) << uint(k-1), int64(1) << uint(k)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[BucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// AddAt records n pre-bucketed observations directly into bucket k —
// used to import profiles that are already bucketed by bit-length
// (e.g. hmm.Stats.Depth). The sum is approximated by the bucket floor.
func (h *Histogram) AddAt(k int, n int64) {
	if h == nil || n == 0 {
		return
	}
	if k < 0 {
		k = 0
	}
	if k >= histBuckets {
		k = histBuckets - 1
	}
	h.buckets[k].Add(n)
	h.count.Add(n)
	lo, _ := BucketRange(k)
	h.sum.Add(lo * n)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (bucket floors for AddAt).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the p-quantile of the observed distribution,
// estimated from the power-of-two buckets: the containing bucket is
// located by cumulative count and the value is interpolated linearly
// inside its [lo, hi) range (the only information the buckets retain).
// p is clamped to [0, 1]; an empty (or nil) histogram reports 0. The
// estimate is exact at bucket edges and within a factor of two
// everywhere, which is all the exporter's p50/p95/p99 lines and the
// sweep ETA need.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(count)
	var cum float64
	last := 0
	for k := 0; k < histBuckets; k++ {
		n := float64(h.buckets[k].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := BucketRange(k)
			frac := (target - cum) / n
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
		last = k
	}
	// Float rounding pushed target past the summed counts; report the
	// upper edge of the last populated bucket.
	_, hi := BucketRange(last)
	return float64(hi)
}

// Buckets returns the bucket counts trimmed after the last non-zero
// bucket (nil when the histogram is empty).
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	last := -1
	var out [histBuckets]int64
	for k := range out {
		out[k] = h.buckets[k].Load()
		if out[k] != 0 {
			last = k
		}
	}
	if last < 0 {
		return nil
	}
	return append([]int64(nil), out[:last+1]...)
}

// Registry is a named collection of metrics. Lookups create the metric
// on first use; subsequent lookups return the same instance, so hot
// paths resolve their metrics once up front and then touch only
// atomics. A nil *Registry returns nil metrics from every getter,
// which no-op on use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// get returns the metric under name, creating it with mk on first use.
// It panics if the name is already registered with a different kind.
func (r *Registry) get(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// kindMismatch reports a metric name registered under two different
// kinds — a caller bug, reported with the package-prefixed panic the
// panicmsg analyzer requires.
func kindMismatch(name string, got any, want string) {
	panic(fmt.Sprintf("obs: metric %q registered as %T, requested as %s", name, got, want))
}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.get(name, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		kindMismatch(name, m, "counter")
	}
	return c
}

// FloatCounter returns the float counter registered under name.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	if r == nil {
		return nil
	}
	m := r.get(name, func() any { return &FloatCounter{} })
	c, ok := m.(*FloatCounter)
	if !ok {
		kindMismatch(name, m, "float counter")
	}
	return c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.get(name, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		kindMismatch(name, m, "gauge")
	}
	return g
}

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.get(name, func() any { return &Histogram{} })
	h, ok := m.(*Histogram)
	if !ok {
		kindMismatch(name, m, "histogram")
	}
	return h
}

// Import merges a snapshot into the registry: counters and float
// counters add their values, gauges take the sample's value, and
// histograms add the sample's bucket counts. It is how the sweep
// engine's per-job registries fold into one aggregate report — for
// counters and histograms, importing N disjoint snapshots equals
// recording into one shared registry.
func (r *Registry) Import(samples []Sample) {
	if r == nil {
		return
	}
	for _, s := range samples {
		switch s.Kind {
		case "counter":
			r.Counter(s.Name).Add(int64(s.Value))
		case "float":
			r.FloatCounter(s.Name).Add(s.Value)
		case "gauge":
			r.Gauge(s.Name).Set(int64(s.Value))
		case "hist":
			h := r.Histogram(s.Name)
			for k, n := range s.Buckets {
				h.AddAt(k, n)
			}
		}
	}
}

// Sample is one metric's state in a Snapshot.
type Sample struct {
	// Name is the registered metric name.
	Name string
	// Kind is "counter", "float", "gauge" or "hist".
	Kind string
	// Value holds the counter/gauge/float value; for histograms, the
	// sum of observations.
	Value float64
	// Count holds the observation count of a histogram.
	Count int64
	// Buckets holds a histogram's power-of-two bucket counts, trimmed.
	Buckets []int64
}

// Snapshot returns every registered metric, sorted by name.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make(map[string]any, len(r.metrics))
	for n, m := range r.metrics {
		metrics[n] = m
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(metrics))
	for _, n := range det.SortedKeys(metrics) {
		switch m := metrics[n].(type) {
		case *Counter:
			out = append(out, Sample{Name: n, Kind: "counter", Value: float64(m.Value())})
		case *FloatCounter:
			out = append(out, Sample{Name: n, Kind: "float", Value: m.Value()})
		case *Gauge:
			out = append(out, Sample{Name: n, Kind: "gauge", Value: float64(m.Value())})
		case *Histogram:
			out = append(out, Sample{Name: n, Kind: "hist", Value: float64(m.Sum()),
				Count: m.Count(), Buckets: m.Buckets()})
		}
	}
	return out
}
