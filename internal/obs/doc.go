// Package obs is the unified observability layer of the reproduction:
// a metrics registry, a structured event-tracing API with pluggable
// sinks, and the per-phase/per-level cost report the CLIs print.
//
// Every claim of the paper is a counted quantity — Theorem 5's
// O(v·(τ + µ·Σ_i λ_i·f(µv/2^i))) HMM cost, Theorem 12's f-independent
// BT cost, Corollary 11's Θ(v/v′) self-simulation slowdown — and the
// simulators charge those counts mechanically. This package gives them
// one shared way to break the charges down, export them, and compare
// runs, instead of each simulator keeping ad-hoc tallies.
//
// # Design
//
// The registry hands out four metric kinds: Counter (atomic int64),
// FloatCounter (atomic float64 sum — model cost is fractional),
// Gauge (last value wins) and Histogram (power-of-two buckets, the
// natural shape for memory-level and block-size distributions; the
// bucket of a value is its bit-length, matching hmm.Stats.Depth).
//
// Tracing emits fixed-shape Event records into a Sink: RingSink keeps
// the last N in memory, JSONLSink streams them as JSON lines, SinkFunc
// adapts a function, MultiSink fans out, NopSink discards.
//
// Instrumented code holds a possibly-nil *Observer. Every Observer and
// metric method no-ops on nil receivers, so the disabled path costs a
// nil check per instrumentation point — no branches on configuration,
// no allocation, no locks. Hot loops resolve their metrics once up
// front (Registry lookups are create-on-first-use and stable) and then
// touch only atomics.
//
// # Metric names
//
// Components prefix their metrics: "dbsp." (native engine), "hmm."
// (Section 3 simulator), "bt." (Section 5 simulator), "self."
// (Section 4 self-simulation). Within a component:
//
//	<sim>.cost.<phase>        cost charged during <phase>; the
//	                          top-level phases partition the run
//	<sim>.cost.<phase>.<sub>  refinement of a phase (reported indented,
//	                          not double-counted into the total)
//	<sim>.cost.total          the host cost the simulator returned,
//	                          added verbatim — after a single run on a
//	                          fresh registry the total row equals
//	                          Result.HostCost exactly; across several
//	                          runs (cmd/experiments -metrics) totals
//	                          and phases aggregate consistently
//	<sim>.level.<k>.accesses  word accesses at memory level k
//	                          (addresses of bit-length k)
//	<sim>.level.<k>.cost      access cost charged at level k
//
// # Attributing the paper's cost terms
//
// Theorem 5 (D-BSP -> HMM, O(v·(τ + µ·Σ_i λ_i·f(µv/2^i)))):
//
//	hmm.cost.compute   the v·τ term — handler work plus the context
//	                   accesses it performs at the top of memory
//	hmm.cost.deliver   the message-exchange part of each round
//	hmm.cost.swap      the Figure 2 sibling cycling — the
//	                   µ·Σ_i λ_i·f(µv/2^i) context-movement term
//	hmm.rounds.label.<i>  rounds executed at label i (the λ_i·2^i
//	                   cluster-steps the formula sums over)
//	hmm.level.<k>.cost where the f(µv/2^i) charges actually landed in
//	                   the hierarchy
//
// Theorem 12 (D-BSP -> BT, O(v·(τ + µ·Σ_i λ_i·log(µv/2^i)))):
//
//	bt.cost.pack / bt.cost.unpack  the Figure 4 buffer maintenance
//	bt.cost.compute                the Figure 6 COMPUTE recursion
//	                               (TM(n) = O(µ·n·c*(n)) overhead
//	                               plus the raw work)
//	bt.cost.deliver                message delivery, refined into
//	                               deliver.juggle/.extract/.sort/
//	                               .riffle/.merge
//	bt.cost.swap                   the Step 4 sibling swaps (three
//	                               block transfers each)
//	bt.blocks.words                histogram of block-transfer sizes —
//	                               f-independence shows up as traffic
//	                               dominated by large transfers
//	bt.sort.comparisons            comparisons spent in the sorting
//	                               substrate (Approx-Median-Sort
//	                               stand-in)
//
// Theorem 10 / Corollary 11 (self-simulation, Θ(v/v′) slowdown):
//
//	self.cost.local    module time of label >= log v′ runs (each host
//	                   processor running the Section 3 scheduler)
//	self.cost.compute  module time of global supersteps' local work
//	self.cost.place    module time of inbox placement
//	self.cost.comm     the router term h·g(µv/2^i)
//
// cmd/dbsprun -metrics prints the Report for a native run plus all
// three simulations; -trace-out streams the event log as JSONL;
// -profile captures runtime/pprof CPU and heap profiles.
package obs
