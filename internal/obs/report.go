package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/det"
)

// Metric naming conventions the simulators follow and Report renders:
//
//	<sim>.cost.<phase>         float: cost charged during <phase>; the
//	                           top-level phases partition the run
//	<sim>.cost.<phase>.<sub>   float: refinement of <phase>, shown
//	                           indented, not added to the total
//	<sim>.cost.total           float: the exact returned host cost
//	<sim>.level.<k>.accesses   counter: word accesses at memory level k
//	                           (addresses of bit-length k)
//	<sim>.level.<k>.cost       float: access cost charged at level k
//
// Everything else under the <sim>. prefix is rendered as a plain
// counter/gauge line or a histogram block.

// simOrder fixes the display order of the known components; unknown
// prefixes follow alphabetically.
var simOrder = map[string]int{"dbsp": 0, "hmm": 1, "bt": 2, "self": 3}

// Report renders the registry as a per-component, per-phase and
// per-level cost breakdown. It is pure presentation: every number comes
// from the registry.
func Report(r *Registry) string {
	samples := r.Snapshot()
	if len(samples) == 0 {
		return "(no metrics recorded)\n"
	}
	groups := make(map[string][]Sample)
	var sims []string
	for _, s := range samples {
		sim := s.Name
		if i := strings.IndexByte(sim, '.'); i >= 0 {
			sim = sim[:i]
		}
		if _, ok := groups[sim]; !ok {
			sims = append(sims, sim)
		}
		groups[sim] = append(groups[sim], s)
	}
	sort.Slice(sims, func(i, j int) bool {
		oi, iOK := simOrder[sims[i]]
		oj, jOK := simOrder[sims[j]]
		switch {
		case iOK && jOK:
			return oi < oj
		case iOK:
			return true
		case jOK:
			return false
		default:
			return sims[i] < sims[j]
		}
	})

	var b strings.Builder
	for _, sim := range sims {
		fmt.Fprintf(&b, "== %s ==\n", sim)
		renderGroup(&b, sim, groups[sim])
		b.WriteString("\n")
	}
	return b.String()
}

type phaseRow struct {
	name string
	cost float64
	subs []phaseRow
}

// renderGroup renders one component's metrics.
func renderGroup(b *strings.Builder, sim string, samples []Sample) {
	var (
		phases   []phaseRow
		total    float64
		hasTotal bool
		levels   = map[int]*[2]float64{} // level -> {accesses, cost}
		hists    []Sample
		plain    []Sample
	)
	phaseIdx := map[string]int{}
	var subs []phaseRow

	for _, s := range samples {
		rest := strings.TrimPrefix(s.Name, sim+".")
		switch {
		case rest == "cost.total":
			total, hasTotal = s.Value, true
		case strings.HasPrefix(rest, "cost."):
			name := rest[len("cost."):]
			if i := strings.IndexByte(name, '.'); i >= 0 {
				subs = append(subs, phaseRow{name: name, cost: s.Value})
			} else {
				phaseIdx[name] = len(phases)
				phases = append(phases, phaseRow{name: name, cost: s.Value})
			}
		case strings.HasPrefix(rest, "level."):
			parts := strings.SplitN(rest[len("level."):], ".", 2)
			if len(parts) == 2 {
				if k, err := strconv.Atoi(parts[0]); err == nil {
					e := levels[k]
					if e == nil {
						e = &[2]float64{}
						levels[k] = e
					}
					switch parts[1] {
					case "accesses":
						e[0] = s.Value
					case "cost":
						e[1] = s.Value
					}
					continue
				}
			}
			plain = append(plain, s)
		case s.Kind == "hist":
			hists = append(hists, s)
		default:
			plain = append(plain, s)
		}
	}
	// Attach sub-phases to their parents.
	for _, sub := range subs {
		parent := sub.name[:strings.IndexByte(sub.name, '.')]
		if i, ok := phaseIdx[parent]; ok {
			phases[i].subs = append(phases[i].subs, sub)
		} else {
			phases = append(phases, sub) // orphan: show flat
		}
	}

	if len(phases) > 0 || hasTotal {
		var attributed float64
		for _, p := range phases {
			attributed += p.cost
		}
		if !hasTotal {
			total = attributed
		}
		fmt.Fprintf(b, "  %-24s %14s %8s\n", "phase", "cost", "share")
		for _, p := range phases {
			fmt.Fprintf(b, "  %-24s %14.6g %7.1f%%\n", p.name, p.cost, share(p.cost, total))
			for _, sub := range p.subs {
				fmt.Fprintf(b, "    %-22s %14.6g %7.1f%%\n", sub.name, sub.cost, share(sub.cost, total))
			}
		}
		if hasTotal {
			// Suppress pure float-summation noise: phase deltas are
			// accumulated in a different order than the machine's running
			// total, so exact zero is not attainable.
			resid := total - attributed
			noise := 1e-9 * total
			if noise < 0 {
				noise = -noise
			}
			if resid > noise || resid < -noise {
				fmt.Fprintf(b, "  %-24s %14.6g %7.1f%%\n", "(unattributed)", resid, share(resid, total))
			}
			fmt.Fprintf(b, "  %-24s %14.6g %7.1f%%\n", "total", total, 100.0)
		}
	}

	if len(levels) > 0 {
		fmt.Fprintf(b, "  %-7s %-22s %14s %14s\n", "level", "addresses", "accesses", "cost")
		for _, k := range det.SortedKeys(levels) {
			e := levels[k]
			lo, hi := BucketRange(k)
			rng := fmt.Sprintf("[%d,%d)", lo, hi)
			if k == 0 {
				rng = "{0}"
			}
			fmt.Fprintf(b, "  %-7d %-22s %14.0f %14.6g\n", k, rng, e[0], e[1])
		}
	}

	for _, h := range hists {
		fmt.Fprintf(b, "  %s: count=%d sum=%.0f\n", h.Name, h.Count, h.Value)
		var max int64 = 1
		for _, n := range h.Buckets {
			if n > max {
				max = n
			}
		}
		for k, n := range h.Buckets {
			if n == 0 {
				continue
			}
			lo, hi := BucketRange(k)
			rng := fmt.Sprintf("[%d,%d)", lo, hi)
			if k == 0 {
				rng = "{0}"
			}
			fmt.Fprintf(b, "    %-20s %12d  %s\n", rng, n, strings.Repeat("#", int(30*n/max)))
		}
	}

	if len(plain) > 0 {
		for _, s := range plain {
			switch s.Kind {
			case "float":
				fmt.Fprintf(b, "  %s = %.6g\n", s.Name, s.Value)
			default:
				fmt.Fprintf(b, "  %s = %.0f\n", s.Name, s.Value)
			}
		}
	}
}

func share(x, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * x / total
}
