package obs

import "testing"

// BenchmarkDisabledObserver measures the disabled path every simulator
// round pays: a nil observer resolving nothing and nil metrics
// no-opping. This must stay allocation-free and in the low
// nanoseconds — the acceptance bar is <5% overhead on the seed
// simulation benchmarks.
func BenchmarkDisabledObserver(b *testing.B) {
	var o *Observer
	c := o.Counter("hmm.rounds")
	f := o.FloatCounter("hmm.cost.compute")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		f.Add(1.5)
		if o.Tracing() {
			o.Emit(Event{Kind: "round"})
		}
	}
}

// BenchmarkEnabledCounters measures the enabled hot path: pre-resolved
// metrics backed by atomics.
func BenchmarkEnabledCounters(b *testing.B) {
	o := New(NewRegistry(), nil)
	c := o.Counter("hmm.rounds")
	f := o.FloatCounter("hmm.cost.compute")
	h := o.Histogram("bt.blocks.words")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		f.Add(1.5)
		h.Observe(int64(i & 1023))
	}
}

// BenchmarkRingEmit measures tracing into the in-memory ring.
func BenchmarkRingEmit(b *testing.B) {
	o := New(nil, NewRingSink(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(Event{Sim: "hmm", Kind: "round", Round: int64(i)})
	}
}
