package obshttp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestWritePromAllKinds pins the exposition of all four registry
// metric kinds, including the histogram's cumulative le buckets and
// the companion quantile lines.
func TestWritePromAllKinds(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("hmm.reads").Add(7)
	reg.FloatCounter("hmm.cost.total").Add(2.5)
	reg.Gauge("sweep.workers").Set(4)
	h := reg.Histogram("sweep.job.wall_ms")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(12) // bucket 4

	var b strings.Builder
	if err := WriteProm(&b, reg.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE hmm_cost_total counter
hmm_cost_total 2.5
# TYPE hmm_reads counter
hmm_reads 7
# TYPE sweep_job_wall_ms histogram
sweep_job_wall_ms_bucket{le="0"} 1
sweep_job_wall_ms_bucket{le="1"} 3
sweep_job_wall_ms_bucket{le="3"} 3
sweep_job_wall_ms_bucket{le="7"} 3
sweep_job_wall_ms_bucket{le="15"} 4
sweep_job_wall_ms_bucket{le="+Inf"} 4
sweep_job_wall_ms_sum 14
sweep_job_wall_ms_count 4
# TYPE sweep_job_wall_ms_quantile gauge
sweep_job_wall_ms_quantile{quantile="0.5"} 1.5
sweep_job_wall_ms_quantile{quantile="0.95"} 14.399999999999999
sweep_job_wall_ms_quantile{quantile="0.99"} 15.68
# TYPE sweep_workers gauge
sweep_workers 4
`
	if b.String() != want {
		t.Errorf("WriteProm:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWritePromValidText checks structural validity rules a Prometheus
// scraper enforces: every line is either a comment or
// "name[{labels}] value", names are in the identifier charset, and
// cumulative bucket counts never decrease.
func TestWritePromValidText(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("dbsp.lambda.label.3").Add(2)
	reg.Histogram("hmm.depth").Observe(100)
	reg.Histogram("hmm.depth").Observe(3)
	var b strings.Builder
	if err := WriteProm(&b, reg.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	var lastCum int64 = -1
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok || rest == "" {
			t.Errorf("malformed line %q", line)
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated labels in %q", line)
			}
			name = name[:i]
		}
		for j := 0; j < len(name); j++ {
			c := name[j]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && j > 0)
			if !ok {
				t.Errorf("invalid metric name %q", name)
				break
			}
		}
	}
	// Cumulative le buckets are nondecreasing and end at the count.
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "hmm_depth_bucket") {
			continue
		}
		cum, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Errorf("bucket counts decreased: %q after %d", line, lastCum)
		}
		lastCum = cum
	}
	if lastCum != 2 {
		t.Errorf("+Inf bucket = %d, want 2", lastCum)
	}
}
