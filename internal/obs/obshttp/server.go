package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options configures the observability handler. Every source is
// optional; endpoints whose source is missing answer 404 so one
// handler shape serves every CLI.
type Options struct {
	// Registry is the /metrics source, read via Snapshot() only.
	Registry *obs.Registry
	// Progress supplies the /debug/progress payload (any JSON-encodable
	// value; the sweep engine passes its Progress snapshot). Called per
	// request.
	Progress func() any
	// Profile is the /debug/costprofile source (folded stacks).
	Profile *obs.Profile
	// Quantiles are the per-histogram quantile lines on /metrics;
	// nil means p50/p95/p99.
	Quantiles []float64
}

// Handler returns the observability mux:
//
//	/metrics           Prometheus text exposition of Registry
//	/healthz           liveness probe ("ok")
//	/debug/progress    JSON progress snapshot
//	/debug/costprofile folded span-stack cost profile
//	/debug/pprof/...   standard net/http/pprof handlers
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o.Registry == nil {
			http.Error(w, "no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Snapshot-only: the scrape never touches live metric state
		// beyond the atomic loads Snapshot performs.
		_ = WriteProm(w, o.Registry.Snapshot(), o.Quantiles)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		if o.Progress == nil {
			http.Error(w, "no progress source", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o.Progress()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/costprofile", func(w http.ResponseWriter, r *http.Request) {
		if o.Profile == nil {
			http.Error(w, "no cost profile", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = o.Profile.WriteFolded(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ProgressSet fans many named progress sources into one
// /debug/progress payload — the multi-sweep form of Options.Progress.
// A single-sweep CLI passes one Progress snapshot func; a service with
// several sweeps in flight registers one source per sweep (plus one
// for its scheduler) and passes Snapshot as the Options.Progress
// callback. Sources are polled at request time only; registering and
// unregistering are cheap and safe for concurrent use, so a scheduler
// can track sweep lifetimes exactly.
type ProgressSet struct {
	mu   sync.Mutex
	srcs map[string]func() any // guarded by mu
}

// NewProgressSet returns an empty source set.
func NewProgressSet() *ProgressSet {
	return &ProgressSet{srcs: make(map[string]func() any)}
}

// Register adds (or replaces) the source under name.
func (s *ProgressSet) Register(name string, src func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srcs[name] = src
}

// Unregister removes the source under name, if present.
func (s *ProgressSet) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.srcs, name)
}

// Snapshot polls every registered source and returns a name → payload
// map, ready to hand to Options.Progress (encoding/json emits map keys
// in sorted order, so the payload is deterministic for a given set of
// source values). Sources are called outside the set's lock: a slow
// source never blocks Register/Unregister, and a source is free to
// take its own locks.
func (s *ProgressSet) Snapshot() any {
	s.mu.Lock()
	srcs := make(map[string]func() any, len(s.srcs))
	for name, src := range s.srcs {
		srcs[name] = src
	}
	s.mu.Unlock()
	out := make(map[string]any, len(srcs))
	for name, src := range srcs {
		out[name] = src()
	}
	return out
}

// Server is a listening observability endpoint with graceful shutdown.
type Server struct {
	srv  *http.Server
	addr string
	done chan error
}

// Serve listens on addr (host:port; port 0 picks a free port) and
// serves Handler(o) until Shutdown. It returns once the listener is
// bound, so Addr is immediately scrapeable.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{
		srv:  &http.Server{Handler: Handler(o), ReadHeaderTimeout: 10 * time.Second},
		addr: ln.Addr().String(),
		done: make(chan error, 1),
	}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// caller asked for :0).
func (s *Server) Addr() string { return s.addr }

// Shutdown stops accepting connections, waits for in-flight requests
// (bounded by ctx) and returns the serve loop's error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-s.done
}
