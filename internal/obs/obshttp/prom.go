// Package obshttp is the live observability service layer over
// internal/obs: it renders a Registry snapshot in Prometheus text
// exposition format and serves it — together with a JSON progress
// feed, the folded cost profile and net/http/pprof — from one
// http.Handler.
//
// The exporter is strictly snapshot-only: every scrape calls
// Registry.Snapshot() and renders the returned samples. It never
// installs hooks, resolves metrics, or touches the simulators, so the
// charged costs of a run are bit-identical whether or not anything is
// scraping (see DESIGN.md, "Why the exporter is snapshot-only").
package obshttp

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// defaultQuantiles are the quantile lines emitted per histogram when
// Options.Quantiles is nil.
var defaultQuantiles = []float64{0.5, 0.95, 0.99}

// WriteProm renders a registry snapshot in Prometheus text exposition
// format. Metric names are sanitized (dots become underscores:
// "hmm.cost.total" → hmm_cost_total). Kinds map as
//
//	counter → counter
//	float   → counter (monotone cost sums)
//	gauge   → gauge
//	hist    → histogram (cumulative le buckets, _sum, _count) plus a
//	          companion <name>_quantile gauge family with one line per
//	          requested quantile, estimated by obs.Histogram bucket
//	          interpolation from the snapshot's buckets
//
// Samples arrive sorted from Snapshot, so output is deterministic for
// a given registry state.
func WriteProm(w io.Writer, samples []obs.Sample, quantiles []float64) error {
	if quantiles == nil {
		quantiles = defaultQuantiles
	}
	for _, s := range samples {
		name := promName(s.Name)
		var err error
		switch s.Kind {
		case "counter", "float":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(s.Value))
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Value))
		case "hist":
			err = writePromHist(w, name, s, quantiles)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHist renders one histogram sample as cumulative le buckets
// plus the companion quantile gauge family.
func writePromHist(w io.Writer, name string, s obs.Sample, quantiles []float64) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for k, n := range s.Buckets {
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, bucketUpper(k), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, s.Count, name, promFloat(s.Value), name, s.Count); err != nil {
		return err
	}
	if s.Count == 0 || len(quantiles) == 0 {
		return nil
	}
	// Rebuild a histogram from the snapshot's buckets so the quantile
	// lines come from the same estimator the sweep ETA uses.
	var h obs.Histogram
	for k, n := range s.Buckets {
		//lint:ignore snapshotonly h is a scratch local rebuilt from the immutable snapshot, not shared state
		h.AddAt(k, n)
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name); err != nil {
		return err
	}
	for _, q := range quantiles {
		if _, err := fmt.Fprintf(w, "%s_quantile{quantile=%q} %s\n",
			name, promFloat(q), promFloat(h.Quantile(q))); err != nil {
			return err
		}
	}
	return nil
}

// bucketUpper returns the inclusive upper bound of pow2 bucket k as the
// Prometheus le label: bucket k holds integer values in
// [2^(k-1), 2^k - 1] (bucket 0 holds values <= 0).
func bucketUpper(k int) string {
	_, hi := obs.BucketRange(k)
	return strconv.FormatInt(hi-1, 10)
}

// promFloat renders a value the way Prometheus text format expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName sanitizes a registry metric name into the Prometheus
// identifier charset [a-zA-Z0-9_:] (leading digits get an underscore).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
