package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// TestServeEndpoints spins up a real listener on an ephemeral port and
// exercises every endpoint, then shuts down gracefully.
func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("hmm.reads").Add(3)
	prof := obs.NewProfile()
	prof.Scope("E01").Add(2, "hmm", "compute")
	srv, err := Serve("127.0.0.1:0", Options{
		Registry: reg,
		Progress: func() any { return map[string]int{"total": 5, "completed": 2} },
		Profile:  prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	code, body, ct := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE hmm_reads counter\nhmm_reads 3\n") {
		t.Errorf("/metrics body = %q", body)
	}

	code, body, ct = get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	_ = ct

	code, body, ct = get(t, base+"/debug/progress")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/debug/progress = %d %q", code, ct)
	}
	var prog map[string]int
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/debug/progress body %q: %v", body, err)
	}
	if prog["total"] != 5 || prog["completed"] != 2 {
		t.Errorf("/debug/progress = %v", prog)
	}

	code, body, _ = get(t, base+"/debug/costprofile")
	if code != http.StatusOK || body != "E01;hmm;compute 2\n" {
		t.Errorf("/debug/costprofile = %d %q", code, body)
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after Shutdown")
	}
}

// TestServeMissingSources: endpoints whose source is nil answer 404 so
// CLIs can share one handler shape regardless of enabled flags.
func TestServeMissingSources(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/debug/progress", "/debug/costprofile"} {
		if code, _, _ := get(t, base+path); code != http.StatusNotFound {
			t.Errorf("%s with nil source: status = %d, want 404", path, code)
		}
	}
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz should always answer, got %d", code)
	}
}

// TestServeBadAddr: a malformed listen address surfaces as an error,
// not a panic or a hung goroutine.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", Options{}); err == nil {
		t.Fatal("Serve on bad address succeeded")
	}
}

// TestProgressSet: named sources fan into one deterministic JSON
// payload on /debug/progress, registration is live (a source added or
// removed between requests shows up on the next poll), and snapshots
// poll sources at request time.
func TestProgressSet(t *testing.T) {
	set := NewProgressSet()
	polled := 0
	set.Register("scheduler", func() any { return map[string]int{"queued": 3} })
	set.Register("sweep-a", func() any { polled++; return "running" })

	snap := set.Snapshot().(map[string]any)
	if len(snap) != 2 || snap["sweep-a"] != "running" {
		t.Fatalf("snapshot = %v, want scheduler + sweep-a", snap)
	}
	if polled != 1 {
		t.Errorf("source polled %d times, want once per Snapshot", polled)
	}

	// Through the handler: the payload is a JSON object keyed by source
	// name, so a scraper sees every in-flight sweep in one request.
	srv, err := Serve("127.0.0.1:0", Options{Progress: set.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	code, body, _ := get(t, "http://"+srv.Addr()+"/debug/progress")
	if code != http.StatusOK {
		t.Fatalf("/debug/progress status = %d", code)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("payload not a JSON object: %v\n%s", err, body)
	}
	if _, ok := decoded["scheduler"]; !ok {
		t.Errorf("payload missing scheduler source: %s", body)
	}
	if !strings.Contains(body, `"running"`) {
		t.Errorf("payload missing sweep-a value: %s", body)
	}

	// Unregister removes the source from the next snapshot.
	set.Unregister("sweep-a")
	_, body, _ = get(t, "http://"+srv.Addr()+"/debug/progress")
	if strings.Contains(body, "sweep-a") {
		t.Errorf("unregistered source still served: %s", body)
	}

	// Replacing a source under the same name takes effect immediately.
	set.Register("scheduler", func() any { return map[string]int{"queued": 0} })
	_, body, _ = get(t, "http://"+srv.Addr()+"/debug/progress")
	if !strings.Contains(body, `"queued": 0`) {
		t.Errorf("replaced source not live: %s", body)
	}
}
