package obs

import (
	"strings"
	"testing"
)

func TestReportPhasesLevelsAndResidual(t *testing.T) {
	reg := NewRegistry()
	reg.FloatCounter("hmm.cost.compute").Add(60)
	reg.FloatCounter("hmm.cost.deliver").Add(30)
	reg.FloatCounter("hmm.cost.swap").Add(9)
	reg.FloatCounter("hmm.cost.total").Set(100) // 1 unattributed
	reg.Counter("hmm.level.0.accesses").Add(5)
	reg.FloatCounter("hmm.level.0.cost").Add(5)
	reg.Counter("hmm.level.4.accesses").Add(2)
	reg.FloatCounter("hmm.level.4.cost").Add(7)
	reg.Counter("hmm.rounds").Add(12)
	reg.FloatCounter("bt.cost.deliver").Add(10)
	reg.FloatCounter("bt.cost.deliver.sort").Add(4) // sub-phase: indented, not summed
	reg.FloatCounter("bt.cost.total").Set(10)
	reg.Histogram("bt.blocks.words").Observe(16)

	out := Report(reg)
	for _, want := range []string{
		"== hmm ==",
		"== bt ==",
		"compute",
		"(unattributed)",
		"total",
		"level",
		"[8,16)", // level 4 address range
		"hmm.rounds = 12",
		"deliver.sort",
		"bt.blocks.words: count=1 sum=16",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// hmm comes before bt (component order, not alphabetical).
	if strings.Index(out, "== hmm ==") > strings.Index(out, "== bt ==") {
		t.Error("hmm section must precede bt section")
	}
	// The sub-phase must not be counted into the total: residual of bt
	// is 0 so no unattributed row in the bt section.
	btSection := out[strings.Index(out, "== bt =="):]
	if strings.Contains(btSection, "(unattributed)") {
		t.Errorf("bt sub-phase was double-counted:\n%s", btSection)
	}
}

func TestReportEmpty(t *testing.T) {
	if out := Report(NewRegistry()); !strings.Contains(out, "no metrics") {
		t.Errorf("empty report = %q", out)
	}
	if out := Report(nil); !strings.Contains(out, "no metrics") {
		t.Errorf("nil-registry report = %q", out)
	}
}
