package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestProfileScopesAndFolded: scopes prefix their frame chain, adds
// accumulate per stack, and Folded is sorted by stack name.
func TestProfileScopesAndFolded(t *testing.T) {
	p := NewProfile()
	job := p.Scope("E05")
	hmm := job.Scope("hmm")
	hmm.Add(2.5, "label.3", "compute")
	hmm.Add(1.5, "label.3", "compute")
	hmm.Add(4, "label.0", "deliver")
	p.Add(1, "sweep")

	got := p.Folded()
	want := []StackCost{
		{Stack: "E05;hmm;label.0;deliver", Cost: 4},
		{Stack: "E05;hmm;label.3;compute", Cost: 4},
		{Stack: "sweep", Cost: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("Folded() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Folded()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestProfileWriteFolded pins the folded-stack line format flamegraph
// tools parse: "stack cost\n", sorted.
func TestProfileWriteFolded(t *testing.T) {
	p := NewProfile()
	p.Scope("job").Add(3, "phase")
	p.Add(0.25, "b")
	var b strings.Builder
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	const want = "b 0.25\njob;phase 3\n"
	if b.String() != want {
		t.Errorf("WriteFolded:\n got %q\nwant %q", b.String(), want)
	}
}

// TestProfileFrameSanitization: the folded format's reserved characters
// cannot leak out of frame names.
func TestProfileFrameSanitization(t *testing.T) {
	p := NewProfile()
	p.Scope("a;b c").Add(1, "x y")
	got := p.Folded()
	if len(got) != 1 || got[0].Stack != "a_b_c;x_y" {
		t.Errorf("sanitized stack = %v, want a_b_c;x_y", got)
	}
}

// TestProfileNilAndZero: nil receivers no-op everywhere and zero-cost
// adds are dropped.
func TestProfileNilAndZero(t *testing.T) {
	var p *Profile
	p.Add(1, "x")
	if s := p.Scope("y"); s != nil {
		t.Error("nil.Scope != nil")
	}
	if got := p.Folded(); got != nil {
		t.Errorf("nil.Folded = %v", got)
	}
	if err := p.WriteFolded(nil); err != nil {
		t.Errorf("nil.WriteFolded = %v", err)
	}
	q := NewProfile()
	q.Add(0, "dropped")
	if got := q.Folded(); len(got) != 0 {
		t.Errorf("zero-cost add recorded: %v", got)
	}
}

// TestProfileConcurrentAdds hammers one root from many scoped views;
// under -race this is the data-race check for the shared accumulator.
func TestProfileConcurrentAdds(t *testing.T) {
	p := NewProfile()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := p.Scope("shared")
			for i := 0; i < per; i++ {
				s.Add(1, "leaf")
			}
		}()
	}
	wg.Wait()
	got := p.Folded()
	if len(got) != 1 || got[0].Cost != workers*per {
		t.Errorf("Folded = %v, want one stack with cost %d", got, workers*per)
	}
}
