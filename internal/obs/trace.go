package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one structured trace record. The fixed field set keeps
// emission allocation-free up to the sink (no maps, no interfaces);
// Detail carries free-form payloads such as rendered memory layouts.
type Event struct {
	// Seq is a per-Observer sequence number, assigned at emission.
	Seq int64 `json:"seq"`
	// Sim identifies the emitting component: "dbsp", "hmm", "bt",
	// "self", "memtrace", ...
	Sim string `json:"sim,omitempty"`
	// Kind names the event: "round", "superstep", "swap", "phase",
	// "fig2.round", "fig4.layout", ...
	Kind string `json:"kind"`
	// Phase names a simulator phase for phase-scoped events.
	Phase string `json:"phase,omitempty"`
	// Step and Label identify the guest superstep, when applicable.
	Step  int `json:"step,omitempty"`
	Label int `json:"label,omitempty"`
	// Round is the simulator round number, when applicable.
	Round int64 `json:"round,omitempty"`
	// N is a generic count: messages routed, cluster blocks, ...
	N int64 `json:"n,omitempty"`
	// Cost is the charged model time attributed to the event.
	Cost float64 `json:"cost,omitempty"`
	// Detail is a free-form payload.
	Detail string `json:"detail,omitempty"`
}

// Sink consumes trace events. Emit must be safe for sequential use by
// one goroutine; sinks used across goroutines synchronise internally.
type Sink interface {
	Emit(Event)
	Close() error
}

// NopSink discards every event. The zero value is ready to use.
type NopSink struct{}

// Emit discards the event.
func (NopSink) Emit(Event) {}

// Close is a no-op.
func (NopSink) Close() error { return nil }

// SinkFunc adapts a function to the Sink interface (Close no-ops).
type SinkFunc func(Event)

// Emit invokes the function.
func (f SinkFunc) Emit(e Event) { f(e) }

// Close is a no-op.
func (f SinkFunc) Close() error { return nil }

// RingSink keeps the last cap events in memory.
type RingSink struct {
	mu      sync.Mutex
	buf     []Event // guarded by mu
	next    int     // guarded by mu
	wrapped bool    // guarded by mu
	dropped int64   // guarded by mu
}

// NewRingSink returns a ring buffer holding the last cap events
// (cap >= 1).
func NewRingSink(cap int) *RingSink {
	if cap < 1 {
		cap = 1
	}
	return &RingSink{buf: make([]Event, cap)}
}

// Emit stores the event, evicting the oldest when full (no-op on a
// nil sink).
func (s *RingSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.wrapped {
		s.dropped++
	}
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.wrapped = true
	}
	s.mu.Unlock()
}

// Events returns the buffered events in arrival order (nil on a nil
// sink).
func (s *RingSink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.wrapped {
		return append([]Event(nil), s.buf[:s.next]...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Dropped returns how many events were evicted (0 on a nil sink).
func (s *RingSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close is a no-op.
func (s *RingSink) Close() error { return nil }

// JSONLSink writes one JSON object per event, newline-separated. Errors
// are sticky: the first write/encode error stops further output and is
// reported by Close (and Err).
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer // guarded by mu
	err error         // guarded by mu
}

// NewJSONLSink wraps w in a buffered JSONL writer. Close flushes; the
// caller owns closing w itself if it is a file.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit writes the event as one JSONL line (no-op on a nil sink).
func (s *JSONLSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	raw, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Err returns the sticky error, if any (nil on a nil sink).
func (s *JSONLSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes the buffer and returns the sticky error (no-op on a
// nil sink).
func (s *JSONLSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// MultiSink fans every event out to all sinks.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ParseJSONL decodes a JSONL event stream (the JSONLSink format), for
// round-trip tests and offline tooling. Blank lines are skipped.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Observer bundles a metric registry and a trace sink. Every
// instrumentation point accepts a possibly-nil *Observer: with a nil
// observer (or nil Reg/Sink fields) the instrumented code degrades to
// nil checks and no-op metric methods, keeping the disabled-path
// overhead near zero.
type Observer struct {
	// Reg receives metrics; may be nil.
	Reg *Registry
	// Sink receives trace events; may be nil.
	Sink Sink
	// Prof receives span-stack cost attributions; may be nil. It is a
	// scope of the run's root profile (the sweep engine scopes one view
	// per job under the job's ID).
	Prof *Profile

	seq atomic.Int64
}

// New returns an Observer over reg and sink (either may be nil).
func New(reg *Registry, sink Sink) *Observer {
	return &Observer{Reg: reg, Sink: sink}
}

// Counter resolves a counter, or nil when metrics are off.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// FloatCounter resolves a float counter, or nil when metrics are off.
func (o *Observer) FloatCounter(name string) *FloatCounter {
	if o == nil {
		return nil
	}
	return o.Reg.FloatCounter(name)
}

// Gauge resolves a gauge, or nil when metrics are off.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name)
}

// Histogram resolves a histogram, or nil when metrics are off.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name)
}

// Profile returns the observer's cost profile, or nil when span-stack
// profiling is off — instrumented code keeps the returned scope and
// calls its nil-safe Add.
func (o *Observer) Profile() *Profile {
	if o == nil {
		return nil
	}
	return o.Prof
}

// Tracing reports whether events reach a sink — instrumented code
// guards per-event field construction behind it.
func (o *Observer) Tracing() bool { return o != nil && o.Sink != nil }

// Emit stamps the event with the next sequence number and forwards it
// to the sink. No-op without a sink.
func (o *Observer) Emit(e Event) {
	if o == nil || o.Sink == nil {
		return
	}
	e.Seq = o.seq.Add(1)
	o.Sink.Emit(e)
}

// Close closes the sink, if any.
func (o *Observer) Close() error {
	if o == nil || o.Sink == nil {
		return nil
	}
	return o.Sink.Close()
}
