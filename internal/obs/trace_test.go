package obs

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(nil, sink)
	in := []Event{
		{Sim: "hmm", Kind: "round", Step: 3, Label: 2, Round: 17, N: 4, Cost: 12.5},
		{Sim: "bt", Kind: "phase", Phase: "deliver.sort", Cost: 0.25},
		{Sim: "memtrace", Kind: "fig4.layout", Phase: "UNPACK(0)", Detail: "P0 P1 __ __"},
	}
	for _, e := range in {
		o.Emit(e)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip produced %d events, want %d", len(out), len(in))
	}
	for i := range in {
		want := in[i]
		want.Seq = int64(i + 1) // Emit stamps sequence numbers
		if !reflect.DeepEqual(out[i], want) {
			t.Errorf("event %d = %+v, want %+v", i, out[i], want)
		}
	}
}

func TestJSONLStickyError(t *testing.T) {
	sink := NewJSONLSink(failWriter{})
	for i := 0; i < 100; i++ { // enough to overflow the bufio buffer
		sink.Emit(Event{Kind: "k", Detail: string(make([]byte, 2048))})
	}
	if sink.Err() == nil {
		t.Fatal("expected sticky write error")
	}
	if sink.Close() == nil {
		t.Fatal("Close must report the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestRingSinkWraps(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(Event{Round: int64(i)})
	}
	got := s.Events()
	if len(got) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Round != want {
			t.Errorf("event %d round = %d, want %d", i, got[i].Round, want)
		}
	}
	if s.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", s.Dropped())
	}
}

func TestMultiAndFuncSinks(t *testing.T) {
	var calls []string
	a := SinkFunc(func(e Event) { calls = append(calls, "a:"+e.Kind) })
	ring := NewRingSink(4)
	m := MultiSink(a, ring)
	m.Emit(Event{Kind: "x"})
	m.Emit(Event{Kind: "y"})
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if len(calls) != 2 || calls[0] != "a:x" || calls[1] != "a:y" {
		t.Errorf("func sink calls = %v", calls)
	}
	if got := len(ring.Events()); got != 2 {
		t.Errorf("ring received %d events, want 2", got)
	}
}

func TestObserverSequencing(t *testing.T) {
	ring := NewRingSink(8)
	o := New(NewRegistry(), ring)
	o.Emit(Event{Kind: "a"})
	o.Emit(Event{Kind: "b"})
	ev := ring.Events()
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Errorf("sequence numbers = %d,%d, want 1,2", ev[0].Seq, ev[1].Seq)
	}
	if !o.Tracing() {
		t.Error("observer with sink must report tracing")
	}
	if New(NewRegistry(), nil).Tracing() {
		t.Error("observer without sink must not report tracing")
	}
}
