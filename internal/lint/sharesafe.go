package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShareSafe enforces the no-write-after-escape discipline the sharded
// worker-pool engine (ROADMAP: v = 2^20 processors) depends on: once a
// value reachable from one processor/handler context has been handed
// to another goroutine — spawned with it, sent over a channel, or
// captured by a closure that was spawned/sent — the handing-off
// function must not keep writing it. Such writes race with the
// receiver outside any superstep barrier, which is exactly the
// cross-submachine sharing the paper's simulation theorems exclude and
// the -race job only catches when the schedule cooperates.
//
// The analyzer is flow-sensitive over the lint.CFG/lint.Dataflow
// layer: escape events (go statements, channel sends) generate
// per-variable escape facts, reaching definitions propagate captures
// through values a closure was stored into, and every write reachable
// after an escape fact is flagged. Two escape flavours are tracked:
//
//   - captured: the variable's own storage is shared (closure capture,
//     &v). Every subsequent write races — rebinding included.
//   - handed off: the value's backing store is shared (slice, map,
//     pointer passed as argument or sent). Element, field and deref
//     writes race; rebinding the variable to a fresh value is safe and
//     clears the fact, except self-appends, which may write the
//     escaped backing array.
//
// A <wg>.Wait() call is treated as a join barrier and clears
// goroutine-escape facts (channel-send facts persist: the receiver may
// still hold the value). The analysis is intra-procedural: escapes
// through callees, and writes performed by later-running closures, are
// out of scope (DESIGN §10).
var ShareSafe = &Analyzer{
	Name:  "sharesafe",
	Doc:   "values handed to a goroutine, channel, or spawned/sent closure must not be written afterwards by the handing-off function",
	Layer: LayerDataflow,
	Run:   runShareSafe,
}

// escKind distinguishes how a variable escaped.
type escKind uint8

const (
	// escCapturedGo: variable storage shared with a spawned goroutine.
	escCapturedGo escKind = iota
	// escCapturedChan: variable storage shared through a sent closure.
	escCapturedChan
	// escValueGo: value backing store handed to a spawned goroutine.
	escValueGo
	// escValueChan: value backing store sent over a channel.
	escValueChan
)

func (k escKind) captured() bool { return k == escCapturedGo || k == escCapturedChan }
func (k escKind) viaGo() bool    { return k == escCapturedGo || k == escValueGo }

func (k escKind) how() string {
	switch k {
	case escCapturedGo:
		return "captured by a goroutine's closure"
	case escCapturedChan:
		return "captured by a closure sent over a channel"
	case escValueGo:
		return "handed to a goroutine"
	default:
		return "sent over a channel"
	}
}

// escFact is one escape fact: variable v escaped as kind.
type escFact struct {
	v    *types.Var
	kind escKind
}

// escState maps live escape facts to the earliest escape position,
// which the finding message cites.
type escState map[escFact]token.Pos

func (s escState) clone() escState {
	c := make(escState, len(s))
	for f, p := range s {
		c[f] = p
	}
	return c
}

func (s escState) equal(t escState) bool {
	if len(s) != len(t) {
		return false
	}
	for f, p := range s {
		tp, ok := t[f]
		if !ok || tp != p {
			return false
		}
	}
	return true
}

func runShareSafe(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				shareSafeFn(pass, fn)
			}
		}
		// Function literals run on their own schedule; each body is its
		// own escape scope.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				shareSafeFn(pass, lit)
			}
			return true
		})
	}
}

func shareSafeFn(pass *Pass, fn ast.Node) {
	d := NewDataflow(pass.Pkg, fn)
	if d == nil {
		return
	}
	transfer := func(s escState, n ast.Node) escState {
		gen := escapeEvents(d, n)
		kills := shareSafeKills(d, n)
		killsGo := killsGoFacts(n)
		if len(gen) == 0 && len(kills) == 0 && !killsGo {
			return s
		}
		out := s.clone()
		if killsGo {
			for f := range out {
				if f.kind.viaGo() {
					delete(out, f)
				}
			}
		}
		for _, v := range kills {
			// Rebinding replaces the value; only the handed-off flavour
			// is cleared (captured storage stays shared).
			delete(out, escFact{v, escValueGo})
			delete(out, escFact{v, escValueChan})
		}
		for f, p := range gen {
			if old, ok := out[f]; !ok || p < old {
				out[f] = p
			}
		}
		return out
	}
	in := SolveForward(d.CFG, FlowProblem[escState]{
		Boundary:    escState{},
		Unreachable: escState{},
		Merge: func(a, b escState) escState {
			m := a.clone()
			for f, p := range b {
				if old, ok := m[f]; !ok || p < old {
					m[f] = p
				}
			}
			return m
		},
		Transfer: transfer,
		Equal:    func(a, b escState) bool { return a.equal(b) },
	})
	for _, blk := range d.CFG.Blocks {
		s := in[blk]
		for _, n := range blk.Nodes {
			checkShareSafeWrites(pass, d, s, n)
			s = transfer(s, n)
		}
	}
}

// escapeEvents returns the escape facts node n generates.
func escapeEvents(d *Dataflow, n ast.Node) escState {
	gen := escState{}
	add := func(v *types.Var, captured, viaGo bool, pos token.Pos) {
		var k escKind
		switch {
		case captured && viaGo:
			k = escCapturedGo
		case captured:
			k = escCapturedChan
		case viaGo:
			k = escValueGo
		default:
			k = escValueChan
		}
		f := escFact{v, k}
		if old, ok := gen[f]; !ok || pos < old {
			gen[f] = pos
		}
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		call := n.Call
		visited := map[*types.Var]bool{}
		escapeRoots(d, n, call.Fun, true, true, visited, add)
		for _, arg := range call.Args {
			escapeRoots(d, n, arg, false, true, visited, add)
		}
	case *ast.SendStmt:
		visited := map[*types.Var]bool{}
		escapeRoots(d, n, n.Value, false, false, visited, add)
	}
	return gen
}

// escapeRoots walks one escaping expression and reports the local
// variables whose storage (captured=true) or backing value
// (captured=false) becomes shared. asFun marks the function position
// of a go statement, where a plain identifier is a func value whose
// reaching closure definitions capture, rather than a handed-off
// value.
func escapeRoots(d *Dataflow, at ast.Node, e ast.Expr, asFun, viaGo bool,
	visited map[*types.Var]bool, add func(v *types.Var, captured, viaGo bool, pos token.Pos)) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		for _, v := range FreeVars(d.Pkg, d.Fn, e) {
			add(v, true, viaGo, e.Pos())
		}
	case *ast.Ident:
		v := d.localVar(e)
		if v == nil || visited[v] {
			return
		}
		visited[v] = true
		if !asFun && refLike(v.Type()) {
			add(v, false, viaGo, e.Pos())
		}
		// Definitions reaching the event may hold closures (or
		// composites holding closures) whose captures escape with the
		// value — the jobs-slice-of-handlers pattern.
		for _, site := range d.ReachingDefs(at, v) {
			if expr, ok := site.(ast.Expr); ok {
				escapeIndirect(d, at, expr, viaGo, visited, add)
			}
		}
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return
		}
		if id := rootIdent(e.X); id != nil {
			if v := d.localVar(id); v != nil && !visited[v] {
				visited[v] = true
				// &v shares the variable's own storage.
				add(v, true, viaGo, e.Pos())
			}
		}
		escapeIndirect(d, at, e.X, viaGo, visited, add)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			escapeRoots(d, at, elt, false, viaGo, visited, add)
		}
	case *ast.SliceExpr:
		escapeRoots(d, at, e.X, false, viaGo, visited, add)
	}
}

// escapeIndirect chases closures nested in a definition or operand:
// function literals capture, composites may hold function literals.
func escapeIndirect(d *Dataflow, at ast.Node, e ast.Expr, viaGo bool,
	visited map[*types.Var]bool, add func(v *types.Var, captured, viaGo bool, pos token.Pos)) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		for _, v := range FreeVars(d.Pkg, d.Fn, e) {
			add(v, true, viaGo, e.Pos())
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			escapeIndirect(d, at, elt, viaGo, visited, add)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			escapeIndirect(d, at, e.X, viaGo, visited, add)
		}
	}
}

// shareSafeKills returns variables wholly rebound by n (the handed-off
// escape flavour is cleared for them).
func shareSafeKills(d *Dataflow, n ast.Node) []*types.Var {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		v := d.localVar(id)
		if v == nil {
			continue
		}
		if i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) && selfAppend(d.Pkg, as.Rhs[i], v) {
			continue // v = append(v, ...) keeps the escaped backing array
		}
		out = append(out, v)
	}
	return out
}

// killsGoFacts reports whether n contains a <wg>.Wait() call — the
// join barrier after which spawned goroutines are done.
func killsGoFacts(n ast.Node) bool {
	found := false
	scanBlockNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(call.Args) == 0 {
			found = true
		}
		return true
	})
	return found
}

// selfAppend reports whether e is append(v, ...) for the same v.
func selfAppend(pkg *Package, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && objectOf(pkg, arg) == v
}

// checkShareSafeWrites flags writes in n that touch escaped state,
// given the escape facts at n's entry.
func checkShareSafeWrites(pass *Pass, d *Dataflow, s escState, n ast.Node) {
	if len(s) == 0 {
		return
	}
	report := func(id *ast.Ident, f escFact, escPos token.Pos, mutation string) {
		pass.Reportf(id.Pos(),
			"%q was %s at line %d; %s afterwards races with the receiving goroutine — hand off a copy, or synchronize before reusing it",
			id.Name, f.kind.how(), pass.Pkg.Fset.Position(escPos).Line, mutation)
	}
	checkWrite := func(lhs ast.Expr, rebind bool, rhs ast.Expr) {
		id := rootIdent(lhs)
		if id == nil || id.Name == "_" {
			return
		}
		v := d.localVar(id)
		if v == nil {
			return
		}
		_, isIdent := ast.Unparen(lhs).(*ast.Ident)
		for _, kind := range []escKind{escCapturedGo, escCapturedChan, escValueGo, escValueChan} {
			f := escFact{v, kind}
			pos, ok := s[f]
			if !ok {
				continue
			}
			switch {
			case kind.captured():
				report(id, f, pos, "writing it")
				return
			case !isIdent:
				report(id, f, pos, "writing through it")
				return
			case rebind && rhs != nil && selfAppend(pass.Pkg, rhs, v):
				report(id, f, pos, "appending to it in place")
				return
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Lhs) == len(n.Rhs) {
				rhs = n.Rhs[i]
			}
			checkWrite(lhs, true, rhs)
		}
	case *ast.IncDecStmt:
		checkWrite(n.X, false, nil)
	}
}
