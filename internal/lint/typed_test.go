package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadTemp writes files (name -> source) into a fresh temp module and
// loads it, giving each test an isolated package set.
func loadTemp(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp.example\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir, "tmp.example")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestTypeCheckConstantFolding: the typed pass must fold constants
// assembled from module-local declarations — the mechanism stepshape
// and costcharge lean on.
func TestTypeCheckConstantFolding(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"a/a.go": `package a

const Base = 1 << 3

const Name = "sim" + ".cost."
`,
		"b/b.go": `package b

import "tmp.example/a"

var V = a.Base * 2

var S = a.Name + "compute"
`,
	})
	TypeCheck(pkgs)
	var b *Package
	for _, p := range pkgs {
		if p.Name == "b" {
			b = p
		}
	}
	if b == nil || b.Info == nil {
		t.Fatal("package b not type-checked")
	}
	var intGot, strGot bool
	for _, file := range b.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 1 {
				return true
			}
			switch vs.Names[0].Name {
			case "V":
				if v, ok := constIntOf(b, vs.Values[0]); !ok || v != 16 {
					t.Errorf("constIntOf(a.Base * 2) = (%d, %v), want (16, true)", v, ok)
				}
				intGot = true
			case "S":
				if s, ok := constStringOf(b, vs.Values[0]); !ok || s != "sim.cost.compute" {
					t.Errorf("constStringOf(a.Name + ...) = (%q, %v), want (sim.cost.compute, true)", s, ok)
				}
				strGot = true
			}
			return true
		})
	}
	if !intGot || !strGot {
		t.Fatalf("did not reach both value specs (int %v, string %v)", intGot, strGot)
	}
}

// TestTypeCheckFakeImports: an out-of-module import resolves to a
// placeholder package, but the import reference itself still yields the
// real path through *types.PkgName — even behind an alias. That is the
// property detseed's time.Now / rand.Intn detection rests on.
func TestTypeCheckFakeImports(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"c/c.go": `package c

import clock "time"

var T = clock.Now()
`,
	})
	TypeCheck(pkgs)
	p := pkgs[0]
	if p.Types == nil {
		t.Fatal("package not type-checked")
	}
	var resolved bool
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgSelCall(p, call)
			if !ok {
				t.Error("pkgSelCall did not resolve clock.Now()")
				return true
			}
			if path != "time" || name != "Now" {
				t.Errorf("pkgSelCall = (%q, %q), want (time, Now)", path, name)
			}
			resolved = true
			return true
		})
	}
	if !resolved {
		t.Fatal("no call expression found")
	}
}

// TestLoadBuildTags: files excluded by //go:build must not be loaded
// (their dead declarations would poison the typed pass), while files
// whose constraint is satisfied load normally.
func TestLoadBuildTags(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"d/keep.go": `package d

var Keep = 1
`,
		"d/gen.go": `//go:build ignore

package main

var Dropped = 2
`,
		"d/recent.go": `//go:build go1.1

package d

var Recent = 3
`,
	})
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1 (the ignore-tagged main must be dropped)", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "d" {
		t.Fatalf("loaded package %q, want d", p.Name)
	}
	var names []string
	for _, file := range p.Files {
		names = append(names, filepath.Base(p.Fset.Position(file.Pos()).Filename))
	}
	if len(names) != 2 {
		t.Fatalf("package d has files %v, want [gen.go excluded; keep.go recent.go kept]", names)
	}
}

// TestDirectives: a justified //lint:ignore suppresses the finding on
// its line and the next; a reason-less one is malformed; one that
// suppresses nothing is stale.
func TestDirectives(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"internal/e/e.go": `package e

import "time"

// Stamp is exempted with a recorded justification.
func Stamp() int64 {
	//lint:ignore detseed test fixture justification
	return time.Now().UnixNano()
}

//lint:ignore detseed
func Bare() int64 {
	return time.Now().UnixNano()
}

//lint:ignore detseed nothing here uses the clock
func Quiet() int { return 0 }
`,
	})
	findings := Run(pkgs, []*Analyzer{DetSeed})

	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	// Expect: the Bare time.Now finding survives (its directive is
	// malformed), plus one malformed-directive and one stale-directive
	// hygiene finding. The Stamp finding must be suppressed.
	var detseed, malformed, stale int
	for _, f := range findings {
		switch {
		case f.Analyzer == "detseed":
			detseed++
		case f.Analyzer == "directive" && strings.Contains(f.Message, "malformed"):
			malformed++
		case f.Analyzer == "directive" && strings.Contains(f.Message, "stale"):
			stale++
		}
	}
	if detseed != 1 || malformed != 1 || stale != 1 {
		t.Errorf("findings:\n  %s\nwant one surviving detseed, one malformed, one stale",
			strings.Join(got, "\n  "))
	}
}
