package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"runtime"
	"testing"
)

// TestBuildTagSatisfied pins the tag vocabulary Load understands: the
// host GOOS/GOARCH, the unix umbrella, toolchain tags, and go1.N
// release gates. Anything else — including "ignore" — is unsatisfied,
// which is what makes //go:build ignore exclude generator scripts.
func TestBuildTagSatisfied(t *testing.T) {
	cases := []struct {
		tag  string
		want bool
	}{
		{runtime.GOOS, true},
		{runtime.GOARCH, true},
		{"gc", true},
		{"cgo", true},
		{"unix", unixGOOS[runtime.GOOS]},
		{"plan9", runtime.GOOS == "plan9"},
		{"ignore", false},
		{"purego", false},
		{"mips64le", runtime.GOARCH == "mips64le"},
		{"go1.1", true},
		{"go1.22", true}, // the module's own floor
		{"go1.9999", false},
		{"go1.x", false}, // malformed release tag
	}
	for _, tc := range cases {
		if got := buildTagSatisfied(tc.tag); got != tc.want {
			t.Errorf("buildTagSatisfied(%q) = %v, want %v", tc.tag, got, tc.want)
		}
	}
}

// TestExcludedByBuildTags drives the constraint evaluator over whole
// files: satisfied, unsatisfied, and negated //go:build lines, legacy
// // +build comments (not constraints since Go 1.17 — ignored), and
// malformed expressions (kept, like a missing constraint).
func TestExcludedByBuildTags(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		excluded bool
	}{
		{"no constraint", "package q\n", false},
		{"go:build ignore", "//go:build ignore\n\npackage q\n", true},
		{"negated ignore", "//go:build !ignore\n\npackage q\n", false},
		{"host GOOS", fmt.Sprintf("//go:build %s\n\npackage q\n", runtime.GOOS), false},
		{"negated host GOOS", fmt.Sprintf("//go:build !%s\n\npackage q\n", runtime.GOOS), true},
		{"other GOOS pair", "//go:build plan9 && wasm\n\npackage q\n", runtime.GOOS != "plan9" || runtime.GOARCH != "wasm"},
		{"satisfied release gate", "//go:build go1.1\n\npackage q\n", false},
		{"future release gate", "//go:build go1.9999\n\npackage q\n", true},
		{"negated future release", "//go:build !go1.9999\n\npackage q\n", false},
		{"or rescues ignore", "//go:build ignore || go1.1\n\npackage q\n", false},
		{"and with ignore", "//go:build go1.1 && ignore\n\npackage q\n", true},
		{"legacy +build only", "// +build ignore\n\npackage q\n", false},
		{"constraint after package clause", "package q\n\n//go:build ignore\n\nvar X = 1\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, "q.go", tc.src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := excludedByBuildTags(file); got != tc.excluded {
				t.Errorf("excludedByBuildTags(%s) = %v, want %v", tc.name, got, tc.excluded)
			}
		})
	}
}
