package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NilGuard enforces the internal/obs convention that makes disabled
// instrumentation free: every exported method with a pointer receiver
// on an exported type must be safe to call on a nil receiver, so
// instrumented hot paths pay only a nil check when observability is
// off. A method satisfies the convention when it
//
//   - begins with a guard whose leading condition is <recv> == nil
//     (possibly ||-extended: "if o == nil || o.Sink == nil { return }"),
//   - is a single return whose expression short-circuits on the
//     receiver ("return o != nil && ..."), or
//   - is a single statement delegating to another method of the same
//     receiver (which carries its own guard), or never uses the
//     receiver at all.
var NilGuard = &Analyzer{
	Name:  "nilguard",
	Doc:   "exported pointer-receiver methods in internal/obs must begin with a nil-receiver guard",
	Layer: LayerParse,
	Run:   runNilGuard,
}

func runNilGuard(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
				continue
			}
			if !fn.Name.IsExported() {
				continue
			}
			recvName, typeName, ptr := receiver(fn)
			if !ptr || !ast.IsExported(typeName) {
				continue
			}
			if recvName == "" || recvName == "_" || !usesIdent(fn.Body, recvName) {
				continue // receiver never dereferenced: nil-safe as is
			}
			if hasNilGuard(fn.Body, recvName) {
				continue
			}
			pass.Reportf(fn.Pos(),
				"exported method (*%s).%s must begin with a nil-receiver guard (`if %s == nil`) so disabled instrumentation stays free",
				typeName, fn.Name.Name, recvName)
		}
	}
}

// receiver extracts the receiver name, base type name and pointer-ness
// of a method declaration.
func receiver(fn *ast.FuncDecl) (name, typeName string, ptr bool) {
	f := fn.Recv.List[0]
	if len(f.Names) == 1 {
		name = f.Names[0].Name
	}
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return name, typeName, ptr
}

// usesIdent reports whether the identifier name occurs anywhere in n.
func usesIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// hasNilGuard reports whether body starts with an accepted guard form
// for receiver recv.
func hasNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return true // empty body: nothing to protect
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		// if recv == nil { ...; return } — the leading ||-operand must
		// be the receiver nil test, and the guard must leave the method.
		if condLeadsWithNilTest(first.Cond, recv, token.EQL) && endsInReturn(first.Body) {
			return true
		}
	case *ast.ReturnStmt:
		// Single-statement method: return recv != nil && ... guards by
		// short-circuit.
		if len(body.List) == 1 && len(first.Results) == 1 &&
			condLeadsWithNilTest(first.Results[0], recv, token.NEQ) {
			return true
		}
		if len(body.List) == 1 && len(first.Results) == 1 && delegates(first.Results[0], recv) {
			return true
		}
	case *ast.ExprStmt:
		// Single-statement delegation: recv.Other(...), which guards.
		if len(body.List) == 1 && delegates(first.X, recv) {
			return true
		}
	}
	return false
}

// condLeadsWithNilTest reports whether the leftmost operand of cond
// (descending through the matching short-circuit operator: || for
// == guards, && for != guards) is `recv <op> nil`.
func condLeadsWithNilTest(cond ast.Expr, recv string, op token.Token) bool {
	for {
		b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if (op == token.EQL && b.Op == token.LOR) || (op == token.NEQ && b.Op == token.LAND) {
			cond = b.X
			continue
		}
		if b.Op != op {
			return false
		}
		x, xOK := ast.Unparen(b.X).(*ast.Ident)
		y, yOK := ast.Unparen(b.Y).(*ast.Ident)
		return xOK && yOK && x.Name == recv && y.Name == "nil"
	}
}

// endsInReturn reports whether the guard body's last statement leaves
// the function.
func endsInReturn(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// delegates reports whether e is a call on a method of recv
// (recv.Method(...)), which inherits that method's guard.
func delegates(e ast.Expr, recv string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recv
}
