package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestTopLevelPhase(t *testing.T) {
	cases := []struct {
		name  string
		phase string
		ok    bool
	}{
		{"hmm.cost.compute", "compute", true},
		{"bt.cost.swap", "swap", true},
		{"hmm.cost.total", "", false},       // the total is the sum, not a phase
		{"bt.cost.deliver.sort", "", false}, // sub-phase refinement
		{"dbsp.lambda.label.0", "", false},  // not a cost metric
		{"a.b.cost.compute", "", false},     // dotted sim component
		{"hmm.cost.", "", false},            // empty phase
		{".cost.compute", "", false},        // empty sim component
		{"hmm.blocks.cost", "", false},      // ".cost" suffix, not ".cost." infix
	}
	for _, c := range cases {
		phase, ok := topLevelPhase(c.name)
		if phase != c.phase || ok != c.ok {
			t.Errorf("topLevelPhase(%q) = (%q, %v), want (%q, %v)",
				c.name, phase, ok, c.phase, c.ok)
		}
	}
}

func TestModulePath(t *testing.T) {
	dir := t.TempDir()
	gomod := "// a comment\nmodule example.com/mymod\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ModulePath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != "example.com/mymod" {
		t.Errorf("ModulePath = %q, want example.com/mymod", got)
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := FindModuleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := filepath.EvalSymlinks(root)
	gotEval, _ := filepath.EvalSymlinks(got)
	if gotEval != want {
		t.Errorf("FindModuleRoot = %q, want %q", got, root)
	}
}

func TestImportName(t *testing.T) {
	src := `package p

import (
	"fmt"
	aliased "os"
	"repro/internal/dbsp"
)

var _ = fmt.Sprint
var _ = aliased.Getpid
var _ = dbsp.Log2
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ path, want string }{
		{"fmt", "fmt"},
		{"os", "aliased"},
		{"repro/internal/dbsp", "dbsp"}, // default name = last path element
		{"not/imported", ""},
	}
	for _, c := range cases {
		if got := importName(file, c.path); got != c.want {
			t.Errorf("importName(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

// TestLoadSkipsTestdataAndTests: the loader must exclude _test.go
// files and testdata trees — fixture code is intentionally bad and
// must never reach a real lint run.
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modpath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modpath)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if filepath.Base(pkg.Dir) == "testdata" {
			t.Errorf("loader picked up testdata package %s", pkg.Path)
		}
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			if len(name) > 8 && name[len(name)-8:] == "_test.go" {
				t.Errorf("loader picked up test file %s", name)
			}
		}
	}
}
