package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// PanicMsg enforces the panic-message convention of the internal
// packages: model violations panic (they are caller bugs, not runtime
// conditions), and every panic message identifies the failing layer
// with a "<pkg>: " prefix so a guest-handler stack trace names the
// component that rejected the operation. Bare panic(err) and
// unprefixed literals are findings. The prefix must be statically
// visible: a string literal, a "<pkg>: " + x concatenation, or a
// fmt.Sprintf/fmt.Errorf whose format literal carries the prefix.
var PanicMsg = &Analyzer{
	Name:  "panicmsg",
	Doc:   "panics in internal/ must carry a \"<pkg>: \"-prefixed message",
	Layer: LayerParse,
	Run:   runPanicMsg,
}

func runPanicMsg(pass *Pass) {
	path := pass.Pkg.Path
	if !strings.Contains(path, "/internal/") && !strings.HasPrefix(path, "internal/") {
		return
	}
	prefix := pass.Pkg.Name + ": "
	for _, file := range pass.Pkg.Files {
		fmtName := importName(file, "fmt")
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "panic" || len(call.Args) != 1 {
				return true
			}
			msg, known := leadingString(call.Args[0], fmtName)
			switch {
			case !known:
				pass.Reportf(call.Pos(),
					"panic argument must be a %q-prefixed message (string literal, %q + ..., or fmt.Sprintf/Errorf with a prefixed format); got a value the linter cannot see a prefix in",
					prefix, prefix)
			case !strings.HasPrefix(msg, prefix):
				pass.Reportf(call.Pos(),
					"panic message %q must start with the package prefix %q", msg, prefix)
			}
			return true
		})
	}
}

// leadingString resolves the statically-visible leading string of e:
// the literal itself, the left edge of a + concatenation chain, or the
// format literal of a fmt.Sprintf/fmt.Errorf call.
func leadingString(e ast.Expr, fmtName string) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.BasicLit:
			if x.Kind != token.STRING {
				return "", false
			}
			s, ok := stringLit(x)
			return s, ok
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return "", false
			}
			e = x.X
		case *ast.CallExpr:
			if fmtName != "" && (isPkgCall(x, fmtName, "Sprintf") || isPkgCall(x, fmtName, "Errorf")) &&
				len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return "", false
		default:
			return "", false
		}
	}
}
