package lint

import "testing"

// BenchmarkLintSuite measures a full dbsplint run over the repository's
// own module — load, type-check, and every analyzer including the
// dataflow layer. The load is done once outside the timed loop so the
// number tracks analysis cost, which is what grows with new analyzers;
// BenchmarkLintLoad isolates the parse+typecheck front end.
func BenchmarkLintSuite(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	modpath, err := ModulePath(root)
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := Load(root, modpath)
	if err != nil {
		b.Fatal(err)
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			b.Fatalf("repo not clean: %v", findings[0])
		}
	}
}

// BenchmarkLintInterproc isolates the interprocedural layer: call
// graph, SCC decomposition, and the bottom-up summary fixpoint over
// the repository's own module. The load and type-check happen once
// outside the timed loop, so the number tracks what detflow/floatfold
// add on top of the per-function layers.
func BenchmarkLintInterproc(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	modpath, err := ModulePath(root)
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := Load(root, modpath)
	if err != nil {
		b.Fatal(err)
	}
	TypeCheck(pkgs)
	directives := collectDirectives(pkgs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := NewInterproc(pkgs, directives)
		if len(ip.Summaries) == 0 {
			b.Fatal("no summaries computed")
		}
	}
}

// BenchmarkLintLoad measures the front end alone: walking the module,
// parsing every file, and the dependency-ordered type-check.
func BenchmarkLintLoad(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	modpath, err := ModulePath(root)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pkgs, err := Load(root, modpath)
		if err != nil {
			b.Fatal(err)
		}
		TypeCheck(pkgs)
	}
}
