package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed package: the non-test files of one directory
// grouped by package clause. Test files are excluded — the invariants
// govern shipped code, and tests deliberately construct violations.
type Package struct {
	// Name is the package clause name.
	Name string
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset positions the files.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File

	// Types and Info are the typed view of the package, populated by
	// TypeCheck (which Run calls). Out-of-module imports resolve to
	// empty placeholder packages, so Info is best-effort: analyzers
	// must tolerate missing types for expressions that touch them.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects the type-check diagnostics. With placeholder
	// imports most are expected noise (undeclared stdlib members); they
	// are kept for debugging, not reported as findings.
	TypeErrors []error
}

// Load parses every non-test package under root, a module rooted at
// import path modpath. Directories named testdata or vendor, and
// hidden directories, are skipped — the same pruning the go tool
// applies, and files whose //go:build constraint does not match the
// host platform are excluded the same way the go tool excludes them.
// Files that fail to parse abort the load: dbsplint runs against code
// that must already build.
func Load(root, modpath string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byKey := map[string]*Package{} // dir + "\x00" + pkgname
	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		if excludedByBuildTags(file) {
			return nil
		}
		dir := filepath.Dir(path)
		key := dir + "\x00" + file.Name.Name
		pkg := byKey[key]
		if pkg == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			imp := modpath
			if rel != "." {
				imp = modpath + "/" + filepath.ToSlash(rel)
			}
			pkg = &Package{Name: file.Name.Name, Path: imp, Dir: dir, Fset: fset}
			byKey[key] = pkg
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	pkgs := make([]*Package, 0, len(byKey))
	for _, pkg := range byKey {
		sort.Slice(pkg.Files, func(i, j int) bool {
			return fset.Position(pkg.Files[i].Pos()).Filename <
				fset.Position(pkg.Files[j].Pos()).Filename
		})
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		return pkgs[i].Name < pkgs[j].Name
	})
	return pkgs, nil
}

// excludedByBuildTags reports whether file carries a //go:build
// constraint (above the package clause) that the host platform does
// not satisfy — e.g. //go:build ignore generator scripts or
// other-OS files. Such files are not part of the package the go tool
// builds, so analyzing them would report findings in dead code and,
// worse, let their declarations confuse the typed pass.
func excludedByBuildTags(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: keep the file, like a missing one
			}
			if !expr.Eval(buildTagSatisfied) {
				return true
			}
		}
	}
	return false
}

// unixGOOS is the tag set the go tool folds into "unix".
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// buildTagSatisfied evaluates one build tag against the host
// toolchain: GOOS, GOARCH, their "unix" umbrella, the gc compiler,
// cgo, and go1.N release tags up to the running toolchain's version.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "cgo":
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		want, err := strconv.Atoi(rest)
		if err != nil {
			return false
		}
		return want <= goMinorVersion()
	}
	return false
}

// goMinorVersion extracts N from the running toolchain's go1.N.x
// version string, or a permissive high value for devel toolchains.
func goMinorVersion() int {
	v := runtime.Version() // "go1.24.0", "devel go1.25-abcdef ..."
	if i := strings.Index(v, "go1."); i >= 0 {
		rest := v[i+len("go1."):]
		end := 0
		for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
			end++
		}
		if n, err := strconv.Atoi(rest[:end]); err == nil {
			return n
		}
	}
	return 1 << 30
}

// ModulePath extracts the module path from the go.mod file in dir.
func ModulePath(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == "module" {
			return strings.Trim(fields[1], `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above the working directory")
		}
		dir = parent
	}
}
