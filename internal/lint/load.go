package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed package: the non-test files of one directory
// grouped by package clause. Test files are excluded — the invariants
// govern shipped code, and tests deliberately construct violations.
type Package struct {
	// Name is the package clause name.
	Name string
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset positions the files.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
}

// Load parses every non-test package under root, a module rooted at
// import path modpath. Directories named testdata or vendor, and
// hidden directories, are skipped — the same pruning the go tool
// applies. Files that fail to parse abort the load: dbsplint runs
// against code that must already build.
func Load(root, modpath string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byKey := map[string]*Package{} // dir + "\x00" + pkgname
	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		dir := filepath.Dir(path)
		key := dir + "\x00" + file.Name.Name
		pkg := byKey[key]
		if pkg == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			imp := modpath
			if rel != "." {
				imp = modpath + "/" + filepath.ToSlash(rel)
			}
			pkg = &Package{Name: file.Name.Name, Path: imp, Dir: dir, Fset: fset}
			byKey[key] = pkg
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	pkgs := make([]*Package, 0, len(byKey))
	for _, pkg := range byKey {
		sort.Slice(pkg.Files, func(i, j int) bool {
			return fset.Position(pkg.Files[i].Pos()).Filename <
				fset.Position(pkg.Files[j].Pos()).Filename
		})
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		return pkgs[i].Name < pkgs[j].Name
	})
	return pkgs, nil
}

// ModulePath extracts the module path from the go.mod file in dir.
func ModulePath(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == "module" {
			return strings.Trim(fields[1], `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above the working directory")
		}
		dir = parent
	}
}
