package lint

import (
	"go/ast"
	"go/token"
)

// StepShape statically evaluates dbsp.Program composite literals — and
// every dbsp.Superstep literal the builder functions assemble — through
// go/types constant propagation, enforcing the Section 2 program
// discipline the simulation theorems (5, 10, 12) assume:
//
//   - V must be a positive power of two when constant;
//   - every constant superstep label must lie in [0, log2 V] (the lower
//     bound is checked even when V is unknown);
//   - a Steps literal must end with a Label: 0 superstep (the global
//     barrier of the "any D-BSP computation ends with a global
//     synchronization" assumption) — this subsumes the retired
//     syntactic laststep analyzer;
//   - a TransposeRoute{M1, M2} declaration must have positive factors,
//     and when the literal's V and label are both constant, M1·M2 must
//     equal the superstep's cluster size V/2^label (the Section 5/6
//     routing contract the BT simulator's riffle path relies on).
//
// Non-constant shapes are left to the runtime checks (Program.Validate
// and internal/invariant): the analyzer reports only what it can prove.
var StepShape = &Analyzer{
	Name:  "stepshape",
	Doc:   "dbsp.Program literals must be well-shaped: power-of-two V, labels in [0, log2 V], a final global barrier, transpose factors matching the cluster size",
	Layer: LayerTyped,
	Run:   runStepShape,
}

func runStepShape(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	// Superstep literals nested in a checked Program literal are
	// remembered so the standalone walk does not double-report them.
	inProgram := map[*ast.CompositeLit]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(lit)
			switch {
			case isTypeNamed(t, "internal/dbsp", "Program"):
				checkProgramLit(pass, lit, inProgram)
			case isTypeNamed(t, "internal/dbsp", "Superstep") && !inProgram[lit]:
				v := int64(-1) // V unknown outside a Program literal
				checkSuperstepLit(pass, lit, v, false)
			}
			return true
		})
	}
}

// checkProgramLit verifies one dbsp.Program composite literal.
func checkProgramLit(pass *Pass, lit *ast.CompositeLit, inProgram map[*ast.CompositeLit]bool) {
	pkg := pass.Pkg
	var v int64
	vKnown := false
	if vExpr := fieldValue(lit, "V"); vExpr != nil {
		if x, ok := constIntOf(pkg, vExpr); ok {
			if x < 1 || x&(x-1) != 0 {
				pass.Reportf(vExpr.Pos(),
					"Program V = %d is not a positive power of two; the D-BSP cluster hierarchy needs V = 2^k (paper Section 2)", x)
			} else {
				v, vKnown = x, true
			}
		}
	}
	stepsLit, ok := fieldValue(lit, "Steps").(*ast.CompositeLit)
	if !ok {
		return // Steps built imperatively: runtime checks cover it
	}
	for i, elt := range stepsLit.Elts {
		st, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		inProgram[st] = true
		label, labelKnown := checkSuperstepLit(pass, st, v, vKnown)
		if i == len(stepsLit.Elts)-1 && labelKnown && label != 0 {
			pos := st.Pos()
			if l := superstepLabel(st); l != nil {
				pos = l.Pos()
			}
			pass.Reportf(pos,
				"Program.Steps literal must end with a Label: 0 superstep (global barrier, paper Section 2); last superstep has Label: %d", label)
		}
	}
}

// checkSuperstepLit verifies one dbsp.Superstep composite literal
// against machine size v (vKnown=false when the enclosing Program is
// unknown or non-constant). It returns the superstep's label when that
// is statically known (implicit zero counts as known).
func checkSuperstepLit(pass *Pass, lit *ast.CompositeLit, v int64, vKnown bool) (int64, bool) {
	pkg := pass.Pkg
	label := int64(0)
	labelKnown := true // a missing Label field is an implicit zero
	if labelExpr := superstepLabel(lit); labelExpr != nil {
		label, labelKnown = constIntOf(pkg, labelExpr)
		if labelKnown {
			switch {
			case label < 0:
				pass.Reportf(labelExpr.Pos(),
					"superstep label %d is negative; labels index the cluster hierarchy and must lie in [0, log2 V]", label)
			case vKnown && label > int64(log2(v)):
				pass.Reportf(labelExpr.Pos(),
					"superstep label %d exceeds log2(V) = %d for V = %d; no such cluster level exists (paper Section 2)",
					label, log2(v), v)
			}
		}
	}
	if trExpr := fieldValue(lit, "Transpose"); trExpr != nil {
		checkTransposeLit(pass, trExpr, label, labelKnown, v, vKnown)
	}
	return label, labelKnown
}

// checkTransposeLit verifies a Transpose field value of the form
// &TransposeRoute{...} (or a plain composite literal) when its factors
// are constants.
func checkTransposeLit(pass *Pass, e ast.Expr, label int64, labelKnown bool, v int64, vKnown bool) {
	pkg := pass.Pkg
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return // built elsewhere: the runtime transpose check covers it
	}
	m1Expr, m2Expr := fieldValue(lit, "M1"), fieldValue(lit, "M2")
	if m1Expr == nil && m2Expr == nil && len(lit.Elts) == 2 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			m1Expr, m2Expr = lit.Elts[0], lit.Elts[1]
		}
	}
	m1, ok1 := int64(0), false
	m2, ok2 := int64(0), false
	if m1Expr != nil {
		if m1, ok1 = constIntOf(pkg, m1Expr); ok1 && m1 < 1 {
			pass.Reportf(m1Expr.Pos(), "TransposeRoute.M1 = %d must be positive", m1)
			return
		}
	}
	if m2Expr != nil {
		if m2, ok2 = constIntOf(pkg, m2Expr); ok2 && m2 < 1 {
			pass.Reportf(m2Expr.Pos(), "TransposeRoute.M2 = %d must be positive", m2)
			return
		}
	}
	// An omitted factor is an implicit zero — never a legal transpose.
	if m1Expr == nil {
		m1, ok1 = 0, true
	}
	if m2Expr == nil {
		m2, ok2 = 0, true
	}
	if ok1 && ok2 && (m1 < 1 || m2 < 1) {
		pass.Reportf(lit.Pos(), "TransposeRoute{%d, %d} factors must be positive", m1, m2)
		return
	}
	if ok1 && ok2 && labelKnown && vKnown {
		if cs := v >> uint(label); m1*m2 != cs {
			pass.Reportf(lit.Pos(),
				"TransposeRoute %dx%d does not cover the label-%d cluster: M1*M2 = %d, cluster size is %d (the BT riffle routing of paper Section 6 needs the exact factorization)",
				m1, m2, label, m1*m2, cs)
		}
	}
}

// log2 returns floor(log2(v)) for v >= 1.
func log2(v int64) int64 {
	k := int64(0)
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// fieldValue returns the value of the named field in a keyed composite
// literal, or nil.
func fieldValue(lit *ast.CompositeLit, field string) ast.Expr {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return kv.Value
		}
	}
	return nil
}

// superstepLabel returns the Label expression of a Superstep composite
// literal: the Label key's value in keyed form, the first element in
// positional form, nil when absent (implicit zero).
func superstepLabel(lit *ast.CompositeLit) ast.Expr {
	if len(lit.Elts) == 0 {
		return nil
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
		return fieldValue(lit, "Label")
	}
	return lit.Elts[0]
}
