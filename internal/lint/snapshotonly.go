package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotOnly proves at compile time what TestServeLiveObservability
// checks at runtime (DESIGN §10): code reachable from an obshttp
// handler observes engine state only through snapshot/read-only obs
// APIs and never mutates a metric, profile, or sink. Handlers run on
// net/http's goroutines concurrently with the engine; a mutating call
// on that path would both race and let a monitoring scrape perturb the
// byte-identical sweep results the determinism gate pins.
//
// Seeds are the handler functions registered via HandleFunc/Handle in
// packages whose import path contains "obshttp". From each seed the
// analyzer walks the static call graph across the whole module
// (Pass.All): calls to functions and methods with bodies in the module
// are followed; method calls on obs-package types are checked against
// the read-only allowlist and flagged when mutating. Unknown obs
// methods are flagged too — the allowlist is the contract, so a new
// read-only accessor must be added here deliberately.
//
// Soundness caveats (DESIGN §10): calls through function values and
// interfaces are not devirtualized (the /debug/progress endpoint's
// Options.Progress func field is invisible to this analyzer — the
// runtime test still covers it), and out-of-module callees resolve to
// placeholders and are skipped.
var SnapshotOnly = &Analyzer{
	Name:  "snapshotonly",
	Doc:   "code reachable from obshttp handlers calls only read-only obs APIs, never mutating ones",
	Layer: LayerDataflow,
	Run:   runSnapshotOnly,
}

// obsReadOnly is the allowlist of obs-package methods a handler path
// may call. Everything else on an obs type is treated as mutating.
var obsReadOnly = map[string]bool{
	"Snapshot": true, "Value": true, "Count": true, "Sum": true,
	"Buckets": true, "Quantile": true, "Folded": true, "WriteFolded": true,
	"Events": true, "Dropped": true, "Err": true, "Tracing": true,
	"Scope": true, "Profile": true,
}

func runSnapshotOnly(pass *Pass) {
	// Seeds live in obshttp packages; running only there keeps the
	// module-wide walk single-shot and findings unduplicated.
	if !strings.Contains(pass.Pkg.Path, "obshttp") || pass.Pkg.Info == nil {
		return
	}
	idx := indexFuncDecls(pass.All)
	type workItem struct {
		pkg  *Package
		body ast.Node
	}
	var queue []workItem
	visited := map[ast.Node]bool{}
	enqueue := func(pkg *Package, body ast.Node) {
		if body == nil || visited[body] {
			return
		}
		visited[body] = true
		queue = append(queue, workItem{pkg, body})
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "HandleFunc" && sel.Sel.Name != "Handle") || len(call.Args) != 2 {
				return true
			}
			switch h := ast.Unparen(call.Args[1]).(type) {
			case *ast.FuncLit:
				enqueue(pass.Pkg, h.Body)
			case *ast.Ident:
				if fn, ok := objectOf(pass.Pkg, h).(*types.Func); ok {
					if d, ok := idx[fn]; ok {
						enqueue(d.pkg, d.decl.Body)
					}
				}
			}
			return true
		})
	}

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		ast.Inspect(item.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *types.Func
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee, _ = objectOf(item.pkg, fun).(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = objectOf(item.pkg, fun.Sel).(*types.Func)
			}
			if callee == nil {
				return true // func value, interface, or placeholder: out of scope
			}
			sig, ok := callee.Type().(*types.Signature)
			if ok && sig.Recv() != nil && isObsType(sig.Recv().Type()) {
				if obsReadOnly[callee.Name()] {
					return true // read-only accessor; no need to descend
				}
				pass.Reportf(call.Pos(),
					"obs.%s mutates observability state but is reachable from an obshttp handler — handlers must stay snapshot-only (the static form of TestServeLiveObservability's contract)",
					callee.Name())
				return true
			}
			if d, ok := idx[callee]; ok {
				enqueue(d.pkg, d.decl.Body)
			}
			return true
		})
	}
}

// declSite locates one module function declaration.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// indexFuncDecls maps every module function object to its declaration,
// so the call-graph walk can cross package boundaries.
func indexFuncDecls(pkgs []*Package) map[*types.Func]declSite {
	idx := map[*types.Func]declSite{}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = declSite{pkg, fd}
				}
			}
		}
	}
	return idx
}

// isObsType reports whether t (after one pointer layer) is a named
// type declared in an obs package — path suffix "internal/obs", which
// both the real module and the fixture mirror satisfy.
func isObsType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
