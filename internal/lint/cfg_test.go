package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// cfgFor loads src as package p, type-checks it, and returns the
// package plus the named function's declaration and Dataflow.
func cfgFor(t *testing.T, src, fnName string) (*Package, *ast.FuncDecl, *Dataflow) {
	t.Helper()
	pkgs := loadTemp(t, map[string]string{"p/p.go": src})
	TypeCheck(pkgs)
	pkg := pkgs[0]
	if pkg.Info == nil {
		t.Fatal("package not type-checked")
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == fnName {
				d := NewDataflow(pkg, fn)
				if d == nil {
					t.Fatalf("NewDataflow(%s) = nil", fnName)
				}
				return pkg, fn, d
			}
		}
	}
	t.Fatalf("function %s not found", fnName)
	return nil, nil, nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	_, _, d := cfgFor(t, `package p

func F() int {
	a := 1
	b := a + 1
	return b
}
`, "F")
	c := d.CFG
	if len(c.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Errorf("entry succs = %v, want [Exit]", c.Entry.Succs)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	_, _, d := cfgFor(t, `package p

func F(cond bool) int {
	x := 0
	if cond {
		x = 1
	} else {
		x = 2
	}
	return x
}
`, "F")
	c := d.CFG
	// The condition block must fork two ways, and both branch blocks
	// must rejoin at the block holding the return.
	if n := len(c.Entry.Succs); n != 2 {
		t.Fatalf("condition block has %d successors, want 2", n)
	}
	var retBlock *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlock = blk
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no block holds the return")
	}
	if len(retBlock.Preds) != 2 {
		t.Errorf("join block has %d preds, want 2 (then and else)", len(retBlock.Preds))
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	_, _, d := cfgFor(t, `package p

func F(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "F")
	c := d.CFG
	// Find the head block (holds the condition, two successors) and
	// check it participates in a cycle: some reachable path returns.
	var head *Block
	for _, blk := range c.Blocks {
		if len(blk.Succs) == 2 {
			head = blk
		}
	}
	if head == nil {
		t.Fatal("no two-way head block in loop CFG")
	}
	// The head must be reachable from itself through the body+post.
	seen := map[*Block]bool{}
	work := append([]*Block{}, head.Succs...)
	inCycle := false
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		if blk == head {
			inCycle = true
			break
		}
		if seen[blk] {
			continue
		}
		seen[blk] = true
		work = append(work, blk.Succs...)
	}
	if !inCycle {
		t.Error("loop head has no back edge through the body")
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable from entry")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	_, _, d := cfgFor(t, `package p

func F(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		s += x
	}
	return s
}
`, "F")
	if !reachable(d.CFG)[d.CFG.Exit] {
		t.Error("exit unreachable with break/continue present")
	}
	// The `s += x` statement must sit in a reachable block (continue
	// and break must not orphan the rest of the body).
	r := reachable(d.CFG)
	found := false
	for blk := range r {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "s" && len(blk.Preds) > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("loop body tail not reachable")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	_, _, d := cfgFor(t, `package p

var sink int

func F() int {
	return 1
	sink = 2
	return 3
}
`, "F")
	r := reachable(d.CFG)
	for _, blk := range d.CFG.Blocks {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "sink" {
					if r[blk] || len(blk.Preds) != 0 {
						t.Errorf("dead statement's block reachable=%v preds=%d, want unreachable with no preds", r[blk], len(blk.Preds))
					}
					return
				}
			}
		}
	}
	t.Fatal("dead statement not placed in any block")
}

func TestCFGGotoAndLabels(t *testing.T) {
	_, _, d := cfgFor(t, `package p

func F(n int) int {
	s := 0
loop:
	s++
	if s < n {
		goto loop
	}
	return s
}
`, "F")
	if !reachable(d.CFG)[d.CFG.Exit] {
		t.Error("exit unreachable in goto loop")
	}
	// The labeled block must have at least two preds: fallthrough from
	// entry and the goto back edge.
	var labeled *Block
	for _, blk := range d.CFG.Blocks {
		for _, n := range blk.Nodes {
			if inc, ok := n.(*ast.IncDecStmt); ok {
				if id, ok := inc.X.(*ast.Ident); ok && id.Name == "s" {
					labeled = blk
				}
			}
		}
	}
	if labeled == nil {
		t.Fatal("labeled statement not found")
	}
	if len(labeled.Preds) < 2 {
		t.Errorf("labeled block has %d preds, want >= 2 (entry + goto)", len(labeled.Preds))
	}
}

func TestCFGSwitchShapes(t *testing.T) {
	_, _, d := cfgFor(t, `package p

func F(n int) int {
	s := 0
	switch n {
	case 1:
		s = 1
		fallthrough
	case 2:
		s += 2
	case 3:
		s = 3
	}
	return s
}
`, "F")
	c := d.CFG
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable in switch")
	}
	// case 2's block must have two preds: the switch head and the
	// fallthrough edge from case 1.
	var case2 *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "s" && as.Tok.String() == "+=" {
					case2 = blk
				}
			}
		}
	}
	if case2 == nil {
		t.Fatal("case 2 block not found")
	}
	if len(case2.Preds) != 2 {
		t.Errorf("fallthrough case has %d preds, want 2 (head + fallthrough)", len(case2.Preds))
	}
}

// declaredVar finds the *types.Var defined for an identifier named
// name anywhere in the function.
func declaredVar(t *testing.T, pkg *Package, fn *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	var v *types.Var
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if def, ok := pkg.Info.Defs[id].(*types.Var); ok && v == nil {
			v = def
		}
		return true
	})
	if v == nil {
		t.Fatalf("variable %s not found", name)
	}
	return v
}

// findUseNode locates the block node holding the return statement.
func returnNode(t *testing.T, d *Dataflow) ast.Node {
	t.Helper()
	for _, blk := range d.CFG.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				return n
			}
		}
	}
	t.Fatal("no return node in CFG")
	return nil
}

func TestReachingDefsBranchesMerge(t *testing.T) {
	pkg, fn, d := cfgFor(t, `package p

func F(cond bool) int {
	x := 0
	if cond {
		x = 1
	}
	return x
}
`, "F")
	x := declaredVar(t, pkg, fn, "x")
	defs := d.ReachingDefs(returnNode(t, d), x)
	// Both the initial 0 and the branch's 1 reach the return.
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at return, want 2", len(defs))
	}
}

func TestReachingDefsKill(t *testing.T) {
	pkg, fn, d := cfgFor(t, `package p

func F() int {
	x := 0
	x = 1
	x = 2
	return x
}
`, "F")
	x := declaredVar(t, pkg, fn, "x")
	defs := d.ReachingDefs(returnNode(t, d), x)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs, want 1 (straight-line redefinition kills)", len(defs))
	}
	lit, ok := defs[0].(*ast.BasicLit)
	if !ok || lit.Value != "2" {
		t.Errorf("surviving def site = %#v, want the literal 2", defs[0])
	}
}

func TestReachingDefsLoopBackEdge(t *testing.T) {
	pkg, fn, d := cfgFor(t, `package p

func F(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	return x
}
`, "F")
	x := declaredVar(t, pkg, fn, "x")
	defs := d.ReachingDefs(returnNode(t, d), x)
	// Zero-trip (x := 0) and loop-body (x = i) defs both reach.
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs after loop, want 2", len(defs))
	}
}

func TestFreeVarsCaptures(t *testing.T) {
	pkg, fn, _ := cfgFor(t, `package p

var global int

func F(a, b int) func(int) int {
	c := a + 1
	return func(d int) int {
		e := d
		return c + b + e + global
	}
}
`, "F")
	var lit *ast.FuncLit
	ast.Inspect(fn, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	if lit == nil {
		t.Fatal("no function literal")
	}
	got := map[string]bool{}
	for _, v := range FreeVars(pkg, fn, lit) {
		got[v.Name()] = true
	}
	// c and b are captured; d and e are the literal's own, global is
	// package state, a is unused inside the literal.
	for _, want := range []string{"c", "b"} {
		if !got[want] {
			t.Errorf("FreeVars missing %s (got %v)", want, got)
		}
	}
	for _, bad := range []string{"a", "d", "e", "global"} {
		if got[bad] {
			t.Errorf("FreeVars wrongly includes %s", bad)
		}
	}
}

func TestRefLike(t *testing.T) {
	pkg, fn, _ := cfgFor(t, `package p

type holder struct {
	buf []int
}

type flat struct {
	a, b int
}

func F(
	s []int,
	m map[string]int,
	ptr *int,
	ch chan int,
	fp func(),
	iface any,
	h holder,
	fl flat,
	n int,
	arr [4]int,
) {
}
`, "F")
	want := map[string]bool{
		"s": true, "m": true, "ptr": true, "ch": true, "fp": true,
		"iface": true, "h": true,
		"fl": false, "n": false, "arr": false,
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			v := pkg.Info.Defs[name].(*types.Var)
			if got := refLike(v.Type()); got != want[name.Name] {
				t.Errorf("refLike(%s %s) = %v, want %v", name.Name, v.Type(), got, want[name.Name])
			}
		}
	}
}

func TestBasePath(t *testing.T) {
	pkg, fn, _ := cfgFor(t, `package p

type inner struct{ mu, other int }

type outer struct {
	root  *inner
	elems []inner
}

func F(o *outer) (int, int, int) {
	a := o.root.mu
	b := o.elems[0].mu
	c := o.root.other
	return a, b, c
}
`, "F")
	exprs := map[string]ast.Expr{}
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			exprs[id.Name] = as.Rhs[0]
		}
		return true
	})
	base, path, ok := basePath(pkg, exprs["a"])
	if !ok || base.Name() != "o" || path != "root.mu" {
		t.Errorf("basePath(o.root.mu) = (%v, %q, %v), want (o, root.mu, true)", base, path, ok)
	}
	if _, _, ok := basePath(pkg, exprs["b"]); ok {
		t.Error("basePath through an index expression must give up (ok = false)")
	}
	base, path, ok = basePath(pkg, exprs["c"])
	if !ok || base.Name() != "o" || path != "root.other" {
		t.Errorf("basePath(o.root.other) = (%v, %q, %v), want (o, root.other, true)", base, path, ok)
	}
}
