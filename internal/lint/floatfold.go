package lint

// FloatFold certifies the engineLoop discipline interprocedurally
// (DESIGN §12): every float64 cost accumulation must fold in a
// single, loop-carried, order-fixed chain, because float addition
// does not associate — the same partials summed in a different order
// give a different bit pattern, and the repo's contract is
// bit-identical charged costs across all five execution engines and
// any worker count.
//
// Flagged shapes, using the bottom-up Accum summaries so the fold may
// hide behind any depth of calls:
//
//   - a float64 `+=` (or x = x + e) inside a map-range, channel-range,
//     or multi-case select body, when the accumulator outlives the
//     body — the fold order follows randomized iteration;
//   - a float64 `+=` into a variable captured by a go-spawned literal
//     — workers fold in completion order;
//   - a call, in either context, to a module function whose summary
//     says it accumulates caller-visible float64 cost (receiver
//     field, pointer target, or package variable), when the
//     accumulator's owner is shared with the context — e.g. invoking
//     obs Registry.Import on a captured registry from a worker
//     goroutine;
//   - `go f(...)` where f's summary accumulates caller-visible cost.
//
// Fresh accumulators created inside the loop or goroutine body are
// not flagged (each iteration/worker folds privately), and a
// //lint:ignore floatfold on the accumulation site inside a callee
// removes its Accum summary, certifying the fold as order-independent
// at its definition rather than at every call site.
var FloatFold = &Analyzer{
	Name:  "floatfold",
	Doc:   "float64 cost accumulations reachable from engine entry points must fold in one order-fixed chain, never across map/select order or goroutine completion",
	Layer: LayerInterproc,
	Run:   runFloatFold,
}

// runFloatFold replays the findings the shared bottom-up pass
// computed for this package (see Pass.Interproc).
func runFloatFold(pass *Pass) {
	if pass.Pkg.Info == nil {
		return
	}
	for _, f := range pass.Interproc().fold[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}
