package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StepConfine enforces the state-confinement discipline of superstep
// handlers: a Superstep.Run closure executes once per processor, and
// the engines are free to run those executions concurrently (the native
// engine does, and the sweep engine layers whole runs on top). All
// per-processor state must therefore live in the processor's own Ctx;
// a write to a variable captured from the enclosing scope is shared
// mutable state that races across processors — exactly the class of bug
// the -race CI job catches only when the schedule cooperates. The
// analyzer flags every assignment (including op-assign, ++/-- and
// writes through index/selector/pointer paths) whose base identifier
// resolves to a variable declared outside the Run closure. Reads of
// captured variables stay legal: closing over loop indices, lookup
// tables and input functions is the builders' normal idiom.
var StepConfine = &Analyzer{
	Name:  "stepconfine",
	Doc:   "Superstep.Run closures must not write captured variables; per-processor state belongs in the Ctx",
	Layer: LayerTyped,
	Run:   runStepConfine,
}

func runStepConfine(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if !isTypeNamed(pkg.Info.TypeOf(x), "internal/dbsp", "Superstep") {
					return true
				}
				if fn, ok := superstepRun(x).(*ast.FuncLit); ok {
					checkRunClosure(pass, fn)
				}
			case *ast.AssignStmt:
				// st.Run = func(...) {...} — imperative wiring.
				if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
					return true
				}
				sel, ok := x.Lhs[0].(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Run" {
					return true
				}
				if !isTypeNamed(pkg.Info.TypeOf(sel.X), "internal/dbsp", "Superstep") {
					return true
				}
				if fn, ok := x.Rhs[0].(*ast.FuncLit); ok {
					checkRunClosure(pass, fn)
				}
			}
			return true
		})
	}
}

// superstepRun returns the Run field value of a Superstep composite
// literal, in keyed or positional form.
func superstepRun(lit *ast.CompositeLit) ast.Expr {
	if v := fieldValue(lit, "Run"); v != nil {
		return v
	}
	if len(lit.Elts) >= 2 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return lit.Elts[1]
		}
	}
	return nil
}

// checkRunClosure flags writes to free variables anywhere inside the
// closure, nested function literals included — they run on the same
// processor goroutine.
func checkRunClosure(pass *Pass, fn *ast.FuncLit) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				flagFreeWrite(pass, fn, lhs)
			}
		case *ast.IncDecStmt:
			flagFreeWrite(pass, fn, st.X)
		}
		return true
	})
}

// flagFreeWrite reports lhs when its base identifier is a variable
// declared outside the closure (parameters and closure-local variables
// are inside its source range and pass).
func flagFreeWrite(pass *Pass, fn *ast.FuncLit, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	v, ok := objectOf(pass.Pkg, id).(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if posWithin(v.Pos(), fn) {
		return // declared inside the Run closure: per-execution state
	}
	pass.Reportf(id.Pos(),
		"Run closure writes captured variable %q; processors execute concurrently, so writes to enclosing-scope state race (keep per-processor state in the Ctx, or aggregate after the run)", id.Name)
}
