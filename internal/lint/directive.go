package lint

import (
	"go/token"
	"strings"
)

// Directive support: a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// on a finding's line, or on the line directly above it, suppresses
// that analyzer's findings there. The reason is mandatory — an
// exemption without a recorded justification is itself a finding — and
// directives are kept honest: one that names an analyzer in the running
// suite but suppresses nothing is reported as stale, so dead ignores
// cannot accumulate as the code underneath them changes.

const directivePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	ok       bool // has both analyzer and reason
	used     bool
}

// collectDirectives parses every //lint:ignore comment in pkgs.
func collectDirectives(pkgs []*Package) []*directive {
	var out []*directive
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, found := strings.CutPrefix(c.Text, directivePrefix)
					if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					d := &directive{pos: pkg.Fset.Position(c.Pos())}
					fields := strings.Fields(rest)
					if len(fields) >= 1 {
						d.analyzer = fields[0]
					}
					d.ok = len(fields) >= 2
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// suppressedAt reports whether a well-formed directive for analyzer
// covers pos — same file, same line or the line directly above — and
// marks the directive used. The interprocedural summaries consult this
// at construction time, so an ignore on a nondeterminism *source*
// suppresses the caller-side findings the source would otherwise
// induce, while still counting as used for the staleness audit.
func suppressedAt(directives []*directive, pos token.Position, analyzer string) bool {
	hit := false
	for _, d := range directives {
		if d.ok && d.analyzer == analyzer && d.pos.Filename == pos.Filename &&
			(d.pos.Line == pos.Line || d.pos.Line == pos.Line-1) {
			d.used = true
			hit = true
		}
	}
	return hit
}

// applyDirectives filters findings through the //lint:ignore directives
// and appends directive-hygiene findings (malformed directives always;
// stale ones when their analyzer actually ran).
func applyDirectives(directives []*directive, analyzers []*Analyzer, findings []Finding) []Finding {
	if len(directives) == 0 {
		return findings
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.ok && d.analyzer == f.Analyzer && d.pos.Filename == f.Pos.Filename &&
				(d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range directives {
		switch {
		case !d.ok:
			kept = append(kept, Finding{Pos: d.pos, Analyzer: "directive",
				Message: "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" — the reason is mandatory"})
		case !d.used && ran[d.analyzer]:
			kept = append(kept, Finding{Pos: d.pos, Analyzer: "directive",
				Message: "stale //lint:ignore " + d.analyzer + ": it suppresses nothing on this or the next line; remove it"})
		}
	}
	return kept
}
