// Package baddetflow exercises the detflow interprocedural taint
// analyzer: nondeterminism sources flowing through helpers into
// output sinks (positives), next to the sanctioned launderings that
// must stay silent (negatives).
package baddetflow

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

var epoch time.Time

// Emit writes one line per key — the JSONL-writer mirror the sweep
// fixtures model. Its summary records that keys reaches output.
func Emit(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintf(w, "%s\n", k)
	}
}

// DumpUnsorted feeds map-ordered keys straight into the writer: the
// seeded bug differential fuzzing misses at small map sizes.
func DumpUnsorted(w io.Writer, m map[string]int) {
	keys := make([]string, len(m))
	i := 0
	for k := range m {
		keys[i] = k
		i++
	}
	Emit(w, keys) // want: map-order taint reaches Emit's sink
}

// DumpSorted restores a canonical order first; silent.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, len(m))
	i := 0
	for k := range m {
		keys[i] = k
		i++
	}
	sort.Strings(keys)
	Emit(w, keys)
}

// Uptime returns the wall-clock seconds since the package epoch; the
// clock taint rides its result into every caller.
func Uptime() float64 {
	return time.Since(epoch).Seconds()
}

// ReportUptime prints a clock-derived value. want: finding.
func ReportUptime() {
	fmt.Printf("up %f\n", Uptime())
}

// LogCost writes one cost line; parameter c reaches the sink.
func LogCost(c float64) {
	fmt.Printf("cost=%f\n", c)
}

// Record passes a clock-derived argument into LogCost's sink.
func Record() {
	LogCost(Uptime()) // want: clock via Uptime reaches LogCost's print
}

// LogPair prints one key/value pair.
func LogPair(k string, v int) {
	fmt.Printf("%s=%d\n", k, v)
}

// DumpDirect calls an emitting helper while ranging a map. want:
// records land in randomized iteration order.
func DumpDirect(m map[string]int) {
	for k, v := range m {
		LogPair(k, v)
	}
}

// FirstReady races two channels; which value wins depends on select
// scheduling, and the winner lands in an error string golden files
// would pin. want: finding.
func FirstReady(a, b chan string) error {
	var got string
	select {
	case got = <-a:
	case got = <-b:
	}
	return errors.New("baddetflow: first " + got)
}

// Backoff reads the clock for control flow only; nothing derived from
// it reaches output. Silent.
func Backoff(n int) int {
	if time.Since(epoch) > time.Second {
		n++
	}
	return n
}

// EmitSeeded prints a draw from a deterministically seeded generator —
// the sanctioned randomness path. Silent.
func EmitSeeded(seed int64) {
	r := rand.New(rand.NewSource(seed))
	fmt.Printf("draw=%d\n", r.Intn(10))
}

// buildStamp reads the clock but certifies the read at the source: the
// directive suppresses every caller-side finding it would induce.
func buildStamp() string {
	s := time.Since(epoch).String() //lint:ignore detflow the stamp line is stripped before golden comparison
	return s
}

// PrintStamp stays silent because buildStamp's source is certified.
func PrintStamp() {
	fmt.Println(buildStamp())
}
