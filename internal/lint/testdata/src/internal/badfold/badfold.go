// Package badfold exercises the floatfold analyzer: float64 cost
// accumulations whose fold order can vary run to run (positives),
// next to order-fixed folds that must stay silent (negatives).
package badfold

import (
	"sort"

	"fixture.example/internal/obs"
)

// SumMap folds map values in iteration order. want: the fold
// reassociates with the randomized order.
func SumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// SumSorted folds the same values over sorted keys; silent.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// SumSlice folds a slice in index order; silent.
func SumSlice(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// ParallelTotal lets two workers fold into one captured accumulator.
// want: completion order reassociates the sum.
func ParallelTotal(a, b []float64) float64 {
	var total float64
	done := make(chan bool)
	go func() {
		total += SumSlice(a)
		done <- true
	}()
	go func() {
		total += SumSlice(b)
		done <- true
	}()
	<-done
	<-done
	return total
}

// ParallelPartials folds worker-locally into disjoint slots and merges
// in a fixed order after the join; silent.
func ParallelPartials(a, b []float64) float64 {
	partials := make([]float64, 2)
	done := make(chan bool)
	go func() {
		partials[0] = SumSlice(a)
		done <- true
	}()
	go func() {
		partials[1] = SumSlice(b)
		done <- true
	}()
	<-done
	<-done
	return partials[0] + partials[1]
}

// importInto accumulates into the counter its caller handed over; the
// Accum summary records parameter 0 as the owner.
func importInto(c *obs.FloatCounter, xs []float64) {
	for _, x := range xs {
		c.Add(x)
	}
}

// SpawnImport ships a shared counter into a goroutine. want: the
// callee accumulates caller-visible cost in completion order.
func SpawnImport(c *obs.FloatCounter, xs []float64) {
	go importInto(c, xs)
}

// CaptureCounter calls the accumulating method on a captured counter
// from a goroutine. want: finding.
func CaptureCounter(c *obs.FloatCounter) {
	done := make(chan bool)
	go func() {
		c.Add(1.5)
		done <- true
	}()
	<-done
}

// FreshCounter accumulates into a counter created inside the
// goroutine — each worker folds privately; silent.
func FreshCounter(xs []float64) {
	done := make(chan bool)
	go func() {
		c := &obs.FloatCounter{}
		for _, x := range xs {
			c.Add(x)
		}
		done <- true
	}()
	<-done
}
