// Package badcharge is a lint fixture for the costcharge analyzer's
// typed resolution: counter names assembled from named constants,
// constant concatenation, and cost-window helpers recognized by object
// identity must still reconcile with the costPhases partition.
package badcharge

// costPhases declares the partition the typed charges must match.
var costPhases = []string{"compute", "place"}

// simPrefix exercises named-constant resolution of the metric prefix.
const simPrefix = "chg.cost."

// Registry is a minimal metric-resolver shape.
type Registry struct{}

// FloatCounter resolves a float counter by name.
func (r *Registry) FloatCounter(name string) *float64 { return nil }

// phaseWindow charges through the helper shape — a constant ".cost."
// prefix concatenated with the name parameter — which the analyzer
// resolves at call sites by object identity, not by the name "phase".
func (r *Registry) phaseWindow(name string) {
	_ = r.FloatCounter(simPrefix + name)
}

// Charge exercises every resolution form.
func Charge(r *Registry) {
	_ = r.FloatCounter(simPrefix + "compute")     // declared: no finding
	_ = r.FloatCounter("chg" + ".cost." + "comm") // finding: "comm" undeclared
	r.phaseWindow("place")                        // declared: no finding
	r.phaseWindow("route")                        // finding: "route" undeclared
	r.phaseWindow("deliver.sub")                  // sub-phase: exempt
	_ = r.FloatCounter(simPrefix + "total")       // the total: exempt
}
