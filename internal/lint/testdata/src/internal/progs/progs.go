// Package progs is a lint fixture for the stepshape analyzer: Program
// literals must declare a power-of-two V, labels inside [0, log2 V], a
// final global barrier, and transpose factorizations that cover their
// cluster — all evaluated through constant propagation.
package progs

import "fixture.example/internal/dbsp"

// negLabel exercises constant propagation: the analyzer folds named
// constants, not just literals.
const negLabel = 3 - 4

// Bad ends with a label-2 superstep: finding.
var Bad = dbsp.Program{
	Name: "bad",
	V:    8,
	Steps: []dbsp.Superstep{
		{Label: 0},
		{Label: 2},
	},
}

// BadV declares a machine size that is not a power of two: finding.
var BadV = dbsp.Program{
	Name: "bad-v",
	V:    12,
	Steps: []dbsp.Superstep{
		{Label: 0},
	},
}

// BadLabel uses a label beyond log2(V): finding.
var BadLabel = dbsp.Program{
	Name: "bad-label",
	V:    8,
	Steps: []dbsp.Superstep{
		{Label: 4},
		{Label: 0},
	},
}

// BadNeg folds a negative label out of a named constant: finding.
var BadNeg = dbsp.Program{
	Name: "bad-neg",
	V:    8,
	Steps: []dbsp.Superstep{
		{Label: negLabel},
		{Label: 0},
	},
}

// BadTranspose declares a 2x4 transpose on a label-1 cluster of size 4:
// finding.
var BadTranspose = dbsp.Program{
	Name: "bad-transpose",
	V:    8,
	Steps: []dbsp.Superstep{
		{Label: 1, Transpose: &dbsp.TransposeRoute{M1: 2, M2: 4}},
		{Label: 0},
	},
}

// goodV exercises constant folding of the machine size.
const goodV = 1 << 3

// Good is fully disciplined — a legal transpose, a constant-folded V
// and a final global barrier: no findings.
var Good = dbsp.Program{
	Name: "good",
	V:    goodV,
	Steps: []dbsp.Superstep{
		{Label: 2},
		{Label: 1, Transpose: &dbsp.TransposeRoute{M1: 2, M2: 2}},
		{Label: 0},
	},
}
