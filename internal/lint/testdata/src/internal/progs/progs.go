// Package progs is a lint fixture for the laststep analyzer: Program
// literals must end with a Label: 0 superstep.
package progs

import "repro/internal/dbsp"

// Bad ends with a label-2 superstep: finding.
var Bad = dbsp.Program{
	Name: "bad",
	V:    8,
	Steps: []dbsp.Superstep{
		{Label: 0},
		{Label: 2},
	},
}

// Good ends with a global barrier: no finding.
var Good = dbsp.Program{
	Name: "good",
	V:    8,
	Steps: []dbsp.Superstep{
		{Label: 2},
		{Label: 0},
	},
}
