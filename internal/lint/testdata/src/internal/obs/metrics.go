// metrics.go mirrors the real obs Registry surface for the
// snapshotonly fixtures: read-only accessors next to mutating APIs,
// plus a package-level helper the call-graph walk must cross into.
// Every exported pointer-receiver method carries the nilguard
// discipline, like the real package.
package obs

// Registry is the fixture stand-in for the metric registry.
type Registry struct {
	total int64
}

// Snapshot returns a consistent copy of the registry state (read-only).
func (r *Registry) Snapshot() []int64 {
	if r == nil {
		return nil
	}
	return []int64{r.total}
}

// Value reads the running total (read-only).
func (r *Registry) Value() int64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Add accumulates into the total (mutating).
func (r *Registry) Add(n int64) {
	if r == nil {
		return
	}
	r.total += n
}

// Reset clears the registry (mutating).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.total = 0
}

// Drain zeroes the registry through Add — the cross-package body the
// snapshotonly walk descends into from an obshttp handler.
func Drain(r *Registry) {
	r.Add(-r.Value())
}

// FloatCounter mirrors the real float metric for the floatfold
// fixtures: Add accumulates into the receiver, so its summary names
// parameter 0 as the accumulator's owner.
type FloatCounter struct {
	v float64
}

// Add accumulates x into the sum.
func (c *FloatCounter) Add(x float64) {
	if c == nil {
		return
	}
	c.v += x
}

// Sum reads the accumulated value (read-only).
func (c *FloatCounter) Sum() float64 {
	if c == nil {
		return 0
	}
	return c.v
}
