// Package obs is a lint fixture for the nilguard analyzer: exported
// pointer-receiver methods must begin with a nil-receiver guard.
package obs

// Sink buffers events.
type Sink struct {
	events []string
}

// Emit is missing the nil-receiver guard: finding.
func (s *Sink) Emit(e string) {
	s.events = append(s.events, e)
}

// Len is guarded: no finding.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Close delegates to a guarded method: no finding.
func (s *Sink) Close() { s.reset() }

func (s *Sink) reset() {
	if s == nil {
		return
	}
	s.events = nil
}
