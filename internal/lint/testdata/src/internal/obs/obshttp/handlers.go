// Package obshttp exercises the snapshotonly analyzer: handler
// functions registered on a mux may observe obs state through
// read-only APIs only. Mutating calls — direct, through a local
// helper, or through a cross-package obs helper — are flagged;
// non-handler code and func-value indirection are out of scope.
package obshttp

import "fixture.example/internal/obs"

// mux mirrors the HandleFunc registration surface the analyzer seeds
// from.
type mux struct{}

// HandleFunc registers h under pattern.
func (m *mux) HandleFunc(pattern string, h func()) {}

// reg is the registry the handlers observe.
var reg *obs.Registry

// out sinks rendered values so the read-only handlers have an effect.
var out []int64

// Register wires up the fixture endpoints.
func Register(m *mux) {
	m.HandleFunc("/bump", func() {
		reg.Add(1) // want snapshotonly: direct mutation
	})
	m.HandleFunc("/stats", func() {
		writeStats()
	})
	m.HandleFunc("/reset", resetHandler)
	m.HandleFunc("/metrics", func() {
		out = append(out, reg.Snapshot()...)
	})
	m.HandleFunc("/total", func() {
		out = append(out, reg.Value())
	})
	m.HandleFunc("/render", func() {
		render(reg.Snapshot())
	})
}

// writeStats is a handler helper one hop down the call graph.
func writeStats() {
	reg.Reset() // want snapshotonly: mutation via local helper
}

// resetHandler reaches a mutating call through the obs package itself.
func resetHandler() {
	obs.Drain(reg) // the finding lands on Drain's Add call in obs
}

// render is a pure formatter; read-only paths stay silent.
func render(samples []int64) {
	out = append(out, samples...)
}

// compact is not registered as a handler, so its mutation is engine
// code, not handler code.
func compact() {
	reg.Reset()
}
