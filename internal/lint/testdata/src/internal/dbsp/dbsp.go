// Package dbsp mirrors the real module's program-shape types
// (Program, Superstep, TransposeRoute, Ctx) so the typed fixture
// packages type-check self-contained inside the fixture module: the
// typed analyzers identify these types by package-path suffix
// ("internal/dbsp"), which this mirror and the real repro/internal/dbsp
// both satisfy.
package dbsp

// Word is the machine word.
type Word = int64

// Layout fixes the context memory layout.
type Layout struct {
	Data, MaxMsgs int
}

// Ctx is the per-processor execution context.
type Ctx struct {
	id, v int
}

// ID returns the processor index.
func (c *Ctx) ID() int { return c.id }

// V returns the machine size.
func (c *Ctx) V() int { return c.v }

// Load reads data word i.
func (c *Ctx) Load(i int) Word { return 0 }

// Store writes data word i.
func (c *Ctx) Store(i int, w Word) {}

// Send queues a message to processor dest.
func (c *Ctx) Send(dest int, w Word) {}

// NumRecv returns the delivered-message count.
func (c *Ctx) NumRecv() int { return 0 }

// Recv returns delivered message i.
func (c *Ctx) Recv(i int) (int, Word) { return 0, 0 }

// TransposeRoute declares a superstep's traffic as an M1 x M2 cluster
// transpose.
type TransposeRoute struct {
	M1, M2 int
}

// Superstep is one labelled superstep.
type Superstep struct {
	Label     int
	Run       func(c *Ctx)
	Transpose *TransposeRoute
}

// Program is a D-BSP program.
type Program struct {
	Name   string
	V      int
	Layout Layout
	Steps  []Superstep
	Init   func(p int, data []Word)
}
