// Package nodecl is a lint fixture for the costcharge analyzer: a
// package charging phase counters must declare costPhases.
package nodecl

type registry struct{}

func (r *registry) FloatCounter(name string) *float64 { return nil }

// Charge charges a phase with no costPhases declaration: finding.
func Charge(r *registry) {
	_ = r.FloatCounter("sim.cost.compute")
}
