// Package badsim is a lint fixture for the costcharge analyzer:
// charged cost phases must match the declared costPhases partition.
package badsim

// costPhases lists "stale" which is never charged, while the package
// charges "comm" without declaring it: two findings.
var costPhases = []string{"compute", "stale"}

// Registry is a minimal metric-resolver shape.
type Registry struct{}

// FloatCounter resolves a float counter by name.
func (r *Registry) FloatCounter(name string) *float64 { return nil }

// Charge touches the phase counters.
func Charge(r *Registry) {
	_ = r.FloatCounter("sim.cost.compute")
	_ = r.FloatCounter("sim.cost.comm")
	_ = r.FloatCounter("sim.cost.total")
	_ = r.FloatCounter("sim.cost.compute.sub")
}
