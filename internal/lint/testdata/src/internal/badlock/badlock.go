// Package badlock exercises the lockdiscipline analyzer: accesses to
// `// guarded by mu` fields without the mutex held (flagged) next to
// the locked, deferred-unlock and *Locked-helper shapes that satisfy
// the discipline.
package badlock

import "sync"

// Tracker mirrors the sweep.Progress shape: one mutex guarding the
// mutable state behind it.
type Tracker struct {
	mu    sync.Mutex
	count int      // guarded by mu
	names []string // guarded by mu
	label string   // deliberately unguarded
}

// Peek reads a guarded field with no lock anywhere in sight.
func (t *Tracker) Peek() int {
	return t.count // want lockdiscipline: unlocked read
}

// Record unlocks too early: the names write lands outside the
// critical section.
func (t *Tracker) Record(name string) {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
	t.names = nil // want lockdiscipline: write after unlock
	_ = name
}

// MaybeGuarded only locks on one branch; at the join the guard is not
// held on every path, and must-hold analysis says so.
func (t *Tracker) MaybeGuarded(fast bool) int {
	if !fast {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	return t.count // want lockdiscipline: guard held on one branch only
}

// Drain calls a *Locked helper without holding the guard the helper's
// name promises.
func (t *Tracker) Drain() int {
	return t.sumLocked() // want lockdiscipline: *Locked call without the lock
}

// Add is the compliant shape: lock, deferred unlock, guarded writes in
// between.
func (t *Tracker) Add(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count += n
}

// Reset locks and unlocks explicitly around the guarded writes.
func (t *Tracker) Reset() {
	t.mu.Lock()
	t.count = 0
	t.names = nil
	t.mu.Unlock()
}

// Total holds the lock across the *Locked helper call, satisfying both
// the field accesses inside the helper and the call-site convention.
func (t *Tracker) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sumLocked()
}

// sumLocked reads guarded fields under the *Locked convention: the
// caller holds t.mu.
func (t *Tracker) sumLocked() int {
	return t.count + len(t.names)
}

// Label reads the unguarded field; no annotation, no requirement.
func (t *Tracker) Label() string {
	return t.label
}
