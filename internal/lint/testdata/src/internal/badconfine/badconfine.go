// Package badconfine is a lint fixture for the stepconfine analyzer:
// Superstep.Run closures must not write variables captured from the
// enclosing scope.
package badconfine

import "fixture.example/internal/dbsp"

// BuildBad returns a program whose Run closure increments a captured
// counter — shared state that races across processors: finding.
func BuildBad(v int) *dbsp.Program {
	total := 0
	steps := []dbsp.Superstep{
		{Label: 0, Run: func(c *dbsp.Ctx) {
			total++
		}},
	}
	_ = total
	return &dbsp.Program{Name: "bad", V: v, Steps: steps}
}

// WireBad assigns a Run imperatively; the closure appends to a
// captured slice: finding.
func WireBad(log []string) dbsp.Superstep {
	var st dbsp.Superstep
	st.Run = func(c *dbsp.Ctx) {
		log = append(log, "step")
	}
	return st
}

// BuildGood reads captured state (the lookup table and loop constant)
// and writes only through the Ctx: no findings.
func BuildGood(v int, pi []int) *dbsp.Program {
	offset := 1
	return &dbsp.Program{
		Name: "good",
		V:    v,
		Steps: []dbsp.Superstep{
			{Label: 0, Run: func(c *dbsp.Ctx) {
				local := pi[c.ID()] + offset
				c.Store(0, dbsp.Word(local))
				c.Send(pi[c.ID()], c.Load(0))
			}},
			{Label: 0},
		},
	}
}
