// Package hmm mirrors the real module's internal/hmm Machine surface
// just closely enough for the bulkcharge analyzer's isTypeNamed
// matching (path suffix "internal/hmm", type Machine): the per-word
// charge methods and their bulk *Range counterparts.
package hmm

// Word is one memory cell.
type Word int64

// Machine is the fixture stand-in for the charged HMM memory.
type Machine struct {
	mem []Word
}

// Read returns the word at x.
func (m *Machine) Read(x int64) Word { return m.mem[x] }

// Write stores v at x.
func (m *Machine) Write(x int64, v Word) { m.mem[x] = v }

// SwapWords exchanges the words at x and y.
func (m *Machine) SwapWords(x, y int64) {
	m.mem[x], m.mem[y] = m.mem[y], m.mem[x]
}

// Poke stores v at x without charging.
func (m *Machine) Poke(x int64, v Word) { m.mem[x] = v }

// ReadRange reads len(dst) words starting at addr.
func (m *Machine) ReadRange(addr int64, dst []Word) {
	copy(dst, m.mem[addr:addr+int64(len(dst))])
}

// WriteRange stores src starting at addr.
func (m *Machine) WriteRange(addr int64, src []Word) {
	copy(m.mem[addr:addr+int64(len(src))], src)
}

// SwapRange exchanges the n-word ranges at a and b.
func (m *Machine) SwapRange(a, b, n int64) {
	for i := int64(0); i < n; i++ {
		m.mem[a+i], m.mem[b+i] = m.mem[b+i], m.mem[a+i]
	}
}

// PokeRange stores src starting at addr without charging.
func (m *Machine) PokeRange(addr int64, src []Word) {
	copy(m.mem[addr:addr+int64(len(src))], src)
}
