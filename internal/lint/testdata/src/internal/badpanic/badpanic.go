// Package badpanic is a lint fixture for the panicmsg analyzer: panics
// in internal packages must carry the "badpanic: " prefix.
package badpanic

import (
	"errors"
	"fmt"
)

// Explode panics three wrong ways and one right way.
func Explode(x int) {
	if x == 1 {
		panic("boom with no prefix")
	}
	if x == 2 {
		panic(errors.New("bare error value"))
	}
	if x == 3 {
		panic(fmt.Sprintf("other: wrong prefix %d", x))
	}
	panic("badpanic: correctly prefixed")
}
