// Package badshare exercises the sharesafe analyzer: writes to values
// that already escaped into a goroutine, channel send, or sent closure
// (flagged) next to the rebind, join-barrier and value-copy shapes
// that are safe.
package badshare

import "sync"

// Job mirrors the sweep engine's job shape: an ID plus a params slice
// whose backing array is what the worker goroutine reads.
type Job struct {
	ID     string
	Params []float64
}

// results sinks worker output so the fixtures have a reader.
var results = make(chan float64, 64)

// RunPool is the seeded-bug scenario from the sweep worker pool: the
// jobs slice is captured by the worker goroutine, and the dispatcher
// then mutates a job's params in place — the exact post-escape write
// the sharded-engine refactor must never contain.
func RunPool(jobs []Job) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, j := range jobs {
			results <- j.Params[0]
		}
	}()
	jobs[0].Params[0] = 99 // want sharesafe: write after capture
	wg.Wait()
}

// SendThenPatch sends a buffer over a channel and then writes an
// element; the receiver shares the backing array.
func SendThenPatch(ch chan []float64, buf []float64) {
	ch <- buf
	buf[0] = 1 // want sharesafe: write after send
}

// PostTask sends a closure that reads a local; rebinding that local
// afterwards races with the closure's execution.
func PostTask(tasks chan func() float64) {
	scale := 2.0
	tasks <- func() float64 { return scale }
	scale = 3.0 // want sharesafe: write after closure escape
}

// GrowAfterHandoff appends in place to a slice a goroutine is reading;
// append may write the escaped backing array before reallocating.
func GrowAfterHandoff(view []float64) {
	go consume(view)
	view = append(view, 4) // want sharesafe: self-append after handoff
	_ = view
}

func consume(v []float64) {
	for _, x := range v {
		results <- x
	}
}

// RebindFresh sends a buffer but then rebinds the variable to a fresh
// allocation before writing — the escaped array is never touched.
func RebindFresh(ch chan []float64, buf []float64) {
	ch <- buf
	buf = make([]float64, 4)
	buf[0] = 1
}

// JoinThenReuse writes only after the WaitGroup join barrier; the
// goroutine is done, so the buffer is exclusively owned again.
func JoinThenReuse(buf []float64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results <- buf[0]
	}()
	wg.Wait()
	buf[0] = 7
}

// ScalarByValue hands an int to the goroutine by value; incrementing
// the local afterwards touches nothing shared.
func ScalarByValue(n int) {
	go func(v int) {
		results <- float64(v)
	}(n)
	n++
	_ = n
}

// PrepareThenSpawn does all its writes before the escape; nothing
// races.
func PrepareThenSpawn(jobs []Job) {
	jobs[0].Params = []float64{1, 2}
	jobs[0].ID = "warm"
	go func() {
		for _, j := range jobs {
			results <- j.Params[0]
		}
	}()
}
