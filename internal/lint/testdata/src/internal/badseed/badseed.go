// Package badseed is a lint fixture for the detseed analyzer: internal
// packages must not read the wall clock, draw from the global
// math/rand source, or emit ordered output from map iteration.
package badseed

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fixture.example/internal/dbsp"
)

// Stamp reads the wall clock: finding. The directive above it is
// missing its reason, so it is malformed (a second finding) and
// suppresses nothing.
//
//lint:ignore detseed
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Draw uses the global shared source: finding.
func Draw() int {
	return rand.Intn(10)
}

// DrawSeeded derives a private generator from an explicit seed: no
// finding.
func DrawSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// Emit prints in map-iteration order: finding.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Fanout sends messages in map-iteration order: finding.
func Fanout(c *dbsp.Ctx, dests map[int]dbsp.Word) {
	for d, w := range dests {
		c.Send(d, w)
	}
}

// Keys returns map keys in randomized order: finding.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the collect-then-sort idiom: no finding.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Elapsed measures a duration under a justified exemption: no finding.
func Elapsed(fn func()) time.Duration {
	//lint:ignore detseed duration measurement never reaches program output
	begin := time.Now()
	fn()
	return time.Since(begin)
}
