// Package badbulk exercises the bulkcharge analyzer: per-word Machine
// calls on unit-stride addresses inside +1 loops (flagged) next to the
// strided, descending, bulk and non-Machine shapes it must leave
// alone.
package badbulk

import "fixture.example/internal/hmm"

// SumWords charges per word on a unit-stride address — ReadRange
// territory.
func SumWords(m *hmm.Machine, base, n int64) hmm.Word {
	var total hmm.Word
	for i := int64(0); i < n; i++ {
		total += m.Read(base + i) // want bulkcharge
	}
	return total
}

// FillRange writes per word with an i += 1 post statement — same
// stride, same finding.
func FillRange(m *hmm.Machine, n int64, v hmm.Word) {
	for i := int64(0); i < n; i += 1 {
		m.Write(i, v) // want bulkcharge
	}
}

// CopyOut reads per word from a range loop's key (ranges always
// advance by one).
func CopyOut(m *hmm.Machine, dst []hmm.Word) {
	for i := range dst {
		dst[i] = m.Read(int64(i)) // want bulkcharge
	}
}

// Exchange swaps per word over two unit-stride addresses — SwapRange
// territory.
func Exchange(m *hmm.Machine, a, b, n int64) {
	for i := int64(0); i < n; i++ {
		m.SwapWords(a+i, b+i) // want bulkcharge
	}
}

// SumStrided reads every other word; the stride-2 interval has no
// contiguous bulk equivalent, so it must stay silent.
func SumStrided(m *hmm.Machine, base, n int64) hmm.Word {
	var total hmm.Word
	for i := int64(0); i < n; i += 2 {
		total += m.Read(base + i)
	}
	return total
}

// SumScaled advances by one but scales the address; coefficient 2 is a
// stride, not an interval.
func SumScaled(m *hmm.Machine, base, n int64) hmm.Word {
	var total hmm.Word
	for i := int64(0); i < n; i++ {
		total += m.Read(base + i*2)
	}
	return total
}

// FillDescending writes downward; the analyzer only recognises +1
// loops.
func FillDescending(m *hmm.Machine, n int64, v hmm.Word) {
	for i := n - 1; i >= 0; i-- {
		m.Write(i, v)
	}
}

// notMachine has the same method name on a different type.
type notMachine struct{ vals []int64 }

func (c *notMachine) Read(x int64) int64 { return c.vals[x] }

// SumCache reads from a non-Machine type; the per-word discipline only
// governs charged memory.
func SumCache(c *notMachine, n int64) int64 {
	var total int64
	for i := int64(0); i < n; i++ {
		total += c.Read(i)
	}
	return total
}

// BulkAlready uses the bulk API inside the loop; nothing per-word to
// flag.
func BulkAlready(m *hmm.Machine, rows int64, width int) {
	buf := make([]hmm.Word, width)
	for r := int64(0); r < rows; r++ {
		m.ReadRange(r*int64(width), buf)
	}
}
