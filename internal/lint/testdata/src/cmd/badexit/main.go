// Command badexit is a lint fixture for the exitdiscipline analyzer:
// exits must route through the usageErr/fatal helpers.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("no args allowed")
	}
	if len(os.Args) > 2 {
		os.Exit(3)
	}
	usageErr("bad flags")
	os.Exit(0)
}

// usageErr must exit 2 but exits 1: finding.
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
