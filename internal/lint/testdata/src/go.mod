module fixture.example

go 1.22
