package lint

import (
	"go/ast"
	"strings"
)

// ExitDiscipline enforces the CLI exit-status convention introduced
// with the flag-validation work: commands under cmd/ report bad
// invocations through a usageErr helper (message + flag usage + exit
// status 2) and runtime failures through a fatal helper (message +
// exit status 1). Direct os.Exit calls outside those helpers and any
// log.Fatal* are findings — they bypass the message formatting, the
// usage print, and the exit-code contract the CLI tests assert on.
// Inside the helpers the code literal is pinned: usageErr exits 2,
// fatal exits 1.
var ExitDiscipline = &Analyzer{
	Name:  "exitdiscipline",
	Doc:   "cmd/ packages must route process exits through the usageErr (2) and fatal (1) helpers",
	Layer: LayerParse,
	Run:   runExitDiscipline,
}

func runExitDiscipline(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/cmd/") {
		return
	}
	for _, file := range pass.Pkg.Files {
		osName := importName(file, "os")
		logName := importName(file, "log")
		if osName == "" && logName == "" {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkExits(pass, fn, osName, logName)
		}
	}
}

// exitHelpers maps the sanctioned helper names to the exit code each
// must use.
var exitHelpers = map[string]string{"usageErr": "2", "fatal": "1"}

func checkExits(pass *Pass, fn *ast.FuncDecl, osName, logName string) {
	wantCode := exitHelpers[fn.Name.Name]
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if logName != "" {
			for _, sel := range []string{"Fatal", "Fatalf", "Fatalln"} {
				if isPkgCall(call, logName, sel) {
					pass.Reportf(call.Pos(),
						"log.%s exits without the usage/exit-code discipline; use the fatal helper (exit 1) or usageErr (exit 2) instead", sel)
					return true
				}
			}
		}
		if osName == "" || !isPkgCall(call, osName, "Exit") || len(call.Args) != 1 {
			return true
		}
		code, isLit := intLit(call.Args[0])
		if isLit && code == "0" {
			return true // explicit success exit is always allowed
		}
		switch {
		case wantCode == "":
			pass.Reportf(call.Pos(),
				"os.Exit outside the usageErr/fatal helpers; route flag-validation failures through usageErr (exit 2) and runtime failures through fatal (exit 1)")
		case !isLit || code != wantCode:
			pass.Reportf(call.Pos(),
				"%s must exit with status %s, got os.Exit(%s)", fn.Name.Name, wantCode, exprText(call.Args[0], code, isLit))
		}
		return true
	})
}

func exprText(e ast.Expr, lit string, isLit bool) string {
	if isLit {
		return lit
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "..."
}
