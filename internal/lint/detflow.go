package lint

// DetFlow is the interprocedural taint half of the determinism vet
// (DESIGN §12). Where detseed flags nondeterminism *sources* used
// directly in suspicious shapes, detflow follows the value: a taint
// fact born at a wall-clock read, a global math/rand draw, a map
// range, or a multi-case select is propagated through assignments,
// expressions, and module call summaries (parameter→result and
// parameter→sink flow, results carrying callee-internal sources), and
// reported only when it reaches a determinism sink — printed or
// byte-stream output (the JSONL records golden files pin), dbsp
// message sends, error strings, or a float64 cost accumulation.
//
// Sanctioned laundering is recognized: sorting a collected key slice
// kills its order taint (the collect-then-sort idiom), seeded
// rand.New(rand.NewSource(...)) generators are never tainted in the
// first place (only the global convenience functions are sources),
// and a //lint:ignore detflow directive on a *source* line suppresses
// every caller-side finding that source would induce — which is how a
// callee certifies "this clock read never reaches output" once,
// instead of each caller annotating its sink.
var DetFlow = &Analyzer{
	Name:  "detflow",
	Doc:   "no nondeterminism source (clock, global rand, map/select order) may flow into sweep output, dbsp sends, error strings, or charged costs",
	Layer: LayerInterproc,
	Run:   runDetFlow,
}

// runDetFlow replays the findings the shared bottom-up pass computed
// for this package. The heavy lifting happens once per lint.Run in
// Pass.Interproc; each per-package Run is a lookup.
func runDetFlow(pass *Pass) {
	if pass.Pkg.Info == nil {
		return
	}
	for _, f := range pass.Interproc().det[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}
