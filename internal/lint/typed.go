// typed.go is the dbspvet typed pass: it upgrades the parse-only
// framework to full go/types information without leaving the standard
// library. Module packages are type-checked from the lint.Load ASTs in
// dependency order through a custom importer; imports that are not part
// of the loaded module (the stdlib, mostly) resolve to empty
// placeholder packages. That trade keeps dbsplint dependency-free and
// fast, at the price of best-effort types: expressions that touch a
// placeholder import have no type, so typed analyzers treat "no type
// info" as "not provable" and stay silent rather than guess.
//
// What the placeholder scheme still delivers, and the analyzers rely
// on:
//
//   - named types of module packages resolve fully, so composite
//     literals of dbsp.Program / dbsp.Superstep are identified by type
//     identity instead of import-name heuristics;
//   - constant folding works for every constant built from literals
//     and module-declared constants (labels, machine sizes, metric
//     names assembled by concatenation);
//   - object identity works across the module (a helper method is
//     recognized at its call sites whatever it is called through);
//   - import references still resolve to a *types.PkgName whose path
//     is the real import path, so "is this time.Now?" is answerable
//     through aliases even though the placeholder "time" is empty.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TypeCheck populates Types and Info for every loaded package, in
// dependency order. It is idempotent: already-checked packages are
// skipped, and Run calls it implicitly. Type-check diagnostics land in
// Package.TypeErrors; with placeholder imports for the stdlib most are
// expected and harmless.
func TypeCheck(pkgs []*Package) {
	if len(pkgs) == 0 {
		return
	}
	tc := &typeChecker{
		byPath:   make(map[string]*Package, len(pkgs)),
		fakes:    map[string]*types.Package{},
		checking: map[string]bool{},
	}
	for _, p := range pkgs {
		tc.byPath[p.Path] = p
	}
	for _, p := range pkgs {
		tc.check(p)
	}
}

// typeChecker drives the dependency-ordered check and doubles as the
// types.Importer the checker resolves imports through.
type typeChecker struct {
	byPath   map[string]*Package
	fakes    map[string]*types.Package
	checking map[string]bool
}

// check type-checks p after its in-module dependencies.
func (tc *typeChecker) check(p *Package) {
	if p.Types != nil || tc.checking[p.Path] {
		return
	}
	tc.checking[p.Path] = true
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if dep, ok := tc.byPath[path]; ok {
				tc.check(dep)
			}
		}
	}
	conf := types.Config{
		Importer:    tc,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Check returns a (possibly incomplete) package even on errors;
	// partial information is exactly what the best-effort pass wants.
	tp, _ := conf.Check(p.Path, p.Fset, p.Files, info)
	p.Types, p.Info = tp, info
}

// Import resolves one import path: a loaded module package when
// available, the placeholder otherwise. It never fails — unresolvable
// imports degrade to empty packages instead of aborting the check.
func (tc *typeChecker) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := tc.byPath[path]; ok {
		if p.Types == nil {
			tc.check(p)
		}
		if p.Types != nil {
			return p.Types, nil
		}
	}
	if f, ok := tc.fakes[path]; ok {
		return f, nil
	}
	name := path
	if i := lastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	f := types.NewPackage(path, name)
	f.MarkComplete()
	tc.fakes[path] = f
	return f, nil
}

// constOf returns the folded constant value of e, or nil.
func constOf(p *Package, e ast.Expr) constant.Value {
	if p.Info == nil {
		return nil
	}
	return p.Info.Types[e].Value
}

// constIntOf returns e's value when it folds to an integer constant.
func constIntOf(p *Package, e ast.Expr) (int64, bool) {
	v := constOf(p, e)
	if v == nil || v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// constStringOf returns e's value when it folds to a string constant —
// a literal, a named constant, or any concatenation of those.
func constStringOf(p *Package, e ast.Expr) (string, bool) {
	v := constOf(p, e)
	if v == nil || v.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(v), true
}

// isTypeNamed reports whether t (through one pointer) is the named type
// pkgSuffix.name, where pkgSuffix matches the defining package's import
// path exactly or as a trailing "/"-separated suffix. Suffix matching
// lets the fixture module's mirror packages stand in for the real ones.
func isTypeNamed(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// pkgSelCall resolves a call of the form pkg.Fn(...) to the imported
// package's path and the selected name, through the type info — import
// aliases and shadowing are handled, unlike syntactic name matching.
func pkgSelCall(p *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID || p.Info == nil {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootIdent peels index, selector, star and paren layers off an
// assignable expression and returns the base identifier, or nil when
// the base is not a plain identifier (a call result, for example).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier through Defs and Uses.
func objectOf(p *Package, id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// calleeObject resolves the object a call's function expression
// denotes: the function or method object for plain and selector calls,
// nil otherwise.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	if p.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// posWithin reports whether pos falls inside node's source range.
func posWithin(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}
