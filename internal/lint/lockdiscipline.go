package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline checks `// guarded by <mu>` field annotations: a
// field so annotated may only be read or written on paths where the
// named sibling mutex is held. sweep.Progress, obs.Registry,
// obs.Profile and the obshttp sinks all follow the
// one-mutex-per-struct convention; this analyzer turns the convention
// into a checked contract, so the sharded engine refactor cannot
// silently add an unguarded heartbeat write or snapshot read.
//
// The analysis is a forward must-hold dataflow over the lint.CFG:
// <path>.Lock()/<path>.RLock() generate a held-guard fact keyed by the
// access path's root object and dotted field path, Unlock/RUnlock kill
// it, and merge is set intersection (a guard is held at a join only if
// held on every inbound path). `defer <path>.Unlock()` does not kill —
// the unlock runs at return. Two conventions refine the check:
//
//   - methods whose name ends in "Locked" assume every guard of their
//     receiver held at entry (the etaLocked/publishLocked pattern), and
//     call sites of such methods must hold those guards;
//   - accesses through differently-rooted paths (an indexed element, a
//     value returned by a call) are not matched — basePath gives up and
//     the analyzer stays silent rather than guessing aliases.
//
// Annotations are collected per package: guarded fields are internal
// state, accessed next to their mutex. Function literals are analyzed
// as separate functions with an empty entry state, so a closure that
// touches guarded state must lock (or be justified with a directive).
var LockDiscipline = &Analyzer{
	Name:  "lockdiscipline",
	Doc:   "fields annotated `// guarded by <mu>` are only accessed while the named mutex is held",
	Layer: LayerDataflow,
	Run:   runLockDiscipline,
}

// guardKey identifies one held mutex: the root object of its access
// path and the dotted field path from it ("mu", "root.mu").
type guardKey struct {
	base types.Object
	path string
}

// holdState is the must-hold lattice element: top (everything held,
// the unreachable boundary) or a finite held set.
type holdState struct {
	top  bool
	held map[guardKey]bool
}

func (s holdState) clone() holdState {
	if s.top {
		return s
	}
	c := make(map[guardKey]bool, len(s.held))
	for k := range s.held {
		c[k] = true
	}
	return holdState{held: c}
}

func (s holdState) equal(t holdState) bool {
	if s.top != t.top {
		return false
	}
	if len(s.held) != len(t.held) {
		return false
	}
	for k := range s.held {
		if !t.held[k] {
			return false
		}
	}
	return true
}

func (s holdState) has(k guardKey) bool { return s.top || s.held[k] }

// guardInfo is the per-package annotation table.
type guardInfo struct {
	// fieldGuard maps an annotated field to its guard's name.
	fieldGuard map[*types.Var]string
	// typeGuards maps a struct's type name to the set of guard names
	// its fields reference, for the *Locked receiver convention.
	typeGuards map[*types.TypeName]map[string]bool
}

func runLockDiscipline(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	gi := collectGuards(pkg)
	if len(gi.fieldGuard) == 0 {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				lockDisciplineFn(pass, gi, fn)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lockDisciplineFn(pass, gi, lit)
			}
			return true
		})
	}
}

// collectGuards scans the package's struct declarations for
// `// guarded by <name>` field comments (doc or trailing line comment).
func collectGuards(pkg *Package) guardInfo {
	gi := guardInfo{
		fieldGuard: map[*types.Var]string{},
		typeGuards: map[*types.TypeName]map[string]bool{},
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := objectOf(pkg, ts.Name).(*types.TypeName)
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := objectOf(pkg, name).(*types.Var); ok {
						gi.fieldGuard[v] = guard
					}
				}
				if tn != nil {
					if gi.typeGuards[tn] == nil {
						gi.typeGuards[tn] = map[string]bool{}
					}
					gi.typeGuards[tn][guard] = true
				}
			}
			return true
		})
	}
	return gi
}

// guardAnnotation extracts the mutex name from a field's
// `// guarded by <name>` comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guarded by ")
			if !ok {
				continue
			}
			if name := strings.Fields(rest); len(name) > 0 {
				return strings.TrimSuffix(name[0], ".")
			}
		}
	}
	return ""
}

// lockedEntry returns the entry state of fn: *Locked methods start
// with every guard of their receiver held.
func lockedEntry(pkg *Package, gi guardInfo, fn ast.Node) holdState {
	entry := holdState{held: map[guardKey]bool{}}
	decl, ok := fn.(*ast.FuncDecl)
	if !ok || !strings.HasSuffix(decl.Name.Name, "Locked") || decl.Recv == nil {
		return entry
	}
	for _, field := range decl.Recv.List {
		for _, name := range field.Names {
			recv, ok := objectOf(pkg, name).(*types.Var)
			if !ok {
				continue
			}
			for _, g := range receiverGuards(gi, recv.Type()) {
				entry.held[guardKey{recv, g}] = true
			}
		}
	}
	return entry
}

// receiverGuards returns the guard names annotated on t's struct
// fields (chasing one pointer layer), or nil.
func receiverGuards(gi guardInfo, t types.Type) []string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	var out []string
	for g := range gi.typeGuards[named.Obj()] {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func lockDisciplineFn(pass *Pass, gi guardInfo, fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	pkg := pass.Pkg
	cfg := NewCFG(body)
	transfer := func(s holdState, n ast.Node) holdState {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return s // deferred Unlock runs at return, not here
		}
		var gen, kill []guardKey
		scanBlockNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			base, path, ok := basePath(pkg, sel.X)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				gen = append(gen, guardKey{base, path})
			case "Unlock", "RUnlock":
				kill = append(kill, guardKey{base, path})
			}
			return true
		})
		if len(gen) == 0 && len(kill) == 0 {
			return s
		}
		out := s.clone()
		if out.top {
			return out
		}
		for _, k := range kill {
			delete(out.held, k)
		}
		for _, k := range gen {
			out.held[k] = true
		}
		return out
	}
	in := SolveForward(cfg, FlowProblem[holdState]{
		Boundary:    lockedEntry(pkg, gi, fn),
		Unreachable: holdState{top: true},
		Merge: func(a, b holdState) holdState {
			if a.top {
				return b.clone()
			}
			if b.top {
				return a.clone()
			}
			m := map[guardKey]bool{}
			for k := range a.held {
				if b.held[k] {
					m[k] = true
				}
			}
			return holdState{held: m}
		},
		Transfer: transfer,
		Equal:    func(a, b holdState) bool { return a.equal(b) },
	})
	for _, blk := range cfg.Blocks {
		s := in[blk]
		for _, n := range blk.Nodes {
			checkGuardedAccesses(pass, gi, s, n)
			s = transfer(s, n)
		}
	}
}

// checkGuardedAccesses flags guarded-field accesses and *Locked method
// calls in n for which the required guard is not in s.
func checkGuardedAccesses(pass *Pass, gi guardInfo, s holdState, n ast.Node) {
	pkg := pass.Pkg
	scanBlockNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectorExpr:
			v, ok := objectOf(pkg, m.Sel).(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			guard, ok := gi.fieldGuard[v]
			if !ok {
				return true
			}
			base, prefix, ok := basePath(pkg, m.X)
			if !ok {
				return true // unmatchable path: stay silent
			}
			key := guardKey{base, joinPath(prefix, guard)}
			if !s.has(key) {
				pass.Reportf(m.Sel.Pos(),
					"%q is annotated `guarded by %s` but %s is not held here — lock it first or move the access into a *Locked helper",
					m.Sel.Name, guard, accessPathString(base, key.path))
			}
		case *ast.CallExpr:
			sel, ok := m.Fun.(*ast.SelectorExpr)
			if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
				return true
			}
			fn, ok := objectOf(pkg, sel.Sel).(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			base, prefix, ok := basePath(pkg, sel.X)
			if !ok {
				return true
			}
			tv, haveType := pkg.Info.Types[sel.X]
			if !haveType {
				return true
			}
			for _, g := range receiverGuards(gi, tv.Type) {
				key := guardKey{base, joinPath(prefix, g)}
				if !s.has(key) {
					pass.Reportf(m.Pos(),
						"%s assumes %s held (the *Locked convention) but it is not held at this call",
						sel.Sel.Name, accessPathString(base, key.path))
				}
			}
		}
		return true
	})
}

func joinPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

func accessPathString(base types.Object, path string) string {
	if path == "" {
		return base.Name()
	}
	return base.Name() + "." + path
}
