package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetSeed enforces the determinism discipline of the internal packages:
// the sweep engine promises byte-identical output for any -workers
// value, and that only holds when every source of nondeterminism is
// funneled through the seeded paths (sweep.SeedFor and the per-job
// rand.New(rand.NewSource(seed)) generators). Three leak classes are
// flagged:
//
//   - time.Now calls — wall-clock readings differ between runs. The
//     canonical exemption is duration measurement that never reaches
//     program output; mark those sites with
//     "//lint:ignore detseed <reason>".
//   - the global math/rand (and math/rand/v2) convenience functions —
//     they draw from a process-wide source shared across goroutines;
//     use a locally seeded *rand.Rand instead.
//   - ranging over a map to produce ordered output: a loop body that
//     Sends messages, prints, or appends to a slice observes Go's
//     randomized map iteration order. Appends are exempt when the
//     slice is passed to a sort/slices call later in the same function
//     — the collect-then-sort idiom restores determinism.
var DetSeed = &Analyzer{
	Name:  "detseed",
	Doc:   "internal/ packages must stay deterministic: no time.Now, no global math/rand, no ordered output from map iteration",
	Layer: LayerTyped,
	Run:   runDetSeed,
}

// globalRandFuncs are the math/rand and math/rand/v2 package-level
// functions that draw from the shared global source. Constructors
// (New, NewSource, NewPCG, NewChaCha8, NewZipf) are the approved
// deterministic path and are absent.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true,
}

func runDetSeed(pass *Pass) {
	pkg := pass.Pkg
	path := pkg.Path
	if !strings.Contains(path, "/internal/") && !strings.HasPrefix(path, "internal/") {
		return
	}
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		// funcBodies tracks enclosing function bodies (decls and
		// literals) so map-range append findings can look for a
		// restoring sort later in the same function.
		var funcBodies []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					funcBodies = append(funcBodies, x.Body)
					ast.Inspect(x.Body, walk)
					funcBodies = funcBodies[:len(funcBodies)-1]
					return false
				}
			case *ast.FuncLit:
				funcBodies = append(funcBodies, x.Body)
				ast.Inspect(x.Body, walk)
				funcBodies = funcBodies[:len(funcBodies)-1]
				return false
			case *ast.CallExpr:
				if impPath, name, ok := pkgSelCall(pkg, x); ok {
					checkNondetCall(pass, x, impPath, name)
				}
			case *ast.RangeStmt:
				if isMapRange(pkg, x) {
					var encl *ast.BlockStmt
					if len(funcBodies) > 0 {
						encl = funcBodies[len(funcBodies)-1]
					}
					checkMapRange(pass, x, encl)
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
}

// checkNondetCall flags time.Now and global math/rand draws.
func checkNondetCall(pass *Pass, call *ast.CallExpr, impPath, name string) {
	switch {
	case impPath == "time" && name == "Now":
		pass.Reportf(call.Pos(),
			"time.Now in internal/ breaks run-to-run determinism; derive timing-free logic from seeds (or //lint:ignore detseed for pure duration measurement)")
	case (impPath == "math/rand" || impPath == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(),
			"global rand.%s draws from the shared process-wide source; use rand.New(rand.NewSource(seed)) with a sweep-derived seed so results are reproducible", name)
	}
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(p *Package, rng *ast.RangeStmt) bool {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange flags ordered-output sinks inside a map-iteration body.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	pkg := pass.Pkg
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Send" {
				pass.Reportf(x.Pos(),
					"Send inside a map range: message order follows Go's randomized map iteration; iterate a sorted key slice instead")
				return true
			}
			if impPath, name, ok := pkgSelCall(pkg, x); ok && impPath == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(x.Pos(),
					"printing inside a map range emits lines in randomized iteration order; collect and sort first")
			}
		case *ast.AssignStmt:
			checkRangeAppend(pass, x, rng, encl)
		}
		return true
	})
}

// checkRangeAppend flags `s = append(s, ...)` inside a map range unless
// s is sorted later in the enclosing function.
func checkRangeAppend(pass *Pass, asg *ast.AssignStmt, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	pkg := pass.Pkg
	for i, rhs := range asg.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
			continue
		}
		if i >= len(asg.Lhs) {
			continue
		}
		id := rootIdent(asg.Lhs[i])
		if id == nil {
			continue
		}
		obj := objectOf(pkg, id)
		if obj == nil || sortedAfter(pkg, encl, obj, rng.End()) {
			continue
		}
		pass.Reportf(asg.Pos(),
			"append to %q inside a map range produces randomized element order; sort it afterwards or iterate sorted keys", id.Name)
	}
}

// sortedAfter reports whether obj is passed to a sort or slices call
// positioned after pos inside body — the collect-then-sort idiom.
func sortedAfter(p *Package, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		impPath, _, ok := pkgSelCall(p, call)
		if !ok || (impPath != "sort" && impPath != "slices") {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// Unwrap one conversion/constructor layer: sort.Sort(byName(s)).
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = ast.Unparen(inner.Args[0])
		}
		if id := rootIdent(arg); id != nil && objectOf(p, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
