package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BulkCharge keeps the PR-5 fast-path discipline from regressing:
// per-word hmm.Machine accesses inside a unit-stride loop are charged
// one cost-table lookup per word, while the bulk *Range APIs charge
// the whole interval in O(segments). A hot loop that calls Read(base+i)
// a million times is exactly the shape the compiled access-function
// tables were built to avoid, and nothing but review pressure
// currently stops it from coming back.
//
// The analyzer flags a call to a per-word Machine method (Read, Write,
// SwapWords, Poke) when (a) the call sits in a for or range loop whose
// induction variable advances by exactly +1 per iteration, and (b) the
// address argument contains that induction variable as an additive
// coefficient-1 term (i, base+i, i+off — not i*w, not 2*i). That is
// precisely the contiguous-interval shape the matching bulk API
// (ReadRange, WriteRange, SwapRange, PokeRange) covers. Strided loops,
// non-unit steps and data-dependent addresses are left alone, as are
// calls inside nested function literals (they run on their own
// schedule). When the loop really must go word-at-a-time — e.g. each
// iteration's address depends on the previous word — justify with a
// //lint:ignore bulkcharge directive.
var BulkCharge = &Analyzer{
	Name:  "bulkcharge",
	Doc:   "per-word hmm charge calls in unit-stride loops should use the bulk *Range APIs",
	Layer: LayerDataflow,
	Run:   runBulkCharge,
}

// bulkFor maps each per-word Machine method to its bulk replacement.
var bulkFor = map[string]string{
	"Read":      "ReadRange",
	"Write":     "WriteRange",
	"SwapWords": "SwapRange",
	"Poke":      "PokeRange",
}

func runBulkCharge(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	reported := map[token.Pos]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var indVar *ast.Ident
			switch loop := n.(type) {
			case *ast.ForStmt:
				indVar = unitStrideVar(loop)
				body = loop.Body
			case *ast.RangeStmt:
				// Range loops always advance their key by one.
				if key, ok := loop.Key.(*ast.Ident); ok && key.Name != "_" {
					indVar = key
				}
				body = loop.Body
			default:
				return true
			}
			if indVar == nil {
				return true
			}
			checkLoopBody(pass, body, indVar, reported)
			return true
		})
	}
}

// unitStrideVar returns the induction variable of a for loop whose
// post statement advances it by exactly +1 (i++ or i += 1), or nil.
func unitStrideVar(loop *ast.ForStmt) *ast.Ident {
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok != token.INC {
			return nil
		}
		id, _ := ast.Unparen(post.X).(*ast.Ident)
		return id
	case *ast.AssignStmt:
		if post.Tok != token.ADD_ASSIGN || len(post.Lhs) != 1 || len(post.Rhs) != 1 {
			return nil
		}
		if lit, ok := intLit(post.Rhs[0]); !ok || lit != "1" {
			return nil
		}
		id, _ := ast.Unparen(post.Lhs[0]).(*ast.Ident)
		return id
	}
	return nil
}

// checkLoopBody flags qualifying per-word calls in body. Nested
// function literals are skipped; nested loops are visited here too
// (an outer-variable address inside an inner loop still qualifies),
// with the reported set preventing duplicates when both loops match.
func checkLoopBody(pass *Pass, body *ast.BlockStmt, indVar *ast.Ident, reported map[token.Pos]bool) {
	pkg := pass.Pkg
	v := objectOf(pkg, indVar)
	if v == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call.Pos()] {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		bulk, ok := bulkFor[sel.Sel.Name]
		if !ok || len(call.Args) == 0 {
			return true
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || !isTypeNamed(tv.Type, "internal/hmm", "Machine") {
			return true
		}
		// SwapWords takes two addresses; the others take the address
		// first. Any unit-stride address argument qualifies.
		addrs := call.Args[:1]
		if sel.Sel.Name == "SwapWords" && len(call.Args) >= 2 {
			addrs = call.Args[:2]
		}
		for _, addr := range addrs {
			if linearInVar(pkg, addr, v) {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"per-word %s on a unit-stride address inside a +1 loop charges per word — use %s to charge the interval in O(segments)",
					sel.Sel.Name, bulk)
				break
			}
		}
		return true
	})
}

// linearInVar reports whether expr is an additive expression
// containing v exactly once with coefficient 1: v, base+v, v+off,
// base+v-k. Multiplication, division, shifts and repeated occurrences
// (2*v, v+v) disqualify — those strides have no contiguous bulk
// equivalent.
func linearInVar(pkg *Package, expr ast.Expr, v types.Object) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return objectOf(pkg, e) == v
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.SUB {
			return false
		}
		l := linearInVar(pkg, e.X, v)
		// v must not appear in a subtrahend (base - v is a reversed
		// stride) nor on both sides (v+v has coefficient 2).
		r := e.Op == token.ADD && linearInVar(pkg, e.Y, v)
		if l && containsVar(pkg, e.Y, v) {
			return false
		}
		if r && containsVar(pkg, e.X, v) {
			return false
		}
		return l || r
	case *ast.CallExpr:
		// A conversion like int64(i) is transparent; real calls are not.
		if len(e.Args) == 1 && isConversion(pkg, e) {
			return linearInVar(pkg, e.Args[0], v)
		}
	}
	return false
}

// containsVar reports whether v occurs anywhere in expr.
func containsVar(pkg *Package, expr ast.Expr, v types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(pkg, id) == v {
			found = true
		}
		return !found
	})
	return found
}

// isConversion reports whether call is a type conversion.
func isConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}
