// Package lint is a stdlib-only static-analysis framework enforcing
// the repo's simulation invariants: the conventions that the paper's
// guarantees (Theorems 5, 10 and 12) and the test suite's invariants
// lean on but that the compiler cannot check. Each Analyzer inspects
// one convention; cmd/dbsplint runs the whole suite over the module
// and fails CI on any finding.
//
// The framework has three layers. The syntactic analyzers (nilguard,
// panicmsg, exitdiscipline) inspect parse trees only — their invariants
// are purely syntactic disciplines. The dbspvet typed pass (typed.go)
// adds full go/types information through a custom importer that checks
// the module's own packages in dependency order from the Load results,
// resolving out-of-module imports to empty placeholders; the typed
// analyzers (stepshape, stepconfine, detseed, costcharge) use it to
// statically prove the paper's Section 2 program discipline, handler
// state confinement, sweep determinism and the cost-partition identity.
// The dataflow layer (cfg.go, dataflow.go) builds per-function
// control-flow graphs and reaching definitions on top of the typed
// pass; the dataflow analyzers (sharesafe, lockdiscipline,
// snapshotonly, bulkcharge) use it for the flow-sensitive concurrency
// and cost disciplines the sharded engine refactor depends on
// (DESIGN §10). Everything stays in the standard library, so dbsplint remains
// dependency-free (go.mod has no requirements) and fast enough to run
// on every push.
//
// Findings can be suppressed with a justified directive — see
// directive.go for the //lint:ignore form.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer layers, in framework order: each layer builds on the
// previous one's information.
const (
	// LayerParse analyzers inspect parse trees only.
	LayerParse = "parse"
	// LayerTyped analyzers use the dbspvet go/types pass.
	LayerTyped = "typed"
	// LayerDataflow analyzers run per-function CFG/fixpoint problems.
	LayerDataflow = "dataflow"
	// LayerInterproc analyzers consume the module call graph and the
	// bottom-up per-function summaries.
	LayerInterproc = "interproc"
)

// Analyzer is one named check over a package.
type Analyzer struct {
	// Name identifies the analyzer in findings ("nilguard", ...).
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Layer names the framework layer the analyzer runs on: parse,
	// typed, dataflow, or interproc (dbsplint -list prints it).
	Layer string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(*Pass)
}

// runState is the state one lint.Run shares across every (package,
// analyzer) pass: the finding accumulator, the parsed //lint:ignore
// directives, and the lazily built interprocedural view.
type runState struct {
	findings   []Finding
	directives []*directive
	interproc  *Interproc
}

// Pass is one analyzer's view of one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under inspection.
	Pkg *Package
	// All is every module package in the run (Pkg included), for
	// module-wide analyzers like snapshotonly that chase calls across
	// package boundaries. All packages share one FileSet, so positions
	// from any of them render correctly through Reportf.
	All []*Package
	// run is the shared per-Run state.
	run *runState
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.run.findings = append(p.run.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Interproc returns the run's shared interprocedural view — the module
// call graph and the bottom-up function summaries — building it on
// first use. Analyzers of the interproc layer call this instead of
// constructing their own graph, so the expensive bottom-up pass runs
// once per lint.Run however many packages and analyzers consume it.
func (p *Pass) Interproc() *Interproc {
	if p.run.interproc == nil {
		p.run.interproc = NewInterproc(p.All, p.run.directives)
	}
	return p.run.interproc
}

// Finding is one diagnostic.
type Finding struct {
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the finding in the canonical file:line: analyzer:
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, then analyzer name. The typed pass runs first
// (idempotently) so typed analyzers see go/types information, and
// //lint:ignore directives are applied before sorting.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	TypeCheck(pkgs)
	rs := &runState{directives: collectDirectives(pkgs)}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, All: pkgs, run: rs})
		}
	}
	findings := applyDirectives(rs.directives, analyzers, rs.findings)
	sort.Slice(findings, func(i, j int) bool {
		fi, fj := findings[i], findings[j]
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		if fi.Pos.Line != fj.Pos.Line {
			return fi.Pos.Line < fj.Pos.Line
		}
		return fi.Analyzer < fj.Analyzer
	})
	return findings
}

// Analyzers returns the full suite in display order: the syntactic
// checks first, then the dbspvet typed pass, the dataflow analyzers,
// and the interprocedural determinism vet.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NilGuard,
		PanicMsg,
		ExitDiscipline,
		StepShape,
		StepConfine,
		DetSeed,
		CostCharge,
		ShareSafe,
		LockDiscipline,
		SnapshotOnly,
		BulkCharge,
		DetFlow,
		FloatFold,
	}
}

// importName returns the local name under which file imports path, or
// "" when it does not. The default name is the last path segment.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := imp.Path.Value // quoted
		if p != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := lastIndexByte(path, '/'); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// stringLit returns the unquoted value of a string literal expression,
// if e is one.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || len(lit.Value) < 2 {
		return "", false
	}
	// Interpreted and raw strings both keep their prefix verbatim for
	// the characters the analyzers care about (no escapes in package
	// prefixes or metric names).
	return lit.Value[1 : len(lit.Value)-1], true
}

// intLit returns the value of a decimal integer literal expression.
func intLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return "", false
	}
	return lit.Value, true
}

// isPkgCall reports whether call invokes sel from the package imported
// under local name pkgName (e.g. os.Exit, fmt.Sprintf).
func isPkgCall(call *ast.CallExpr, pkgName, sel string) bool {
	s, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	return ok && id.Name == pkgName
}
