package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CostCharge is the typed upgrade of the retired syntactic obspartition
// analyzer, enforcing the cost-partition invariant of the observability
// layer (internal/obs/report.go): the top-level <sim>.cost.<phase>
// float counters a simulator charges must partition the exact returned
// host cost — the obs tests assert Σ phases == <sim>.cost.total. The
// cross-check is the same three rules:
//
//   - a package that charges top-level phase counters must declare the
//     package-level costPhases string slice the tests sum over;
//   - every charged phase must be listed in costPhases;
//   - every listed phase must be charged somewhere in the package.
//
// What the typed pass adds over the bare-literal matcher it replaces:
// counter names are resolved through go/types constant folding, so
// named constants and constant concatenations count as charges; the
// costPhases entries fold the same way; and cost-window helpers (a
// function whose body charges FloatCounter(<const ".cost." prefix> +
// <param>)) are recognized by object identity at their call sites,
// whatever name or receiver they are invoked through. Immediate
// .Value() reads stay exempt (inspection, not charging), as do dotted
// sub-phases (<sim>.cost.<phase>.<sub>) and the verbatim-copied
// <sim>.cost.total.
var CostCharge = &Analyzer{
	Name:  "costcharge",
	Doc:   "charged <sim>.cost.<phase> counters (resolved through constants and helpers) must match the package's declared costPhases partition",
	Layer: LayerTyped,
	Run:   runCostCharge,
}

// chargeHelper is a function whose body charges a phase counter built
// from a constant "<sim>.cost." prefix and one of its parameters.
type chargeHelper struct {
	obj   types.Object // the helper function object
	param int          // index of the phase-name parameter
}

func runCostCharge(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	helpers := findChargeHelpers(pkg)

	type site struct {
		name string
		pos  token.Pos
	}
	var charged []site
	for _, file := range pkg.Files {
		// FloatCounter resolutions immediately read via .Value() are
		// inspections, not charges.
		valueReads := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Value" {
				return true
			}
			if inner, ok := sel.X.(*ast.CallExpr); ok && isFloatCounterCall(inner) {
				valueReads[inner] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFloatCounterCall(call) && !valueReads[call] && len(call.Args) == 1 {
				if name, ok := constStringOf(pkg, call.Args[0]); ok {
					if phase, top := topLevelPhase(name); top {
						charged = append(charged, site{phase, call.Args[0].Pos()})
					}
				}
			}
			if h, ok := resolveHelper(pkg, helpers, call); ok && h.param < len(call.Args) {
				arg := call.Args[h.param]
				if name, ok := constStringOf(pkg, arg); ok && !strings.Contains(name, ".") {
					charged = append(charged, site{name, arg.Pos()})
				}
			}
			return true
		})
	}
	if len(charged) == 0 {
		return
	}

	declared, declPos, declNames := findCostPhases(pass)
	if declared == nil {
		pass.Reportf(charged[0].pos,
			"package %s charges cost phases but declares no costPhases partition (the obs tests sum the partition against <sim>.cost.total)",
			pkg.Name)
		return
	}
	seen := map[string]bool{}
	for _, c := range charged {
		seen[c.name] = true
		if !declared[c.name] {
			pass.Reportf(c.pos,
				"cost phase %q is charged but missing from costPhases; it would break the phases-partition-the-total invariant", c.name)
		}
	}
	for _, name := range declNames {
		if !seen[name] {
			pass.Reportf(declPos,
				"costPhases lists %q but the package never charges it; remove the stale entry or restore the counter", name)
		}
	}
}

// findChargeHelpers scans the package's function declarations for the
// cost-window helper shape: somewhere in the body, FloatCounter(prefix
// + param) with a constant prefix ending in ".cost.".
func findChargeHelpers(pkg *Package) []chargeHelper {
	var helpers []chargeHelper
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			params := paramObjects(pkg, fn)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isFloatCounterCall(call) || len(call.Args) != 1 {
					return true
				}
				b, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
				if !ok || b.Op != token.ADD {
					return true
				}
				prefix, ok := constStringOf(pkg, b.X)
				if !ok || !strings.HasSuffix(prefix, ".cost.") || len(prefix) <= len(".cost.") {
					return true
				}
				id, ok := ast.Unparen(b.Y).(*ast.Ident)
				if !ok {
					return true
				}
				obj := objectOf(pkg, id)
				for i, p := range params {
					if p == obj {
						helpers = append(helpers, chargeHelper{obj: objectOf(pkg, fn.Name), param: i})
						return false
					}
				}
				return true
			})
		}
	}
	return helpers
}

// paramObjects returns the declared parameter objects of fn in order.
func paramObjects(pkg *Package, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, objectOf(pkg, name))
		}
	}
	return out
}

// resolveHelper matches a call against the discovered helpers by callee
// object identity.
func resolveHelper(pkg *Package, helpers []chargeHelper, call *ast.CallExpr) (chargeHelper, bool) {
	if len(helpers) == 0 {
		return chargeHelper{}, false
	}
	obj := calleeObject(pkg, call)
	if obj == nil {
		return chargeHelper{}, false
	}
	for _, h := range helpers {
		if h.obj == obj {
			return h, true
		}
	}
	return chargeHelper{}, false
}

// topLevelPhase splits a metric name of the form <sim>.cost.<phase>
// and reports whether it is a chargeable top-level phase (single
// segment, not "total").
func topLevelPhase(name string) (string, bool) {
	i := strings.Index(name, ".cost.")
	if i <= 0 {
		return "", false
	}
	phase := name[i+len(".cost."):]
	if phase == "" || phase == "total" || strings.Contains(phase, ".") {
		return "", false
	}
	// The prefix must be a bare component name (no further dots).
	if strings.Contains(name[:i], ".") {
		return "", false
	}
	return phase, true
}

// isFloatCounterCall matches <expr>.FloatCounter(...) — the obs
// Registry/Observer resolution method.
func isFloatCounterCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "FloatCounter"
}

// findCostPhases locates the package-level `costPhases` declaration and
// returns its entries as a set, its position, and the entries in order.
// Entries fold through the type info, so named constants are legal.
func findCostPhases(pass *Pass) (map[string]bool, token.Pos, []string) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "costPhases" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					set := map[string]bool{}
					var names []string
					for _, elt := range lit.Elts {
						s, ok := constStringOf(pkg, elt)
						if !ok {
							s, ok = stringLit(elt)
						}
						if ok {
							set[s] = true
							names = append(names, s)
						}
					}
					return set, name.Pos(), names
				}
			}
		}
	}
	return nil, token.NoPos, nil
}
