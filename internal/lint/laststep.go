package lint

import (
	"go/ast"
)

// LastStep enforces the standing assumption of paper Section 2 that
// every D-BSP program ends with a 0-superstep (a global barrier) — the
// precondition of all three simulation schemes (dbsp.Program
// documents it; the simulators reject programs that violate it at run
// time). The analyzer checks it at the source level for every
// dbsp.Program composite literal whose Steps field is itself a slice
// literal: the final superstep literal must have Label 0 (explicitly,
// or implicitly by omitting the field). Programs that build Steps
// imperatively are covered by the runtime check instead.
var LastStep = &Analyzer{
	Name: "laststep",
	Doc:  "dbsp.Program.Steps literals must end with a Label: 0 superstep",
	Run:  runLastStep,
}

const dbspImportPath = "repro/internal/dbsp"

func runLastStep(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		dbspName := importName(file, dbspImportPath)
		inDbsp := pass.Pkg.Name == "dbsp" && dbspName == ""
		if dbspName == "" && !inDbsp {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isNamedType(lit.Type, dbspName, "Program") {
				return true
			}
			steps := fieldValue(lit, "Steps")
			stepsLit, ok := steps.(*ast.CompositeLit)
			if !ok || len(stepsLit.Elts) == 0 {
				return true
			}
			last, ok := stepsLit.Elts[len(stepsLit.Elts)-1].(*ast.CompositeLit)
			if !ok {
				return true
			}
			label := superstepLabel(last)
			if label == nil {
				return true // implicit or non-constant label: zero or unprovable
			}
			if v, ok := intLit(label); ok && v != "0" {
				pass.Reportf(label.Pos(),
					"Program.Steps literal must end with a Label: 0 superstep (global barrier, paper Section 2); last superstep has Label: %s", v)
			}
			return true
		})
	}
}

// isNamedType reports whether t denotes the named type pkgName.name
// (or plain name when pkgName is "", i.e. inside the defining package),
// through at most one pointer.
func isNamedType(t ast.Expr, pkgName, name string) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return pkgName == "" && x.Name == name
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && pkgName != "" && id.Name == pkgName && x.Sel.Name == name
	}
	return false
}

// fieldValue returns the value of the named field in a keyed composite
// literal, or nil.
func fieldValue(lit *ast.CompositeLit, field string) ast.Expr {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return kv.Value
		}
	}
	return nil
}

// superstepLabel returns the Label expression of a Superstep composite
// literal: the Label key's value in keyed form, the first element in
// positional form, nil when absent (implicit zero).
func superstepLabel(lit *ast.CompositeLit) ast.Expr {
	if len(lit.Elts) == 0 {
		return nil
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
		return fieldValue(lit, "Label")
	}
	return lit.Elts[0]
}
