package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// goldenWant is the exact diagnostic set the fixture tree under
// testdata/src must produce — one deliberately bad construct per
// analyzer (plus compliant siblings that must stay silent). Any
// analyzer regression shows up as a missing or changed line.
var goldenWant = []string{
	"cmd/badexit/main.go:13: exitdiscipline: log.Fatal exits without the usage/exit-code discipline; use the fatal helper (exit 1) or usageErr (exit 2) instead",
	"cmd/badexit/main.go:16: exitdiscipline: os.Exit outside the usageErr/fatal helpers; route flag-validation failures through usageErr (exit 2) and runtime failures through fatal (exit 1)",
	"cmd/badexit/main.go:25: exitdiscipline: usageErr must exit with status 2, got os.Exit(1)",
	`internal/badpanic/badpanic.go:13: panicmsg: panic message "boom with no prefix" must start with the package prefix "badpanic: "`,
	`internal/badpanic/badpanic.go:16: panicmsg: panic argument must be a "badpanic: "-prefixed message (string literal, "badpanic: " + ..., or fmt.Sprintf/Errorf with a prefixed format); got a value the linter cannot see a prefix in`,
	`internal/badpanic/badpanic.go:19: panicmsg: panic message "other: wrong prefix %d" must start with the package prefix "badpanic: "`,
	`internal/badsim/sim.go:7: obspartition: costPhases lists "stale" but the package never charges it; remove the stale entry or restore the counter`,
	`internal/badsim/sim.go:18: obspartition: cost phase "comm" is charged but missing from costPhases; it would break the phases-partition-the-total invariant`,
	"internal/nodecl/sim.go:11: obspartition: package nodecl charges cost phases but declares no costPhases partition (the obs tests sum the partition against <sim>.cost.total)",
	"internal/obs/sink.go:11: nilguard: exported method (*Sink).Emit must begin with a nil-receiver guard (`if s == nil`) so disabled instrumentation stays free",
	"internal/progs/progs.go:13: laststep: Program.Steps literal must end with a Label: 0 superstep (global barrier, paper Section 2); last superstep has Label: 2",
}

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "fixture.example")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return pkgs
}

func TestGoldenFixtures(t *testing.T) {
	root, _ := filepath.Abs(filepath.Join("testdata", "src"))
	findings := Run(loadFixtures(t), Analyzers())

	var got []string
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s:%d: %s: %s",
			filepath.ToSlash(rel), f.Pos.Line, f.Analyzer, f.Message))
	}

	for i := 0; i < len(got) || i < len(goldenWant); i++ {
		switch {
		case i >= len(got):
			t.Errorf("missing finding:\n  want %s", goldenWant[i])
		case i >= len(goldenWant):
			t.Errorf("unexpected finding:\n  got  %s", got[i])
		case got[i] != goldenWant[i]:
			t.Errorf("finding %d:\n  got  %s\n  want %s", i, got[i], goldenWant[i])
		}
	}
}

// TestGoldenEveryAnalyzerFires guards the fixture tree itself: each
// analyzer must have at least one failing case, so removing an
// analyzer (or silently breaking its Run) cannot pass the suite.
func TestGoldenEveryAnalyzerFires(t *testing.T) {
	pkgs := loadFixtures(t)
	for _, a := range Analyzers() {
		if n := len(Run(pkgs, []*Analyzer{a})); n == 0 {
			t.Errorf("analyzer %s finds nothing in the fixture tree", a.Name)
		}
	}
}

// TestRepoIsClean is the self-hosting check: the repository's own
// packages must produce zero findings, mirroring the CI gate.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modpath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modpath)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("repo finding: %s", f)
	}
}
