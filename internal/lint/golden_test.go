package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// goldenWant is the exact diagnostic set the fixture tree under
// testdata/src must produce — one deliberately bad construct per
// analyzer (plus compliant siblings that must stay silent). Any
// analyzer regression shows up as a missing or changed line.
var goldenWant = []string{
	"cmd/badexit/main.go:13: exitdiscipline: log.Fatal exits without the usage/exit-code discipline; use the fatal helper (exit 1) or usageErr (exit 2) instead",
	"cmd/badexit/main.go:16: exitdiscipline: os.Exit outside the usageErr/fatal helpers; route flag-validation failures through usageErr (exit 2) and runtime failures through fatal (exit 1)",
	"cmd/badexit/main.go:25: exitdiscipline: usageErr must exit with status 2, got os.Exit(1)",
	"internal/badbulk/badbulk.go:14: bulkcharge: per-word Read on a unit-stride address inside a +1 loop charges per word — use ReadRange to charge the interval in O(segments)",
	"internal/badbulk/badbulk.go:23: bulkcharge: per-word Write on a unit-stride address inside a +1 loop charges per word — use WriteRange to charge the interval in O(segments)",
	"internal/badbulk/badbulk.go:31: bulkcharge: per-word Read on a unit-stride address inside a +1 loop charges per word — use ReadRange to charge the interval in O(segments)",
	"internal/badbulk/badbulk.go:39: bulkcharge: per-word SwapWords on a unit-stride address inside a +1 loop charges per word — use SwapRange to charge the interval in O(segments)",
	`internal/badcharge/badcharge.go:29: costcharge: cost phase "comm" is charged but missing from costPhases; it would break the phases-partition-the-total invariant`,
	`internal/badcharge/badcharge.go:31: costcharge: cost phase "route" is charged but missing from costPhases; it would break the phases-partition-the-total invariant`,
	`internal/badconfine/badconfine.go:14: stepconfine: Run closure writes captured variable "total"; processors execute concurrently, so writes to enclosing-scope state race (keep per-processor state in the Ctx, or aggregate after the run)`,
	`internal/badconfine/badconfine.go:26: stepconfine: Run closure writes captured variable "log"; processors execute concurrently, so writes to enclosing-scope state race (keep per-processor state in the Ctx, or aggregate after the run)`,
	"internal/baddetflow/baddetflow.go:35: detflow: argument to Emit is tainted by map-iteration order (baddetflow.go:31) and reaches printed output inside it (baddetflow.go:22): nondeterminism in output breaks the byte-identical sweep contract",
	"internal/baddetflow/baddetflow.go:58: detflow: value tainted by a wall-clock reading (baddetflow.go:53) via Uptime reaches printed output: nondeterminism in output breaks the byte-identical sweep contract (sort, seed, or //lint:ignore detflow with a reason)",
	"internal/baddetflow/baddetflow.go:68: detflow: argument to LogCost is tainted by a wall-clock reading (baddetflow.go:53) via Uptime and reaches printed output inside it (baddetflow.go:63): nondeterminism in output breaks the byte-identical sweep contract",
	"internal/baddetflow/baddetflow.go:80: detflow: argument to LogPair is tainted by map-iteration order (baddetflow.go:79) and reaches printed output inside it (baddetflow.go:73): nondeterminism in output breaks the byte-identical sweep contract",
	"internal/baddetflow/baddetflow.go:80: detflow: call to LogPair, which emits output (fmt.Printf at baddetflow.go:73), inside a map range: records land in randomized iteration order; iterate sorted keys instead",
	"internal/baddetflow/baddetflow.go:93: detflow: value tainted by select scheduling order (baddetflow.go:89) reaches an error string (golden files compare these): nondeterminism in output breaks the byte-identical sweep contract (sort, seed, or //lint:ignore detflow with a reason)",
	"internal/badfold/badfold.go:17: detflow: value tainted by map-iteration order (badfold.go:16) reaches a float64 cost accumulation: nondeterminism in output breaks the byte-identical sweep contract (sort, seed, or //lint:ignore detflow with a reason)",
	`internal/badfold/badfold.go:17: floatfold: float64 accumulation into "sum" inside a map-range body: iteration order is randomized, so this fold can reassociate run to run; fold over a sorted order or collect per-key partials (engineLoop is the sanctioned single-chain fold)`,
	`internal/badfold/badfold.go:51: floatfold: float64 accumulation into captured "total" from a goroutine: workers fold in completion order, which reassociates the sum; accumulate per-worker partials and merge them in a fixed order`,
	`internal/badfold/badfold.go:55: floatfold: float64 accumulation into captured "total" from a goroutine: workers fold in completion order, which reassociates the sum; accumulate per-worker partials and merge them in a fixed order`,
	"internal/badfold/badfold.go:92: floatfold: go importInto: the callee accumulates float64 cost (badfold.go:85) into caller-visible state, and goroutines complete in scheduling order; merge per-worker partials in a fixed order instead",
	`internal/badfold/badfold.go:100: floatfold: goroutine calls Add, which accumulates float64 cost (metrics.go:59), on captured "c": partials fold in completion order, which reassociates the sum; merge per-worker partials in a fixed order instead`,
	"internal/badlock/badlock.go:20: lockdiscipline: \"count\" is annotated `guarded by mu` but t.mu is not held here — lock it first or move the access into a *Locked helper",
	"internal/badlock/badlock.go:29: lockdiscipline: \"names\" is annotated `guarded by mu` but t.mu is not held here — lock it first or move the access into a *Locked helper",
	"internal/badlock/badlock.go:40: lockdiscipline: \"count\" is annotated `guarded by mu` but t.mu is not held here — lock it first or move the access into a *Locked helper",
	"internal/badlock/badlock.go:46: lockdiscipline: sumLocked assumes t.mu held (the *Locked convention) but it is not held at this call",
	`internal/badpanic/badpanic.go:13: panicmsg: panic message "boom with no prefix" must start with the package prefix "badpanic: "`,
	`internal/badpanic/badpanic.go:16: panicmsg: panic argument must be a "badpanic: "-prefixed message (string literal, "badpanic: " + ..., or fmt.Sprintf/Errorf with a prefixed format); got a value the linter cannot see a prefix in`,
	`internal/badpanic/badpanic.go:19: panicmsg: panic message "other: wrong prefix %d" must start with the package prefix "badpanic: "`,
	`internal/badseed/badseed.go:19: directive: malformed //lint:ignore: want "//lint:ignore <analyzer> <reason>" — the reason is mandatory`,
	"internal/badseed/badseed.go:21: detseed: time.Now in internal/ breaks run-to-run determinism; derive timing-free logic from seeds (or //lint:ignore detseed for pure duration measurement)",
	"internal/badseed/badseed.go:26: detseed: global rand.Intn draws from the shared process-wide source; use rand.New(rand.NewSource(seed)) with a sweep-derived seed so results are reproducible",
	"internal/badseed/badseed.go:38: detflow: value tainted by map-iteration order (badseed.go:37) reaches printed output: nondeterminism in output breaks the byte-identical sweep contract (sort, seed, or //lint:ignore detflow with a reason)",
	"internal/badseed/badseed.go:38: detseed: printing inside a map range emits lines in randomized iteration order; collect and sort first",
	"internal/badseed/badseed.go:45: detseed: Send inside a map range: message order follows Go's randomized map iteration; iterate a sorted key slice instead",
	`internal/badseed/badseed.go:53: detseed: append to "out" inside a map range produces randomized element order; sort it afterwards or iterate sorted keys`,
	`internal/badshare/badshare.go:32: sharesafe: "jobs" was captured by a goroutine's closure at line 26; writing it afterwards races with the receiving goroutine — hand off a copy, or synchronize before reusing it`,
	`internal/badshare/badshare.go:40: sharesafe: "buf" was sent over a channel at line 39; writing through it afterwards races with the receiving goroutine — hand off a copy, or synchronize before reusing it`,
	`internal/badshare/badshare.go:48: sharesafe: "scale" was captured by a closure sent over a channel at line 47; writing it afterwards races with the receiving goroutine — hand off a copy, or synchronize before reusing it`,
	`internal/badshare/badshare.go:55: sharesafe: "view" was handed to a goroutine at line 54; appending to it in place afterwards races with the receiving goroutine — hand off a copy, or synchronize before reusing it`,
	`internal/badsim/sim.go:7: costcharge: costPhases lists "stale" but the package never charges it; remove the stale entry or restore the counter`,
	`internal/badsim/sim.go:18: costcharge: cost phase "comm" is charged but missing from costPhases; it would break the phases-partition-the-total invariant`,
	"internal/nodecl/sim.go:11: costcharge: package nodecl charges cost phases but declares no costPhases partition (the obs tests sum the partition against <sim>.cost.total)",
	"internal/obs/metrics.go:48: snapshotonly: obs.Add mutates observability state but is reachable from an obshttp handler — handlers must stay snapshot-only (the static form of TestServeLiveObservability's contract)",
	"internal/obs/obshttp/handlers.go:26: snapshotonly: obs.Add mutates observability state but is reachable from an obshttp handler — handlers must stay snapshot-only (the static form of TestServeLiveObservability's contract)",
	"internal/obs/obshttp/handlers.go:45: snapshotonly: obs.Reset mutates observability state but is reachable from an obshttp handler — handlers must stay snapshot-only (the static form of TestServeLiveObservability's contract)",
	"internal/obs/sink.go:11: nilguard: exported method (*Sink).Emit must begin with a nil-receiver guard (`if s == nil`) so disabled instrumentation stays free",
	"internal/progs/progs.go:19: stepshape: Program.Steps literal must end with a Label: 0 superstep (global barrier, paper Section 2); last superstep has Label: 2",
	"internal/progs/progs.go:26: stepshape: Program V = 12 is not a positive power of two; the D-BSP cluster hierarchy needs V = 2^k (paper Section 2)",
	"internal/progs/progs.go:37: stepshape: superstep label 4 exceeds log2(V) = 3 for V = 8; no such cluster level exists (paper Section 2)",
	"internal/progs/progs.go:47: stepshape: superstep label -1 is negative; labels index the cluster hierarchy and must lie in [0, log2 V]",
	"internal/progs/progs.go:58: stepshape: TransposeRoute 2x4 does not cover the label-1 cluster: M1*M2 = 8, cluster size is 4 (the BT riffle routing of paper Section 6 needs the exact factorization)",
}

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "fixture.example")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return pkgs
}

func TestGoldenFixtures(t *testing.T) {
	root, _ := filepath.Abs(filepath.Join("testdata", "src"))
	findings := Run(loadFixtures(t), Analyzers())

	var got []string
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s:%d: %s: %s",
			filepath.ToSlash(rel), f.Pos.Line, f.Analyzer, f.Message))
	}

	for i := 0; i < len(got) || i < len(goldenWant); i++ {
		switch {
		case i >= len(got):
			t.Errorf("missing finding:\n  want %s", goldenWant[i])
		case i >= len(goldenWant):
			t.Errorf("unexpected finding:\n  got  %s", got[i])
		case got[i] != goldenWant[i]:
			t.Errorf("finding %d:\n  got  %s\n  want %s", i, got[i], goldenWant[i])
		}
	}
}

// TestGoldenEveryAnalyzerFires guards the fixture tree itself: each
// analyzer must have at least one failing case, so removing an
// analyzer (or silently breaking its Run) cannot pass the suite.
func TestGoldenEveryAnalyzerFires(t *testing.T) {
	pkgs := loadFixtures(t)
	for _, a := range Analyzers() {
		if n := len(Run(pkgs, []*Analyzer{a})); n == 0 {
			t.Errorf("analyzer %s finds nothing in the fixture tree", a.Name)
		}
	}
}

// TestRepoIsClean is the self-hosting check: the repository's own
// packages must produce zero findings, mirroring the CI gate.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modpath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modpath)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("repo finding: %s", f)
	}
}
