// dataflow.go is the value-flow half of the dbspvet dataflow layer:
// reaching definitions and a capture/escape classification for
// function-local variables, built per function over the cfg.go graph
// and the go/types info of the typed pass. Analyzers consume it the
// way they consume TypesInfo — construct a Dataflow for the function
// under inspection and query it at the nodes they care about.
//
// Everything here is intra-procedural and best-effort by design (the
// same trade the whole typed pass makes): variables mutated through
// closures or by callees are not tracked, interface calls are not
// devirtualized, and "no information" always degrades toward silence
// in the analyzers, never toward a false finding. DESIGN §10 records
// the caveats.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Dataflow bundles the CFG and reaching-definition solution of one
// function (declaration or literal).
type Dataflow struct {
	// Pkg is the function's package.
	Pkg *Package
	// Fn is the analyzed *ast.FuncDecl or *ast.FuncLit.
	Fn ast.Node
	// Body is Fn's body.
	Body *ast.BlockStmt
	// CFG is the function's control-flow graph.
	CFG *CFG

	// blockOf locates the block holding each top-level block node.
	blockOf map[ast.Node]*Block
	// reachIn is the reaching-definitions solution at block entry.
	reachIn map[*Block]defState
}

// defState maps each function-local variable to the set of definition
// sites that may reach a program point. A definition site is the RHS
// expression when the assignment has matching arity, or the defining
// statement node otherwise (an opaque definition).
type defState map[*types.Var]map[ast.Node]bool

func (s defState) clone() defState {
	c := make(defState, len(s))
	for v, defs := range s {
		d := make(map[ast.Node]bool, len(defs))
		for n := range defs {
			d[n] = true
		}
		c[v] = d
	}
	return c
}

func (s defState) equal(t defState) bool {
	if len(s) != len(t) {
		return false
	}
	for v, defs := range s {
		td, ok := t[v]
		if !ok || len(defs) != len(td) {
			return false
		}
		for n := range defs {
			if !td[n] {
				return false
			}
		}
	}
	return true
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// NewDataflow builds the CFG and reaching-definition solution for fn
// (an *ast.FuncDecl or *ast.FuncLit) in pkg. Returns nil when fn has
// no body or the package has no type information.
func NewDataflow(pkg *Package, fn ast.Node) *Dataflow {
	body := funcBody(fn)
	if body == nil || pkg.Info == nil {
		return nil
	}
	d := &Dataflow{
		Pkg:     pkg,
		Fn:      fn,
		Body:    body,
		CFG:     NewCFG(body),
		blockOf: map[ast.Node]*Block{},
	}
	for _, blk := range d.CFG.Blocks {
		for _, n := range blk.Nodes {
			d.blockOf[n] = blk
		}
	}
	d.reachIn = SolveForward(d.CFG, FlowProblem[defState]{
		Boundary:    defState{},
		Unreachable: defState{},
		Merge: func(a, b defState) defState {
			m := a.clone()
			for v, defs := range b {
				if m[v] == nil {
					m[v] = map[ast.Node]bool{}
				}
				for n := range defs {
					m[v][n] = true
				}
			}
			return m
		},
		Transfer: func(s defState, n ast.Node) defState {
			defs := d.nodeDefs(n)
			if len(defs) == 0 {
				return s
			}
			out := s.clone()
			for v, site := range defs {
				out[v] = map[ast.Node]bool{site: true}
			}
			return out
		},
		Equal: func(a, b defState) bool { return a.equal(b) },
	})
	return d
}

// nodeDefs returns the variables a block node (re)defines, mapped to
// their definition site: the RHS expression for arity-matched
// assignments, the node itself otherwise.
func (d *Dataflow) nodeDefs(n ast.Node) map[*types.Var]ast.Node {
	out := map[*types.Var]ast.Node{}
	record := func(e ast.Expr, site ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v := d.localVar(id); v != nil {
			out[v] = site
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			site := ast.Node(n)
			if len(n.Lhs) == len(n.Rhs) {
				site = n.Rhs[i]
			}
			record(lhs, site)
		}
	case *ast.IncDecStmt:
		record(n.X, n)
	case *ast.RangeStmt:
		if n.Key != nil {
			record(n.Key, n)
		}
		if n.Value != nil {
			record(n.Value, n)
		}
	case *ast.DeclStmt:
		gen, ok := n.Decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.VAR {
			return out
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				site := ast.Node(vs)
				if len(vs.Values) == len(vs.Names) {
					site = vs.Values[i]
				}
				record(name, site)
			}
		}
	}
	return out
}

// localVar resolves id to a variable declared inside the analyzed
// function (parameters included), or nil: package-level state and
// struct fields are outside the layer's intra-procedural scope.
func (d *Dataflow) localVar(id *ast.Ident) *types.Var {
	v, ok := objectOf(d.Pkg, id).(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if !posWithin(v.Pos(), d.Fn) {
		return nil
	}
	return v
}

// stateAt replays the enclosing block's transfer up to (not including)
// node n and returns the reaching-definition state there. n must be a
// block node of this CFG; unknown nodes get the empty state.
func (d *Dataflow) stateAt(n ast.Node) defState {
	blk, ok := d.blockOf[n]
	if !ok {
		return defState{}
	}
	s := d.reachIn[blk]
	for _, m := range blk.Nodes {
		if m == n {
			break
		}
		defs := d.nodeDefs(m)
		if len(defs) == 0 {
			continue
		}
		s = s.clone()
		for v, site := range defs {
			s[v] = map[ast.Node]bool{site: true}
		}
	}
	return s
}

// ReachingDefs returns the definition sites of v that may reach block
// node n: RHS expressions where the defining assignment was
// arity-matched, defining statements otherwise. An empty result means
// only v's declaration (parameter, opaque flow) reaches n.
func (d *Dataflow) ReachingDefs(n ast.Node, v *types.Var) []ast.Node {
	var out []ast.Node
	for site := range d.stateAt(n)[v] {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// FreeVars returns the variables lit captures from its enclosing
// function fn: identifiers used inside lit whose object is a variable
// declared in fn but outside lit. Captures are by reference in Go, so
// every entry is shared state between lit and its enclosing function.
func FreeVars(pkg *Package, fn ast.Node, lit *ast.FuncLit) []*types.Var {
	if pkg.Info == nil {
		return nil
	}
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if posWithin(v.Pos(), lit) || !posWithin(v.Pos(), fn) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// refLike reports whether t can alias memory shared with another
// holder of the same value: pointers, slices, maps, channels,
// functions, interfaces, and composites containing any of those.
// Unknown (placeholder-import) types conservatively report false, so
// analyzers stay silent instead of guessing.
func refLike(t types.Type) bool {
	return refLikeDepth(t, 0)
}

func refLikeDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Array:
		return refLikeDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// basePath splits a selector chain into its root identifier's object
// and the dotted field path, e.g. p.root.mu → (obj(p), "root.mu").
// Index, star and paren layers end the chase (ok = false): a guard
// held through an indexed element cannot be matched by name.
func basePath(pkg *Package, e ast.Expr) (base types.Object, path string, ok bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := objectOf(pkg, x)
		if obj == nil {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		obj, p, ok := basePath(pkg, x.X)
		if !ok {
			return nil, "", false
		}
		if p == "" {
			return obj, x.Sel.Name, true
		}
		return obj, p + "." + x.Sel.Name, true
	}
	return nil, "", false
}
