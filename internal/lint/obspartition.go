package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ObsPartition enforces the cost-partition invariant of the
// observability layer (internal/obs/report.go): the top-level
// <sim>.cost.<phase> float counters a simulator charges must partition
// the exact returned host cost — the obs tests assert Σ phases ==
// <sim>.cost.total. A phase counter added in code but missing from the
// package's declared partition (the package-level `costPhases` string
// slice the tests sum over) would silently break that identity, so the
// analyzer cross-checks the two:
//
//   - a package that charges top-level phase counters must declare
//     costPhases;
//   - every charged phase must be listed in costPhases;
//   - every listed phase must be charged somewhere in the package
//     (a stale entry would mask a dropped counter).
//
// Charges are FloatCounter("<sim>.cost.<phase>") resolutions (reads
// via an immediate .Value() are exempt) and literal arguments to the
// package's phase(...) cost-window helper. Sub-phases
// (<sim>.cost.<phase>.<sub>) refine a parent and are exempt, as is the
// verbatim-copied <sim>.cost.total.
var ObsPartition = &Analyzer{
	Name: "obspartition",
	Doc:  "charged <sim>.cost.<phase> counters must match the package's declared costPhases partition",
	Run:  runObsPartition,
}

func runObsPartition(pass *Pass) {
	type site struct {
		name string
		pos  token.Pos
	}
	var charged []site
	hasPhaseHelper := false

	// A "<sim>.cost." + x concatenation marks the package as charging
	// phases through a helper that takes the bare phase name.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || b.Op != token.ADD {
				return true
			}
			if s, ok := stringLit(b.X); ok && strings.HasSuffix(s, ".cost.") && len(s) > len(".cost.") {
				hasPhaseHelper = true
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		// Collect FloatCounter calls that are immediately read via
		// .Value() — those are inspections, not charges.
		valueReads := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Value" {
				return true
			}
			if inner, ok := sel.X.(*ast.CallExpr); ok && isFloatCounterCall(inner) {
				valueReads[inner] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFloatCounterCall(call) && !valueReads[call] && len(call.Args) == 1 {
				if name, ok := stringLit(call.Args[0]); ok {
					if phase, top := topLevelPhase(name); top {
						charged = append(charged, site{phase, call.Args[0].Pos()})
					}
				}
			}
			if hasPhaseHelper && isPhaseCall(call) {
				if name, ok := stringLit(call.Args[0]); ok && !strings.Contains(name, ".") {
					charged = append(charged, site{name, call.Args[0].Pos()})
				}
			}
			return true
		})
	}
	if len(charged) == 0 {
		return
	}

	declared, declPos, declNames := findCostPhases(pass.Pkg)
	if declared == nil {
		pass.Reportf(charged[0].pos,
			"package %s charges cost phases but declares no costPhases partition (the obs tests sum the partition against <sim>.cost.total)",
			pass.Pkg.Name)
		return
	}
	seen := map[string]bool{}
	for _, c := range charged {
		seen[c.name] = true
		if !declared[c.name] {
			pass.Reportf(c.pos,
				"cost phase %q is charged but missing from costPhases; it would break the phases-partition-the-total invariant", c.name)
		}
	}
	for _, name := range declNames {
		if !seen[name] {
			pass.Reportf(declPos,
				"costPhases lists %q but the package never charges it; remove the stale entry or restore the counter", name)
		}
	}
}

// topLevelPhase splits a metric name of the form <sim>.cost.<phase>
// and reports whether it is a chargeable top-level phase (single
// segment, not "total").
func topLevelPhase(name string) (string, bool) {
	i := strings.Index(name, ".cost.")
	if i <= 0 {
		return "", false
	}
	phase := name[i+len(".cost."):]
	if phase == "" || phase == "total" || strings.Contains(phase, ".") {
		return "", false
	}
	// The prefix must be a bare component name (no further dots).
	if strings.Contains(name[:i], ".") {
		return "", false
	}
	return phase, true
}

// isFloatCounterCall matches <expr>.FloatCounter(...) — the obs
// Registry/Observer resolution method.
func isFloatCounterCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "FloatCounter"
}

// isPhaseCall matches <expr>.phase(name, ...) or phase(name, ...), the
// cost-window helper shape.
func isPhaseCall(call *ast.CallExpr) bool {
	if len(call.Args) < 1 {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "phase"
	case *ast.Ident:
		return fun.Name == "phase"
	}
	return false
}

// findCostPhases locates the package-level `costPhases` declaration
// and returns its entries as a set, its position, and the entries in
// order.
func findCostPhases(pkg *Package) (map[string]bool, token.Pos, []string) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "costPhases" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					set := map[string]bool{}
					var names []string
					for _, elt := range lit.Elts {
						if s, ok := stringLit(elt); ok {
							set[s] = true
							names = append(names, s)
						}
					}
					return set, name.Pos(), names
				}
			}
		}
	}
	return nil, token.NoPos, nil
}
