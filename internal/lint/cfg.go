// cfg.go is the control-flow half of the dbspvet dataflow layer: an
// intra-procedural CFG over go/ast, built per function body, that the
// flow-sensitive analyzers (sharesafe, lockdiscipline) traverse the way
// the flow-insensitive ones traverse TypesInfo. The graph is
// deliberately source-level — blocks hold the original ast.Node
// statements and the condition/header expressions of compound
// statements — so analyzer transfer functions inspect exactly the
// syntax the finding will be reported against.
//
// Shape conventions:
//
//   - Blocks[0] is the entry block; Exit is a distinguished empty block
//     every return (and panic) edge targets.
//   - Compound statements contribute only their headers to blocks: an
//     if contributes Init and Cond, a for contributes Init/Cond/Post, a
//     range contributes its X expression and then the RangeStmt node
//     itself (standing for the per-iteration key/value definition), a
//     switch contributes Init/Tag. Their bodies become successor
//     blocks, so walking a block's nodes never descends into nested
//     statement lists.
//   - Function literals are opaque: a FuncLit appearing in a block node
//     is a value, not control flow. Analyzers build a separate CFG per
//     literal body.
//   - Statements after a terminator (return, break, goto, panic) land
//     in a fresh block with no predecessors, so unreachable code still
//     has nodes (solvers give those blocks the problem's Unreachable
//     state).
//
// The companion generic solver, SolveForward, runs any forward
// dataflow problem to fixpoint over the graph; dataflow.go builds
// reaching definitions on top of it.
package lint

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line node sequence with
// a single entry and a set of successor edges.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes holds the block's statements and header expressions in
	// execution order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Preds are the reverse edges, filled after construction.
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is the block function execution starts in.
	Entry *Block
	// Exit is the distinguished empty block reached by falling off the
	// end of the body, returning, or panicking.
	Exit *Block
}

// NewCFG builds the control-flow graph of body. A nil body (external
// function) yields a graph with only an empty entry wired to exit.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelFrame{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit)
	for _, g := range b.gotos {
		if lf := b.labels[g.label]; lf != nil && lf.start != nil {
			b.edge(g.from, lf.start)
		}
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string
	brk, cont *Block // cont is nil for switch/select frames
	isLoop    bool
}

// labelFrame resolves a label to its goto target and (once the labeled
// statement is a loop/switch) its frame.
type labelFrame struct {
	start *Block
	frame *loopFrame
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator.
	cur *Block
	// frames is the stack of enclosing loops/switches/selects.
	frames []*loopFrame
	// fallthroughTarget is the next case clause's block while building
	// a switch clause body.
	fallthroughTarget *Block
	// pendingLabel is the label naming the next loop/switch statement.
	pendingLabel string
	labels       map[string]*labelFrame
	gotos        []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, opening a fresh unreachable
// block when the previous statement terminated control flow.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// startBlock begins a new block reachable from the current one.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(f *loopFrame) {
	b.frames = append(b.frames, f)
	if f.label != "" {
		if lf := b.labels[f.label]; lf != nil {
			lf.frame = f
		}
	}
}

func (b *cfgBuilder) popFrame() {
	b.frames = b.frames[:len(b.frames)-1]
}

// findFrame resolves a break/continue target: the innermost matching
// frame, or the labeled one.
func (b *cfgBuilder) findFrame(label string, needLoop bool) *loopFrame {
	if label != "" {
		if lf := b.labels[label]; lf != nil {
			return lf.frame
		}
		return nil
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if !needLoop || b.frames[i].isLoop {
			return b.frames[i]
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		start := b.startBlock()
		b.labels[s.Label.Name] = &labelFrame{start: start}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		if cond == nil {
			cond = b.startBlock()
		}
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		head := b.startBlock()
		b.add(s.Cond)
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushFrame(&loopFrame{label: label, brk: after, cont: cont, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(cont)
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.popFrame()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.startBlock()
		// The RangeStmt node stands for the per-iteration key/value
		// definition; solvers treat it shallowly (see scanBlockNode).
		b.add(s)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.pushFrame(&loopFrame{label: label, brk: after, cont: head, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popFrame()
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.startBlock()
		}
		after := b.newBlock()
		b.pushFrame(&loopFrame{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.add(cc.Comm)
			b.stmtList(cc.Body)
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			// select{} blocks forever; keep an edge so the graph stays
			// connected for solvers.
			b.edge(head, after)
		}
		b.popFrame()
		b.cur = after

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(label, false); f != nil {
				b.jump(f.brk)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if f := b.findFrame(label, true); f != nil && f.cont != nil {
				b.jump(f.cont)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			from := b.cur
			if from == nil {
				from = b.newBlock()
			}
			b.gotos = append(b.gotos, pendingGoto{from: from, label: label})
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallthroughTarget != nil {
				b.jump(b.fallthroughTarget)
			} else {
				b.cur = nil
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.jump(b.cfg.Exit)
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Decl, Send, Go, Defer, ...: straight-line.
		b.add(s)
	}
}

// switchStmt builds value and type switches: Init/Tag in the head
// block, one block per clause, fallthrough edges between consecutive
// clauses, and an implicit edge to after when no default exists.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.add(init)
	b.add(tag)
	b.add(assign)
	head := b.cur
	if head == nil {
		head = b.startBlock()
	}
	after := b.newBlock()
	b.pushFrame(&loopFrame{label: label, brk: after})

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc, ok := clauses[i].(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		prevFT := b.fallthroughTarget
		if i+1 < len(blocks) {
			b.fallthroughTarget = blocks[i+1]
		} else {
			b.fallthroughTarget = nil
		}
		b.stmtList(cc.Body)
		b.fallthroughTarget = prevFT
		b.jump(after)
	}
	b.popFrame()
	b.cur = after
}

// FlowProblem describes a forward dataflow problem over a CFG for
// SolveForward. S is the abstract state; implementations must treat
// states as immutable (Transfer and Merge return fresh values).
type FlowProblem[S any] struct {
	// Boundary is the state at function entry.
	Boundary S
	// Unreachable is the state assumed for blocks with no predecessors
	// (dead code after a terminator): the may-analysis bottom or the
	// must-analysis top, per problem.
	Unreachable S
	// Merge joins two predecessor out-states.
	Merge func(a, b S) S
	// Transfer applies one block node to the incoming state.
	Transfer func(s S, n ast.Node) S
	// Equal reports state equality, for fixpoint detection.
	Equal func(a, b S) bool
}

// SolveForward iterates the problem to fixpoint and returns each
// block's entry state. Per-node states inside a block are recovered by
// replaying Transfer from the block's entry state.
func SolveForward[S any](c *CFG, p FlowProblem[S]) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	out := make(map[*Block]S, len(c.Blocks))
	for _, blk := range c.Blocks {
		if blk == c.Entry {
			in[blk] = p.Boundary
		} else {
			in[blk] = p.Unreachable
		}
		out[blk] = transferBlock(in[blk], blk, p.Transfer)
	}
	// Chaotic iteration with a simple worklist; the graphs are small
	// (one function) so no priority ordering is needed.
	work := make([]*Block, len(c.Blocks))
	copy(work, c.Blocks)
	inWork := make([]bool, len(c.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false

		state := in[blk]
		if blk != c.Entry && len(blk.Preds) > 0 {
			state = out[blk.Preds[0]]
			for _, pr := range blk.Preds[1:] {
				state = p.Merge(state, out[pr])
			}
		}
		newOut := transferBlock(state, blk, p.Transfer)
		if p.Equal(state, in[blk]) && p.Equal(newOut, out[blk]) {
			continue
		}
		in[blk], out[blk] = state, newOut
		for _, s := range blk.Succs {
			if !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

func transferBlock[S any](s S, blk *Block, transfer func(S, ast.Node) S) S {
	for _, n := range blk.Nodes {
		s = transfer(s, n)
	}
	return s
}

// scanBlockNode walks one CFG block node the way transfer functions
// should see it: the bodies of function literals are skipped (they are
// values, analyzed as their own functions), and a RangeStmt node — the
// per-iteration definition marker — exposes only its Key, Value and X,
// never the loop body that lives in successor blocks.
func scanBlockNode(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			scanBlockNode(rs.Key, f)
		}
		if rs.Value != nil {
			scanBlockNode(rs.Value, f)
		}
		scanBlockNode(rs.X, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			f(m)         // visit the literal itself (a value) ...
			return false // ... but never its body
		}
		return f(m)
	})
}
