// callgraph.go builds the module call graph the interprocedural layer
// (DESIGN §12) runs on. Nodes are the module's declared functions and
// methods (anything indexFuncDecls finds — bodies in the loaded
// package set); edges are
//
//   - direct calls: f() and recv.M() resolved through go/types object
//     identity, so aliasing and embedding are handled;
//   - interface calls, conservatively devirtualized: a call through an
//     interface method adds an edge to every module method whose
//     receiver type implements that interface and declares that name —
//     a superset of the dynamic targets, which is the sound direction
//     for taint propagation;
//   - reference edges: mentioning a module function outside call
//     position (a method value, a function passed as an argument, a
//     function-typed struct field initializer) adds an edge marked
//     Ref=true, because the referenced function may run wherever the
//     value flows.
//
// Out-of-module callees (the stdlib placeholders of typed.go) have no
// bodies and no nodes; the analyzers special-case the few that matter
// (time.Now, math/rand, fmt, sort). Reflection and cgo are out of
// scope entirely — DESIGN §12 records the soundness caveat.
//
// SCCs returns Tarjan's strongly connected components in callee-first
// (reverse topological) order, which is exactly the order the
// bottom-up summary pass of summary.go needs: every callee outside the
// current SCC is summarized before its callers, and mutual recursion
// inside an SCC is handled by iterating that component to a fixpoint.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncNode is one module function or method in the call graph.
type FuncNode struct {
	// Fn is the function's type object (identity key).
	Fn *types.Func
	// Pkg declares the function.
	Pkg *Package
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Calls are the outgoing edges, in source order.
	Calls []*CallSite
}

// CallSite is one outgoing call-graph edge.
type CallSite struct {
	// Callee is the edge target.
	Callee *FuncNode
	// Pos locates the call or reference in the caller.
	Pos token.Pos
	// Call is the call expression for direct and devirtualized calls;
	// nil for reference edges.
	Call *ast.CallExpr
	// Ref marks a reference edge (method value, function value,
	// function-typed field) rather than a syntactic call.
	Ref bool
}

// CallGraph is the module call graph plus its bottom-up SCC order.
type CallGraph struct {
	// Nodes maps every module function object to its node.
	Nodes map[*types.Func]*FuncNode
	// SCCs lists the strongly connected components callee-first:
	// every edge from SCCs[i] targets SCCs[j] with j <= i.
	SCCs [][]*FuncNode
	// order lists the nodes in deterministic (file, position) order so
	// graph construction and traversal are reproducible run to run.
	order []*FuncNode
}

// NewCallGraph builds the call graph over pkgs. Packages must already
// be type-checked (lint.Run does this; tests call TypeCheck first).
func NewCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}}
	idx := indexFuncDecls(pkgs)
	for fn, site := range idx {
		node := &FuncNode{Fn: fn, Pkg: site.pkg, Decl: site.decl}
		g.Nodes[fn] = node
		g.order = append(g.order, node)
	}
	// Map iteration above is randomized; pin a stable order before any
	// traversal so SCC numbering and summary messages are reproducible.
	sort.Slice(g.order, func(i, j int) bool {
		pi := g.order[i].Pkg.Fset.Position(g.order[i].Decl.Pos())
		pj := g.order[j].Pkg.Fset.Position(g.order[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	for _, node := range g.order {
		g.addEdges(node)
	}
	g.SCCs = g.tarjan()
	return g
}

// addEdges walks node's body and records outgoing edges.
func (g *CallGraph) addEdges(node *FuncNode) {
	pkg := node.Pkg
	// callFun remembers which SelectorExpr/Ident nodes are the Fun of
	// an enclosing call, so a mention of a function *outside* call
	// position can be recognized as a reference edge; handled marks the
	// Sel identifiers already consumed by their SelectorExpr so the
	// child visit does not add a duplicate (misclassified) edge.
	callFun := map[ast.Node]*ast.CallExpr{}
	handled := map[*ast.Ident]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFun[ast.Unparen(call.Fun)] = call
		}
		if pkg.Info == nil {
			return true
		}
		switch x := n.(type) {
		case *ast.Ident:
			// Uses only: the Def identifiers of nested declarations
			// must not create edges.
			if handled[x] {
				return true
			}
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				g.edgeTo(node, fn, x.Pos(), callFun[x])
			}
		case *ast.SelectorExpr:
			handled[x.Sel] = true
			if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
				g.edgeTo(node, fn, x.Sel.Pos(), callFun[x])
			}
		}
		return true
	})
}

// edgeTo records an edge from node to the function object fn: direct
// when fn has a module body, devirtualized when fn is an interface
// method with module implementations.
func (g *CallGraph) edgeTo(node *FuncNode, fn *types.Func, pos token.Pos, call *ast.CallExpr) {
	if target, ok := g.Nodes[fn]; ok {
		node.Calls = append(node.Calls, &CallSite{Callee: target, Pos: pos, Call: call, Ref: call == nil})
		return
	}
	// Interface method: add one edge per module method that can
	// implement it. types.Implements needs the method set of the
	// concrete type; check both T and *T.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return
	}
	for _, target := range g.order {
		tsig, ok := target.Fn.Type().(*types.Signature)
		if !ok || tsig.Recv() == nil || target.Fn.Name() != fn.Name() {
			continue
		}
		recv := tsig.Recv().Type()
		if named, ok := recv.(*types.Pointer); ok {
			recv = named.Elem()
		}
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			node.Calls = append(node.Calls, &CallSite{Callee: target, Pos: pos, Call: call, Ref: call == nil})
		}
	}
}

// tarjan computes strongly connected components; the emission order of
// Tarjan's algorithm is callee-first (an SCC is emitted only after
// every SCC it calls into), which is the bottom-up summary order.
func (g *CallGraph) tarjan() [][]*FuncNode {
	var (
		sccs    [][]*FuncNode
		index   = map[*FuncNode]int{}
		lowlink = map[*FuncNode]int{}
		onStack = map[*FuncNode]bool{}
		stack   []*FuncNode
		next    int
	)
	// Iterative Tarjan with an explicit work stack: recursion depth
	// equals call-chain depth and deep module call chains must not
	// overflow the goroutine stack.
	type frame struct {
		node *FuncNode
		edge int
	}
	var walk func(root *FuncNode)
	walk = func(root *FuncNode) {
		frames := []frame{{node: root}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(f.node.Calls) {
				callee := f.node.Calls[f.edge].Callee
				f.edge++
				if _, seen := index[callee]; !seen {
					index[callee], lowlink[callee] = next, next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{node: callee})
				} else if onStack[callee] && index[callee] < lowlink[f.node] {
					lowlink[f.node] = index[callee]
				}
				continue
			}
			// All edges explored: pop the frame, fold lowlink into the
			// parent, and emit an SCC when f.node is its root.
			done := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 && lowlink[done] < lowlink[frames[len(frames)-1].node] {
				lowlink[frames[len(frames)-1].node] = lowlink[done]
			}
			if lowlink[done] == index[done] {
				var scc []*FuncNode
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == done {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	for _, node := range g.order {
		if _, seen := index[node]; !seen {
			walk(node)
		}
	}
	return sccs
}
