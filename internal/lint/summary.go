// summary.go is the bottom-up half of the interprocedural layer
// (DESIGN §12): per-function summaries computed over the call graph's
// SCCs in callee-first order, so every summary a caller consults is
// already (at least partially) known, and mutual recursion converges
// by iterating each SCC to a fixpoint.
//
// The summary lattice is a per-function taint abstraction. Facts name
// where a value came from: one of the nondeterminism sources the sweep
// contract forbids in outputs (wall-clock reads, global math/rand
// draws, map-iteration order, select scheduling order) or a formal
// parameter (a synthetic marker used to compute parameter→result and
// parameter→sink flow). The intra-function engine is deliberately
// flow-insensitive — facts accumulate monotonically over the whole
// body until stable — which keeps it sound for the "no nondeterminism
// ever reaches an output" property at the cost of flagging code where
// a tainted value is overwritten before the sink; the one idiom that
// would make that cost real, collect-keys-then-sort, gets an explicit
// kill instead (order facts never attach to a slice that is passed to
// a sort/slices call somewhere in the same function).
//
// Soundness caveats, recorded in DESIGN §12: calls through function
// values are propagated conservatively (argument taint flows to the
// result) but their targets are not resolved; reflection is invisible;
// out-of-module callees other than the special-cased stdlib entry
// points (time, math/rand, fmt, errors, sort, slices) propagate
// argument taint to results and are otherwise trusted not to read
// nondeterminism sources; and mutation of receivers through
// out-of-module methods (bytes.Buffer-style sinks) is approximated by
// the Write/WriteString/Encode name rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/det"
)

// SourceKind classifies a taint fact's origin.
type SourceKind int

const (
	// SrcParam marks the synthetic parameter facts summaries are
	// computed from; it never appears in a finding.
	SrcParam SourceKind = iota
	// SrcClock is a wall-clock reading (time.Now, time.Since).
	SrcClock
	// SrcRand is a draw from the shared global math/rand source.
	SrcRand
	// SrcMapOrder is a value whose order derives from ranging a map.
	SrcMapOrder
	// SrcSelOrder is a value whose identity depends on select
	// scheduling among multiple ready cases.
	SrcSelOrder
)

// String names the source the way findings spell it.
func (k SourceKind) String() string {
	switch k {
	case SrcClock:
		return "a wall-clock reading"
	case SrcRand:
		return "a global math/rand draw"
	case SrcMapOrder:
		return "map-iteration order"
	case SrcSelOrder:
		return "select scheduling order"
	}
	return "a parameter"
}

// fact is one taint fact: a value derives from kind (read at pos,
// possibly inside callee via) or from formal parameter param.
type fact struct {
	kind  SourceKind
	param int
	pos   token.Position
	via   string // first module callee the taint crossed; "" when local
}

// key dedups facts; via is deliberately excluded so a fact reached
// over two call paths stays one fact and the fixpoint terminates.
func (f fact) key() string {
	return fmt.Sprintf("%d|%d|%s:%d", f.kind, f.param, f.pos.Filename, f.pos.Line)
}

// describe renders the fact for a finding message.
func (f fact) describe() string {
	s := fmt.Sprintf("%s (%s)", f.kind, shortPos(f.pos))
	if f.via != "" {
		s += " via " + f.via
	}
	return s
}

// shortPos renders a position as base-filename:line.
func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// factSet is a deduplicated set of facts.
type factSet map[string]fact

func (s factSet) add(f fact) bool {
	k := f.key()
	if _, ok := s[k]; ok {
		return false
	}
	s[k] = f
	return true
}

func (s factSet) union(o factSet) bool {
	changed := false
	for _, f := range o {
		if s.add(f) {
			changed = true
		}
	}
	return changed
}

// sinkUse records that something reaches a determinism sink: what the
// sink is (for messages) and where.
type sinkUse struct {
	desc string
	pos  token.Position
}

// Summary is one function's interprocedural abstraction.
type Summary struct {
	// Results holds the non-parameter facts carried by any result
	// value: sources the function reads that flow out of it.
	Results factSet
	// ParamToResult[i] reports that parameter i (receiver first for
	// methods) flows into a result.
	ParamToResult []bool
	// ParamToSink[i] is non-nil when parameter i reaches an emission,
	// error-string, or float-accumulation sink inside the function.
	ParamToSink []*sinkUse
	// Emits is non-nil when calling the function writes ordered output
	// (prints, sends, byte-stream writes), directly or transitively —
	// calling it while ranging a map leaks iteration order.
	Emits *sinkUse
	// Accum is non-nil when calling the function adds to a float64
	// accumulation visible to the caller (receiver field, pointer
	// target, package variable), directly or transitively — calling it
	// from contexts with varying order reassociates the fold.
	Accum *sinkUse
	// AccumOwner is the parameter index (receiver-first) whose value
	// owns the accumulator, or -1 when the accumulator is a package
	// variable and therefore shared by every call.
	AccumOwner int
}

func newSummary(nparams int) *Summary {
	return &Summary{
		Results:       factSet{},
		ParamToResult: make([]bool, nparams),
		ParamToSink:   make([]*sinkUse, nparams),
	}
}

// fingerprint is a change detector for the SCC fixpoint.
func (s *Summary) fingerprint() string {
	var b strings.Builder
	b.WriteString(strings.Join(det.SortedKeys(s.Results), ","))
	for i := range s.ParamToResult {
		fmt.Fprintf(&b, "|r%d=%t", i, s.ParamToResult[i])
		if s.ParamToSink[i] != nil {
			fmt.Fprintf(&b, "s%s", s.ParamToSink[i].desc)
		}
	}
	if s.Emits != nil {
		b.WriteString("|E" + s.Emits.desc)
	}
	if s.Accum != nil {
		fmt.Fprintf(&b, "|A%d%s", s.AccumOwner, s.Accum.desc)
	}
	return b.String()
}

// rawFinding is a finding computed during summary construction,
// replayed later by the owning analyzer's per-package Run.
type rawFinding struct {
	pos token.Pos
	msg string
}

// Interproc is the shared interprocedural view one lint.Run builds
// lazily on first use (Pass.Interproc): the call graph, the stable
// summaries, and the det/fold findings keyed by package.
type Interproc struct {
	// Graph is the module call graph.
	Graph *CallGraph
	// Summaries maps every module function to its stable summary.
	Summaries map[*types.Func]*Summary

	det  map[*Package][]rawFinding
	fold map[*Package][]rawFinding
}

// NewInterproc builds the call graph over pkgs, runs the bottom-up
// summary pass (iterating each SCC to a fixpoint for mutual
// recursion), then computes the detflow/floatfold findings in one
// final reporting pass. directives are consulted at fact-creation
// time, so a //lint:ignore on a nondeterminism source inside a callee
// suppresses the caller-side findings it would otherwise induce.
func NewInterproc(pkgs []*Package, directives []*directive) *Interproc {
	ip := &Interproc{
		Graph:     NewCallGraph(pkgs),
		Summaries: map[*types.Func]*Summary{},
		det:       map[*Package][]rawFinding{},
		fold:      map[*Package][]rawFinding{},
	}
	for _, scc := range ip.Graph.SCCs {
		// Singleton SCCs stabilize in one pass; cyclic ones iterate
		// until no summary changes. The lattice is finite (facts are
		// keyed by source position), so this terminates; the cap is a
		// belt-and-suspenders bound.
		for iter := 0; iter < 32; iter++ {
			changed := false
			for _, node := range scc {
				s, _, _ := ip.scanFunc(node, directives)
				if old := ip.Summaries[node.Fn]; old == nil || old.fingerprint() != s.fingerprint() {
					ip.Summaries[node.Fn] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	for _, node := range ip.Graph.order {
		_, det, fold := ip.scanFunc(node, directives)
		ip.det[node.Pkg] = append(ip.det[node.Pkg], det...)
		ip.fold[node.Pkg] = append(ip.fold[node.Pkg], fold...)
	}
	return ip
}

// sum returns fn's current summary, or an empty one for SCC peers not
// yet computed.
func (ip *Interproc) sum(fn *types.Func) *Summary {
	if s := ip.Summaries[fn]; s != nil {
		return s
	}
	return &Summary{Results: factSet{}}
}

// contexts the statement walk tracks.
type ctxKind int

const (
	ctxMapRange ctxKind = iota
	ctxChanRange
	ctxSelect
	ctxGo
)

func (k ctxKind) String() string {
	switch k {
	case ctxMapRange:
		return "map-range"
	case ctxChanRange:
		return "channel-range"
	case ctxSelect:
		return "multi-case select"
	}
	return "goroutine"
}

type ctxFrame struct {
	kind ctxKind
	node ast.Node
	free map[types.Object]bool // captured variables, ctxGo only
}

// scanFunc runs the flow-insensitive taint engine over node's body and
// returns its summary plus the detflow and floatfold findings located
// in it. During the SCC fixpoint the findings are discarded; the final
// reporting pass keeps them.
func (ip *Interproc) scanFunc(node *FuncNode, directives []*directive) (*Summary, []rawFinding, []rawFinding) {
	pkg := node.Pkg
	params := paramObjs(pkg, node.Decl)
	sum := newSummary(len(params))
	if pkg.Info == nil {
		return sum, nil, nil
	}
	fset := pkg.Fset
	paramIndex := map[types.Object]int{}
	taint := map[types.Object]factSet{}
	for i, p := range params {
		if p != nil {
			paramIndex[p] = i
			taint[p] = factSet{}
			taint[p].add(fact{kind: SrcParam, param: i})
		}
	}
	sorted := sortedTargets(pkg, node.Decl.Body)
	// Module callees per call site, from the graph edges (covers both
	// direct calls and devirtualized interface calls).
	targets := map[*ast.CallExpr][]*FuncNode{}
	for _, cs := range node.Calls {
		if cs.Call != nil {
			targets[cs.Call] = append(targets[cs.Call], cs.Callee)
		}
	}

	detSeen, foldSeen := map[string]bool{}, map[string]bool{}
	var det, fold []rawFinding
	reportDet := func(pos token.Pos, format string, args ...any) {
		f := rawFinding{pos: pos, msg: fmt.Sprintf(format, args...)}
		k := fmt.Sprintf("%d|%s", pos, f.msg)
		if !detSeen[k] {
			detSeen[k] = true
			det = append(det, f)
		}
	}
	reportFold := func(pos token.Pos, format string, args ...any) {
		f := rawFinding{pos: pos, msg: fmt.Sprintf(format, args...)}
		k := fmt.Sprintf("%d|%s", pos, f.msg)
		if !foldSeen[k] {
			foldSeen[k] = true
			fold = append(fold, f)
		}
	}

	var ctxs []ctxFrame
	orderCtx := func() *ctxFrame {
		for i := len(ctxs) - 1; i >= 0; i-- {
			if ctxs[i].kind != ctxGo {
				return &ctxs[i]
			}
		}
		return nil
	}
	goCtx := func() *ctxFrame {
		for i := len(ctxs) - 1; i >= 0; i-- {
			if ctxs[i].kind == ctxGo {
				return &ctxs[i]
			}
		}
		return nil
	}
	litDepth := 0 // >0 while inside a func literal: returns there are not node's returns

	declaredWithin := func(obj types.Object, n ast.Node) bool {
		return obj != nil && posWithin(obj.Pos(), n)
	}
	pkgLevel := func(obj types.Object) bool {
		return obj != nil && pkg.Types != nil && obj.Parent() == pkg.Types.Scope()
	}

	// addTaint attaches facts to obj, applying the sort kill: order
	// facts never attach to a variable that is sorted somewhere in
	// this function (the collect-then-sort idiom).
	addTaint := func(obj types.Object, facts factSet) bool {
		if obj == nil || len(facts) == 0 {
			return false
		}
		t := taint[obj]
		if t == nil {
			t = factSet{}
			taint[obj] = t
		}
		changed := false
		for _, f := range facts {
			if sorted[obj] && (f.kind == SrcMapOrder || f.kind == SrcSelOrder) {
				continue
			}
			if t.add(f) {
				changed = true
			}
		}
		return changed
	}

	var eval func(e ast.Expr) factSet
	var evalCall func(call *ast.CallExpr) factSet

	// sinkArgs checks call arguments against a sink: source facts
	// become detflow findings, parameter facts become ParamToSink.
	sinkArgs := func(pos token.Pos, desc string, args []ast.Expr) {
		for _, arg := range args {
			for _, f := range eval(arg) {
				if f.kind == SrcParam {
					if sum.ParamToSink[f.param] == nil {
						sum.ParamToSink[f.param] = &sinkUse{desc: desc, pos: fset.Position(pos)}
					}
					continue
				}
				reportDet(pos,
					"value tainted by %s reaches %s: nondeterminism in output breaks the byte-identical sweep contract (sort, seed, or //lint:ignore detflow with a reason)",
					f.describe(), desc)
			}
		}
	}

	// markEmits records that this function writes ordered output,
	// unless the write site carries a detflow ignore.
	markEmits := func(pos token.Pos, desc string) {
		if sum.Emits == nil && !suppressedAt(directives, fset.Position(pos), "detflow") {
			sum.Emits = &sinkUse{desc: desc, pos: fset.Position(pos)}
		}
	}
	// markAccum records a caller-visible float accumulation owned by
	// parameter owner (-1: a package variable), unless the site
	// carries a floatfold ignore.
	markAccum := func(pos token.Pos, desc string, owner int) {
		if sum.Accum == nil && !suppressedAt(directives, fset.Position(pos), "floatfold") {
			sum.Accum = &sinkUse{desc: desc, pos: fset.Position(pos)}
			sum.AccumOwner = owner
		}
	}

	// exprVarObjs collects the non-field variables an expression
	// mentions — the objects whose scope/capture decides whether an
	// accumulator outlives a loop body or crosses into a goroutine.
	exprVarObjs := func(e ast.Expr) []*types.Var {
		var out []*types.Var
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := objectOf(pkg, id).(*types.Var); ok && !v.IsField() {
					out = append(out, v)
				}
			}
			return true
		})
		return out
	}

	// receiverAndArgs aligns a call's actual expressions with the
	// callee's paramObjs indexing (receiver first for methods).
	receiverAndArgs := func(call *ast.CallExpr, callee *FuncNode) []ast.Expr {
		if callee.Decl.Recv != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return append([]ast.Expr{sel.X}, call.Args...)
			}
		}
		return call.Args
	}

	// moduleCall handles one resolved module callee: result taint,
	// param→sink propagation, Emits/Accum context rules.
	moduleCall := func(call *ast.CallExpr, callee *FuncNode, out factSet) {
		cs := ip.sum(callee.Fn)
		name := callee.Fn.Name()
		actuals := receiverAndArgs(call, callee)
		for _, f := range cs.Results {
			if f.via == "" {
				f.via = name
			}
			out.add(f)
		}
		for i, actual := range actuals {
			// Clamp for variadic trailing arguments: they all land on
			// the final parameter.
			idx := i
			if idx >= len(cs.ParamToResult) {
				idx = len(cs.ParamToResult) - 1
			}
			if idx < 0 {
				break
			}
			if cs.ParamToResult[idx] {
				out.union(eval(actual))
			}
			if sk := cs.ParamToSink[idx]; sk != nil {
				for _, f := range eval(actual) {
					if f.kind == SrcParam {
						if sum.ParamToSink[f.param] == nil {
							sum.ParamToSink[f.param] = &sinkUse{desc: sk.desc, pos: fset.Position(call.Pos())}
						}
						continue
					}
					reportDet(call.Pos(),
						"argument to %s is tainted by %s and reaches %s inside it (%s): nondeterminism in output breaks the byte-identical sweep contract",
						name, f.describe(), sk.desc, shortPos(sk.pos))
				}
			}
		}
		if cs.Emits != nil {
			if fr := orderCtx(); fr != nil && fr.kind == ctxMapRange {
				reportDet(call.Pos(),
					"call to %s, which emits output (%s at %s), inside a map range: records land in randomized iteration order; iterate sorted keys instead",
					name, cs.Emits.desc, shortPos(cs.Emits.pos))
			}
			markEmits(call.Pos(), "a call to "+name)
		}
		if cs.Accum != nil {
			// The actual expression that owns the accumulator: the
			// value passed for the callee's AccumOwner parameter.
			// A package-level accumulator (owner -1) is shared with
			// every context unconditionally.
			shared := cs.AccumOwner < 0
			var ownerVars []*types.Var
			var ownerExpr ast.Expr
			if !shared && cs.AccumOwner < len(actuals) {
				ownerExpr = actuals[cs.AccumOwner]
				ownerVars = exprVarObjs(ownerExpr)
			}
			if fr := orderCtx(); fr != nil {
				escapes := shared
				for _, v := range ownerVars {
					if !declaredWithin(v, fr.node) {
						escapes = true
					}
				}
				if escapes {
					reportFold(call.Pos(),
						"call to %s, which accumulates float64 cost (%s) into an accumulator that outlives the loop, inside a %s body: the fold order follows randomized iteration, so sums can reassociate; fold over a sorted order instead",
						name, shortPos(cs.Accum.pos), fr.kind)
				}
			}
			if fr := goCtx(); fr != nil {
				captured := shared
				capName := "a package variable"
				for _, v := range ownerVars {
					if fr.free[v] {
						captured = true
						capName = v.Name()
					}
				}
				if captured {
					reportFold(call.Pos(),
						"goroutine calls %s, which accumulates float64 cost (%s), on captured %q: partials fold in completion order, which reassociates the sum; merge per-worker partials in a fixed order instead",
						name, shortPos(cs.Accum.pos), capName)
				}
			}
			// Propagate: this function is itself an accumulator when
			// the owner value is reachable from its own parameters
			// (taint decides, so call-result receivers like
			// r.FloatCounter(name) still trace back to r) or is
			// package-level.
			if shared {
				markAccum(call.Pos(), "a call to "+name, -1)
			} else if ownerExpr != nil {
				owner := -2 // not caller-visible: function-local accumulator
				for _, v := range ownerVars {
					if pkgLevel(v) {
						owner = -1
					}
				}
				for _, f := range eval(ownerExpr) {
					if f.kind == SrcParam {
						owner = f.param
						break
					}
				}
				if owner != -2 {
					markAccum(call.Pos(), "a call to "+name, owner)
				}
			}
		}
	}

	evalCall = func(call *ast.CallExpr) factSet {
		out := factSet{}
		if tgts := targets[call]; len(tgts) > 0 {
			for _, t := range tgts {
				moduleCall(call, t, out)
			}
			return out
		}
		if path, name, ok := pkgSelCall(pkg, call); ok {
			switch {
			case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
				p := fset.Position(call.Pos())
				if !suppressedAt(directives, p, "detflow") {
					out.add(fact{kind: SrcClock, pos: p})
				}
				return out
			case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name]:
				p := fset.Position(call.Pos())
				if !suppressedAt(directives, p, "detflow") {
					out.add(fact{kind: SrcRand, pos: p})
				}
				return out
			case path == "sort" || path == "slices":
				// Sorting restores a canonical order; results carry no
				// order taint (the sortedTargets kill covers in-place
				// variants).
				return out
			case path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
				sinkArgs(call.Pos(), "printed output", call.Args)
				markEmits(call.Pos(), "fmt."+name)
				if fr := orderCtx(); fr != nil && fr.kind == ctxMapRange &&
					!strings.Contains(pkg.Path, "internal/") {
					// detseed owns this shape in internal/ packages;
					// detflow extends it to cmd/* and the rest.
					reportDet(call.Pos(),
						"fmt.%s inside a map range emits lines in randomized iteration order; collect and sort first", name)
				}
				return out
			case path == "fmt" && name == "Errorf", path == "errors" && name == "New":
				sinkArgs(call.Pos(), "an error string (golden files compare these)", call.Args)
				return out
			}
			// Other stdlib calls (fmt.Sprintf, strconv, strings, ...):
			// conservative argument→result propagation.
			for _, a := range call.Args {
				out.union(eval(a))
			}
			return out
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := objectOf(pkg, id).(*types.Builtin); isBuiltin {
				switch id.Name {
				case "len", "cap", "make", "new", "delete", "clear", "copy":
					// Length/allocation are order-insensitive.
					return out
				}
				for _, a := range call.Args {
					out.union(eval(a)) // append, min, max
				}
				return out
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Encode", "Write", "WriteString":
				// Byte-stream sinks on out-of-module values (json
				// encoders, io.Writers) — name-based, see caveats.
				sinkArgs(call.Pos(), "byte-stream output ("+sel.Sel.Name+")", call.Args)
				markEmits(call.Pos(), sel.Sel.Name)
				return out
			}
			// Unknown method: propagate receiver and argument taint
			// (time.Duration.Milliseconds and friends).
			out.union(eval(sel.X))
		}
		for _, a := range call.Args {
			out.union(eval(a))
		}
		return out
	}

	eval = func(e ast.Expr) factSet {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if t := taint[objectOf(pkg, x)]; t != nil {
				out := factSet{}
				out.union(t)
				return out
			}
		case *ast.BinaryExpr:
			out := eval(x.X)
			out.union(eval(x.Y))
			return out
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				// A plain channel receive is deterministic for the
				// single-sender pipelines the engines use; select
				// scheduling is what taints (see CommClause below).
				return factSet{}
			}
			return eval(x.X)
		case *ast.StarExpr:
			return eval(x.X)
		case *ast.IndexExpr:
			return eval(x.X)
		case *ast.SliceExpr:
			return eval(x.X)
		case *ast.TypeAssertExpr:
			return eval(x.X)
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return factSet{}
				}
			}
			return eval(x.X)
		case *ast.CompositeLit:
			out := factSet{}
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					out.union(eval(kv.Value))
					continue
				}
				out.union(eval(el))
			}
			return out
		case *ast.CallExpr:
			return evalCall(x)
		}
		return factSet{}
	}

	isFloat := func(e ast.Expr) bool {
		t := pkg.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32)
	}

	// handleAccumulate applies the floatfold context rules and the
	// detflow tainted-cost sink to one `lhs += rhs` float fold.
	handleAccumulate := func(pos token.Pos, lhs ast.Expr, rhs ast.Expr) {
		id := rootIdent(lhs)
		var obj types.Object
		if id != nil {
			obj = objectOf(pkg, id)
		}
		if fr := orderCtx(); fr != nil && !declaredWithin(obj, fr.node) {
			name := "<expr>"
			if id != nil {
				name = id.Name
			}
			reportFold(pos,
				"float64 accumulation into %q inside a %s body: iteration order is randomized, so this fold can reassociate run to run; fold over a sorted order or collect per-key partials (engineLoop is the sanctioned single-chain fold)",
				name, fr.kind)
		}
		if fr := goCtx(); fr != nil && obj != nil && fr.free[obj] {
			reportFold(pos,
				"float64 accumulation into captured %q from a goroutine: workers fold in completion order, which reassociates the sum; accumulate per-worker partials and merge them in a fixed order",
				id.Name)
		}
		sinkArgs(pos, "a float64 cost accumulation", []ast.Expr{rhs})
		// Caller-visible targets make the whole function an
		// accumulator: fields/derefs reached from a parameter or
		// receiver, and package-level variables.
		if pkgLevel(obj) {
			markAccum(pos, "+= at "+shortPos(fset.Position(pos)), -1)
		} else if pi, viaParam := paramIndex[obj]; viaParam && !isPlainIdent(lhs) {
			// A field/deref of a parameter or receiver: the caller's
			// value accumulates. A plain `p += x` on a by-value
			// parameter stays local and does not count.
			markAccum(pos, "+= at "+shortPos(fset.Position(pos)), pi)
		}
	}

	handleAssign := func(x *ast.AssignStmt) {
		if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isFloat(x.Lhs[0]) {
			handleAccumulate(x.Pos(), x.Lhs[0], x.Rhs[0])
		}
		if x.Tok == token.ASSIGN && len(x.Lhs) == 1 && len(x.Rhs) == 1 && isFloat(x.Lhs[0]) {
			// x = x + e is the spelled-out form of the same fold.
			if bin, ok := ast.Unparen(x.Rhs[0]).(*ast.BinaryExpr); ok && bin.Op == token.ADD {
				lid := rootIdent(x.Lhs[0])
				if lid != nil {
					lobj := objectOf(pkg, lid)
					for _, side := range []ast.Expr{bin.X, bin.Y} {
						if sid := rootIdent(ast.Unparen(side)); sid != nil && objectOf(pkg, sid) == lobj {
							handleAccumulate(x.Pos(), x.Lhs[0], x.Rhs[0])
							break
						}
					}
				}
			}
		}
		// Taint generation. A tuple assignment from one call applies
		// the call's facts to every target.
		var shared factSet
		if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
			shared = eval(x.Rhs[0])
		}
		for i, lhs := range x.Lhs {
			id := rootIdent(lhs)
			if id == nil {
				continue
			}
			obj := objectOf(pkg, id)
			facts := shared
			if facts == nil && i < len(x.Rhs) {
				facts = eval(x.Rhs[i])
			}
			// Storing into a map launders order facts: inserting the
			// same key/value pairs in any iteration order builds the
			// identical map, so only data taint (clock, rand, params)
			// survives the write. Slices keep order facts — an indexed
			// store at a loop-carried position encodes the order.
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && facts != nil {
				if t := pkg.Info.TypeOf(idx.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						kept := factSet{}
						for _, f := range facts {
							if f.kind != SrcMapOrder && f.kind != SrcSelOrder {
								kept.add(f)
							}
						}
						facts = kept
					}
				}
			}
			// Plain = would kill the old facts under a flow-sensitive
			// scheme; flow-insensitivity keeps the union (sound).
			addTaint(obj, facts)
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			// Loop variables inherit the ranged value's own taint
			// (element taint: ranging a clock-derived slice yields
			// clock-derived elements) — except over channels, where
			// the received values are the senders' (see UnaryExpr).
			elemFacts := factSet{}
			isChan := false
			if t := pkg.Info.TypeOf(x.X); t != nil {
				_, isChan = t.Underlying().(*types.Chan)
			}
			if !isChan {
				elemFacts.union(eval(x.X))
			}
			if isMapRange(pkg, x) {
				p := fset.Position(x.Pos())
				if !suppressedAt(directives, p, "detflow") {
					elemFacts.add(fact{kind: SrcMapOrder, pos: p})
				}
				ctxs = append(ctxs, ctxFrame{kind: ctxMapRange, node: x})
			} else if isChan {
				ctxs = append(ctxs, ctxFrame{kind: ctxChanRange, node: x})
			} else {
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok {
						addTaint(objectOf(pkg, id), elemFacts)
					}
				}
				ast.Inspect(x.X, walk)
				ast.Inspect(x.Body, walk)
				return false
			}
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok {
					addTaint(objectOf(pkg, id), elemFacts)
				}
			}
			ast.Inspect(x.X, walk)
			ast.Inspect(x.Body, walk)
			ctxs = ctxs[:len(ctxs)-1]
			return false
		case *ast.SelectStmt:
			comm := 0
			for _, cl := range x.Body.List {
				if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				p := fset.Position(x.Pos())
				if !suppressedAt(directives, p, "detflow") {
					for _, cl := range x.Body.List {
						c, ok := cl.(*ast.CommClause)
						if !ok || c.Comm == nil {
							continue
						}
						if asg, ok := c.Comm.(*ast.AssignStmt); ok {
							for _, lhs := range asg.Lhs {
								if id, ok := lhs.(*ast.Ident); ok {
									addTaint(objectOf(pkg, id), factSet{"": {kind: SrcSelOrder, pos: p}})
								}
							}
						}
					}
				}
				ctxs = append(ctxs, ctxFrame{kind: ctxSelect, node: x})
				ast.Inspect(x.Body, walk)
				ctxs = ctxs[:len(ctxs)-1]
				return false
			}
			return true
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				free := map[types.Object]bool{}
				for _, v := range FreeVars(pkg, node.Decl, lit) {
					free[v] = true
				}
				ctxs = append(ctxs, ctxFrame{kind: ctxGo, node: lit, free: free})
				litDepth++
				ast.Inspect(lit.Body, walk)
				litDepth--
				ctxs = ctxs[:len(ctxs)-1]
				for _, a := range x.Call.Args {
					eval(a)
				}
				return false
			}
			// go f(...): f runs concurrently; if it accumulates
			// caller-visible float cost, completion order reassociates.
			for _, t := range targets[x.Call] {
				if cs := ip.sum(t.Fn); cs.Accum != nil {
					reportFold(x.Pos(),
						"go %s: the callee accumulates float64 cost (%s) into caller-visible state, and goroutines complete in scheduling order; merge per-worker partials in a fixed order instead",
						t.Fn.Name(), shortPos(cs.Accum.pos))
				}
			}
			eval(x.Call)
			return false
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(x.Body, walk)
			litDepth--
			return false
		case *ast.AssignStmt:
			handleAssign(x)
			return true
		case *ast.ValueSpec:
			for i, nm := range x.Names {
				var facts factSet
				if len(x.Values) == 1 && len(x.Names) > 1 {
					facts = eval(x.Values[0])
				} else if i < len(x.Values) {
					facts = eval(x.Values[i])
				}
				addTaint(objectOf(pkg, nm), facts)
			}
			return true
		case *ast.ReturnStmt:
			if litDepth > 0 {
				return true
			}
			if len(x.Results) == 0 {
				// Naked return: named results carry whatever taint
				// they accumulated.
				if node.Decl.Type.Results != nil {
					for _, f := range node.Decl.Type.Results.List {
						for _, nm := range f.Names {
							for _, fa := range taint[objectOf(pkg, nm)] {
								if fa.kind == SrcParam {
									sum.ParamToResult[fa.param] = true
								} else {
									sum.Results.add(fa)
								}
							}
						}
					}
				}
				return true
			}
			for _, r := range x.Results {
				for _, f := range eval(r) {
					if f.kind == SrcParam {
						sum.ParamToResult[f.param] = true
					} else {
						sum.Results.add(f)
					}
				}
			}
			return true
		case *ast.CallExpr:
			eval(x)
			return true
		}
		return true
	}

	// Seed the summaries the syntax cannot reveal: obs FloatCounter.Add
	// folds float64 through an atomic bit-cast CAS loop rather than a
	// `+=`, but it is an order-sensitive accumulation all the same.
	if knownAccum(node) {
		markAccum(node.Decl.Name.Pos(), "an atomic bit-cast float accumulate", 0)
	}

	// Iterate the walk to a fixpoint: facts only accumulate, so the
	// loop terminates; findings dedup via reportDet/reportFold.
	for iter := 0; iter < 16; iter++ {
		before := taintSize(taint)
		fpBefore := sum.fingerprint()
		ast.Inspect(node.Decl.Body, walk)
		if taintSize(taint) == before && sum.fingerprint() == fpBefore {
			break
		}
	}
	sort.Slice(det, func(i, j int) bool { return det[i].pos < det[j].pos })
	sort.Slice(fold, func(i, j int) bool { return fold[i].pos < fold[j].pos })
	return sum, det, fold
}

func taintSize(taint map[types.Object]factSet) int {
	n := 0
	for _, s := range taint {
		n += len(s)
	}
	return n
}

func isPlainIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// paramObjs lists a function's receiver (if any) then parameters, the
// indexing Summary.ParamToResult/ParamToSink use. Unnamed parameters
// hold their index with a nil object.
func paramObjs(pkg *Package, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, nm := range f.Names {
				out = append(out, objectOf(pkg, nm))
			}
		}
	}
	add(decl.Recv)
	add(decl.Type.Params)
	return out
}

// knownAccum reports whether node is a module function whose float
// accumulation hides from the `+=` detector behind atomics: the obs
// FloatCounter.Add CAS loop. The receiver (parameter 0) owns the sum.
func knownAccum(node *FuncNode) bool {
	if node.Fn.Name() != "Add" {
		return false
	}
	sig, ok := node.Fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isTypeNamed(sig.Recv().Type(), "internal/obs", "FloatCounter")
}

// sortedTargets collects the objects restored to a canonical order
// somewhere in body: arguments of sort.*/slices.* calls and variables
// assigned from their results. Order facts never attach to them.
func sortedTargets(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		arg := ast.Unparen(e)
		// Unwrap one conversion/constructor layer: sort.Sort(byName(s)).
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = ast.Unparen(inner.Args[0])
		}
		if id := rootIdent(arg); id != nil {
			if obj := objectOf(pkg, id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if path, _, ok := pkgSelCall(pkg, x); ok && (path == "sort" || path == "slices") && len(x.Args) > 0 {
				mark(x.Args[0])
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if path, _, ok := pkgSelCall(pkg, call); ok && (path == "sort" || path == "slices") && i < len(x.Lhs) {
					mark(x.Lhs[i])
				}
			}
		}
		return true
	})
	return out
}
