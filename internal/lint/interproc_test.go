package lint

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// graphFor loads files into a temp module, type-checks, and builds the
// call graph plus the interprocedural summaries.
func graphFor(t *testing.T, files map[string]string) (*CallGraph, *Interproc) {
	t.Helper()
	pkgs := loadTemp(t, files)
	TypeCheck(pkgs)
	ip := NewInterproc(pkgs, collectDirectives(pkgs))
	return ip.Graph, ip
}

// nodeByName finds the unique call-graph node with the given function
// name.
func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.order {
		if n.Fn.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

// edgeTo returns Use's first edge targeting callee, or nil.
func edge(from, to *FuncNode) *CallSite {
	for _, c := range from.Calls {
		if c.Callee == to {
			return c
		}
	}
	return nil
}

func hasKind(s factSet, k SourceKind) bool {
	for _, f := range s {
		if f.kind == k {
			return true
		}
	}
	return false
}

// TestInterprocMutualRecursionSCC: mutually recursive functions form
// one SCC, and the summary fixpoint propagates a source read by one of
// them into both summaries — pong is declared first, so its first scan
// runs before ping's clock fact exists and only the SCC iteration can
// deliver it.
func TestInterprocMutualRecursionSCC(t *testing.T) {
	g, ip := graphFor(t, map[string]string{
		"rec/rec.go": `package rec

import "time"

var epoch time.Time

func pong(n int) float64 {
	return ping(n - 1)
}

func ping(n int) float64 {
	if n <= 0 {
		return time.Since(epoch).Seconds()
	}
	return pong(n - 1)
}
`,
	})
	ping, pong := nodeByName(t, g, "ping"), nodeByName(t, g, "pong")
	var home []*FuncNode
	for _, scc := range g.SCCs {
		for _, n := range scc {
			if n == ping {
				home = scc
			}
		}
	}
	if len(home) != 2 {
		t.Fatalf("ping's SCC has %d members, want 2 (ping+pong)", len(home))
	}
	foundPong := false
	for _, n := range home {
		foundPong = foundPong || n == pong
	}
	if !foundPong {
		t.Fatal("pong not in ping's SCC")
	}
	for _, n := range []*FuncNode{ping, pong} {
		s := ip.Summaries[n.Fn]
		if s == nil {
			t.Fatalf("no summary for %s", n.Fn.Name())
		}
		if !hasKind(s.Results, SrcClock) {
			t.Errorf("%s's result summary lacks the clock fact; the SCC fixpoint did not converge", n.Fn.Name())
		}
	}
}

// TestInterprocMethodValueRefEdge: mentioning a method outside call
// position (a method value) adds a Ref edge — the method may run
// wherever the value flows.
func TestInterprocMethodValueRefEdge(t *testing.T) {
	g, _ := graphFor(t, map[string]string{
		"mv/mv.go": `package mv

type T struct{}

func (T) Handle() {}

func Use(t T) {
	h := t.Handle
	h()
}
`,
	})
	use, handle := nodeByName(t, g, "Use"), nodeByName(t, g, "Handle")
	e := edge(use, handle)
	if e == nil {
		t.Fatal("no edge Use -> Handle for the method value")
	}
	if !e.Ref || e.Call != nil {
		t.Errorf("method-value edge: Ref=%t Call=%v, want a reference edge (Ref=true, Call=nil)", e.Ref, e.Call)
	}
}

// TestInterprocFuncFieldRefEdge: initializing a function-typed struct
// field with a module function adds a Ref edge.
func TestInterprocFuncFieldRefEdge(t *testing.T) {
	g, _ := graphFor(t, map[string]string{
		"ff/ff.go": `package ff

func work() {}

type S struct {
	fn func()
}

func Make() S {
	return S{fn: work}
}
`,
	})
	mk, work := nodeByName(t, g, "Make"), nodeByName(t, g, "work")
	e := edge(mk, work)
	if e == nil {
		t.Fatal("no edge Make -> work for the function-typed field initializer")
	}
	if !e.Ref {
		t.Error("function-field edge not marked Ref")
	}
}

// TestInterprocInterfaceDevirtualization: a call through an interface
// method edges to every module implementation — the sound superset.
func TestInterprocInterfaceDevirtualization(t *testing.T) {
	g, _ := graphFor(t, map[string]string{
		"iface/iface.go": `package iface

type Doer interface {
	Do()
}

type A struct{}

func (A) Do() {}

type B struct{}

func (*B) Do() {}

func Call(d Doer) {
	d.Do()
}
`,
	})
	call := nodeByName(t, g, "Call")
	var targets []string
	for _, c := range call.Calls {
		if c.Ref {
			t.Errorf("devirtualized edge to %s marked Ref; it is a syntactic call", c.Callee.Fn.Name())
		}
		recv := c.Callee.Fn.Type().String()
		targets = append(targets, recv)
	}
	if len(call.Calls) != 2 {
		t.Fatalf("Call has %d edges %v, want 2 (A.Do and (*B).Do)", len(call.Calls), targets)
	}
}

// TestInterprocIgnoreOnCalleeSuppressesCaller: certifying a
// nondeterminism source with //lint:ignore at the read kills every
// caller-side finding the source would induce — the callee certifies
// once, callers inherit.
func TestInterprocIgnoreOnCalleeSuppressesCaller(t *testing.T) {
	files := func(directive string) map[string]string {
		return map[string]string{
			"sup/sup.go": fmt.Sprintf(`package sup

import (
	"fmt"
	"time"
)

var epoch time.Time

func stamp() float64 {
	return time.Since(epoch).Seconds()%s
}

func Report() {
	fmt.Println(stamp())
}
`, directive),
		}
	}

	bare := loadTemp(t, files(""))
	if got := Run(bare, []*Analyzer{DetFlow}); len(got) != 1 {
		t.Fatalf("without the directive: %d detflow findings %v, want 1 at the Report print", len(got), got)
	}

	certified := loadTemp(t, files(" //lint:ignore detflow the stamp is stripped before comparison"))
	if got := Run(certified, []*Analyzer{DetFlow}); len(got) != 0 {
		t.Fatalf("callee-side //lint:ignore did not suppress the caller finding: %v", got)
	}
}

// TestInterprocSeededUnsortedMapJSONL is the seeded-bug check the
// ISSUE names: a JSONL writer fed straight from a map range — the
// shape of the sweep record writer — is flagged statically by detflow,
// while the dynamic differential comparison the repo otherwise relies
// on passes at small map sizes (a 1-entry map emits identical bytes on
// every run, so byte-comparing reruns cannot catch it).
func TestInterprocSeededUnsortedMapJSONL(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"mirror/mirror.go": `package mirror

import (
	"fmt"
	"io"
)

// writeRec mirrors the sweep JSONL record writer.
func writeRec(w io.Writer, config string, cost int) {
	fmt.Fprintf(w, "{\"config\":%q,\"cost\":%d}\n", config, cost)
}

// Dump emits one record per config straight off the map.
func Dump(w io.Writer, costs map[string]int) {
	for k, v := range costs {
		writeRec(w, k, v)
	}
}
`,
	})
	findings := Run(pkgs, []*Analyzer{DetFlow})
	if len(findings) == 0 {
		t.Fatal("detflow missed the unsorted map range feeding the JSONL writer")
	}
	sawOrder := false
	for _, f := range findings {
		sawOrder = sawOrder || strings.Contains(f.Message, "map-iteration order")
	}
	if !sawOrder {
		t.Errorf("no finding cites map-iteration order: %v", findings)
	}

	// The dynamic companion: the exact bug, run differentially at the
	// map size where fuzzing plateaus. One entry means one iteration
	// order, so every rerun byte-matches and the differential gate
	// reports a false pass — which is why the static finding matters.
	emit := func() []byte {
		var b bytes.Buffer
		costs := map[string]int{"E01": 7}
		for k, v := range costs {
			fmt.Fprintf(&b, "{\"config\":%q,\"cost\":%d}\n", k, v)
		}
		return b.Bytes()
	}
	first := emit()
	for i := 0; i < 32; i++ {
		if !bytes.Equal(first, emit()) {
			t.Fatal("1-entry map emitted differing bytes; the premise of the static check is wrong")
		}
	}
}
