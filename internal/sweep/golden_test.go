package sweep

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// Golden pin of the JSONL record encoding: downstream consumers of
// cmd/experiments -jsonl parse these exact field names. A failure here
// means the change breaks the output contract — add new fields instead
// of renaming, and update the golden only for deliberate, documented
// format revisions.
func TestRecordJSONGolden(t *testing.T) {
	rec, err := RecordOf(Outcome{
		ID: "E05", Seq: 4, Status: StatusOK, Seed: 42,
		Start: 250 * time.Microsecond,
		Wall:  1500 * time.Microsecond,
		Value: map[string]string{"k": "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	const wantOK = `{"id":"E05","seq":4,"status":"ok","seed":42,"start_ms":0.25,"wall_ms":1.5,"value":{"k":"v"}}`
	if string(raw) != wantOK {
		t.Errorf("ok record encoding changed:\n got %s\nwant %s", raw, wantOK)
	}

	failed, err := RecordOf(Outcome{ID: "E09", Seq: 7, Status: StatusFailed,
		Seed: 9, Err: errors.New("boom")})
	if err != nil {
		t.Fatal(err)
	}
	raw, err = json.Marshal(failed)
	if err != nil {
		t.Fatal(err)
	}
	const wantFailed = `{"id":"E09","seq":7,"status":"failed","err":"boom","seed":9,"wall_ms":0}`
	if string(raw) != wantFailed {
		t.Errorf("failed record encoding changed:\n got %s\nwant %s", raw, wantFailed)
	}

	withMetrics, err := RecordOf(Outcome{ID: "E01", Status: StatusOK, Metrics: nil})
	if err != nil {
		t.Fatal(err)
	}
	rec = withMetrics
	rec.Metrics = []Metric{{Name: "hmm.cost.total", Kind: "float", Value: 2.5},
		{Name: "hmm.depth", Kind: "hist", Value: 6, Count: 2, Buckets: []int64{0, 2}}}
	raw, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	const wantMetrics = `{"id":"E01","seq":0,"status":"ok","seed":0,"wall_ms":0,` +
		`"metrics":[{"name":"hmm.cost.total","kind":"float","value":2.5},` +
		`{"name":"hmm.depth","kind":"hist","value":6,"count":2,"buckets":[0,2]}]}`
	if string(raw) != wantMetrics {
		t.Errorf("metric record encoding changed:\n got %s\nwant %s", raw, wantMetrics)
	}
}
