// Package sweep is the concurrent experiment-sweep engine: it runs a
// list of named jobs (experiment-table builders, parameter sweeps,
// any deterministic unit of measurement work) across a bounded worker
// pool while keeping every observable output independent of the
// scheduling. The guarantees the harness relies on:
//
//   - Stable order: Run returns one Outcome per submitted Job, in
//     submission order, regardless of which worker finished first.
//   - Deterministic seeding: every job receives a seed derived only
//     from the base seed and its own ID (SeedFor), never from worker
//     identity or completion order, so results are byte-identical for
//     any -workers value.
//   - Failure policy: by default a failing job cancels the run's
//     context and the remaining queued jobs are skipped; with KeepGoing
//     every job runs. Either way the error Run returns is the failed
//     outcome with the lowest Seq — never a completion-order pick — so
//     what callers print is as schedule-independent as the outcomes.
//   - Capture: each job's wall-clock time is recorded, and with
//     Metrics enabled each job runs against its own obs.Registry whose
//     snapshot is attached to the Outcome (merge them with
//     obs.Registry.Import for an aggregate report).
//
// Engine throughput is itself observable: Options.Obs receives the
// sweep.jobs.* counters, the sweep.job.wall_ms histogram and the
// sweep.workers gauge, so a sweep shows up in the same obs report as
// the simulations it drives.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Params is the input of one job run. Builders must be pure functions
// of Params: same Params, same result.
type Params struct {
	// Quick trims parameter sweeps for fast smoke runs.
	Quick bool
	// Seed is the job's deterministic seed, derived by SeedFor from the
	// engine's base seed and the job ID. Builders fold it into their
	// workload seeds so distinct jobs draw distinct inputs while runs
	// stay reproducible.
	Seed uint64
	// Obs carries the job's observer: a per-job registry when metric
	// capture is on, plus the engine's shared trace sink. May be nil.
	Obs *obs.Observer
}

// Job is one named unit of sweep work.
type Job struct {
	// ID identifies the job (experiment id, sweep point); it drives
	// seeding and output labelling and should be unique within a run.
	ID string
	// Run produces the job's result. It must respect ctx for early
	// cancellation on long sweeps and must not retain p.Obs past the
	// call. A panic inside Run is captured as a job failure.
	Run func(ctx context.Context, p Params) (any, error)
}

// Status classifies an Outcome.
type Status string

const (
	// StatusOK marks a job that completed successfully.
	StatusOK Status = "ok"
	// StatusFailed marks a job whose Run returned an error or panicked.
	StatusFailed Status = "failed"
	// StatusSkipped marks a job that never ran because the sweep was
	// cancelled (first failure, deadline, caller cancellation).
	StatusSkipped Status = "skipped"
)

// Outcome is one job's result.
type Outcome struct {
	// ID echoes the job ID.
	ID string
	// Seq is the job's position in submission order; Run returns
	// outcomes sorted by Seq whatever the completion order was.
	Seq int
	// Status is ok, failed or skipped.
	Status Status
	// Value is the job's result (nil unless Status is ok).
	Value any
	// Err is the failure or skip cause (nil when ok).
	Err error
	// Seed is the deterministic seed the job ran under.
	Seed uint64
	// Start is the job's start offset since the sweep began (zero when
	// skipped). Together with Wall it reconstructs the sweep's schedule
	// for timeline views.
	Start time.Duration
	// Wall is the job's wall-clock duration (zero when skipped).
	Wall time.Duration
	// Metrics is the snapshot of the job's private registry, when the
	// engine ran with Metrics enabled.
	Metrics []obs.Sample
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// KeepGoing runs every job even after failures instead of
	// cancelling the sweep at the first one.
	KeepGoing bool
	// Quick is forwarded to every job's Params.
	Quick bool
	// Seed is the base seed; each job runs under SeedFor(Seed, job.ID).
	Seed uint64
	// Metrics gives each job a private obs.Registry and attaches its
	// snapshot to the Outcome.
	Metrics bool
	// Obs receives the engine's own throughput metrics, and its Sink
	// (if any) is shared with every job for structured tracing. May be
	// nil.
	Obs *obs.Observer
	// LiveMetrics folds each finished job's metric snapshot into Obs's
	// registry as the sweep runs, so a live /metrics scrape sees
	// simulator families (hmm_*, bt_*, ...) before Run returns. The fold
	// happens in completion order — fine for the monotone counters and
	// histograms a scrape reads, but anyone needing the deterministic
	// aggregate should fold Outcome.Metrics in submission order instead.
	LiveMetrics bool
	// Progress, when non-nil, receives per-job state transitions
	// (queued → running → ok/failed/skipped) for live /debug/progress
	// polling. May be nil.
	Progress *Progress
	// Profile, when non-nil, is the run's span-stack cost profile: each
	// job's observer gets a scope under the job's ID, so simulator cost
	// attributions fold into stacks like "E05;hmm;label.3;compute". May
	// be nil.
	Profile *obs.Profile
	// Stream, when non-nil, receives each Outcome in submission order as
	// soon as it and every earlier job are terminal, while later jobs may
	// still run — the resumable-stream hook a service uses to follow a
	// sweep's JSONL records live. The callback runs on worker goroutines
	// under an internal lock (one call at a time, never concurrently), so
	// keep it fast; the outcomes it sees are exactly the slice Run
	// returns, one element at a time. May be nil.
	Stream func(Outcome)
}

// SeedFor derives the deterministic seed of job id under base: an
// FNV-1a hash of the ID folded into the base via a SplitMix64 round.
// It depends on nothing but its arguments, which is what makes sweep
// results independent of worker count and completion order.
func SeedFor(base uint64, id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	z := base + 0x9e3779b97f4a7c15 + h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes jobs across the bounded worker pool and returns one
// outcome per job in submission order. Job IDs must be unique within
// the run — they drive per-job seeds (SeedFor) and downstream cache
// keys — so a duplicate is rejected up front with an error and nil
// outcomes rather than silently running two jobs on one seed.
//
// The returned error is the failed outcome with the lowest Seq, a
// schedule-independent choice: under KeepGoing every job runs, so the
// failed set — and with it the reported error, and anything that
// prints it — is byte-identical for any Workers value, whatever the
// completion order was. Without KeepGoing the first observed failure
// still cancels the sweep, and the reported failure is again the
// lowest-Seq one among the jobs that actually failed before the
// cancellation landed. When no job failed, the context's error (if
// any) is returned. Outcomes are complete whenever the job list was
// accepted.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Outcome, error) {
	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if prev, ok := seen[j.ID]; ok {
			return nil, fmt.Errorf("sweep: duplicate job ID %q (positions %d and %d): IDs drive per-job seeds and downstream cache keys, so they must be unique within a run", j.ID, prev, i)
		}
		seen[j.ID] = i
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	//lint:ignore detseed the sweep start anchors Outcome.Start offsets and progress timestamps only, never job results
	sweepStart := time.Now() //lint:ignore detflow flows only into start_ms, a documented run-varying record field the golden comparison masks
	opt.Progress.begin(jobs, workers, opt.Obs)
	defer opt.Progress.finish()

	var (
		started   = opt.Obs.Counter("sweep.jobs.started")
		completed = opt.Obs.Counter("sweep.jobs.completed")
		failed    = opt.Obs.Counter("sweep.jobs.failed")
		skipped   = opt.Obs.Counter("sweep.jobs.skipped")
		wallHist  = opt.Obs.Histogram("sweep.job.wall_ms")
	)
	opt.Obs.Gauge("sweep.workers").Set(int64(workers))

	outcomes := make([]Outcome, len(jobs))
	emit := newStreamEmitter(opt.Stream, outcomes)
	var (
		next     atomic.Int64
		failOnce sync.Once
		wg       sync.WaitGroup
	)
	// fail triggers the fail-fast cancellation; which failure Run
	// *reports* is decided after the pool drains, by Seq, so the error
	// never depends on completion order.
	fail := func() {
		failOnce.Do(func() {
			if !opt.KeepGoing {
				cancel()
			}
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				out := &outcomes[i]
				out.ID, out.Seq = job.ID, i
				out.Seed = SeedFor(opt.Seed, job.ID)
				if err := ctx.Err(); err != nil {
					out.Status, out.Err = StatusSkipped, err
					skipped.Inc()
					opt.Progress.jobSkipped(i)
					emit.markDone(i)
					continue
				}
				p := Params{Quick: opt.Quick, Seed: out.Seed}
				var reg *obs.Registry
				if opt.Metrics {
					reg = obs.NewRegistry()
				}
				var sink obs.Sink
				if opt.Obs != nil {
					sink = opt.Obs.Sink
				}
				var prof *obs.Profile
				if opt.Profile != nil {
					prof = opt.Profile.Scope(job.ID)
				}
				if reg != nil || sink != nil || prof != nil {
					p.Obs = obs.New(reg, sink)
					p.Obs.Prof = prof
				}
				started.Inc()
				opt.Progress.jobRunning(i)
				//lint:ignore detseed wall-clock capture only feeds Outcome.Start/Wall and the wall_ms histogram, never the byte-identical job results
				begin := time.Now() //lint:ignore detflow flows only into start_ms/wall_ms, documented run-varying record fields the golden comparison masks
				out.Start = begin.Sub(sweepStart)
				val, err := runJob(ctx, job, p)
				out.Wall = time.Since(begin) //lint:ignore detflow wall_ms is a documented run-varying record field the golden comparison masks
				wallHist.Observe(out.Wall.Milliseconds())
				if reg != nil {
					out.Metrics = reg.Snapshot()
					if opt.LiveMetrics && opt.Obs != nil {
						//lint:ignore floatfold the live registry is scrape-only: byte-compared output reads the per-job Metrics snapshots, and the completion-order fold here only feeds /metrics
						opt.Obs.Reg.Import(out.Metrics)
					}
				}
				if err != nil {
					out.Status, out.Err = StatusFailed, err
					failed.Inc()
					opt.Progress.jobFinished(i, StatusFailed, out.Wall)
					emit.markDone(i)
					fail()
					continue
				}
				out.Status, out.Value = StatusOK, val
				completed.Inc()
				opt.Progress.jobFinished(i, StatusOK, out.Wall)
				emit.markDone(i)
			}
		}()
	}
	wg.Wait()

	// Report the lowest-Seq failure: under KeepGoing every job ran, so
	// the failed set — and therefore the reported error — is identical
	// for any worker count. (The pre-fix engine reported the first
	// failure in completion order, which varied with scheduling.)
	for i := range outcomes {
		if outcomes[i].Status == StatusFailed {
			return outcomes, fmt.Errorf("sweep: job %s: %w", outcomes[i].ID, outcomes[i].Err)
		}
	}
	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	return outcomes, nil
}

// streamEmitter delivers outcomes to the Options.Stream hook in
// submission order: a worker marks its outcome terminal and the
// emitter flushes the contiguous terminal prefix. The mutex both
// serializes the callback and orders each worker's outcome write
// before any other worker emits it.
type streamEmitter struct {
	emit     func(Outcome)
	outcomes []Outcome

	mu    sync.Mutex
	ready []bool // guarded by mu
	next  int    // guarded by mu
}

// newStreamEmitter returns an emitter over the run's outcome slice, or
// nil when no hook is set (markDone no-ops on nil).
func newStreamEmitter(emit func(Outcome), outcomes []Outcome) *streamEmitter {
	if emit == nil {
		return nil
	}
	return &streamEmitter{emit: emit, outcomes: outcomes, ready: make([]bool, len(outcomes))}
}

// markDone records that outcome i is terminal and emits every not-yet-
// emitted outcome of the contiguous terminal prefix, in order.
func (e *streamEmitter) markDone(i int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ready[i] = true
	for e.next < len(e.ready) && e.ready[e.next] {
		e.emit(e.outcomes[e.next])
		e.next++
	}
}

// runJob invokes the job, translating a panic in the builder into an
// error so one bad experiment cannot take down a keep-going sweep.
func runJob(ctx context.Context, job Job, p Params) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job %s panicked: %v", job.ID, r)
		}
	}()
	return job.Run(ctx, p)
}
