package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Record is the stable JSONL encoding of one Outcome — the format
// cmd/experiments -jsonl emits, one object per line, in submission
// order. Field names are pinned by the golden test; add fields, never
// rename or repurpose them.
type Record struct {
	// ID is the job ID.
	ID string `json:"id"`
	// Seq is the submission-order index.
	Seq int `json:"seq"`
	// Status is "ok", "failed" or "skipped".
	Status string `json:"status"`
	// Err carries the failure or skip cause, when not ok.
	Err string `json:"err,omitempty"`
	// Seed is the deterministic seed the job ran under.
	Seed uint64 `json:"seed"`
	// StartMS is the job's start offset since the sweep began, in
	// milliseconds (absent when skipped). With WallMS it reconstructs
	// the sweep's schedule offline.
	StartMS float64 `json:"start_ms,omitempty"`
	// WallMS is the job's wall-clock time in milliseconds. Like
	// StartMS it varies between byte-identical sweeps.
	WallMS float64 `json:"wall_ms"`
	// Value is the job result encoded as JSON, for ok outcomes whose
	// value is JSON-encodable.
	Value json.RawMessage `json:"value,omitempty"`
	// Metrics is the job's private registry snapshot, when metric
	// capture was on.
	Metrics []Metric `json:"metrics,omitempty"`
}

// Metric is the JSONL form of one obs.Sample.
type Metric struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Kind is "counter", "float", "gauge" or "hist".
	Kind string `json:"kind"`
	// Value is the counter/gauge/float value, or a histogram's sum.
	Value float64 `json:"value"`
	// Count is a histogram's observation count.
	Count int64 `json:"count,omitempty"`
	// Buckets holds a histogram's power-of-two bucket counts.
	Buckets []int64 `json:"buckets,omitempty"`
}

// metricsOf converts a registry snapshot to the record form.
func metricsOf(samples []obs.Sample) []Metric {
	if len(samples) == 0 {
		return nil
	}
	out := make([]Metric, len(samples))
	for i, s := range samples {
		out[i] = Metric{Name: s.Name, Kind: s.Kind, Value: s.Value,
			Count: s.Count, Buckets: s.Buckets}
	}
	return out
}

// RecordOf converts an Outcome to its JSONL record. Values that fail
// to marshal are reported as an error rather than silently dropped.
func RecordOf(o Outcome) (Record, error) {
	rec := Record{
		ID:      o.ID,
		Seq:     o.Seq,
		Status:  string(o.Status),
		Seed:    o.Seed,
		StartMS: float64(o.Start.Microseconds()) / 1000,
		WallMS:  float64(o.Wall.Microseconds()) / 1000,
		Metrics: metricsOf(o.Metrics),
	}
	if o.Err != nil {
		rec.Err = o.Err.Error()
	}
	if o.Status == StatusOK && o.Value != nil {
		raw, err := json.Marshal(o.Value)
		if err != nil {
			return rec, fmt.Errorf("sweep: job %s: encode value: %w", o.ID, err)
		}
		rec.Value = raw
	}
	return rec, nil
}

// WriteJSONL writes one record per outcome, newline-separated, in
// submission order.
func WriteJSONL(w io.Writer, outcomes []Outcome) error {
	for _, o := range outcomes {
		rec, err := RecordOf(o)
		if err != nil {
			return err
		}
		raw, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("sweep: job %s: %w", o.ID, err)
		}
		if _, err := w.Write(append(raw, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL decodes a record stream produced by WriteJSONL, for
// round-trip tests and offline tooling.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("sweep: record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
