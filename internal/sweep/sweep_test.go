package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// nJobs builds n trivial jobs whose value records (id, seed) so tests
// can check ordering and seeding.
func nJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		id := fmt.Sprintf("J%02d", i)
		jobs[i] = Job{ID: id, Run: func(ctx context.Context, p Params) (any, error) {
			return fmt.Sprintf("%s/%d", id, p.Seed), nil
		}}
	}
	return jobs
}

// values extracts the ok values in order.
func values(outcomes []Outcome) []any {
	out := make([]any, len(outcomes))
	for i, o := range outcomes {
		out[i] = o.Value
	}
	return out
}

// The central determinism guarantee: outcomes (ids, seq, seeds,
// values) are identical for every worker count.
func TestStableOrderAcrossWorkerCounts(t *testing.T) {
	jobs := nJobs(17)
	ref, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 64} {
		got, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(values(got), values(ref)) {
			t.Fatalf("workers=%d: values diverge from serial run", workers)
		}
		for i, o := range got {
			if o.Seq != i || o.ID != jobs[i].ID || o.Status != StatusOK {
				t.Fatalf("workers=%d outcome %d = %+v", workers, i, o)
			}
			if o.Seed != SeedFor(0, o.ID) {
				t.Fatalf("workers=%d job %s seed = %d, want SeedFor", workers, o.ID, o.Seed)
			}
		}
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	if SeedFor(7, "E01") != SeedFor(7, "E01") {
		t.Error("SeedFor not deterministic")
	}
	if SeedFor(7, "E01") == SeedFor(7, "E02") {
		t.Error("distinct ids should get distinct seeds")
	}
	if SeedFor(7, "E01") == SeedFor(8, "E01") {
		t.Error("distinct base seeds should get distinct seeds")
	}
}

// The pool must never run more than Workers jobs at once.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("concurrency peaked at %d, bound is %d", p, workers)
	}
}

// First failure cancels the sweep: queued jobs are skipped and the
// first error is returned.
func TestFirstFailureCancels(t *testing.T) {
	var ran atomic.Int64
	jobs := make([]Job, 12)
	for i := range jobs {
		fail := i == 2
		jobs[i] = Job{ID: fmt.Sprintf("J%02d", i), Run: func(ctx context.Context, p Params) (any, error) {
			ran.Add(1)
			if fail {
				return nil, errors.New("boom")
			}
			return "ok", nil
		}}
	}
	outcomes, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "J02") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want first failure of J02", err)
	}
	if outcomes[2].Status != StatusFailed {
		t.Errorf("J02 status = %s", outcomes[2].Status)
	}
	var skipped int
	for _, o := range outcomes[3:] {
		if o.Status == StatusSkipped {
			skipped++
			if !errors.Is(o.Err, context.Canceled) {
				t.Errorf("%s skip cause = %v", o.ID, o.Err)
			}
		}
	}
	if skipped == 0 {
		t.Error("no queued job was skipped after the failure")
	}
	if int(ran.Load()) >= len(jobs) {
		t.Error("every job ran despite fail-fast")
	}
}

// KeepGoing runs everything and still reports the first failure.
func TestKeepGoingRunsAll(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		fail := i%3 == 1
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			if fail {
				return nil, errors.New("boom")
			}
			return "ok", nil
		}}
	}
	outcomes, err := Run(context.Background(), jobs, Options{Workers: 2, KeepGoing: true})
	if err == nil {
		t.Fatal("want first failure reported")
	}
	for i, o := range outcomes {
		want := StatusOK
		if i%3 == 1 {
			want = StatusFailed
		}
		if o.Status != want {
			t.Errorf("job %d status = %s, want %s", i, o.Status, want)
		}
	}
}

// A panicking builder is a failed job, not a crashed sweep.
func TestPanicBecomesFailure(t *testing.T) {
	jobs := []Job{
		{ID: "good", Run: func(ctx context.Context, p Params) (any, error) { return 1, nil }},
		{ID: "bad", Run: func(ctx context.Context, p Params) (any, error) { panic("kaput") }},
	}
	outcomes, err := Run(context.Background(), jobs, Options{Workers: 2, KeepGoing: true})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want panic message", err)
	}
	if outcomes[1].Status != StatusFailed || !strings.Contains(outcomes[1].Err.Error(), "kaput") {
		t.Errorf("bad outcome = %+v", outcomes[1])
	}
	if outcomes[0].Status != StatusOK {
		t.Errorf("good outcome = %+v", outcomes[0])
	}
}

// A cancelled context skips queued work and surfaces the context error.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var once sync.Once
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			once.Do(func() { cancel(); close(release) })
			<-release
			return "ok", nil
		}}
	}
	outcomes, err := Run(ctx, jobs, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var skipped int
	for _, o := range outcomes {
		if o.Status == StatusSkipped {
			skipped++
		}
	}
	if skipped != len(jobs)-1 {
		t.Errorf("%d jobs skipped, want %d", skipped, len(jobs)-1)
	}
}

// Metric capture: each job sees a private registry whose snapshot
// lands on its outcome, with the shared sink forwarded.
func TestMetricsCapture(t *testing.T) {
	var traced atomic.Int64
	sink := obs.SinkFunc(func(obs.Event) { traced.Add(1) })
	jobs := make([]Job, 4)
	for i := range jobs {
		n := int64(i + 1)
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			p.Obs.Counter("work.items").Add(n)
			p.Obs.Emit(obs.Event{Kind: "tick"})
			return nil, nil
		}}
	}
	reg := obs.NewRegistry()
	outcomes, err := Run(context.Background(), jobs, Options{
		Workers: 2, Metrics: true, Obs: obs.New(reg, sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		found := false
		for _, s := range o.Metrics {
			if s.Name == "work.items" {
				found = true
				if s.Value != float64(i+1) {
					t.Errorf("job %d work.items = %g, want %d", i, s.Value, i+1)
				}
			}
		}
		if !found {
			t.Errorf("job %d: no work.items sample", i)
		}
	}
	if traced.Load() != int64(len(jobs)) {
		t.Errorf("sink saw %d events, want %d", traced.Load(), len(jobs))
	}
	// Per-job registries are private: the engine registry holds only
	// engine metrics.
	if got := reg.Counter("work.items").Value(); got != 0 {
		t.Errorf("engine registry leaked job metric: %d", got)
	}
}

// Without Metrics and without a sink the job observer is nil — the
// zero-overhead disabled path.
func TestNilObserverWhenDisabled(t *testing.T) {
	jobs := []Job{{ID: "J", Run: func(ctx context.Context, p Params) (any, error) {
		if p.Obs != nil {
			return nil, errors.New("observer should be nil when capture is off")
		}
		return nil, nil
	}}}
	if _, err := Run(context.Background(), jobs, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEmptyJobList(t *testing.T) {
	outcomes, err := Run(context.Background(), nil, Options{Workers: 4})
	if err != nil || len(outcomes) != 0 {
		t.Fatalf("empty run = (%v, %v)", outcomes, err)
	}
}

// JSONL round trip preserves the stable fields.
func TestJSONLRoundTrip(t *testing.T) {
	jobs := []Job{
		{ID: "A", Run: func(ctx context.Context, p Params) (any, error) {
			return map[string]int{"x": 1}, nil
		}},
		{ID: "B", Run: func(ctx context.Context, p Params) (any, error) {
			return nil, errors.New("boom")
		}},
	}
	outcomes, _ := Run(context.Background(), jobs, Options{Workers: 1, KeepGoing: true})
	var buf strings.Builder
	if err := WriteJSONL(&buf, outcomes); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if recs[0].ID != "A" || recs[0].Status != "ok" || string(recs[0].Value) != `{"x":1}` {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].ID != "B" || recs[1].Status != "failed" || !strings.Contains(recs[1].Err, "boom") {
		t.Errorf("record 1 = %+v", recs[1])
	}
	if recs[0].Seed != SeedFor(0, "A") {
		t.Errorf("record 0 seed = %d", recs[0].Seed)
	}
}

// An unencodable value must surface as an error, not a silent drop.
func TestJSONLUnencodableValue(t *testing.T) {
	outcomes := []Outcome{{ID: "A", Status: StatusOK, Value: func() {}}}
	var buf strings.Builder
	if err := WriteJSONL(&buf, outcomes); err == nil {
		t.Fatal("func value encoded without error")
	}
}
