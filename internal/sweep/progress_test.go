package sweep

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestProgressTransitions drives one job through queued → running → ok
// and checks each intermediate snapshot, then verifies terminal counts
// for a mixed ok/failed run.
func TestProgressTransitions(t *testing.T) {
	prog := NewProgress()
	release := make(chan struct{})
	runningSeen := make(chan struct{})
	jobs := []Job{
		{ID: "A", Run: func(ctx context.Context, p Params) (any, error) {
			close(runningSeen)
			<-release
			return "done", nil
		}},
		{ID: "B", Run: func(ctx context.Context, p Params) (any, error) {
			return nil, errors.New("boom")
		}},
	}

	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), jobs, Options{
			Workers: 1, KeepGoing: true, Progress: prog,
		})
		done <- err
	}()

	<-runningSeen
	s := prog.Snapshot()
	if s.Total != 2 || s.Running != 1 || s.Queued != 1 {
		t.Errorf("mid-run snapshot = %+v, want total 2 running 1 queued 1", s)
	}
	if s.Jobs[0].Status != "running" || s.Jobs[1].Status != "queued" {
		t.Errorf("job states = %q/%q, want running/queued", s.Jobs[0].Status, s.Jobs[1].Status)
	}
	if s.Done {
		t.Error("Done before Run returned")
	}
	close(release)
	if err := <-done; err == nil {
		t.Fatal("expected job B's failure to surface")
	}

	s = prog.Snapshot()
	if !s.Done {
		t.Error("not Done after Run returned")
	}
	if s.Completed != 1 || s.Failed != 1 || s.Running != 0 || s.Queued != 0 {
		t.Errorf("terminal snapshot = %+v, want completed 1 failed 1", s)
	}
	if s.Jobs[0].Status != "ok" || s.Jobs[1].Status != "failed" {
		t.Errorf("terminal job states = %q/%q", s.Jobs[0].Status, s.Jobs[1].Status)
	}
	if s.Jobs[0].WallMS <= 0 {
		t.Errorf("job A wall = %v, want > 0", s.Jobs[0].WallMS)
	}
	if s.Jobs[0].UpdatedMS < s.Jobs[0].StartMS {
		t.Errorf("job A updated %v < start %v", s.Jobs[0].UpdatedMS, s.Jobs[0].StartMS)
	}
}

// TestProgressSkippedAndGauges: on a fail-fast sweep the tracker
// reports skips, and the live gauges mirror the final counts.
func TestProgressSkippedAndGauges(t *testing.T) {
	prog := NewProgress()
	reg := obs.NewRegistry()
	const n = 6
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			return nil, errors.New("boom")
		}}
	}
	_, err := Run(context.Background(), jobs, Options{
		Workers: 1, Progress: prog, Obs: obs.New(reg, nil),
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	s := prog.Snapshot()
	if s.Failed != 1 || s.Skipped != n-1 {
		t.Errorf("snapshot = %+v, want failed 1 skipped %d", s, n-1)
	}
	if g := reg.Gauge("sweep.jobs.running").Value(); g != 0 {
		t.Errorf("sweep.jobs.running gauge = %d, want 0", g)
	}
	if g := reg.Gauge("sweep.jobs.queued").Value(); g != 0 {
		t.Errorf("sweep.jobs.queued gauge = %d, want 0", g)
	}
}

// TestProgressETA: the estimate is median wall time × remaining ÷
// workers, from the tracker's own histogram.
func TestProgressETA(t *testing.T) {
	p := NewProgress()
	p.begin([]Job{{ID: "A"}, {ID: "B"}, {ID: "C"}, {ID: "D"}}, 2, nil)
	p.jobRunning(0)
	p.jobFinished(0, StatusOK, 40*time.Millisecond)
	s := p.Snapshot()
	if s.ETAMS <= 0 {
		t.Fatalf("ETA = %v after one finished job, want > 0", s.ETAMS)
	}
	// One 40 ms observation lands in bucket [32, 64); three jobs remain
	// across two workers, so the estimate lies in (1.5*32, 1.5*64].
	if s.ETAMS <= 48 || s.ETAMS > 96 {
		t.Errorf("ETA = %v ms, want within (48, 96]", s.ETAMS)
	}
	if s.ElapsedMS < 0 {
		t.Errorf("Elapsed = %v", s.ElapsedMS)
	}
}

// TestProgressZeroPaths audits the zero-jobs / zero-finished edges of
// the tracker: an empty sweep still begins and finishes cleanly, the
// ETA estimate is exactly 0 whenever no job has finished (or no worker
// exists to finish one), and no count field goes negative or NaN —
// the division-by-zero candidates are the workers divisor and the
// empty wall histogram's quantile, both of which must short-circuit.
func TestProgressZeroPaths(t *testing.T) {
	cases := []struct {
		name    string
		jobs    []Job
		workers int
		drive   func(p *Progress)
	}{
		{"empty-jobs-zero-workers", nil, 0, func(p *Progress) {}},
		{"empty-jobs-positive-workers", nil, 4, func(p *Progress) {}},
		{"jobs-none-finished", []Job{{ID: "A"}, {ID: "B"}}, 2, func(p *Progress) {
			p.jobRunning(0)
		}},
		{"jobs-finished-zero-workers", []Job{{ID: "A"}}, 0, func(p *Progress) {
			p.jobRunning(0)
			p.jobFinished(0, StatusOK, time.Millisecond)
		}},
		{"all-skipped", []Job{{ID: "A"}, {ID: "B"}}, 1, func(p *Progress) {
			p.jobSkipped(0)
			p.jobSkipped(1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProgress()
			reg := obs.NewRegistry()
			p.begin(tc.jobs, tc.workers, obs.New(reg, nil))
			tc.drive(p)
			p.finish()
			s := p.Snapshot()
			if s.Total != len(tc.jobs) || !s.Done {
				t.Fatalf("snapshot = %+v, want Total %d, Done", s, len(tc.jobs))
			}
			if s.Queued < 0 || s.Running < 0 || s.Completed < 0 || s.Failed < 0 || s.Skipped < 0 {
				t.Errorf("negative count in %+v", s)
			}
			if s.ETAMS != s.ETAMS || s.ETAMS < 0 { // NaN or negative
				t.Errorf("ETA = %v, want finite and >= 0", s.ETAMS)
			}
			// Zero finished jobs, or zero workers, must pin the estimate
			// to exactly 0 — not Inf from a zero divisor.
			if (s.Completed+s.Failed == 0 || tc.workers == 0) && s.ETAMS != 0 {
				t.Errorf("ETA = %v with %d finished jobs and %d workers, want 0",
					s.ETAMS, s.Completed+s.Failed, tc.workers)
			}
			if g := reg.Gauge("sweep.eta_ms").Value(); g < 0 {
				t.Errorf("sweep.eta_ms gauge = %d, want >= 0", g)
			}
			if s.ElapsedMS < 0 {
				t.Errorf("Elapsed = %v", s.ElapsedMS)
			}
		})
	}
}

// TestRunEmptyJobsWithProgress: the engine path for a zero-job run —
// begin with a zero-clamped worker pool, no transitions, finish — must
// leave a consistent, ETA-free snapshot and zeroed gauges rather than
// garbage from the 0-worker divisor.
func TestRunEmptyJobsWithProgress(t *testing.T) {
	prog := NewProgress()
	reg := obs.NewRegistry()
	outcomes, err := Run(context.Background(), nil, Options{
		Workers:  8,
		Obs:      obs.New(reg, nil),
		Progress: prog,
	})
	if err != nil || len(outcomes) != 0 {
		t.Fatalf("empty run = (%v, %v)", outcomes, err)
	}
	s := prog.Snapshot()
	if s.Total != 0 || !s.Done || s.ETAMS != 0 || s.Workers != 0 {
		t.Errorf("snapshot after empty run = %+v, want Total 0, Done, ETA 0, Workers 0", s)
	}
	if w := reg.Gauge("sweep.workers").Value(); w != 0 {
		t.Errorf("sweep.workers gauge = %d, want 0 (pool clamps to job count)", w)
	}
	if q := reg.Gauge("sweep.jobs.queued").Value(); q != 0 {
		t.Errorf("sweep.jobs.queued gauge = %d, want 0", q)
	}
}

// TestProgressSnapshotBeforeBegin: a tracker polled before the sweep
// starts (the service registers progress sources at submit time, not
// run time) reports the zero snapshot, not a garbage elapsed offset
// from the zero time.Time.
func TestProgressSnapshotBeforeBegin(t *testing.T) {
	p := NewProgress()
	s := p.Snapshot()
	if s.Total != 0 || s.Done || s.ETAMS != 0 || s.ElapsedMS != 0 {
		t.Errorf("pre-begin snapshot = %+v, want all-zero", s)
	}
}

// TestProgressNil: a nil tracker no-ops across the whole engine path.
func TestProgressNil(t *testing.T) {
	var p *Progress
	p.begin(nil, 1, nil)
	p.jobRunning(0)
	p.jobSkipped(0)
	p.jobFinished(0, StatusOK, 0)
	p.finish()
	if s := p.Snapshot(); s.Total != 0 || s.Done {
		t.Errorf("nil snapshot = %+v", s)
	}
}

// TestOutcomeStartOffsets: started jobs record a start offset and
// RecordOf carries it as start_ms; skipped jobs omit it.
func TestOutcomeStartOffsets(t *testing.T) {
	jobs := []Job{
		{ID: "A", Run: func(ctx context.Context, p Params) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return nil, nil
		}},
		{ID: "B", Run: func(ctx context.Context, p Params) (any, error) {
			return nil, errors.New("boom")
		}},
		{ID: "C", Run: func(ctx context.Context, p Params) (any, error) {
			return nil, nil
		}},
	}
	outcomes, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err == nil {
		t.Fatal("expected failure")
	}
	if outcomes[0].Start < 0 {
		t.Errorf("job A start = %v", outcomes[0].Start)
	}
	if outcomes[1].Start < outcomes[0].Start+outcomes[0].Wall {
		t.Errorf("job B started at %v, before A finished at %v",
			outcomes[1].Start, outcomes[0].Start+outcomes[0].Wall)
	}
	if outcomes[2].Status != StatusSkipped || outcomes[2].Start != 0 {
		t.Errorf("skipped job: status %v start %v, want skipped/0", outcomes[2].Status, outcomes[2].Start)
	}
	rec, err := RecordOf(outcomes[1])
	if err != nil {
		t.Fatal(err)
	}
	if rec.StartMS <= 0 {
		t.Errorf("record start_ms = %v, want > 0", rec.StartMS)
	}
}

// TestProfileScopedPerJob: with Options.Profile every job's observer
// carries a scope under the job ID, so attributions fold into
// job-prefixed stacks.
func TestProfileScopedPerJob(t *testing.T) {
	prof := obs.NewProfile()
	jobs := []Job{
		{ID: "E01", Run: func(ctx context.Context, p Params) (any, error) {
			p.Obs.Profile().Add(2, "hmm", "compute")
			return nil, nil
		}},
		{ID: "E02", Run: func(ctx context.Context, p Params) (any, error) {
			p.Obs.Profile().Add(3, "bt", "swap")
			return nil, nil
		}},
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: 2, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	got := prof.Folded()
	want := []obs.StackCost{
		{Stack: "E01;hmm;compute", Cost: 2},
		{Stack: "E02;bt;swap", Cost: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("Folded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Folded[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
