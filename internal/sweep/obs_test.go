package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obshttp"
)

// The engine's throughput counters must partition the submitted job
// count the same way the simulators' cost phases partition their
// totals: every job is started or skipped, and every started job
// completes or fails.
func TestThroughputCountersPartitionJobs(t *testing.T) {
	const n = 10
	jobs := make([]Job, n)
	for i := range jobs {
		fail := i == 4
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			if fail {
				return nil, errors.New("boom")
			}
			return nil, nil
		}}
	}
	for _, keepGoing := range []bool{false, true} {
		reg := obs.NewRegistry()
		_, err := Run(context.Background(), jobs, Options{
			Workers: 1, KeepGoing: keepGoing, Obs: obs.New(reg, nil),
		})
		if err == nil {
			t.Fatalf("keepGoing=%v: expected first-failure error", keepGoing)
		}
		started := reg.Counter("sweep.jobs.started").Value()
		completed := reg.Counter("sweep.jobs.completed").Value()
		failed := reg.Counter("sweep.jobs.failed").Value()
		skipped := reg.Counter("sweep.jobs.skipped").Value()
		if started+skipped != n {
			t.Errorf("keepGoing=%v: started(%d)+skipped(%d) != %d submitted",
				keepGoing, started, skipped, n)
		}
		if completed+failed != started {
			t.Errorf("keepGoing=%v: completed(%d)+failed(%d) != started(%d)",
				keepGoing, completed, failed, started)
		}
		if failed != 1 {
			t.Errorf("keepGoing=%v: failed = %d, want 1", keepGoing, failed)
		}
		if keepGoing && (skipped != 0 || completed != n-1) {
			t.Errorf("keep-going run skipped %d completed %d", skipped, completed)
		}
		if !keepGoing && skipped != n-5 {
			t.Errorf("fail-fast run skipped %d, want %d", skipped, n-5)
		}
		if wall := reg.Histogram("sweep.job.wall_ms").Count(); wall != started {
			t.Errorf("keepGoing=%v: wall histogram count %d != started %d",
				keepGoing, wall, started)
		}
		if w := reg.Gauge("sweep.workers").Value(); w != 1 {
			t.Errorf("sweep.workers = %d, want 1", w)
		}
	}
}

// TestScrapeWhileSweepRaces is the -race check for the live export
// path: every worker hammers counters, float counters and histograms
// on one shared registry (via the LiveMetrics fold and directly) while
// a scrape loop snapshots the registry, renders it in Prometheus text
// format and polls the progress tracker — exactly what a /metrics +
// /debug/progress scraper does against a running sweep.
func TestScrapeWhileSweepRaces(t *testing.T) {
	reg := obs.NewRegistry()
	prog := NewProgress()
	prof := obs.NewProfile()
	shared := obs.New(reg, nil)

	const n = 64
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("J%02d", i), Run: func(ctx context.Context, p Params) (any, error) {
			for k := 0; k < 100; k++ {
				// Direct writes to the shared engine registry, racing the
				// scrape loop's Snapshot.
				shared.Counter("test.shared.ops").Inc()
				shared.FloatCounter("test.shared.cost").Add(0.5)
				shared.Histogram("test.shared.depth").Observe(int64(k))
				// Writes to the job's private registry, racing the
				// LiveMetrics fold of other jobs.
				p.Obs.Counter("test.job.ops").Inc()
				p.Obs.FloatCounter("test.job.cost").Add(1.25)
				p.Obs.Histogram("test.job.depth").Observe(int64(k))
				p.Obs.Profile().Add(1, "phase")
			}
			return nil, nil
		}}
	}

	stop := make(chan struct{})
	scrapes := new(atomic.Int64)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			samples := reg.Snapshot()
			if err := obshttp.WriteProm(io.Discard, samples, nil); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			_ = prog.Snapshot()
			_ = prof.Folded()
			scrapes.Add(1)
		}
	}()

	outcomes, err := Run(context.Background(), jobs, Options{
		Workers: 8, Metrics: true, LiveMetrics: true,
		Obs: shared, Progress: prog, Profile: prof,
	})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != n {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), n)
	}
	if got := reg.Counter("test.shared.ops").Value(); got != n*100 {
		t.Errorf("shared ops = %d, want %d", got, n*100)
	}
	// The LiveMetrics fold must account for every job's private writes.
	if got := reg.Counter("test.job.ops").Value(); got != n*100 {
		t.Errorf("folded job ops = %d, want %d", got, n*100)
	}
	if got := reg.Histogram("test.job.depth").Count(); got != n*100 {
		t.Errorf("folded job depth count = %d, want %d", got, n*100)
	}
	s := prog.Snapshot()
	if !s.Done || s.Completed != n {
		t.Errorf("progress done=%v completed=%d, want true/%d", s.Done, s.Completed, n)
	}
	if scrapes.Load() == 0 {
		t.Error("scrape loop never ran")
	}
}
