package sweep

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// The engine's throughput counters must partition the submitted job
// count the same way the simulators' cost phases partition their
// totals: every job is started or skipped, and every started job
// completes or fails.
func TestThroughputCountersPartitionJobs(t *testing.T) {
	const n = 10
	jobs := make([]Job, n)
	for i := range jobs {
		fail := i == 4
		jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Run: func(ctx context.Context, p Params) (any, error) {
			if fail {
				return nil, errors.New("boom")
			}
			return nil, nil
		}}
	}
	for _, keepGoing := range []bool{false, true} {
		reg := obs.NewRegistry()
		_, err := Run(context.Background(), jobs, Options{
			Workers: 1, KeepGoing: keepGoing, Obs: obs.New(reg, nil),
		})
		if err == nil {
			t.Fatalf("keepGoing=%v: expected first-failure error", keepGoing)
		}
		started := reg.Counter("sweep.jobs.started").Value()
		completed := reg.Counter("sweep.jobs.completed").Value()
		failed := reg.Counter("sweep.jobs.failed").Value()
		skipped := reg.Counter("sweep.jobs.skipped").Value()
		if started+skipped != n {
			t.Errorf("keepGoing=%v: started(%d)+skipped(%d) != %d submitted",
				keepGoing, started, skipped, n)
		}
		if completed+failed != started {
			t.Errorf("keepGoing=%v: completed(%d)+failed(%d) != started(%d)",
				keepGoing, completed, failed, started)
		}
		if failed != 1 {
			t.Errorf("keepGoing=%v: failed = %d, want 1", keepGoing, failed)
		}
		if keepGoing && (skipped != 0 || completed != n-1) {
			t.Errorf("keep-going run skipped %d completed %d", skipped, completed)
		}
		if !keepGoing && skipped != n-5 {
			t.Errorf("fail-fast run skipped %d, want %d", skipped, n-5)
		}
		if wall := reg.Histogram("sweep.job.wall_ms").Count(); wall != started {
			t.Errorf("keepGoing=%v: wall histogram count %d != started %d",
				keepGoing, wall, started)
		}
		if w := reg.Gauge("sweep.workers").Value(); w != 1 {
			t.Errorf("sweep.workers = %d, want 1", w)
		}
	}
}
