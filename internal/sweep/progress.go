package sweep

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// JobProgress is the live state of one job inside a sweep, as exposed
// on /debug/progress. StartMS/WallMS/UpdatedMS are offsets and
// durations in milliseconds; UpdatedMS is the job's last state
// transition and doubles as the per-job heartbeat a distributed sweep
// coordinator would watch for stalls.
type JobProgress struct {
	ID        string  `json:"id"`
	Seq       int     `json:"seq"`
	Status    string  `json:"status"`
	StartMS   float64 `json:"start_ms,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
	UpdatedMS float64 `json:"updated_ms,omitempty"`
}

// ProgressSnapshot is one consistent view of a sweep's live state.
type ProgressSnapshot struct {
	// Total is the number of submitted jobs; the remaining count fields
	// partition it.
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
	// Workers is the size of the worker pool.
	Workers int `json:"workers"`
	// ElapsedMS is wall-clock time since the sweep began.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ETAMS estimates the remaining wall-clock time: the median job
	// wall time so far times the unfinished-job count, divided by the
	// worker count. Zero until the first job finishes.
	ETAMS float64 `json:"eta_ms"`
	// Done reports that Run has returned.
	Done bool          `json:"done"`
	Jobs []JobProgress `json:"jobs"`
}

// Progress tracks per-job state transitions (queued → running →
// ok/failed/skipped) of a sweep run. Hand one to Options.Progress and
// poll Snapshot — typically via obshttp's /debug/progress endpoint —
// while Run is in flight. All methods are safe for concurrent use and
// nil receivers no-op, so the engine calls the hooks unconditionally.
//
// Progress never feeds back into job execution: it observes wall-clock
// state only, so enabling it cannot perturb the byte-identical sweep
// results.
type Progress struct {
	mu      sync.Mutex
	begun   time.Time     // guarded by mu
	jobs    []JobProgress // guarded by mu
	workers int           // guarded by mu
	done    bool          // guarded by mu

	queued, running, completed, failed, skipped int // guarded by mu

	// wall collects finished-job wall times for the ETA estimate,
	// separate from any engine registry so Progress works standalone.
	// guarded by mu
	wall obs.Histogram

	// o receives the live sweep.jobs.running/queued and sweep.eta_ms
	// gauges (the engine's Options.Obs observer; may be nil).
	// guarded by mu
	o *obs.Observer
}

// NewProgress returns an empty tracker, ready to pass as
// Options.Progress.
func NewProgress() *Progress { return &Progress{} }

// nowLocked returns the tracker-relative wall offset in milliseconds;
// callers hold p.mu (it reads p.begun).
func (p *Progress) nowLocked() float64 {
	return float64(time.Since(p.begun)) / float64(time.Millisecond)
}

// begin initialises the tracker for a run of the given jobs.
func (p *Progress) begin(jobs []Job, workers int, o *obs.Observer) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:ignore detseed the sweep start time anchors progress offsets only
	p.begun = time.Now() //lint:ignore detflow progress offsets feed live gauges and /debug/progress only, never the byte-compared sweep records
	p.jobs = make([]JobProgress, len(jobs))
	for i, j := range jobs {
		p.jobs[i] = JobProgress{ID: j.ID, Seq: i, Status: "queued"}
	}
	p.workers = workers
	p.queued, p.running, p.completed, p.failed, p.skipped = len(jobs), 0, 0, 0, 0
	p.done = false
	p.o = o
	p.publishLocked()
}

// jobRunning marks job seq as claimed by a worker.
func (p *Progress) jobRunning(seq int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	j := &p.jobs[seq]
	now := p.nowLocked()
	j.Status, j.StartMS, j.UpdatedMS = "running", now, now
	p.queued--
	p.running++
	p.publishLocked()
}

// jobSkipped marks job seq as skipped (sweep cancelled before it ran).
func (p *Progress) jobSkipped(seq int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	j := &p.jobs[seq]
	j.Status, j.UpdatedMS = string(StatusSkipped), p.nowLocked()
	p.queued--
	p.skipped++
	p.publishLocked()
}

// jobFinished records job seq's terminal status and wall time.
func (p *Progress) jobFinished(seq int, status Status, wall time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	j := &p.jobs[seq]
	j.Status = string(status)
	j.WallMS = float64(wall) / float64(time.Millisecond)
	j.UpdatedMS = p.nowLocked()
	p.running--
	if status == StatusFailed {
		p.failed++
	} else {
		p.completed++
	}
	p.wall.Observe(wall.Milliseconds())
	p.publishLocked()
}

// finish marks the run complete.
func (p *Progress) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done = true
	p.publishLocked()
}

// etaLocked estimates remaining wall-clock milliseconds from the
// median finished-job wall time; callers hold p.mu.
func (p *Progress) etaLocked() float64 {
	if p.wall.Count() == 0 || p.workers <= 0 {
		return 0
	}
	remaining := p.queued + p.running
	return p.wall.Quantile(0.5) * float64(remaining) / float64(p.workers)
}

// publishLocked mirrors the live counts into the engine observer's
// gauges; callers hold p.mu.
func (p *Progress) publishLocked() {
	if p.o == nil {
		return
	}
	p.o.Gauge("sweep.jobs.running").Set(int64(p.running))
	p.o.Gauge("sweep.jobs.queued").Set(int64(p.queued))
	p.o.Gauge("sweep.eta_ms").Set(int64(p.etaLocked()))
}

// Snapshot returns one consistent view of the sweep's live state (the
// zero ProgressSnapshot on a nil receiver).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Total:     len(p.jobs),
		Queued:    p.queued,
		Running:   p.running,
		Completed: p.completed,
		Failed:    p.failed,
		Skipped:   p.skipped,
		Workers:   p.workers,
		ETAMS:     p.etaLocked(),
		Done:      p.done,
		Jobs:      append([]JobProgress(nil), p.jobs...),
	}
	if !p.begun.IsZero() {
		s.ElapsedMS = p.nowLocked()
	}
	return s
}
