package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// The sweep-contract suite (TestContract*): pins the parts of the
// engine's error and streaming contract that a service layer builds
// on. scripts/check_experiments.sh runs exactly these tests as part of
// the determinism gate, so a regression here fails CI twice — once as
// a test, once as a gate.

// TestContractKeepGoingErrorSchedulesIdentically pins the fixed error
// contract: with KeepGoing and multiple failures, Run reports the
// failed outcome with the lowest Seq, whatever the completion order.
// The job mix is built so the pre-fix engine (completion-order first
// failure) demonstrably returned different errors for different
// worker counts: the lowest-Seq failure (J01) sleeps long enough that
// any parallel schedule completes the higher-Seq failure (J05) first.
func TestContractKeepGoingErrorSchedulesIdentically(t *testing.T) {
	mkJobs := func() []Job {
		jobs := make([]Job, 8)
		for i := range jobs {
			id := fmt.Sprintf("J%02d", i)
			var run func(ctx context.Context, p Params) (any, error)
			switch i {
			case 1:
				run = func(ctx context.Context, p Params) (any, error) {
					time.Sleep(60 * time.Millisecond)
					return nil, errors.New("slow failure")
				}
			case 5:
				run = func(ctx context.Context, p Params) (any, error) {
					return nil, errors.New("fast failure")
				}
			default:
				run = func(ctx context.Context, p Params) (any, error) {
					return id, nil
				}
			}
			jobs[i] = Job{ID: id, Run: run}
		}
		return jobs
	}

	var errs []string
	for _, workers := range []int{1, 4, 16} {
		_, err := Run(context.Background(), mkJobs(), Options{Workers: workers, KeepGoing: true})
		if err == nil {
			t.Fatalf("workers=%d: want an error from the failing jobs", workers)
		}
		errs = append(errs, err.Error())
	}
	for i, e := range errs {
		if e != errs[0] {
			t.Errorf("error varies with worker count:\n  workers=1:  %s\n  other:      %s", errs[0], e)
			_ = i
		}
		if !strings.Contains(e, "J01") || !strings.Contains(e, "slow failure") {
			t.Errorf("error = %q, want the lowest-Seq failure (J01: slow failure)", e)
		}
	}
}

// TestContractKeepGoingManyFailures drives the same contract harder:
// every third job fails instantly and the reported failure must always
// be the lowest-Seq one.
func TestContractKeepGoingManyFailures(t *testing.T) {
	jobs := make([]Job, 24)
	for i := range jobs {
		id := fmt.Sprintf("J%02d", i)
		fail := i%3 == 2 // first failure at Seq 2
		jobs[i] = Job{ID: id, Run: func(ctx context.Context, p Params) (any, error) {
			if fail {
				return nil, fmt.Errorf("boom %s", id)
			}
			return id, nil
		}}
	}
	for _, workers := range []int{1, 4, 16} {
		outcomes, err := Run(context.Background(), jobs, Options{Workers: workers, KeepGoing: true})
		if err == nil || !strings.Contains(err.Error(), "J02") {
			t.Errorf("workers=%d: err = %v, want the Seq-2 failure", workers, err)
		}
		for i, o := range outcomes {
			want := StatusOK
			if i%3 == 2 {
				want = StatusFailed
			}
			if o.Status != want {
				t.Errorf("workers=%d job %d status = %s, want %s", workers, i, o.Status, want)
			}
		}
	}
}

// TestContractFailFastReportsLowestSeqFailure: without KeepGoing the
// first observed failure still cancels the sweep, but when several
// in-flight jobs fail before the cancellation lands, the reported one
// is the lowest-Seq failure among them — never a completion-order
// coin flip.
func TestContractFailFastReportsLowestSeqFailure(t *testing.T) {
	// Both failing jobs are in flight together (workers=2) and the
	// higher-Seq one finishes first.
	var release sync.WaitGroup
	release.Add(1)
	jobs := []Job{
		{ID: "A", Run: func(ctx context.Context, p Params) (any, error) {
			release.Wait() // fail only after B has failed
			return nil, errors.New("slow A failure")
		}},
		{ID: "B", Run: func(ctx context.Context, p Params) (any, error) {
			defer release.Done()
			return nil, errors.New("fast B failure")
		}},
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "job A") || !strings.Contains(err.Error(), "slow A failure") {
		t.Errorf("err = %v, want the lowest-Seq (A) failure", err)
	}
}

// TestContractRejectsDuplicateIDs: job IDs drive SeedFor and service
// cache keys; a duplicate silently collapses two jobs onto one seed,
// so Run must refuse the list outright.
func TestContractRejectsDuplicateIDs(t *testing.T) {
	ok := func(ctx context.Context, p Params) (any, error) { return "ok", nil }
	jobs := []Job{{ID: "E01", Run: ok}, {ID: "E02", Run: ok}, {ID: "E01", Run: ok}}
	outcomes, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
	for _, want := range []string{"duplicate", "E01", "0", "2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err = %q, want mention of %q", err, want)
		}
	}
	if outcomes != nil {
		t.Errorf("outcomes = %v, want nil for a rejected job list", outcomes)
	}
	// The rejection must not depend on scheduling: identical error for
	// every worker count.
	ref := err.Error()
	for _, workers := range []int{1, 16} {
		_, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err == nil || err.Error() != ref {
			t.Errorf("workers=%d: duplicate-ID error %v, want %q", workers, err, ref)
		}
	}
}

// TestContractStreamOrdered: the Options.Stream hook must deliver
// outcomes in submission order — each as soon as it and every earlier
// job are terminal — and the streamed outcomes must equal the returned
// slice exactly.
func TestContractStreamOrdered(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		jobs := make([]Job, 20)
		for i := range jobs {
			id := fmt.Sprintf("J%02d", i)
			delay := time.Duration((i*7)%5) * time.Millisecond // jumbled completion order
			fail := i == 13
			jobs[i] = Job{ID: id, Run: func(ctx context.Context, p Params) (any, error) {
				time.Sleep(delay)
				if fail {
					return nil, errors.New("boom")
				}
				return id, nil
			}}
		}
		var mu sync.Mutex
		var streamed []Outcome
		outcomes, err := Run(context.Background(), jobs, Options{
			Workers:   workers,
			KeepGoing: true,
			Stream: func(o Outcome) {
				mu.Lock()
				defer mu.Unlock()
				streamed = append(streamed, o)
			},
		})
		if err == nil || !strings.Contains(err.Error(), "J13") {
			t.Fatalf("workers=%d: err = %v, want J13 failure", workers, err)
		}
		mu.Lock()
		got := append([]Outcome(nil), streamed...)
		mu.Unlock()
		if !reflect.DeepEqual(got, outcomes) {
			t.Errorf("workers=%d: streamed outcomes diverge from returned slice", workers)
		}
		for i, o := range got {
			if o.Seq != i {
				t.Errorf("workers=%d: stream position %d carries Seq %d", workers, i, o.Seq)
			}
		}
	}
}

// TestContractStreamPrefixLive: outcomes stream while the sweep is
// still running — the hook sees the terminal prefix before Run
// returns, which is what lets a service resume/follow a sweep's JSONL
// stream live.
func TestContractStreamPrefixLive(t *testing.T) {
	gate := make(chan struct{})
	sawPrefix := make(chan int, 1)
	jobs := []Job{
		{ID: "fast", Run: func(ctx context.Context, p Params) (any, error) { return 1, nil }},
		{ID: "slow", Run: func(ctx context.Context, p Params) (any, error) {
			<-gate // blocks until the fast job's outcome has streamed
			return 2, nil
		}},
	}
	var n int
	_, err := Run(context.Background(), jobs, Options{
		Workers: 2,
		Stream: func(o Outcome) {
			n++
			if n == 1 {
				select {
				case sawPrefix <- 1:
				default:
				}
				close(gate)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sawPrefix:
	default:
		t.Error("first outcome never streamed before the sweep finished")
	}
	if n != 2 {
		t.Errorf("streamed %d outcomes, want 2", n)
	}
}
