// Package invariant is the debug-mode runtime counterpart of the
// static checks in internal/lint: a per-superstep checker for the
// simulation invariants the paper's schemes rely on. Wired into a
// native run through dbsp.RunInspected, it validates after every
// superstep's delivery that
//
//   - the delivered message multiset equals the sent multiset
//     (delivery conserves messages — nothing dropped, duplicated or
//     rewritten);
//   - every message stays inside the sender's label-i cluster, the
//     submachine-locality discipline of paper Section 2 that all three
//     simulation schemes assume;
//   - a Superstep.Transpose declaration matches the traffic the
//     handlers actually produced: M1·M2 equals the cluster size, every
//     processor sends exactly one message, and each destination is the
//     declared rational permutation. The BT simulator routes declared
//     transposes with block riffles instead of sorting, so a wrong
//     declaration silently corrupts its guest state — this check
//     catches it at the source.
//
// Violations are recorded (capped) and, when an observer is attached,
// emitted as structured "violation" trace events through internal/obs.
//
// The split with the static side: dbsplint's stepshape analyzer proves
// at lint time whatever a Program literal makes constant — label
// ranges, the final barrier, power-of-two V, declared TransposeRoute
// factorizations — while this package checks the properties only an
// execution reveals: the traffic the handlers actually produced, its
// conservation through delivery, and its confinement to the clusters
// the labels promise.
package invariant

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/obs"
)

// maxViolations bounds how many violations a Checker records; a broken
// program can violate every superstep and the point is diagnosis, not
// an unbounded log.
const maxViolations = 64

// Violation is one detected invariant breach.
type Violation struct {
	// Step and Label identify the superstep.
	Step, Label int
	// Kind is "delivery", "cluster" or "transpose".
	Kind string
	// Msg describes the breach.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("superstep %d (label %d): %s: %s", v.Step, v.Label, v.Kind, v.Msg)
}

// Checker accumulates violations over a run. Pass its Inspect method
// to dbsp.RunInspected. A Checker is not safe for concurrent use; the
// engine calls Inspect sequentially between supersteps.
type Checker struct {
	v          int
	o          *obs.Observer
	truncated  int64
	violations []Violation
}

// NewChecker returns a checker for a v-processor machine. The observer
// may be nil; when set, every violation is also emitted as a trace
// event (Sim "invariant", Kind "violation").
func NewChecker(v int, o *obs.Observer) *Checker {
	return &Checker{v: v, o: o}
}

// Violations returns the recorded breaches in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// Truncated returns how many violations were detected beyond the
// recording cap.
func (c *Checker) Truncated() int64 { return c.truncated }

// Err returns nil when the run was clean and a summarising error
// otherwise.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s), first: %s",
		int64(len(c.violations))+c.truncated, c.violations[0])
}

// Inspect validates one executed superstep. It is the dbsp.RunInspected
// inspector.
func (c *Checker) Inspect(e dbsp.StepEvent) {
	c.checkDelivery(e)
	c.checkClusters(e)
	if e.Transpose != nil {
		c.checkTranspose(e)
	}
}

func (c *Checker) report(e dbsp.StepEvent, kind, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.o.Emit(obs.Event{Sim: "invariant", Kind: "violation",
		Step: e.Step, Label: e.Label, Phase: kind, Detail: msg})
	c.o.Counter("invariant.violations").Inc()
	if len(c.violations) >= maxViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{
		Step: e.Step, Label: e.Label, Kind: kind, Msg: msg})
}

// checkDelivery compares the sent and received multisets.
func (c *Checker) checkDelivery(e dbsp.StepEvent) {
	if len(e.Sent) != len(e.Received) {
		c.report(e, "delivery", "sent %d messages, delivered %d", len(e.Sent), len(e.Received))
		return
	}
	sent := sortedMessages(e.Sent)
	recv := sortedMessages(e.Received)
	for i := range sent {
		if sent[i] != recv[i] {
			c.report(e, "delivery",
				"delivered multiset differs from sent multiset (first mismatch: sent %+v, delivered %+v)",
				sent[i], recv[i])
			return
		}
	}
}

// checkClusters verifies the submachine-locality discipline: a label-i
// superstep's messages stay within i-clusters.
func (c *Checker) checkClusters(e dbsp.StepEvent) {
	for _, m := range e.Sent {
		if !dbsp.SameCluster(c.v, e.Label, m.Src, m.Dest) {
			c.report(e, "cluster",
				"message %d -> %d leaves the sender's %d-cluster (cluster size %d)",
				m.Src, m.Dest, e.Label, dbsp.ClusterSize(c.v, e.Label))
			return
		}
	}
}

// checkTranspose verifies a TransposeRoute declaration against the
// actual traffic — the runtime analogue of the engine's own check,
// kept independent so -check still works when the engine verification
// is bypassed.
func (c *Checker) checkTranspose(e dbsp.StepEvent) {
	tr := e.Transpose
	cs := dbsp.ClusterSize(c.v, e.Label)
	if tr.M1 < 1 || tr.M2 < 1 || tr.M1*tr.M2 != cs {
		c.report(e, "transpose",
			"declaration %dx%d does not match cluster size %d", tr.M1, tr.M2, cs)
		return
	}
	perProc := make([]int, c.v)
	for _, m := range e.Sent {
		if m.Src < 0 || m.Src >= c.v {
			c.report(e, "transpose", "message from out-of-range processor %d", m.Src)
			return
		}
		perProc[m.Src]++
		lo := (m.Src / cs) * cs
		if want := lo + tr.Dest(m.Src-lo); m.Dest != want {
			c.report(e, "transpose",
				"processor %d sent to %d, declared transpose destination is %d",
				m.Src, m.Dest, want)
			return
		}
	}
	for p, n := range perProc {
		if n != 1 {
			c.report(e, "transpose", "processor %d sent %d messages, want exactly 1", p, n)
			return
		}
	}
}

// sortedMessages returns a copy sorted by (Src, Dest, Payload), the
// canonical order for multiset comparison.
func sortedMessages(msgs []dbsp.MessageTrace) []dbsp.MessageTrace {
	out := append([]dbsp.MessageTrace(nil), msgs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dest != b.Dest {
			return a.Dest < b.Dest
		}
		return a.Payload < b.Payload
	})
	return out
}

// Run executes prog natively with the checker attached and returns the
// run outputs together with the checker. The run itself succeeding
// does not imply the invariants held — consult Checker.Err.
func Run(prog *dbsp.Program, g cost.Func, o *obs.Observer) (*dbsp.Result, *dbsp.Trace, *Checker, error) {
	c := NewChecker(prog.V, o)
	res, tr, err := dbsp.RunInspected(prog, g, o, c.Inspect)
	return res, tr, c, err
}

// RunSharded is Run on the sharded engine (dbsp.RunSharded): the same
// checker attached to the same StepEvent stream, produced by the
// sharded execution strategy. shards <= 0 selects the engine default.
func RunSharded(prog *dbsp.Program, g cost.Func, shards int, o *obs.Observer) (*dbsp.Result, *dbsp.Trace, *Checker, error) {
	c := NewChecker(prog.V, o)
	res, tr, err := dbsp.RunShardedInspected(prog, g, shards, o, c.Inspect)
	return res, tr, c, err
}
