package invariant

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/obs"
)

// transposeProg builds a v-processor program whose single
// communication superstep routes an m1×m2 transpose while declaring
// declM1×declM2 — matching pairs give a clean program, mismatched
// pairs a corrupted declaration.
func transposeProg(v, m1, m2, declM1, declM2 int) *dbsp.Program {
	return &dbsp.Program{
		Name:   "transpose-test",
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Init:   func(p int, data []dbsp.Word) { data[0] = dbsp.Word(p) },
		Steps: []dbsp.Superstep{
			{
				Label:     0,
				Transpose: &dbsp.TransposeRoute{M1: declM1, M2: declM2},
				Run: func(c *dbsp.Ctx) {
					j := c.ID()
					j1, j2 := j/m2, j%m2
					c.Send(j2*m1+j1, c.Load(0))
				},
			},
			{Label: 0, Run: func(c *dbsp.Ctx) {}},
		},
	}
}

func TestCleanTransposeRun(t *testing.T) {
	prog := transposeProg(8, 2, 4, 2, 4)
	ring := obs.NewRingSink(64)
	o := obs.New(obs.NewRegistry(), ring)

	res, tr, c, err := Run(prog, cost.Log{}, o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("clean program reported violations: %v", err)
	}
	if len(c.Violations()) != 0 {
		t.Errorf("violations = %v, want none", c.Violations())
	}
	if res == nil || tr == nil || tr.Messages() != 8 {
		t.Errorf("run outputs missing or wrong: %v messages", tr.Messages())
	}
	for _, e := range ring.Events() {
		if e.Sim == "invariant" {
			t.Errorf("unexpected invariant event: %+v", e)
		}
	}
}

// TestCorruptedTransposeCaught is the acceptance test for the runtime
// checker: a deliberately wrong TransposeRoute declaration (the
// handlers route 2×4 but the superstep declares 4×2) must surface as a
// "transpose" violation. The plain engine would abort the run on the
// same program; RunInspected bypasses that so the checker observes the
// corruption end-to-end.
func TestCorruptedTransposeCaught(t *testing.T) {
	prog := transposeProg(8, 2, 4, 4, 2)

	if _, err := dbsp.Run(prog, cost.Log{}); err == nil {
		t.Fatal("plain engine accepted the corrupted declaration")
	}

	ring := obs.NewRingSink(64)
	o := obs.New(obs.NewRegistry(), ring)
	_, _, c, err := Run(prog, cost.Log{}, o)
	if err != nil {
		t.Fatalf("inspected run aborted instead of recording the violation: %v", err)
	}
	if c.Err() == nil {
		t.Fatal("checker missed the corrupted TransposeRoute")
	}
	found := false
	for _, v := range c.Violations() {
		if v.Kind == "transpose" {
			found = true
			if !strings.Contains(v.Msg, "declared transpose destination") {
				t.Errorf("unexpected transpose message: %q", v.Msg)
			}
		}
	}
	if !found {
		t.Errorf("no transpose violation in %v", c.Violations())
	}

	var events int
	for _, e := range ring.Events() {
		if e.Sim == "invariant" && e.Kind == "violation" && e.Phase == "transpose" {
			events++
		}
	}
	if events == 0 {
		t.Error("no invariant/violation trace event emitted")
	}
}

func TestCorruptedTransposeShape(t *testing.T) {
	// Declaration whose dimensions do not multiply to the cluster size.
	prog := transposeProg(8, 2, 4, 3, 2)
	_, _, c, err := Run(prog, cost.Log{}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	vs := c.Violations()
	if len(vs) == 0 || vs[0].Kind != "transpose" ||
		!strings.Contains(vs[0].Msg, "cluster size") {
		t.Errorf("violations = %v, want a transpose shape violation", vs)
	}
}

func TestDeliveryMismatchDetected(t *testing.T) {
	c := NewChecker(4, nil)
	sent := []dbsp.MessageTrace{{Src: 0, Dest: 1, Payload: 7}}

	// Dropped message.
	c.Inspect(dbsp.StepEvent{Step: 0, Label: 0, Sent: sent})
	// Rewritten payload.
	c.Inspect(dbsp.StepEvent{Step: 1, Label: 0, Sent: sent,
		Received: []dbsp.MessageTrace{{Src: 0, Dest: 1, Payload: 8}}})

	vs := c.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
	for i, v := range vs {
		if v.Kind != "delivery" || v.Step != i {
			t.Errorf("violation %d = %+v, want delivery at step %d", i, v, i)
		}
	}
}

func TestClusterDisciplineDetected(t *testing.T) {
	c := NewChecker(4, nil)
	// v=4, label 1: clusters are {0,1} and {2,3}; 0 -> 3 crosses.
	msgs := []dbsp.MessageTrace{{Src: 0, Dest: 3, Payload: 1}}
	c.Inspect(dbsp.StepEvent{Step: 2, Label: 1, Sent: msgs, Received: msgs})

	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != "cluster" {
		t.Fatalf("violations = %v, want one cluster violation", vs)
	}
}

func TestViolationCap(t *testing.T) {
	c := NewChecker(4, nil)
	for i := 0; i < maxViolations+10; i++ {
		c.Inspect(dbsp.StepEvent{Step: i, Label: 0,
			Sent: []dbsp.MessageTrace{{Src: 0, Dest: 1, Payload: 1}}})
	}
	if len(c.Violations()) != maxViolations {
		t.Errorf("recorded %d violations, want cap %d", len(c.Violations()), maxViolations)
	}
	if c.Truncated() != 10 {
		t.Errorf("truncated = %d, want 10", c.Truncated())
	}
}
