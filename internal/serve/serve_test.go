package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// newTestServer starts a Service over catalog on an httptest listener.
func newTestServer(t *testing.T, catalog Catalog, o Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(catalog, o)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

// submit POSTs spec and decodes the JobStatus reply.
func submit(t *testing.T, base string, spec Spec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// readResults streams a job's full JSONL output from offset.
func readResults(t *testing.T, base, id string, offset int) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/results?offset=%d", base, id, offset))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("results: %s: %s", resp.Status, raw)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// maskJSONL zeroes the documented run-varying fields (start_ms,
// wall_ms) of every record, leaving all other bytes intact — the same
// normalization the golden tests apply.
func maskJSONL(t *testing.T, raw []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec sweep.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		rec.StartMS, rec.WallMS = 0, 0
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestServiceMatchesEngineBytes is the service-level determinism gate:
// for three different (quota, workers) settings the daemon's streamed
// JSONL must equal a direct engine run byte for byte, once the
// run-varying start_ms/wall_ms fields are masked — the same contract
// scripts/dbspd_smoke.sh checks against the real cmd/experiments
// binary.
func TestServiceMatchesEngineBytes(t *testing.T) {
	catalog := calcCatalog(t, 6)
	spec := Spec{IDs: []string{"T05", "T01", "T03"}, Seed: 42, Metrics: true}
	jobs, err := catalog.Resolve(spec.IDs)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := sweep.Run(context.Background(), jobs, sweep.Options{
		KeepGoing: true, Seed: spec.Seed, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := sweep.WriteJSONL(&direct, outcomes); err != nil {
		t.Fatal(err)
	}
	want := maskJSONL(t, direct.Bytes())

	settings := []Options{
		{TenantQuota: 1, MaxSweeps: 1, Workers: 1},
		{TenantQuota: 2, MaxSweeps: 2, Workers: 4},
		{TenantQuota: 4, MaxSweeps: 4, Workers: 16},
	}
	for _, o := range settings {
		name := fmt.Sprintf("quota%d_workers%d", o.TenantQuota, o.Workers)
		t.Run(name, func(t *testing.T) {
			_, ts := newTestServer(t, catalog, o)
			st := submit(t, ts.URL, spec)
			got := maskJSONL(t, readResults(t, ts.URL, st.ID, 0))
			if !bytes.Equal(got, want) {
				t.Errorf("service bytes differ from engine bytes\nservice:\n%s\nengine:\n%s", got, want)
			}
			// Resubmit: a cache hit whose stream is byte-identical to the
			// first response even unmasked.
			first := readResults(t, ts.URL, st.ID, 0)
			st2 := submit(t, ts.URL, spec)
			if !st2.Cached {
				t.Fatalf("resubmission not served from cache: %+v", st2)
			}
			if again := readResults(t, ts.URL, st2.ID, 0); !bytes.Equal(again, first) {
				t.Error("cached stream differs from original run's bytes")
			}
		})
	}
}

// TestServiceResumableStream pins the ?offset contract: a reader that
// stops after N lines resumes at offset N and the concatenation equals
// an uninterrupted read, byte for byte, even while the sweep is still
// running.
func TestServiceResumableStream(t *testing.T) {
	gateCat, gate := gateCatalog(t)
	fastJobs := make([]sweep.Job, 0, 4)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("F%d", i)
		fastJobs = append(fastJobs, sweep.Job{ID: id, Run: func(ctx context.Context, p sweep.Params) (any, error) {
			return p.Seed, nil
		}})
	}
	g, err := gateCat.Resolve([]string{"G"})
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := NewCatalog(append(fastJobs, g...))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, catalog, Options{Workers: 4})

	// Program: three fast jobs then the gated one. The fast prefix
	// streams while G blocks.
	st := submit(t, ts.URL, Spec{IDs: []string{"F0", "F1", "F2", "G"}, Seed: 9})

	// First reader: take the three live lines, then drop the connection.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/v1/jobs/"+st.ID+"/results", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prefix bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
		prefix.Write(sc.Bytes())
		prefix.WriteByte('\n')
	}
	cancel()
	resp.Body.Close()
	if got := strings.Count(prefix.String(), "\n"); got != 3 {
		t.Fatalf("live prefix has %d lines, want 3", got)
	}

	// The job is still running: its status shows the partial stream.
	var mid JobStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r2.Body).Decode(&mid); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if mid.Lines == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if mid.State != StateRunning || mid.Lines != 3 || mid.Total != 4 {
		t.Errorf("mid-sweep status = %s %d/%d, want running 3/4", mid.State, mid.Lines, mid.Total)
	}

	close(gate)
	tail := readResults(t, ts.URL, st.ID, 3)
	full := readResults(t, ts.URL, st.ID, 0)
	if got := append(prefix.Bytes(), tail...); !bytes.Equal(got, full) {
		t.Errorf("resumed read differs from uninterrupted read:\nresumed:\n%s\nfull:\n%s", got, full)
	}
}

func TestServiceHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, calcCatalog(t, 2), Options{})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   int
	}{
		{"bad json", "POST", "/api/v1/jobs", "{", http.StatusBadRequest},
		{"unknown field", "POST", "/api/v1/jobs", `{"nope":1}`, http.StatusBadRequest},
		{"no ids", "POST", "/api/v1/jobs", `{}`, http.StatusBadRequest},
		{"unknown program id", "POST", "/api/v1/jobs", `{"ids":["NOPE"]}`, http.StatusBadRequest},
		{"unknown job", "GET", "/api/v1/jobs/j999999", "", http.StatusNotFound},
		{"unknown job results", "GET", "/api/v1/jobs/j999999/results", "", http.StatusNotFound},
		{"unknown job cancel", "DELETE", "/api/v1/jobs/j999999", "", http.StatusNotFound},
		{"bad offset", "GET", "/api/v1/jobs/j999999/results?offset=x", "", http.StatusNotFound}, // unknown job wins
		// An unmatched method falls through to the obshttp catch-all,
		// which has no such path: 404, not 405.
		{"wrong method", "PUT", "/api/v1/jobs", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}

	// Bad offset on a real job.
	st := submit(t, ts.URL, Spec{IDs: []string{"T00"}})
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/results?offset=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative offset: status %d, want 400", resp.StatusCode)
	}
}

// TestServiceObservability checks the mounted obshttp surface: metrics
// exposition carries the scheduler families, /debug/progress carries
// the scheduler source (and a sweep source while one runs), /healthz
// answers.
func TestServiceObservability(t *testing.T) {
	gateCat, gate := gateCatalog(t)
	_, ts := newTestServer(t, gateCat, Options{})

	st := submit(t, ts.URL, Spec{IDs: []string{"G"}})
	waitHTTPState(t, ts.URL, st.ID, StateRunning)

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, raw)
		}
		return string(raw)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
	metrics := get("/metrics")
	for _, want := range []string{"serve_jobs_submitted", "serve_jobs_running", "serve_cache_misses", "cost_compile_cache_entries"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	progress := get("/debug/progress")
	var prog map[string]json.RawMessage
	if err := json.Unmarshal([]byte(progress), &prog); err != nil {
		t.Fatalf("/debug/progress not a JSON object: %v\n%s", err, progress)
	}
	if _, ok := prog["scheduler"]; !ok {
		t.Errorf("/debug/progress missing scheduler source: %s", progress)
	}
	if _, ok := prog["sweep:"+st.ID]; !ok {
		t.Errorf("/debug/progress missing running sweep source: %s", progress)
	}

	close(gate)
	waitHTTPState(t, ts.URL, st.ID, StateDone)
	progress = get("/debug/progress")
	if strings.Contains(progress, "sweep:"+st.ID) {
		t.Errorf("finished sweep still registered on /debug/progress: %s", progress)
	}

	// List shows the job in submission order.
	var list []JobStatus
	if err := json.Unmarshal([]byte(get("/api/v1/jobs")), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v, want the one submitted job", list)
	}
}

// waitHTTPState polls the status endpoint until the job reaches state.
func waitHTTPState(t *testing.T, base, id, state string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceCancelHTTP covers DELETE on a running job.
func TestServiceCancelHTTP(t *testing.T) {
	gateCat, gate := gateCatalog(t)
	defer close(gate)
	_, ts := newTestServer(t, gateCat, Options{})
	st := submit(t, ts.URL, Spec{IDs: []string{"G"}})
	waitHTTPState(t, ts.URL, st.ID, StateRunning)
	req, _ := http.NewRequest("DELETE", ts.URL+"/api/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	final := waitHTTPState(t, ts.URL, st.ID, StateCancelled)
	if final.Err == "" {
		t.Error("cancelled job has empty err")
	}
}
