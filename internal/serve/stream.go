package serve

import (
	"context"
	"sync"
)

// resultStream is one job's resumable JSONL result stream: an
// append-only list of encoded record lines plus a finished flag. The
// sweep's Options.Stream hook appends lines as jobs complete in
// submission order; any number of HTTP readers follow the stream
// concurrently, each resuming from a line offset, so a client that
// drops mid-sweep reconnects with ?offset=N and misses nothing. Lines
// are appended exactly once and never mutated, which is what makes a
// resumed read byte-identical to an uninterrupted one.
type resultStream struct {
	mu    sync.Mutex
	cond  *sync.Cond
	lines [][]byte // guarded by mu
	fin   bool     // guarded by mu
}

func newResultStream() *resultStream {
	st := &resultStream{}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// append adds one encoded record line (including its trailing newline)
// and wakes waiting readers.
func (st *resultStream) append(line []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lines = append(st.lines, line)
	st.cond.Broadcast()
}

// finish marks the stream complete; readers drain and return.
func (st *resultStream) finish() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fin = true
	st.cond.Broadcast()
}

// wake kicks waiting readers so they can re-check their context; wired
// to context.AfterFunc by wait.
func (st *resultStream) wake() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cond.Broadcast()
}

// wait blocks until the stream holds more than offset lines, the
// stream finishes, or ctx is done. It returns the lines from offset
// onward (nil on cancellation) and whether the stream is finished.
// Returned line slices are shared and must be treated as read-only.
func (st *resultStream) wait(ctx context.Context, offset int) (lines [][]byte, fin bool) {
	stop := context.AfterFunc(ctx, st.wake)
	defer stop()
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.lines) <= offset && !st.fin && ctx.Err() == nil {
		st.cond.Wait()
	}
	if len(st.lines) > offset {
		lines = st.lines[offset:]
	}
	return lines, st.fin
}

// snapshotLen returns the number of lines currently available.
func (st *resultStream) snapshotLen() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.lines)
}

// all returns every line of a finished stream (the cache-store path);
// for an unfinished stream it returns what is there so far.
func (st *resultStream) all() [][]byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lines[:len(st.lines):len(st.lines)]
}
