package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// calcCatalog returns a catalog of n fast deterministic jobs. Each job
// derives its value purely from its ID and seed, and observes one
// counter so Metrics-enabled runs carry metric bytes worth comparing.
func calcCatalog(t *testing.T, n int) Catalog {
	t.Helper()
	jobs := make([]sweep.Job, n)
	for i := range jobs {
		id := fmt.Sprintf("T%02d", i)
		jobs[i] = sweep.Job{ID: id, Run: func(ctx context.Context, p sweep.Params) (any, error) {
			sum := p.Seed
			for k := 0; k < 1000; k++ {
				sum = sum*6364136223846793005 + 1442695040888963407
			}
			p.Obs.Counter("test.work").Add(int64(sum % 97))
			return map[string]uint64{"sum": sum}, nil
		}}
	}
	c, err := NewCatalog(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// gateCatalog returns a catalog whose single job "G" blocks until the
// returned channel closes (or its context cancels).
func gateCatalog(t *testing.T) (Catalog, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	c, err := NewCatalog([]sweep.Job{{ID: "G", Run: func(ctx context.Context, p sweep.Params) (any, error) {
		select {
		case <-gate:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return c, gate
}

// waitState polls until job id reaches state (fatal after a deadline).
func waitState(t *testing.T, s *Scheduler, id, state string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == state {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSchedulerRunsAndCaches(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(calcCatalog(t, 4), Config{Obs: obs.New(reg, nil)})
	defer s.Close()

	spec := Spec{IDs: []string{"T02", "T00"}, Seed: 7}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"T00", "T02"}; strings.Join(st.Program, ",") != strings.Join(want, ",") {
		t.Errorf("program = %v, want catalog order %v", st.Program, want)
	}
	st = waitState(t, s, st.ID, StateDone)
	if st.Cached {
		t.Error("first run reported cached")
	}
	if st.Lines != 2 || st.Total != 2 {
		t.Errorf("lines/total = %d/%d, want 2/2", st.Lines, st.Total)
	}
	first, err := s.Stream(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Same program, different spelling: must be a cache hit, born done,
	// with byte-identical lines.
	st2, err := s.Submit(Spec{IDs: []string{"T00", "T02"}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("resubmission: cached=%v state=%s, want cached done", st2.Cached, st2.State)
	}
	second, err := s.Stream(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	a, b := first.all(), second.all()
	if len(a) != len(b) {
		t.Fatalf("cached stream has %d lines, original %d", len(b), len(a))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Errorf("line %d differs:\n  run:    %s  cached: %s", i, a[i], b[i])
		}
	}

	// A different seed is a different key: no hit.
	st3, err := s.Submit(Spec{IDs: []string{"T00", "T02"}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached {
		t.Error("different seed reported cached")
	}
	waitState(t, s, st3.ID, StateDone)

	snap := reg.Snapshot()
	counts := map[string]float64{}
	for _, smp := range snap {
		counts[smp.Name] = smp.Value
	}
	if counts["serve.cache.hits"] != 1 || counts["serve.cache.misses"] != 2 {
		t.Errorf("cache hits/misses = %v/%v, want 1/2",
			counts["serve.cache.hits"], counts["serve.cache.misses"])
	}
	if counts["serve.jobs.submitted"] != 3 || counts["serve.jobs.done"] != 3 {
		t.Errorf("submitted/done = %v/%v, want 3/3",
			counts["serve.jobs.submitted"], counts["serve.jobs.done"])
	}
}

func TestSchedulerNoCache(t *testing.T) {
	s := NewScheduler(calcCatalog(t, 2), Config{NoCache: true})
	defer s.Close()
	st, err := s.Submit(Spec{IDs: []string{"T00"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	st2, err := s.Submit(Spec{IDs: []string{"T00"}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Error("NoCache scheduler served from cache")
	}
	waitState(t, s, st2.ID, StateDone)
}

func TestSchedulerValidation(t *testing.T) {
	s := NewScheduler(calcCatalog(t, 2), Config{})
	defer s.Close()
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no ids", Spec{}, "no program IDs"},
		{"unknown id", Spec{IDs: []string{"NOPE"}}, "unknown program ID"},
		{"duplicate id", Spec{IDs: []string{"T00", "T00"}}, "duplicate program ID"},
		{"negative workers", Spec{IDs: []string{"T00"}, Workers: -1}, "workers"},
		{"huge tenant", Spec{IDs: []string{"T00"}, Tenant: strings.Repeat("x", 65)}, "tenant"},
		{"control tenant", Spec{IDs: []string{"T00"}, Tenant: "a\nb"}, "control"},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, err := s.Status("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Status(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
}

// TestSchedulerTenantQuota pins fairness: with one run slot per tenant
// and two global slots, a flood from tenant a cannot hold tenant b out.
func TestSchedulerTenantQuota(t *testing.T) {
	cat, gate := gateCatalog(t)
	s := NewScheduler(cat, Config{TenantQuota: 1, MaxSweeps: 2})
	defer s.Close()

	a1, _ := s.Submit(Spec{IDs: []string{"G"}, Tenant: "a", Seed: 1})
	a2, _ := s.Submit(Spec{IDs: []string{"G"}, Tenant: "a", Seed: 2})
	b1, _ := s.Submit(Spec{IDs: []string{"G"}, Tenant: "b", Seed: 3})

	waitState(t, s, a1.ID, StateRunning)
	waitState(t, s, b1.ID, StateRunning)
	if st, _ := s.Status(a2.ID); st.State != StateQueued {
		t.Errorf("tenant a's second job is %s, want queued behind its quota", st.State)
	}
	snap := s.Snapshot()
	if snap.Running != 2 || snap.Queued != 1 {
		t.Errorf("snapshot running/queued = %d/%d, want 2/1", snap.Running, snap.Queued)
	}
	if snap.RunningByTenant["a"] != 1 || snap.RunningByTenant["b"] != 1 {
		t.Errorf("running by tenant = %v, want a:1 b:1", snap.RunningByTenant)
	}

	close(gate)
	waitState(t, s, a1.ID, StateDone)
	waitState(t, s, a2.ID, StateDone)
	waitState(t, s, b1.ID, StateDone)
}

// TestSchedulerPriority pins the queue order: when the single slot
// frees, the highest-priority queued job runs first regardless of
// submission order.
func TestSchedulerPriority(t *testing.T) {
	cat, gate := gateCatalog(t)
	s := NewScheduler(cat, Config{TenantQuota: 1, MaxSweeps: 1})
	defer s.Close()

	hold, _ := s.Submit(Spec{IDs: []string{"G"}, Tenant: "hold", Seed: 1})
	waitState(t, s, hold.ID, StateRunning)
	low, _ := s.Submit(Spec{IDs: []string{"G"}, Tenant: "low", Seed: 2})
	high, _ := s.Submit(Spec{IDs: []string{"G"}, Tenant: "high", Priority: 5, Seed: 3})

	// Cancel the holder: its slot frees while both others wait, and the
	// pick must be the later-submitted, higher-priority job.
	if _, err := s.Cancel(hold.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, high.ID, StateRunning)
	if st, _ := s.Status(low.ID); st.State != StateQueued {
		t.Errorf("low-priority job is %s, want queued while high priority runs", st.State)
	}
	close(gate)
	waitState(t, s, high.ID, StateDone)
	waitState(t, s, low.ID, StateDone)
}

func TestSchedulerCancel(t *testing.T) {
	cat, gate := gateCatalog(t)
	defer close(gate)
	s := NewScheduler(cat, Config{TenantQuota: 1, MaxSweeps: 1})
	defer s.Close()

	running, _ := s.Submit(Spec{IDs: []string{"G"}, Seed: 1})
	waitState(t, s, running.ID, StateRunning)
	queued, _ := s.Submit(Spec{IDs: []string{"G"}, Seed: 2})

	// Cancel the queued job: it terminates without ever running.
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Errorf("queued job after cancel = %s, want cancelled", st.State)
	}
	stream, _ := s.Stream(queued.ID)
	if lines, fin := stream.wait(context.Background(), 0); !fin || len(lines) != 0 {
		t.Errorf("cancelled queued job stream: %d lines fin=%v, want 0 lines finished", len(lines), fin)
	}

	// Cancel the running job: the sweep context cancels, the job lands
	// cancelled, and its slot frees.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st = waitState(t, s, running.ID, StateCancelled)
	if st.Err == "" {
		t.Error("cancelled running job has empty err")
	}
	// Cancelling a terminal job is a no-op.
	if st2, err := s.Cancel(running.ID); err != nil || st2.State != StateCancelled {
		t.Errorf("second cancel: %v %s, want idempotent cancelled", err, st2.State)
	}

	// A cancelled run must not poison the cache: the same spec resubmits
	// as a miss and completes.
	cat2, gate2 := gateCatalog(t)
	close(gate2)
	s2 := NewScheduler(cat2, Config{})
	defer s2.Close()
	redo, _ := s2.Submit(Spec{IDs: []string{"G"}, Seed: 1})
	if redo.Cached {
		t.Error("fresh scheduler reported cached")
	}
	waitState(t, s2, redo.ID, StateDone)
}

func TestSchedulerFailedRunNotCached(t *testing.T) {
	c, err := NewCatalog([]sweep.Job{
		{ID: "OK", Run: func(ctx context.Context, p sweep.Params) (any, error) { return 1, nil }},
		{ID: "BAD", Run: func(ctx context.Context, p sweep.Params) (any, error) { return nil, errors.New("boom") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(c, Config{})
	defer s.Close()
	st, _ := s.Submit(Spec{IDs: []string{"OK", "BAD"}})
	st = waitState(t, s, st.ID, StateFailed)
	if !strings.Contains(st.Err, "BAD") || !strings.Contains(st.Err, "boom") {
		t.Errorf("failed job err = %q, want the failing experiment named", st.Err)
	}
	if st.Lines != 2 {
		t.Errorf("failed KeepGoing run streamed %d lines, want 2 (every outcome)", st.Lines)
	}
	st2, _ := s.Submit(Spec{IDs: []string{"OK", "BAD"}})
	if st2.Cached {
		t.Error("failed result was served from cache")
	}
	waitState(t, s, st2.ID, StateFailed)
}

func TestSchedulerClose(t *testing.T) {
	cat, gate := gateCatalog(t)
	defer close(gate)
	s := NewScheduler(cat, Config{TenantQuota: 1, MaxSweeps: 1})
	running, _ := s.Submit(Spec{IDs: []string{"G"}, Seed: 1})
	queued, _ := s.Submit(Spec{IDs: []string{"G"}, Seed: 2})
	waitState(t, s, running.ID, StateRunning)
	s.Close()
	if st, _ := s.Status(running.ID); st.State != StateCancelled {
		t.Errorf("running job after Close = %s, want cancelled", st.State)
	}
	if st, _ := s.Status(queued.ID); st.State != StateCancelled {
		t.Errorf("queued job after Close = %s, want cancelled", st.State)
	}
	if _, err := s.Submit(Spec{IDs: []string{"G"}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestCacheKeyNormalization(t *testing.T) {
	a := cacheKey([]string{"E01", "E03"}, Spec{Seed: 5})
	b := cacheKey([]string{"E01", "E03"}, Spec{Seed: 5})
	if a != b {
		t.Error("identical inputs produced different keys")
	}
	if a == cacheKey([]string{"E01", "E03"}, Spec{Seed: 6}) {
		t.Error("seed not in key")
	}
	if a == cacheKey([]string{"E01", "E03"}, Spec{Seed: 5, Quick: true}) {
		t.Error("quick not in key")
	}
	if a == cacheKey([]string{"E01", "E03"}, Spec{Seed: 5, Metrics: true}) {
		t.Error("metrics not in key")
	}
	if a == cacheKey([]string{"E01"}, Spec{Seed: 5}) {
		t.Error("program not in key")
	}
	// Concatenation ambiguity: ["ab","c"] vs ["a","bc"] must differ.
	if cacheKey([]string{"ab", "c"}, Spec{}) == cacheKey([]string{"a", "bc"}, Spec{}) {
		t.Error("ID boundaries not separated in the program hash")
	}
	// Scheduling-only fields stay out of the key by design.
	if a != cacheKey([]string{"E01", "E03"}, Spec{Seed: 5, Tenant: "x", Priority: 9, Workers: 16}) {
		t.Error("scheduling fields leaked into the cache key")
	}
}

func TestCatalogDuplicateID(t *testing.T) {
	_, err := NewCatalog([]sweep.Job{{ID: "A"}, {ID: "A"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("NewCatalog with duplicate IDs = %v, want duplicate error", err)
	}
}
