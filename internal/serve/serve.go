// Package serve is the simulation service behind cmd/dbspd: a
// long-running daemon that accepts program + parameter submissions
// over HTTP/JSON, schedules them fairly across tenants on the sweep
// engine, streams resumable JSONL results, and caches repeated work.
//
// The service leans entirely on the engine's determinism contract:
// because a sweep's output is byte-identical for any worker count and
// any completion order, the service can reorder queued work, vary
// per-sweep parallelism under load, and serve repeated submissions
// from cache — all without changing a single output byte. Submitting a
// program to dbspd yields exactly the bytes `cmd/experiments -jsonl`
// writes for the same selection, seed and flags (modulo the documented
// run-varying start_ms/wall_ms fields).
//
// # API
//
//	POST   /api/v1/jobs                   submit a Spec, returns JobStatus
//	GET    /api/v1/jobs                   list all jobs (submission order)
//	GET    /api/v1/jobs/{job}             one job's status
//	GET    /api/v1/jobs/{job}/results     follow the JSONL result stream
//	                                      (?offset=N resumes after line N)
//	DELETE /api/v1/jobs/{job}             cancel a queued or running job
//
// plus the standard observability surface mounted from
// internal/obs/obshttp: /metrics, /healthz, /debug/progress (all
// running sweeps plus the scheduler, via ProgressSet),
// /debug/costprofile and /debug/pprof.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/obshttp"
)

// Options configures a Service; the zero value works (see Config for
// the scheduler defaults).
type Options struct {
	// Workers, TenantQuota, MaxSweeps and NoCache are the scheduler
	// settings; see Config.
	Workers     int
	TenantQuota int
	MaxSweeps   int
	NoCache     bool
	// Registry backs /metrics and the scheduler's counters; a fresh one
	// is created when nil.
	Registry *obs.Registry
}

// Service wires a Scheduler to its HTTP surface.
type Service struct {
	sched *Scheduler
	reg   *obs.Registry
	pset  *obshttp.ProgressSet
	mux   *http.ServeMux
}

// New returns a Service over the catalog.
func New(catalog Catalog, o Options) *Service {
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	pset := obshttp.NewProgressSet()
	s := &Service{
		reg:  reg,
		pset: pset,
		sched: NewScheduler(catalog, Config{
			Workers:     o.Workers,
			TenantQuota: o.TenantQuota,
			MaxSweeps:   o.MaxSweeps,
			NoCache:     o.NoCache,
			Obs:         obs.New(reg, nil),
			Progress:    pset,
		}),
	}
	mux := http.NewServeMux()
	mux.Handle("/", obshttp.Handler(obshttp.Options{Registry: reg, Progress: pset.Snapshot}))
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{job}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{job}/results", s.handleResults)
	mux.HandleFunc("DELETE /api/v1/jobs/{job}", s.handleCancel)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler (API + observability).
func (s *Service) Handler() http.Handler { return s.mux }

// Scheduler exposes the underlying scheduler (tests, CLI shutdown).
func (s *Service) Scheduler() *Scheduler { return s.sched }

// Close shuts the scheduler down: queued jobs cancel, running sweeps
// stop, and Close returns once they have drained.
func (s *Service) Close() { s.sched.Close() }

// maxSpecBytes bounds a submission body; a Spec is a few short strings.
const maxSpecBytes = 1 << 20

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad submission: %v", err), http.StatusBadRequest)
		return
	}
	st, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Status(r.PathValue("job"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Cancel(r.PathValue("job"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults follows a job's JSONL stream: lines already present
// are sent immediately, later lines as their jobs finish, and the
// response ends when the sweep does. ?offset=N skips the first N
// lines, so a client that read N lines before disconnecting resumes
// byte-exactly where it left off.
func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	stream, err := s.sched.Stream(r.PathValue("job"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	offset := 0
	if q := r.URL.Query().Get("offset"); q != "" {
		offset, err = strconv.Atoi(q)
		if err != nil || offset < 0 {
			http.Error(w, fmt.Sprintf("bad offset %q", q), http.StatusBadRequest)
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	ctx := r.Context()
	for {
		lines, fin := stream.wait(ctx, offset)
		if ctx.Err() != nil {
			return
		}
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
		}
		offset += len(lines)
		if fl != nil {
			fl.Flush()
		}
		if fin {
			return
		}
	}
}

// writeJSON encodes v with a status code; API responses are always
// JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
