package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/sweep"
)

// Spec is one submission: a program (a set of catalog job IDs), its
// parameters, and the tenant/priority envelope the scheduler uses.
// Everything that influences the job's *bytes* — the resolved program,
// Quick, Seed, Metrics — goes into the result-cache key; everything
// that influences only *scheduling* — Tenant, Priority, Workers — is
// deliberately excluded, because the sweep engine's contract makes the
// output byte-identical for any schedule. A cache hit across different
// worker counts is therefore not an approximation; it is the
// determinism contract, serviced.
type Spec struct {
	// Tenant names the submitting tenant; empty means "default". The
	// scheduler enforces per-tenant concurrency quotas and fairness
	// across tenants.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders a tenant's own queue: higher runs first, ties go
	// to submission order.
	Priority int `json:"priority,omitempty"`
	// IDs is the program: the set of catalog jobs to run. Execution
	// order is the catalog's, not the request's, so [E03,E01] and
	// [E01,E03] are the same program (and share a cache entry).
	IDs []string `json:"ids"`
	// Quick trims parameter sweeps, exactly like the CLI flag.
	Quick bool `json:"quick,omitempty"`
	// Seed is the base seed; each job runs under sweep.SeedFor(Seed, id).
	Seed uint64 `json:"seed,omitempty"`
	// Metrics attaches each job's private registry snapshot to its
	// JSONL record, exactly like the CLI's -metrics.
	Metrics bool `json:"metrics,omitempty"`
	// Workers overrides the server's per-sweep worker pool for this
	// submission (0 = server default). It cannot change the result
	// bytes — that is the engine contract the service is built on.
	Workers int `json:"workers,omitempty"`
}

// maxTenantLen bounds tenant names; they key quota maps and appear in
// URLs and progress payloads.
const maxTenantLen = 64

// normalize applies defaults and validates the envelope fields.
func (s *Spec) normalize() error {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if len(s.Tenant) > maxTenantLen {
		return fmt.Errorf("serve: tenant name longer than %d bytes", maxTenantLen)
	}
	for _, r := range s.Tenant {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("serve: tenant name contains control characters")
		}
	}
	if len(s.IDs) == 0 {
		return fmt.Errorf("serve: submission has no program IDs")
	}
	if s.Workers < 0 {
		return fmt.Errorf("serve: workers must be >= 0, got %d", s.Workers)
	}
	return nil
}

// cacheKey derives the result-cache key of a resolved submission:
// (program hash, params, seed). ids must be the *resolved* program in
// catalog order, so every spelling of the same program maps to one
// entry.
func cacheKey(ids []string, spec Spec) string {
	h := fnv.New64a()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("g%016x|quick=%t|metrics=%t|seed=%d", h.Sum64(), spec.Quick, spec.Metrics, spec.Seed)
}

// Catalog resolves submitted program IDs to runnable sweep jobs. The
// production catalog wraps the experiment grid; tests substitute fast
// synthetic jobs.
type Catalog interface {
	// Resolve maps the requested ID set to jobs in the catalog's
	// canonical order. Unknown or duplicate IDs are an error; the
	// returned jobs preserve catalog order so service output matches
	// the CLI's for the same selection.
	Resolve(ids []string) ([]sweep.Job, error)
}

// jobCatalog is the Catalog over a fixed job list.
type jobCatalog struct {
	jobs  []sweep.Job
	index map[string]int
}

// NewCatalog returns a Catalog over jobs, keyed and ordered by the
// list itself (the same shape cmd/experiments selects from). Job IDs
// must be unique; Run would reject duplicates anyway, so the catalog
// refuses them up front.
func NewCatalog(jobs []sweep.Job) (Catalog, error) {
	c := jobCatalog{jobs: jobs, index: make(map[string]int, len(jobs))}
	for i, j := range jobs {
		if _, dup := c.index[j.ID]; dup {
			return nil, fmt.Errorf("serve: catalog has duplicate job ID %q", j.ID)
		}
		c.index[j.ID] = i
	}
	return c, nil
}

func (c jobCatalog) Resolve(ids []string) ([]sweep.Job, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if want[id] {
			return nil, fmt.Errorf("serve: duplicate program ID %q in submission", id)
		}
		if _, ok := c.index[id]; !ok {
			return nil, fmt.Errorf("serve: unknown program ID %q (catalog has %s)", id, c.summary())
		}
		want[id] = true
	}
	out := make([]sweep.Job, 0, len(ids))
	for _, j := range c.jobs {
		if want[j.ID] {
			out = append(out, j)
		}
	}
	return out, nil
}

// summary lists the catalog IDs for unknown-ID errors, truncated so a
// big catalog cannot bloat an error string.
func (c jobCatalog) summary() string {
	ids := make([]string, 0, len(c.index))
	for id := range c.index {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) > 8 {
		ids = append(ids[:8], "...")
	}
	return strings.Join(ids, ",")
}
