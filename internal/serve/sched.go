package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/sweep"
)

// Job states. A job moves queued → running → done/failed/cancelled;
// cache hits are born done.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("serve: no such job")

// ErrClosed reports a submission to a shut-down scheduler.
var ErrClosed = errors.New("serve: scheduler is shut down")

// Config tunes the scheduler. The zero value is usable: one running
// sweep per tenant, two sweeps globally, engine-default workers,
// caching on.
type Config struct {
	// Workers is the per-sweep worker pool default (0 = engine default,
	// GOMAXPROCS); a Spec.Workers override wins when set.
	Workers int
	// TenantQuota caps concurrently running sweeps per tenant (<= 0
	// means 1). Queued work beyond the quota waits, whatever its
	// priority, so one tenant cannot starve the rest.
	TenantQuota int
	// MaxSweeps caps concurrently running sweeps across all tenants
	// (<= 0 means 2).
	MaxSweeps int
	// NoCache disables the repeated-submission result cache.
	NoCache bool
	// Obs receives the scheduler's counters and gauges plus every
	// sweep's engine metrics; its registry is what /metrics serves. May
	// be nil.
	Obs *obs.Observer
	// Progress, when non-nil, receives one registered source per
	// running sweep plus the scheduler's own counts, for the service's
	// /debug/progress endpoint.
	Progress *obshttp.ProgressSet
}

// JobStatus is the JSON form of one submission's state.
type JobStatus struct {
	// ID is the scheduler-assigned job ID ("j000001", submission order).
	ID string `json:"id"`
	// Tenant and Priority echo the submission envelope.
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	// Program is the resolved ID set in catalog order — the run order,
	// whatever order the submission spelled.
	Program []string `json:"program"`
	// State is queued, running, done, failed or cancelled.
	State string `json:"state"`
	// Cached reports that the result was served from the cache without
	// running anything.
	Cached bool `json:"cached,omitempty"`
	// Err is the failure cause for failed/cancelled jobs.
	Err string `json:"err,omitempty"`
	// Lines is the number of JSONL result lines available now; Total is
	// the number the finished stream will hold.
	Lines int `json:"lines"`
	Total int `json:"total"`
}

// SchedSnapshot is the scheduler's /debug/progress payload.
type SchedSnapshot struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// RunningByTenant maps tenant → currently running sweeps (JSON maps
	// encode in sorted key order, so the payload is deterministic).
	RunningByTenant map[string]int `json:"running_by_tenant,omitempty"`
}

// job is one submission's scheduler record. The immutable fields are
// set at submission; the mutable state below the marker is read and
// written only with the owning Scheduler's mu held (the stream has its
// own lock and is safe to touch from anywhere).
type job struct {
	id     string
	spec   Spec
	ids    []string // resolved program, catalog order
	key    string
	seq    int
	sjobs  []sweep.Job
	stream *resultStream

	// mutable under the owning Scheduler's mu
	state     string
	cached    bool
	errMsg    string
	cancelled bool               // cancellation requested while running
	cancel    context.CancelFunc // non-nil while running
	runCtx    context.Context    // non-nil while running
	progress  *sweep.Progress    // non-nil while running
}

// Scheduler is the fair multi-tenant queue in front of the sweep
// engine: submissions enter per-tenant queues, dispatch respects the
// global and per-tenant concurrency caps, and equal-priority work is
// served in submission order with ties broken toward the tenant
// running the least. Completed results are cached by (program hash,
// params, seed) — legitimate because the engine's determinism contract
// makes results schedule-independent, so a hit is byte-identical to a
// re-run under any quota or worker setting.
type Scheduler struct {
	catalog Catalog
	cfg     Config
	pset    *obshttp.ProgressSet

	// metric handles, resolved once (all nil-safe via obs.Observer)
	cSubmitted, cDone, cFailed, cCancelled *obs.Counter
	cCacheHit, cCacheMiss                  *obs.Counter
	gQueued, gRunning                      *obs.Gauge
	gCostHits, gCostMisses, gCostEntries   *obs.Gauge

	wg sync.WaitGroup // running runSweep goroutines

	mu            sync.Mutex
	closed        bool                // guarded by mu
	seq           int                 // guarded by mu
	jobs          map[string]*job     // guarded by mu
	order         []*job              // guarded by mu
	queued        int                 // guarded by mu
	running       int                 // guarded by mu
	done          int                 // guarded by mu
	failed        int                 // guarded by mu
	cancelled     int                 // guarded by mu
	tenantRunning map[string]int      // guarded by mu
	cache         map[string][][]byte // guarded by mu
}

// NewScheduler returns a scheduler over the catalog. It registers its
// own counts as the "scheduler" source of cfg.Progress when set.
func NewScheduler(catalog Catalog, cfg Config) *Scheduler {
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = 1
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 2
	}
	o := cfg.Obs
	s := &Scheduler{
		catalog: catalog,
		cfg:     cfg,
		pset:    cfg.Progress,

		cSubmitted: o.Counter("serve.jobs.submitted"),
		cDone:      o.Counter("serve.jobs.done"),
		cFailed:    o.Counter("serve.jobs.failed"),
		cCancelled: o.Counter("serve.jobs.cancelled"),
		cCacheHit:  o.Counter("serve.cache.hits"),
		cCacheMiss: o.Counter("serve.cache.misses"),
		gQueued:    o.Gauge("serve.jobs.queued"),
		gRunning:   o.Gauge("serve.jobs.running"),

		gCostHits:    o.Gauge("cost.compile.cache.hits"),
		gCostMisses:  o.Gauge("cost.compile.cache.misses"),
		gCostEntries: o.Gauge("cost.compile.cache.entries"),

		jobs:          make(map[string]*job),
		tenantRunning: make(map[string]int),
		cache:         make(map[string][][]byte),
	}
	if s.pset != nil {
		s.pset.Register("scheduler", func() any { return s.Snapshot() })
	}
	return s
}

// Submit validates and enqueues one submission, returning its status
// (already done when the cache had the result). The returned status is
// a consistent snapshot; poll Status for updates.
func (s *Scheduler) Submit(spec Spec) (JobStatus, error) {
	if err := spec.normalize(); err != nil {
		return JobStatus{}, err
	}
	sjobs, err := s.catalog.Resolve(spec.IDs)
	if err != nil {
		return JobStatus{}, err
	}
	ids := make([]string, len(sjobs))
	for i := range sjobs {
		ids[i] = sjobs[i].ID
	}
	key := cacheKey(ids, spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}
	s.seq++
	j := &job{
		id:     fmt.Sprintf("j%06d", s.seq),
		spec:   spec,
		ids:    ids,
		key:    key,
		seq:    s.seq,
		sjobs:  sjobs,
		stream: newResultStream(),
		state:  StateQueued,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.cSubmitted.Inc()
	if lines, hit := s.cache[key]; hit && !s.cfg.NoCache {
		s.cCacheHit.Inc()
		j.state, j.cached = StateDone, true
		for _, ln := range lines {
			j.stream.append(ln)
		}
		j.stream.finish()
		s.done++
		s.cDone.Inc()
		s.publishLocked()
		return s.statusLocked(j), nil
	}
	if !s.cfg.NoCache {
		s.cCacheMiss.Inc()
	}
	s.queued++
	s.dispatchLocked()
	return s.statusLocked(j), nil
}

// Status returns the current state of job id.
func (s *Scheduler) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s.statusLocked(j), nil
}

// List returns every job's status in submission order.
func (s *Scheduler) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, j := range s.order {
		out[i] = s.statusLocked(j)
	}
	return out
}

// Stream returns job id's result stream for followers.
func (s *Scheduler) Stream(id string) (*resultStream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.stream, nil
}

// Cancel cancels job id: a queued job is dropped before it runs, a
// running job has its sweep context cancelled (remaining experiments
// skip; the job lands in state cancelled). Terminal jobs are left
// untouched. Cancel is idempotent.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.cancelLocked(j)
	return s.statusLocked(j), nil
}

// cancelLocked applies a cancellation request to j; callers hold s.mu.
func (s *Scheduler) cancelLocked(j *job) {
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
		j.stream.finish()
		s.queued--
		s.cancelled++
		s.cCancelled.Inc()
		s.publishLocked()
		s.dispatchLocked()
	case StateRunning:
		if !j.cancelled {
			j.cancelled = true
			j.cancel()
		}
	}
}

// Close stops the scheduler: queued jobs are cancelled, running sweeps
// have their contexts cancelled, further submissions fail with
// ErrClosed, and Close returns once every sweep goroutine has drained.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, j := range s.order {
			s.cancelLocked(j)
		}
		if s.pset != nil {
			s.pset.Unregister("scheduler")
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Snapshot returns the scheduler's live counts.
func (s *Scheduler) Snapshot() SchedSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SchedSnapshot{
		Queued:    s.queued,
		Running:   s.running,
		Done:      s.done,
		Failed:    s.failed,
		Cancelled: s.cancelled,
	}
	if len(s.tenantRunning) > 0 {
		snap.RunningByTenant = make(map[string]int, len(s.tenantRunning))
		for t, n := range s.tenantRunning {
			snap.RunningByTenant[t] = n
		}
	}
	return snap
}

// statusLocked builds j's JobStatus; callers hold s.mu.
func (s *Scheduler) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID:       j.id,
		Tenant:   j.spec.Tenant,
		Priority: j.spec.Priority,
		Program:  j.ids,
		State:    j.state,
		Cached:   j.cached,
		Err:      j.errMsg,
		Lines:    j.stream.snapshotLen(),
		Total:    len(j.ids),
	}
}

// publishLocked mirrors the live counts into the gauges; callers hold
// s.mu.
func (s *Scheduler) publishLocked() {
	s.gQueued.Set(int64(s.queued))
	s.gRunning.Set(int64(s.running))
	cs := cost.CompileCache().Stats()
	s.gCostHits.Set(cs.Hits)
	s.gCostMisses.Set(cs.Misses)
	s.gCostEntries.Set(cs.Entries)
}

// pickLocked chooses the next job to dispatch, or nil when the caps
// leave nothing eligible: highest Priority first, then the tenant with
// the fewest running sweeps, then submission order. Callers hold s.mu.
func (s *Scheduler) pickLocked() *job {
	if s.running >= s.cfg.MaxSweeps {
		return nil
	}
	var best *job
	for _, j := range s.order {
		if j.state != StateQueued || s.tenantRunning[j.spec.Tenant] >= s.cfg.TenantQuota {
			continue
		}
		if best == nil {
			best = j
			continue
		}
		switch {
		case j.spec.Priority > best.spec.Priority:
			best = j
		case j.spec.Priority == best.spec.Priority &&
			s.tenantRunning[j.spec.Tenant] < s.tenantRunning[best.spec.Tenant]:
			best = j
		}
	}
	return best
}

// dispatchLocked starts every job the caps allow. All scheduler-state
// writes happen before any sweep goroutine spawns; callers hold s.mu.
func (s *Scheduler) dispatchLocked() {
	if s.closed {
		return
	}
	var starts []*job
	for {
		j := s.pickLocked()
		if j == nil {
			break
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.state = StateRunning
		j.cancel = cancel
		j.progress = sweep.NewProgress()
		j.runCtx = ctx
		s.queued--
		s.running++
		s.tenantRunning[j.spec.Tenant]++
		starts = append(starts, j)
	}
	if len(starts) == 0 {
		return
	}
	s.publishLocked()
	for _, j := range starts {
		if s.pset != nil {
			p := j.progress
			s.pset.Register("sweep:"+j.id, func() any { return p.Snapshot() })
		}
		s.wg.Add(1)
		go s.runSweep(j)
	}
}

// runSweep runs j's sweep to completion; one goroutine per running
// job.
func (s *Scheduler) runSweep(j *job) {
	defer s.wg.Done()
	workers := j.spec.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	_, err := sweep.Run(j.runCtx, j.sjobs, sweep.Options{
		Workers:   workers,
		KeepGoing: true,
		Quick:     j.spec.Quick,
		Seed:      j.spec.Seed,
		Metrics:   j.spec.Metrics,
		Obs:       s.cfg.Obs,
		Progress:  j.progress,
		Stream: func(o sweep.Outcome) {
			j.stream.append(encodeLine(o))
		},
	})
	s.finishJob(j, err)
}

// encodeLine renders one outcome as its JSONL line, byte-identical to
// sweep.WriteJSONL's output for the same outcome. A value that fails
// to encode degrades to the partial record with the encoding error in
// its err field rather than losing the line.
func encodeLine(o sweep.Outcome) []byte {
	rec, err := sweep.RecordOf(o)
	if err != nil && rec.Err == "" {
		rec.Err = err.Error()
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		raw, _ = json.Marshal(sweep.Record{ID: o.ID, Seq: o.Seq, Status: string(o.Status), Err: err.Error()})
	}
	return append(raw, '\n')
}

// finishJob lands j's terminal state, feeds the cache, and dispatches
// whatever the freed slots allow.
func (s *Scheduler) finishJob(j *job, runErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel() // release the context's resources; idempotent
	s.running--
	s.tenantRunning[j.spec.Tenant]--
	if s.tenantRunning[j.spec.Tenant] == 0 {
		delete(s.tenantRunning, j.spec.Tenant)
	}
	switch {
	case j.cancelled:
		j.state = StateCancelled
		if runErr != nil {
			j.errMsg = runErr.Error()
		} else {
			j.errMsg = "cancelled"
		}
		s.cancelled++
		s.cCancelled.Inc()
	case runErr != nil:
		j.state = StateFailed
		j.errMsg = runErr.Error()
		s.failed++
		s.cFailed.Inc()
	default:
		j.state = StateDone
		if !s.cfg.NoCache {
			s.cache[j.key] = j.stream.all()
		}
		s.done++
		s.cDone.Inc()
	}
	j.stream.finish()
	if s.pset != nil {
		s.pset.Unregister("sweep:" + j.id)
	}
	j.progress = nil
	s.publishLocked()
	s.dispatchLocked()
}
