package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// TestLoadCacheHitLatencyFlat is the load gate from the service
// design: with every run slot saturated by in-flight sweeps, 1000
// concurrent cache-hit submissions must all return without queueing —
// their p99 latency stays in the same regime as their p50 instead of
// degrading toward the sweep wall time a queued miss would pay. Run at
// three (quota, workers) settings to show the flatness is a property
// of the cache path, not of one scheduler tuning.
func TestLoadCacheHitLatencyFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const submissions = 1000

	settings := []Config{
		{TenantQuota: 1, MaxSweeps: 1, Workers: 1},
		{TenantQuota: 2, MaxSweeps: 2, Workers: 4},
		{TenantQuota: 4, MaxSweeps: 4, Workers: 16},
	}
	for _, cfg := range settings {
		name := fmt.Sprintf("quota%d_sweeps%d_workers%d", cfg.TenantQuota, cfg.MaxSweeps, cfg.Workers)
		t.Run(name, func(t *testing.T) {
			gate := make(chan struct{})
			catalog, err := NewCatalog([]sweep.Job{
				{ID: "FAST", Run: func(ctx context.Context, p sweep.Params) (any, error) {
					return p.Seed, nil
				}},
				{ID: "SLOW", Run: func(ctx context.Context, p sweep.Params) (any, error) {
					select {
					case <-gate:
						return "ok", nil
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			cfg.Obs = obs.New(reg, nil)
			s := NewScheduler(catalog, cfg)
			defer s.Close()

			// Warm the cache with the spec the burst will hit.
			hit := Spec{IDs: []string{"FAST"}, Seed: 7}
			warm, err := s.Submit(hit)
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, s, warm.ID, StateDone)

			// Saturate every run slot with gated sweeps from distinct
			// tenants, so anything that needs a slot waits indefinitely.
			for i := 0; i < cfg.MaxSweeps; i++ {
				blk, err := s.Submit(Spec{
					IDs: []string{"SLOW"}, Seed: uint64(100 + i),
					Tenant: fmt.Sprintf("blocker%d", i),
				})
				if err != nil {
					t.Fatal(err)
				}
				waitState(t, s, blk.ID, StateRunning)
			}
			// One queued miss proves the slots really are saturated.
			miss, err := s.Submit(Spec{IDs: []string{"SLOW"}, Seed: 999, Tenant: "blocker0"})
			if err != nil {
				t.Fatal(err)
			}

			hitsBefore := counterValue(t, reg, "serve.cache.hits")

			lat := make([]time.Duration, submissions)
			var wg sync.WaitGroup
			var start sync.WaitGroup
			start.Add(1)
			for i := 0; i < submissions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					start.Wait()
					t0 := time.Now()
					st, err := s.Submit(hit)
					lat[i] = time.Since(t0)
					if err != nil {
						t.Errorf("submission %d: %v", i, err)
						return
					}
					if !st.Cached || st.State != StateDone {
						t.Errorf("submission %d: cached=%v state=%s, want cached done", i, st.Cached, st.State)
					}
				}(i)
			}
			start.Done()
			wg.Wait()

			if st, _ := s.Status(miss.ID); st.State != StateQueued {
				t.Fatalf("canary miss is %s during the burst, want queued (slots were not saturated)", st.State)
			}
			if got := counterValue(t, reg, "serve.cache.hits") - hitsBefore; got != submissions {
				t.Errorf("cache hits during burst = %d, want %d", got, submissions)
			}

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p50 := lat[submissions/2]
			p99 := lat[submissions*99/100]
			t.Logf("%s: cache-hit latency p50=%v p99=%v max=%v", name, p50, p99, lat[submissions-1])
			// Flatness: p99 stays within the lock-contention regime of
			// p50, far from the unbounded wait a queued miss pays. The
			// absolute ceiling keeps the bound meaningful when p50 is
			// sub-microsecond.
			if limit := 20*p50 + 50*time.Millisecond; p99 > limit {
				t.Errorf("cache-hit p99 %v not flat vs p50 %v (limit %v): hits queued behind sweeps", p99, p50, limit)
			}

			close(gate)
			waitState(t, s, miss.ID, StateDone)
		})
	}
}

// counterValue reads one counter from a registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Value)
		}
	}
	return 0
}
