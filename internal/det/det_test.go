package det

import (
	"cmp"
	"reflect"
	"testing"
)

func TestSortedKeysStrings(t *testing.T) {
	m := map[string]int{"c": 3, "a": 1, "b": 2}
	want := []string{"a", "b", "c"}
	for i := 0; i < 8; i++ { // repeated calls see different map orders
		if got := SortedKeys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestSortedKeysInts(t *testing.T) {
	m := map[int]string{5: "e", -1: "a", 3: "c"}
	if got, want := SortedKeys(m), []int{-1, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestSortedKeysEmptyAndNil(t *testing.T) {
	if got := SortedKeys(map[string]int{}); got == nil || len(got) != 0 {
		t.Fatalf("SortedKeys(empty) = %v, want non-nil empty", got)
	}
	var m map[string]int
	if got := SortedKeys(m); got == nil || len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want non-nil empty", got)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type pos struct{ x, y int }
	m := map[pos]bool{{2, 1}: true, {1, 9}: true, {1, 2}: true}
	got := SortedKeysFunc(m, func(a, b pos) int {
		if c := cmp.Compare(a.x, b.x); c != 0 {
			return c
		}
		return cmp.Compare(a.y, b.y)
	})
	want := []pos{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}

func TestSortedKeysFuncDescending(t *testing.T) {
	m := map[int]int{1: 0, 2: 0, 3: 0}
	got := SortedKeysFunc(m, func(a, b int) int { return cmp.Compare(b, a) })
	if want := []int{3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc desc = %v, want %v", got, want)
	}
}
