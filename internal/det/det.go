// Package det holds the tiny deterministic-iteration helpers the
// byte-identical output contract leans on everywhere a Go map meets an
// emitter: collect the keys, sort them, iterate the sorted slice. The
// helpers centralise the collect-then-sort idiom so call sites read as
// one line and the detflow/detseed analyzers see the sanctioned shape
// in a single audited place.
package det

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order — the canonical
// deterministic iteration order for emitting map contents. A nil or
// empty map yields an empty, non-nil slice so callers can range
// unconditionally.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedKeysFunc returns m's keys ordered by the given comparison
// function, for key types without a natural order (or orders other
// than ascending). cmp follows the slices.SortFunc contract: negative
// when a sorts before b. The sort is stable in effect because map keys
// are unique.
func SortedKeysFunc[K comparable, V any](m map[K]V, cmp func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cmp)
	return keys
}
