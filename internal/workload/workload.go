// Package workload provides deterministic input generators for the
// experiments: keys, vectors, matrices and permutations derived from a
// seed via SplitMix64, so every run of the benchmark harness sees the
// same data without depending on math/rand ordering guarantees.
package workload

import "fmt"

// Gen is a deterministic value generator.
type Gen struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Gen { return &Gen{state: seed} }

// next advances the SplitMix64 state.
func (g *Gen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random int64.
func (g *Gen) Int63() int64 { return int64(g.next() >> 1) }

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (g *Gen) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Intn(%d)", n))
	}
	return int(g.next() % uint64(n))
}

// Keys returns n pseudo-random keys in [0, bound).
func Keys(seed uint64, n int, bound int64) []int64 {
	g := New(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Int63() % bound
	}
	return out
}

// KeyFunc returns a function form of Keys for program Init hooks.
func KeyFunc(seed uint64, n int, bound int64) func(p int) int64 {
	keys := Keys(seed, n, bound)
	return func(p int) int64 { return keys[p] }
}

// Permutation returns a pseudo-random permutation of [0, n)
// (Fisher-Yates under the deterministic generator).
func Permutation(seed uint64, n int) []int {
	g := New(seed)
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Matrix returns a side×side matrix of small integers in [-bound, bound]
// as a function of (row, col), suitable for exact product verification.
func Matrix(seed uint64, side int, bound int64) func(r, c int) int64 {
	g := New(seed)
	vals := make([]int64, side*side)
	for i := range vals {
		vals[i] = g.Int63()%(2*bound+1) - bound
	}
	return func(r, c int) int64 { return vals[r*side+c] }
}
