package workload

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := Keys(42, 100, 1000)
	b := Keys(42, 100, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Keys not deterministic")
		}
	}
	if Keys(42, 10, 1000)[0] == Keys(43, 10, 1000)[0] &&
		Keys(42, 10, 1000)[1] == Keys(43, 10, 1000)[1] {
		t.Error("different seeds produced identical prefixes")
	}
}

func TestKeysInBounds(t *testing.T) {
	for _, k := range Keys(7, 1000, 50) {
		if k < 0 || k >= 50 {
			t.Fatalf("key %d out of [0,50)", k)
		}
	}
}

func TestKeyFuncMatchesKeys(t *testing.T) {
	keys := Keys(9, 32, 100)
	fn := KeyFunc(9, 32, 100)
	for p, k := range keys {
		if fn(p) != k {
			t.Fatalf("KeyFunc(%d) = %d, want %d", p, fn(p), k)
		}
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	prop := func(seed uint16, rawN uint8) bool {
		n := int(rawN%64) + 1
		pi := Permutation(uint64(seed), n)
		seen := make([]bool, n)
		for _, x := range pi {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPermutationNotIdentity(t *testing.T) {
	pi := Permutation(5, 64)
	same := 0
	for i, x := range pi {
		if i == x {
			same++
		}
	}
	if same > 16 {
		t.Errorf("permutation suspiciously close to identity: %d fixed points", same)
	}
}

func TestMatrixBounds(t *testing.T) {
	m := Matrix(3, 8, 10)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if v := m(r, c); v < -10 || v > 10 {
				t.Fatalf("matrix value %d out of [-10,10]", v)
			}
		}
	}
	if m(0, 0) != Matrix(3, 8, 10)(0, 0) {
		t.Error("Matrix not deterministic")
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}
