// Package hmm implements the Hierarchical Memory Model of Aggarwal,
// Alpern, Chandra and Snir (paper reference [1]): a random access
// machine where touching memory address x costs f(x) time for a
// nondecreasing access function f. The machine is mechanical — every
// Read/Write moves real words in a real array and charges the exact
// model cost — so the simulation theorems of the paper can be validated
// against observed cost rather than against re-derived formulas.
//
// Cost convention (paper Section 2): an n-ary operation touching cells
// x1..xn takes 1 + Σ f(xi). We charge f(x) per word access plus 1 per
// explicit compute operation (ChargeOps), which is within a constant
// factor of the model for bounded-arity operations.
package hmm

import (
	"fmt"
	"math/bits"

	"repro/internal/cost"
)

// Word is the unit of HMM storage.
type Word = int64

// Op identifies a memory operation kind for trace hooks.
type Op uint8

// Operation kinds reported to trace hooks.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Stats aggregates the cost accounting of a Machine.
type Stats struct {
	// Cost is the total charged model time: Σ f(x) over accesses plus
	// compute operations.
	Cost float64
	// Reads and Writes count word accesses by kind.
	Reads, Writes int64
	// ComputeOps counts unit-time compute operations charged with
	// ChargeOps.
	ComputeOps int64
	// MaxAddr is the highest address touched so far (-1 if none).
	MaxAddr int64
	// Depth[k] counts word accesses whose address has bit-length k
	// (address 0 in bucket 0): the touch-depth profile showing how much
	// of the traffic stays near the top of memory. bits.Len64 reaches 64,
	// so 65 buckets cover every possible address without overflow.
	Depth [DepthBuckets]int64
}

// DepthBuckets is the size of the Depth profile: one bucket per
// possible bit-length of an address (bits.Len64 ranges over [0, 64]).
const DepthBuckets = 65

// DepthByBounds rebuckets the touch-depth profile by explicit level
// capacities (e.g. a cost.Table's Bounds): the result has
// len(bounds)+1 entries, the last counting accesses beyond every bound.
// A power-of-two bucket straddling a boundary splits its count
// proportionally by the boundary position (with cumulative rounding, so
// the split parts always sum to the bucket's count); the profile only
// records bucket totals, so the split assumes accesses are spread
// evenly within a bucket.
func (s Stats) DepthByBounds(bounds []int64) []int64 {
	out := make([]int64, len(bounds)+1)
	for k, n := range s.Depth {
		if n == 0 {
			continue
		}
		// Addresses in bucket k lie in [lo, lo+span) (bucket 0 = {0}).
		lo, span := int64(0), int64(1)
		if k > 0 {
			if k > 63 {
				// Bit-length 64 exceeds every int64 bound: last level.
				out[len(bounds)] += n
				continue
			}
			lo = int64(1) << uint(k-1)
			span = lo
		}
		// Walk the levels, intersecting each with the bucket interval and
		// assigning the proportional share of n. Shares are cumulative
		// (share_i = floor(n·covered/span) minus what earlier levels got)
		// so they sum to exactly n.
		covered, assigned := int64(0), int64(0)
		for i := 0; i <= len(bounds); i++ {
			segHi := lo + span
			if i < len(bounds) && bounds[i] < segHi {
				segHi = bounds[i]
			}
			if segHi > lo+covered {
				covered = segHi - lo
			}
			// cum = n·covered/span without int64 overflow (covered <= span,
			// so the quotient is at most n and Div64's hi < span holds).
			mh, ml := bits.Mul64(uint64(n), uint64(covered))
			q, _ := bits.Div64(mh, ml, uint64(span))
			cum := int64(q)
			out[i] += cum - assigned
			assigned = cum
		}
	}
	return out
}

// Accesses returns Reads + Writes.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Machine is an f(x)-HMM with a fixed-size word memory.
type Machine struct {
	f   cost.Func
	tab *cost.Compiled
	// dense caches tab.Dense() so the per-word charge path is one bounds
	// check and one slice load instead of a virtual call into math.Pow.
	dense []float64
	mem   []Word
	stats Stats
	// Trace, when non-nil, is invoked for every word access with the
	// operation kind and address. Used by cmd/memtrace and layout tests.
	Trace func(op Op, addr int64)
}

// New returns an f(x)-HMM with size words of zeroed memory.
// It panics if size is negative.
func New(f cost.Func, size int64) *Machine {
	if size < 0 {
		panic(fmt.Sprintf("hmm: negative memory size %d", size))
	}
	tab := cost.Compile(f, size-1)
	return &Machine{f: f, tab: tab, dense: tab.Dense(),
		mem: make([]Word, size), stats: Stats{MaxAddr: -1}}
}

// AccessFunc returns the machine's access function.
func (m *Machine) AccessFunc() cost.Func { return m.f }

// Size returns the memory size in words.
func (m *Machine) Size() int64 { return int64(len(m.mem)) }

// Stats returns a copy of the accumulated statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Cost returns the total charged model time so far.
func (m *Machine) Cost() float64 { return m.stats.Cost }

// ResetStats zeroes the cost accounting but leaves memory contents.
func (m *Machine) ResetStats() { m.stats = Stats{MaxAddr: -1} }

// ResetAll zeroes both statistics and memory contents.
func (m *Machine) ResetAll() {
	m.ResetStats()
	clear(m.mem)
}

func (m *Machine) checkAddr(x int64) {
	if x < 0 || x >= int64(len(m.mem)) {
		panic(fmt.Sprintf("hmm: address %d out of range [0,%d)", x, len(m.mem)))
	}
}

func (m *Machine) charge(op Op, x int64) {
	m.stats.Cost += m.costAt(x)
	if x > m.stats.MaxAddr {
		m.stats.MaxAddr = x
	}
	m.stats.Depth[bits.Len64(uint64(x))]++
	if op == OpRead {
		m.stats.Reads++
	} else {
		m.stats.Writes++
	}
	if m.Trace != nil {
		m.Trace(op, x)
	}
}

// costAt returns f(x) through the compiled table (bit-identical to the
// direct formula). x must be a valid (non-negative) address.
func (m *Machine) costAt(x int64) float64 {
	if x < int64(len(m.dense)) {
		return m.dense[x]
	}
	return m.tab.Cost(x)
}

// CostAt returns f(x) without charging it — for model extensions (the
// BT machine prices block transfers by endpoint costs) and assertions.
func (m *Machine) CostAt(x int64) float64 {
	m.checkAddr(x)
	return m.costAt(x)
}

// chargeRange charges one op per address in [lo, hi), ascending — the
// exact accumulation order of per-word charge calls, so the resulting
// Cost is bit-identical. Callers must have bounds-checked the range and
// must only use it when Trace is nil (the per-word paths emit trace
// events; bulk paths fall back to them under tracing).
func (m *Machine) chargeRange(op Op, lo, hi int64) {
	c := m.stats.Cost
	x := lo
	dh := hi
	if dh > int64(len(m.dense)) {
		dh = int64(len(m.dense))
	}
	for d := m.dense; x < dh; x++ {
		c += d[x]
	}
	for ; x < hi; x++ {
		c += m.tab.Cost(x)
	}
	m.stats.Cost = c
	if hi-1 > m.stats.MaxAddr {
		m.stats.MaxAddr = hi - 1
	}
	m.bumpDepthRange(lo, hi)
	if op == OpRead {
		m.stats.Reads += hi - lo
	} else {
		m.stats.Writes += hi - lo
	}
}

// bumpDepthRange adds the addresses of [lo, hi) to the touch-depth
// profile, one segment per power-of-two bucket (same totals as calling
// charge per word).
func (m *Machine) bumpDepthRange(lo, hi int64) {
	for x := lo; x < hi; {
		k := bits.Len64(uint64(x))
		bhi := hi
		if k < 63 {
			if b := int64(1) << uint(k); b < hi {
				bhi = b
			}
		}
		m.stats.Depth[k] += bhi - x
		x = bhi
	}
}

// Read returns the word at address x, charging f(x).
func (m *Machine) Read(x int64) Word {
	m.checkAddr(x)
	m.charge(OpRead, x)
	return m.mem[x]
}

// Write stores v at address x, charging f(x).
func (m *Machine) Write(x int64, v Word) {
	m.checkAddr(x)
	m.charge(OpWrite, x)
	m.mem[x] = v
}

// AddCost charges raw model time without touching memory or operation
// counters. It exists for model extensions (the BT machine charges its
// pipelined block transfers this way). It panics if c is negative.
func (m *Machine) AddCost(c float64) {
	if c < 0 {
		panic("hmm: negative cost")
	}
	m.stats.Cost += c
}

// NoteAddr records x as touched for MaxAddr tracking without charging
// cost — used by block-transfer extensions whose cost is charged via
// AddCost but which still move data across the address space.
func (m *Machine) NoteAddr(x int64) {
	if x > m.stats.MaxAddr {
		m.stats.MaxAddr = x
	}
}

// ChargeOps charges n unit-time compute operations (no memory touched).
// It panics if n is negative.
func (m *Machine) ChargeOps(n int64) {
	if n < 0 {
		panic("hmm: negative op count")
	}
	m.stats.Cost += float64(n)
	m.stats.ComputeOps += n
}

// SwapWords exchanges the contents of addresses x and y, charging
// 2(f(x)+f(y)) — a read and a write at each address.
func (m *Machine) SwapWords(x, y int64) {
	vx := m.Read(x)
	vy := m.Read(y)
	m.Write(x, vy)
	m.Write(y, vx)
}

// MoveRange copies n words from [src, src+n) to [dst, dst+n), word by
// word (the plain HMM has no block transfer; each word costs
// f(src+i)+f(dst+i)). Overlapping ranges are handled like copy().
func (m *Machine) MoveRange(src, dst, n int64) {
	if n == 0 {
		return
	}
	m.checkAddr(src)
	m.checkAddr(src + n - 1)
	m.checkAddr(dst)
	m.checkAddr(dst + n - 1)
	if m.Trace != nil {
		// Tracing needs one event per word access in the legacy order.
		if dst < src {
			for i := int64(0); i < n; i++ {
				//lint:ignore bulkcharge the tracing path must emit one event per word in legacy order
				m.Write(dst+i, m.Read(src+i))
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				m.Write(dst+i, m.Read(src+i))
			}
		}
		return
	}
	// Bulk path: fold the per-word charges f(src+i), f(dst+i) into the
	// accumulator in the exact order the word-by-word loop would, then
	// move the words with one copy. Bit-identical cost, same stats.
	c := m.stats.Cost
	if dst < src {
		for i := int64(0); i < n; i++ {
			c += m.costAt(src + i)
			c += m.costAt(dst + i)
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			c += m.costAt(src + i)
			c += m.costAt(dst + i)
		}
	}
	m.stats.Cost = c
	copy(m.mem[dst:dst+n], m.mem[src:src+n])
	m.stats.Reads += n
	m.stats.Writes += n
	m.bumpDepthRange(src, src+n)
	m.bumpDepthRange(dst, dst+n)
	if hi := max(src, dst) + n - 1; hi > m.stats.MaxAddr {
		m.stats.MaxAddr = hi
	}
}

// SwapRange exchanges the n-word ranges at a and b, which must not
// overlap. Each word costs a read and a write at both addresses.
func (m *Machine) SwapRange(a, b, n int64) {
	if n == 0 {
		return
	}
	if overlap(a, b, n) {
		panic(fmt.Sprintf("hmm: SwapRange overlap: a=%d b=%d n=%d", a, b, n))
	}
	m.checkAddr(a)
	m.checkAddr(a + n - 1)
	m.checkAddr(b)
	m.checkAddr(b + n - 1)
	if m.Trace != nil {
		for i := int64(0); i < n; i++ {
			//lint:ignore bulkcharge the tracing path must emit one event per word in legacy order
			m.SwapWords(a+i, b+i)
		}
		return
	}
	// Bulk path: per word, SwapWords charges f(a+i), f(b+i), f(a+i),
	// f(b+i) (read a, read b, write a, write b). Replicate that fold
	// exactly, then swap the words directly.
	c := m.stats.Cost
	for i := int64(0); i < n; i++ {
		ca, cb := m.costAt(a+i), m.costAt(b+i)
		c += ca
		c += cb
		c += ca
		c += cb
		m.mem[a+i], m.mem[b+i] = m.mem[b+i], m.mem[a+i]
	}
	m.stats.Cost = c
	m.stats.Reads += 2 * n
	m.stats.Writes += 2 * n
	m.bumpDepthRange(a, a+n)
	m.bumpDepthRange(a, a+n)
	m.bumpDepthRange(b, b+n)
	m.bumpDepthRange(b, b+n)
	if hi := max(a, b) + n - 1; hi > m.stats.MaxAddr {
		m.stats.MaxAddr = hi
	}
}

// StreamWords copies n words from [src, src+n) to [dst, dst+n), which
// must not overlap, charging exactly like the ascending word loop
// `Write(dst+i, Read(src+i))` regardless of which range sits lower —
// the accumulation order streaming pipes rely on (MoveRange switches to
// a descending loop when dst > src to stay copy()-safe on overlap).
func (m *Machine) StreamWords(src, dst, n int64) {
	if n == 0 {
		return
	}
	if overlap(src, dst, n) {
		panic(fmt.Sprintf("hmm: StreamWords overlap: src=%d dst=%d n=%d", src, dst, n))
	}
	m.checkAddr(src)
	m.checkAddr(src + n - 1)
	m.checkAddr(dst)
	m.checkAddr(dst + n - 1)
	if m.Trace != nil {
		for i := int64(0); i < n; i++ {
			//lint:ignore bulkcharge the tracing path must emit one event per word in legacy order
			m.Write(dst+i, m.Read(src+i))
		}
		return
	}
	c := m.stats.Cost
	for i := int64(0); i < n; i++ {
		c += m.costAt(src + i)
		c += m.costAt(dst + i)
	}
	m.stats.Cost = c
	copy(m.mem[dst:dst+n], m.mem[src:src+n])
	m.stats.Reads += n
	m.stats.Writes += n
	m.bumpDepthRange(src, src+n)
	m.bumpDepthRange(dst, dst+n)
	if hi := max(src, dst) + n - 1; hi > m.stats.MaxAddr {
		m.stats.MaxAddr = hi
	}
}

func overlap(a, b, n int64) bool {
	if a > b {
		a, b = b, a
	}
	return a+n > b
}

// Touch reads the first n cells in order (the touching problem of
// Fact 1, cost Θ(n·f(n)) for (2,c)-uniform f).
func (m *Machine) Touch(n int64) {
	if n <= 0 {
		return
	}
	if m.Trace != nil {
		for x := int64(0); x < n; x++ {
			//lint:ignore bulkcharge the tracing path must emit one event per word in legacy order
			m.Read(x)
		}
		return
	}
	m.checkAddr(n - 1)
	m.chargeRange(OpRead, 0, n)
}

// ReadRange reads the len(dst) words at [addr, addr+len(dst)) into dst
// in ascending order, charging each word like Read.
func (m *Machine) ReadRange(addr int64, dst []Word) {
	n := int64(len(dst))
	if n == 0 {
		return
	}
	m.checkAddr(addr)
	m.checkAddr(addr + n - 1)
	if m.Trace != nil {
		for i := int64(0); i < n; i++ {
			//lint:ignore bulkcharge the tracing path must emit one event per word in legacy order
			dst[i] = m.Read(addr + i)
		}
		return
	}
	m.chargeRange(OpRead, addr, addr+n)
	copy(dst, m.mem[addr:addr+n])
}

// WriteRange stores src at [addr, addr+len(src)) in ascending order,
// charging each word like Write.
func (m *Machine) WriteRange(addr int64, src []Word) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	m.checkAddr(addr)
	m.checkAddr(addr + n - 1)
	if m.Trace != nil {
		for i := int64(0); i < n; i++ {
			//lint:ignore bulkcharge the tracing path must emit one event per word in legacy order
			m.Write(addr+i, src[i])
		}
		return
	}
	m.chargeRange(OpWrite, addr, addr+n)
	copy(m.mem[addr:addr+n], src)
}

// Peek returns the word at x without charging cost — for test
// assertions and snapshot rendering only.
func (m *Machine) Peek(x int64) Word {
	m.checkAddr(x)
	return m.mem[x]
}

// Poke stores v at x without charging cost — for test setup only.
func (m *Machine) Poke(x int64, v Word) {
	m.checkAddr(x)
	m.mem[x] = v
}

// Snapshot copies the n words starting at addr without charging cost —
// for assertions and rendering only. It panics if n is negative; an
// empty snapshot is valid for any addr (including one past the end).
func (m *Machine) Snapshot(addr, n int64) []Word {
	if n < 0 {
		panic(fmt.Sprintf("hmm: negative snapshot length %d", n))
	}
	if n == 0 {
		return []Word{}
	}
	m.checkAddr(addr)
	m.checkAddr(addr + n - 1)
	out := make([]Word, n)
	copy(out, m.mem[addr:addr+n])
	return out
}

// PokeRange stores src at [addr, addr+len(src)) without charging cost —
// the bulk form of Poke, for test and workload setup only.
func (m *Machine) PokeRange(addr int64, src []Word) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	m.checkAddr(addr)
	m.checkAddr(addr + n - 1)
	copy(m.mem[addr:addr+n], src)
}

// CopyUncharged moves n words from [src, src+n) to [dst, dst+n) like
// copy(), without charging cost or touching counters. It exists for
// model extensions that price data movement themselves (the BT machine
// charges a pipelined block transfer via AddCost and moves the words
// with this).
func (m *Machine) CopyUncharged(src, dst, n int64) {
	if n == 0 {
		return
	}
	m.checkAddr(src)
	m.checkAddr(src + n - 1)
	m.checkAddr(dst)
	m.checkAddr(dst + n - 1)
	copy(m.mem[dst:dst+n], m.mem[src:src+n])
}
