// Package hmm implements the Hierarchical Memory Model of Aggarwal,
// Alpern, Chandra and Snir (paper reference [1]): a random access
// machine where touching memory address x costs f(x) time for a
// nondecreasing access function f. The machine is mechanical — every
// Read/Write moves real words in a real array and charges the exact
// model cost — so the simulation theorems of the paper can be validated
// against observed cost rather than against re-derived formulas.
//
// Cost convention (paper Section 2): an n-ary operation touching cells
// x1..xn takes 1 + Σ f(xi). We charge f(x) per word access plus 1 per
// explicit compute operation (ChargeOps), which is within a constant
// factor of the model for bounded-arity operations.
package hmm

import (
	"fmt"
	"math/bits"

	"repro/internal/cost"
)

// Word is the unit of HMM storage.
type Word = int64

// Op identifies a memory operation kind for trace hooks.
type Op uint8

// Operation kinds reported to trace hooks.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Stats aggregates the cost accounting of a Machine.
type Stats struct {
	// Cost is the total charged model time: Σ f(x) over accesses plus
	// compute operations.
	Cost float64
	// Reads and Writes count word accesses by kind.
	Reads, Writes int64
	// ComputeOps counts unit-time compute operations charged with
	// ChargeOps.
	ComputeOps int64
	// MaxAddr is the highest address touched so far (-1 if none).
	MaxAddr int64
	// Depth[k] counts word accesses whose address has bit-length k
	// (address 0 in bucket 0): the touch-depth profile showing how much
	// of the traffic stays near the top of memory.
	Depth [48]int64
}

// DepthByBounds rebuckets the touch-depth profile by explicit level
// capacities (e.g. a cost.Table's Bounds): the result has
// len(bounds)+1 entries, the last counting accesses beyond every bound.
func (s Stats) DepthByBounds(bounds []int64) []int64 {
	out := make([]int64, len(bounds)+1)
	for k, n := range s.Depth {
		if n == 0 {
			continue
		}
		// Addresses in bucket k lie in [2^(k-1), 2^k) (bucket 0 = {0}).
		lo := int64(0)
		if k > 0 {
			lo = int64(1) << uint(k-1)
		}
		hi := int64(1)<<uint(k) - 1
		// Assign the whole bucket to the level of its midpoint; buckets
		// straddling a boundary split their count proportionally by the
		// boundary position (an approximation adequate for profiles).
		mid := (lo + hi) / 2
		lvl := len(bounds)
		for i, b := range bounds {
			if mid < b {
				lvl = i
				break
			}
		}
		out[lvl] += n
	}
	return out
}

// Accesses returns Reads + Writes.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Machine is an f(x)-HMM with a fixed-size word memory.
type Machine struct {
	f     cost.Func
	mem   []Word
	stats Stats
	// Trace, when non-nil, is invoked for every word access with the
	// operation kind and address. Used by cmd/memtrace and layout tests.
	Trace func(op Op, addr int64)
}

// New returns an f(x)-HMM with size words of zeroed memory.
// It panics if size is negative.
func New(f cost.Func, size int64) *Machine {
	if size < 0 {
		panic(fmt.Sprintf("hmm: negative memory size %d", size))
	}
	return &Machine{f: f, mem: make([]Word, size), stats: Stats{MaxAddr: -1}}
}

// AccessFunc returns the machine's access function.
func (m *Machine) AccessFunc() cost.Func { return m.f }

// Size returns the memory size in words.
func (m *Machine) Size() int64 { return int64(len(m.mem)) }

// Stats returns a copy of the accumulated statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Cost returns the total charged model time so far.
func (m *Machine) Cost() float64 { return m.stats.Cost }

// ResetStats zeroes the cost accounting but leaves memory contents.
func (m *Machine) ResetStats() { m.stats = Stats{MaxAddr: -1} }

// ResetAll zeroes both statistics and memory contents.
func (m *Machine) ResetAll() {
	m.ResetStats()
	clear(m.mem)
}

func (m *Machine) checkAddr(x int64) {
	if x < 0 || x >= int64(len(m.mem)) {
		panic(fmt.Sprintf("hmm: address %d out of range [0,%d)", x, len(m.mem)))
	}
}

func (m *Machine) charge(op Op, x int64) {
	m.stats.Cost += m.f.Cost(x)
	if x > m.stats.MaxAddr {
		m.stats.MaxAddr = x
	}
	m.stats.Depth[bits.Len64(uint64(x))]++
	if op == OpRead {
		m.stats.Reads++
	} else {
		m.stats.Writes++
	}
	if m.Trace != nil {
		m.Trace(op, x)
	}
}

// Read returns the word at address x, charging f(x).
func (m *Machine) Read(x int64) Word {
	m.checkAddr(x)
	m.charge(OpRead, x)
	return m.mem[x]
}

// Write stores v at address x, charging f(x).
func (m *Machine) Write(x int64, v Word) {
	m.checkAddr(x)
	m.charge(OpWrite, x)
	m.mem[x] = v
}

// AddCost charges raw model time without touching memory or operation
// counters. It exists for model extensions (the BT machine charges its
// pipelined block transfers this way). It panics if c is negative.
func (m *Machine) AddCost(c float64) {
	if c < 0 {
		panic("hmm: negative cost")
	}
	m.stats.Cost += c
}

// NoteAddr records x as touched for MaxAddr tracking without charging
// cost — used by block-transfer extensions whose cost is charged via
// AddCost but which still move data across the address space.
func (m *Machine) NoteAddr(x int64) {
	if x > m.stats.MaxAddr {
		m.stats.MaxAddr = x
	}
}

// ChargeOps charges n unit-time compute operations (no memory touched).
// It panics if n is negative.
func (m *Machine) ChargeOps(n int64) {
	if n < 0 {
		panic("hmm: negative op count")
	}
	m.stats.Cost += float64(n)
	m.stats.ComputeOps += n
}

// SwapWords exchanges the contents of addresses x and y, charging
// 2(f(x)+f(y)) — a read and a write at each address.
func (m *Machine) SwapWords(x, y int64) {
	vx := m.Read(x)
	vy := m.Read(y)
	m.Write(x, vy)
	m.Write(y, vx)
}

// MoveRange copies n words from [src, src+n) to [dst, dst+n), word by
// word (the plain HMM has no block transfer; each word costs
// f(src+i)+f(dst+i)). Overlapping ranges are handled like copy().
func (m *Machine) MoveRange(src, dst, n int64) {
	if n == 0 {
		return
	}
	m.checkAddr(src)
	m.checkAddr(src + n - 1)
	m.checkAddr(dst)
	m.checkAddr(dst + n - 1)
	if dst < src {
		for i := int64(0); i < n; i++ {
			m.Write(dst+i, m.Read(src+i))
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			m.Write(dst+i, m.Read(src+i))
		}
	}
}

// SwapRange exchanges the n-word ranges at a and b, which must not
// overlap. Each word costs a read and a write at both addresses.
func (m *Machine) SwapRange(a, b, n int64) {
	if n == 0 {
		return
	}
	if overlap(a, b, n) {
		panic(fmt.Sprintf("hmm: SwapRange overlap: a=%d b=%d n=%d", a, b, n))
	}
	for i := int64(0); i < n; i++ {
		m.SwapWords(a+i, b+i)
	}
}

func overlap(a, b, n int64) bool {
	if a > b {
		a, b = b, a
	}
	return a+n > b
}

// Touch reads the first n cells in order (the touching problem of
// Fact 1, cost Θ(n·f(n)) for (2,c)-uniform f).
func (m *Machine) Touch(n int64) {
	for x := int64(0); x < n; x++ {
		m.Read(x)
	}
}

// Peek returns the word at x without charging cost — for test
// assertions and snapshot rendering only.
func (m *Machine) Peek(x int64) Word {
	m.checkAddr(x)
	return m.mem[x]
}

// Poke stores v at x without charging cost — for test setup only.
func (m *Machine) Poke(x int64, v Word) {
	m.checkAddr(x)
	m.mem[x] = v
}

// Snapshot copies the n words starting at addr without charging cost —
// for assertions and rendering only.
func (m *Machine) Snapshot(addr, n int64) []Word {
	m.checkAddr(addr)
	m.checkAddr(addr + n - 1)
	out := make([]Word, n)
	copy(out, m.mem[addr:addr+n])
	return out
}
