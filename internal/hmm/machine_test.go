package hmm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func newFlat(size int64) *Machine { return New(cost.Const{C: 1}, size) }

func TestReadWriteRoundTrip(t *testing.T) {
	m := newFlat(16)
	m.Write(3, 42)
	if got := m.Read(3); got != 42 {
		t.Errorf("Read(3) = %d, want 42", got)
	}
	if got := m.Read(0); got != 0 {
		t.Errorf("Read(0) = %d, want zero-initialised 0", got)
	}
}

func TestCostAccounting(t *testing.T) {
	m := New(cost.Poly{Alpha: 0.5}, 1024)
	m.Write(100, 1) // f(100) = 10
	m.Read(100)     // f(100) = 10
	if got := m.Cost(); math.Abs(got-20) > 1e-9 {
		t.Errorf("Cost = %g, want 20", got)
	}
	st := m.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.MaxAddr != 100 {
		t.Errorf("Stats = %+v, want 1 read, 1 write, MaxAddr 100", st)
	}
}

func TestChargeOps(t *testing.T) {
	m := newFlat(1)
	m.ChargeOps(17)
	if m.Cost() != 17 || m.Stats().ComputeOps != 17 {
		t.Errorf("after ChargeOps(17): cost=%g ops=%d", m.Cost(), m.Stats().ComputeOps)
	}
}

func TestChargeOpsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ChargeOps(-1) did not panic")
		}
	}()
	newFlat(1).ChargeOps(-1)
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(m *Machine){
		func(m *Machine) { m.Read(-1) },
		func(m *Machine) { m.Read(16) },
		func(m *Machine) { m.Write(16, 0) },
		func(m *Machine) { m.MoveRange(0, 10, 8) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on out-of-range access", i)
				}
			}()
			fn(newFlat(16))
		}()
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(cost.Log{}, -1)
}

func TestSwapWords(t *testing.T) {
	m := newFlat(8)
	m.Poke(1, 10)
	m.Poke(5, 50)
	m.SwapWords(1, 5)
	if m.Peek(1) != 50 || m.Peek(5) != 10 {
		t.Errorf("after SwapWords: [1]=%d [5]=%d, want 50, 10", m.Peek(1), m.Peek(5))
	}
	if m.Stats().Reads != 2 || m.Stats().Writes != 2 {
		t.Errorf("SwapWords stats = %+v, want 2 reads 2 writes", m.Stats())
	}
}

func TestMoveRangeForwardBackward(t *testing.T) {
	m := newFlat(16)
	for i := int64(0); i < 4; i++ {
		m.Poke(i, Word(i+1))
	}
	m.MoveRange(0, 8, 4) // disjoint
	for i := int64(0); i < 4; i++ {
		if m.Peek(8+i) != Word(i+1) {
			t.Fatalf("disjoint move: [%d]=%d, want %d", 8+i, m.Peek(8+i), i+1)
		}
	}
	// Overlapping move forward (dst > src) must behave like copy().
	m2 := newFlat(16)
	for i := int64(0); i < 6; i++ {
		m2.Poke(i, Word(i+1))
	}
	m2.MoveRange(0, 2, 6)
	for i := int64(0); i < 6; i++ {
		if m2.Peek(2+i) != Word(i+1) {
			t.Fatalf("overlap fwd: [%d]=%d, want %d", 2+i, m2.Peek(2+i), i+1)
		}
	}
	// Overlapping move backward.
	m3 := newFlat(16)
	for i := int64(0); i < 6; i++ {
		m3.Poke(2+i, Word(i+1))
	}
	m3.MoveRange(2, 0, 6)
	for i := int64(0); i < 6; i++ {
		if m3.Peek(i) != Word(i+1) {
			t.Fatalf("overlap bwd: [%d]=%d, want %d", i, m3.Peek(i), i+1)
		}
	}
}

func TestMoveRangeZeroLen(t *testing.T) {
	m := newFlat(4)
	m.MoveRange(0, 2, 0)
	if m.Cost() != 0 {
		t.Errorf("zero-length move charged %g", m.Cost())
	}
}

func TestSwapRange(t *testing.T) {
	m := newFlat(16)
	for i := int64(0); i < 4; i++ {
		m.Poke(i, Word(i+1))
		m.Poke(8+i, Word(100+i))
	}
	m.SwapRange(0, 8, 4)
	for i := int64(0); i < 4; i++ {
		if m.Peek(i) != Word(100+i) || m.Peek(8+i) != Word(i+1) {
			t.Fatalf("SwapRange mismatch at %d", i)
		}
	}
}

func TestSwapRangeOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SwapRange with overlap did not panic")
		}
	}()
	newFlat(16).SwapRange(0, 2, 4)
}

// Fact 1 on the mechanical machine: Touch(n) cost is Θ(n f(n)).
func TestTouchMatchesFact1(t *testing.T) {
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, n := range []int64{256, 4096} {
			m := New(f, n)
			m.Touch(n)
			want := cost.TouchHMM(f, n)
			if math.Abs(m.Cost()-want) > 1e-6 {
				t.Errorf("%s n=%d: Touch cost %g, want exact sum %g", f.Name(), n, m.Cost(), want)
			}
		}
	}
}

func TestTraceHook(t *testing.T) {
	m := newFlat(8)
	var ops []Op
	var addrs []int64
	m.Trace = func(op Op, addr int64) {
		ops = append(ops, op)
		addrs = append(addrs, addr)
	}
	m.Write(2, 9)
	m.Read(2)
	if len(ops) != 2 || ops[0] != OpWrite || ops[1] != OpRead || addrs[0] != 2 || addrs[1] != 2 {
		t.Errorf("trace = %v %v, want [write read] [2 2]", ops, addrs)
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("Op.String mismatch")
	}
}

func TestResetStatsAndAll(t *testing.T) {
	m := newFlat(8)
	m.Write(3, 7)
	m.ResetStats()
	if m.Cost() != 0 || m.Stats().Writes != 0 {
		t.Error("ResetStats did not clear stats")
	}
	if m.Peek(3) != 7 {
		t.Error("ResetStats cleared memory contents")
	}
	m.ResetAll()
	if m.Peek(3) != 0 {
		t.Error("ResetAll did not clear memory")
	}
}

func TestSnapshotDoesNotCharge(t *testing.T) {
	m := newFlat(8)
	m.Poke(1, 11)
	s := m.Snapshot(0, 4)
	if s[1] != 11 || m.Cost() != 0 {
		t.Errorf("Snapshot = %v cost=%g, want [0 11 0 0] cost 0", s, m.Cost())
	}
}

// Property: MoveRange preserves multiset content for disjoint ranges and
// cost equals Σ f(src+i) + f(dst+i).
func TestMoveRangeCostProperty(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	prop := func(rawN uint8) bool {
		n := int64(rawN%16) + 1
		m := New(f, 64)
		for i := int64(0); i < n; i++ {
			m.Poke(i, Word(i)*3+1)
		}
		m.MoveRange(0, 32, n)
		var want float64
		for i := int64(0); i < n; i++ {
			want += f.Cost(i) + f.Cost(32+i)
			if m.Peek(32+i) != Word(i)*3+1 {
				return false
			}
		}
		return math.Abs(m.Cost()-want) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDepthProfile(t *testing.T) {
	m := newFlat(1 << 12)
	m.Read(0)    // bucket 0
	m.Read(1)    // bucket 1
	m.Read(3)    // bucket 2
	m.Read(1000) // bucket 10
	st := m.Stats()
	if st.Depth[0] != 1 || st.Depth[1] != 1 || st.Depth[2] != 1 || st.Depth[10] != 1 {
		t.Errorf("depth profile wrong: %v", st.Depth[:12])
	}
	// Rebucket by explicit bounds: [0,8) level 0, [8, 512) level 1, rest 2.
	byLevel := st.DepthByBounds([]int64{8, 512})
	if byLevel[0] != 3 || byLevel[1] != 0 || byLevel[2] != 1 {
		t.Errorf("DepthByBounds = %v, want [3 0 1]", byLevel)
	}
}

func TestDepthProfileTouch(t *testing.T) {
	m := New(cost.Log{}, 1<<10)
	m.Touch(1 << 10)
	st := m.Stats()
	var total int64
	for _, n := range st.Depth {
		total += n
	}
	if total != 1<<10 {
		t.Errorf("depth total = %d, want 1024", total)
	}
}

// Regression: bits.Len64 of a valid large address reaches up to 63 (and
// 64 for negative-cast values); the Depth array must cover it. Before
// the fix Depth was [48]int64 and this charge panicked with an index out
// of range. charge() is called directly (white-box) because allocating
// 2^47 words of backing memory is not possible in a test.
func TestDepthDeepAddressRegression(t *testing.T) {
	m := New(cost.Const{C: 1}, 8)
	for _, x := range []int64{1 << 47, 1 << 62, math.MaxInt64} {
		m.charge(OpRead, x)
		k := 0
		for v := x; v > 0; v >>= 1 {
			k++
		}
		if m.stats.Depth[k] == 0 {
			t.Errorf("charge(%d): Depth[%d] not incremented", x, k)
		}
	}
	if m.stats.MaxAddr != math.MaxInt64 {
		t.Errorf("MaxAddr = %d, want MaxInt64", m.stats.MaxAddr)
	}
}

// Table-driven zero-length edge cases: Snapshot(addr, 0) must not panic
// (its bound check used to evaluate addr-1), and the range operations
// accept n=0 at any addr including on an empty machine.
func TestZeroLengthEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		size int64
		op   func(m *Machine)
	}{
		{"snapshot addr=0 n=0 empty machine", 0, func(m *Machine) { m.Snapshot(0, 0) }},
		{"snapshot addr=0 n=0", 8, func(m *Machine) { m.Snapshot(0, 0) }},
		{"snapshot addr=size n=0", 8, func(m *Machine) { m.Snapshot(8, 0) }},
		{"move addr=0 n=0 empty machine", 0, func(m *Machine) { m.MoveRange(0, 0, 0) }},
		{"swap addr=0 n=0 empty machine", 0, func(m *Machine) { m.SwapRange(0, 0, 0) }},
		{"stream addr=0 n=0 empty machine", 0, func(m *Machine) { m.StreamWords(0, 0, 0) }},
		{"touch n=0 empty machine", 0, func(m *Machine) { m.Touch(0) }},
		{"readrange n=0", 8, func(m *Machine) { m.ReadRange(0, nil) }},
		{"writerange n=0", 8, func(m *Machine) { m.WriteRange(0, nil) }},
		{"pokerange n=0", 8, func(m *Machine) { m.PokeRange(0, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newFlat(tc.size)
			tc.op(m)
			if m.Cost() != 0 || m.Stats().Accesses() != 0 {
				t.Errorf("zero-length op charged cost=%g accesses=%d", m.Cost(), m.Stats().Accesses())
			}
		})
	}
	if got := len(New(cost.Log{}, 4).Snapshot(2, 0)); got != 0 {
		t.Errorf("Snapshot(_, 0) length = %d, want 0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Snapshot with negative n did not panic")
			}
		}()
		newFlat(8).Snapshot(0, -1)
	}()
}

// DepthByBounds must split a bucket straddling a boundary
// proportionally by the boundary position, with the parts summing to
// the bucket count exactly.
func TestDepthByBoundsProportionalSplit(t *testing.T) {
	var s Stats
	s.Depth[10] = 4 // bucket [512, 1024)
	// 768 splits the bucket in half: 2 accesses per side.
	if got := s.DepthByBounds([]int64{768}); got[0] != 2 || got[1] != 2 {
		t.Errorf("DepthByBounds({768}) = %v, want [2 2]", got)
	}
	// An odd count still sums exactly: floor(3*256/512)=1 below, 2 above.
	s.Depth[10] = 3
	if got := s.DepthByBounds([]int64{768}); got[0] != 1 || got[1] != 2 {
		t.Errorf("DepthByBounds({768}) = %v, want [1 2]", got)
	}
	// Multiple boundaries inside one bucket.
	s.Depth[10] = 8
	if got := s.DepthByBounds([]int64{640, 768, 896}); got[0] != 2 || got[1] != 2 || got[2] != 2 || got[3] != 2 {
		t.Errorf("DepthByBounds({640,768,896}) = %v, want [2 2 2 2]", got)
	}
	// Bucket entirely inside one level is assigned whole.
	s = Stats{}
	s.Depth[2] = 5 // [2, 4)
	if got := s.DepthByBounds([]int64{8, 512}); got[0] != 5 || got[1] != 0 || got[2] != 0 {
		t.Errorf("DepthByBounds = %v, want [5 0 0]", got)
	}
	// Deep buckets (including the bit-length-64 overflow bucket) land in
	// the last level without overflowing the share arithmetic.
	s = Stats{}
	s.Depth[48] = 1 << 40
	s.Depth[64] = 3
	got := s.DepthByBounds([]int64{8, 512})
	if got[2] != 1<<40+3 {
		t.Errorf("deep buckets: DepthByBounds = %v, want last level %d", got, int64(1<<40)+3)
	}
}

// Every bulk operation must charge bit-identically to its word-by-word
// fallback (which tracing forces), in the same accumulation order —
// the invariant the observer-on/off equality of the simulators rests on.
func TestBulkMatchesPerWordBitIdentical(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	ops := []struct {
		name string
		run  func(m *Machine)
	}{
		{"touch", func(m *Machine) { m.Touch(200) }},
		{"move fwd", func(m *Machine) { m.MoveRange(150, 10, 64) }},
		{"move bwd overlap", func(m *Machine) { m.MoveRange(10, 40, 64) }},
		{"swap", func(m *Machine) { m.SwapRange(0, 128, 64) }},
		{"stream up", func(m *Machine) { m.StreamWords(5, 100, 32) }},
		{"stream down", func(m *Machine) { m.StreamWords(100, 5, 32) }},
		{"readrange", func(m *Machine) { m.ReadRange(33, make([]Word, 77)) }},
		{"writerange", func(m *Machine) { m.WriteRange(90, make([]Word, 50)) }},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			bulk := New(f, 256)
			word := New(f, 256)
			word.Trace = func(Op, int64) {} // forces the per-word fallback
			for i := int64(0); i < 256; i++ {
				bulk.Poke(i, i*7+1)
				word.Poke(i, i*7+1)
			}
			op.run(bulk)
			op.run(word)
			if bc, wc := bulk.Cost(), word.Cost(); math.Float64bits(bc) != math.Float64bits(wc) {
				t.Errorf("bulk cost %v (bits %x) != per-word cost %v (bits %x)",
					bc, math.Float64bits(bc), wc, math.Float64bits(wc))
			}
			word.Trace = nil
			bs, ws := bulk.Stats(), word.Stats()
			if bs != ws {
				t.Errorf("stats diverged:\nbulk: %+v\nword: %+v", bs, ws)
			}
			if got, want := bulk.Snapshot(0, 256), word.Snapshot(0, 256); !slicesEqual(got, want) {
				t.Error("memory contents diverged between bulk and per-word paths")
			}
		})
	}
}

func slicesEqual(a, b []Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CostAt must be an uncharged exact f(x) lookup.
func TestCostAt(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	m := New(f, 1024)
	for _, x := range []int64{0, 1, 100, 1023} {
		if got, want := m.CostAt(x), f.Cost(x); got != want {
			t.Errorf("CostAt(%d) = %v, want %v", x, got, want)
		}
	}
	if m.Cost() != 0 {
		t.Errorf("CostAt charged %g", m.Cost())
	}
}

// CopyUncharged moves words without touching the accounting.
func TestCopyUncharged(t *testing.T) {
	m := newFlat(16)
	for i := int64(0); i < 4; i++ {
		m.Poke(i, i+1)
	}
	m.CopyUncharged(0, 8, 4)
	for i := int64(0); i < 4; i++ {
		if m.Peek(8+i) != i+1 {
			t.Fatalf("CopyUncharged: [%d] = %d, want %d", 8+i, m.Peek(8+i), i+1)
		}
	}
	if m.Cost() != 0 || m.Stats().Accesses() != 0 {
		t.Errorf("CopyUncharged charged cost=%g accesses=%d", m.Cost(), m.Stats().Accesses())
	}
}
