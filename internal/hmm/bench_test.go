package hmm

import (
	"testing"

	"repro/internal/cost"
)

// The machine benchmarks time the charge fast path end to end: machine
// construction is inside the loop (as the experiment sweeps do it), so
// the compile cache is part of what is measured.

func benchFuncs() []cost.Func {
	return []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}, cost.Const{C: 1}}
}

func BenchmarkTouch(b *testing.B) {
	const n = 1 << 16
	for _, f := range benchFuncs() {
		b.Run(f.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := New(f, n)
				m.Touch(n)
			}
		})
	}
}

func BenchmarkMoveRange(b *testing.B) {
	const n = 1 << 15
	for _, f := range benchFuncs() {
		b.Run(f.Name(), func(b *testing.B) {
			m := New(f, 2*n)
			for i := 0; i < b.N; i++ {
				m.MoveRange(0, n, n)
			}
		})
	}
}

func BenchmarkReadPerWord(b *testing.B) {
	const n = 1 << 15
	for _, f := range benchFuncs() {
		b.Run(f.Name(), func(b *testing.B) {
			m := New(f, n)
			for i := 0; i < b.N; i++ {
				for x := int64(0); x < n; x++ {
					m.Read(x)
				}
			}
		})
	}
}
