package theory

import (
	"math"
	"testing"

	"repro/internal/cost"
)

func TestTouchBounds(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	if got := TouchHMM(f, 1<<16); math.Abs(got-float64(int64(1)<<16)*256) > 1 {
		t.Errorf("TouchHMM = %g", got)
	}
	// BT touching is asymptotically far below HMM touching.
	if TouchBT(f, 1<<20) > TouchHMM(f, 1<<20)/100 {
		t.Error("TouchBT not far below TouchHMM at 2^20")
	}
}

func TestHMMSimulationFormula(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	lambda := []int{1, 0, 0} // one 0-superstep on v=4
	got := HMMSimulation(f, 4, 2, 3, lambda)
	want := 4 * (3 + 2*f.Cost(8))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("HMMSimulation = %g, want %g", got, want)
	}
}

func TestBTSimulationIndependentOfF(t *testing.T) {
	// The Theorem 12 formula has no f parameter at all; check it scales
	// with v·log as expected.
	lambda := make([]int, 11)
	for i := range lambda {
		lambda[i] = 1
	}
	a := BTSimulation(1024, 4, 0, lambda)
	b := BTSimulation(2048, 4, 0, append(lambda, 1))
	if b <= a || b > 4*a {
		t.Errorf("BTSimulation scaling broken: %g -> %g", a, b)
	}
}

func TestSelfSimulationHalves(t *testing.T) {
	g := cost.Log{}
	lambda := []int{1, 1, 1, 1}
	full := SelfSimulation(g, 8, 8, 2, 1, lambda)
	half := SelfSimulation(g, 8, 4, 2, 1, lambda)
	if math.Abs(half-2*full) > 1e-9 {
		t.Errorf("halving v' must double the bound: %g vs %g", full, half)
	}
}

func TestMatMulCases(t *testing.T) {
	n := 1 << 12
	// α > 1/2: n^α.
	if got, want := MatMulDBSP(cost.Poly{Alpha: 0.75}, n), math.Pow(float64(n), 0.75); math.Abs(got-want) > 1e-6 {
		t.Errorf("MatMul α=0.75: %g want %g", got, want)
	}
	// α = 1/2: √n·log n.
	if got := MatMulDBSP(cost.Poly{Alpha: 0.5}, n); got <= math.Sqrt(float64(n)) {
		t.Error("MatMul α=0.5 should exceed √n by the log factor")
	}
	// α < 1/2 and log: √n.
	if got, want := MatMulDBSP(cost.Poly{Alpha: 0.25}, n), math.Sqrt(float64(n)); got != want {
		t.Errorf("MatMul α=0.25: %g want %g", got, want)
	}
	if got, want := MatMulDBSP(cost.Log{}, n), math.Sqrt(float64(n)); got != want {
		t.Errorf("MatMul log: %g want %g", got, want)
	}
	if MatMulHMM(cost.Poly{Alpha: 0.75}, n) != float64(n)*MatMulDBSP(cost.Poly{Alpha: 0.75}, n) {
		t.Error("MatMulHMM != n·MatMulDBSP")
	}
}

func TestDFTAndSortCases(t *testing.T) {
	n := 1 << 10
	if got, want := DFTDBSP(cost.Poly{Alpha: 0.5}, n), 32.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("DFT x^0.5: %g want %g", got, want)
	}
	if DFTDBSP(cost.Log{}, 1<<20) >= DFTDBSP(cost.Poly{Alpha: 0.5}, 1<<20)/4 {
		t.Error("DFT on log x should be far below n^α at large n")
	}
	if SortDBSP(cost.Poly{Alpha: 0.5}, n) != 32.0 {
		t.Error("Sort x^0.5 != n^0.5")
	}
	if SortHMM(cost.Poly{Alpha: 0.5}, n) != float64(n)*32 {
		t.Error("SortHMM != n^{1.5}")
	}
}

func TestSection53Ranking(t *testing.T) {
	// On BT the recursive DFT schedule beats the butterfly:
	// n log n loglog n < n log² n.
	n := 1 << 16
	if DFTRecursiveBT(n) >= DFTButterflyBT(n) {
		t.Error("recursive schedule must beat butterfly on BT")
	}
	if MatMulBT(1<<10) != math.Pow(1<<10, 1.5) {
		t.Error("MatMulBT != n^{3/2}")
	}
}

func TestComputeAndSortSubstrates(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	if ComputeOverhead(f, 4, 1024) <= 4*1024 {
		t.Error("ComputeOverhead should exceed µn")
	}
	if AMSort(f, 1<<12) <= float64(int64(1)<<12) {
		t.Error("AMSort should exceed N")
	}
}

func TestDBSPTimeFormula(t *testing.T) {
	g := cost.Const{C: 2}
	lambda := []int{2, 0} // two 0-supersteps on v=2
	got := DBSPTime(g, 2, 3, 1, 5, lambda)
	want := 2 * (5 + 1*2.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DBSPTime = %g, want %g", got, want)
	}
}
