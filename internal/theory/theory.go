// Package theory provides the paper's closed-form predicted bounds for
// every experiment in EXPERIMENTS.md, so measured mechanical costs can
// be compared against what the theorems claim. Predictions are
// asymptotic shapes; constants are absorbed by the ratio columns the
// experiment harness prints.
package theory

import (
	"math"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

// TouchHMM is Fact 1: touching the first n cells of an f(x)-HMM costs
// Θ(n·f(n)).
func TouchHMM(f cost.Func, n int64) float64 {
	return float64(n) * f.Cost(n)
}

// TouchBT is Fact 2: touching n cells of an f(x)-BT costs Θ(n·f*(n)).
func TouchBT(f cost.Func, n int64) float64 {
	return float64(n) * float64(cost.FStar(f, n))
}

// HMMSimulation is Theorem 5: simulating a fine-grained D-BSP(v, µ, g)
// program with per-processor computation time tau and label profile
// lambda on an f(x)-HMM costs O(v·(τ + µ·Σ_i λ_i·f(µ·v/2^i))).
func HMMSimulation(f cost.Func, v, mu int, tau float64, lambda []int) float64 {
	sum := tau
	for i, li := range lambda {
		sum += float64(mu) * float64(li) * f.Cost(int64(mu)*int64(v>>uint(i)))
	}
	return float64(v) * sum
}

// BTSimulation is Theorem 12: the same program on f(x)-BT costs
// O(v·(τ + µ·Σ_i λ_i·log(µ·v/2^i))) — independent of f.
func BTSimulation(v, mu int, tau float64, lambda []int) float64 {
	sum := tau
	for i, li := range lambda {
		sum += float64(mu) * float64(li) * math.Log2(float64(int64(mu)*int64(v>>uint(i)))+2)
	}
	return float64(v) * sum
}

// SelfSimulation is Theorem 10: the program on D-BSP(v′, µ·v/v′, g)
// costs O((v/v′)·(τ + µ·Σ_i λ_i·g(µ·v/2^i))).
func SelfSimulation(g cost.Func, v, vPrime, mu int, tau float64, lambda []int) float64 {
	return HMMSimulation(g, v, mu, tau, lambda) / float64(vPrime)
}

// DBSPTime is the D-BSP cost formula Σ_s (τ_s + h_s·g(µ·v/2^(i_s)))
// evaluated from a per-superstep profile; dbsp.Run measures it
// mechanically, this evaluates it analytically for a uniform profile
// (h messages and tau work per superstep).
func DBSPTime(g cost.Func, v, mu, h int, tau float64, lambda []int) float64 {
	var t float64
	for i, li := range lambda {
		t += float64(li) * (tau + float64(h)*dbsp.CommCost(g, mu, v, i))
	}
	return t
}

// Case-study predictions (Propositions 7-9 and Section 5.3), per access
// function.

// MatMulDBSP is Proposition 7: T_MM(n) on D-BSP(n, O(1), g):
// O(n^α) for α > 1/2, O(√n·log n) at α = 1/2, O(√n) for α < 1/2
// (g = x^α), and O(√n) for g = log x.
func MatMulDBSP(g cost.Func, n int) float64 {
	switch f := g.(type) {
	case cost.Poly:
		switch {
		case f.Alpha > 0.5:
			return math.Pow(float64(n), f.Alpha)
		case f.Alpha == 0.5:
			return math.Sqrt(float64(n)) * math.Log2(float64(n)+2)
		default:
			return math.Sqrt(float64(n))
		}
	default:
		return math.Sqrt(float64(n))
	}
}

// MatMulHMM is the n-MM lower bound on the HMM [1]: Θ(n·T_MM(n)) — the
// simulation of the Proposition 7 algorithm matches it.
func MatMulHMM(f cost.Func, n int) float64 { return float64(n) * MatMulDBSP(f, n) }

// DFTDBSP is Proposition 8: O(n^α) on g = x^α; O(log n·log log n) on
// g = log x (the recursive schedule).
func DFTDBSP(g cost.Func, n int) float64 {
	switch f := g.(type) {
	case cost.Poly:
		return math.Pow(float64(n), f.Alpha)
	default:
		ln := math.Log2(float64(n) + 2)
		return ln * math.Log2(ln+2)
	}
}

// DFTHMM is the n-DFT bound on the HMM [1]: O(n^(1+α)) for f = x^α and
// O(n·log n·log log n) for f = log x.
func DFTHMM(f cost.Func, n int) float64 { return float64(n) * DFTDBSP(f, n) }

// SortDBSP is Proposition 9: O(n^α) on g = x^α. On g = log x our
// bitonic schedule costs Θ(log³ n) (λ_i = i+1), consistent with the
// paper's remark that known BSP-like strategies are Ω(log² n) there.
func SortDBSP(g cost.Func, n int) float64 {
	switch f := g.(type) {
	case cost.Poly:
		return math.Pow(float64(n), f.Alpha)
	default:
		ln := math.Log2(float64(n) + 2)
		return ln * ln * ln
	}
}

// SortHMM is the n-sorting bound on x^α-HMM [1]: Θ(n^(1+α)).
func SortHMM(f cost.Func, n int) float64 { return float64(n) * SortDBSP(f, n) }

// DFTButterflyBT and DFTRecursiveBT are the Section 5.3 comparison: the
// two DFT schedules simulated on any f(x)-BT cost O(n·log² n) and
// O(n·log n·log log n) respectively — the recursive schedule wins, and
// only g = log x ranks them correctly on the D-BSP side.
func DFTButterflyBT(n int) float64 {
	ln := math.Log2(float64(n) + 2)
	return float64(n) * ln * ln
}

// DFTRecursiveBT returns n·log n·log log n.
func DFTRecursiveBT(n int) float64 {
	ln := math.Log2(float64(n) + 2)
	return float64(n) * ln * math.Log2(ln+2)
}

// MatMulBT is Section 5.3's n-MM on BT: the simulation is the optimal
// O(n^(3/2)).
func MatMulBT(n int) float64 { return math.Pow(float64(n), 1.5) }

// ComputeOverhead is the Section 5.2.1 COMPUTE bound:
// TM(n) = O(µ·n·c*(n)).
func ComputeOverhead(f cost.Func, mu, n int64) float64 {
	return float64(mu) * float64(n) * float64(cost.CStar(f, mu, n))
}

// AMSort is the BT sorting substrate bound: O(N·log N·f*(N)) for N
// record words (see DESIGN.md's Approx-Median-Sort substitution note).
func AMSort(f cost.Func, n int64) float64 {
	return float64(n) * math.Log2(float64(n)+2) * float64(cost.FStar(f, n))
}

// DFTOptimalBT is the Section 6 improved bound: simulating the
// recursive DFT with transpose routing instead of sorting costs
// O(n·log n), optimal on f(x)-BT for both f = x^α and f = log x.
func DFTOptimalBT(n int) float64 {
	return float64(n) * math.Log2(float64(n)+2)
}
