package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
)

// requireShardedAgrees asserts the sharded engine reproduced the native
// run bit for bit: contexts word by word, per-step labels, τ and
// h-relations, and every charged float64 compared by Float64bits.
func requireShardedAgrees(t *testing.T, name string, shards int, native, sharded *dbsp.Result) {
	t.Helper()
	if len(native.Steps) != len(sharded.Steps) {
		t.Fatalf("%s shards=%d: step counts %d vs %d", name, shards, len(native.Steps), len(sharded.Steps))
	}
	for i := range native.Steps {
		n, s := native.Steps[i], sharded.Steps[i]
		if n.Label != s.Label || n.Tau != s.Tau || n.H != s.H ||
			math.Float64bits(n.Cost) != math.Float64bits(s.Cost) {
			t.Fatalf("%s shards=%d step %d: native %+v, sharded %+v", name, shards, i, n, s)
		}
	}
	if math.Float64bits(native.Cost) != math.Float64bits(sharded.Cost) || native.MaxTau != sharded.MaxTau {
		t.Fatalf("%s shards=%d: total cost/MaxTau diverged: native (%x, %d), sharded (%x, %d)",
			name, shards, math.Float64bits(native.Cost), native.MaxTau,
			math.Float64bits(sharded.Cost), sharded.MaxTau)
	}
	for p := range native.Contexts {
		if !reflect.DeepEqual(native.Contexts[p], sharded.Contexts[p]) {
			t.Fatalf("%s shards=%d: sharded engine diverged at proc %d", name, shards, p)
		}
	}
}

// The randomized five-path equivalence sweep: pseudo-random programs
// with arbitrary label structures and bounded-fan-in random
// communication must produce bit-identical final contexts on the native
// engine, the sharded engine and all three simulators, across machine
// sizes, step counts, shard counts and access functions.
func TestRandomProgramEquivalence(t *testing.T) {
	funcs := []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}}
	var cases int
	for _, v := range []int{4, 16, 32} {
		for _, steps := range []int{1, 4, 9} {
			for seed := uint64(1); seed <= 4; seed++ {
				prog := progtest.RandomProgram(progtest.RandomSpec{
					V: v, Steps: steps, MaxMsgs: 1, Seed: seed,
				})
				native, err := dbsp.Run(prog, cost.Const{C: 1})
				if err != nil {
					t.Fatalf("%s native: %v", prog.Name, err)
				}
				f := funcs[cases%len(funcs)]
				cases++

				shards := []int{1, 3, v, v + 7, 0}[cases%5]
				sh, err := dbsp.RunSharded(prog, cost.Const{C: 1}, shards)
				if err != nil {
					t.Fatalf("%s sharded(shards=%d): %v", prog.Name, shards, err)
				}
				requireShardedAgrees(t, prog.Name, shards, native, sh)

				h, err := OnHMM(prog, f)
				if err != nil {
					t.Fatalf("%s hmm(%s): %v", prog.Name, f.Name(), err)
				}
				b, err := OnBT(prog, f)
				if err != nil {
					t.Fatalf("%s bt(%s): %v", prog.Name, f.Name(), err)
				}
				vp := 1 << uint(cases%(dbsp.Log2(v)+1))
				s, err := OnDBSP(prog, f, vp)
				if err != nil {
					t.Fatalf("%s selfsim(v'=%d): %v", prog.Name, vp, err)
				}
				for p := range native.Contexts {
					if !reflect.DeepEqual(native.Contexts[p], h.Contexts[p]) {
						t.Fatalf("%s f=%s: HMM diverged at proc %d", prog.Name, f.Name(), p)
					}
					if !reflect.DeepEqual(native.Contexts[p], b.Contexts[p]) {
						t.Fatalf("%s f=%s: BT diverged at proc %d", prog.Name, f.Name(), p)
					}
					if !reflect.DeepEqual(native.Contexts[p], s.Contexts[p]) {
						t.Fatalf("%s f=%s v'=%d: selfsim diverged at proc %d", prog.Name, f.Name(), vp, p)
					}
				}
			}
		}
	}
	if cases < 30 {
		t.Fatalf("only %d fuzz cases ran", cases)
	}
}

// FuzzEnginesAgree is the differential fuzz target across all five
// execution paths: the fuzzer's bytes pick a machine size, step count,
// message bound, generator seed, access function, self-simulation
// target size and shard count; the derived random program must then
// produce bit-identical final contexts on the native engine, the
// sharded engine and every simulator — and the sharded engine must
// additionally match the native per-step costs and h-relations bit for
// bit (the simulators charge their own simulation costs, so only their
// contexts are compared). shardsRaw exercises shards=1, shards>v and
// the GOMAXPROCS default (0). Any divergence — in memory contents, in
// a charged float64, or in which path rejects the program — is a bug
// in an engine's delivery, accumulation or layout translation.
func FuzzEnginesAgree(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(1), uint64(1), uint8(0), uint8(1), uint8(1))
	f.Add(uint8(5), uint8(9), uint8(2), uint64(42), uint8(1), uint8(5), uint8(7))
	f.Add(uint8(0), uint8(0), uint8(3), uint64(7), uint8(2), uint8(0), uint8(0))
	f.Add(uint8(4), uint8(6), uint8(1), uint64(1<<40), uint8(1), uint8(2), uint8(39))
	f.Fuzz(func(t *testing.T, vRaw, stepsRaw, msgsRaw uint8, seed uint64, fRaw, vpRaw, shardsRaw uint8) {
		v := 1 << (vRaw % 6) // 1..32 processors
		steps := int(stepsRaw % 10)
		maxMsgs := 1 + int(msgsRaw%3)
		prog := progtest.RandomProgram(progtest.RandomSpec{
			V: v, Steps: steps, MaxMsgs: maxMsgs, Seed: seed,
		})
		af := []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}, cost.Const{C: 2}}[fRaw%3]
		native, err := dbsp.Run(prog, af)
		if err != nil {
			t.Fatalf("%s native: %v", prog.Name, err)
		}
		shards := int(shardsRaw % 40) // 0 = engine default; covers 1 and shards > v
		sh, err := dbsp.RunSharded(prog, af, shards)
		if err != nil {
			t.Fatalf("%s sharded(shards=%d): %v", prog.Name, shards, err)
		}
		requireShardedAgrees(t, prog.Name, shards, native, sh)
		h, err := OnHMM(prog, af)
		if err != nil {
			t.Fatalf("%s hmm(%s): %v", prog.Name, af.Name(), err)
		}
		b, err := OnBT(prog, af)
		if err != nil {
			t.Fatalf("%s bt(%s): %v", prog.Name, af.Name(), err)
		}
		vp := 1 << (int(vpRaw) % (dbsp.Log2(v) + 1))
		s, err := OnDBSP(prog, af, vp)
		if err != nil {
			t.Fatalf("%s selfsim(v'=%d): %v", prog.Name, vp, err)
		}
		for p := range native.Contexts {
			if !reflect.DeepEqual(native.Contexts[p], h.Contexts[p]) {
				t.Fatalf("%s f=%s: HMM diverged at proc %d", prog.Name, af.Name(), p)
			}
			if !reflect.DeepEqual(native.Contexts[p], b.Contexts[p]) {
				t.Fatalf("%s f=%s: BT diverged at proc %d", prog.Name, af.Name(), p)
			}
			if !reflect.DeepEqual(native.Contexts[p], s.Contexts[p]) {
				t.Fatalf("%s f=%s v'=%d: selfsim diverged at proc %d", prog.Name, af.Name(), vp, p)
			}
		}
	})
}

// Determinism of the generator itself: same spec, same program
// behaviour.
func TestRandomProgramDeterministic(t *testing.T) {
	spec := progtest.RandomSpec{V: 16, Steps: 5, MaxMsgs: 1, Seed: 9}
	a, err := dbsp.Run(progtest.RandomProgram(spec), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dbsp.Run(progtest.RandomProgram(spec), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Contexts, b.Contexts) {
		t.Fatal("RandomProgram not deterministic")
	}
}
