package core

import (
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
)

// The randomized four-path equivalence sweep: pseudo-random programs
// with arbitrary label structures and bounded-fan-in random
// communication must produce bit-identical final contexts on the native
// engine and on all three simulators, across machine sizes, step counts
// and access functions.
func TestRandomProgramEquivalence(t *testing.T) {
	funcs := []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}}
	var cases int
	for _, v := range []int{4, 16, 32} {
		for _, steps := range []int{1, 4, 9} {
			for seed := uint64(1); seed <= 4; seed++ {
				prog := progtest.RandomProgram(progtest.RandomSpec{
					V: v, Steps: steps, MaxMsgs: 1, Seed: seed,
				})
				native, err := dbsp.Run(prog, cost.Const{C: 1})
				if err != nil {
					t.Fatalf("%s native: %v", prog.Name, err)
				}
				f := funcs[cases%len(funcs)]
				cases++

				h, err := OnHMM(prog, f)
				if err != nil {
					t.Fatalf("%s hmm(%s): %v", prog.Name, f.Name(), err)
				}
				b, err := OnBT(prog, f)
				if err != nil {
					t.Fatalf("%s bt(%s): %v", prog.Name, f.Name(), err)
				}
				vp := 1 << uint(cases%(dbsp.Log2(v)+1))
				s, err := OnDBSP(prog, f, vp)
				if err != nil {
					t.Fatalf("%s selfsim(v'=%d): %v", prog.Name, vp, err)
				}
				for p := range native.Contexts {
					if !reflect.DeepEqual(native.Contexts[p], h.Contexts[p]) {
						t.Fatalf("%s f=%s: HMM diverged at proc %d", prog.Name, f.Name(), p)
					}
					if !reflect.DeepEqual(native.Contexts[p], b.Contexts[p]) {
						t.Fatalf("%s f=%s: BT diverged at proc %d", prog.Name, f.Name(), p)
					}
					if !reflect.DeepEqual(native.Contexts[p], s.Contexts[p]) {
						t.Fatalf("%s f=%s v'=%d: selfsim diverged at proc %d", prog.Name, f.Name(), vp, p)
					}
				}
			}
		}
	}
	if cases < 30 {
		t.Fatalf("only %d fuzz cases ran", cases)
	}
}

// FuzzEnginesAgree is the differential fuzz target across all four
// execution paths: the fuzzer's bytes pick a machine size, step count,
// message bound, generator seed, access function and self-simulation
// target size; the derived random program must then produce
// bit-identical final contexts on the native engine and on every
// simulator. Any divergence — in memory contents or in which path
// rejects the program — is a bug in a simulator's delivery or layout
// translation.
func FuzzEnginesAgree(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(1), uint64(1), uint8(0), uint8(1))
	f.Add(uint8(5), uint8(9), uint8(2), uint64(42), uint8(1), uint8(5))
	f.Add(uint8(0), uint8(0), uint8(3), uint64(7), uint8(2), uint8(0))
	f.Add(uint8(4), uint8(6), uint8(1), uint64(1<<40), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, vRaw, stepsRaw, msgsRaw uint8, seed uint64, fRaw, vpRaw uint8) {
		v := 1 << (vRaw % 6) // 1..32 processors
		steps := int(stepsRaw % 10)
		maxMsgs := 1 + int(msgsRaw%3)
		prog := progtest.RandomProgram(progtest.RandomSpec{
			V: v, Steps: steps, MaxMsgs: maxMsgs, Seed: seed,
		})
		af := []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}, cost.Const{C: 2}}[fRaw%3]
		native, err := dbsp.Run(prog, af)
		if err != nil {
			t.Fatalf("%s native: %v", prog.Name, err)
		}
		h, err := OnHMM(prog, af)
		if err != nil {
			t.Fatalf("%s hmm(%s): %v", prog.Name, af.Name(), err)
		}
		b, err := OnBT(prog, af)
		if err != nil {
			t.Fatalf("%s bt(%s): %v", prog.Name, af.Name(), err)
		}
		vp := 1 << (int(vpRaw) % (dbsp.Log2(v) + 1))
		s, err := OnDBSP(prog, af, vp)
		if err != nil {
			t.Fatalf("%s selfsim(v'=%d): %v", prog.Name, vp, err)
		}
		for p := range native.Contexts {
			if !reflect.DeepEqual(native.Contexts[p], h.Contexts[p]) {
				t.Fatalf("%s f=%s: HMM diverged at proc %d", prog.Name, af.Name(), p)
			}
			if !reflect.DeepEqual(native.Contexts[p], b.Contexts[p]) {
				t.Fatalf("%s f=%s: BT diverged at proc %d", prog.Name, af.Name(), p)
			}
			if !reflect.DeepEqual(native.Contexts[p], s.Contexts[p]) {
				t.Fatalf("%s f=%s v'=%d: selfsim diverged at proc %d", prog.Name, af.Name(), vp, p)
			}
		}
	})
}

// Determinism of the generator itself: same spec, same program
// behaviour.
func TestRandomProgramDeterministic(t *testing.T) {
	spec := progtest.RandomSpec{V: 16, Steps: 5, MaxMsgs: 1, Seed: 9}
	a, err := dbsp.Run(progtest.RandomProgram(spec), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dbsp.Run(progtest.RandomProgram(spec), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Contexts, b.Contexts) {
		t.Fatal("RandomProgram not deterministic")
	}
}
