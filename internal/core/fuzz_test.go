package core

import (
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
)

// The randomized four-path equivalence sweep: pseudo-random programs
// with arbitrary label structures and bounded-fan-in random
// communication must produce bit-identical final contexts on the native
// engine and on all three simulators, across machine sizes, step counts
// and access functions.
func TestRandomProgramEquivalence(t *testing.T) {
	funcs := []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}}
	var cases int
	for _, v := range []int{4, 16, 32} {
		for _, steps := range []int{1, 4, 9} {
			for seed := uint64(1); seed <= 4; seed++ {
				prog := progtest.RandomProgram(progtest.RandomSpec{
					V: v, Steps: steps, MaxMsgs: 1, Seed: seed,
				})
				native, err := dbsp.Run(prog, cost.Const{C: 1})
				if err != nil {
					t.Fatalf("%s native: %v", prog.Name, err)
				}
				f := funcs[cases%len(funcs)]
				cases++

				h, err := OnHMM(prog, f)
				if err != nil {
					t.Fatalf("%s hmm(%s): %v", prog.Name, f.Name(), err)
				}
				b, err := OnBT(prog, f)
				if err != nil {
					t.Fatalf("%s bt(%s): %v", prog.Name, f.Name(), err)
				}
				vp := 1 << uint(cases%(dbsp.Log2(v)+1))
				s, err := OnDBSP(prog, f, vp)
				if err != nil {
					t.Fatalf("%s selfsim(v'=%d): %v", prog.Name, vp, err)
				}
				for p := range native.Contexts {
					if !reflect.DeepEqual(native.Contexts[p], h.Contexts[p]) {
						t.Fatalf("%s f=%s: HMM diverged at proc %d", prog.Name, f.Name(), p)
					}
					if !reflect.DeepEqual(native.Contexts[p], b.Contexts[p]) {
						t.Fatalf("%s f=%s: BT diverged at proc %d", prog.Name, f.Name(), p)
					}
					if !reflect.DeepEqual(native.Contexts[p], s.Contexts[p]) {
						t.Fatalf("%s f=%s v'=%d: selfsim diverged at proc %d", prog.Name, f.Name(), vp, p)
					}
				}
			}
		}
	}
	if cases < 30 {
		t.Fatalf("only %d fuzz cases ran", cases)
	}
}

// Determinism of the generator itself: same spec, same program
// behaviour.
func TestRandomProgramDeterministic(t *testing.T) {
	spec := progtest.RandomSpec{V: 16, Steps: 5, MaxMsgs: 1, Seed: 9}
	a, err := dbsp.Run(progtest.RandomProgram(spec), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dbsp.Run(progtest.RandomProgram(spec), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Contexts, b.Contexts) {
		t.Fatal("RandomProgram not deterministic")
	}
}
