package btsim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
)

func assertSameContexts(t *testing.T, prog *dbsp.Program, got [][]Word) {
	t.Helper()
	native, err := dbsp.Run(prog, cost.Const{C: 1})
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	for p := range native.Contexts {
		if !reflect.DeepEqual(native.Contexts[p], got[p]) {
			t.Fatalf("proc %d diverged:\nnative %v\nsim    %v", p, native.Contexts[p], got[p])
		}
	}
}

func TestUnpackedBlock(t *testing.T) {
	want := map[int]int64{0: 0, 1: 2, 2: 4, 3: 5, 4: 8, 5: 9, 6: 10, 7: 11}
	for j, pos := range want {
		if got := unpackedBlock(j); got != pos {
			t.Errorf("unpackedBlock(%d) = %d, want %d", j, got, pos)
		}
	}
	// Positions at most double (Section 5.1).
	for j := 1; j < 1<<12; j++ {
		if got := unpackedBlock(j); got > int64(2*j) {
			t.Errorf("unpackedBlock(%d) = %d > 2j", j, got)
		}
	}
}

func TestSimulateMatchesNativeDescending(t *testing.T) {
	prog := progtest.Rotate(16, progtest.Descending(16)...)
	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestSimulateMatchesNativeMixedLabels(t *testing.T) {
	for _, labels := range [][]int{
		{0, 2, 1, 0, 3, 0},
		{4, 4, 4, 0},
		{2, 3, 3, 1, 2, 0},
		{0, 0, 0},
		{4, 0, 4, 0},
	} {
		prog := progtest.Rotate(16, labels...)
		for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}, cost.Poly{Alpha: 0.3}} {
			res, err := Simulate(prog, f, &Options{CheckInvariants: true})
			if err != nil {
				t.Fatalf("labels %v f=%s: %v", labels, f.Name(), err)
			}
			assertSameContexts(t, prog, res.Contexts)
		}
	}
}

func TestSimulateLargerMachine(t *testing.T) {
	prog := progtest.Rotate(128, progtest.Descending(128)...)
	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
	if res.Blocks.Copies == 0 {
		t.Error("expected block transfers")
	}
}

func TestSimulateSingleProcessor(t *testing.T) {
	prog := progtest.Rotate(1)
	res, err := Simulate(prog, cost.Log{}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestSimulateComputeOnly(t *testing.T) {
	prog := progtest.ComputeOnly(64, 3, 5, 3, 1, 0)
	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestSimulateRejectsBadInput(t *testing.T) {
	good := progtest.Rotate(8, 1, 0)
	if _, err := Simulate(good, nil, nil); err == nil {
		t.Error("nil access function accepted")
	}
	empty := &dbsp.Program{Name: "empty", V: 8, Layout: dbsp.Layout{Data: 1}}
	if _, err := Simulate(empty, cost.Log{}, nil); err == nil {
		t.Error("empty program accepted")
	}
	nonGlobal := progtest.Rotate(8, 1, 0)
	nonGlobal.Steps = nonGlobal.Steps[:1]
	if _, err := Simulate(nonGlobal, cost.Log{}, nil); err == nil {
		t.Error("program without global end accepted")
	}
}

// Theorem 12: simulated cost is O(v·(τ + µ·Σ λ_i·log(µ·v/2^i))), and —
// the headline — nearly independent of the access function f.
func TestTheorem12Shape(t *testing.T) {
	var lo, hi = math.Inf(1), 0.0
	f := cost.Poly{Alpha: 0.5}
	for _, v := range []int{16, 64, 256} {
		prog := progtest.Rotate(v, progtest.Descending(v)...)
		res, err := Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		native, err := dbsp.Run(prog, cost.Const{C: 1})
		if err != nil {
			t.Fatal(err)
		}
		mu := int64(prog.Mu())
		lam := prog.Lambda(true)
		pred := float64(native.TotalTau())
		for i, li := range lam {
			pred += float64(mu) * float64(li) * math.Log2(float64(mu*int64(v>>uint(i)))+2)
		}
		pred *= float64(v)
		ratio := res.HostCost / pred
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
	}
	if lo <= 0 || hi/lo > 10 {
		t.Errorf("Theorem 12 ratio drifts across v: lo=%g hi=%g", lo, hi)
	}
}

// The f-independence claim: the same program simulated under x^0.3,
// x^0.5 and log x must cost within a small constant factor.
func TestTheorem12FIndependence(t *testing.T) {
	v := 128
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	var costs []float64
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.3}, cost.Poly{Alpha: 0.5}, cost.Log{}} {
		res, err := Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.HostCost)
	}
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	if hi/lo > 3 {
		t.Errorf("BT simulation cost varies %gx across access functions: %v", hi/lo, costs)
	}
}

// The BT simulation must overtake the HMM simulation as v grows for
// steep f: block transfer hides the access costs (Section 5 vs
// Section 3). The mechanical crossover for f = x^0.7 falls between
// v = 256 and v = 1024; the HMM/BT cost ratio must increase with v and
// exceed 1 at v = 1024.
func TestBTBeatsHMMForSteepF(t *testing.T) {
	f := cost.Poly{Alpha: 0.7}
	prev := 0.0
	for _, v := range []int{64, 256, 1024} {
		prog := progtest.Rotate(v, progtest.Descending(v)...)
		b, err := Simulate(prog, f, &Options{Alpha: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		h, err := hmmsim.Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := h.HostCost / b.HostCost
		if ratio <= prev {
			t.Errorf("v=%d: HMM/BT ratio %.2f did not grow (prev %.2f)", v, ratio, prev)
		}
		if v == 1024 && ratio <= 1 {
			t.Errorf("v=1024: BT (%.3g) has not overtaken HMM (%.3g)", b.HostCost, h.HostCost)
		}
		prev = ratio
	}
}

func TestResultFields(t *testing.T) {
	prog := progtest.Rotate(8, 2, 0)
	res, err := Simulate(prog, cost.Log{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine == nil || res.HostCost <= 0 {
		t.Error("incomplete result")
	}
	if res.SmoothedSteps < len(prog.Steps) {
		t.Error("smoothing shrank the program")
	}
	if res.Rounds == 0 {
		t.Error("no rounds counted")
	}
}

func TestNaiveMatchesNative(t *testing.T) {
	prog := progtest.Rotate(16, 2, 3, 1, 0, 4, 0)
	res, err := SimulateNaive(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

// E10-style: the Figure 5 scheduler must beat the step-by-step baseline
// by a growing factor on fine-superstep-heavy programs.
func TestScheduledBeatsNaive(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	prevGain := 0.0
	for _, v := range []int{64, 256, 1024} {
		prog := progtest.Rotate(v, progtest.Fine(v, 12)...)
		sched, err := Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := SimulateNaive(prog, f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sched.Contexts, naive.Contexts) {
			t.Fatal("scheduled and naive BT simulations disagree")
		}
		gain := naive.HostCost / sched.HostCost
		if gain <= 1 {
			t.Errorf("v=%d: naive (%g) not worse than scheduled (%g)", v, naive.HostCost, sched.HostCost)
		}
		if gain < prevGain {
			t.Errorf("v=%d: gain %.2f decreased from %.2f; want growing", v, gain, prevGain)
		}
		prevGain = gain
	}
}

// Random-program sweep with invariant checking: arbitrary label
// structures and random bounded-fan-in communication through the full
// BT machinery.
func TestRandomProgramsBT(t *testing.T) {
	for _, v := range []int{16, 64} {
		for seed := uint64(1); seed <= 3; seed++ {
			prog := progtest.RandomProgram(progtest.RandomSpec{V: v, Steps: 6, MaxMsgs: 1, Seed: seed})
			res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
			if err != nil {
				t.Fatalf("%s: %v", prog.Name, err)
			}
			assertSameContexts(t, prog, res.Contexts)
		}
	}
}
