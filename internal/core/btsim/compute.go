package btsim

import (
	"repro/internal/bt"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

// compute simulates the local computation of superstep s for the
// cluster of n blocks packed at the top of memory (processors
// firstProc..firstProc+n-1 in order), following the COMPUTE recursion
// of Figure 6: contexts are staged to the top in chunks of c(n), each
// chunk processed recursively, with the free blocks [n, 2n) providing
// the room the shifts and swaps need. Overhead is O(µ·n·c*(n)).
func (st *state) compute(n int64, firstProc, s int) {
	if n == 1 {
		store := &btStore{m: st.m, base: 0}
		c := dbsp.NewCtx(store, st.layout, firstProc, st.v, st.prog.Steps[s].Label)
		st.prog.Steps[s].Run(c)
		return
	}
	mu := st.mu
	c := cost.Chunk(st.f, mu, n) // power of two, <= n/2
	t := n / c
	// Shift blocks [c, n) right by c, opening the chunk-swap buffer at
	// [c, 2c).
	st.shiftRight(c*mu, (n-c)*mu, c*mu)
	st.compute(c, firstProc, s)
	for j := int64(2); j <= t; j++ {
		st.swapChunk(j, c)
		st.compute(c, firstProc+int((j-1)*c), s)
		st.swapChunk(j, c)
	}
	// Shift back.
	st.shiftLeft(2*c*mu, (n-c)*mu, c*mu)
}

// swapChunk exchanges blocks [0, c) with blocks [j·c, (j+1)·c) using
// the free region [c, 2c) as scratch: three block transfers.
func (st *state) swapChunk(j, c int64) {
	mu := st.mu
	st.m.CopyRange(0, c*mu, c*mu)
	st.m.CopyRange(j*c*mu, 0, c*mu)
	st.m.CopyRange(c*mu, j*c*mu, c*mu)
}

// btStore adapts the host BT machine to the dbsp.Store interface for a
// context staged at the top of memory.
type btStore struct {
	m    *bt.Machine
	base int64
}

func (s *btStore) Load(off int) Word   { return s.m.Read(s.base + int64(off)) }
func (s *btStore) Put(off int, v Word) { s.m.Write(s.base+int64(off), v) }
func (s *btStore) Work(n int64)        { s.m.ChargeOps(n) }
