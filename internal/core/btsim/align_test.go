package btsim

import (
	"math/rand"
	"testing"

	"repro/internal/bt"
	"repro/internal/cost"
)

// buildAlignFixture packs runs of the given lengths (run j has id j,
// values 1000·j + k) at the top of a machine satisfying the Align
// memory contract, and returns the machine.
func buildAlignFixture(f cost.Func, mu int64, lens []int) *bt.Machine {
	n := int64(len(lens))
	m := bt.New(f, 2*n*mu+n*mu/2+16)
	// Sentinel-fill the packed region and the pool.
	for x := int64(0); x < n*mu; x++ {
		m.Poke(x, alignSentinel)
	}
	for x := 2 * n * mu; x < 2*n*mu+n*mu/2; x++ {
		m.Poke(x, alignSentinel)
	}
	off := int64(0)
	for j, l := range lens {
		for k := 0; k < l; k++ {
			m.Poke(off, int64(j))
			m.Poke(off+1, int64(1000*j+k))
			off += 2
		}
	}
	return m
}

func checkAligned(t *testing.T, m *bt.Machine, mu int64, lens []int) {
	t.Helper()
	for j, l := range lens {
		base := int64(j) * mu
		for k := 0; k < l; k++ {
			if id := m.Peek(base + int64(2*k)); id != int64(j) {
				t.Fatalf("run %d element %d: id=%d", j, k, id)
			}
			if v := m.Peek(base + int64(2*k) + 1); v != int64(1000*j+k) {
				t.Fatalf("run %d element %d: value=%d, want %d", j, k, v, 1000*j+k)
			}
		}
	}
}

func TestAlignUniformRuns(t *testing.T) {
	mu := int64(8)
	lens := []int{2, 2, 2, 2}
	m := buildAlignFixture(cost.Poly{Alpha: 0.5}, mu, lens)
	Align(m, mu, int64(len(lens)))
	checkAligned(t, m, mu, lens)
}

func TestAlignRaggedRuns(t *testing.T) {
	mu := int64(8)
	for _, lens := range [][]int{
		{4, 0, 1, 3},
		{0, 0, 0, 4},
		{4, 4, 4, 4},
		{1, 0, 0, 0, 0, 0, 0, 4},
		{0, 1, 2, 3, 4, 3, 2, 1},
	} {
		m := buildAlignFixture(cost.Log{}, mu, lens)
		Align(m, mu, int64(len(lens)))
		checkAligned(t, m, mu, lens)
	}
}

func TestAlignSingleRun(t *testing.T) {
	mu := int64(6)
	lens := []int{3}
	m := buildAlignFixture(cost.Log{}, mu, lens)
	Align(m, mu, 1)
	checkAligned(t, m, mu, lens)
}

func TestAlignRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mu := int64(10)
	for trial := 0; trial < 30; trial++ {
		n := 1 << (1 + rng.Intn(5)) // 2..32 runs
		lens := make([]int, n)
		for j := range lens {
			lens[j] = rng.Intn(int(mu)/2 + 1)
		}
		m := buildAlignFixture(cost.Poly{Alpha: 0.5}, mu, lens)
		Align(m, mu, int64(n))
		checkAligned(t, m, mu, lens)
	}
}

func TestAlignRejectsBadArgs(t *testing.T) {
	m := bt.New(cost.Log{}, 1024)
	for _, fn := range []func(){
		func() { Align(m, 8, 3) }, // not a power of two
		func() { Align(m, 8, 0) },
		func() { Align(m, 7, 4) }, // odd block size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on bad Align args")
				}
			}()
			fn()
		}()
	}
}

// ALIGN cost shape: O(µ·n·log(µ·n)).
func TestAlignCostShape(t *testing.T) {
	mu := int64(8)
	var prev float64
	for _, n := range []int{16, 64, 256} {
		lens := make([]int, n)
		for j := range lens {
			lens[j] = int(mu) / 2
		}
		m := buildAlignFixture(cost.Poly{Alpha: 0.5}, mu, lens)
		m.ResetStats()
		Align(m, mu, int64(n))
		perWord := m.Cost() / float64(int64(n)*mu)
		// Per-word cost grows like log(µn): at most ~2x per 4x n.
		if prev > 0 && perWord > 2.5*prev {
			t.Errorf("n=%d: per-word align cost %g grew too fast (prev %g)", n, perWord, prev)
		}
		prev = perWord
	}
}
