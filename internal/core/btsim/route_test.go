package btsim

import (
	"reflect"
	"testing"

	"repro/internal/algos"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
	"repro/internal/workload"
)

// transposeProg builds a program whose only communication is one
// declared m1×m2 transpose per cluster, plus a closing consume step.
func transposeProg(v, m1, m2 int) *dbsp.Program {
	label := dbsp.Log2(v) - dbsp.Log2(m1*m2)
	return &dbsp.Program{
		Name:   "transpose",
		V:      v,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init:   func(p int, data []dbsp.Word) { data[0] = dbsp.Word(100 + p) },
		Steps: []dbsp.Superstep{
			{
				Label:     label,
				Transpose: &dbsp.TransposeRoute{M1: m1, M2: m2},
				Run: func(c *dbsp.Ctx) {
					bs := m1 * m2
					lo := (c.ID() / bs) * bs
					rel := c.ID() - lo
					j1, j2 := rel/m2, rel%m2
					c.Send(lo+j2*m1+j1, c.Load(0))
				},
			},
			{Label: 0, Run: func(c *dbsp.Ctx) {
				src, payload := c.Recv(0)
				c.Store(1, payload*1000+dbsp.Word(src))
			}},
		},
	}
}

func TestRouteDeliveryMatchesNative(t *testing.T) {
	for _, tc := range []struct{ v, m1, m2 int }{
		{64, 8, 8}, {64, 4, 16}, {64, 16, 4}, {64, 1, 64}, {64, 64, 1},
		{256, 16, 16}, {128, 8, 16},
	} {
		prog := transposeProg(tc.v, tc.m1, tc.m2)
		res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
		if err != nil {
			t.Fatalf("v=%d %dx%d: %v", tc.v, tc.m1, tc.m2, err)
		}
		assertSameContexts(t, prog, res.Contexts)
	}
}

func TestRouteDeliveryBlockwiseUnderSmoothing(t *testing.T) {
	// Transpose declared on sub-clusters much finer than the label set's
	// bundling: the route must act blockwise.
	prog := transposeProg(256, 4, 4) // label 4 sub-clusters of 16
	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestRouteDeliveryDFTRecursive(t *testing.T) {
	// The real consumer: every transpose of the recursive DFT schedule
	// is declared; results must stay bit-identical with and without
	// route delivery.
	for _, n := range []int{64, 256} {
		prog := algos.DFTRecursive(n, workload.KeyFunc(61, n, 1<<20))
		routed, err := Simulate(prog, cost.Poly{Alpha: 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{DisableRouteDelivery: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(routed.Contexts, sorted.Contexts) {
			t.Fatalf("n=%d: route and sort deliveries disagree", n)
		}
		assertSameContexts(t, prog, routed.Contexts)
	}
}

// The Section 6 claim: route delivery makes the simulation cheaper than
// sorting delivery on transpose-heavy programs.
func TestRouteDeliveryCheaper(t *testing.T) {
	for _, n := range []int{256, 1024} {
		prog := algos.DFTRecursive(n, workload.KeyFunc(62, n, 1<<20))
		routed, err := Simulate(prog, cost.Poly{Alpha: 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{DisableRouteDelivery: true})
		if err != nil {
			t.Fatal(err)
		}
		if routed.HostCost >= sorted.HostCost {
			t.Errorf("n=%d: routed (%g) not cheaper than sorted (%g)", n, routed.HostCost, sorted.HostCost)
		}
	}
}

func TestNativeVerifiesTransposeDeclaration(t *testing.T) {
	// A lying declaration must be rejected by the native engine.
	prog := transposeProg(64, 8, 8)
	prog.Steps[0].Transpose = &dbsp.TransposeRoute{M1: 4, M2: 16} // wrong shape
	if _, err := dbsp.Run(prog, cost.Log{}); err == nil {
		t.Fatal("native engine accepted a wrong transpose declaration")
	}
	// A declaration whose size does not match any tiling is also rejected.
	prog2 := transposeProg(64, 8, 8)
	prog2.Steps[0].Transpose = &dbsp.TransposeRoute{M1: 8, M2: 4}
	if _, err := dbsp.Run(prog2, cost.Log{}); err == nil {
		t.Fatal("native engine accepted a mis-sized transpose declaration")
	}
}

func TestTransposeRouteDest(t *testing.T) {
	tr := &dbsp.TransposeRoute{M1: 2, M2: 4}
	// j = j1*4 + j2 -> j2*2 + j1
	want := map[int]int{0: 0, 1: 2, 2: 4, 3: 6, 4: 1, 5: 3, 6: 5, 7: 7}
	for j, d := range want {
		if got := tr.Dest(j); got != d {
			t.Errorf("Dest(%d) = %d, want %d", j, got, d)
		}
	}
}

func TestDirectDeliveryThresholdOption(t *testing.T) {
	prog := progtest.Rotate(64, progtest.Fine(64, 6)...)
	def, err := Simulate(prog, cost.Poly{Alpha: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{DirectDeliveryMaxBlocks: -1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{DirectDeliveryMaxBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.Contexts, off.Contexts) || !reflect.DeepEqual(def.Contexts, big.Contexts) {
		t.Fatal("threshold option changed results")
	}
	if off.HostCost <= def.HostCost {
		t.Errorf("disabling direct delivery should cost more: %g vs %g", off.HostCost, def.HostCost)
	}
}
