package btsim

import (
	"fmt"

	"repro/internal/bt"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

// SimulateNaive is the step-by-step BT baseline of Section 5.3: it
// simulates one entire superstep after another for all v processors,
// with the best block-transfer mechanics available (the COMPUTE chunk
// recursion over the whole machine and the sorting delivery), but no
// cluster scheduling whatsoever. Every superstep therefore touches all
// v contexts — paying at least the Fact 2 touching cost Θ(µ·v·f*(µ·v))
// and the full-machine delivery Θ(µ·v·log(µ·v)) regardless of the
// superstep's label — whereas the Figure 5 scheduler confines an
// i-superstep to µ·v/2^i words. Experiment E10 measures the gap.
func SimulateNaive(prog *dbsp.Program, f cost.Func) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("btsim: nil access function")
	}
	mu := int64(prog.Mu())
	v := prog.V
	memWords := 2*int64(v)*mu + deliveryFootprint(f, mu, int64(prog.Layout.MaxMsgs), int64(v)) + 64
	m := bt.New(f, memWords)
	init := dbsp.NewContexts(prog)
	for p, ctx := range init {
		m.PokeRange(int64(p)*mu, ctx)
	}
	st := &state{
		prog: prog, m: m, f: f, mu: mu, v: v, logv: dbsp.Log2(v),
		layout:    prog.Layout,
		procOf:    make([]int, v),
		posOf:     make([]int, v),
		directMax: directDeliveryMaxBlocks,
	}
	for p := 0; p < v; p++ {
		st.procOf[p] = p
		st.posOf[p] = p
	}
	// Contexts stay packed at [0, v·µ); the region [v·µ, 2v·µ) is the
	// COMPUTE working space.
	for s, step := range prog.Steps {
		if step.Run == nil {
			continue
		}
		st.compute(int64(v), 0, s)
		st.dispatchDeliver(int64(v), 0, step.Transpose)
	}
	res := &Result{
		Machine:       m,
		HostCost:      m.Cost(),
		Stats:         m.Stats(),
		Blocks:        m.BlockStats(),
		SmoothedSteps: len(prog.Steps),
	}
	res.Contexts = make([][]Word, v)
	for p := 0; p < v; p++ {
		res.Contexts[p] = m.Snapshot(int64(p)*mu, mu)
	}
	return res, nil
}
