// Package btsim implements the paper's Section 5 contribution: the
// simulation of fine-grained D-BSP(v, µ, g(x)) programs on the f(x)-BT
// machine (HMM with block transfer), exploiting spatial as well as
// temporal locality.
//
// The scheduler is the one of Section 3 (Figure 5 adds Steps 1.a/5),
// but every data movement is restructured around block transfer:
//
//   - PACK/UNPACK (Figure 4) maintain empty buffer blocks interspersed
//     with the contexts, so region swaps need at most three block
//     transfers; context addresses at most double.
//   - COMPUTE (Figure 6) simulates local computation by recursively
//     staging chunks of c(n) contexts at the top of memory, with
//     overhead TM(n) = O(µ·n·c*(n)).
//   - Message delivery sorts tagged message records with the BT sorting
//     substrate (internal/amsort, standing in for Approx-Median-Sort)
//     and merges them into the destination inboxes with streaming
//     cascades (internal/stream). Because our contexts are fixed-size,
//     the ALIGN realignment pass of the paper is unnecessary; see
//     align.go for a standalone implementation of it.
//
// Theorem 12: the simulation runs in O(v·(τ + µ·Σ_i λ_i·log(µ·v/2^i)))
// — independent of the access function f (up to the iterated-f* factors
// of the substrates), for any (2,c)-uniform f(x) = O(x^α).
package btsim

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/bt"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/smooth"
)

// Word is the storage unit shared with the machines.
type Word = bt.Word

// Options tunes the simulation.
type Options struct {
	// Labels is the smoothing label set; nil selects the Section 5.2.2
	// construction smooth.LabelsBT(f, µ, v, Alpha, 0).
	Labels []int
	// Alpha is the exponent bound with f(x) = O(x^α) used by the label
	// construction; 0 means 0.5.
	Alpha float64
	// CheckInvariants verifies the scheduler invariants every round.
	CheckInvariants bool
	// DisableRouteDelivery ignores Superstep.Transpose declarations and
	// always delivers by sorting (the Section 6 ablation, experiment
	// E17).
	DisableRouteDelivery bool
	// DirectDeliveryMaxBlocks overrides the cluster-size threshold below
	// which delivery happens word-at-a-time at the top of memory
	// (default 8; -1 disables direct delivery entirely). For the E18
	// ablation.
	DirectDeliveryMaxBlocks int
	// Obs, when non-nil, receives metrics (under the "bt." prefix) and
	// per-phase trace events. See internal/obs for the metric names and
	// how they attribute the Theorem 12 cost terms.
	Obs *obs.Observer
}

// Result reports a completed simulation.
type Result struct {
	// Machine is the host BT machine in its final state.
	Machine *bt.Machine
	// Contexts holds the final µ-word guest contexts in processor
	// order — bit-identical to a native dbsp.Run.
	Contexts [][]Word
	// HostCost is the charged f(x)-BT time.
	HostCost float64
	// Stats is the word-level accounting; Blocks the block transfers.
	Stats  hmm.Stats
	Blocks bt.BlockStats
	// Rounds and Swaps count scheduler activity.
	Rounds, Swaps int64
	// SmoothedSteps is the superstep count after smoothing.
	SmoothedSteps int
	// Labels is the label set used.
	Labels []int
}

type state struct {
	prog      *dbsp.Program // smoothed
	m         *bt.Machine
	f         cost.Func
	mu        int64
	v         int
	logv      int
	layout    dbsp.Layout
	sNext     []int
	procOf    []int // procOf[logical block] = processor
	posOf     []int // posOf[processor] = logical block
	rounds    int64
	swaps     int64
	check     bool
	noRoute   bool
	directMax int64

	// Observability (nil when Options.Obs is nil; all uses nil-safe).
	obs           *obs.Observer
	roundsC       *obs.Counter
	swapsC        *obs.Counter
	sortCompsC    *obs.Counter
	roundsByLabel []*obs.Counter
	prof          *obs.Profile // span-stack attribution under "bt"
	labelFrames   []string     // precomputed "label.<l>" profile frames
	curFrame      string       // current round's label frame ("init" pre-loop)
}

// Simulate runs prog on an f(x)-BT host. The program must end with a
// 0-superstep. f should be (2,c)-uniform with f(x) = O(x^α) for the
// label construction to apply (pass Options.Labels to override).
func Simulate(prog *dbsp.Program, f cost.Func, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("btsim: nil access function")
	}
	if len(prog.Steps) == 0 {
		return nil, fmt.Errorf("btsim: program %q has no supersteps", prog.Name)
	}
	if !prog.EndsGlobal() {
		return nil, fmt.Errorf("btsim: program %q does not end with a 0-superstep", prog.Name)
	}
	labels := opts.Labels
	if labels == nil {
		alpha := opts.Alpha
		if alpha == 0 {
			alpha = 0.5
		}
		labels = smooth.LabelsBT(f, prog.Mu(), prog.V, alpha, 0)
	}
	run, err := smooth.Smooth(prog, labels)
	if err != nil {
		return nil, err
	}

	mu := int64(prog.Mu())
	v := prog.V
	// Memory: the unpacked layout spans 2v blocks; the delivery tail
	// covers the worst-case footprint (whole-machine cluster).
	memWords := 2*int64(v)*mu + deliveryFootprint(f, mu, int64(prog.Layout.MaxMsgs), int64(v)) + 64
	m := bt.New(f, memWords)
	init := dbsp.NewContexts(prog)
	for p, ctx := range init {
		m.PokeRange(int64(p)*mu, ctx)
	}

	st := &state{
		prog: run, m: m, f: f, mu: mu, v: v, logv: dbsp.Log2(v),
		layout:    prog.Layout,
		sNext:     make([]int, v),
		procOf:    make([]int, v),
		posOf:     make([]int, v),
		check:     opts.CheckInvariants,
		noRoute:   opts.DisableRouteDelivery,
		directMax: directThreshold(opts.DirectDeliveryMaxBlocks),
	}
	for p := 0; p < v; p++ {
		st.procOf[p] = p
		st.posOf[p] = p
	}
	// Per-level word-access cost and the block-size profile are
	// recomputed through the machine's trace hooks so the always-on
	// accounting pays nothing when observability is off.
	var levelCost [hmm.DepthBuckets]float64
	if o := opts.Obs; o != nil {
		st.obs = o
		st.roundsC = o.Counter("bt.rounds")
		st.swapsC = o.Counter("bt.swaps")
		st.sortCompsC = o.Counter("bt.sort.comparisons")
		st.roundsByLabel = make([]*obs.Counter, st.logv+1)
		for l := range st.roundsByLabel {
			st.roundsByLabel[l] = o.Counter(fmt.Sprintf("bt.rounds.label.%d", l))
		}
		// Span-stack attribution: the non-dotted phase() windows folded
		// per superstep label under "bt;label.<l>;<phase>" (the initial
		// unpack predates any superstep and folds under "bt;init").
		st.prof = o.Profile().Scope("bt")
		if st.prof != nil {
			st.curFrame = "init"
			st.labelFrames = make([]string, st.logv+1)
			for l := range st.labelFrames {
				st.labelFrames[l] = fmt.Sprintf("label.%d", l)
			}
		}
		blockHist := o.Histogram("bt.blocks.words")
		m.TraceBlock = func(_, _, b int64) { blockHist.Observe(b) }
		m.Trace = func(_ hmm.Op, x int64) {
			levelCost[obs.BucketOf(x)] += f.Cost(x)
		}
	}
	// Round-start invariant: memory fully unpacked (Figure 5, line 0).
	st.phase("unpack", func() { st.unpack(0) })

	if err := st.loop(); err != nil {
		return nil, err
	}

	if o := opts.Obs; o != nil {
		m.Trace, m.TraceBlock = nil, nil
		ms := m.Stats()
		bs := m.BlockStats()
		// Copied verbatim so the report's total is exactly HostCost.
		o.FloatCounter("bt.cost.total").Add(m.Cost())
		o.Counter("bt.reads").Add(ms.Reads)
		o.Counter("bt.writes").Add(ms.Writes)
		o.Counter("bt.computeops").Add(ms.ComputeOps)
		o.Counter("bt.blocks.copies").Add(bs.Copies)
		o.Counter("bt.blocks.moved").Add(bs.Words)
		o.FloatCounter("bt.blocks.cost").Add(bs.Cost)
		o.Gauge("bt.steps.smoothed").Set(int64(len(run.Steps)))
		o.Gauge("bt.memory.words").Set(m.Size())
		for k, n := range ms.Depth {
			if n == 0 {
				continue
			}
			o.Counter(fmt.Sprintf("bt.level.%d.accesses", k)).Add(n)
			o.FloatCounter(fmt.Sprintf("bt.level.%d.cost", k)).Add(levelCost[k])
		}
	}

	res := &Result{
		Machine:       m,
		HostCost:      m.Cost(),
		Stats:         m.Stats(),
		Blocks:        m.BlockStats(),
		Rounds:        st.rounds,
		Swaps:         st.swaps,
		SmoothedSteps: len(run.Steps),
		Labels:        labels,
	}
	res.Contexts = make([][]Word, v)
	for p := 0; p < v; p++ {
		phys := unpackedBlock(st.posOf[p]) * mu
		res.Contexts[p] = m.Snapshot(phys, mu)
	}
	return res, nil
}

// unpackedBlock returns the physical block position of logical block j
// in the fully-unpacked layout (Figure 4): block 0 stays at 0; the
// group [2^k, 2^(k+1)) is packed at offset 2^(k+1), so positions at
// most double.
func unpackedBlock(j int) int64 {
	if j == 0 {
		return 0
	}
	k := bits.Len(uint(j)) - 1
	return int64(j) + int64(1)<<uint(k)
}

// unpack performs UNPACK(i) (Figure 4): starting from the top i-cluster
// packed at [0, n) blocks with [n, 2n) empty, it intersperses the empty
// blocks recursively, one block transfer per level.
func (st *state) unpack(i int) {
	for lvl := i; lvl < st.logv; lvl++ {
		n := int64(st.v>>uint(lvl)) * st.mu
		st.m.CopyRange(n/2, n, n/2)
	}
}

// pack reverses unpack: it gathers the top i-cluster into [0, n) blocks
// leaving [n, 2n) free.
func (st *state) pack(i int) {
	for lvl := st.logv - 1; lvl >= i; lvl-- {
		n := int64(st.v>>uint(lvl)) * st.mu
		st.m.CopyRange(n, n/2, n/2)
	}
}

// shiftRight moves [start, start+num) to [start+by, start+num+by)
// (word units) with ceil(num/by) disjoint block transfers, processed
// from the right so segments never overlap.
func (st *state) shiftRight(start, num, by int64) {
	if num == 0 || by == 0 {
		return
	}
	for end := num; end > 0; {
		seg := min64(by, end)
		src := start + end - seg
		st.m.CopyRange(src, src+by, seg)
		end -= seg
	}
}

// shiftLeft moves [start, start+num) to [start-by, start+num-by).
func (st *state) shiftLeft(start, num, by int64) {
	if num == 0 || by == 0 {
		return
	}
	for done := int64(0); done < num; {
		seg := min64(by, num-done)
		src := start + done
		st.m.CopyRange(src, src-by, seg)
		done += seg
	}
}

// costPhases is the declared cost partition of a BT simulation: the
// plain-named bt.cost.<phase> windows partition bt.cost.total, while
// dotted refinements (deliver.sort, ...) overlap their parent. The obs
// test sums this list against HostCost and the obspartition analyzer
// cross-checks it against the phase() call sites.
var costPhases = []string{"pack", "compute", "deliver", "swap", "unpack"}

// phase runs fn inside a cost window attributed to bt.cost.<name>.
// Dotted names ("deliver.sort") are refinements of their parent phase
// and overlap its window; plain names partition the total. With no
// observer the call is a plain function call.
func (st *state) phase(name string, fn func()) {
	if st.obs == nil {
		fn()
		return
	}
	before := st.m.Cost()
	fn()
	delta := st.m.Cost() - before
	st.obs.FloatCounter("bt.cost." + name).Add(delta)
	// Only the plain-named windows fold into the profile: dotted
	// refinements overlap their parent and would double-count stacks.
	if st.prof != nil && !strings.Contains(name, ".") {
		st.prof.Add(delta, st.curFrame, name)
	}
	if st.obs.Tracing() {
		st.obs.Emit(obs.Event{Sim: "bt", Kind: "phase", Phase: name,
			Round: st.rounds, Cost: delta})
	}
}

// loop is the while-loop of Figure 5.
func (st *state) loop() error {
	steps := st.prog.Steps
	var maxRounds int64
	for _, s := range steps {
		maxRounds += int64(1) << uint(s.Label)
	}
	maxRounds++

	for {
		st.rounds++
		st.roundsC.Inc()
		if st.rounds > maxRounds {
			return fmt.Errorf("btsim: scheduler did not terminate after %d rounds", st.rounds)
		}
		p := st.procOf[0]
		s := st.sNext[p]
		if s == len(steps) {
			return nil
		}
		label := steps[s].Label
		csize := st.v >> uint(label)
		lo := (p / csize) * csize

		if st.check {
			if err := st.verifyInvariants(s, lo, csize); err != nil {
				return err
			}
		}
		if st.roundsByLabel != nil {
			st.roundsByLabel[label].Inc()
		}
		if st.labelFrames != nil {
			st.curFrame = st.labelFrames[label]
		}

		// Step 1.a: pack the top cluster.
		st.phase("pack", func() { st.pack(label) })
		// Step 2: simulate the superstep.
		if steps[s].Run != nil {
			st.phase("compute", func() { st.compute(int64(csize), lo, s) })
			st.phase("deliver", func() { st.dispatchDeliver(int64(csize), lo, steps[s].Transpose) })
		}
		for q := lo; q < lo+csize; q++ {
			st.sNext[q] = s + 1
		}
		// Step 4: sibling cycle when the next superstep is coarser.
		if s+1 < len(steps) {
			if nextLabel := steps[s+1].Label; nextLabel < label {
				b := 1 << uint(label-nextLabel)
				j := (lo / csize) % b
				st.phase("swap", func() {
					if j > 0 {
						st.swapTopWithSibling(j, csize)
					}
					if j < b-1 {
						st.swapTopWithSibling(j+1, csize)
					}
				})
			}
		}
		// Step 5: restore the unpacked invariant.
		st.phase("unpack", func() { st.unpack(label) })
	}
}

// swapTopWithSibling exchanges the packed top cluster [0, csize) with
// sibling r (logical blocks [r·csize, (r+1)·csize), packed at its
// canonical position) using the free blocks [csize, 2·csize) as
// scratch: exactly three block transfers (Section 5.2.2's Step 4
// analysis).
func (st *state) swapTopWithSibling(r, csize int) {
	n := int64(csize) * st.mu
	s := unpackedBlock(r*csize) * st.mu
	st.m.CopyRange(0, n, n) // stash top into the buffer
	st.m.CopyRange(s, 0, n) // sibling to the top
	st.m.CopyRange(n, s, n) // stash to the sibling's home
	for k := 0; k < csize; k++ {
		a, b := k, r*csize+k
		pa, pb := st.procOf[a], st.procOf[b]
		st.procOf[a], st.procOf[b] = pb, pa
		st.posOf[pa], st.posOf[pb] = b, a
	}
	st.swaps++
	st.swapsC.Inc()
}

// verifyInvariants checks the scheduler invariants at a round start.
func (st *state) verifyInvariants(s, lo, csize int) error {
	for q := lo; q < lo+csize; q++ {
		if st.sNext[q] != s {
			return fmt.Errorf("btsim: invariant 1 violated: proc %d at step %d, cluster simulating %d", q, st.sNext[q], s)
		}
	}
	for k := 0; k < csize; k++ {
		if st.procOf[k] != lo+k {
			return fmt.Errorf("btsim: invariant 2 violated: logical block %d holds proc %d, want %d", k, st.procOf[k], lo+k)
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// directThreshold resolves the Options.DirectDeliveryMaxBlocks setting.
func directThreshold(opt int) int64 {
	switch {
	case opt < 0:
		return 0
	case opt == 0:
		return directDeliveryMaxBlocks
	default:
		return int64(opt)
	}
}
