package btsim

import (
	"fmt"
	"math/bits"

	"repro/internal/dbsp"
	"repro/internal/stream"
)

// Route delivery: the improved simulation of the paper's Section 6
// remark. When a superstep declares its communication to be a transpose
// (a rational permutation — see dbsp.TransposeRoute), the sorting phase
// of the delivery is unnecessary: the extracted records, which sit in
// sender order, are brought into destination order by log2(M1) riffle
// passes, each a single streamed traversal interleaving the two halves
// of every transpose block (one left-rotation of the block-index bits
// per pass). Cost O(m·log m) per superstep instead of the sorting
// substrate's O(m·log m·f*(m)) with larger constants — and for the
// recursive DFT schedule it turns the simulation into the optimal
// O(n·log n), as the paper observes.

// routeRecWords is the record width for route delivery: (src, payload).
const routeRecWords = 2

// routeDeliver performs the message exchange of a transpose-declared
// superstep for the cluster of n blocks packed at the top. The
// transpose acts blockwise on sub-blocks of M1·M2 processors (smoothing
// may have coarsened the simulated cluster beyond the declaring
// superstep's original granularity).
func (st *state) routeDeliver(n int64, lo int, tr *dbsp.TransposeRoute) {
	mu := st.mu
	bs := int64(tr.M1) * int64(tr.M2)
	if bs == 0 || n%bs != 0 {
		panic(fmt.Sprintf("btsim: transpose %dx%d does not tile cluster of %d", tr.M1, tr.M2, n))
	}
	p := st.planDelivery(n)

	// Space juggling and relocation exactly as in deliver().
	gap := p.end - n*mu
	ik := -1
	st.phase("deliver.juggle", func() {
		if gap > n*mu {
			label := levelOfSize(st.v, n)
			ik = coarserLevel(st, label, gap)
			st.unpack(label)
			st.pack(ik)
			nk := int64(st.v>>uint(ik)) * mu
			if nk > n*mu {
				st.shiftRight(n*mu, nk-n*mu, gap)
			}
		}
		st.shiftRight(0, n*mu, p.ctx)
	})

	// Phase 1: extract exactly one (src, payload) record per context in
	// sender order, zeroing the message counts.
	st.phase("deliver.extract", func() { st.extractRoute(&p, n, lo) })

	// Phase 2: riffle the records into destination order. Each pass
	// left-rotates the block-index bits by one: out[2i] = in[i],
	// out[2i + 1] = in[bs/2 + i], per block. Ping-pong between the
	// record and scratch regions.
	passes := bits.Len(uint(tr.M1)) - 1
	src, dst := p.rec, p.scratch
	st.phase("deliver.riffle", func() {
		for pass := 0; pass < passes; pass++ {
			for blk := int64(0); blk < n/bs; blk++ {
				base := blk * bs * routeRecWords
				half := bs / 2 * routeRecWords
				ra := stream.NewReader(st.m, p.geo, p.streamHot(0), p.streamCold(0), src+base, half)
				rb := stream.NewReader(st.m, p.geo, p.streamHot(1), p.streamCold(1), src+base+half, half)
				w := stream.NewWriter(st.m, p.geo, p.streamHot(2), p.streamCold(2), dst+base, 2*half)
				for ra.More() {
					w.Put(ra.Next())
					w.Put(ra.Next())
					w.Put(rb.Next())
					w.Put(rb.Next())
				}
				w.Close()
			}
			src, dst = dst, src
		}
		if src != p.rec {
			st.m.CopyRange(src, p.rec, n*routeRecWords)
		}
	})

	// Phase 3: merge — destination k's record is record k.
	st.phase("deliver.merge", func() { st.mergeRoute(&p, n) })

	// Undo the juggling.
	st.phase("deliver.juggle", func() {
		st.shiftLeft(p.ctx, n*mu, p.ctx)
		if ik >= 0 {
			label := levelOfSize(st.v, n)
			nk := int64(st.v>>uint(ik)) * mu
			if nk > n*mu {
				st.shiftLeft(n*mu+gap, nk-n*mu, gap)
			}
			st.unpack(ik)
			st.pack(label)
		}
	})
}

// extractRoute streams the contexts once, zeroing message counts and
// emitting the single outbox message of every context as a 2-word
// record (src, payload) in sender order.
func (st *state) extractRoute(p *deliveryPlan, n int64, lo int) {
	mu := st.mu
	l := st.layout
	r := stream.NewReader(st.m, p.geo, p.streamHot(0), p.streamCold(0), p.ctx, n*mu)
	w := stream.NewWriter(st.m, p.geo, p.streamHot(1), p.streamCold(1), p.ctx, n*mu)
	rw := stream.NewWriter(st.m, p.geo, p.streamHot(2), p.streamCold(2), p.rec, routeRecWords*n)

	inCountOff := int64(l.InCountOff())
	outCountOff := int64(l.OutCountOff())
	payloadOff := int64(l.OutboxOff(0)) + 1
	if payloadOff >= mu {
		panic("btsim: transpose superstep context has no outbox payload slot")
	}
	for b := int64(0); b < n; b++ {
		stream.Pipe(r, w, inCountOff)
		r.Next()
		w.Put(0)
		stream.Pipe(r, w, outCountOff-inCountOff-1)
		r.Next()
		w.Put(0)
		stream.Pipe(r, w, payloadOff-outCountOff-1)
		payload := r.Next()
		rw.Put(int64(lo) + b) // src
		rw.Put(payload)
		w.Put(payload)
		stream.Pipe(r, w, mu-payloadOff-1)
	}
	w.Close()
	rw.Close()
}

// mergeRoute streams the contexts a second time in lockstep with the
// riffled records, writing record k as the single inbox entry of
// context k.
func (st *state) mergeRoute(p *deliveryPlan, n int64) {
	mu := st.mu
	l := st.layout
	r := stream.NewReader(st.m, p.geo, p.streamHot(0), p.streamCold(0), p.ctx, n*mu)
	w := stream.NewWriter(st.m, p.geo, p.streamHot(1), p.streamCold(1), p.ctx, n*mu)
	rr := stream.NewReader(st.m, p.geo, p.streamHot(2), p.streamCold(2), p.rec, routeRecWords*n)

	inCountOff := int64(l.InCountOff())
	srcOff := int64(l.InboxOff(0))
	for b := int64(0); b < n; b++ {
		src := rr.Next()
		payload := rr.Next()
		stream.Pipe(r, w, inCountOff)
		r.Next()
		w.Put(1)
		r.Next()
		w.Put(src)
		r.Next()
		w.Put(payload)
		stream.Pipe(r, w, mu-srcOff-2)
	}
	w.Close()
}
