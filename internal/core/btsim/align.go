package btsim

import (
	"fmt"

	"repro/internal/bt"
)

// alignSentinel marks unused element slots; real context ids must stay
// below it.
const alignSentinel = int64(1) << 40

// Align implements the paper's ALIGN(n) subroutine (Section 5.2.1).
// After the sorting step of the paper's delivery phase, context sizes
// have changed, so the j-th context must be moved back to start at
// block j. Our delivery keeps contexts fixed-size and does not need
// this pass; Align is provided (and tested) as part of the complete
// Section 5 toolkit.
//
// Memory contract (n a power of two, µ even):
//
//	[0, X)            the packed contexts: 2-word elements (id, value),
//	                  ids nondecreasing, run j = elements with id j,
//	                  each run at most µ/2 elements;
//	[X, n·µ)          sentinel words (>= alignSentinel);
//	[n·µ, 2n·µ)       free working space;
//	[2n·µ, 2n·µ+n·µ/2) a read-only pool of sentinel words.
//
// On return, run j starts at block j (address j·µ); words between a
// run's end and the next block boundary are unspecified. Running time
// O(µ·n·log(µ·n)): each level locates the median run by binary search
// and performs O(1) block transfers of O(µ·n) words.
func Align(m *bt.Machine, mu, n int64) {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("btsim: Align needs a power-of-two context count, got %d", n))
	}
	if mu%2 != 0 {
		panic(fmt.Sprintf("btsim: Align needs an even block size, got %d", mu))
	}
	a := aligner{m: m, mu: mu, pool: 2 * n * mu}
	a.align(0, n)
}

type aligner struct {
	m    *bt.Machine
	mu   int64
	pool int64 // sentinel pool address
}

// align realigns runs [firstID, firstID+n), packed at the top of
// memory with a sentinel tail inside [0, n·µ) and free space at block n.
func (a *aligner) align(firstID, n int64) {
	if n == 1 {
		return
	}
	mu := a.mu
	half := n / 2
	// Locate the first element of run firstID+half (the region is
	// monotone by the contract, sentinels acting as +infinity).
	split := a.lowerBound(n*mu, firstID+half)
	// The upper-half runs end where the sentinels begin.
	end := a.lowerBound(n*mu, alignSentinel)
	upperLen := end - split
	// Stash the upper half in the free region at block n.
	if upperLen > 0 {
		a.m.CopyRange(split, n*mu, upperLen)
	}
	// Blank the vacated region so the lower half keeps a sentinel tail.
	if split < half*mu {
		a.m.CopyRange(a.pool, split, half*mu-split)
	}
	// Align the lower half; its free space is [half·µ, n·µ).
	a.align(firstID, half)
	// Swap the aligned lower half with the stashed upper half (three
	// block transfers via the scratch at [half·µ, n·µ)).
	a.m.SwapRangeBT(0, n*mu, half*mu, half*mu)
	// Restore the sentinel tail above the packed upper half.
	if upperLen < half*mu {
		a.m.CopyRange(a.pool, upperLen, half*mu-upperLen)
	}
	// Align the upper half.
	a.align(firstID+half, half)
	// Recombine: upper half to blocks [half, n), lower half back on top.
	a.m.CopyRange(0, half*mu, half*mu)
	a.m.CopyRange(n*mu, 0, half*mu)
}

// lowerBound returns the word offset of the first element (elements are
// 2 words) in [0, limit) whose id is >= id; the ids in the region are
// nondecreasing with sentinel padding.
func (a *aligner) lowerBound(limit int64, id int64) int64 {
	lo, hi := int64(0), limit/2
	for lo < hi {
		mid := (lo + hi) / 2
		if a.m.Read(2*mid) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 2 * lo
}
