package btsim

import (
	"repro/internal/amsort"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/stream"
)

// Message delivery for one superstep of a cluster of n blocks packed at
// the top of memory (Section 5.2.1, "Simulation of communications").
//
// Our contexts are fixed-size, so instead of sorting every context
// element and realigning with ALIGN, delivery extracts the outbox
// messages into (tag, src, payload) records, sorts them with the BT
// sorting substrate — tag = dest·(M+1) + extraction index, so records
// order by destination and then by the ascending-sender discipline the
// native engine uses — and merges them into the destination inboxes
// with a second streaming pass. All word-level work happens in
// hot-region buffers at O(1) addresses; everything else is block
// transfer. The space the sort needs (the paper's L(i_s)) is created
// exactly as in Figure 7: UNPACK(i_s), PACK(i_k), shift the siblings
// down, and reverse afterwards.

// recWords is the record width: tag, source processor, payload.
const recWords = 3

// plan captures the per-delivery region layout.
type deliveryPlan struct {
	sortPlan *amsort.Plan
	geo      *stream.Geometry
	hotBase  int64 // hot page start (absolute 0)
	hotSize  int64
	coldBase int64
	coldSize int64
	ctx      int64 // relocated context region
	rec      int64 // record region
	scratch  int64 // sort scratch region
	end      int64 // total footprint in words
	mcap     int64 // record capacity
}

// planDelivery computes the layout for a cluster of n blocks.
func (st *state) planDelivery(n int64) deliveryPlan {
	return newDeliveryPlan(st.f, st.mu, int64(st.layout.MaxMsgs), n)
}

// newDeliveryPlan computes the delivery layout from first principles so
// Simulate can size the machine tail before any state exists.
func newDeliveryPlan(f cost.Func, mu, q, n int64) deliveryPlan {
	mcap := n * q
	var p deliveryPlan
	p.mcap = mcap
	p.sortPlan = amsort.NewPlan(f, recWords, mcap)
	region := n*mu + recWords*mcap
	p.geo = stream.NewGeometry(f, region)
	// Hot page: 3 stream cascades + sort stage-0 + the per-context
	// message stash (2·Q words).
	p.hotBase = 0
	p.hotSize = 3*p.geo.HotWords() + p.sortPlan.HotWords() + 2*q
	p.coldBase = p.hotSize
	p.coldSize = 3*p.geo.ColdWords() + p.sortPlan.ColdWords()
	p.ctx = p.coldBase + p.coldSize
	p.rec = p.ctx + n*mu
	p.scratch = p.rec + recWords*mcap
	p.end = p.scratch + recWords*mcap
	return p
}

// hot/cold offsets for the three stream cascades and the sorter.
func (p *deliveryPlan) streamHot(k int64) int64 { return p.hotBase + k*p.geo.HotWords() }
func (p *deliveryPlan) streamCold(k int64) int64 {
	return p.coldBase + k*p.geo.ColdWords()
}
func (p *deliveryPlan) sortHot() int64  { return p.hotBase + 3*p.geo.HotWords() }
func (p *deliveryPlan) sortCold() int64 { return p.coldBase + 3*p.geo.ColdWords() }
func (p *deliveryPlan) stashHot() int64 {
	return p.hotBase + 3*p.geo.HotWords() + p.sortPlan.HotWords()
}

// deliveryFootprint returns the worst-case total words (from the top of
// memory) a delivery for a cluster of n blocks may use; Simulate sizes
// the machine tail with the whole-machine value.
func deliveryFootprint(f cost.Func, mu, q, n int64) int64 {
	if q == 0 {
		return 0
	}
	p := newDeliveryPlan(f, mu, q, n)
	return p.end + alignSlack
}

// dispatchDeliver chooses the delivery strategy: nothing without
// message buffers, word-level for constant-size clusters, the riffle
// routing of route.go for declared transposes, and the sorting pipeline
// otherwise.
func (st *state) dispatchDeliver(n int64, lo int, tr *dbsp.TransposeRoute) {
	if st.layout.MaxMsgs == 0 {
		return
	}
	if n <= st.directMax {
		st.deliverDirect(n, lo)
		return
	}
	if tr != nil && !st.noRoute {
		st.routeDeliver(n, lo, tr)
		return
	}
	st.deliver(n, lo)
}

// deliver performs the sorting-based message exchange of the current
// superstep for the cluster of n blocks packed at the top (processors
// lo..lo+n-1).
func (st *state) deliver(n int64, lo int) {
	mu := st.mu
	p := st.planDelivery(n)

	// Create the free gap [n·µ, p.end) below the cluster (Figure 7).
	// The free space from PACK(label) is [n·µ, 2n·µ); when more is
	// needed, pack a coarser cluster and shift the siblings down.
	gap := p.end - n*mu // words of free space required below the cluster
	ik := -1
	st.phase("deliver.juggle", func() {
		if gap > n*mu {
			label := levelOfSize(st.v, n)
			ik = coarserLevel(st, label, gap)
			st.unpack(label)
			st.pack(ik)
			nk := int64(st.v>>uint(ik)) * mu
			if nk > n*mu {
				st.shiftRight(n*mu, nk-n*mu, gap)
			}
		}

		// Relocate the cluster below the workspace.
		st.shiftRight(0, n*mu, p.ctx)
	})

	// Phase 1: extraction. Stream the contexts, zero the message
	// counts, and append one record per outbox entry.
	var msgs int64
	st.phase("deliver.extract", func() { msgs = st.extract(&p, n, lo) })

	// Phase 2: sort the records by tag.
	st.phase("deliver.sort", func() {
		if msgs > 1 {
			sp := amsort.NewPlan(st.f, recWords, msgs)
			comps := amsort.Sort(st.m, sp, p.rec, p.scratch, p.sortHot(), p.sortCold())
			st.sortCompsC.Add(comps)
		}
	})

	// Phase 3: merge the sorted records into the destination inboxes.
	st.phase("deliver.merge", func() {
		if msgs > 0 {
			st.mergeInboxes(&p, n, lo, msgs)
		}
	})

	// Move the cluster back to the top and undo the space juggling.
	st.phase("deliver.juggle", func() {
		st.shiftLeft(p.ctx, n*mu, p.ctx)
		if ik >= 0 {
			label := levelOfSize(st.v, n)
			nk := int64(st.v>>uint(ik)) * mu
			if nk > n*mu {
				st.shiftLeft(n*mu+gap, nk-n*mu, gap)
			}
			st.unpack(ik)
			st.pack(label)
		}
	})
}

// alignSlack pads the sibling shift so the gap strictly covers the
// delivery footprint.
const alignSlack = 8

// directDeliveryMaxBlocks bounds the cluster size for word-level
// delivery at the top of memory.
const directDeliveryMaxBlocks = 8

// deliverDirect performs the message exchange by direct word access for
// a cluster of n <= directDeliveryMaxBlocks blocks packed at the top:
// every touched address is below n·µ = O(µ), so each access costs O(1).
// The discipline matches dbsp.Deliver: clear inboxes, deliver in
// ascending sender order, clear outboxes.
func (st *state) deliverDirect(n int64, lo int) {
	mu := st.mu
	l := st.layout
	for b := int64(0); b < n; b++ {
		st.m.Write(b*mu+int64(l.InCountOff()), 0)
	}
	for b := int64(0); b < n; b++ {
		base := b * mu
		sent := st.m.Read(base + int64(l.OutCountOff()))
		for e := int64(0); e < sent; e++ {
			dest := st.m.Read(base + int64(l.OutboxOff(int(e))))
			payload := st.m.Read(base + int64(l.OutboxOff(int(e))) + 1)
			dbase := (dest - int64(lo)) * mu
			cnt := st.m.Read(dbase + int64(l.InCountOff()))
			st.m.Write(dbase+int64(l.InboxOff(int(cnt))), int64(lo)+b)
			st.m.Write(dbase+int64(l.InboxOff(int(cnt)))+1, payload)
			st.m.Write(dbase+int64(l.InCountOff()), cnt+1)
		}
		if sent > 0 {
			st.m.Write(base+int64(l.OutCountOff()), 0)
		}
	}
}

// levelOfSize returns the label whose clusters have n blocks.
func levelOfSize(v int, n int64) int {
	label := 0
	for int64(v>>uint(label)) > n {
		label++
	}
	return label
}

// coarserLevel returns the coarsest-needed level ik < label whose
// cluster, when packed, frees at least gap words of space; 0 when even
// the whole machine must be packed (the memory tail absorbs the rest).
func coarserLevel(st *state, label int, gap int64) int {
	for i := label - 1; i >= 0; i-- {
		if int64(st.v>>uint(i))*st.mu >= gap {
			return i
		}
	}
	return 0
}

// extract streams the cluster contexts once: message counts are zeroed
// in place and each outbox entry becomes a record (tag, src, payload)
// appended to the record region. It returns the record count.
func (st *state) extract(p *deliveryPlan, n int64, lo int) int64 {
	mu := st.mu
	l := st.layout
	r := stream.NewReader(st.m, p.geo, p.streamHot(0), p.streamCold(0), p.ctx, n*mu)
	w := stream.NewWriter(st.m, p.geo, p.streamHot(1), p.streamCold(1), p.ctx, n*mu)
	rw := stream.NewWriter(st.m, p.geo, p.streamHot(2), p.streamCold(2), p.rec, recWords*p.mcap)

	// The context layout is contiguous — data, inbox count, inbox pairs,
	// outbox count, outbox pairs — so the scan is a few special words
	// between bulk-piped default runs (Pipe charges exactly like the
	// word loop `w.Put(r.Next())` it replaces).
	inCountOff := int64(l.InCountOff())
	outCountOff := int64(l.OutCountOff())
	firstOut := int64(l.OutboxOff(0))
	var msgs int64
	for b := int64(0); b < n; b++ {
		src := lo + int(b)
		stream.Pipe(r, w, inCountOff)
		r.Next()
		w.Put(0)
		stream.Pipe(r, w, outCountOff-inCountOff-1)
		sent := r.Next()
		w.Put(0)
		for e := int64(0); e < sent; e++ {
			// Outbox entry: destination word, then payload word.
			dest := r.Next()
			payload := r.Next()
			w.Put(dest)
			w.Put(payload)
			rw.Put(dest*(p.mcap+1) + msgs)
			rw.Put(int64(src))
			rw.Put(payload)
			msgs++
		}
		stream.Pipe(r, w, mu-firstOut-2*sent)
	}
	w.Close()
	rw.Close()
	return msgs
}

// mergeInboxes streams the contexts a second time in lockstep with the
// sorted records, writing each destination's message count and entries
// into its inbox.
func (st *state) mergeInboxes(p *deliveryPlan, n int64, lo int, msgs int64) {
	mu := st.mu
	l := st.layout
	q := int64(l.MaxMsgs)
	r := stream.NewReader(st.m, p.geo, p.streamHot(0), p.streamCold(0), p.ctx, n*mu)
	w := stream.NewWriter(st.m, p.geo, p.streamHot(1), p.streamCold(1), p.ctx, n*mu)
	rr := stream.NewReader(st.m, p.geo, p.streamHot(2), p.streamCold(2), p.rec, recWords*msgs)
	stash := p.stashHot()

	inCountOff := int64(l.InCountOff())
	firstIn := int64(l.InboxOff(0))
	for b := int64(0); b < n; b++ {
		dest := int64(lo) + b
		// Collect this destination's messages into the hot stash.
		cnt := int64(0)
		for rr.More() && rr.Peek()/(p.mcap+1) == dest {
			rr.Next() // tag
			src := rr.Next()
			payload := rr.Next()
			if cnt < q {
				st.m.Write(stash+2*cnt, src)
				st.m.Write(stash+2*cnt+1, payload)
			}
			cnt++
		}
		if cnt > q {
			panic("btsim: inbox overflow during delivery")
		}
		// Stream the context through, splicing in the inbox: the data
		// prefix and the tail after the spliced entries are bulk pipes;
		// the inbox words themselves interleave a stash read per word
		// (the inbox directly follows its count in the layout).
		stream.Pipe(r, w, inCountOff)
		r.Next()
		w.Put(cnt)
		for k := int64(0); k < 2*cnt; k++ {
			r.Next()
			w.Put(st.m.Read(stash + k))
		}
		stream.Pipe(r, w, mu-firstIn-2*cnt)
	}
	w.Close()
	if rr.More() {
		panic("btsim: undelivered messages after merge")
	}
}
