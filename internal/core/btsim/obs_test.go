package btsim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/progtest"
)

// TestObservedCostAttribution is the acceptance check for the BT
// simulator: the top-level phase costs partition the run, bt.cost.total
// is EXACTLY the returned HostCost, and the machine-level counters
// mirror the Result's accounting.
func TestObservedCostAttribution(t *testing.T) {
	// Large enough to exercise the sorting delivery path (cluster above
	// the direct-delivery threshold).
	prog := progtest.Rotate(32, 5, 3, 4, 1, 2, 0)
	f := cost.Poly{Alpha: 0.5}
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)

	res, err := Simulate(prog, f, &Options{Obs: o, CheckInvariants: true})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	assertSameContexts(t, prog, res.Contexts)

	if got := reg.FloatCounter("bt.cost.total").Value(); got != res.HostCost {
		t.Errorf("bt.cost.total = %v, want exactly HostCost = %v", got, res.HostCost)
	}

	var sum float64
	for _, ph := range costPhases {
		sum += reg.FloatCounter("bt.cost." + ph).Value()
	}
	if rel := (sum - res.HostCost) / res.HostCost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("phase sum %v vs HostCost %v (rel err %v)", sum, res.HostCost, rel)
	}

	// The deliver.* refinements in turn partition the deliver phase:
	// every charged operation in deliver()/routeDeliver() happens inside
	// a sub-phase window (direct delivery would be the exception, but
	// this cluster size forces the sorting path for coarse labels; fine
	// labels use direct delivery, whose cost stays in "deliver" alone —
	// so the sub-phases can only undershoot).
	deliver := reg.FloatCounter("bt.cost.deliver").Value()
	var sub float64
	for _, s := range []string{"juggle", "extract", "sort", "merge", "riffle"} {
		sub += reg.FloatCounter("bt.cost.deliver." + s).Value()
	}
	if sub == 0 {
		t.Error("sorting delivery path not exercised (no deliver.* sub-phase cost)")
	}
	if sub > deliver*(1+1e-9) {
		t.Errorf("Σ deliver.* = %v exceeds deliver = %v", sub, deliver)
	}

	if got := reg.Counter("bt.rounds").Value(); got != res.Rounds {
		t.Errorf("bt.rounds = %d, want %d", got, res.Rounds)
	}
	if got := reg.Counter("bt.swaps").Value(); got != res.Swaps {
		t.Errorf("bt.swaps = %d, want %d", got, res.Swaps)
	}
	if got := reg.Counter("bt.blocks.copies").Value(); got != res.Blocks.Copies {
		t.Errorf("bt.blocks.copies = %d, want %d", got, res.Blocks.Copies)
	}
	if got := reg.Counter("bt.blocks.moved").Value(); got != res.Blocks.Words {
		t.Errorf("bt.blocks.moved = %d, want %d", got, res.Blocks.Words)
	}
	if got := reg.Counter("bt.sort.comparisons").Value(); got <= 0 {
		t.Errorf("bt.sort.comparisons = %d, want > 0", got)
	}

	// The block-size histogram observes every transfer once and its sum
	// is the total words moved.
	h := reg.Histogram("bt.blocks.words")
	if h.Count() != res.Blocks.Copies {
		t.Errorf("histogram count = %d, want %d copies", h.Count(), res.Blocks.Copies)
	}
	if h.Sum() != res.Blocks.Words {
		t.Errorf("histogram sum = %d, want %d words", h.Sum(), res.Blocks.Words)
	}

	// Level accesses mirror the depth profile (word accesses only;
	// block transfers are counted in bt.blocks.*).
	var levelAcc int64
	for k, n := range res.Stats.Depth {
		levelAcc += reg.Counter(fmt.Sprintf("bt.level.%d.accesses", k)).Value()
		if got := reg.Counter(fmt.Sprintf("bt.level.%d.accesses", k)).Value(); got != n {
			t.Errorf("bt.level.%d.accesses = %d, want %d", k, got, n)
		}
	}
	if levelAcc != res.Stats.Accesses() {
		t.Errorf("Σ level accesses = %d, want %d", levelAcc, res.Stats.Accesses())
	}
}

// TestObservedDisabledIdentical: an observer must not perturb the
// charged cost.
func TestObservedDisabledIdentical(t *testing.T) {
	prog := progtest.Rotate(16, 3, 2, 1, 0)
	f := cost.Log{}
	plain, err := Simulate(prog, f, nil)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	observed, err := Simulate(prog, f, &Options{Obs: obs.New(obs.NewRegistry(), nil)})
	if err != nil {
		t.Fatalf("observed: %v", err)
	}
	if plain.HostCost != observed.HostCost {
		t.Errorf("observer changed cost: %v vs %v", plain.HostCost, observed.HostCost)
	}
}

// TestProfileAttributionMatchesPhaseCosts: the folded span stacks are a
// per-label refinement of the plain bt.cost.<phase> partition — every
// non-dotted phase window folds into exactly one stack, so the profile
// total equals HostCost.
func TestProfileAttributionMatchesPhaseCosts(t *testing.T) {
	prog := progtest.Rotate(32, 5, 3, 4, 1, 2, 0)
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)
	prof := obs.NewProfile()
	o.Prof = prof.Scope("job")

	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{Obs: o})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	byPhase := make(map[string]float64)
	var total float64
	for _, sc := range prof.Folded() {
		frames := strings.Split(sc.Stack, ";")
		if len(frames) != 4 || frames[0] != "job" || frames[1] != "bt" {
			t.Fatalf("unexpected stack %q", sc.Stack)
		}
		if frames[2] != "init" && !strings.HasPrefix(frames[2], "label.") {
			t.Fatalf("unexpected label frame in %q", sc.Stack)
		}
		byPhase[frames[3]] += sc.Cost
		total += sc.Cost
	}
	for _, ph := range costPhases {
		want := reg.FloatCounter("bt.cost." + ph).Value()
		got := byPhase[ph]
		if r := (got - want) / want; r > 1e-9 || r < -1e-9 {
			t.Errorf("profile %s = %v, counter = %v", ph, got, want)
		}
	}
	if r := (total - res.HostCost) / res.HostCost; r > 1e-9 || r < -1e-9 {
		t.Errorf("profile total %v vs HostCost %v", total, res.HostCost)
	}
}
