// Package selfsim implements the Section 4 contribution: simulating a
// D-BSP(v, µ, g(x)) program on a D-BSP(v′, µ·v/v′, g(x)) with fewer
// processors, where every host processor is a g(x)-HMM of size µ·v/v′.
// Theorem 10 bounds the simulation time by
// O((v/v′)·(τ + µ·Σ_i λ_i·g(µ·v/2^i))), which for full (and in
// particular fine-grained) programs is the optimal Θ(T·v/v′) slowdown —
// the analogue of Brent's lemma showing that D-BSP with hierarchical
// memory modules integrates the network and memory hierarchies
// seamlessly (Corollary 11).
//
// The strategy follows the theorem's proof: host processor P_j owns
// guest cluster C^(log v′)_j, its memory module holding the v/v′ guest
// contexts in blocks of µ. The program is partitioned into maximal runs
// of supersteps with labels below log v′ (simulated superstep by
// superstep, with real host communication) and runs with labels at
// least log v′ (simulated independently inside each module by the
// Section 3 HMM scheduler, via hmmsim.SimulateOn with identity and
// label offsets).
package selfsim

import (
	"fmt"

	"repro/internal/core/hmmsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/smooth"
)

// Word is the storage unit shared with the machines.
type Word = hmm.Word

// Options tunes the self-simulation.
type Options struct {
	// C2 is the decay constant for the local-run label sets; 0 = 0.5.
	C2 float64
	// CheckInvariants enables the scheduler invariant checks inside the
	// local-run simulations.
	CheckInvariants bool
	// Obs, when non-nil, receives metrics (under the "self." prefix) and
	// per-phase trace events. See internal/obs for the metric names and
	// how they attribute the Theorem 10 cost terms.
	Obs *obs.Observer
}

// Result reports a completed self-simulation.
type Result struct {
	// Contexts holds the final guest contexts in global processor
	// order — bit-identical to a native run of the guest program.
	Contexts [][]Word
	// HostCost is the simulated D-BSP(v′, µ·v/v′, g) time: per phase,
	// the maximum over host processors of charged module time, plus the
	// communication term h·g(µ·v/2^i) of every global superstep.
	HostCost float64
	// ModuleCost and CommCost split HostCost into memory and router
	// contributions.
	ModuleCost, CommCost float64
	// GlobalSteps and LocalRuns count how the program was partitioned.
	GlobalSteps, LocalRuns int
}

// Simulate runs prog on a D-BSP(v′, µ·v/v′, g) host. vPrime must be a
// power of two between 1 and prog.V, and the program must end with a
// 0-superstep.
func Simulate(prog *dbsp.Program, g cost.Func, vPrime int, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("selfsim: nil bandwidth function")
	}
	if vPrime < 1 || vPrime&(vPrime-1) != 0 || vPrime > prog.V {
		return nil, fmt.Errorf("selfsim: v'=%d not a power of two in [1, %d]", vPrime, prog.V)
	}
	if !prog.EndsGlobal() {
		return nil, fmt.Errorf("selfsim: program %q does not end with a 0-superstep", prog.Name)
	}

	s := &sim{
		prog:    prog,
		g:       g,
		vPrime:  vPrime,
		perHost: prog.V / vPrime,
		logvp:   dbsp.Log2(vPrime),
		mu:      int64(prog.Mu()),
		layout:  prog.Layout,
		opts:    opts,
	}
	s.modules = make([]*hmm.Machine, vPrime)
	init := dbsp.NewContexts(prog)
	for j := 0; j < vPrime; j++ {
		s.modules[j] = hmm.New(g, int64(s.perHost)*s.mu)
		for k := 0; k < s.perHost; k++ {
			s.modules[j].PokeRange(int64(k)*s.mu, init[j*s.perHost+k])
		}
	}
	if o := opts.Obs; o != nil {
		s.obs = o
		s.costLocal = o.FloatCounter("self.cost.local")
		s.costCompute = o.FloatCounter("self.cost.compute")
		s.costPlace = o.FloatCounter("self.cost.place")
		s.costComm = o.FloatCounter("self.cost.comm")
		// Span-stack attribution: global-step phases fold under
		// "self;label.<l>;<phase>", local runs under "self;local-run".
		s.prof = o.Profile().Scope("self")
		if s.prof != nil {
			s.labelFrames = make([]string, dbsp.Log2(prog.V)+1)
			for l := range s.labelFrames {
				s.labelFrames[l] = fmt.Sprintf("label.%d", l)
			}
		}
	}
	if err := s.run(); err != nil {
		return nil, err
	}

	res := &Result{
		HostCost:    s.moduleCost + s.commCost,
		ModuleCost:  s.moduleCost,
		CommCost:    s.commCost,
		GlobalSteps: s.globalSteps,
		LocalRuns:   s.localRuns,
	}
	if o := opts.Obs; o != nil {
		// Copied verbatim so the report's total is exactly HostCost.
		o.FloatCounter("self.cost.total").Add(res.HostCost)
		o.Counter("self.global.steps").Add(int64(s.globalSteps))
		o.Counter("self.local.runs").Add(int64(s.localRuns))
		o.Gauge("self.v").Set(int64(prog.V))
		o.Gauge("self.vprime").Set(int64(vPrime))
		o.Gauge("self.perhost").Set(int64(s.perHost))
	}
	res.Contexts = make([][]Word, prog.V)
	for j := 0; j < vPrime; j++ {
		for k := 0; k < s.perHost; k++ {
			res.Contexts[j*s.perHost+k] = s.modules[j].Snapshot(int64(k)*s.mu, s.mu)
		}
	}
	return res, nil
}

// costPhases is the declared cost partition of a self-simulation: the
// four self.cost.<phase> counters sum to self.cost.total. The obs test
// sums this list against HostCost and the obspartition analyzer
// cross-checks it against the charges in Simulate.
var costPhases = []string{"local", "compute", "place", "comm"}

type sim struct {
	prog    *dbsp.Program
	g       cost.Func
	vPrime  int
	perHost int
	logvp   int
	mu      int64
	layout  dbsp.Layout
	opts    *Options
	modules []*hmm.Machine

	moduleCost  float64
	commCost    float64
	globalSteps int
	localRuns   int

	// Observability (nil-safe; nil when Options.Obs is nil). The four
	// phase counters partition HostCost: local (module time of local
	// runs), compute (Phase A of global steps), place (Phase B), comm
	// (the router term h·g(µ·v/2^i)).
	obs         *obs.Observer
	costLocal   *obs.FloatCounter
	costCompute *obs.FloatCounter
	costPlace   *obs.FloatCounter
	costComm    *obs.FloatCounter
	prof        *obs.Profile // span-stack attribution under "self"
	labelFrames []string     // precomputed "label.<l>" profile frames
}

// run partitions the program into maximal global/local runs and
// simulates each.
func (s *sim) run() error {
	steps := s.prog.Steps
	for i := 0; i < len(steps); {
		if steps[i].Label >= s.logvp {
			j := i
			for j < len(steps) && steps[j].Label >= s.logvp {
				j++
			}
			if err := s.localRun(steps[i:j], i); err != nil {
				return err
			}
			i = j
			continue
		}
		if err := s.globalStep(steps[i], i); err != nil {
			return err
		}
		i++
	}
	return nil
}

// localRun simulates a maximal run of supersteps with labels >= log v′:
// every host processor runs the Section 3 scheduler on its own module,
// independently and (conceptually) in parallel — the charged time is
// the maximum module delta.
func (s *sim) localRun(steps []dbsp.Superstep, first int) error {
	s.localRuns++
	sub := &dbsp.Program{
		Name:   s.prog.Name + "+local",
		V:      s.perHost,
		Layout: s.layout,
	}
	for _, st := range steps {
		sub.Steps = append(sub.Steps, dbsp.Superstep{Label: st.Label - s.logvp, Run: st.Run})
	}
	// Drive every local cluster to completion with a closing dummy
	// 0-superstep (the run itself need not end at the coarsest local
	// level; the dummy costs only cluster swaps).
	sub.Steps = append(sub.Steps, dbsp.Superstep{Label: 0, Run: nil})

	c2 := s.opts.C2
	if c2 == 0 {
		c2 = 0.5
	}
	labels := smooth.LabelsHMM(s.g, s.layout.Mu(), s.perHost, c2)
	var maxDelta float64
	for j := 0; j < s.vPrime; j++ {
		before := s.modules[j].Cost()
		err := hmmsim.SimulateOn(s.modules[j], sub, labels, &hmmsim.Options{
			ProcOffset:      j * s.perHost,
			GlobalV:         s.prog.V,
			LabelOffset:     s.logvp,
			CheckInvariants: s.opts.CheckInvariants,
		})
		if err != nil {
			return fmt.Errorf("selfsim: host %d: %w", j, err)
		}
		if d := s.modules[j].Cost() - before; d > maxDelta {
			maxDelta = d
		}
	}
	s.moduleCost += maxDelta
	s.costLocal.Add(maxDelta)
	if s.prof != nil {
		s.prof.Add(maxDelta, "local-run", "local")
	}
	if s.obs.Tracing() {
		s.obs.Emit(obs.Event{Sim: "self", Kind: "local-run", Step: first,
			Label: steps[0].Label, N: int64(len(steps)), Cost: maxDelta})
	}
	return nil
}

// message is an in-flight guest message routed between host processors.
type message struct {
	src, dest int
	payload   Word
}

// globalStep simulates one superstep with label < log v′: local
// computation inside every module, a host i-superstep exchanging the
// guest messages, and a host (log v′)-superstep placing them into the
// destination inboxes.
func (s *sim) globalStep(st dbsp.Superstep, index int) error {
	if st.Run == nil {
		return nil
	}
	s.globalSteps++
	costBefore := s.moduleCost + s.commCost
	l := s.layout
	mu := s.mu
	inbox := make([][]message, s.vPrime)
	sent := make([]int, s.vPrime)

	// Phase A: local computation and outbox collection, per host.
	var maxDelta float64
	for j := 0; j < s.vPrime; j++ {
		m := s.modules[j]
		before := m.Cost()
		for k := 0; k < s.perHost; k++ {
			q := j*s.perHost + k
			store := &moduleStore{m: m, base: int64(k) * mu}
			c := dbsp.NewCtx(store, l, q, s.prog.V, st.Label)
			st.Run(c)
		}
		// Collect and clear the outboxes (charged module traffic).
		for k := 0; k < s.perHost; k++ {
			base := int64(k) * mu
			n := m.Read(base + int64(l.OutCountOff()))
			for e := int64(0); e < n; e++ {
				dest := int(m.Read(base + int64(l.OutboxOff(int(e)))))
				payload := m.Read(base + int64(l.OutboxOff(int(e))) + 1)
				dj := dest / s.perHost
				inbox[dj] = append(inbox[dj], message{src: j*s.perHost + k, dest: dest, payload: payload})
				sent[j]++
			}
			if n > 0 {
				m.Write(base+int64(l.OutCountOff()), 0)
			}
		}
		if d := m.Cost() - before; d > maxDelta {
			maxDelta = d
		}
	}
	s.moduleCost += maxDelta
	s.costCompute.Add(maxDelta)
	if s.prof != nil {
		s.prof.Add(maxDelta, s.labelFrames[st.Label], "compute")
	}

	// Router charge: an h-relation of guest messages within i-clusters,
	// h the max messages per host processor, each message a remote
	// access of cost g(µ·v/2^i) (= g(µ_host·v′/2^i)).
	h := 0
	for j := 0; j < s.vPrime; j++ {
		if sent[j] > h {
			h = sent[j]
		}
		if len(inbox[j]) > h {
			h = len(inbox[j])
		}
	}
	comm := float64(h) * dbsp.CommCost(s.g, s.layout.Mu(), s.prog.V, st.Label)
	s.commCost += comm
	s.costComm.Add(comm)
	if s.prof != nil {
		s.prof.Add(comm, s.labelFrames[st.Label], "comm")
	}

	// Phase B (the log v′-superstep): clear every inbox and place the
	// received messages, in ascending global sender order.
	maxDelta = 0
	for j := 0; j < s.vPrime; j++ {
		m := s.modules[j]
		before := m.Cost()
		for k := 0; k < s.perHost; k++ {
			m.Write(int64(k)*mu+int64(l.InCountOff()), 0)
		}
		// Messages were queued in ascending (host, guest, entry) order,
		// which is ascending global sender order.
		for _, msg := range inbox[j] {
			dbase := int64(msg.dest-j*s.perHost) * mu
			n := m.Read(dbase + int64(l.InCountOff()))
			if int(n) >= l.MaxMsgs {
				return fmt.Errorf("selfsim: inbox overflow at guest %d", msg.dest)
			}
			m.Write(dbase+int64(l.InboxOff(int(n))), Word(msg.src))
			m.Write(dbase+int64(l.InboxOff(int(n)))+1, msg.payload)
			m.Write(dbase+int64(l.InCountOff()), n+1)
		}
		if d := m.Cost() - before; d > maxDelta {
			maxDelta = d
		}
	}
	s.moduleCost += maxDelta
	s.costPlace.Add(maxDelta)
	if s.prof != nil {
		s.prof.Add(maxDelta, s.labelFrames[st.Label], "place")
	}
	if s.obs.Tracing() {
		s.obs.Emit(obs.Event{Sim: "self", Kind: "global-step", Step: index,
			Label: st.Label, N: int64(h), Cost: s.moduleCost + s.commCost - costBefore})
	}
	return nil
}

// moduleStore adapts one host memory module to the dbsp.Store
// interface for a guest context at block base.
type moduleStore struct {
	m    *hmm.Machine
	base int64
}

func (s *moduleStore) Load(off int) Word   { return s.m.Read(s.base + int64(off)) }
func (s *moduleStore) Put(off int, v Word) { s.m.Write(s.base+int64(off), v) }
func (s *moduleStore) Work(n int64)        { s.m.ChargeOps(n) }
