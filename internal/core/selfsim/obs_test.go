package selfsim

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/progtest"
)

// TestObservedCostAttribution is the acceptance check for the
// self-simulation: self.cost.total is EXACTLY the returned HostCost,
// the four phase counters partition it, and the partition counters
// mirror the Result fields.
func TestObservedCostAttribution(t *testing.T) {
	v, vPrime := 16, 4
	prog := progtest.Rotate(v, 3, 1, 4, 2, 0)
	g := cost.Log{}
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(1 << 12)
	o := obs.New(reg, ring)

	res, err := Simulate(prog, g, vPrime, &Options{Obs: o})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}

	if got := reg.FloatCounter("self.cost.total").Value(); got != res.HostCost {
		t.Errorf("self.cost.total = %v, want exactly HostCost = %v", got, res.HostCost)
	}
	var sum float64
	for _, ph := range costPhases {
		sum += reg.FloatCounter("self.cost." + ph).Value()
	}
	if rel := (sum - res.HostCost) / res.HostCost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("phase sum %v vs HostCost %v (rel err %v)", sum, res.HostCost, rel)
	}
	if got := reg.FloatCounter("self.cost.comm").Value(); got != res.CommCost {
		t.Errorf("self.cost.comm = %v, want %v", got, res.CommCost)
	}
	if got := reg.Counter("self.global.steps").Value(); got != int64(res.GlobalSteps) {
		t.Errorf("self.global.steps = %d, want %d", got, res.GlobalSteps)
	}
	if got := reg.Counter("self.local.runs").Value(); got != int64(res.LocalRuns) {
		t.Errorf("self.local.runs = %d, want %d", got, res.LocalRuns)
	}
	if got := reg.Gauge("self.perhost").Value(); got != int64(v/vPrime) {
		t.Errorf("self.perhost = %d, want %d", got, v/vPrime)
	}

	// One event per global step and per local run, and their costs sum
	// to the total (each event carries its full phase-window delta).
	var globals, locals int64
	var evCost float64
	for _, e := range ring.Events() {
		switch {
		case e.Sim == "self" && e.Kind == "global-step":
			globals++
			evCost += e.Cost
		case e.Sim == "self" && e.Kind == "local-run":
			locals++
			evCost += e.Cost
		}
	}
	if globals != int64(res.GlobalSteps) || locals != int64(res.LocalRuns) {
		t.Errorf("events: %d global, %d local; want %d, %d",
			globals, locals, res.GlobalSteps, res.LocalRuns)
	}
	if rel := (evCost - res.HostCost) / res.HostCost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("Σ event cost %v vs HostCost %v", evCost, res.HostCost)
	}
}

// TestObservedDisabledIdentical: an observer must not perturb the cost.
func TestObservedDisabledIdentical(t *testing.T) {
	prog := progtest.Rotate(16, 3, 2, 1, 0)
	g := cost.Log{}
	plain, err := Simulate(prog, g, 4, nil)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	observed, err := Simulate(prog, g, 4, &Options{Obs: obs.New(obs.NewRegistry(), nil)})
	if err != nil {
		t.Fatalf("observed: %v", err)
	}
	if plain.HostCost != observed.HostCost {
		t.Errorf("observer changed cost: %v vs %v", plain.HostCost, observed.HostCost)
	}
}

// TestProfileAttributionMatchesPhaseCosts: the folded span stacks
// refine the self.cost.<phase> partition per superstep label (local
// runs fold under "local-run"), so the profile total equals HostCost.
func TestProfileAttributionMatchesPhaseCosts(t *testing.T) {
	v, vPrime := 16, 4
	prog := progtest.Rotate(v, 3, 1, 4, 2, 0)
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)
	prof := obs.NewProfile()
	o.Prof = prof.Scope("job")

	res, err := Simulate(prog, cost.Log{}, vPrime, &Options{Obs: o})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	byPhase := make(map[string]float64)
	var total float64
	for _, sc := range prof.Folded() {
		frames := strings.Split(sc.Stack, ";")
		if len(frames) != 4 || frames[0] != "job" || frames[1] != "self" {
			t.Fatalf("unexpected stack %q", sc.Stack)
		}
		byPhase[frames[3]] += sc.Cost
		total += sc.Cost
	}
	for _, ph := range costPhases {
		want := reg.FloatCounter("self.cost." + ph).Value()
		got := byPhase[ph]
		if want == 0 {
			if got != 0 {
				t.Errorf("profile %s = %v, counter 0", ph, got)
			}
			continue
		}
		if r := (got - want) / want; r > 1e-9 || r < -1e-9 {
			t.Errorf("profile %s = %v, counter = %v", ph, got, want)
		}
	}
	if r := (total - res.HostCost) / res.HostCost; r > 1e-9 || r < -1e-9 {
		t.Errorf("profile total %v vs HostCost %v", total, res.HostCost)
	}
}
