package selfsim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/progtest"
)

func assertSameContexts(t *testing.T, prog *dbsp.Program, got [][]Word) {
	t.Helper()
	native, err := dbsp.Run(prog, cost.Const{C: 1})
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	for p := range native.Contexts {
		if !reflect.DeepEqual(native.Contexts[p], got[p]) {
			t.Fatalf("proc %d diverged:\nnative %v\nsim    %v", p, native.Contexts[p], got[p])
		}
	}
}

func TestSelfSimMatchesNativeAllVPrime(t *testing.T) {
	v := 16
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	for vp := 1; vp <= v; vp *= 2 {
		res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, vp, &Options{CheckInvariants: true})
		if err != nil {
			t.Fatalf("v'=%d: %v", vp, err)
		}
		assertSameContexts(t, prog, res.Contexts)
	}
}

func TestSelfSimMixedLabels(t *testing.T) {
	for _, labels := range [][]int{
		{0, 2, 1, 0, 3, 0},
		{4, 4, 4, 0},
		{2, 3, 3, 1, 2, 0},
		{4, 0, 4, 0},
	} {
		prog := progtest.Rotate(16, labels...)
		for _, vp := range []int{1, 2, 4, 16} {
			res, err := Simulate(prog, cost.Log{}, vp, &Options{CheckInvariants: true})
			if err != nil {
				t.Fatalf("labels %v v'=%d: %v", labels, vp, err)
			}
			assertSameContexts(t, prog, res.Contexts)
		}
	}
}

func TestSelfSimRunPartitioning(t *testing.T) {
	v := 16
	// Labels 3,3 (local for v'=4), 1 (global), 2 (local), 0 (global).
	prog := progtest.Rotate(v, 3, 3, 1, 2, 0)
	res, err := Simulate(prog, cost.Log{}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// logvp = 2: labels >= 2 are local: [3,3] and [2]; global: 1, 0 and
	// the final consume step (label 0) = 3 global steps.
	if res.LocalRuns != 2 {
		t.Errorf("LocalRuns = %d, want 2", res.LocalRuns)
	}
	if res.GlobalSteps != 3 {
		t.Errorf("GlobalSteps = %d, want 3", res.GlobalSteps)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestSelfSimRejectsBadInput(t *testing.T) {
	prog := progtest.Rotate(8, 1, 0)
	if _, err := Simulate(prog, nil, 2, nil); err == nil {
		t.Error("nil g accepted")
	}
	for _, vp := range []int{0, 3, 16, -2} {
		if _, err := Simulate(prog, cost.Log{}, vp, nil); err == nil {
			t.Errorf("v'=%d accepted", vp)
		}
	}
	nonGlobal := progtest.Rotate(8, 1, 0)
	nonGlobal.Steps = nonGlobal.Steps[:1]
	if _, err := Simulate(nonGlobal, cost.Log{}, 2, nil); err == nil {
		t.Error("program without global end accepted")
	}
}

// Theorem 10 / Corollary 11 (Brent analogue): halving the processors
// roughly doubles the time. Mechanically, each halving costs between
// ~1.7x and ~3.2x (the overhead factor shrinks toward the ideal 2x as
// v′ decreases, because the constant-factor gap between router-charged
// global steps and mechanically-charged local scheduling amortises),
// and the overall normalised cost HostCost·v′/v stays within a modest
// constant band.
func TestBrentAnalogue(t *testing.T) {
	v := 64
	g := cost.Poly{Alpha: 0.5}
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	var costs []float64
	for vp := v; vp >= 1; vp /= 2 {
		res, err := Simulate(prog, g, vp, nil)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.HostCost)
	}
	prevRatio := math.Inf(1)
	for i := 1; i < len(costs); i++ {
		ratio := costs[i] / costs[i-1]
		if ratio < 1.6 || ratio > 3.6 {
			t.Errorf("halving %d: cost grew %.2fx, want ~2x (1.6..3.6)", i, ratio)
		}
		if ratio > prevRatio+0.05 {
			t.Errorf("halving %d: overhead factor %.2f not shrinking (prev %.2f)", i, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	norm0 := costs[0]                         // v′ = v
	normV := costs[len(costs)-1] / float64(v) // v′ = 1
	if normV/norm0 > 12 || norm0/normV > 12 {
		t.Errorf("Brent analogue: normalised endpoints differ too much: %g vs %g", norm0, normV)
	}
}

// With v′ = v (no loss of parallelism) the simulation must cost within
// a constant factor of the native D-BSP time with g-charged memory...
// at minimum it must not be cheaper than the native communication cost.
func TestSelfSimFullMachineSanity(t *testing.T) {
	v := 32
	g := cost.Poly{Alpha: 0.5}
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	res, err := Simulate(prog, g, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	native, err := dbsp.Run(prog, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommCost < native.CommCost()/2 {
		t.Errorf("v'=v comm cost %g below native %g", res.CommCost, native.CommCost())
	}
	if res.HostCost < native.Cost/4 {
		t.Errorf("v'=v host cost %g implausibly below native %g", res.HostCost, native.Cost)
	}
}

// The v′=1 case degenerates to the Section 3 HMM simulation: final
// contexts must match and the cost must be of the same order.
func TestSelfSimSingleHostMatchesHMMSim(t *testing.T) {
	v := 32
	g := cost.Poly{Alpha: 0.5}
	prog := progtest.Rotate(v, progtest.Descending(v)...)
	res, err := Simulate(prog, g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
	if res.CommCost != 0 {
		t.Errorf("v'=1 has comm cost %g, want 0", res.CommCost)
	}
	if res.GlobalSteps != 0 || res.LocalRuns != 1 {
		t.Errorf("v'=1 partition: %d global, %d local runs; want 0, 1", res.GlobalSteps, res.LocalRuns)
	}
}
