// Package core is the facade over the paper's three simulation schemes
// — the primary contribution of Fantozzi, Pietracaprina and Pucci,
// "Translating Submachine Locality into Locality of Reference":
//
//   - OnHMM: D-BSP(v, µ, g) → f(x)-HMM (Section 3, Theorem 5): optimal
//     Θ(v) slowdown when g = f (Corollary 6), turning submachine
//     locality into temporal locality of reference.
//   - OnBT: D-BSP(v, µ, g) → f(x)-BT (Section 5, Theorem 12): cost
//     independent of the access function, turning submachine locality
//     into combined temporal and spatial locality.
//   - OnDBSP: D-BSP(v, µ, g) → D-BSP(v′, µ·v/v′, g) with HMM processor
//     memories (Section 4, Theorem 10): the Brent-lemma analogue with
//     optimal Θ(v/v′) slowdown.
//
// Programs are written against internal/dbsp (supersteps, cluster
// labels, message-passing contexts) and can be executed natively with
// goroutine-parallel supersteps (dbsp.Run), on the sharded big-v
// engine (dbsp.RunSharded), or passed to any of the simulators below;
// final processor contexts are bit-identical across all five execution
// paths.
package core

import (
	"repro/internal/core/btsim"
	"repro/internal/core/hmmsim"
	"repro/internal/core/selfsim"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

// OnHMM simulates prog on an f(x)-HMM host (Section 3, Theorem 5).
func OnHMM(prog *dbsp.Program, f cost.Func) (*hmmsim.Result, error) {
	return hmmsim.Simulate(prog, f, nil)
}

// OnBT simulates prog on an f(x)-BT host (Section 5, Theorem 12).
func OnBT(prog *dbsp.Program, f cost.Func) (*btsim.Result, error) {
	return btsim.Simulate(prog, f, nil)
}

// OnDBSP simulates prog on a smaller D-BSP(vPrime, µ·v/vPrime, g) whose
// processors are g(x)-HMMs (Section 4, Theorem 10).
func OnDBSP(prog *dbsp.Program, g cost.Func, vPrime int) (*selfsim.Result, error) {
	return selfsim.Simulate(prog, g, vPrime, nil)
}
