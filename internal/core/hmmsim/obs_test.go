package hmmsim

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/obs"
)

// TestObservedCostAttribution is the acceptance check for the
// observability layer on the HMM simulator: the published phase costs
// partition the run, hmm.cost.total is EXACTLY the simulator's returned
// HostCost (same float64, no re-derivation), and the per-level access
// counts agree with the machine's own depth profile.
func TestObservedCostAttribution(t *testing.T) {
	prog := rotateProg(8, 3, 2, 3, 1, 2, 0)
	f := cost.Log{}
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(1 << 14)
	o := obs.New(reg, ring)

	res, err := Simulate(prog, f, &Options{Obs: o})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	assertSameContexts(t, prog, res.Contexts)

	// Exact identity: the report's total is the simulator's HostCost.
	if got := reg.FloatCounter("hmm.cost.total").Value(); got != res.HostCost {
		t.Errorf("hmm.cost.total = %v, want exactly HostCost = %v", got, res.HostCost)
	}

	// The declared partition sums to the charged cost up to float
	// rounding: every charged access happens inside one of the
	// costPhases windows (the initial context load is an uncharged
	// Poke).
	var sum float64
	for _, ph := range costPhases {
		sum += reg.FloatCounter("hmm.cost." + ph).Value()
	}
	if rel := (sum - res.HostCost) / res.HostCost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("phase sum %v vs HostCost %v (rel err %v)", sum, res.HostCost, rel)
	}

	// Counters mirror the Result fields.
	if got := reg.Counter("hmm.rounds").Value(); got != res.Rounds {
		t.Errorf("hmm.rounds = %d, want %d", got, res.Rounds)
	}
	if got := reg.Counter("hmm.swaps").Value(); got != res.Swaps {
		t.Errorf("hmm.swaps = %d, want %d", got, res.Swaps)
	}

	// Per-label round counts sum to the work rounds: every round but
	// the final termination check executes a labelled superstep.
	var byLabel int64
	for l := 0; l <= 3; l++ {
		byLabel += reg.Counter(fmt.Sprintf("hmm.rounds.label.%d", l)).Value()
	}
	if byLabel != res.Rounds-1 {
		t.Errorf("Σ hmm.rounds.label.* = %d, want %d", byLabel, res.Rounds-1)
	}

	// Level accesses mirror the machine's depth profile, and the level
	// costs sum to the access cost (total minus unit compute ops).
	var levelAcc int64
	var levelCost float64
	for k, n := range res.Stats.Depth {
		got := reg.Counter(fmt.Sprintf("hmm.level.%d.accesses", k)).Value()
		if got != n {
			t.Errorf("hmm.level.%d.accesses = %d, want %d", k, got, n)
		}
		levelAcc += got
		levelCost += reg.FloatCounter(fmt.Sprintf("hmm.level.%d.cost", k)).Value()
	}
	if levelAcc != res.Stats.Accesses() {
		t.Errorf("Σ level accesses = %d, want %d", levelAcc, res.Stats.Accesses())
	}
	accessCost := res.HostCost - float64(res.Stats.ComputeOps)
	if rel := (levelCost - accessCost) / accessCost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("Σ level cost %v vs access cost %v", levelCost, accessCost)
	}

	// One "round" trace event per round, each carrying the cost delta;
	// the event costs also sum to the total.
	var evCost float64
	var evRounds int64
	for _, e := range ring.Events() {
		if e.Sim == "hmm" && e.Kind == "round" {
			evRounds++
			evCost += e.Cost
		}
	}
	if evRounds != res.Rounds-1 {
		t.Errorf("round events = %d, want %d", evRounds, res.Rounds-1)
	}
	if rel := (evCost - res.HostCost) / res.HostCost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("Σ event cost %v vs HostCost %v", evCost, res.HostCost)
	}
}

// TestProfileAttributionMatchesPhaseCosts: with a span-stack profile
// attached, the per-label stacks sum phase-by-phase to the same
// hmm.cost.<phase> counters — the folded profile is a refinement of the
// declared cost partition, not a second accounting.
func TestProfileAttributionMatchesPhaseCosts(t *testing.T) {
	prog := rotateProg(8, 3, 2, 3, 1, 2, 0)
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)
	prof := obs.NewProfile()
	o.Prof = prof.Scope("job")

	res, err := Simulate(prog, cost.Log{}, &Options{Obs: o})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}

	byPhase := make(map[string]float64)
	var total float64
	for _, sc := range prof.Folded() {
		frames := splitStack(sc.Stack)
		if len(frames) != 4 || frames[0] != "job" || frames[1] != "hmm" {
			t.Fatalf("unexpected stack %q", sc.Stack)
		}
		byPhase[frames[3]] += sc.Cost
		total += sc.Cost
	}
	for _, ph := range costPhases {
		want := reg.FloatCounter("hmm.cost." + ph).Value()
		if got := byPhase[ph]; rel(got, want) > 1e-9 {
			t.Errorf("profile %s = %v, counter = %v", ph, got, want)
		}
	}
	if rel(total, res.HostCost) > 1e-9 {
		t.Errorf("profile total %v vs HostCost %v", total, res.HostCost)
	}
}

func splitStack(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ';' {
			i++
		}
		out = append(out, s[:i])
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func rel(a, b float64) float64 {
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

// TestObservedDisabledIdentical: running with and without an observer
// must charge the identical cost (observability must not perturb the
// simulation).
func TestObservedDisabledIdentical(t *testing.T) {
	prog := rotateProg(8, 2, 1, 0)
	f := cost.Log{}
	plain, err := Simulate(prog, f, nil)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	o := obs.New(obs.NewRegistry(), nil)
	observed, err := Simulate(prog, f, &Options{Obs: o})
	if err != nil {
		t.Fatalf("observed: %v", err)
	}
	if plain.HostCost != observed.HostCost {
		t.Errorf("observer changed cost: %v vs %v", plain.HostCost, observed.HostCost)
	}
}
