package hmmsim

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/hmm"
)

// SimulateNaive is the step-by-step baseline the paper argues against
// (Section 5.3): it simulates one entire superstep after another for
// all v processors, leaving every context in its home block. Each
// superstep therefore touches all v contexts and pays Θ(µ·v·f(µ·v))
// regardless of the superstep's label — time ω(v) per superstep for any
// unbounded access function — whereas the Figure 1 scheduler confines
// an i-superstep's traffic to the top µ·v/2^i cells. Experiment E04
// measures the gap.
func SimulateNaive(prog *dbsp.Program, f cost.Func) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("hmmsim: nil access function")
	}
	mu := int64(prog.Mu())
	v := prog.V
	l := prog.Layout
	m := hmm.New(f, int64(v)*mu)
	init := dbsp.NewContexts(prog)
	for p, ctx := range init {
		m.PokeRange(int64(p)*mu, ctx)
	}

	for s, step := range prog.Steps {
		if step.Run == nil {
			continue
		}
		// Local computation, context in place at block p.
		for p := 0; p < v; p++ {
			store := &hmmStore{m: m, base: int64(p) * mu}
			c := dbsp.NewCtx(store, l, p, v, step.Label)
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("hmmsim: naive: superstep %d proc %d: %v", s, p, r))
					}
				}()
				step.Run(c)
			}()
		}
		// Delivery: clear all inboxes, scan all outboxes in order.
		for p := 0; p < v; p++ {
			m.Write(int64(p)*mu+int64(l.InCountOff()), 0)
		}
		for p := 0; p < v; p++ {
			base := int64(p) * mu
			sent := m.Read(base + int64(l.OutCountOff()))
			for e := int64(0); e < sent; e++ {
				dest := m.Read(base + int64(l.OutboxOff(int(e))))
				payload := m.Read(base + int64(l.OutboxOff(int(e))) + 1)
				dbase := dest * mu
				n := m.Read(dbase + int64(l.InCountOff()))
				m.Write(dbase+int64(l.InboxOff(int(n))), int64(p))
				m.Write(dbase+int64(l.InboxOff(int(n)))+1, payload)
				m.Write(dbase+int64(l.InCountOff()), n+1)
			}
			if sent > 0 {
				m.Write(base+int64(l.OutCountOff()), 0)
			}
		}
	}

	res := &Result{
		Machine:       m,
		HostCost:      m.Cost(),
		Stats:         m.Stats(),
		SmoothedSteps: len(prog.Steps),
	}
	res.Contexts = make([][]Word, v)
	for p := 0; p < v; p++ {
		res.Contexts[p] = m.Snapshot(int64(p)*mu, mu)
	}
	return res, nil
}
