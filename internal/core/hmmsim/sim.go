// Package hmmsim implements the paper's core contribution (Section 3,
// Figure 1): simulating an arbitrary fine-grained D-BSP(v, µ, g(x))
// program on a sequential f(x)-HMM with the same aggregate memory, by
// turning submachine locality into temporal locality of reference.
//
// The host memory is divided into v blocks of µ cells; block j initially
// holds the context of processor P_j. The simulation proceeds in rounds,
// each simulating one superstep for one s-ready cluster whose contexts
// occupy the topmost blocks (Invariant 2), choosing the next cluster so
// that the same cluster is simulated for as many consecutive supersteps
// as possible, and cycling sibling clusters through the top of memory
// when a coarser superstep requires them all (the Figure 2 cycle).
//
// Theorem 5: the simulation runs in O(v·(τ + µ·Σ_i λ_i·f(µ·v/2^i)))
// time; with g = f the slowdown is Θ(v) (Corollary 6) — linear in the
// loss of parallelism, with no extra hierarchy-induced cost.
package hmmsim

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/smooth"
)

// Word is the storage unit shared with the machines.
type Word = hmm.Word

// Options tunes the simulation.
type Options struct {
	// Labels is the smoothing label set L. When nil, the Theorem 5 set
	// smooth.LabelsHMM(f, µ, v, C2) is used.
	Labels []int
	// C2 is the geometric decay constant of the default label-set
	// construction; 0 means 0.5.
	C2 float64
	// DisableSmoothing simulates the raw program (experiment E14's
	// ablation). The program must already be smooth over its own label
	// set, or Simulate returns an error.
	DisableSmoothing bool
	// CheckInvariants verifies Invariants 1 and 2 at the start of every
	// round (O(v) host-side work per round; for tests).
	CheckInvariants bool
	// ProcOffset and GlobalV present handlers with a global identity:
	// processor q of this (sub-)program appears as ProcOffset+q on a
	// GlobalV-processor machine, and message addressing is translated
	// accordingly. LabelOffset shifts superstep labels for the cluster
	// legality check. Zero values mean the program is self-contained.
	// These hooks exist for the Theorem 10 self-simulation, which runs
	// label-shifted sub-programs inside host memory modules.
	ProcOffset  int
	GlobalV     int
	LabelOffset int
	// Observer, when non-nil, is invoked at the start of every round
	// with the round number, the next superstep index and label, and the
	// current block-to-processor assignment (do not retain the slice).
	// cmd/memtrace uses it to render the Figure 2 cluster movements.
	Observer func(round int64, step, label int, procOfBlock []int)
	// Obs, when non-nil, receives metrics (under the "hmm." prefix)
	// and per-round trace events. See internal/obs for the metric
	// names and how they attribute the Theorem 5 cost terms.
	Obs *obs.Observer
}

// Result reports a completed simulation.
type Result struct {
	// Machine is the host HMM in its final state.
	Machine *hmm.Machine
	// Contexts holds the final µ-word context of every guest processor,
	// in processor order — bit-identical to a native dbsp.Run.
	Contexts [][]Word
	// HostCost is the charged f(x)-HMM time.
	HostCost float64
	// Stats is the host machine's operation accounting.
	Stats hmm.Stats
	// Rounds counts simulation rounds (while-loop iterations).
	Rounds int64
	// Swaps counts cluster-region swaps performed by the scheduler.
	Swaps int64
	// SmoothedSteps is the superstep count after smoothing (>= the
	// input program's).
	SmoothedSteps int
	// Labels is the label set actually used.
	Labels []int
}

// state is the simulator's control state. The paper's algorithm derives
// cluster positions from its invariants; we mirror them in host-side
// tables (posOfProc/procOfBlock), which is bookkeeping of the
// simulating program, not charged guest memory traffic.
type state struct {
	prog     *dbsp.Program // smoothed program
	m        *hmm.Machine
	mu       int64
	v        int
	sNext    []int // next superstep to simulate, per processor
	posOf    []int // block index currently holding processor p's context
	procOf   []int // processor whose context block b currently holds
	rounds   int64
	swaps    int64
	check    bool
	layout   dbsp.Layout
	procOff  int // global id of local processor 0
	globalV  int // machine size presented to handlers
	labelOff int
	observer func(round int64, step, label int, procOfBlock []int)

	// Observability (all nil-safe; nil when opts.Obs is nil).
	obs           *obs.Observer
	costCompute   *obs.FloatCounter // handler work + context accesses
	costDeliver   *obs.FloatCounter // message exchange
	costSwap      *obs.FloatCounter // Figure 2 sibling cycling
	roundsC       *obs.Counter
	swapsC        *obs.Counter
	roundsByLabel []*obs.Counter // rounds executed per superstep label
	prof          *obs.Profile   // span-stack attribution under "hmm"
	labelFrames   []string       // precomputed "label.<l>" profile frames
}

// Simulate runs prog on an f(x)-HMM host, returning the final guest
// contexts and the exact charged host cost. The program must end with a
// 0-superstep (the standard global-synchronization assumption) so that
// every cluster's work is driven to completion.
func Simulate(prog *dbsp.Program, f cost.Func, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("hmmsim: nil access function")
	}
	if len(prog.Steps) == 0 {
		return nil, fmt.Errorf("hmmsim: program %q has no supersteps", prog.Name)
	}
	if !prog.EndsGlobal() {
		return nil, fmt.Errorf("hmmsim: program %q does not end with a 0-superstep", prog.Name)
	}

	// Smooth the program over the Theorem 5 label set (or the caller's).
	run := prog
	labels := opts.Labels
	if opts.DisableSmoothing {
		labels = smooth.FromProgram(prog)
		if !prog.IsSmooth(labels) {
			return nil, fmt.Errorf("hmmsim: smoothing disabled but program %q is not smooth over its own labels", prog.Name)
		}
	} else {
		if labels == nil {
			c2 := opts.C2
			if c2 == 0 {
				c2 = 0.5
			}
			labels = smooth.LabelsHMM(f, prog.Mu(), prog.V, c2)
		}
		var err error
		run, err = smooth.Smooth(prog, labels)
		if err != nil {
			return nil, err
		}
	}

	mu := int64(prog.Mu())
	m := hmm.New(f, int64(prog.V)*mu)
	// Load the initial contexts: block j = context of P_j. The input
	// distribution is given, not charged.
	init := dbsp.NewContexts(prog)
	for p, ctx := range init {
		m.PokeRange(int64(p)*mu, ctx)
	}

	// Per-level access cost. The machine's always-on accounting keeps
	// only access counts per level (Stats.Depth); the per-level cost
	// split is recomputed through the Trace hook so the charge() hot
	// path pays nothing when observability is off.
	var levelCost [hmm.DepthBuckets]float64
	if opts.Obs != nil {
		m.Trace = func(_ hmm.Op, x int64) {
			levelCost[obs.BucketOf(x)] += f.Cost(x)
		}
	}

	st := newState(m, run, prog.Layout, opts)
	if err := st.loop(); err != nil {
		return nil, err
	}

	if o := opts.Obs; o != nil {
		m.Trace = nil
		ms := m.Stats()
		// Copied verbatim so the report's total is exactly HostCost.
		o.FloatCounter("hmm.cost.total").Add(m.Cost())
		o.Counter("hmm.reads").Add(ms.Reads)
		o.Counter("hmm.writes").Add(ms.Writes)
		o.Counter("hmm.computeops").Add(ms.ComputeOps)
		o.Gauge("hmm.steps.smoothed").Set(int64(len(run.Steps)))
		o.Gauge("hmm.memory.words").Set(m.Size())
		for k, n := range ms.Depth {
			if n == 0 {
				continue
			}
			o.Counter(fmt.Sprintf("hmm.level.%d.accesses", k)).Add(n)
			o.FloatCounter(fmt.Sprintf("hmm.level.%d.cost", k)).Add(levelCost[k])
		}
	}

	res := &Result{
		Machine:       m,
		HostCost:      m.Cost(),
		Stats:         m.Stats(),
		Rounds:        st.rounds,
		Swaps:         st.swaps,
		SmoothedSteps: len(run.Steps),
		Labels:        labels,
	}
	res.Contexts = make([][]Word, prog.V)
	for p := 0; p < prog.V; p++ {
		res.Contexts[p] = m.Snapshot(int64(st.posOf[p])*mu, mu)
	}
	return res, nil
}

// newState builds the scheduler state over an existing machine.
// costPhases is the declared cost partition of an HMM simulation: the
// top-level hmm.cost.<phase> counters sum to hmm.cost.total (the
// initial context load is an uncharged Poke). The obs test sums this
// list against HostCost and the obspartition analyzer cross-checks it
// against the charges below.
var costPhases = []string{"compute", "deliver", "swap"}

func newState(m *hmm.Machine, run *dbsp.Program, layout dbsp.Layout, opts *Options) *state {
	globalV := opts.GlobalV
	if globalV == 0 {
		globalV = run.V
	}
	st := &state{
		prog: run, m: m, mu: int64(layout.Mu()), v: run.V,
		sNext:    make([]int, run.V),
		posOf:    make([]int, run.V),
		procOf:   make([]int, run.V),
		check:    opts.CheckInvariants,
		layout:   layout,
		procOff:  opts.ProcOffset,
		globalV:  globalV,
		labelOff: opts.LabelOffset,
		observer: opts.Observer,
	}
	for p := 0; p < run.V; p++ {
		st.posOf[p] = p
		st.procOf[p] = p
	}
	if o := opts.Obs; o != nil {
		// Resolve every hot-path metric once; the loop then touches
		// only atomics.
		st.obs = o
		st.costCompute = o.FloatCounter("hmm.cost.compute")
		st.costDeliver = o.FloatCounter("hmm.cost.deliver")
		st.costSwap = o.FloatCounter("hmm.cost.swap")
		st.roundsC = o.Counter("hmm.rounds")
		st.swapsC = o.Counter("hmm.swaps")
		st.roundsByLabel = make([]*obs.Counter, run.LogV()+1)
		for l := range st.roundsByLabel {
			st.roundsByLabel[l] = o.Counter(fmt.Sprintf("hmm.rounds.label.%d", l))
		}
		// Span-stack attribution: the same phase deltas charged above,
		// folded per superstep label under "hmm;label.<l>;<phase>".
		st.prof = o.Profile().Scope("hmm")
		if st.prof != nil {
			st.labelFrames = make([]string, run.LogV()+1)
			for l := range st.labelFrames {
				st.labelFrames[l] = fmt.Sprintf("label.%d", l)
			}
		}
	}
	return st
}

// SimulateOn runs prog's supersteps against contexts ALREADY RESIDENT
// in m (block j of the first v·µ words holds processor j's context;
// prog.Init is ignored). It is the entry point the Theorem 10
// self-simulation uses to run a label-shifted sub-program inside one
// host processor's memory module. The program must be smooth over the
// given label set (callers smooth beforehand) and end with a label-0
// superstep; on return, block j again holds processor j's context.
func SimulateOn(m *hmm.Machine, prog *dbsp.Program, labels []int, opts *Options) error {
	if opts == nil {
		opts = &Options{}
	}
	if !prog.EndsGlobal() {
		return fmt.Errorf("hmmsim: program %q does not end with a 0-superstep", prog.Name)
	}
	run, err := smooth.Smooth(prog, labels)
	if err != nil {
		return err
	}
	st := newState(m, run, prog.Layout, opts)
	return st.loop()
}

// loop is the while-loop of Figure 1.
func (st *state) loop() error {
	steps := st.prog.Steps
	logv := st.prog.LogV()
	// Safety bound: every round either simulates a superstep for a
	// cluster or is impossible; total cluster-steps <= Σ_s 2^{label_s}.
	var maxRounds int64
	for _, s := range steps {
		maxRounds += int64(1) << uint(s.Label)
	}
	maxRounds++

	for {
		st.rounds++
		st.roundsC.Inc()
		if st.rounds > maxRounds {
			return fmt.Errorf("hmmsim: scheduler did not terminate after %d rounds (program not smooth or missing global end?)", st.rounds)
		}
		// Step 1: P = processor whose context is on top of memory.
		p := st.procOf[0]
		s := st.sNext[p]
		if s == len(steps) {
			return nil // P finished; by the global final superstep, all have.
		}
		label := steps[s].Label
		csize := st.v >> uint(label)
		cIdx := p / csize
		lo := cIdx * csize

		if st.observer != nil {
			st.observer(st.rounds, s, label, st.procOf)
		}
		if st.check {
			if err := st.verifyInvariants(s, lo, csize); err != nil {
				return err
			}
		}
		// Per-label counts cover work rounds only; the terminating
		// check round above is counted in hmm.rounds but has no label.
		if st.roundsByLabel != nil {
			st.roundsByLabel[label].Inc()
		}
		tracing := st.obs.Tracing()
		var costBefore float64
		if tracing {
			costBefore = st.m.Cost()
		}

		// Step 2: simulate superstep s for cluster C.
		if steps[s].Run != nil {
			st.simulateStep(s, lo, csize)
		}
		for q := lo; q < lo+csize; q++ {
			st.sNext[q] = s + 1
		}

		// Step 3: exit is handled at the top of the next round.
		// Step 4: when the next superstep is coarser, cycle sibling
		// clusters through the top of memory.
		if s+1 < len(steps) {
			nextLabel := steps[s+1].Label
			if nextLabel < label {
				if nextLabel < 0 || label > logv {
					return fmt.Errorf("hmmsim: corrupt labels %d -> %d", label, nextLabel)
				}
				b := 1 << uint(label-nextLabel)
				j := cIdx % b
				if j > 0 {
					st.swapRegions(nextLabel, j, csize)
				}
				if j < b-1 {
					st.swapRegions(nextLabel, j+1, csize)
				}
			}
		}
		if tracing {
			st.obs.Emit(obs.Event{Sim: "hmm", Kind: "round", Round: st.rounds,
				Step: s, Label: label, N: int64(csize), Cost: st.m.Cost() - costBefore})
		}
	}
}

// simulateStep performs Step 2: local computation for each processor of
// the cluster with its context brought to the top of memory, then the
// message exchange by a sequential scan of the outboxes.
func (st *state) simulateStep(s, lo, csize int) {
	mu := st.mu
	l := st.layout
	var mark float64
	if st.obs != nil {
		mark = st.m.Cost()
	}
	// Local computation. The paper brings each context in turn to the
	// top of memory; running the handler in place at block k is
	// equivalent for the Theorem 5 analysis — every access stays within
	// the first µ·|C| cells, so each of the O(µ) handler operations
	// costs at most f(µ·|C|) — and saves the 8µ swap accesses per
	// processor per superstep that a literal bring-to-top would charge.
	for k := 0; k < csize; k++ {
		q := st.procOff + lo + k
		store := &hmmStore{m: st.m, base: int64(k) * mu}
		c := dbsp.NewCtx(store, l, q, st.globalV, st.labelOff+st.prog.Steps[s].Label)
		st.prog.Steps[s].Run(c)
	}
	if st.obs != nil {
		now := st.m.Cost()
		st.costCompute.Add(now - mark)
		if st.prof != nil {
			st.prof.Add(now-mark, st.labelFrames[st.prog.Steps[s].Label], "compute")
		}
		mark = now
	}
	// Message exchange. First clear the inbox counts (native Deliver
	// semantics), then scan outboxes in ascending processor order and
	// deliver each message by direct addressing — by Invariant 2 the
	// context of processor q sits in block q-lo.
	for k := 0; k < csize; k++ {
		st.m.Write(int64(k)*mu+int64(l.InCountOff()), 0)
	}
	for k := 0; k < csize; k++ {
		base := int64(k) * mu
		sent := st.m.Read(base + int64(l.OutCountOff()))
		for e := int64(0); e < sent; e++ {
			dest := st.m.Read(base + int64(l.OutboxOff(int(e))))
			payload := st.m.Read(base + int64(l.OutboxOff(int(e))) + 1)
			dblock := dest - int64(st.procOff) - int64(lo)
			dbase := dblock * mu
			n := st.m.Read(dbase + int64(l.InCountOff()))
			st.m.Write(dbase+int64(l.InboxOff(int(n))), int64(st.procOff+lo+k))
			st.m.Write(dbase+int64(l.InboxOff(int(n)))+1, payload)
			st.m.Write(dbase+int64(l.InCountOff()), n+1)
		}
		if sent > 0 {
			st.m.Write(base+int64(l.OutCountOff()), 0)
		}
	}
	if st.obs != nil {
		delta := st.m.Cost() - mark
		st.costDeliver.Add(delta)
		if st.prof != nil {
			st.prof.Add(delta, st.labelFrames[st.prog.Steps[s].Label], "deliver")
		}
	}
}

// swapRegions exchanges the csize-block region at the top of memory
// with region r (blocks [r·csize, (r+1)·csize)), updating the
// processor-position tables. label is the coarser superstep label whose
// cycling caused the swap; it scopes the profile attribution only.
func (st *state) swapRegions(label, r, csize int) {
	mu := st.mu
	var mark float64
	if st.obs != nil {
		mark = st.m.Cost()
	}
	st.m.SwapRange(0, int64(r)*int64(csize)*mu, int64(csize)*mu)
	for k := 0; k < csize; k++ {
		a, b := k, r*csize+k
		pa, pb := st.procOf[a], st.procOf[b]
		st.procOf[a], st.procOf[b] = pb, pa
		st.posOf[pa], st.posOf[pb] = b, a
	}
	st.swaps++
	st.swapsC.Inc()
	if st.obs != nil {
		delta := st.m.Cost() - mark
		st.costSwap.Add(delta)
		if st.prof != nil {
			st.prof.Add(delta, st.labelFrames[label], "swap")
		}
	}
}

// verifyInvariants checks Invariants 1 and 2 for the round about to
// simulate superstep s for the cluster of processors [lo, lo+csize).
func (st *state) verifyInvariants(s, lo, csize int) error {
	// Invariant 1: the cluster is s-ready.
	for q := lo; q < lo+csize; q++ {
		if st.sNext[q] != s {
			return fmt.Errorf("hmmsim: invariant 1 violated: proc %d at step %d, cluster simulating %d", q, st.sNext[q], s)
		}
	}
	// Invariant 2: contexts in the topmost csize blocks, sorted.
	for k := 0; k < csize; k++ {
		if st.procOf[k] != lo+k {
			return fmt.Errorf("hmmsim: invariant 2 violated: block %d holds proc %d, want %d", k, st.procOf[k], lo+k)
		}
	}
	// Every other cluster's contexts must be in consecutive blocks. At
	// this granularity that means every sibling csize-group of blocks
	// holds a csize-aligned set of processors.
	for g := csize; g < st.v; g += csize {
		base := st.procOf[g]
		if base%csize != 0 {
			continue // a coarser cluster mid-cycle; covered by its own rounds
		}
		for k := 1; k < csize; k++ {
			if st.procOf[g+k] != base+k {
				return fmt.Errorf("hmmsim: invariant 2 violated: block group at %d not consecutive", g)
			}
		}
	}
	return nil
}

// hmmStore adapts the host HMM to the dbsp.Store interface for a
// context at the top of memory.
type hmmStore struct {
	m    *hmm.Machine
	base int64
}

func (s *hmmStore) Load(off int) Word   { return s.m.Read(s.base + int64(off)) }
func (s *hmmStore) Put(off int, v Word) { s.m.Write(s.base+int64(off), v) }
func (s *hmmStore) Work(n int64)        { s.m.ChargeOps(n) }
