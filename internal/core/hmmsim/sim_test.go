package hmmsim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

// rotateHandler returns a handler that consumes the inbox into data
// word 0, then sends the value to the next processor (cyclically)
// within its label-level cluster. The communication pattern is fixed by
// the construction-time label, NOT by c.Label(): smoothing may coarsen
// the runtime label, which must not change what the program computes.
func rotateHandler(label int) func(c *dbsp.Ctx) {
	return func(c *dbsp.Ctx) {
		acc := c.Load(0)
		for k := 0; k < c.NumRecv(); k++ {
			src, payload := c.Recv(k)
			acc += payload + dbsp.Word(src%3)
		}
		c.Store(0, acc)
		cs := dbsp.ClusterSize(c.V(), label)
		lo, _ := dbsp.ClusterRange(c.V(), label, dbsp.ClusterIndex(c.V(), label, c.ID()))
		c.Send(lo+((c.ID()-lo)+1)%cs, acc)
	}
}

// rotateProg builds a program with the given label sequence, each step
// running rotateHandler, ending with a global consume-only step.
func rotateProg(v int, labels ...int) *dbsp.Program {
	steps := make([]dbsp.Superstep, 0, len(labels)+1)
	for _, l := range labels {
		steps = append(steps, dbsp.Superstep{Label: l, Run: rotateHandler(l)})
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		acc := c.Load(0)
		for k := 0; k < c.NumRecv(); k++ {
			_, payload := c.Recv(k)
			acc += payload
		}
		c.Store(0, acc)
	}})
	return &dbsp.Program{
		Name:   "rotate",
		V:      v,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 2},
		Init:   func(p int, data []dbsp.Word) { data[0] = dbsp.Word(7*p + 1) },
		Steps:  steps,
	}
}

// descendingLabels returns log v, log v -1, ..., 0.
func descendingLabels(v int) []int {
	logv := dbsp.Log2(v)
	out := make([]int, 0, logv+1)
	for l := logv; l >= 0; l-- {
		out = append(out, l)
	}
	return out
}

// assertSameContexts fails the test unless the simulated contexts match
// a native run bit for bit.
func assertSameContexts(t *testing.T, prog *dbsp.Program, got [][]Word) {
	t.Helper()
	native, err := dbsp.Run(prog, cost.Const{C: 1})
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	for p := range native.Contexts {
		if !reflect.DeepEqual(native.Contexts[p], got[p]) {
			t.Fatalf("proc %d diverged:\nnative %v\nsim    %v", p, native.Contexts[p], got[p])
		}
	}
}

func TestSimulateMatchesNativeDescending(t *testing.T) {
	prog := rotateProg(16, descendingLabels(16)...)
	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestSimulateMatchesNativeMixedLabels(t *testing.T) {
	// Refinements, plateaus and multi-level coarsenings, ending global.
	for _, labels := range [][]int{
		{0, 2, 1, 0, 3, 0},
		{4, 4, 4, 0},
		{2, 3, 3, 1, 2, 0},
		{0, 0, 0},
		{4, 0, 4, 0},
	} {
		prog := rotateProg(16, labels...)
		for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}, cost.Const{C: 1}} {
			res, err := Simulate(prog, f, &Options{CheckInvariants: true})
			if err != nil {
				t.Fatalf("labels %v f=%s: %v", labels, f.Name(), err)
			}
			assertSameContexts(t, prog, res.Contexts)
		}
	}
}

func TestSimulateSingleProcessor(t *testing.T) {
	prog := rotateProg(1) // just the final global step
	res, err := Simulate(prog, cost.Log{}, &Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestNaiveMatchesNative(t *testing.T) {
	prog := rotateProg(16, 2, 3, 1, 0, 4, 0)
	res, err := SimulateNaive(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestSimulateRejectsBadInput(t *testing.T) {
	good := rotateProg(8, 1, 0)
	if _, err := Simulate(good, nil, nil); err == nil {
		t.Error("nil access function accepted")
	}
	empty := &dbsp.Program{Name: "empty", V: 8, Layout: dbsp.Layout{Data: 1}}
	if _, err := Simulate(empty, cost.Log{}, nil); err == nil {
		t.Error("empty program accepted")
	}
	nonGlobal := rotateProg(8, 1, 0)
	nonGlobal.Steps = nonGlobal.Steps[:1] // ends at label 1
	if _, err := Simulate(nonGlobal, cost.Log{}, nil); err == nil {
		t.Error("program without global end accepted")
	}
	bad := &dbsp.Program{Name: "bad", V: 8, Layout: dbsp.Layout{Data: 1},
		Steps: []dbsp.Superstep{{Label: 9, Run: func(c *dbsp.Ctx) {}}}}
	if _, err := Simulate(bad, cost.Log{}, nil); err == nil {
		t.Error("invalid label accepted")
	}
}

func TestDisableSmoothing(t *testing.T) {
	// Smooth program: works.
	prog := rotateProg(16, 2, 1, 0)
	res, err := Simulate(prog, cost.Log{}, &Options{DisableSmoothing: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameContexts(t, prog, res.Contexts)
	if res.SmoothedSteps != len(prog.Steps) {
		t.Errorf("smoothing disabled but step count changed: %d != %d", res.SmoothedSteps, len(prog.Steps))
	}
	// Non-smooth program (4 -> 0 jump over used label 2): rejected.
	jump := rotateProg(16, 4, 2, 4, 0)
	if _, err := Simulate(jump, cost.Log{}, &Options{DisableSmoothing: true}); err == nil {
		t.Error("non-smooth program accepted with smoothing disabled")
	}
}

func TestSmoothingAddsDummies(t *testing.T) {
	prog := rotateProg(16, 4, 0) // big drop: needs intermediate dummies
	res, err := Simulate(prog, cost.Poly{Alpha: 0.5}, &Options{Labels: []int{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SmoothedSteps <= len(prog.Steps) {
		t.Errorf("expected dummy supersteps, got %d steps for %d input", res.SmoothedSteps, len(prog.Steps))
	}
	assertSameContexts(t, prog, res.Contexts)
}

func TestRoundsAndSwapsCounting(t *testing.T) {
	v := 8
	prog := rotateProg(v, 3, 0) // with L={0..3}: clusters cycle at every level
	res, err := Simulate(prog, cost.Log{}, &Options{Labels: []int{0, 1, 2, 3}, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= int64(len(prog.Steps)) {
		t.Errorf("rounds = %d, want more than %d (per-cluster rounds)", res.Rounds, len(prog.Steps))
	}
	if res.Swaps == 0 {
		t.Error("expected cluster swaps for a coarsening program")
	}
}

// Theorem 5: host cost is O(v·(τ + µ·Σ λ_i f(µ v/2^i))). The ratio of
// measured to predicted must stay within constant factors across v.
func TestTheorem5Shape(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	var lo, hi = math.Inf(1), 0.0
	for _, v := range []int{16, 64, 256} {
		prog := rotateProg(v, descendingLabels(v)...)
		res, err := Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		native, err := dbsp.Run(prog, cost.Const{C: 1})
		if err != nil {
			t.Fatal(err)
		}
		mu := int64(prog.Mu())
		lam := prog.Lambda(true)
		pred := float64(native.TotalTau())
		for i, li := range lam {
			pred += float64(mu) * float64(li) * f.Cost(mu*int64(v>>uint(i)))
		}
		pred *= float64(v)
		ratio := res.HostCost / pred
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
	}
	if lo <= 0 || hi/lo > 8 {
		t.Errorf("Theorem 5 ratio drifts across v: lo=%g hi=%g", lo, hi)
	}
}

// Corollary 6: with g = f, slowdown over the native D-BSP time is Θ(v).
func TestCorollary6LinearSlowdown(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	var lo, hi = math.Inf(1), 0.0
	for _, v := range []int{16, 64, 256} {
		prog := rotateProg(v, descendingLabels(v)...)
		res, err := Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		native, err := dbsp.Run(prog, f) // g = f
		if err != nil {
			t.Fatal(err)
		}
		perProc := res.HostCost / native.Cost / float64(v)
		if perProc < lo {
			lo = perProc
		}
		if perProc > hi {
			hi = perProc
		}
	}
	if lo <= 0 || hi/lo > 8 {
		t.Errorf("Corollary 6: slowdown/v drifts: lo=%g hi=%g", lo, hi)
	}
}

// E04: the naive baseline pays f(µv) on every superstep; the scheduled
// simulation must beat it by an unbounded factor as v grows for
// fine-label-heavy programs.
func TestScheduledBeatsNaive(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	prevGain := 0.0
	for _, v := range []int{64, 256, 1024} {
		// Many fine supersteps (label log v -1), one global end.
		labels := make([]int, 12)
		for i := range labels {
			labels[i] = dbsp.Log2(v) - 1
		}
		prog := rotateProg(v, labels...)
		sched, err := Simulate(prog, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := SimulateNaive(prog, f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sched.Contexts, naive.Contexts) {
			t.Fatal("scheduled and naive simulations disagree on final state")
		}
		gain := naive.HostCost / sched.HostCost
		if gain <= 1 {
			t.Errorf("v=%d: naive (%g) not worse than scheduled (%g)", v, naive.HostCost, sched.HostCost)
		}
		if gain < prevGain {
			t.Errorf("v=%d: naive/scheduled gain %g decreased from %g; want growing", v, gain, prevGain)
		}
		prevGain = gain
	}
}

func TestResultFields(t *testing.T) {
	prog := rotateProg(8, 2, 0)
	res, err := Simulate(prog, cost.Log{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine == nil || res.HostCost <= 0 || res.Stats.Accesses() == 0 {
		t.Errorf("Result incomplete: %+v", res)
	}
	if len(res.Labels) == 0 || res.Labels[0] != 0 {
		t.Errorf("Labels = %v, want set starting at 0", res.Labels)
	}
	if math.Abs(res.HostCost-res.Machine.Cost()) > 1e-9 {
		t.Error("HostCost != Machine.Cost()")
	}
}
