package core

import (
	"reflect"
	"testing"

	"repro/internal/algos"
	"repro/internal/cost"
	"repro/internal/dbsp"
	"repro/internal/workload"
)

// The central integration property of the repository: for every
// case-study algorithm, all five execution paths — the native
// goroutine-parallel D-BSP engine, the sharded big-v engine, the HMM
// simulation, the BT simulation and the D-BSP self-simulation —
// produce bit-identical final processor contexts.
func TestAllPathsAgree(t *testing.T) {
	mat := workload.Matrix(1, 4, 8)
	matB := workload.Matrix(2, 4, 8)
	progs := []*dbsp.Program{
		algos.Broadcast(16, 99),
		algos.PrefixSums(16, func(p int) int64 { return int64(3*p - 10) }),
		algos.MatMul(16, mat, matB),
		algos.DFTButterfly(16, workload.KeyFunc(3, 16, 1<<20)),
		algos.DFTRecursive(16, workload.KeyFunc(4, 16, 1<<20)),
		algos.Sort(16, workload.KeyFunc(5, 16, 1000)),
		algos.Permute(16, workload.Permutation(6, 16), func(p int) int64 { return int64(p) }),
		algos.Reduce(16, algos.OpMax, func(p int) int64 { return int64(p * 7 % 13) }),
		algos.MatVec(16, func(r, c int) int64 { return int64(r*c + 1) }, func(c int) int64 { return int64(c + 2) }),
		algos.Stencil1D(16, 2, func(p int) int64 { return int64(p * 8) }),
		algos.Convolution(16, func(p int) int64 { return int64(p + 1) }, func(p int) int64 { return int64(p % 3) }),
	}
	f := cost.Poly{Alpha: 0.5}
	for _, prog := range progs {
		native, err := dbsp.Run(prog, f)
		if err != nil {
			t.Fatalf("%s native: %v", prog.Name, err)
		}
		sh, err := dbsp.RunSharded(prog, f, 3)
		if err != nil {
			t.Fatalf("%s sharded: %v", prog.Name, err)
		}
		h, err := OnHMM(prog, f)
		if err != nil {
			t.Fatalf("%s hmm: %v", prog.Name, err)
		}
		b, err := OnBT(prog, f)
		if err != nil {
			t.Fatalf("%s bt: %v", prog.Name, err)
		}
		s, err := OnDBSP(prog, f, 4)
		if err != nil {
			t.Fatalf("%s selfsim: %v", prog.Name, err)
		}
		for p := range native.Contexts {
			if !reflect.DeepEqual(native.Contexts[p], sh.Contexts[p]) {
				t.Fatalf("%s: sharded engine diverged at proc %d", prog.Name, p)
			}
			if !reflect.DeepEqual(native.Contexts[p], h.Contexts[p]) {
				t.Fatalf("%s: HMM simulation diverged at proc %d", prog.Name, p)
			}
			if !reflect.DeepEqual(native.Contexts[p], b.Contexts[p]) {
				t.Fatalf("%s: BT simulation diverged at proc %d", prog.Name, p)
			}
			if !reflect.DeepEqual(native.Contexts[p], s.Contexts[p]) {
				t.Fatalf("%s: self-simulation diverged at proc %d", prog.Name, p)
			}
		}
	}
}

func TestFacadeErrorsPropagate(t *testing.T) {
	bad := &dbsp.Program{Name: "bad", V: 8, Layout: dbsp.Layout{Data: 1}}
	if _, err := OnHMM(bad, cost.Log{}); err == nil {
		t.Error("OnHMM accepted an empty program")
	}
	if _, err := OnBT(bad, cost.Log{}); err == nil {
		t.Error("OnBT accepted an empty program")
	}
	if _, err := OnDBSP(bad, cost.Log{}, 2); err == nil {
		t.Error("OnDBSP accepted an empty program")
	}
}
