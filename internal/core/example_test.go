package core_test

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dbsp"
)

// ExampleOnHMM simulates a parallel prefix-sum on a hierarchical-memory
// host and confirms the result matches the native run — the paper's
// Section 3 pipeline in four lines.
func ExampleOnHMM() {
	prog := algos.PrefixSums(8, func(p int) int64 { return int64(p + 1) })
	native, _ := dbsp.Run(prog, cost.Poly{Alpha: 0.5})
	sim, err := core.OnHMM(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("native:", native.Contexts[7][0], "simulated:", sim.Contexts[7][0])
	// Output:
	// native: 36 simulated: 36
}

// ExampleOnDBSP scales a program from 8 processors down to 2, each host
// processor an HMM holding four guest contexts (Theorem 10).
func ExampleOnDBSP() {
	prog := algos.Broadcast(8, 42)
	res, err := core.OnDBSP(prog, cost.Log{}, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("P7 received", res.Contexts[7][0])
	// Output:
	// P7 received 42
}
