package progtest

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

func TestRotateRunsEverywhere(t *testing.T) {
	for _, v := range []int{1, 2, 16} {
		prog := Rotate(v, Descending(v)...)
		if !prog.EndsGlobal() {
			t.Fatalf("v=%d: rotate does not end globally", v)
		}
		if _, err := dbsp.Run(prog, cost.Log{}); err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
	}
}

func TestDescendingAndFine(t *testing.T) {
	d := Descending(16)
	if len(d) != 5 || d[0] != 4 || d[4] != 0 {
		t.Errorf("Descending(16) = %v", d)
	}
	f := Fine(16, 3)
	if len(f) != 3 || f[0] != 3 || f[2] != 3 {
		t.Errorf("Fine(16,3) = %v", f)
	}
}

func TestComputeOnlyCharges(t *testing.T) {
	prog := ComputeOnly(8, 5, 2, 1)
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	// Each real step: 2 memory ops + 5 work = 7; two steps.
	if res.TotalTau() != 14 {
		t.Errorf("TotalTau = %d, want 14", res.TotalTau())
	}
	for _, sc := range res.Steps {
		if sc.H != 0 {
			t.Error("ComputeOnly sent messages")
		}
	}
}

func TestRandomProgramBoundsFanIn(t *testing.T) {
	// The generator promises inbox occupancy <= 2·MaxMsgs; run with the
	// tight layout and rely on the engine's overflow detection.
	for seed := uint64(1); seed <= 10; seed++ {
		prog := RandomProgram(RandomSpec{V: 32, Steps: 8, MaxMsgs: 1, Seed: seed})
		if _, err := dbsp.Run(prog, cost.Log{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomProgramLabelsInRange(t *testing.T) {
	prog := RandomProgram(RandomSpec{V: 16, Steps: 20, MaxMsgs: 1, Seed: 3})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if !prog.EndsGlobal() {
		t.Error("random program does not end globally")
	}
}

func TestClusterPermutationRespectsClusters(t *testing.T) {
	pi := clusterPermutation(7, 16, 4)
	seen := make([]bool, 16)
	for p, d := range pi {
		if p/4 != d/4 {
			t.Fatalf("permutation crosses cluster: %d -> %d", p, d)
		}
		if seen[d] {
			t.Fatalf("not a permutation: %d hit twice", d)
		}
		seen[d] = true
	}
}
