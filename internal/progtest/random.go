package progtest

import (
	"fmt"

	"repro/internal/dbsp"
	"repro/internal/workload"
)

// RandomSpec controls RandomProgram.
type RandomSpec struct {
	// V is the machine size (power of two).
	V int
	// Steps is the number of communicating supersteps before the
	// closing global barrier.
	Steps int
	// MaxMsgs bounds the per-superstep sends of each processor (>= 1).
	MaxMsgs int
	// Seed drives every random choice deterministically.
	Seed uint64
}

// RandomProgram generates a deterministic pseudo-random D-BSP program:
// random superstep labels, and per superstep a random communication
// pattern where each processor sends a random number of messages (up to
// MaxMsgs) to random processors of its cluster, folding everything it
// receives into a running checksum. Handlers derive all choices from
// (seed, step, processor), never from execution order, so the program
// is a pure function of its inputs — exactly what the simulators
// require — while exercising arbitrary label structures and message
// fan-in. Inbox capacity is MaxMsgs·V in the worst case, so the layout
// reserves generous buffers; the generator caps fan-in by picking
// destinations from a per-step random partial permutation plus at most
// one extra, keeping every inbox within 2·MaxMsgs.
func RandomProgram(spec RandomSpec) *dbsp.Program {
	if spec.MaxMsgs < 1 {
		spec.MaxMsgs = 1
	}
	logv := dbsp.Log2(spec.V)
	gen := workload.New(spec.Seed)
	prog := &dbsp.Program{
		Name:   fmt.Sprintf("random-v%d-s%d-seed%d", spec.V, spec.Steps, spec.Seed),
		V:      spec.V,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 2 * spec.MaxMsgs},
		Init: func(p int, data []dbsp.Word) {
			data[0] = dbsp.Word(p*31 + 7)
		},
	}
	for s := 0; s < spec.Steps; s++ {
		label := gen.Intn(logv + 1)
		// A per-step permutation bounds fan-in: every processor sends
		// its first message along a cluster-respecting permutation
		// (derived from a shared seed), plus optionally one message to
		// a random cluster member. Each inbox then receives at most
		// 1 (permutation) + the random extras targeting it; extras are
		// assigned by a second permutation, so fan-in <= 2.
		permSeed := spec.Seed*1000003 + uint64(s)*97 + 1
		extraSeed := permSeed * 31
		cs := dbsp.ClusterSize(spec.V, label)
		perm1 := clusterPermutation(permSeed, spec.V, cs)
		perm2 := clusterPermutation(extraSeed, spec.V, cs)
		sendExtra := workload.Keys(extraSeed+5, spec.V, 2) // coin per proc
		prog.Steps = append(prog.Steps, dbsp.Superstep{Label: label, Run: func(c *dbsp.Ctx) {
			acc := c.Load(0)
			for k := 0; k < c.NumRecv(); k++ {
				src, payload := c.Recv(k)
				acc = acc*31 + payload + dbsp.Word(src)
			}
			c.Store(0, acc)
			c.Send(perm1[c.ID()], acc)
			if sendExtra[c.ID()] == 1 {
				c.Send(perm2[c.ID()], acc+1)
			}
		}})
	}
	prog.Steps = append(prog.Steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		acc := c.Load(0)
		for k := 0; k < c.NumRecv(); k++ {
			src, payload := c.Recv(k)
			acc = acc*17 + payload - dbsp.Word(src)
		}
		c.Store(1, acc)
	}})
	return prog
}

// clusterPermutation returns a permutation of [0, v) that maps every
// size-cs aligned cluster onto itself (so sends along it are always
// cluster-legal).
func clusterPermutation(seed uint64, v, cs int) []int {
	out := make([]int, v)
	for lo := 0; lo < v; lo += cs {
		pi := workload.Permutation(seed+uint64(lo), cs)
		for i, x := range pi {
			out[lo+i] = lo + x
		}
	}
	return out
}
