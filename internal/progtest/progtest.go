// Package progtest provides small D-BSP programs with tunable label
// structure, used by the simulator test suites and benchmarks. The
// handlers fix their communication pattern from construction-time
// parameters (never from c.Label()), so smoothing may relabel freely.
package progtest

import (
	"fmt"

	"repro/internal/dbsp"
)

// RotateHandler returns a handler that folds the inbox into data word 0
// and then sends the value to the cyclically next processor within its
// label-level cluster (label fixed at construction).
func RotateHandler(label int) func(c *dbsp.Ctx) {
	return func(c *dbsp.Ctx) {
		acc := c.Load(0)
		for k := 0; k < c.NumRecv(); k++ {
			src, payload := c.Recv(k)
			acc += payload + dbsp.Word(src%3)
		}
		c.Store(0, acc)
		cs := dbsp.ClusterSize(c.V(), label)
		lo, _ := dbsp.ClusterRange(c.V(), label, dbsp.ClusterIndex(c.V(), label, c.ID()))
		c.Send(lo+((c.ID()-lo)+1)%cs, acc)
	}
}

// Rotate builds a program running RotateHandler once per given label,
// closing with a global consume step.
func Rotate(v int, labels ...int) *dbsp.Program {
	steps := make([]dbsp.Superstep, 0, len(labels)+1)
	for _, l := range labels {
		steps = append(steps, dbsp.Superstep{Label: l, Run: RotateHandler(l)})
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {
		acc := c.Load(0)
		for k := 0; k < c.NumRecv(); k++ {
			_, payload := c.Recv(k)
			acc += payload
		}
		c.Store(0, acc)
	}})
	return &dbsp.Program{
		Name:   fmt.Sprintf("rotate-v%d", v),
		V:      v,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 2},
		Init:   func(p int, data []dbsp.Word) { data[0] = dbsp.Word(7*p + 1) },
		Steps:  steps,
	}
}

// Descending returns the labels log v, log v -1, ..., 0.
func Descending(v int) []int {
	logv := dbsp.Log2(v)
	out := make([]int, 0, logv+1)
	for l := logv; l >= 0; l-- {
		out = append(out, l)
	}
	return out
}

// Fine returns count copies of the finest communicating label
// (log v -1), a fine-superstep-heavy profile.
func Fine(v, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = dbsp.Log2(v) - 1
	}
	return out
}

// ComputeOnly builds a program with work-only supersteps (no messages),
// one per label, for exercising COMPUTE in isolation.
func ComputeOnly(v int, workPerStep int64, labels ...int) *dbsp.Program {
	steps := make([]dbsp.Superstep, 0, len(labels)+1)
	for _, l := range labels {
		steps = append(steps, dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
			c.Store(0, c.Load(0)+1)
			c.Work(workPerStep)
		}})
	}
	steps = append(steps, dbsp.Superstep{Label: 0, Run: func(c *dbsp.Ctx) {}})
	return &dbsp.Program{
		Name:   fmt.Sprintf("compute-v%d", v),
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 0},
		Init:   func(p int, data []dbsp.Word) { data[0] = dbsp.Word(p) },
		Steps:  steps,
	}
}
