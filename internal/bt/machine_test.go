package bt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func TestBlockCopyMovesWords(t *testing.T) {
	m := New(cost.Const{C: 1}, 32)
	for i := int64(0); i < 4; i++ {
		m.Poke(i, Word(i+1))
	}
	m.BlockCopy(3, 19, 4) // [0,3] -> [16,19]
	for i := int64(0); i < 4; i++ {
		if got := m.Peek(16 + i); got != Word(i+1) {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i+1)
		}
		if got := m.Peek(i); got != Word(i+1) {
			t.Fatalf("src[%d] clobbered: %d", i, got)
		}
	}
}

func TestBlockCopyCost(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	m := New(f, 1024)
	m.BlockCopy(99, 899, 50)
	want := math.Max(f.Cost(99), f.Cost(899)) + 50
	if math.Abs(m.Cost()-want) > 1e-9 {
		t.Errorf("cost = %g, want max(f(99),f(899))+50 = %g", m.Cost(), want)
	}
	bs := m.BlockStats()
	if bs.Copies != 1 || bs.Words != 50 || math.Abs(bs.Cost-want) > 1e-9 {
		t.Errorf("BlockStats = %+v, want 1 copy, 50 words, cost %g", bs, want)
	}
}

func TestBlockCopyRejectsBadArgs(t *testing.T) {
	cases := []func(m *Machine){
		func(m *Machine) { m.BlockCopy(3, 19, 0) },   // b < 1
		func(m *Machine) { m.BlockCopy(3, 5, 4) },    // overlap
		func(m *Machine) { m.BlockCopy(2, 19, 4) },   // src underflow
		func(m *Machine) { m.BlockCopy(3, 100, 4) },  // dst out of range
		func(m *Machine) { m.BlockCopy(100, 50, 4) }, // src out of range
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn(New(cost.Const{C: 1}, 32))
		}()
	}
}

func TestBlockCopyAdjacentIsNotOverlap(t *testing.T) {
	m := New(cost.Const{C: 1}, 32)
	m.Poke(0, 7)
	m.BlockCopy(3, 7, 4) // [0,3] -> [4,7]: adjacent, disjoint
	if m.Peek(4) != 7 {
		t.Error("adjacent copy failed")
	}
}

func TestCopyRange(t *testing.T) {
	m := New(cost.Const{C: 1}, 32)
	for i := int64(0); i < 5; i++ {
		m.Poke(10+i, Word(i)*2)
	}
	m.CopyRange(10, 20, 5)
	for i := int64(0); i < 5; i++ {
		if m.Peek(20+i) != Word(i)*2 {
			t.Fatalf("CopyRange mismatch at %d", i)
		}
	}
}

func TestSwapRangeBT(t *testing.T) {
	m := New(cost.Const{C: 1}, 64)
	for i := int64(0); i < 8; i++ {
		m.Poke(i, Word(i+1))
		m.Poke(16+i, Word(100+i))
	}
	m.SwapRangeBT(0, 16, 8, 32)
	for i := int64(0); i < 8; i++ {
		if m.Peek(i) != Word(100+i) || m.Peek(16+i) != Word(i+1) {
			t.Fatalf("SwapRangeBT mismatch at %d: %d %d", i, m.Peek(i), m.Peek(16+i))
		}
	}
	if got := m.BlockStats().Copies; got != 3 {
		t.Errorf("SwapRangeBT used %d block copies, want 3", got)
	}
	m.SwapRangeBT(0, 16, 0, 32) // n == 0 is a no-op
	if got := m.BlockStats().Copies; got != 3 {
		t.Errorf("zero-length swap performed copies")
	}
}

// Fact 2: touching n cells on f(x)-BT costs Θ(n f*(n)) — enormously less
// than the HMM's Θ(n f(n)).
func TestTouchFact2Shape(t *testing.T) {
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		var lo, hi float64 = math.Inf(1), 0
		for n := int64(1 << 10); n <= 1<<18; n *= 4 {
			m := New(f, n)
			m.Touch(n)
			ratio := m.Cost() / (float64(n) * float64(cost.FStar(f, n)))
			if ratio < lo {
				lo = ratio
			}
			if ratio > hi {
				hi = ratio
			}
		}
		if lo <= 0 || hi/lo > 6 {
			t.Errorf("%s: Fact 2 ratio drifts: lo=%g hi=%g", f.Name(), lo, hi)
		}
	}
}

func TestTouchBeatsHMMTouch(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	n := int64(1 << 16)
	m := New(f, n)
	m.Touch(n)
	hmmCost := cost.TouchHMM(f, n) // Θ(n f(n)) = Θ(n^1.5)
	if m.Cost() >= hmmCost/4 {
		t.Errorf("BT touch %g not clearly below HMM touch %g", m.Cost(), hmmCost)
	}
}

func TestTouchSmallN(t *testing.T) {
	m := New(cost.Log{}, 16)
	m.Touch(3)
	if m.Stats().Reads != 3 {
		t.Errorf("Touch(3) reads = %d, want 3 direct reads", m.Stats().Reads)
	}
}

func TestTouchTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Touch beyond size did not panic")
		}
	}()
	New(cost.Log{}, 8).Touch(9)
}

func TestResetStatsClearsBlocks(t *testing.T) {
	m := New(cost.Const{C: 1}, 32)
	m.BlockCopy(3, 19, 4)
	m.ResetStats()
	if m.Cost() != 0 || m.BlockStats().Copies != 0 {
		t.Error("ResetStats did not clear block stats")
	}
}

// Property: BlockCopy preserves source content and copies exactly b words.
func TestBlockCopyProperty(t *testing.T) {
	prop := func(rawB uint8, seed int64) bool {
		b := int64(rawB%16) + 1
		m := New(cost.Log{}, 64)
		for i := int64(0); i < b; i++ {
			m.Poke(i, seed+Word(i))
		}
		m.BlockCopy(b-1, 32+b-1, b)
		for i := int64(0); i < b; i++ {
			if m.Peek(i) != seed+Word(i) || m.Peek(32+i) != seed+Word(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
