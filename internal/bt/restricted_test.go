package bt

import (
	"testing"

	"repro/internal/cost"
)

func TestRestrictedBlockCopyMovesWords(t *testing.T) {
	r := NewRestricted(cost.Poly{Alpha: 0.5}, 4096)
	for i := int64(0); i < 100; i++ {
		r.Poke(i, Word(i+1))
	}
	r.CopyRange(0, 2000, 100)
	for i := int64(0); i < 100; i++ {
		if got := r.Peek(2000 + i); got != Word(i+1) {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i+1)
		}
	}
	// The restricted transfer uses multiple pieces for a 100-cell block
	// when f(x) < 100.
	if r.BlockStats().Copies < 2 {
		t.Errorf("expected multiple restricted pieces, got %d", r.BlockStats().Copies)
	}
}

// The Section 2 claim: the restricted model simulates the full model
// with constant slowdown. Compare the charged cost of the same big
// transfers on both machines across sizes: the ratio must stay bounded.
func TestRestrictedConstantSlowdown(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	var prev float64
	for _, b := range []int64{1 << 8, 1 << 12, 1 << 16} {
		full := New(f, 4*b)
		full.CopyRange(0, 2*b, b)
		restr := NewRestricted(f, 4*b)
		restr.CopyRange(0, 2*b, b)
		ratio := restr.Cost() / full.Cost()
		if ratio < 1 {
			t.Errorf("b=%d: restricted (%g) cheaper than full (%g)?", b, restr.Cost(), full.Cost())
		}
		if ratio > 6 {
			t.Errorf("b=%d: restricted slowdown %.2f not constant-ish", b, ratio)
		}
		if prev > 0 && ratio > 2.5*prev {
			t.Errorf("b=%d: slowdown %.2f growing too fast (prev %.2f)", b, ratio, prev)
		}
		prev = ratio
	}
}

// Touching on the restricted machine keeps the Fact 2 shape.
func TestRestrictedTouchShape(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	var prev float64
	for _, n := range []int64{1 << 12, 1 << 16} {
		r := NewRestricted(f, n)
		r.Touch(n)
		perCell := r.Cost() / float64(n)
		if prev > 0 && perCell > 2.5*prev {
			t.Errorf("n=%d: per-cell restricted touch cost %.2f grew too fast (prev %.2f)", n, perCell, prev)
		}
		prev = perCell
		// And it stays far below the HMM's Θ(n·f(n)).
		if r.Cost() > float64(n)*f.Cost(n)/4 {
			t.Errorf("n=%d: restricted touch %g not clearly below HMM touch", n, r.Cost())
		}
	}
}

func TestRestrictedRejectsBadB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("restricted BlockCopy b=0 accepted")
		}
	}()
	NewRestricted(cost.Log{}, 64).BlockCopy(3, 19, 0)
}
