// Package bt implements the Hierarchical Memory Model with Block
// Transfer of Aggarwal, Chandra and Snir (paper reference [2]): an
// f(x)-HMM augmented with a pipelined block copy — moving a block of b
// cells ending at address x onto a disjoint block ending at address y
// costs max(f(x), f(y)) + b, independent of per-word access costs.
//
// The block transfer is what lets the Section 5 simulation hide access
// costs almost completely (Theorem 12's bound does not depend on f);
// this package also provides the Fact 2 touching algorithm whose
// Θ(n·f*(n)) cost is the model's fundamental lower bound for
// input-examining problems.
package bt

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/hmm"
)

// Word is the unit of BT storage.
type Word = hmm.Word

// BlockStats counts block-transfer activity separately from word
// accesses (which the embedded HMM machine counts).
type BlockStats struct {
	// Copies is the number of BlockCopy operations performed.
	Copies int64
	// Words is the total number of words moved by block transfer.
	Words int64
	// Cost is the model time charged to block transfers alone:
	// Σ (max(f(x), f(y)) + b).
	Cost float64
}

// Machine is an f(x)-BT machine. It embeds an f(x)-HMM, so all word
// operations (Read, Write, SwapWords, ...) and their costs carry over;
// BlockCopy adds the pipelined transfer.
type Machine struct {
	*hmm.Machine
	blocks BlockStats
	// TraceBlock, when non-nil, is invoked for every BlockCopy with the
	// source end, destination end, and length (the model's (x, y, b)).
	// Observability uses it for block-size histograms; the word-level
	// Trace hook of the embedded HMM never sees pipelined transfers.
	TraceBlock func(x, y, b int64)
}

// New returns an f(x)-BT machine with size words of zeroed memory.
func New(f cost.Func, size int64) *Machine {
	return &Machine{Machine: hmm.New(f, size)}
}

// BlockStats returns a copy of the block-transfer statistics.
func (m *Machine) BlockStats() BlockStats { return m.blocks }

// ResetStats zeroes both HMM and block-transfer accounting.
func (m *Machine) ResetStats() {
	m.Machine.ResetStats()
	m.blocks = BlockStats{}
}

// BlockCopy copies the b-word block ending at address x onto the
// disjoint b-word block ending at address y, charging
// max(f(x), f(y)) + b (paper Section 2, BT definition). The source
// block is [x-b+1, x] and the destination [y-b+1, y]; they must lie in
// memory and must not overlap. b must be >= 1.
func (m *Machine) BlockCopy(x, y, b int64) {
	if b < 1 {
		panic(fmt.Sprintf("bt: BlockCopy with b=%d < 1", b))
	}
	srcLo, dstLo := x-b+1, y-b+1
	if srcLo < 0 || x >= m.Size() || dstLo < 0 || y >= m.Size() {
		panic(fmt.Sprintf("bt: BlockCopy out of range: src [%d,%d] dst [%d,%d] size %d",
			srcLo, x, dstLo, y, m.Size()))
	}
	if srcLo <= y && dstLo <= x {
		panic(fmt.Sprintf("bt: BlockCopy overlap: src [%d,%d] dst [%d,%d]", srcLo, x, dstLo, y))
	}
	c := m.CostAt(x)
	if cy := m.CostAt(y); cy > c {
		c = cy
	}
	m.AddCost(c + float64(b))
	m.NoteAddr(x)
	m.NoteAddr(y)
	m.blocks.Copies++
	m.blocks.Words += b
	m.blocks.Cost += c + float64(b)
	if m.TraceBlock != nil {
		m.TraceBlock(x, y, b)
	}
	// Move the words without per-word charges or per-copy allocation:
	// the transfer is pipelined and already paid for above.
	m.CopyUncharged(srcLo, dstLo, b)
}

// CopyRange copies n words from [src, src+n) to [dst, dst+n) using a
// single block transfer (n >= 1). It is BlockCopy expressed with range
// starts instead of range ends.
func (m *Machine) CopyRange(src, dst, n int64) {
	m.BlockCopy(src+n-1, dst+n-1, n)
}

// SwapRangeBT exchanges the disjoint n-word ranges at a and b using
// three block transfers via the scratch range [scratch, scratch+n),
// which must be disjoint from both. This is the constant-block-transfer
// swap the Section 5 simulation relies on buffer space for.
func (m *Machine) SwapRangeBT(a, b, n, scratch int64) {
	if n == 0 {
		return
	}
	m.CopyRange(a, scratch, n)
	m.CopyRange(b, a, n)
	m.CopyRange(scratch, b, n)
}

// Touch examines the first n cells using the recursive block-transfer
// schedule of [2], achieving the Fact 2 bound Θ(n·f*(n)). Memory
// contents in [0, n) are left unspecified (chunks are copied over the
// top of memory), which is fine for the cost experiment it supports.
// It panics if n exceeds the memory size.
func (m *Machine) Touch(n int64) {
	if n > m.Size() {
		panic(fmt.Sprintf("bt: Touch(%d) exceeds memory size %d", n, m.Size()))
	}
	m.touchRec(n)
}

func (m *Machine) touchRec(n int64) {
	const base = 4
	if n <= base {
		for x := int64(0); x < n; x++ {
			m.Read(x)
		}
		return
	}
	// Chunk size ~ f(n), clamped to [1, n/2]: balances the per-chunk
	// transfer setup f(n) against chunk length.
	f := m.AccessFunc()
	c := int64(f.Cost(n))
	if c < 1 {
		c = 1
	}
	if c > n/2 {
		c = n / 2
	}
	// First chunk is already at the top of memory.
	m.touchRec(c)
	for s := c; s < n; s += c {
		b := c
		if s+b > n {
			b = n - s
		}
		m.CopyRange(s, 0, b)
		m.touchRec(b)
	}
}
