package bt

import "fmt"

// Restricted wraps a BT machine as the paper's restricted variant
// (Section 2): "f(x)-BT can be simulated with constant slowdown by a
// restricted version of the model which in time f(x) allows only to
// transfer f(x) consecutive cells between non-overlapping regions of
// maximum address x" — the variant the paper argues current memory
// systems already approximate (cache lines × outstanding requests).
//
// Restricted.BlockCopy accepts arbitrary block lengths but executes
// them as a sequence of at-most-⌈f(x)⌉-cell transfers, each charged the
// full max(f(x), f(y)) + piece cost. CompareUnrestricted quantifies the
// paper's constant-slowdown claim mechanically.
type Restricted struct {
	*Machine
}

// NewRestricted returns a restricted f(x)-BT machine with size words.
func NewRestricted(f costFunc, size int64) *Restricted {
	return &Restricted{Machine: New(f, size)}
}

// costFunc matches cost.Func without importing it twice.
type costFunc interface {
	Cost(x int64) float64
	Name() string
}

// BlockCopy performs the block transfer in restricted pieces: each
// piece moves at most ⌈max(f(x), f(y))⌉ cells and is charged like a
// full transfer of its own. For (2,c)-uniform f the total stays within
// a constant factor of the unrestricted cost max(f(x), f(y)) + b.
func (r *Restricted) BlockCopy(x, y, b int64) {
	if b < 1 {
		panic(fmt.Sprintf("bt: restricted BlockCopy with b=%d < 1", b))
	}
	f := r.AccessFunc()
	piece := int64(f.Cost(x))
	if p2 := int64(f.Cost(y)); p2 > piece {
		piece = p2
	}
	if piece < 1 {
		piece = 1
	}
	for done := int64(0); done < b; {
		n := piece
		if b-done < n {
			n = b - done
		}
		// Transfer the piece ending n cells below the current ends.
		r.Machine.BlockCopy(x-done, y-done, n)
		done += n
	}
}

// CopyRange is the range-start form of the restricted BlockCopy.
func (r *Restricted) CopyRange(src, dst, n int64) {
	r.BlockCopy(src+n-1, dst+n-1, n)
}

// Touch runs the Fact 2 touching schedule on the restricted machine:
// the recursion of Machine.Touch issues its chunk transfers through the
// restricted BlockCopy.
func (r *Restricted) Touch(n int64) {
	if n > r.Size() {
		panic(fmt.Sprintf("bt: Touch(%d) exceeds memory size %d", n, r.Size()))
	}
	r.touchRestricted(n)
}

func (r *Restricted) touchRestricted(n int64) {
	const base = 4
	if n <= base {
		for x := int64(0); x < n; x++ {
			r.Read(x)
		}
		return
	}
	f := r.AccessFunc()
	c := int64(f.Cost(n))
	if c < 1 {
		c = 1
	}
	if c > n/2 {
		c = n / 2
	}
	r.touchRestricted(c)
	for s := c; s < n; s += c {
		b := c
		if s+b > n {
			b = n - s
		}
		r.CopyRange(s, 0, b)
		r.touchRestricted(b)
	}
}
