package smooth

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

// progWithLabels builds a v-processor program with the given label
// sequence; handlers increment data word 0 so functional equivalence
// can be checked.
func progWithLabels(v int, labels ...int) *dbsp.Program {
	steps := make([]dbsp.Superstep, len(labels))
	for i, l := range labels {
		steps[i] = dbsp.Superstep{Label: l, Run: func(c *dbsp.Ctx) {
			c.Store(0, c.Load(0)+1)
		}}
	}
	return &dbsp.Program{
		Name:   "labelled",
		V:      v,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Steps:  steps,
	}
}

func TestValidateLabels(t *testing.T) {
	if err := ValidateLabels([]int{0, 2, 4}, 4); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := [][]int{
		{},           // empty
		{1, 4},       // doesn't start at 0
		{0, 3},       // doesn't end at log v
		{0, 2, 2, 4}, // not strictly increasing
	}
	for i, ls := range bad {
		if err := ValidateLabels(ls, 4); err == nil {
			t.Errorf("case %d: invalid set %v accepted", i, ls)
		}
	}
}

func TestSmoothUpgradesLabels(t *testing.T) {
	// L = {0, 2, 4}; labels 1 and 3 must be upgraded to 0 and 2.
	prog := progWithLabels(16, 3, 1, 0)
	out, err := Smooth(prog, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, st := range out.Steps {
		got = append(got, st.Label)
	}
	want := []int{2, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("labels = %v, want %v", got, want)
	}
}

func TestSmoothInsertsDummies(t *testing.T) {
	// Sequence 4 then 0 over L = {0,1,2,3,4} needs dummies 3, 2, 1.
	prog := progWithLabels(16, 4, 0)
	out, err := Smooth(prog, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	var labels []int
	var dummies int
	for _, st := range out.Steps {
		labels = append(labels, st.Label)
		if st.Run == nil {
			dummies++
		}
	}
	want := []int{4, 3, 2, 1, 0}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("labels = %v, want %v", labels, want)
	}
	if dummies != 3 {
		t.Errorf("dummies = %d, want 3", dummies)
	}
	if !out.IsSmooth([]int{0, 1, 2, 3, 4}) {
		t.Error("output not smooth")
	}
}

func TestSmoothAscentNeedsNoDummies(t *testing.T) {
	prog := progWithLabels(16, 0, 4, 4, 0) // refine freely; one coarsening 4->0
	out, err := Smooth(prog, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) != 4 {
		t.Errorf("got %d steps, want 4 (0->4 ascent adds nothing, 4->0 is one L-step)", len(out.Steps))
	}
}

func TestSmoothPreservesSemantics(t *testing.T) {
	prog := progWithLabels(16, 4, 2, 3, 0)
	out, err := Smooth(prog, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dbsp.Run(out, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range a.Contexts {
		if !reflect.DeepEqual(a.Contexts[p], b.Contexts[p]) {
			t.Fatalf("proc %d state diverged after smoothing", p)
		}
	}
}

func TestSmoothRejectsBadLabelSet(t *testing.T) {
	if _, err := Smooth(progWithLabels(16, 0), []int{0, 3}); err == nil {
		t.Error("label set not ending at log v accepted")
	}
}

func TestLabelsHMMGeometric(t *testing.T) {
	// f = x^0.5, c2 = 0.5: each level's cluster cost must drop by >= 2x,
	// i.e. cluster memory by >= 4x, so labels step by 2.
	labels := LabelsHMM(cost.Poly{Alpha: 0.5}, 1, 1<<10, 0.5)
	if err := ValidateLabels(labels, 10); err != nil {
		t.Fatalf("LabelsHMM produced invalid set %v: %v", labels, err)
	}
	f := cost.Poly{Alpha: 0.5}
	for i := 1; i < len(labels)-1; i++ {
		prev := f.Cost(int64(1 << (10 - labels[i-1])))
		cur := f.Cost(int64(1 << (10 - labels[i])))
		if cur > 0.5*prev+1e-9 {
			t.Errorf("level %d: cost %g > c2*prev %g", i, cur, 0.5*prev)
		}
	}
}

func TestLabelsHMMLogFunction(t *testing.T) {
	labels := LabelsHMM(cost.Log{}, 1, 1<<16, 0.5)
	if err := ValidateLabels(labels, 16); err != nil {
		t.Fatalf("invalid set %v: %v", labels, err)
	}
	// With f=log x the level memories must square-root-ish: the label
	// set should be small (O(log log v)).
	if len(labels) > 8 {
		t.Errorf("LabelsHMM(log) has %d levels %v, want few", len(labels), labels)
	}
}

func TestLabelsHMMConstFunction(t *testing.T) {
	// Constant f never drops by c2: the set collapses to {0, log v}.
	labels := LabelsHMM(cost.Const{C: 1}, 1, 256, 0.5)
	if !reflect.DeepEqual(labels, []int{0, 8}) {
		t.Errorf("LabelsHMM(const) = %v, want [0 8]", labels)
	}
}

func TestLabelsHMMPanicsOnBadC2(t *testing.T) {
	for _, c2 := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("c2=%g accepted", c2)
				}
			}()
			LabelsHMM(cost.Log{}, 1, 16, c2)
		}()
	}
}

func TestLabelsBT(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	labels := LabelsBT(f, 1, 1<<16, 0.5, 0)
	if err := ValidateLabels(labels, 16); err != nil {
		t.Fatalf("LabelsBT invalid set %v: %v", labels, err)
	}
	// Levels must be geometric in the log domain: few levels.
	if len(labels) < 3 || len(labels) > 10 {
		t.Errorf("LabelsBT levels = %v: unexpected count", labels)
	}
	// Constraint (c): next cluster memory >= f(current memory)/d1.
	for i := 0; i+1 < len(labels); i++ {
		curMem := int64(1) << (16 - labels[i])
		nextMem := float64(int64(1) << (16 - labels[i+1]))
		if f.Cost(curMem) > 2*nextMem {
			t.Errorf("constraint (c) violated at level %d: f(%d)=%g > 2*%g",
				i, curMem, f.Cost(curMem), nextMem)
		}
	}
}

func TestLabelsBTPanicsOnBadC2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("c2 <= alpha accepted")
		}
	}()
	LabelsBT(cost.Poly{Alpha: 0.5}, 1, 16, 0.5, 0.4)
}

func TestIdentity(t *testing.T) {
	if got := Identity(3); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("Identity(3) = %v", got)
	}
}

func TestFromProgram(t *testing.T) {
	prog := progWithLabels(16, 2, 2, 0)
	got := FromProgram(prog)
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Errorf("FromProgram = %v, want [0 2 4]", got)
	}
}

// Property: Smooth output is always L-smooth and has at least as many
// supersteps as the input, and real (non-dummy) step count is preserved.
func TestSmoothProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		labels := make([]int, len(raw))
		for i, r := range raw {
			labels[i] = int(r % 5)
		}
		labels[len(labels)-1] = 0 // end global
		prog := progWithLabels(16, labels...)
		L := []int{0, 1, 2, 3, 4}
		out, err := Smooth(prog, L)
		if err != nil {
			return false
		}
		real := 0
		for _, st := range out.Steps {
			if st.Run != nil {
				real++
			}
		}
		return out.IsSmooth(L) && real == len(prog.Steps) && len(out.Steps) >= len(prog.Steps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
