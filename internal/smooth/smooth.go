// Package smooth implements the L-smoothing machinery of Definition 3:
// rewriting an arbitrary D-BSP program into a functionally equivalent
// one whose superstep labels all lie in a chosen set
// L = {0 = l0 < l1 < ... < lm = log v} and whose labels coarsen at most
// one L-level at a time. The sequential simulators of Sections 3 and 5
// require L-smooth input; the label sets are chosen so that the
// smoothing adds only a constant-factor overhead to the simulation
// time (Theorem 5's and Theorem 12's analyses).
package smooth

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

// Smooth rewrites prog into an L-smooth equivalent over the sorted
// label set labels (which must start at 0 and end at log v):
//
//  1. every i-superstep is upgraded to an l-superstep, l being the
//     largest label in L not greater than i (bundling supersteps of
//     nearby labels), and
//  2. dummy supersteps with the intermediate missing labels are
//     inserted wherever the label would otherwise drop by more than
//     one L-level.
//
// Handlers are shared with the original program; the rewrite never
// changes what a processor computes or whom it may message (labels only
// decrease, and an i-legal message is legal in any coarser cluster).
func Smooth(prog *dbsp.Program, labels []int) (*dbsp.Program, error) {
	if err := ValidateLabels(labels, prog.LogV()); err != nil {
		return nil, fmt.Errorf("smooth: program %q: %w", prog.Name, err)
	}
	idx := make(map[int]int, len(labels))
	for k, l := range labels {
		idx[l] = k
	}
	// downgrade[i] = index in L of the largest label <= i.
	downgrade := make([]int, prog.LogV()+1)
	k := 0
	for i := 0; i <= prog.LogV(); i++ {
		if k+1 < len(labels) && labels[k+1] <= i {
			k++
		}
		downgrade[i] = k
	}

	out := &dbsp.Program{
		Name:   prog.Name + "+smooth",
		V:      prog.V,
		Layout: prog.Layout,
		Init:   prog.Init,
	}
	prev := -1 // L-index of the previous emitted superstep
	for _, st := range prog.Steps {
		cur := downgrade[st.Label]
		// Insert dummies to descend one L-level at a time.
		if prev >= 0 && cur < prev-1 {
			for d := prev - 1; d > cur; d-- {
				out.Steps = append(out.Steps, dbsp.Superstep{Label: labels[d], Run: nil})
			}
		}
		out.Steps = append(out.Steps, dbsp.Superstep{Label: labels[cur], Run: st.Run, Transpose: st.Transpose})
		prev = cur
	}
	if !out.IsSmooth(labels) {
		return nil, fmt.Errorf("smooth: internal error: output of Smooth is not L-smooth")
	}
	return out, nil
}

// ValidateLabels checks that labels is strictly increasing, starts at 0
// and ends at logV, as Definition 3 requires.
func ValidateLabels(labels []int, logV int) error {
	if len(labels) == 0 {
		return fmt.Errorf("empty label set")
	}
	if labels[0] != 0 {
		return fmt.Errorf("label set must start at 0, got %d", labels[0])
	}
	if labels[len(labels)-1] != logV {
		return fmt.Errorf("label set must end at log v = %d, got %d", logV, labels[len(labels)-1])
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] <= labels[i-1] {
			return fmt.Errorf("label set not strictly increasing at index %d", i)
		}
	}
	return nil
}

// LabelsHMM constructs the label set of Theorem 5's analysis for an
// f(x)-HMM host: starting from l0 = 0, each next label is the first one
// whose cluster memory µ·v/2^l drops the access cost by the factor c2,
// i.e. f(µ·v/2^{l_{i+1}}) <= c2·f(µ·v/2^{l_i}); the set ends at log v.
// Because f is (2,c)-uniform the costs of consecutive levels are also
// bounded below by c1 = c2/c times the previous one, which is what
// bounds the dummy-superstep overhead. c2 must lie in (0, 1); the
// paper's construction works for any such constant, 0.5 is a sound
// default.
func LabelsHMM(f cost.Func, mu, v int, c2 float64) []int {
	if c2 <= 0 || c2 >= 1 {
		panic(fmt.Sprintf("smooth: c2=%g outside (0,1)", c2))
	}
	logv := dbsp.Log2(v)
	labels := []int{0}
	cur := 0
	for cur < logv {
		curCost := f.Cost(int64(mu) * int64(v>>uint(cur)))
		next := -1
		for l := cur + 1; l <= logv; l++ {
			if f.Cost(int64(mu)*int64(v>>uint(l))) <= c2*curCost {
				next = l
				break
			}
		}
		if next == -1 {
			next = logv
		}
		labels = append(labels, next)
		cur = next
	}
	return labels
}

// LabelsBT constructs the label set of Section 5.2.2 for an f(x)-BT
// host with f(x) = O(x^α): labels are geometric in the log domain —
// log(d1·µ·v/2^{l_{i+1}}) ≈ c2·log(d1·µ·v/2^{l_i}) with α < c2 < 1 —
// subject to the pipelining constraint (c): the next cluster memory
// must still dominate the current access cost,
// f(µ·v/2^{l_i}) <= d2·µ·v/2^{l_{i+1}}. alpha is the exponent bound on
// f; c2 defaults to (1+alpha)/2 when passed as 0.
func LabelsBT(f cost.Func, mu, v int, alpha, c2 float64) []int {
	if c2 == 0 {
		c2 = (1 + alpha) / 2
	}
	if c2 <= alpha || c2 >= 1 {
		panic(fmt.Sprintf("smooth: c2=%g outside (alpha=%g, 1)", c2, alpha))
	}
	const d1 = 2.0
	logv := dbsp.Log2(v)
	labels := []int{0}
	cur := 0
	for cur < logv {
		curMem := float64(mu) * float64(int64(v)>>uint(cur))
		curLog := math.Log2(d1 * curMem)
		next := -1
		for l := cur + 1; l <= logv; l++ {
			mem := float64(mu) * float64(int64(v)>>uint(l))
			if math.Log2(d1*mem) <= c2*curLog {
				next = l
				break
			}
		}
		if next == -1 {
			next = logv
		} else {
			// Constraint (c): back the label off until the next
			// cluster memory is at least the current access cost, so a
			// single block transfer amortises the access.
			for next > cur+1 {
				mem := float64(mu) * float64(int64(v)>>uint(next))
				if f.Cost(int64(curMem)) <= d1*mem {
					break
				}
				next--
			}
		}
		labels = append(labels, next)
		cur = next
	}
	return labels
}

// Identity returns the full label set {0, 1, ..., logV}: smoothing over
// it only inserts dummies (never bundles labels). Used by the smoothing
// ablation (experiment E14).
func Identity(logV int) []int {
	out := make([]int, logV+1)
	for i := range out {
		out[i] = i
	}
	return out
}

// FromProgram returns a valid label set containing every label the
// program uses plus the mandatory endpoints 0 and log v.
func FromProgram(prog *dbsp.Program) []int {
	seen := map[int]bool{0: true, prog.LogV(): true}
	for _, st := range prog.Steps {
		seen[st.Label] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
