// Package amsort implements sorting on the f(x)-BT machine, the
// substrate the Section 5 simulation uses to deliver messages
// (paper reference [2]'s Approx-Median-Sort plays this role; see
// DESIGN.md for the substitution note).
//
// The algorithm is a bottom-up merge sort whose merges stream through a
// cascade of staging buffers at the top of memory: stage K (largest
// chunks, c_K ≈ f(N·R)/R records) refills from main memory by block
// transfer, stage j refills from stage j+1, and only stage 1 — whose
// buffers live at O(1) addresses — compares and moves words directly.
// Each refill or flush between stages j and j+1 is one block transfer
// costing f(extent of stage j+1) + c_j, which the choice
// c_j ≈ f(extent_{j+1})/R makes O(1) amortised per record. A record
// therefore pays O(K) = O(f*(N)) per pass and the sort runs in
// O(N·log N·f*(N)) — the log N term dominated by the pass count, the
// access function hidden inside the iterated f* ≤ 5 for every feasible
// size, which is what Theorem 12's f-independence needs in practice.
//
// Records are fixed-size groups of R words ordered by ascending word 0
// (the tag); ties keep a stable order only if tags are unique, which
// the btsim delivery guarantees by construction.
package amsort

import (
	"fmt"

	"repro/internal/bt"
	"repro/internal/cost"
)

// minChunk is the record count below which merging happens word by word
// (stage-1 buffers live within a constant address prefix).
const minChunk = 16

// Plan fixes the staging-cascade geometry for sorting count records of
// rec words each on a machine with access function f.
type Plan struct {
	f     cost.Func
	rec   int64   // words per record
	count int64   // records to sort
	chunk []int64 // chunk[j] = records per buffer at stage j (0 = innermost)
	base  []int64 // base[j] = word offset of stage j's buffer triple
	total int64   // workspace words
}

// NewPlan computes the cascade for the given geometry. rec >= 1,
// count >= 0.
func NewPlan(f cost.Func, rec, count int64) *Plan {
	if rec < 1 {
		panic(fmt.Sprintf("amsort: rec=%d < 1", rec))
	}
	p := &Plan{f: f, rec: rec, count: count}
	n := count * rec
	// Outermost chunk ~ f(N)/R, then shrink by iterating f until the
	// constant floor. Build outermost-first, then reverse so chunk[0]
	// is innermost.
	var desc []int64
	c := int64(p.f.Cost(2*n)) / rec
	for c > minChunk {
		desc = append(desc, c)
		// Shrink at least geometrically: refills amortise as long as
		// c_j >= f(extent_{j+1})/rec, and halving keeps the stage count
		// logarithmic instead of tracking f's slow convergence toward
		// its (constant) fixpoint.
		next := int64(p.f.Cost(8*c*rec)) / rec
		if next > c/2 {
			next = c / 2
		}
		c = next
	}
	desc = append(desc, minChunk)
	p.chunk = make([]int64, len(desc))
	for i := range desc {
		p.chunk[i] = desc[len(desc)-1-i]
	}
	// Stage 0's buffer triple lives in the caller's HOT region (O(1)
	// absolute addresses — its words are touched individually); outer
	// stages live in the COLD region, reached only by block transfer.
	p.base = make([]int64, len(p.chunk))
	off := int64(0)
	for j := 1; j < len(p.chunk); j++ {
		p.base[j] = off
		off += 3 * p.chunk[j] * rec
	}
	p.total = off
	return p
}

// ColdWords returns the cold-region footprint (outer-stage buffers).
func (p *Plan) ColdWords() int64 { return p.total }

// HotWords returns the hot-region footprint (the stage-0 buffer triple,
// which must sit at O(1) absolute addresses).
func (p *Plan) HotWords() int64 { return 3 * minChunk * p.rec }

// Stages returns the cascade depth K.
func (p *Plan) Stages() int { return len(p.chunk) }

// buffer identifiers within a stage triple.
const (
	bufA = iota
	bufB
	bufOut
)

// bufAddr returns the absolute address of buffer b at stage j given the
// hot and cold region offsets.
func (p *Plan) bufAddr(j, b int, hot, cold int64) int64 {
	if j == 0 {
		return hot + int64(b)*minChunk*p.rec
	}
	return cold + p.base[j] + int64(b)*p.chunk[j]*p.rec
}

// Sort sorts count records of rec words at [data, data+count·rec) on m,
// using [scratch, scratch+count·rec) as ping-pong space, the hot region
// [hot, hot+HotWords()) — which must sit at O(1) absolute addresses —
// and the cold region [cold, cold+ColdWords()). All regions must be
// disjoint. The sorted records end at data. The return value is the
// number of tag comparisons performed — the N·log N work term of the
// cost analysis, which callers surface as a metric.
func Sort(m *bt.Machine, p *Plan, data, scratch, hot, cold int64) int64 {
	if p.count <= 1 {
		return 0
	}
	s := &sorter{m: m, p: p, hot: hot, cold: cold}
	s.sortBaseRuns(data)
	src, dst := data, scratch
	for width := int64(minChunk); width < p.count; width *= 2 {
		for lo := int64(0); lo < p.count; lo += 2 * width {
			aCnt := min64(width, p.count-lo)
			bCnt := min64(width, p.count-lo-aCnt)
			if bCnt == 0 {
				// Odd run: move it across unchanged.
				s.copyRecords(src+lo*p.rec, dst+lo*p.rec, aCnt)
				continue
			}
			s.merge(src+lo*p.rec, aCnt, src+(lo+aCnt)*p.rec, bCnt, dst+lo*p.rec)
		}
		src, dst = dst, src
	}
	if src != data {
		s.copyRecords(src, data, p.count)
	}
	return s.comps
}

// IsSorted reports whether the count records at data are ordered by
// ascending tag, reading without charging cost (a test/verification
// helper, not a model operation).
func IsSorted(m *bt.Machine, data, count, rec int64) bool {
	for i := int64(1); i < count; i++ {
		if m.Peek(data+i*rec) < m.Peek(data+(i-1)*rec) {
			return false
		}
	}
	return true
}

type sorter struct {
	m     *bt.Machine
	p     *Plan
	hot   int64
	cold  int64
	comps int64 // tag comparisons performed
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// copyRecords moves n records with one block transfer.
func (s *sorter) copyRecords(src, dst, n int64) {
	if n == 0 {
		return
	}
	s.m.CopyRange(src, dst, n*s.p.rec)
}

// sortBaseRuns sorts every minChunk-record run in place: each run is
// staged to the innermost buffer, insertion-sorted at O(1) addresses,
// and written back. The per-record shuffles go through MoveRange —
// whose bulk implementation charges each record as one fold instead of
// three virtual f.Cost calls — so the record width never appears in a
// word loop here. Do not restructure the comparison/move order: the
// charged cost sequence is pinned by the experiment tables.
func (s *sorter) sortBaseRuns(data int64) {
	rec := s.p.rec
	buf := s.p.bufAddr(0, bufA, s.hot, s.cold)
	tmp := s.p.bufAddr(0, bufOut, s.hot, s.cold) // one-record scratch for swaps
	for lo := int64(0); lo < s.p.count; lo += minChunk {
		n := min64(minChunk, s.p.count-lo)
		s.m.CopyRange(data+lo*rec, buf, n*rec)
		// Insertion sort of n records at the top of memory.
		for i := int64(1); i < n; i++ {
			// Stash record i, shift greater records right, insert.
			s.m.MoveRange(buf+i*rec, tmp, rec)
			key := s.m.Read(tmp)
			j := i
			for j > 0 {
				s.comps++
				if s.m.Read(buf+(j-1)*rec) <= key {
					break
				}
				s.m.MoveRange(buf+(j-1)*rec, buf+j*rec, rec)
				j--
			}
			s.m.MoveRange(tmp, buf+j*rec, rec)
		}
		s.m.CopyRange(buf, data+lo*rec, n*rec)
	}
}

// stream tracks one side (A or B) of a merge through the cascade:
// win[j] is the [pos, cnt) window of stage j's buffer, and main is the
// cursor into the run in main memory.
type stream struct {
	side     int // bufA or bufB
	mainOff  int64
	mainLeft int64
	pos, cnt []int64
}

// refill ensures stage j's window is non-empty, pulling from stage j+1
// (or main memory at the outermost stage). It returns false when the
// stream is exhausted at this stage.
func (s *sorter) refill(st *stream, j int) bool {
	if st.pos[j] < st.cnt[j] {
		return true
	}
	p := s.p
	K := len(p.chunk)
	dst := p.bufAddr(j, st.side, s.hot, s.cold)
	if j == K-1 {
		if st.mainLeft == 0 {
			return false
		}
		n := min64(p.chunk[j], st.mainLeft)
		s.m.CopyRange(st.mainOff, dst, n*p.rec)
		st.mainOff += n * p.rec
		st.mainLeft -= n
		st.pos[j], st.cnt[j] = 0, n
		return true
	}
	if !s.refill(st, j+1) {
		return false
	}
	up := p.bufAddr(j+1, st.side, s.hot, s.cold)
	avail := st.cnt[j+1] - st.pos[j+1]
	n := min64(p.chunk[j], avail)
	s.m.CopyRange(up+st.pos[j+1]*p.rec, dst, n*p.rec)
	st.pos[j+1] += n
	st.pos[j], st.cnt[j] = 0, n
	return true
}

// merge merges the sorted runs (aOff, aCnt) and (bOff, bCnt) into dst.
func (s *sorter) merge(aOff, aCnt, bOff, bCnt, dst int64) {
	p := s.p
	K := len(p.chunk)
	a := &stream{side: bufA, mainOff: aOff, mainLeft: aCnt, pos: make([]int64, K), cnt: make([]int64, K)}
	b := &stream{side: bufB, mainOff: bOff, mainLeft: bCnt, pos: make([]int64, K), cnt: make([]int64, K)}
	// outCnt[j] = records accumulated in stage j's OUT buffer; outDst =
	// cursor into dst.
	outCnt := make([]int64, K)
	outDst := dst

	// flush pushes stage j's OUT buffer one stage outward (or to main
	// memory at the outermost stage).
	var flush func(j int)
	flush = func(j int) {
		if outCnt[j] == 0 {
			return
		}
		src := p.bufAddr(j, bufOut, s.hot, s.cold)
		if j == K-1 {
			s.m.CopyRange(src, outDst, outCnt[j]*p.rec)
			outDst += outCnt[j] * p.rec
		} else {
			if outCnt[j+1]+outCnt[j] > p.chunk[j+1] {
				flush(j + 1)
			}
			up := p.bufAddr(j+1, bufOut, s.hot, s.cold)
			s.m.CopyRange(src, up+outCnt[j+1]*p.rec, outCnt[j]*p.rec)
			outCnt[j+1] += outCnt[j]
		}
		outCnt[j] = 0
	}

	aBuf := p.bufAddr(0, bufA, s.hot, s.cold)
	bBuf := p.bufAddr(0, bufB, s.hot, s.cold)
	oBuf := p.bufAddr(0, bufOut, s.hot, s.cold)
	for {
		haveA := s.refill(a, 0)
		haveB := s.refill(b, 0)
		if !haveA && !haveB {
			break
		}
		var src int64
		var st *stream
		switch {
		case !haveB:
			st, src = a, aBuf
		case !haveA:
			st, src = b, bBuf
		default:
			s.comps++
			if s.m.Read(aBuf+a.pos[0]*p.rec) <= s.m.Read(bBuf+b.pos[0]*p.rec) {
				st, src = a, aBuf
			} else {
				st, src = b, bBuf
			}
		}
		if outCnt[0] == p.chunk[0] {
			flush(0)
		}
		s.m.MoveRange(src+st.pos[0]*p.rec, oBuf+outCnt[0]*p.rec, p.rec)
		st.pos[0]++
		outCnt[0]++
	}
	for j := 0; j < K; j++ {
		flush(j)
	}
}
