package amsort

import (
	"testing"

	"repro/internal/cost"
)

// FuzzAmsortSorted drives the aggressive-merging sorter with arbitrary
// key sequences: whatever the input, the output must be sorted and a
// record-for-record permutation of the input (checkSort verifies
// both). Each input byte becomes one two-word record whose payload
// identifies it, so lost or duplicated records are caught too.
func FuzzAmsortSorted(f *testing.F) {
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{0})
	f.Add([]byte{5, 5, 5, 5, 0, 255})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			t.Skip("record count outside fuzzing envelope")
		}
		recs := make([][]int64, len(raw))
		for i, b := range raw {
			recs[i] = []int64{int64(b), int64(1000 + i)}
		}
		checkSort(t, cost.Log{}, recs)
	})
}
