package amsort

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bt"
	"repro/internal/cost"
)

// buildMachine loads count records of rec words at a layout
// [work | data | scratch] and returns the machine and offsets.
func buildMachine(f cost.Func, recs [][]int64) (m *bt.Machine, p *Plan, data, scratch, hot, cold int64) {
	count := int64(len(recs))
	rec := int64(1)
	if count > 0 {
		rec = int64(len(recs[0]))
	}
	p = NewPlan(f, rec, count)
	hot = 0
	cold = p.HotWords()
	data = cold + p.ColdWords()
	scratch = data + count*rec
	m = bt.New(f, scratch+count*rec+8)
	for i, r := range recs {
		for w, v := range r {
			m.Poke(data+int64(i)*rec+int64(w), v)
		}
	}
	return m, p, data, scratch, hot, cold
}

func randRecords(rng *rand.Rand, count, rec int) [][]int64 {
	out := make([][]int64, count)
	for i := range out {
		out[i] = make([]int64, rec)
		out[i][0] = int64(rng.Intn(10 * count))
		for w := 1; w < rec; w++ {
			out[i][w] = int64(100*i + w) // payload identifies the record
		}
	}
	return out
}

// checkSort sorts and verifies both ordering and payload integrity.
func checkSort(t *testing.T, f cost.Func, recs [][]int64) float64 {
	t.Helper()
	m, p, data, scratch, hot, cold := buildMachine(f, recs)
	Sort(m, p, data, scratch, hot, cold)
	count := int64(len(recs))
	if count == 0 {
		return 0
	}
	rec := int64(len(recs[0]))
	if !IsSorted(m, data, count, rec) {
		t.Fatal("output not sorted")
	}
	// The output must be a permutation of the input records: sort the
	// expected records host-side and compare full contents.
	want := make([][]int64, len(recs))
	copy(want, recs)
	sort.SliceStable(want, func(i, j int) bool { return want[i][0] < want[j][0] })
	for i := int64(0); i < count; i++ {
		for w := int64(0); w < rec; w++ {
			if got := m.Peek(data + i*rec + w); got != want[i][w] {
				t.Fatalf("record %d word %d = %d, want %d", i, w, got, want[i][w])
			}
		}
	}
	return m.Cost()
}

func TestSortSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, count := range []int{0, 1, 2, 15, 16, 17, 31, 100} {
		checkSort(t, cost.Poly{Alpha: 0.5}, randRecords(rng, count, 2))
	}
}

func TestSortLargerAndWideRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkSort(t, cost.Poly{Alpha: 0.5}, randRecords(rng, 3000, 2))
	checkSort(t, cost.Log{}, randRecords(rng, 2048, 4))
	checkSort(t, cost.Poly{Alpha: 0.3}, randRecords(rng, 1000, 1))
}

func TestSortDuplicateKeys(t *testing.T) {
	recs := make([][]int64, 64)
	for i := range recs {
		recs[i] = []int64{int64(i % 4), int64(i)}
	}
	checkSort(t, cost.Log{}, recs)
}

func TestSortReverseSorted(t *testing.T) {
	recs := make([][]int64, 200)
	for i := range recs {
		recs[i] = []int64{int64(200 - i), int64(i)}
	}
	checkSort(t, cost.Poly{Alpha: 0.5}, recs)
}

func TestPlanGeometry(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	p := NewPlan(f, 2, 1<<16)
	if p.Stages() < 2 {
		t.Errorf("expected a multi-stage cascade for 2^16 records, got %d", p.Stages())
	}
	// Chunks must grow strictly outward and start at the floor.
	if p.chunk[0] != minChunk {
		t.Errorf("innermost chunk = %d, want %d", p.chunk[0], minChunk)
	}
	for j := 1; j < len(p.chunk); j++ {
		if p.chunk[j] <= p.chunk[j-1] {
			t.Errorf("chunks not increasing: %v", p.chunk)
		}
	}
	// Workspace is modest: O(f(N)·rec) words.
	if p.ColdWords() > 64*int64(f.Cost(2*2*(1<<16))) {
		t.Errorf("cold workspace %d words too large", p.ColdWords())
	}
	if p.HotWords() != 3*minChunk*2 {
		t.Errorf("HotWords = %d", p.HotWords())
	}
}

func TestPlanRejectsBadRec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlan(rec=0) did not panic")
		}
	}()
	NewPlan(cost.Log{}, 0, 16)
}

// E16 shape: sort cost is O(N log N · f*(N)); the ratio to N·log N must
// grow no faster than f* (≈ constant at these scales).
func TestSortCostShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		var ratios []float64
		for _, count := range []int{256, 1024, 4096} {
			c := checkSort(t, f, randRecords(rng, count, 2))
			n := float64(count)
			ratios = append(ratios, c/(n*math.Log2(n)))
		}
		if ratios[2] > 4*ratios[0] {
			t.Errorf("%s: cost/(N log N) grew too fast: %v", f.Name(), ratios)
		}
	}
}

// The whole point of BT sorting: it must be far cheaper than the
// word-at-a-time HMM bound Θ(N·f(N)·log N) for steep f.
func TestSortBeatsWordAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := cost.Poly{Alpha: 0.5}
	count := 4096
	c := checkSort(t, f, randRecords(rng, count, 2))
	n := float64(2 * count)
	hmmBound := n * f.Cost(int64(n)) * math.Log2(n)
	if c > hmmBound/4 {
		t.Errorf("BT sort cost %g not clearly below HMM-style bound %g", c, hmmBound)
	}
}

func TestSortProperty(t *testing.T) {
	prop := func(keys []uint16) bool {
		if len(keys) > 300 {
			keys = keys[:300]
		}
		recs := make([][]int64, len(keys))
		for i, k := range keys {
			recs[i] = []int64{int64(k), int64(i)}
		}
		m, p, data, scratch, hot, cold := buildMachine(cost.Log{}, recs)
		Sort(m, p, data, scratch, hot, cold)
		if len(recs) == 0 {
			return true
		}
		if !IsSorted(m, data, int64(len(recs)), 2) {
			return false
		}
		// Payload multiset preserved: sum check.
		var wantSum, gotSum int64
		for i := range recs {
			wantSum += recs[i][1]
			gotSum += m.Peek(data + int64(i)*2 + 1)
		}
		return wantSum == gotSum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
