package dbsp

import (
	"repro/internal/cost"
	"repro/internal/obs"
)

// StepEvent is the post-delivery view of one executed superstep that
// RunInspected hands to its inspector: the superstep's identity, its
// Transpose declaration (if any), the messages the handlers queued
// before delivery and the messages actually delivered. Dummy
// supersteps (nil Run) carry no traffic and produce no event.
type StepEvent struct {
	// Step is the superstep index in Program.Steps; Label its cluster
	// granularity.
	Step, Label int
	// Transpose is the superstep's declaration, nil for ordinary
	// supersteps.
	Transpose *TransposeRoute
	// Sent snapshots the outboxes before delivery, in delivery order
	// (ascending sender, send order preserved within a sender).
	Sent []MessageTrace
	// Received lists the inbox contents after delivery, in ascending
	// receiver order.
	Received []MessageTrace
}

// RunInspected executes prog like RunObserved while handing every
// executed superstep to inspect right after message delivery. When an
// inspector is set, the engine's own Transpose verification is
// disabled so the inspector observes declaration violations end-to-end
// instead of the run aborting first — the runtime invariant checker
// (internal/invariant) builds on this. A nil inspect behaves exactly
// like RunObserved.
func RunInspected(prog *Program, g cost.Func, o *obs.Observer, inspect func(StepEvent)) (*Result, *Trace, error) {
	return runInspectedLoop(prog, runLoop, g, o, inspect)
}

// loopFunc is the signature shared by runLoop and the sharded loop
// closures: one full engine run with pre/post superstep hooks.
type loopFunc func(prog *Program, g cost.Func,
	pre func(step, label int, msgs []MessageTrace),
	post func(step int, st Superstep, ctxs [][]Word)) (*Result, error)

// runInspectedLoop builds the trace/inspect plumbing over any engine
// loop: the pre hook records the trace, the post hook (when an
// inspector is set) assembles StepEvents, and a finished run publishes
// its accounting to the observer. Both RunInspected (native) and
// RunShardedInspected route through here, so the two engines expose one
// observation surface.
func runInspectedLoop(prog *Program, loop loopFunc, g cost.Func, o *obs.Observer, inspect func(StepEvent)) (*Result, *Trace, error) {
	tr := &Trace{V: prog.V}
	var sent []MessageTrace
	pre := func(step, label int, msgs []MessageTrace) {
		tr.Steps = append(tr.Steps, StepTrace{Index: step, Label: label, Messages: msgs})
		sent = msgs
	}
	var post func(step int, st Superstep, ctxs [][]Word)
	if inspect != nil {
		post = func(step int, st Superstep, ctxs [][]Word) {
			inspect(StepEvent{Step: step, Label: st.Label, Transpose: st.Transpose,
				Sent: sent, Received: collectInboxes(prog.Layout, ctxs)})
			sent = nil
		}
	}
	res, err := loop(prog, g, pre, post)
	if err != nil {
		return nil, nil, err
	}
	if o != nil {
		publishRun(o, prog, res, tr)
	}
	return res, tr, nil
}

// collectInboxes snapshots every delivered message in ascending
// receiver order.
func collectInboxes(l Layout, ctxs [][]Word) []MessageTrace {
	var msgs []MessageTrace
	for p, ctx := range ctxs {
		n := int(ctx[l.InCountOff()])
		for k := 0; k < n; k++ {
			msgs = append(msgs, MessageTrace{
				Src:     int(ctx[l.InboxOff(k)]),
				Dest:    p,
				Payload: ctx[l.InboxOff(k)+1],
			})
		}
	}
	return msgs
}
