package dbsp

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/obs"
)

// TestRunObservedPublishes checks that a native run's accounting lands
// in the registry verbatim: dbsp.cost.total is exactly Result.Cost, the
// per-label superstep histogram counts every step, and one superstep
// event is emitted per executed superstep.
func TestRunObservedPublishes(t *testing.T) {
	prog := pairProg(16)
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(64)
	o := obs.New(reg, ring)

	res, tr, err := RunObserved(prog, cost.Log{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.FloatCounter("dbsp.cost.total").Value(); got != res.Cost {
		t.Errorf("dbsp.cost.total = %v, want exactly %v", got, res.Cost)
	}
	if got := reg.FloatCounter("dbsp.cost.comm").Value(); got != res.CommCost() {
		t.Errorf("dbsp.cost.comm = %v, want %v", got, res.CommCost())
	}
	var sum float64
	for _, ph := range costPhases {
		sum += reg.FloatCounter("dbsp.cost." + ph).Value()
	}
	if rel := (sum - res.Cost) / res.Cost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("phase sum %v vs Cost %v (rel err %v)", sum, res.Cost, rel)
	}
	if got := reg.Counter("dbsp.supersteps").Value(); got != int64(len(res.Steps)) {
		t.Errorf("dbsp.supersteps = %d, want %d", got, len(res.Steps))
	}
	var byLabel int64
	for l := 0; l <= Log2(prog.V); l++ {
		byLabel += reg.Counter(fmt.Sprintf("dbsp.lambda.label.%d", l)).Value()
	}
	if byLabel != int64(len(res.Steps)) {
		t.Errorf("Σ dbsp.lambda.label.* = %d, want %d", byLabel, len(res.Steps))
	}
	if got := reg.Counter("dbsp.messages").Value(); got != tr.Messages() {
		t.Errorf("dbsp.messages = %d, want %d", got, tr.Messages())
	}

	var events int
	var evCost float64
	for _, e := range ring.Events() {
		if e.Sim == "dbsp" && e.Kind == "superstep" {
			events++
			evCost += e.Cost
		}
	}
	if events != len(res.Steps) {
		t.Errorf("superstep events = %d, want %d", events, len(res.Steps))
	}
	if rel := (evCost - res.Cost) / res.Cost; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("Σ event cost %v vs Cost %v", evCost, res.Cost)
	}
}

// TestRunObservedNilObserver: RunTraced must stay byte-identical to the
// unobserved path (RunObserved with a nil observer).
func TestRunObservedNilObserver(t *testing.T) {
	prog := pairProg(8)
	res, tr, err := RunObserved(prog, cost.Log{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != plain.Cost {
		t.Errorf("cost %v vs %v", res.Cost, plain.Cost)
	}
	if tr.Messages() == 0 {
		t.Error("trace not recorded")
	}
}
