package dbsp

import "fmt"

// Layout fixes how a processor's µ-word context is arranged. The same
// layout is used by the native engine (contexts in Go slices) and by
// the sequential simulators (contexts as µ-word blocks of HMM/BT
// memory), so that a handler's Load/Store/Send/Recv operations have
// identical semantics everywhere. Message buffers are part of the
// context, as the model prescribes ("buffers for incoming and outgoing
// messages are provided as part of the processor's local memory").
//
// Word offsets within a context:
//
//	[0, Data)                    user data region
//	[Data]                       inbox count
//	[Data+1, Data+1+2Q)          inbox entries: (src, payload) pairs
//	[Data+1+2Q]                  outbox count
//	[Data+2+2Q, Data+2+4Q)       outbox entries: (dest, payload) pairs
//
// where Q = MaxMsgs, giving Mu = Data + 4Q + 2.
type Layout struct {
	// Data is the number of user data words.
	Data int
	// MaxMsgs is the per-superstep capacity Q of both inbox and
	// outbox. The model requires h <= µ; the layout enforces Q
	// structurally.
	MaxMsgs int
}

// Mu returns the context size in words.
func (l Layout) Mu() int { return l.Data + 4*l.MaxMsgs + 2 }

// InCountOff returns the offset of the inbox count word.
func (l Layout) InCountOff() int { return l.Data }

// InboxOff returns the offset of inbox entry k (its src word; payload at +1).
func (l Layout) InboxOff(k int) int { return l.Data + 1 + 2*k }

// OutCountOff returns the offset of the outbox count word.
func (l Layout) OutCountOff() int { return l.Data + 1 + 2*l.MaxMsgs }

// OutboxOff returns the offset of outbox entry k.
func (l Layout) OutboxOff(k int) int { return l.Data + 2 + 2*l.MaxMsgs + 2*k }

// Validate checks the layout bounds.
func (l Layout) Validate() error {
	if l.Data < 0 {
		return fmt.Errorf("dbsp: negative data region %d", l.Data)
	}
	if l.MaxMsgs < 0 {
		return fmt.Errorf("dbsp: negative message capacity %d", l.MaxMsgs)
	}
	return nil
}

// Store abstracts the word storage a context lives in, so the same
// context logic runs over a Go slice (native engine), an HMM machine
// (hmmsim), a BT machine (btsim) or an HMM memory module (selfsim).
// Implementations charge their own model costs per operation. Offsets
// are context-relative: [0, µ).
type Store interface {
	// Load returns context word off.
	Load(off int) Word
	// Put sets context word off.
	Put(off int, v Word)
	// Work charges n units of pure computation.
	Work(n int64)
}

// sliceStore is the native engine's store: a context slice plus an
// operation counter that measures τ, the local computation time.
type sliceStore struct {
	mem []Word
	ops int64
}

func (s *sliceStore) Load(off int) Word   { s.ops++; return s.mem[off] }
func (s *sliceStore) Put(off int, v Word) { s.ops++; s.mem[off] = v }
func (s *sliceStore) Work(n int64)        { s.ops += n }

// NewCtx wraps a Store in the handler-facing context view. It is the
// hook the sequential simulators use to execute guest handlers against
// contexts living in simulated hierarchical memory.
func NewCtx(st Store, layout Layout, id, v, label int) *Ctx {
	return &Ctx{st: st, layout: layout, id: id, v: v, label: label}
}

// Ctx is the view a superstep handler has of its processor: local
// memory plus message primitives. Handlers must be deterministic
// functions of the context contents — the sequential simulators
// re-execute them processor by processor in cluster-schedule order.
type Ctx struct {
	st     Store
	layout Layout
	id     int // processor id
	v      int // machine size
	label  int // current superstep label, for send validation
}

// ID returns the processor id in [0, V).
func (c *Ctx) ID() int { return c.id }

// V returns the machine size.
func (c *Ctx) V() int { return c.v }

// Label returns the current superstep's cluster label.
func (c *Ctx) Label() int { return c.label }

// Load returns data word i.
func (c *Ctx) Load(i int) Word {
	if i < 0 || i >= c.layout.Data {
		panic(fmt.Sprintf("dbsp: proc %d: Load(%d) outside data region [0,%d)", c.id, i, c.layout.Data))
	}
	return c.st.Load(i)
}

// Store sets data word i to val.
func (c *Ctx) Store(i int, val Word) {
	if i < 0 || i >= c.layout.Data {
		panic(fmt.Sprintf("dbsp: proc %d: Store(%d) outside data region [0,%d)", c.id, i, c.layout.Data))
	}
	c.st.Put(i, val)
}

// Work charges n extra units of local computation beyond the memory
// operations already counted.
func (c *Ctx) Work(n int64) {
	if n < 0 {
		panic("dbsp: negative work")
	}
	c.st.Work(n)
}

// Send queues a constant-size message to processor dest, which must lie
// in the sender's current cluster (an i-superstep may only communicate
// within i-clusters). It panics on cluster violations and outbox
// overflow — both are bugs in the program, not runtime conditions.
func (c *Ctx) Send(dest int, payload Word) {
	if dest < 0 || dest >= c.v {
		panic(fmt.Sprintf("dbsp: proc %d: Send to invalid processor %d", c.id, dest))
	}
	if !SameCluster(c.v, c.label, c.id, dest) {
		panic(fmt.Sprintf("dbsp: proc %d: Send to %d crosses %d-cluster boundary", c.id, dest, c.label))
	}
	n := int(c.st.Load(c.layout.OutCountOff()))
	if n >= c.layout.MaxMsgs {
		panic(fmt.Sprintf("dbsp: proc %d: outbox overflow (MaxMsgs=%d)", c.id, c.layout.MaxMsgs))
	}
	c.st.Put(c.layout.OutboxOff(n), Word(dest))
	c.st.Put(c.layout.OutboxOff(n)+1, payload)
	c.st.Put(c.layout.OutCountOff(), Word(n+1))
}

// NumRecv returns the number of messages delivered by the previous
// superstep.
func (c *Ctx) NumRecv() int { return int(c.st.Load(c.layout.InCountOff())) }

// Recv returns received message k: its sender and payload. Messages are
// ordered by ascending sender id (and send order within a sender) —
// identical in the native engine and in every simulator.
func (c *Ctx) Recv(k int) (src int, payload Word) {
	n := c.NumRecv()
	if k < 0 || k >= n {
		panic(fmt.Sprintf("dbsp: proc %d: Recv(%d) with %d messages", c.id, k, n))
	}
	return int(c.st.Load(c.layout.InboxOff(k))), c.st.Load(c.layout.InboxOff(k) + 1)
}
