package dbsp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

// doubleProg: every processor doubles its data word; one 0-superstep.
func doubleProg(v int) *Program {
	return &Program{
		Name:   "double",
		V:      v,
		Layout: Layout{Data: 2, MaxMsgs: 1},
		Init:   func(p int, data []Word) { data[0] = Word(p) },
		Steps: []Superstep{{Label: 0, Run: func(c *Ctx) {
			c.Store(0, 2*c.Load(0))
		}}},
	}
}

func TestRunDouble(t *testing.T) {
	prog := doubleProg(8)
	res, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if got := res.Contexts[p][0]; got != Word(2*p) {
			t.Errorf("proc %d data = %d, want %d", p, got, 2*p)
		}
	}
	// τ = 2 ops (one load, one store); no messages, so cost = τ.
	if len(res.Steps) != 1 || res.Steps[0].Tau != 2 || res.Steps[0].H != 0 {
		t.Errorf("step cost = %+v, want Tau=2 H=0", res.Steps[0])
	}
	if res.Cost != 2 || res.MaxTau != 2 {
		t.Errorf("Cost=%g MaxTau=%d, want 2, 2", res.Cost, res.MaxTau)
	}
}

// pairExchangeProg: neighbours within (log v - 1)-clusters swap values,
// then a closing 0-superstep.
func pairExchangeProg(v int) *Program {
	logv := Log2(v)
	return &Program{
		Name:   "pair-exchange",
		V:      v,
		Layout: Layout{Data: 2, MaxMsgs: 2},
		Init:   func(p int, data []Word) { data[0] = Word(p + 100) },
		Steps: []Superstep{
			{Label: logv - 1, Run: func(c *Ctx) {
				c.Send(c.ID()^1, c.Load(0))
			}},
			{Label: 0, Run: func(c *Ctx) {
				if c.NumRecv() != 1 {
					panic("expected exactly one message")
				}
				_, payload := c.Recv(0)
				c.Store(1, payload)
			}},
		},
	}
}

func TestRunPairExchange(t *testing.T) {
	prog := pairExchangeProg(8)
	res, err := Run(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if got := res.Contexts[p][1]; got != Word((p^1)+100) {
			t.Errorf("proc %d got %d, want %d", p, got, (p^1)+100)
		}
	}
	// Superstep 0 is a 1-relation in (log v -1)-clusters of 2 procs.
	if res.Steps[0].H != 1 {
		t.Errorf("h = %d, want 1", res.Steps[0].H)
	}
	mu := prog.Mu()
	wantComm := cost.Poly{Alpha: 0.5}.Cost(int64(2 * mu)) // g(µ·2)
	if got := res.Steps[0].Cost - float64(res.Steps[0].Tau); math.Abs(got-wantComm) > 1e-9 {
		t.Errorf("comm cost = %g, want g(2µ) = %g", got, wantComm)
	}
}

func TestRunRejectsCrossClusterSend(t *testing.T) {
	v := 8
	prog := &Program{
		Name:   "bad-send",
		V:      v,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Steps: []Superstep{{Label: 2, Run: func(c *Ctx) {
			if c.ID() == 0 {
				c.Send(7, 1) // proc 7 is outside proc 0's 2-cluster {0,1}
			}
		}}},
	}
	if _, err := Run(prog, cost.Log{}); err == nil {
		t.Fatal("cross-cluster send not rejected")
	}
}

func TestRunRejectsInboxOverflow(t *testing.T) {
	prog := &Program{
		Name:   "overflow",
		V:      4,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Steps: []Superstep{{Label: 0, Run: func(c *Ctx) {
			if c.ID() != 0 {
				c.Send(0, 1) // three senders into capacity-1 inbox
			}
		}}},
	}
	if _, err := Run(prog, cost.Log{}); err == nil {
		t.Fatal("inbox overflow not rejected")
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	prog := &Program{Name: "bad-label", V: 4, Layout: Layout{Data: 1},
		Steps: []Superstep{{Label: 5}}}
	if _, err := Run(prog, cost.Log{}); err == nil {
		t.Fatal("label 5 on 4 processors not rejected")
	}
	if _, err := Run(doubleProg(8), nil); err == nil {
		t.Fatal("nil bandwidth function not rejected")
	}
}

func TestDummyStepsCostNothing(t *testing.T) {
	prog := doubleProg(4)
	prog.Steps = append([]Superstep{{Label: 1, Run: nil}}, prog.Steps...)
	res, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Cost != 0 || res.Steps[0].Tau != 0 {
		t.Errorf("dummy step cost = %+v, want zero", res.Steps[0])
	}
}

func TestDeliverOrdering(t *testing.T) {
	// Procs 1, 2, 3 all send to proc 0 in a 0-superstep; inbox must be
	// ordered by ascending sender.
	prog := &Program{
		Name:   "fan-in",
		V:      4,
		Layout: Layout{Data: 4, MaxMsgs: 4},
		Steps: []Superstep{
			{Label: 0, Run: func(c *Ctx) {
				if c.ID() != 0 {
					c.Send(0, Word(10*c.ID()))
				}
			}},
			{Label: 0, Run: func(c *Ctx) {
				if c.ID() == 0 {
					for k := 0; k < c.NumRecv(); k++ {
						src, payload := c.Recv(k)
						if src != k+1 || payload != Word(10*(k+1)) {
							panic("inbox not in ascending sender order")
						}
						c.Store(k, payload)
					}
				}
			}},
		},
	}
	res, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].H != 3 {
		t.Errorf("fan-in h = %d, want 3 (proc 0 receives 3)", res.Steps[0].H)
	}
}

// treeSumProg computes the global sum by halving: in phase k (label k),
// the left half of each k-cluster receives from the right half.
func treeSumProg(v int) *Program {
	logv := Log2(v)
	steps := make([]Superstep, 0, logv+1)
	for k := logv - 1; k >= 0; k-- {
		half := v >> uint(k+1) // half-size of a k-cluster
		steps = append(steps, Superstep{Label: k, Run: func(c *Ctx) {
			lo, _ := ClusterRange(c.V(), c.Label(), ClusterIndex(c.V(), c.Label(), c.ID()))
			off := c.ID() - lo
			if off >= half {
				c.Send(lo+off-half, c.Load(0))
			}
		}})
		steps = append(steps, Superstep{Label: k, Run: func(c *Ctx) {
			if c.NumRecv() == 1 {
				_, payload := c.Recv(0)
				c.Store(0, c.Load(0)+payload)
			}
		}})
	}
	// Final global barrier.
	steps = append(steps, Superstep{Label: 0, Run: func(c *Ctx) {}})
	return &Program{
		Name:   "tree-sum",
		V:      v,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Init:   func(p int, data []Word) { data[0] = Word(p + 1) },
		Steps:  steps,
	}
}

func TestTreeSum(t *testing.T) {
	v := 16
	res, err := Run(treeSumProg(v), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	want := Word(v * (v + 1) / 2)
	if got := res.Contexts[0][0]; got != want {
		t.Errorf("tree sum = %d, want %d", got, want)
	}
}

func TestLambdaAndSmoothness(t *testing.T) {
	prog := treeSumProg(16)
	lam := prog.Lambda(true)
	// Two supersteps per label 3,2,1 plus the send at 0... labels go
	// 3,3,2,2,1,1,0,0 then final 0: λ = [3,2,2,2,... wait recount]
	// k runs 3..0 with two steps each: λ_3=2, λ_2=2, λ_1=2, λ_0=2+1=3.
	want := []int{3, 2, 2, 2, 0}
	for i, w := range want {
		if lam[i] != w {
			t.Errorf("λ_%d = %d, want %d (full: %v)", i, lam[i], w, lam)
		}
	}
	// Labels descend one at a time -> smooth over {0,1,2,3}.
	if !prog.IsSmooth([]int{0, 1, 2, 3}) {
		t.Error("tree-sum should be smooth over {0,1,2,3}")
	}
	if prog.IsSmooth([]int{0, 2, 3}) {
		t.Error("tree-sum uses label 1, cannot be {0,2,3}-smooth")
	}
}

func TestIsSmoothJumpDown(t *testing.T) {
	// Label sequence 3 then 0 skips levels 2,1: not smooth over {0,1,2,3}.
	prog := &Program{Name: "jump", V: 8, Layout: Layout{Data: 1},
		Steps: []Superstep{{Label: 3}, {Label: 0}}}
	if prog.IsSmooth([]int{0, 1, 2, 3}) {
		t.Error("3 -> 0 jump should not be smooth over {0,1,2,3}")
	}
	// But it IS smooth over L = {0, 3}: 3 -> 0 is one L-level.
	if !prog.IsSmooth([]int{0, 3}) {
		t.Error("3 -> 0 should be smooth over {0,3}")
	}
}

func TestEndsGlobal(t *testing.T) {
	if !doubleProg(4).EndsGlobal() {
		t.Error("double ends with a 0-superstep")
	}
	prog := &Program{V: 4, Layout: Layout{Data: 1}, Steps: []Superstep{{Label: 1}}}
	if prog.EndsGlobal() {
		t.Error("label-1 ending reported as global")
	}
	if (&Program{V: 4, Layout: Layout{Data: 1}}).EndsGlobal() {
		t.Error("empty program reported as ending globally")
	}
}

func TestLabelsSet(t *testing.T) {
	prog := treeSumProg(16)
	got := prog.Labels()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
}

// Property: tree-sum is correct for every power-of-two machine size.
func TestTreeSumProperty(t *testing.T) {
	prop := func(raw uint8) bool {
		v := 1 << (raw % 8) // 1..128
		res, err := Run(treeSumProg(v), cost.Log{})
		if err != nil {
			return false
		}
		return res.Contexts[0][0] == Word(v*(v+1)/2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCtxAccessors(t *testing.T) {
	prog := &Program{
		Name:   "accessors",
		V:      8,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Steps: []Superstep{{Label: 2, Run: func(c *Ctx) {
			if c.V() != 8 || c.Label() != 2 {
				panic("bad V or Label")
			}
			c.Work(5)
		}}},
	}
	res, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Tau != 5 {
		t.Errorf("Work(5) gave τ=%d, want 5", res.Steps[0].Tau)
	}
}

func TestCtxPanicsOnBadAccess(t *testing.T) {
	cases := []func(c *Ctx){
		func(c *Ctx) { c.Load(-1) },
		func(c *Ctx) { c.Load(1) }, // data region is 1 word
		func(c *Ctx) { c.Store(1, 0) },
		func(c *Ctx) { c.Work(-1) },
		func(c *Ctx) { c.Send(-1, 0) },
		func(c *Ctx) { c.Send(99, 0) },
		func(c *Ctx) { c.Recv(0) }, // empty inbox
	}
	for i, fn := range cases {
		prog := &Program{
			Name: "panic", V: 8, Layout: Layout{Data: 1, MaxMsgs: 1},
			Steps: []Superstep{{Label: 0, Run: func(c *Ctx) {
				if c.ID() == 0 {
					fn(c)
				}
			}}},
		}
		if _, err := Run(prog, cost.Log{}); err == nil {
			t.Errorf("case %d: bad access not rejected", i)
		}
	}
}

func TestOutboxOverflowRejected(t *testing.T) {
	prog := &Program{
		Name: "outbox-overflow", V: 4, Layout: Layout{Data: 1, MaxMsgs: 1},
		Steps: []Superstep{{Label: 0, Run: func(c *Ctx) {
			c.Send(0, 1)
			c.Send(0, 2)
		}}},
	}
	if _, err := Run(prog, cost.Log{}); err == nil {
		t.Fatal("outbox overflow not rejected")
	}
}

func TestTotalTauAndCommCost(t *testing.T) {
	res, err := Run(pairExchangeProg(8), cost.Const{C: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTau() <= 0 {
		t.Error("TotalTau should be positive")
	}
	// One 1-relation at g=3 in step 0; step 1 has no sends.
	if math.Abs(res.CommCost()-3) > 1e-9 {
		t.Errorf("CommCost = %g, want 3", res.CommCost())
	}
}
